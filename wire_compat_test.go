package mendel

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// startWireCluster spins four real TCP storage nodes (two groups, two
// replicas) with the node-side wire config wcNode, indexes db through a
// coordinator using wcCoord, and returns the coordinator plus its metrics
// registry.
func startWireCluster(t *testing.T, db *Set, wcNode, wcCoord WireConfig) (*Cluster, *MetricsRegistry) {
	t.Helper()
	var addrs []string
	for i := 0; i < 4; i++ {
		s, err := ServeNodeWire("127.0.0.1:0", DefaultResilienceConfig(), wcNode)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		addrs = append(addrs, s.Addr())
	}
	cfg := DefaultConfig(Protein)
	cfg.Groups = 2
	cfg.Replicas = 2
	groups := [][]string{{addrs[0], addrs[1]}, {addrs[2], addrs[3]}}
	cluster, _, err := NewTCPClusterWire(cfg, groups, DefaultResilienceConfig(), wcCoord)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	cluster.SetObservability(reg, nil)
	if err := cluster.Index(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	return cluster, reg
}

// repairSummary renders the stable fields of a repair report (everything
// but wall-clock duration) for cross-scenario comparison.
func repairSummary(r *RepairReport) string {
	return fmt.Sprintf("groups=%v blocks=%d seqs=%d unrepairable=%d pusherrs=%d unreachable=%v",
		r.Groups, r.BlocksMoved, r.SequencesMoved, r.Unrepairable, r.PushErrors, r.Unreachable)
}

// TestWireCodecMixedVersionCompat runs identical index/search/repair
// workloads over real TCP under every codec pairing a rolling upgrade can
// produce — new both sides, old client against new server, new client
// against old server (CodecGob pins the exact framing a pre-codec binary
// speaks: the negotiation byte is never sent or echoed) — and requires
// bit-identical search hits and identical repair outcomes everywhere.
func TestWireCodecMixedVersionCompat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := buildSet(t, rng, 12, 300)
	queries := [][]byte{
		db.Seqs[5].Data[40:160],
		db.Seqs[9].Data[0:120],
	}

	scenarios := []struct {
		name          string
		node, coord   WireConfig
		wantNegotiate bool // coordinator connections should upgrade to binary
	}{
		{"binary-both", WireConfig{}, WireConfig{}, true},
		{"gob-client-new-server", WireConfig{}, WireConfig{Codec: CodecGob}, false},
		{"new-client-gob-server", WireConfig{Codec: CodecGob}, WireConfig{}, false},
		{"binary-compressed", WireConfig{Compress: true}, WireConfig{Compress: true}, true},
	}

	var wantHits [][]Hit
	var wantRepair string
	for i, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			cluster, reg := startWireCluster(t, db, sc.node, sc.coord)
			var hits [][]Hit
			for _, q := range queries {
				h, err := cluster.Search(context.Background(), q, DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				hits = append(hits, h)
			}
			rep, err := cluster.Repair(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := reg.Counter("rpc_conns_binary").Value() > 0; got != sc.wantNegotiate {
				t.Errorf("binary negotiation = %v, want %v", got, sc.wantNegotiate)
			}
			if i == 0 {
				wantHits, wantRepair = hits, repairSummary(rep)
				if len(hits[0]) == 0 {
					t.Fatal("reference scenario found no hits")
				}
				return
			}
			if !reflect.DeepEqual(hits, wantHits) {
				t.Errorf("hits diverge from %s:\n  got:  %+v\n  want: %+v",
					scenarios[0].name, hits, wantHits)
			}
			if got := repairSummary(rep); got != wantRepair {
				t.Errorf("repair report diverges: got %q want %q", got, wantRepair)
			}
		})
	}
}

// TestWireCodecManifestAcrossCodecs checks that a manifest saved by one
// coordinator restores under the other codec and keeps answering queries —
// the upgrade path where the coordinator binary changes between sessions.
func TestWireCodecManifestAcrossCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	db := buildSet(t, rng, 8, 300)
	cluster, _ := startWireCluster(t, db, WireConfig{}, WireConfig{Codec: CodecGob})
	var manifest bytes.Buffer
	if err := SaveManifest(cluster, &manifest); err != nil {
		t.Fatal(err)
	}
	restored, _, err := LoadManifestTCPWire(&manifest, DefaultResilienceConfig(), WireConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := cluster.Search(context.Background(), db.Seqs[3].Data[30:150], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Search(context.Background(), db.Seqs[3].Data[30:150], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || !reflect.DeepEqual(got, want) {
		t.Fatalf("restored coordinator hits diverge:\n  got:  %+v\n  want: %+v", got, want)
	}
}
