module mendel

go 1.22
