package mendel

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
)

const proteinLetters = "ARNDCQEGHILKMFPSTWYV"

func randProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = proteinLetters[rng.Intn(len(proteinLetters))]
	}
	return out
}

func buildSet(t *testing.T, rng *rand.Rand, n, length int) *Set {
	t.Helper()
	set := NewSet(Protein)
	for i := 0; i < n; i++ {
		if _, err := set.Add("ref", randProtein(rng, length)); err != nil {
			t.Fatal(err)
		}
	}
	return set
}

func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := DefaultConfig(Protein)
	cfg.Groups = 2
	cluster, err := NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()
	db := buildSet(t, rng, 15, 300)
	if err := cluster.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	hits, err := cluster.Search(ctx, db.Seqs[3].Data[50:170], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 3 {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestFASTARoundTripThroughPublicAPI(t *testing.T) {
	in := ">p1\nMKVLAA\n>p2\nWYVRK\n"
	set, err := ReadFASTA(strings.NewReader(in), Protein)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, set, 0); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf, Protein)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || string(back.Seqs[0].Data) != "MKVLAA" {
		t.Fatalf("round trip = %+v", back.Seqs)
	}
}

func TestBlastBaselinePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := buildSet(t, rng, 10, 300)
	bdb, err := NewBlastDB(db)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := bdb.Search(db.Seqs[5].Data[40:160], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 5 {
		t.Fatalf("blast hits = %+v", hits)
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	// Four real TCP storage nodes on loopback, two groups.
	var servers []*NodeServer
	var addrs []string
	for i := 0; i < 4; i++ {
		s, err := ServeNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	cfg := DefaultConfig(Protein)
	cfg.Groups = 2
	groups := [][]string{{addrs[0], addrs[1]}, {addrs[2], addrs[3]}}
	cluster, err := NewTCPCluster(cfg, groups)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()
	db := buildSet(t, rng, 12, 300)
	if err := cluster.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	hits, err := cluster.Search(ctx, db.Seqs[7].Data[30:150], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 7 {
		t.Fatalf("TCP hits = %+v", hits)
	}

	// Manifest round trip: a fresh coordinator resumes querying the same
	// still-running nodes without re-indexing.
	var manifest bytes.Buffer
	if err := SaveManifest(cluster, &manifest); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadManifestTCP(&manifest)
	if err != nil {
		t.Fatal(err)
	}
	hits2, err := restored.Search(ctx, db.Seqs[7].Data[30:150], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits2) == 0 || hits2[0].Seq != 7 {
		t.Fatalf("restored hits = %+v", hits2)
	}
	if restored.TotalResidues() != cluster.TotalResidues() {
		t.Fatal("manifest lost database size")
	}
	if restored.NameOf(7) != "ref" {
		t.Fatal("manifest lost sequence names")
	}
}

func TestServeNodeBadAddr(t *testing.T) {
	if _, err := ServeNode("256.0.0.1:bad"); err == nil {
		t.Fatal("bad address accepted")
	}
}
