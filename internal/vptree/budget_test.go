package vptree

import (
	"math/rand"
	"testing"

	"mendel/internal/metric"
)

func TestNearestBudgetZeroIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	items := randomItems(rng, 300, 12)
	tr := Build(metric.Hamming{}, 8, 7, items)
	for trial := 0; trial < 20; trial++ {
		q := randDNA(rng, 12)
		exact := tr.Nearest(q, 5)
		budgeted := tr.NearestBudget(q, 5, 0)
		if len(exact) != len(budgeted) {
			t.Fatal("budget 0 differs from exact")
		}
		for i := range exact {
			if exact[i].Dist != budgeted[i].Dist {
				t.Fatal("budget 0 distances differ from exact")
			}
		}
	}
}

func TestNearestBudgetFindsExactMatchCheaply(t *testing.T) {
	// A true near-duplicate must surface even under a tight budget: the
	// traversal descends nearest-region-first, so the matching leaf is
	// reached within roughly tree-height distance evaluations.
	rng := rand.New(rand.NewSource(52))
	items := randomItems(rng, 20000, 16)
	tr := Build(metric.Hamming{}, 32, 7, items)
	misses := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		target := items[rng.Intn(len(items))]
		got := tr.NearestBudget(target.Key, 1, 512)
		if len(got) == 0 || got[0].Dist != 0 {
			misses++
		}
	}
	// The budget is ~2.5% of the data; allow a few unlucky paths but the
	// overwhelming majority must find the exact duplicate.
	if misses > trials/10 {
		t.Fatalf("budgeted search missed the exact match %d/%d times", misses, trials)
	}
}

func TestNearestBudgetReturnsAtMostK(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	items := randomItems(rng, 500, 10)
	tr := Build(metric.Hamming{}, 8, 7, items)
	got := tr.NearestBudget(randDNA(rng, 10), 7, 64)
	if len(got) > 7 {
		t.Fatalf("returned %d results for k=7", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestNearestBudgetTinyBudgetStillReturnsSomething(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	items := randomItems(rng, 1000, 10)
	tr := Build(metric.Hamming{}, 8, 7, items)
	got := tr.NearestBudget(randDNA(rng, 10), 3, 16)
	if len(got) == 0 {
		t.Fatal("tiny budget returned nothing")
	}
}

func BenchmarkNearestBudgetVsExact(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	items := randomItems(rng, 50000, 16)
	tr := Build(metric.Hamming{}, 32, 7, items)
	queries := make([][]byte, 32)
	for i := range queries {
		queries[i] = randDNA(rng, 16)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Nearest(queries[i%len(queries)], 12)
		}
	})
	b.Run("budget4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.NearestBudget(queries[i%len(queries)], 12, 4096)
		}
	})
}
