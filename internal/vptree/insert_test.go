package vptree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mendel/internal/metric"
)

func TestInsertIntoEmpty(t *testing.T) {
	tr := New(metric.Hamming{}, 4, 7)
	tr.Insert(Item{Key: []byte("ACGT"), Ref: 9})
	if tr.Size() != 1 {
		t.Fatalf("size = %d", tr.Size())
	}
	got := tr.Nearest([]byte("ACGT"), 1)
	if len(got) != 1 || got[0].Ref != 9 {
		t.Fatalf("lookup after insert: %v", got)
	}
}

func TestInsertCase1BucketHasRoom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := Build(metric.Hamming{}, 8, 7, randomItems(rng, 4, 8))
	before := tr.Leaves()
	tr.Insert(Item{Key: randDNA(rng, 8), Ref: 99})
	if tr.Leaves() != before {
		t.Fatal("case 1 must not restructure the tree")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertManyKeepsInvariantsAndBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := New(metric.Hamming{}, 8, 7)
	items := randomItems(rng, 800, 12)
	for i, it := range items {
		tr.Insert(it)
		if i%97 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Size() != 800 {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// The paper's concern: naive insertion degenerates to a linear
	// structure. The four-case scheme must keep the height logarithmic.
	if h := tr.Height(); h > 20 {
		t.Fatalf("height = %d after dynamic inserts", h)
	}
}

func TestInsertedItemsAreFindable(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := New(metric.Hamming{}, 4, 7)
	items := randomItems(rng, 200, 10)
	for _, it := range items {
		tr.Insert(it)
	}
	for i, it := range items {
		got := tr.Nearest(it.Key, 1)
		if len(got) != 1 || got[0].Dist != 0 {
			t.Fatalf("item %d not found after insertion", i)
		}
	}
}

func TestInsertBatchSmallAndLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tr := Build(metric.Hamming{}, 8, 7, randomItems(rng, 500, 10))
	// Small batch: incremental path.
	small := randomItems(rng, 10, 10)
	for i := range small {
		small[i].Ref += 10000
	}
	tr.InsertBatch(small)
	if tr.Size() != 510 {
		t.Fatalf("size = %d", tr.Size())
	}
	// Large batch: rebuild path.
	large := randomItems(rng, 400, 10)
	for i := range large {
		large[i].Ref += 20000
	}
	tr.InsertBatch(large)
	if tr.Size() != 910 {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	tr.InsertBatch(nil)
	if tr.Size() != 910 {
		t.Fatal("empty batch changed size")
	}
}

func TestItemsReturnsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	items := randomItems(rng, 123, 8)
	tr := Build(metric.Hamming{}, 8, 7, items)
	got := tr.Items()
	if len(got) != 123 {
		t.Fatalf("items = %d", len(got))
	}
	seen := map[uint64]bool{}
	for _, it := range got {
		seen[it.Ref] = true
	}
	for _, it := range items {
		if !seen[it.Ref] {
			t.Fatalf("ref %d missing", it.Ref)
		}
	}
}

func TestInsertEquivalentToBuildProperty(t *testing.T) {
	// Property: a tree grown by dynamic insertion answers kNN queries
	// identically (by distance) to a tree built in one shot.
	rng := rand.New(rand.NewSource(16))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := randomItems(r, r.Intn(200)+20, 8)
		built := Build(metric.Hamming{}, 4, 7, items)
		grown := New(metric.Hamming{}, 4, 7)
		for _, it := range items {
			grown.Insert(it)
		}
		for trial := 0; trial < 5; trial++ {
			q := randDNA(rng, 8)
			a := built.Nearest(q, 3)
			b := grown.Nearest(q, 3)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i].Dist != b[i].Dist {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityOverflowGuard(t *testing.T) {
	tr := New(metric.Hamming{}, 8, 7)
	if got := tr.capacity(64); got != int(^uint(0)>>1) {
		t.Fatalf("capacity(64) = %d", got)
	}
	if got := tr.capacity(2); got != 32 {
		t.Fatalf("capacity(2) = %d", got)
	}
}
