// Package vptree implements the vantage point tree of Yianilos (SODA '93)
// over an arbitrary metric, with the two performance refinements the paper
// adopts (§III-D): bucketed leaves, and dynamic insertion with the
// four-case rebalancing scheme of Fu et al. so batches of new segments can
// be added without degrading the tree to linear scans.
//
// Internal vertices hold a vantage point (a copy of one element, used only
// for routing) and a radius mu chosen as the median distance, so elements
// closer than mu descend left and the rest descend right. Items live only
// in leaf buckets.
package vptree

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"mendel/internal/metric"
)

// Item is an element of the tree: a fixed-length residue segment and an
// opaque reference that identifies the indexed block it came from.
type Item struct {
	Key []byte
	Ref uint64
}

// Result is a search hit with its distance from the query.
type Result struct {
	Item
	Dist int
}

// Tree is a bucketed vantage point tree. It is not safe for concurrent
// mutation; storage nodes serialize writes and may serve reads concurrently
// with other reads.
type Tree struct {
	metric    metric.Metric
	bucketCap int
	root      *node
	size      int
	rng       *rand.Rand
}

type node struct {
	vantage []byte // routing vantage point (copy of an item key)
	mu      int
	left    *node
	right   *node
	bucket  []Item // non-nil iff leaf
	count   int    // items in this subtree
	height  int    // leaf = 0
}

// DefaultBucketCap is the leaf capacity used when the caller passes 0.
const DefaultBucketCap = 32

// New creates an empty tree using the given metric. bucketCap <= 0 selects
// DefaultBucketCap. seed makes vantage selection deterministic, which keeps
// cluster nodes reproducible under test.
func New(m metric.Metric, bucketCap int, seed int64) *Tree {
	if bucketCap <= 0 {
		bucketCap = DefaultBucketCap
	}
	return &Tree{
		metric:    m,
		bucketCap: bucketCap,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Build constructs a balanced tree over items in one pass, the preferred
// path when the dataset is known up front (§III-D: the original structure
// expects whole-dataset construction).
func Build(m metric.Metric, bucketCap int, seed int64, items []Item) *Tree {
	t := New(m, bucketCap, seed)
	owned := make([]Item, len(items))
	copy(owned, items)
	t.root = t.build(owned)
	t.size = len(items)
	return t
}

// Size returns the number of items in the tree.
func (t *Tree) Size() int { return t.size }

// Height returns the height of the tree (a single leaf has height 0).
func (t *Tree) Height() int {
	if t.root == nil {
		return 0
	}
	return t.root.height
}

// Leaves returns the number of leaf buckets.
func (t *Tree) Leaves() int {
	var walk func(*node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		if n.bucket != nil {
			return 1
		}
		return walk(n.left) + walk(n.right)
	}
	return walk(t.root)
}

// build recursively constructs a subtree. Items are consumed.
//
// Construction is median-split: a vantage point is chosen, every item's
// distance to it is measured, and the median distance becomes the routing
// radius mu. The vantage RNG state of the whole construction derives from a
// single draw on the tree's rng, and every subtree derives its children's
// seeds deterministically, so the resulting shape is a pure function of the
// tree seed, the operation history and the item slice — independent of how
// many goroutines the parallel build fans out to.
func (t *Tree) build(items []Item) *node {
	return t.buildSeeded(items, t.rng.Int63(), newBuildLimiter())
}

// parallelBuildMin is the subtree size below which recursion stays on the
// calling goroutine: small subtrees finish faster than a goroutine handoff.
const parallelBuildMin = 2048

// buildLimiter caps the extra goroutines one bulk build may fan out to. A
// nil limiter (single-core host) keeps construction fully serial.
type buildLimiter chan struct{}

func newBuildLimiter() buildLimiter {
	extra := runtime.GOMAXPROCS(0) - 1
	if extra <= 0 {
		return nil
	}
	return make(buildLimiter, extra)
}

func (l buildLimiter) tryAcquire() bool {
	if l == nil {
		return false
	}
	select {
	case l <- struct{}{}:
		return true
	default:
		return false
	}
}

func (l buildLimiter) release() { <-l }

func (t *Tree) buildSeeded(items []Item, seed int64, lim buildLimiter) *node {
	if len(items) == 0 {
		return nil
	}
	if len(items) <= t.bucketCap {
		return &node{bucket: items, count: len(items)}
	}
	rng := rand.New(rand.NewSource(seed))
	vantage := selectVantage(t.metric, rng, items)
	dist := make([]int, len(items))
	t.distances(vantage, items, dist, lim)
	mu := medianDistance(dist)
	// Left takes d <= mu to guarantee the left side is non-empty and to keep
	// routing (d <= mu goes left) consistent; the partition is a stable scan
	// so child item order does not depend on the median algorithm.
	nLeft := 0
	for _, d := range dist {
		if d <= mu {
			nLeft++
		}
	}
	if nLeft == len(items) {
		// Degenerate: every element within mu of the vantage (e.g. all
		// identical). An oversized leaf is the only consistent shape.
		return &node{bucket: items, count: len(items)}
	}
	left := make([]Item, 0, nLeft)
	right := make([]Item, 0, len(items)-nLeft)
	for i, it := range items {
		if dist[i] <= mu {
			left = append(left, it)
		} else {
			right = append(right, it)
		}
	}
	leftSeed, rightSeed := rng.Int63(), rng.Int63()
	n := &node{
		vantage: append([]byte(nil), vantage...),
		mu:      mu,
		count:   len(items),
	}
	if len(left) >= parallelBuildMin && lim.tryAcquire() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer lim.release()
			n.left = t.buildSeeded(left, leftSeed, lim)
		}()
		n.right = t.buildSeeded(right, rightSeed, lim)
		wg.Wait()
	} else {
		n.left = t.buildSeeded(left, leftSeed, lim)
		n.right = t.buildSeeded(right, rightSeed, lim)
	}
	n.height = 1 + maxInt(subHeight(n.left), subHeight(n.right))
	return n
}

// distances fills dist[i] with the metric distance from vantage to item i,
// sharding the scan over spare cores for large inputs: the root level of a
// bulk build is a linear pass over the whole dataset and would otherwise
// serialize the entire construction (Amdahl's bottleneck).
func (t *Tree) distances(vantage []byte, items []Item, dist []int, lim buildLimiter) {
	const chunk = 4096
	if lim == nil || len(items) < 2*chunk {
		for i, it := range items {
			dist[i] = t.metric.Distance(vantage, it.Key)
		}
		return
	}
	var wg sync.WaitGroup
	for lo := 0; lo < len(items); lo += chunk {
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		if hi < len(items) && lim.tryAcquire() {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer lim.release()
				for i := lo; i < hi; i++ {
					dist[i] = t.metric.Distance(vantage, items[i].Key)
				}
			}(lo, hi)
			continue
		}
		for i := lo; i < hi; i++ {
			dist[i] = t.metric.Distance(vantage, items[i].Key)
		}
	}
	wg.Wait()
}

// medianDistance returns the element an ascending sort would place at index
// len/2 — the routing radius of the classic vp-tree median split.
func medianDistance(dist []int) int {
	sorted := make([]int, len(dist))
	copy(sorted, dist)
	sort.Ints(sorted)
	return sorted[len(sorted)/2]
}

func subHeight(n *node) int {
	if n == nil {
		return -1
	}
	return n.height
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// selectVantage picks a vantage point by sampling a few candidates and
// choosing the one whose distances to a probe sample have maximal spread
// (second moment about the median), per Yianilos' heuristic. It draws only
// from rng, so concurrent subtree builds stay deterministic.
func selectVantage(m metric.Metric, rng *rand.Rand, items []Item) []byte {
	const candidates, probes = 8, 24
	if len(items) == 1 {
		return items[0].Key
	}
	best, bestSpread := items[0].Key, -1.0
	ds := make([]int, probes)
	for c := 0; c < candidates && c < len(items); c++ {
		cand := items[rng.Intn(len(items))].Key
		for p := range ds {
			ds[p] = m.Distance(cand, items[rng.Intn(len(items))].Key)
		}
		sort.Ints(ds)
		median := ds[len(ds)/2]
		spread := 0.0
		for _, d := range ds {
			diff := float64(d - median)
			spread += diff * diff
		}
		if spread > bestSpread {
			best, bestSpread = cand, spread
		}
	}
	return best
}

// checkInvariants verifies structural invariants for tests: counts, heights,
// leaf placement, and the routing property (left subtree within mu of the
// vantage, right subtree beyond).
func (t *Tree) checkInvariants() error {
	var walk func(n *node) (count int, err error)
	walk = func(n *node) (int, error) {
		if n == nil {
			return 0, nil
		}
		if n.bucket != nil {
			if n.left != nil || n.right != nil {
				return 0, fmt.Errorf("vptree: leaf with children")
			}
			if n.count != len(n.bucket) {
				return 0, fmt.Errorf("vptree: leaf count %d != bucket %d", n.count, len(n.bucket))
			}
			return n.count, nil
		}
		if n.left == nil || n.right == nil {
			return 0, fmt.Errorf("vptree: internal node missing a child")
		}
		lc, err := walk(n.left)
		if err != nil {
			return 0, err
		}
		rc, err := walk(n.right)
		if err != nil {
			return 0, err
		}
		if n.count != lc+rc {
			return 0, fmt.Errorf("vptree: count %d != %d+%d", n.count, lc, rc)
		}
		if want := 1 + maxInt(subHeight(n.left), subHeight(n.right)); n.height != want {
			return 0, fmt.Errorf("vptree: height %d != %d", n.height, want)
		}
		var check func(m *node, left bool) error
		check = func(m *node, left bool) error {
			if m == nil {
				return nil
			}
			if m.bucket != nil {
				for _, it := range m.bucket {
					d := t.metric.Distance(n.vantage, it.Key)
					if left && d > n.mu {
						return fmt.Errorf("vptree: left item at distance %d > mu %d", d, n.mu)
					}
					if !left && d <= n.mu {
						return fmt.Errorf("vptree: right item at distance %d <= mu %d", d, n.mu)
					}
				}
				return nil
			}
			if err := check(m.left, left); err != nil {
				return err
			}
			return check(m.right, left)
		}
		if err := check(n.left, true); err != nil {
			return 0, err
		}
		if err := check(n.right, false); err != nil {
			return 0, err
		}
		return n.count, nil
	}
	count, err := walk(t.root)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("vptree: size %d != walked %d", t.size, count)
	}
	return nil
}
