package vptree

// resultHeap is a max-heap on distance so the worst of the current k-best
// sits at the top and can be evicted cheaply. The sift routines are manual
// (rather than container/heap) because the standard interface boxes every
// pushed and popped Result into an interface value — one heap allocation per
// candidate, on the hottest loop of every subquery.
type resultHeap []Result

func (h resultHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Dist >= h[i].Dist {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (h resultHeap) siftDown(i int) {
	n := len(h)
	for {
		largest := i
		if l := 2*i + 1; l < n && h[l].Dist > h[largest].Dist {
			largest = l
		}
		if r := 2*i + 2; r < n && h[r].Dist > h[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// push adds r, evicting the current worst if the heap already holds k.
func (h *resultHeap) push(r Result, k int) {
	*h = append(*h, r)
	h.siftUp(len(*h) - 1)
	if len(*h) > k {
		h.popWorst()
	}
}

// popWorst removes and returns the root (largest distance).
func (h *resultHeap) popWorst() Result {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.siftDown(0)
	return top
}

// Nearest returns the k nearest items to query, closest first. The search
// maintains a shrinking radius tau around the query (the paper's §III-C):
// a subtree is visited only if the tau-ball can intersect its region, so the
// average traversal is logarithmic.
func (t *Tree) Nearest(query []byte, k int) []Result {
	return t.NearestBudget(query, k, 0)
}

// NearestBudget is Nearest with a bound on the number of distance
// evaluations (0 = unlimited, exact search). Metric-space pruning loses its
// bite on high-entropy segments (the curse of dimensionality makes every
// tau-ball straddle every boundary), so storage nodes cap per-lookup work:
// the traversal still descends nearest-region-first, which reaches genuine
// close neighbours long before the budget runs out, making the result an
// any-time approximation in the same spirit as the system's LSH tier.
func (t *Tree) NearestBudget(query []byte, k, budget int) []Result {
	out, _ := t.NearestBudgetVisits(query, k, budget)
	return out
}

// NearestBudgetVisits is NearestBudget plus the number of distance
// evaluations the traversal performed — the per-lookup work counter the
// observability layer records, and the quantity the budget caps.
func (t *Tree) NearestBudgetVisits(query []byte, k, budget int) ([]Result, int) {
	if k <= 0 || t.root == nil {
		return nil, 0
	}
	h := make(resultHeap, 0, k+1)
	tau := int(^uint(0) >> 1) // +inf until k results are known
	remaining := budget
	if budget <= 0 {
		remaining = int(^uint(0) >> 1)
	}
	visits := 0
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil || remaining <= 0 {
			return
		}
		if n.bucket != nil {
			for _, it := range n.bucket {
				if remaining <= 0 {
					return
				}
				remaining--
				visits++
				d := t.metric.Distance(query, it.Key)
				if d < tau || len(h) < k {
					h.push(Result{Item: it, Dist: d}, k)
					if len(h) == k {
						tau = h[0].Dist
					}
				}
			}
			return
		}
		remaining--
		visits++
		d := t.metric.Distance(query, n.vantage)
		if d <= n.mu {
			// Query inside the vantage ball: left first, and the right
			// subtree only if the tau-ball crosses the boundary
			// (case 3 of §III-C; cases 1 and 2 are the prunes).
			visit(n.left)
			if d+tau > n.mu || len(h) < k {
				visit(n.right)
			}
		} else {
			visit(n.right)
			if d-tau <= n.mu || len(h) < k {
				visit(n.left)
			}
		}
	}
	visit(t.root)
	// Drain the heap into ascending order.
	out := make([]Result, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.popWorst()
	}
	return out, visits
}

// Range returns every item within distance r of query, in no particular
// order.
func (t *Tree) Range(query []byte, r int) []Result {
	var out []Result
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		if n.bucket != nil {
			for _, it := range n.bucket {
				if d := t.metric.Distance(query, it.Key); d <= r {
					out = append(out, Result{Item: it, Dist: d})
				}
			}
			return
		}
		d := t.metric.Distance(query, n.vantage)
		if d-r <= n.mu {
			visit(n.left)
		}
		if d+r > n.mu {
			visit(n.right)
		}
	}
	visit(t.root)
	return out
}
