package vptree

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"mendel/internal/metric"
	"mendel/internal/seq"
)

func randomProteinItems(t *testing.T, rng *rand.Rand, n, w int) []Item {
	t.Helper()
	const letters = "ARNDCQEGHILKMFPSTWYV"
	items := make([]Item, n)
	for i := range items {
		key := make([]byte, w)
		for j := range key {
			key[j] = letters[rng.Intn(len(letters))]
		}
		items[i] = Item{Key: key, Ref: uint64(i)}
	}
	return items
}

// TestBuildDeterministic asserts that bulk construction is a pure function
// of (seed, items): two builds of the same input produce trees that answer
// identically, regardless of how many goroutines the parallel build used.
func TestBuildDeterministic(t *testing.T) {
	m := metric.ForKind(seq.Protein)
	items := randomProteinItems(t, rand.New(rand.NewSource(7)), 6000, 16)
	a := Build(m, 0, 42, items)
	b := Build(m, 0, 42, items)
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	queries := randomProteinItems(t, rand.New(rand.NewSource(8)), 50, 16)
	for _, q := range queries {
		ra, va := a.NearestBudgetVisits(q.Key, 9, 512)
		rb, vb := b.NearestBudgetVisits(q.Key, 9, 512)
		if va != vb || !reflect.DeepEqual(ra, rb) {
			t.Fatalf("same seed, different answers: %d/%d visits", va, vb)
		}
	}
}

// TestBuildDeterministicAcrossGOMAXPROCS pins the stronger property the
// staged ingest path relies on: the serial build (GOMAXPROCS=1) and the
// parallel build produce the same tree shape.
func TestBuildDeterministicAcrossGOMAXPROCS(t *testing.T) {
	m := metric.ForKind(seq.Protein)
	items := randomProteinItems(t, rand.New(rand.NewSource(9)), 5000, 16)

	prev := runtime.GOMAXPROCS(1)
	serial := Build(m, 0, 3, items)
	runtime.GOMAXPROCS(prev)
	parallel := Build(m, 0, 3, items)

	if serial.Size() != parallel.Size() || serial.Height() != parallel.Height() || serial.Leaves() != parallel.Leaves() {
		t.Fatalf("shape diverged: size %d/%d height %d/%d leaves %d/%d",
			serial.Size(), parallel.Size(), serial.Height(), parallel.Height(), serial.Leaves(), parallel.Leaves())
	}
	queries := randomProteinItems(t, rand.New(rand.NewSource(10)), 40, 16)
	for _, q := range queries {
		rs, vs := serial.NearestBudgetVisits(q.Key, 7, 256)
		rp, vp := parallel.NearestBudgetVisits(q.Key, 7, 256)
		if vs != vp || !reflect.DeepEqual(rs, rp) {
			t.Fatalf("serial and parallel trees answer differently")
		}
	}
}

// TestParallelBuildInvariants stresses the concurrent construction path with
// enough items to cross parallelBuildMin at several levels.
func TestParallelBuildInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("large build")
	}
	m := metric.ForKind(seq.Protein)
	items := randomProteinItems(t, rand.New(rand.NewSource(11)), 3*parallelBuildMin, 16)
	tree := Build(m, 0, 1, items)
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.Size() != len(items) {
		t.Fatalf("size %d, want %d", tree.Size(), len(items))
	}
	// Every item must be findable at distance 0.
	for i := 0; i < 200; i++ {
		it := items[i*17%len(items)]
		res := tree.Nearest(it.Key, 1)
		if len(res) != 1 || res[0].Dist != 0 {
			t.Fatalf("item %d not found exactly", it.Ref)
		}
	}
}

// TestHeapMatchesBruteForce cross-checks the manual k-best heap against a
// brute-force scan, including distance ties.
func TestHeapMatchesBruteForce(t *testing.T) {
	m := metric.ForKind(seq.DNA)
	rng := rand.New(rand.NewSource(12))
	items := make([]Item, 400)
	for i := range items {
		key := make([]byte, 8)
		for j := range key {
			key[j] = "ACGT"[rng.Intn(4)]
		}
		items[i] = Item{Key: key, Ref: uint64(i)}
	}
	tree := Build(m, 4, 1, items)
	for trial := 0; trial < 25; trial++ {
		q := make([]byte, 8)
		for j := range q {
			q[j] = "ACGT"[rng.Intn(4)]
		}
		k := 1 + rng.Intn(12)
		got := tree.Nearest(q, k)
		dists := make([]int, len(items))
		for i, it := range items {
			dists[i] = m.Distance(q, it.Key)
		}
		if len(got) != k {
			t.Fatalf("got %d results, want %d", len(got), k)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Dist > got[i].Dist {
				t.Fatalf("results not ascending at %d", i)
			}
		}
		// The k-th best distance must match brute force.
		want := append([]int(nil), dists...)
		sortInts(want)
		for i, r := range got {
			if r.Dist != want[i] {
				t.Fatalf("trial %d: rank %d dist %d, brute force %d", trial, i, r.Dist, want[i])
			}
		}
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
