package vptree

import (
	"math/rand"
	"sort"
	"testing"

	"mendel/internal/metric"
)

func randDNA(rng *rand.Rand, n int) []byte {
	const letters = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(4)]
	}
	return out
}

func randomItems(rng *rand.Rand, n, keyLen int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: randDNA(rng, keyLen), Ref: uint64(i)}
	}
	return items
}

// bruteKNN is the reference nearest-neighbour implementation.
func bruteKNN(m metric.Metric, items []Item, q []byte, k int) []Result {
	res := make([]Result, 0, len(items))
	for _, it := range items {
		res = append(res, Result{Item: it, Dist: m.Distance(q, it.Key)})
	}
	sort.SliceStable(res, func(a, b int) bool { return res[a].Dist < res[b].Dist })
	if k > len(res) {
		k = len(res)
	}
	return res[:k]
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 31, 32, 33, 100, 1000} {
		tr := Build(metric.Hamming{}, 8, 7, randomItems(rng, n, 16))
		if tr.Size() != n {
			t.Fatalf("n=%d: size = %d", n, tr.Size())
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBuildIsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := Build(metric.Hamming{}, 8, 7, randomItems(rng, 4096, 16))
	// A balanced tree over 4096 items with bucket 8 has ~512 leaves and
	// height around 9-10; allow generous slack but reject linear chains.
	if h := tr.Height(); h > 16 {
		t.Fatalf("height = %d, tree is unbalanced", h)
	}
	if l := tr.Leaves(); l < 256 {
		t.Fatalf("leaves = %d", l)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := metric.Hamming{}
	items := randomItems(rng, 500, 12)
	tr := Build(m, 8, 7, items)
	for trial := 0; trial < 50; trial++ {
		q := randDNA(rng, 12)
		k := rng.Intn(10) + 1
		got := tr.Nearest(q, k)
		want := bruteKNN(m, items, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			// Distances must match exactly; ties may order differently.
			if got[i].Dist != want[i].Dist {
				t.Fatalf("trial %d: dist[%d] = %d, want %d", trial, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestNearestExactMatchFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randomItems(rng, 300, 10)
	tr := Build(metric.Hamming{}, 8, 7, items)
	target := items[137]
	got := tr.Nearest(target.Key, 1)
	if len(got) != 1 || got[0].Dist != 0 {
		t.Fatalf("exact match not found: %+v", got)
	}
}

func TestNearestKLargerThanTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomItems(rng, 7, 8)
	tr := Build(metric.Hamming{}, 4, 7, items)
	got := tr.Nearest(randDNA(rng, 8), 100)
	if len(got) != 7 {
		t.Fatalf("results = %d, want 7", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not sorted by distance")
		}
	}
}

func TestNearestDegenerate(t *testing.T) {
	tr := New(metric.Hamming{}, 4, 7)
	if got := tr.Nearest([]byte("ACGT"), 3); got != nil {
		t.Fatalf("empty tree returned %v", got)
	}
	tr.Insert(Item{Key: []byte("ACGT"), Ref: 1})
	if got := tr.Nearest([]byte("ACGT"), 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := metric.Hamming{}
	items := randomItems(rng, 400, 10)
	tr := Build(m, 8, 7, items)
	for trial := 0; trial < 30; trial++ {
		q := randDNA(rng, 10)
		r := rng.Intn(6)
		got := tr.Range(q, r)
		want := 0
		for _, it := range items {
			if m.Distance(q, it.Key) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: range(%d) = %d hits, want %d", trial, r, len(got), want)
		}
		for _, res := range got {
			if res.Dist > r {
				t.Fatalf("trial %d: hit at distance %d > %d", trial, res.Dist, r)
			}
		}
	}
}

func TestAllIdenticalKeys(t *testing.T) {
	// Degenerate dataset: every key identical. Build must not recurse
	// forever; search must find them all.
	items := make([]Item, 100)
	for i := range items {
		items[i] = Item{Key: []byte("AAAA"), Ref: uint64(i)}
	}
	tr := Build(metric.Hamming{}, 8, 7, items)
	if tr.Size() != 100 {
		t.Fatalf("size = %d", tr.Size())
	}
	if got := tr.Nearest([]byte("AAAA"), 5); len(got) != 5 || got[0].Dist != 0 {
		t.Fatalf("degenerate search: %v", got)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
