package vptree

// Insert adds one item using the four-case dynamic update scheme the paper
// adopts from Fu et al. (§III-D):
//
//  1. the target leaf bucket has room — append;
//  2. the leaf is full but its sibling subtree has room — redistribute all
//     values under the common parent;
//  3. both are full but some ancestor's subtree has room — redistribute
//     under that ancestor;
//  4. the tree is completely full — split the root (here: rebuild the whole
//     tree one level taller).
//
// "Room" for a subtree of height h is bucketCap * 2^h items, the capacity of
// a perfectly balanced subtree of that height; redistribution is a balanced
// rebuild of the affected subtree. This keeps the tree balanced so lookups
// stay logarithmic, at the cost the paper notes — extra preprocessing —
// which InsertBatch amortizes.
func (t *Tree) Insert(it Item) {
	if t.root == nil {
		t.root = &node{bucket: []Item{it}, count: 1}
		t.size = 1
		return
	}
	// Route to the leaf, remembering the path.
	path := []*node{}
	n := t.root
	for n.bucket == nil {
		path = append(path, n)
		if t.metric.Distance(n.vantage, it.Key) <= n.mu {
			n = n.left
		} else {
			n = n.right
		}
	}
	if len(n.bucket) < t.bucketCap { // case 1
		n.bucket = append(n.bucket, it)
		n.count++
		for _, p := range path {
			p.count++
		}
		t.size++
		return
	}
	// Cases 2-3: lowest ancestor (parent first) whose subtree has room.
	for i := len(path) - 1; i >= 0; i-- {
		a := path[i]
		if a.count+1 <= t.capacity(a.height) {
			items := append(collect(a, nil), it)
			rebuilt := t.build(items)
			*a = *rebuilt
			// Fix counts and heights on the remaining path (leaf-ward
			// ancestors first so heights propagate upward correctly).
			for j := i - 1; j >= 0; j-- {
				p := path[j]
				p.count++
				p.height = 1 + maxInt(subHeight(p.left), subHeight(p.right))
			}
			t.size++
			return
		}
	}
	// Case 4: completely full tree.
	items := append(collect(t.root, nil), it)
	t.root = t.build(items)
	t.size++
}

// InsertBatch adds items in bulk. Large batches (relative to the current
// size) trigger a single balanced rebuild, which is the paper's middle
// ground between one-at-a-time insertion and whole-dataset construction.
func (t *Tree) InsertBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	if t.root == nil || len(items)*4 >= t.size {
		all := collect(t.root, make([]Item, 0, t.size+len(items)))
		all = append(all, items...)
		t.root = t.build(all)
		t.size += len(items)
		return
	}
	for _, it := range items {
		t.Insert(it)
	}
}

// Items returns a copy of every item in the tree.
func (t *Tree) Items() []Item {
	return collect(t.root, make([]Item, 0, t.size))
}

// capacity is the item capacity of a balanced subtree of the given height.
func (t *Tree) capacity(height int) int {
	if height > 30 {
		return int(^uint(0) >> 1)
	}
	return t.bucketCap << uint(height)
}

func collect(n *node, out []Item) []Item {
	if n == nil {
		return out
	}
	if n.bucket != nil {
		return append(out, n.bucket...)
	}
	out = collect(n.left, out)
	return collect(n.right, out)
}
