package node

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"mendel/internal/invindex"
	"mendel/internal/metric"
	"mendel/internal/seq"
	"mendel/internal/vptree"
	"mendel/internal/wire"
)

// snapshot is the gob wire form of a node's durable state: the bootstrap
// parameters plus every stored block and repository sequence. The local
// vp-tree is rebuilt on load (a balanced bulk build is cheaper than
// serializing tree structure, and guarantees a well-formed index).
type snapshot struct {
	Booted       bool
	Kind         seq.Kind
	Metric       string
	BlockLen     int
	Margin       int
	SearchBudget int
	Groups       [][]string
	HashTree     []byte
	Blocks       []wire.Block
	SeqIDs       []seq.ID
	SeqNames     []string
	SeqData      [][]byte
	// Sketch parameters (zero in snapshots written before the sketch
	// tier existed; the reloaded node then simply does not sketch). The
	// sketch itself is not serialized: LoadFrom re-derives it from the
	// stored blocks, which is deterministic and keeps the snapshot format
	// independent of the sketch encoding.
	SketchK         int
	SketchBloomBits int
	SketchMinHashK  int
}

// SaveTo writes the node's durable state. Together with the coordinator's
// manifest this makes a whole cluster restartable without re-ingestion —
// the paper's "save pre-indexed data" extension (§VII-B), node side.
func (n *Node) SaveTo(w io.Writer) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	snap := snapshot{
		Booted:       n.booted,
		Kind:         n.kind,
		BlockLen:     n.blockLen,
		Margin:       n.margin,
		SearchBudget: n.searchBudget,
	}
	if n.booted {
		snap.Metric = n.met.Name()
		groups := make([][]string, n.topo.Groups())
		for g := range groups {
			groups[g] = n.topo.GroupNodes(g)
		}
		snap.Groups = groups
		if n.hashTree != nil {
			enc, err := n.hashTree.MarshalBinary()
			if err != nil {
				return err
			}
			snap.HashTree = enc
		}
		snap.Blocks = make([]wire.Block, 0, len(n.blocks))
		for _, b := range n.blocks {
			snap.Blocks = append(snap.Blocks, b)
		}
		for id, s := range n.seqs {
			snap.SeqIDs = append(snap.SeqIDs, id)
			snap.SeqNames = append(snap.SeqNames, s.name)
			snap.SeqData = append(snap.SeqData, s.data)
		}
		if n.sketch != nil {
			p := n.sketch.Params()
			snap.SketchK = p.K
			snap.SketchBloomBits = p.BloomBits
			snap.SketchMinHashK = p.MinHashK
		}
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadFrom restores a node's state from a snapshot, replacing everything
// and rebuilding the local vp-tree. The node's address must still appear in
// the saved topology.
func (n *Node) LoadFrom(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("node %s: decoding snapshot: %w", n.addr, err)
	}
	if !snap.Booted {
		return nil // empty snapshot: nothing to restore
	}
	boot := wire.Bootstrap{
		HashTree:        snap.HashTree,
		Metric:          snap.Metric,
		BlockLen:        snap.BlockLen,
		Margin:          snap.Margin,
		Groups:          snap.Groups,
		Kind:            snap.Kind,
		SearchBudget:    snap.SearchBudget,
		SketchK:         snap.SketchK,
		SketchBloomBits: snap.SketchBloomBits,
		SketchMinHashK:  snap.SketchMinHashK,
	}
	if _, err := n.bootstrap(boot); err != nil {
		return err
	}
	met, err := metric.ByName(snap.Metric)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	items := make([]vptree.Item, 0, len(snap.Blocks))
	for _, b := range snap.Blocks {
		ref := invindex.PackRef(b.Seq, b.Start)
		n.blocks[ref] = b
		n.residues += len(b.Content)
		if n.sketch != nil {
			n.sketch.Add(b.Content)
		}
		items = append(items, vptree.Item{Key: b.Content, Ref: ref})
	}
	// Snapshots serialize the block map in arbitrary order; sorting by ref
	// makes the rebuilt tree identical across save/load cycles.
	sort.Slice(items, func(i, j int) bool { return items[i].Ref < items[j].Ref })
	n.tree = vptree.Build(met, 0, 1, items)
	for i, id := range snap.SeqIDs {
		n.seqs[id] = storedSeq{name: snap.SeqNames[i], data: snap.SeqData[i]}
	}
	return nil
}
