package node

import (
	"context"
	"fmt"
	"sort"

	"mendel/internal/dht"
	"mendel/internal/seq"
	"mendel/internal/wire"
)

// pushBatchBlocks bounds each node-to-node IndexBlocks transfer issued while
// answering a PushBlocks request, mirroring the coordinator's ingest batch
// size so repair traffic follows the same staged bulk-build path.
const pushBatchBlocks = 4096

// blockManifest answers wire.BlockManifest with this node's inventory:
// every stored block's packed reference and placement hash, plus the IDs of
// the sequence shards held. Refs are sorted so manifests are deterministic
// regardless of ingest order.
func (n *Node) blockManifest() (any, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.booted {
		return nil, fmt.Errorf("node %s: not bootstrapped", n.addr)
	}
	refs := make([]uint64, 0, len(n.blocks))
	for ref := range n.blocks {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	hashes := make([]uint64, len(refs))
	for i, ref := range refs {
		hashes[i] = dht.KeyHash(n.blocks[ref].Content)
	}
	ids := make([]seq.ID, 0, len(n.seqs))
	for id := range n.seqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return wire.BlockManifestResult{Node: n.addr, Refs: refs, Hashes: hashes, Seqs: ids}, nil
}

// pushBlocks re-replicates the requested blocks to another node via the
// staged IndexBlocks path. The caller (the coordinator's repair pass) must
// follow up with a BuildIndex at the target to fold the staged blocks into
// its vp-tree. Refs the node no longer holds are counted, not fatal: the
// manifest the plan was built from may predate a concurrent change.
func (n *Node) pushBlocks(ctx context.Context, r wire.PushBlocks) (any, error) {
	n.mu.RLock()
	if !n.booted {
		n.mu.RUnlock()
		return nil, fmt.Errorf("node %s: not bootstrapped", n.addr)
	}
	blocks := make([]wire.Block, 0, len(r.Refs))
	missing := 0
	for _, ref := range r.Refs {
		b, ok := n.blocks[ref]
		if !ok {
			missing++
			continue
		}
		blocks = append(blocks, b)
	}
	n.mu.RUnlock()

	pushed := 0
	for start := 0; start < len(blocks); start += pushBatchBlocks {
		end := start + pushBatchBlocks
		if end > len(blocks) {
			end = len(blocks)
		}
		resp, err := n.caller.Call(ctx, r.Target, wire.IndexBlocks{Blocks: blocks[start:end], Stage: true})
		if err != nil {
			return nil, fmt.Errorf("node %s: pushing %d blocks to %s: %w", n.addr, end-start, r.Target, err)
		}
		if ack, ok := resp.(wire.IndexBlocksAck); ok {
			pushed += ack.Accepted
		}
	}
	n.reg.Counter("node_blocks_pushed").Add(int64(pushed))
	return wire.PushBlocksAck{Pushed: pushed, Missing: missing}, nil
}

// pushSequences forwards full sequence-repository shards to another node,
// the sequence counterpart of pushBlocks.
func (n *Node) pushSequences(ctx context.Context, r wire.PushSequences) (any, error) {
	n.mu.RLock()
	if !n.booted {
		n.mu.RUnlock()
		return nil, fmt.Errorf("node %s: not bootstrapped", n.addr)
	}
	msg := wire.StoreSequences{}
	missing := 0
	for _, id := range r.IDs {
		s, ok := n.seqs[id]
		if !ok {
			missing++
			continue
		}
		msg.IDs = append(msg.IDs, id)
		msg.Names = append(msg.Names, s.name)
		msg.Data = append(msg.Data, s.data)
	}
	n.mu.RUnlock()

	if len(msg.IDs) > 0 {
		if _, err := n.caller.Call(ctx, r.Target, msg); err != nil {
			return nil, fmt.Errorf("node %s: pushing %d sequences to %s: %w", n.addr, len(msg.IDs), r.Target, err)
		}
	}
	n.reg.Counter("node_seqs_pushed").Add(int64(len(msg.IDs)))
	return wire.PushSequencesAck{Pushed: len(msg.IDs), Missing: missing}, nil
}

// HealthInfo is a node-local health summary, served by cmd/mendel-node at
// /debug/health. Unlike the coordinator's cluster view it covers only this
// process.
type HealthInfo struct {
	Addr      string `json:"addr"`
	Booted    bool   `json:"booted"`
	Blocks    int    `json:"blocks"`
	Sequences int    `json:"sequences"`
	TreeSize  int    `json:"tree_size"`
	Staged    int    `json:"staged"`
}

// Health reports the node's local health summary.
func (n *Node) Health() HealthInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	treeSize := 0
	if n.tree != nil {
		treeSize = n.tree.Size()
	}
	return HealthInfo{
		Addr:      n.addr,
		Booted:    n.booted,
		Blocks:    len(n.blocks),
		Sequences: len(n.seqs),
		TreeSize:  treeSize,
		Staged:    len(n.staged),
	}
}
