package node

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mendel/internal/align"
	"mendel/internal/anchorset"
	"mendel/internal/matrix"
	"mendel/internal/obs"
	"mendel/internal/wire"
)

// xDrop is the score drop-off that terminates ungapped anchor extension,
// mirroring BLAST's ungapped X parameter.
const xDrop = 20

// localSearch executes the per-node half of §V-B: for each subquery window,
// an n-NN lookup in the local vp-tree produces candidates; candidates are
// filtered by percent identity and consecutivity score; survivors become
// anchors extended in both directions within the block's stored context.
func (n *Node) localSearch(ctx context.Context, r wire.LocalSearch) (any, error) {
	start := time.Now()
	defer func() { n.busyNS.Add(time.Since(start).Nanoseconds()) }()
	n.mu.RLock()
	defer n.mu.RUnlock()
	// For sampled traces the node records its own local_search span under
	// the caller's trace and ships it back in the result, so the
	// coordinator's assembled tree shows per-node k-NN/extend breakdowns
	// without a second round trip.
	var sp *obs.Span
	if tc, ok := obs.TraceFromContext(ctx); ok && tc.Sampled {
		sp = n.tracer.StartTrace("local_search", tc)
		sp.SetNode(n.addr)
	}
	defer sp.End() // idempotent; finalizes the span on every error path
	if !n.booted {
		return nil, fmt.Errorf("node %s: not bootstrapped", n.addr)
	}
	if err := r.Params.Validate(); err != nil {
		return nil, err
	}
	m, ok := matrix.ByName(r.Params.Matrix)
	if !ok {
		return nil, fmt.Errorf("node %s: unknown scoring matrix %q", n.addr, r.Params.Matrix)
	}
	if r.WindowLen != n.blockLen {
		return nil, fmt.Errorf("node %s: window length %d, index uses %d", n.addr, r.WindowLen, n.blockLen)
	}
	for _, off := range r.Offsets {
		if off < 0 || off+r.WindowLen > len(r.Query) {
			return nil, fmt.Errorf("node %s: window [%d:%d] outside query of length %d",
				n.addr, off, off+r.WindowLen, len(r.Query))
		}
	}
	// Subquery windows are independent; shard them over a few workers.
	// The node's read lock is held for the whole request, so workers may
	// touch the tree and block store freely.
	workers := localSearchWorkers(len(r.Offsets))
	type workerStats struct {
		anchors  []wire.Anchor
		knnNs    int64
		extendNs int64
		visits   int64
	}
	perWorker := make([]workerStats, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var ws workerStats
			// Per-worker consecutivity scratch, reused across every
			// candidate this worker filters.
			matched := make([]bool, r.WindowLen)
			for i := w; i < len(r.Offsets); i += workers {
				off := r.Offsets[i]
				window := r.Query[off : off+r.WindowLen]
				t0 := time.Now()
				cands, visits := n.tree.NearestBudgetVisits(window, r.Params.Neighbors, n.searchBudget)
				knn := time.Since(t0).Nanoseconds()
				ws.knnNs += knn
				ws.visits += int64(visits)
				n.reg.Histogram("node_knn_visits").Observe(int64(visits))
				n.reg.Histogram("node_knn_ns").Observe(knn)
				t0 = time.Now()
				for _, cand := range cands {
					block, ok := n.blocks[cand.Ref]
					if !ok {
						continue // cannot happen; defensive against store drift
					}
					if identity(window, block.Content) < r.Params.Identity {
						continue
					}
					if cScoreInto(window, block.Content, m, matched) < r.Params.CScore {
						continue
					}
					ws.anchors = append(ws.anchors, extendAnchor(r.Query, off, r.WindowLen, block, m))
				}
				ws.extendNs += time.Since(t0).Nanoseconds()
			}
			perWorker[w] = ws
		}(w)
	}
	wg.Wait()
	var anchors []wire.Anchor
	res := wire.LocalSearchResult{}
	for _, ws := range perWorker {
		anchors = append(anchors, ws.anchors...)
		res.KNNNs += ws.knnNs
		res.ExtendNs += ws.extendNs
		res.Visits += ws.visits
	}
	n.reg.Counter("node_local_searches").Inc()
	n.reg.Histogram("node_local_search_ns").Observe(time.Since(start).Nanoseconds())
	// Adjacent subqueries routinely rediscover the same region; merge
	// locally so the group entry point aggregates less data.
	res.Anchors = anchorset.Merge(anchors)
	if sp != nil {
		sp.SetAttr("offsets", int64(len(r.Offsets)))
		sp.SetAttr("anchors", int64(len(res.Anchors)))
		sp.AddTimed("knn", time.Duration(res.KNNNs), obs.Attr{Key: "visits", Value: res.Visits})
		sp.AddTimed("ungapped", time.Duration(res.ExtendNs))
		sp.End()
		res.Spans = []obs.SpanSnapshot{sp.Snapshot()}
	}
	return res, nil
}

// identity is the fraction of positions at which the window matches the
// candidate exactly — the complement of the paper's normalized Hamming
// formula, oriented so that larger is better.
func identity(window, candidate []byte) float64 {
	if len(window) == 0 {
		return 0
	}
	matches := 0
	for i := range window {
		if window[i] == candidate[i] {
			matches++
		}
	}
	return float64(matches) / float64(len(candidate))
}

// localSearchWorkers sizes the subquery worker pool: half the cores (the
// other half serve concurrent requests), floored at one so single-core
// machines — CI runners in particular — still make progress, and capped at
// the number of windows so no worker spins up idle.
func localSearchWorkers(nOffsets int) int {
	workers := runtime.GOMAXPROCS(0) / 2
	if workers < 1 {
		workers = 1
	}
	if workers > nOffsets {
		workers = nOffsets
	}
	return workers
}

// cScore is the paper's consecutivity score: of the matching positions, the
// fraction that sit in runs of at least two. For protein data a position
// "matches" when the scoring matrix gives the substitution a positive score
// (§V-B); exact equality always matches.
func cScore(window, candidate []byte, m *matrix.Matrix) float64 {
	return cScoreInto(window, candidate, m, make([]bool, len(window)))
}

// cScoreInto is cScore with caller-owned match scratch (len(window) bools),
// letting the localSearch workers score thousands of candidates without
// per-candidate allocation.
func cScoreInto(window, candidate []byte, m *matrix.Matrix, matched []bool) float64 {
	n := len(window)
	if n == 0 {
		return 0
	}
	matched = matched[:n]
	total := 0
	for i := 0; i < n; i++ {
		// Assign (not just set) so a reused scratch carries no stale trues.
		ok := window[i] == candidate[i] || m.Score(window[i], candidate[i]) > 0
		matched[i] = ok
		if ok {
			total++
		}
	}
	if total == 0 {
		return 0
	}
	consecutive := 0
	for i := 0; i < n; i++ {
		if !matched[i] {
			continue
		}
		if (i > 0 && matched[i-1]) || (i < n-1 && matched[i+1]) {
			consecutive++
		}
	}
	return float64(consecutive) / float64(total)
}

// extendAnchor grows a seed match in both directions: on the subject side
// within the block's stored context margins (standing in for the paper's
// walk over neighbouring block references), and on the query side over the
// full query, stopping via X-drop when the score deteriorates.
func extendAnchor(query []byte, qOff, w int, block wire.Block, m *matrix.Matrix) wire.Anchor {
	seg := align.ExtendUngapped(query, block.Context, qOff, block.CtxOff, w, m, xDrop)
	ctxStart := block.Start - block.CtxOff // context offset -> global subject offset
	return wire.Anchor{
		Seq:    block.Seq,
		QStart: seg.QStart,
		QEnd:   seg.QEnd,
		SStart: ctxStart + seg.SStart,
		SEnd:   ctxStart + seg.SEnd,
		Score:  seg.Score,
	}
}

// blockByRef is a test hook.
func (n *Node) blockByRef(ref uint64) (wire.Block, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	b, ok := n.blocks[ref]
	return b, ok
}
