// Package node implements a Mendel storage node: the local inverted-index
// block store, the memory-resident dynamic vp-tree over those blocks
// (§V-A3), the node's shard of the distributed sequence repository, and the
// query-side roles every node can play — local searcher and group entry
// point (§V-B). The architecture is symmetric: all nodes run identical code
// and differ only in the data the two-tier DHT routed to them.
package node

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mendel/internal/dht"
	"mendel/internal/invindex"
	"mendel/internal/metric"
	"mendel/internal/obs"
	"mendel/internal/seq"
	"mendel/internal/sketch"
	"mendel/internal/transport"
	"mendel/internal/vphash"
	"mendel/internal/vptree"
	"mendel/internal/wire"
)

// Node is one storage node. Create with New, wire it to a transport, then
// drive it entirely through Handle.
type Node struct {
	addr   string
	caller transport.Caller

	mu sync.RWMutex
	// Cluster state, set by Bootstrap.
	booted       bool
	kind         seq.Kind
	met          metric.Metric
	blockLen     int
	margin       int
	searchBudget int
	topo         *dht.Topology
	hashTree     *vphash.Tree
	group        int
	// Storage state.
	tree     *vptree.Tree
	blocks   map[uint64]wire.Block
	residues int
	seqs     map[seq.ID]storedSeq
	// staged holds blocks accepted with IndexBlocks.Stage, awaiting the
	// BuildIndex bulk build.
	staged []vptree.Item
	// sketch accumulates k-mer signatures over every accepted block's
	// content. Nil when the bootstrapping coordinator predates the sketch
	// tier (Bootstrap.SketchK == 0), in which case SketchFetch answers
	// empty and the coordinator never treats this node's group as
	// prefilterable.
	sketch *sketch.Sketch

	// busyNS accumulates time spent in localSearch (atomic).
	busyNS atomic.Int64

	// Observability sinks; all may be nil (no-op). Set via Observe /
	// ObserveHistory before serving traffic.
	reg    *obs.Registry
	tracer *obs.Tracer
	series *obs.TimeSeries
}

type storedSeq struct {
	name string
	data []byte
}

// New creates an unbooted node. caller is used when the node acts as a
// group entry point and fans subqueries out to its peers.
func New(addr string, caller transport.Caller) *Node {
	return &Node{
		addr:   addr,
		caller: caller,
		blocks: make(map[uint64]wire.Block),
		seqs:   make(map[seq.ID]storedSeq),
	}
}

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.addr }

// Observe attaches the node's observability sinks: reg records vp-tree
// visit counts, per-stage latencies and block-fetch metrics; tracer records
// a span tree per group-entry-point query. Either may be nil. Call before
// the node serves traffic.
func (n *Node) Observe(reg *obs.Registry, tracer *obs.Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg = reg
	n.tracer = tracer
}

// ObserveHistory attaches the node's windowed time-series sampler so
// wire.MetricsHistory pulls answer with real data. May be nil.
func (n *Node) ObserveHistory(ts *obs.TimeSeries) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.series = ts
}

// metrics answers wire.Metrics with a snapshot of the node's registry.
func (n *Node) metrics() wire.MetricsResult {
	n.mu.RLock()
	reg := n.reg
	n.mu.RUnlock()
	return wire.MetricsResult{Node: n.addr, Metrics: reg.Snapshot()}
}

// metricsHistory answers wire.MetricsHistory with the node's windowed
// series (empty when no sampler is attached — obs.TimeSeries is nil-safe).
func (n *Node) metricsHistory(r wire.MetricsHistory) wire.MetricsHistoryResult {
	n.mu.RLock()
	ts := n.series
	n.mu.RUnlock()
	h := ts.History(time.Duration(r.WindowNS))
	if h.Node == "" {
		h.Node = n.addr
	}
	return wire.MetricsHistoryResult{Node: n.addr, History: h}
}

// Handle implements transport.Handler, dispatching every wire message the
// node understands.
func (n *Node) Handle(ctx context.Context, req any) (any, error) {
	switch r := req.(type) {
	case wire.Ping:
		n.mu.RLock()
		booted := n.booted
		n.mu.RUnlock()
		return wire.Pong{Node: n.addr, Booted: booted}, nil
	case wire.Bootstrap:
		return n.bootstrap(r)
	case wire.UpdateTopology:
		return n.updateTopology(r)
	case wire.IndexBlocks:
		return n.indexBlocks(r)
	case wire.BuildIndex:
		return n.buildIndex()
	case wire.StoreSequences:
		return n.storeSequences(r)
	case wire.FetchRegion:
		return n.fetchRegion(ctx, r)
	case wire.LocalSearch:
		return n.localSearch(ctx, r)
	case wire.GroupSearch:
		return n.groupSearch(ctx, r)
	case wire.GroupSearchBatch:
		return n.groupSearchBatch(ctx, r)
	case wire.BlockManifest:
		return n.blockManifest()
	case wire.PushBlocks:
		return n.pushBlocks(ctx, r)
	case wire.PushSequences:
		return n.pushSequences(ctx, r)
	case wire.SketchFetch:
		return n.sketchFetch()
	case wire.Stats:
		return n.stats(), nil
	case wire.Metrics:
		return n.metrics(), nil
	case wire.MetricsHistory:
		return n.metricsHistory(r), nil
	case wire.TraceFetch:
		return n.traceFetch(r)
	default:
		return nil, fmt.Errorf("node %s: unknown request %T", n.addr, req)
	}
}

func (n *Node) bootstrap(b wire.Bootstrap) (any, error) {
	met, err := metric.ByName(b.Metric)
	if err != nil {
		return nil, err
	}
	var hashTree *vphash.Tree
	if len(b.HashTree) > 0 {
		hashTree = new(vphash.Tree)
		if err := hashTree.UnmarshalBinary(b.HashTree); err != nil {
			return nil, err
		}
	}
	topo, err := dht.NewTopology(b.Groups, 0)
	if err != nil {
		return nil, err
	}
	group, ok := topo.GroupOf(n.addr)
	if !ok {
		return nil, fmt.Errorf("node %s: not a member of the bootstrapped topology", n.addr)
	}
	if b.BlockLen <= 0 {
		return nil, fmt.Errorf("node %s: bad block length %d", n.addr, b.BlockLen)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	n.booted = true
	n.kind = b.Kind
	n.met = met
	n.blockLen = b.BlockLen
	n.margin = b.Margin
	n.searchBudget = b.SearchBudget
	n.topo = topo
	n.hashTree = hashTree
	n.group = group
	n.tree = vptree.New(met, 0, 1)
	n.blocks = make(map[uint64]wire.Block)
	n.residues = 0
	n.seqs = make(map[seq.ID]storedSeq)
	n.staged = nil
	n.sketch = nil
	if b.SketchK > 0 {
		n.sketch = sketch.New(sketch.Params{
			K:         b.SketchK,
			BloomBits: b.SketchBloomBits,
			MinHashK:  b.SketchMinHashK,
			Kind:      b.Kind,
		})
	}
	return wire.BootstrapAck{}, nil
}

// updateTopology applies a membership change. The node's stored blocks and
// sequences are untouched: intra-group queries fan to every member, so data
// that no longer matches the ring placement is still found, and the ring
// only steers future placements.
func (n *Node) updateTopology(r wire.UpdateTopology) (any, error) {
	topo, err := dht.NewTopology(r.Groups, 0)
	if err != nil {
		return nil, err
	}
	group, ok := topo.GroupOf(n.addr)
	if !ok {
		return nil, fmt.Errorf("node %s: excluded from updated topology", n.addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.booted {
		return nil, fmt.Errorf("node %s: not bootstrapped", n.addr)
	}
	n.topo = topo
	n.group = group
	return wire.UpdateTopologyAck{}, nil
}

func (n *Node) indexBlocks(r wire.IndexBlocks) (any, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.booted {
		return nil, fmt.Errorf("node %s: not bootstrapped", n.addr)
	}
	items := make([]vptree.Item, 0, len(r.Blocks))
	for _, b := range r.Blocks {
		if len(b.Content) != n.blockLen {
			return nil, fmt.Errorf("node %s: block length %d, expected %d", n.addr, len(b.Content), n.blockLen)
		}
		ref := invindex.PackRef(b.Seq, b.Start)
		if _, dup := n.blocks[ref]; dup {
			continue
		}
		n.blocks[ref] = b
		n.residues += len(b.Content)
		if n.sketch != nil {
			n.sketch.Add(b.Content)
		}
		items = append(items, vptree.Item{Key: b.Content, Ref: ref})
	}
	if r.Stage {
		// Deferred indexing: the blocks are stored and searchable state is
		// untouched until BuildIndex folds everything staged into the tree
		// at once. Concurrent ingest senders hit this path, so the tree
		// never sees their (nondeterministic) arrival order.
		n.staged = append(n.staged, items...)
		return wire.IndexBlocksAck{Accepted: len(items)}, nil
	}
	// Batched insertion into the local dynamic vp-tree (§III-D's middle
	// ground between per-element inserts and full rebuilds).
	n.tree.InsertBatch(items)
	return wire.IndexBlocksAck{Accepted: len(items)}, nil
}

// buildIndex folds every staged block into the local vp-tree. Items are
// sorted by packed block reference first, so the resulting tree is a pure
// function of the set of blocks placed on this node — identical whether the
// ingest pipeline delivered them serially or from many concurrent senders.
func (n *Node) buildIndex() (any, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.booted {
		return nil, fmt.Errorf("node %s: not bootstrapped", n.addr)
	}
	staged := n.staged
	n.staged = nil
	if len(staged) == 0 {
		return wire.BuildIndexAck{}, nil
	}
	sort.Slice(staged, func(i, j int) bool { return staged[i].Ref < staged[j].Ref })
	n.tree.InsertBatch(staged)
	return wire.BuildIndexAck{Items: len(staged)}, nil
}

func (n *Node) storeSequences(r wire.StoreSequences) (any, error) {
	if len(r.IDs) != len(r.Data) || len(r.IDs) != len(r.Names) {
		return nil, fmt.Errorf("node %s: malformed StoreSequences", n.addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, id := range r.IDs {
		n.seqs[id] = storedSeq{name: r.Names[i], data: r.Data[i]}
	}
	return wire.StoreSequencesAck{}, nil
}

func (n *Node) fetchRegion(ctx context.Context, r wire.FetchRegion) (any, error) {
	began := time.Now()
	n.mu.RLock()
	defer n.mu.RUnlock()
	// Region fetches run during the coordinator's gapped-extension stage;
	// for sampled traces the span lands in this node's ring, from where
	// TraceFetch pulls it into the assembled tree (Region replies stay
	// lean — fetches are the query path's most frequent RPC).
	var sp *obs.Span
	if tc, ok := obs.TraceFromContext(ctx); ok && tc.Sampled {
		sp = n.tracer.StartTrace("fetch_region", tc)
		sp.SetNode(n.addr)
		sp.SetAttr("seq", int64(r.Seq))
		defer sp.End()
	}
	s, ok := n.seqs[r.Seq]
	if !ok {
		n.reg.Counter("node_fetch_region_misses").Inc()
		return nil, fmt.Errorf("node %s: sequence %d not stored here", n.addr, r.Seq)
	}
	start, end := r.Start, r.End
	if start < 0 {
		start = 0
	}
	if end > len(s.data) {
		end = len(s.data)
	}
	if start > end {
		start = end
	}
	data := make([]byte, end-start)
	copy(data, s.data[start:end])
	n.reg.Histogram("node_fetch_region_ns").Observe(time.Since(began).Nanoseconds())
	n.reg.Counter("node_fetch_region_bytes").Add(int64(len(data)))
	sp.SetAttr("bytes", int64(len(data)))
	return wire.Region{Seq: r.Seq, Start: start, Data: data, Len: len(s.data)}, nil
}

// sketchFetch answers wire.SketchFetch with the node's marshaled k-mer
// sketch. An empty payload means the node is not sketching (pre-sketch
// bootstrap); the coordinator then marks the group's merged sketch
// incomplete and never skips it.
func (n *Node) sketchFetch() (any, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.booted {
		return nil, fmt.Errorf("node %s: not bootstrapped", n.addr)
	}
	res := wire.SketchFetchResult{Node: n.addr}
	if n.sketch != nil {
		enc, err := n.sketch.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("node %s: marshaling sketch: %w", n.addr, err)
		}
		res.Sketch = enc
	}
	return res, nil
}

// traceFetch answers wire.TraceFetch from the node's local tracer ring —
// the pull half of cross-node trace assembly.
func (n *Node) traceFetch(r wire.TraceFetch) (any, error) {
	n.mu.RLock()
	tracer := n.tracer
	n.mu.RUnlock()
	return wire.TraceFetchResult{Node: n.addr, Spans: tracer.Trace(r.TraceID)}, nil
}

func (n *Node) stats() wire.StatsResult {
	n.mu.RLock()
	defer n.mu.RUnlock()
	treeSize := 0
	if n.tree != nil {
		treeSize = n.tree.Size()
	}
	topoNodes := 0
	if n.topo != nil {
		topoNodes = n.topo.NumNodes()
	}
	return wire.StatsResult{
		Node:      n.addr,
		Blocks:    len(n.blocks),
		Residues:  n.residues,
		Sequences: len(n.seqs),
		TreeSize:  treeSize,
		BusyNS:    n.busyNS.Load(),
		TopoNodes: topoNodes,
	}
}
