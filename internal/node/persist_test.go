package node

import (
	"bytes"
	"context"
	"testing"

	"mendel/internal/invindex"
	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

func TestSnapshotRoundTripRestoresSearch(t *testing.T) {
	_, nodes, _ := testCluster(t, 1, 8)
	n := nodes[0]
	ctx := context.Background()
	ref := "ACGTACGTGGCCTTAAGGCCTTACGTACGT"
	if _, err := n.Handle(ctx, wire.IndexBlocks{Blocks: blocksFor(t, 3, ref, 8)}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Handle(ctx, wire.StoreSequences{
		IDs: []seq.ID{3}, Names: []string{"ref"}, Data: [][]byte{[]byte(ref)},
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := n.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}

	// A brand-new node process on the same address restores everything.
	restored := New("n0", transport.NewMemNetwork())
	if err := restored.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	origStats := n.stats()
	newStats := restored.stats()
	if newStats.Blocks != origStats.Blocks || newStats.TreeSize != origStats.TreeSize ||
		newStats.Sequences != origStats.Sequences || newStats.Residues != origStats.Residues {
		t.Fatalf("restored stats %+v != original %+v", newStats, origStats)
	}

	params := wire.DefaultParams()
	params.Matrix = "DNA"
	params.Identity = 0.9
	params.CScore = 0.5
	resp, err := restored.Handle(ctx, wire.LocalSearch{
		Query: []byte(ref[10:18]), Offsets: []int{0}, WindowLen: 8, Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.(wire.LocalSearchResult).Anchors) == 0 {
		t.Fatal("restored node found nothing")
	}
	// The repository shard also survives.
	region, err := restored.Handle(ctx, wire.FetchRegion{Seq: 3, Start: 0, End: 8})
	if err != nil {
		t.Fatal(err)
	}
	if string(region.(wire.Region).Data) != ref[:8] {
		t.Fatal("restored repository wrong")
	}
}

func TestSnapshotOfUnbootedNodeIsNoop(t *testing.T) {
	n := New("solo", transport.NewMemNetwork())
	var buf bytes.Buffer
	if err := n.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New("solo", transport.NewMemNetwork())
	if err := restored.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.stats().Blocks != 0 {
		t.Fatal("empty snapshot produced data")
	}
	// Operations still require bootstrap.
	if _, err := restored.Handle(context.Background(), wire.IndexBlocks{}); err == nil {
		t.Fatal("unbooted restore accepted indexing")
	}
}

func TestLoadFromRejectsGarbage(t *testing.T) {
	n := New("solo", transport.NewMemNetwork())
	if err := n.LoadFrom(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestLoadFromRejectsForeignTopology(t *testing.T) {
	_, nodes, _ := testCluster(t, 1, 8)
	var buf bytes.Buffer
	if err := nodes[0].SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Restoring under a different address must fail: the node is not part
	// of the snapshot's topology.
	other := New("different-addr", transport.NewMemNetwork())
	if err := other.LoadFrom(&buf); err == nil {
		t.Fatal("foreign snapshot accepted")
	}
}

func TestBlockByRefHook(t *testing.T) {
	_, nodes, _ := testCluster(t, 1, 8)
	n := nodes[0]
	blocks := blocksFor(t, 2, "ACGTACGTACGTACGT", 8)
	if _, err := n.Handle(context.Background(), wire.IndexBlocks{Blocks: blocks}); err != nil {
		t.Fatal(err)
	}
	ref := invindex.PackRef(blocks[0].Seq, blocks[0].Start)
	b, ok := n.blockByRef(ref)
	if !ok || b.Start != blocks[0].Start {
		t.Fatalf("blockByRef = %+v %v", b, ok)
	}
	if _, ok := n.blockByRef(^uint64(0)); ok {
		t.Fatal("missing ref resolved")
	}
}
