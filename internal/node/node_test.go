package node

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"mendel/internal/invindex"
	"mendel/internal/metric"
	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/vphash"
	"mendel/internal/wire"
)

// testCluster wires count nodes into a mem network with a one-group
// topology and bootstraps them for DNA data.
func testCluster(t *testing.T, count int, blockLen int) (*transport.MemNetwork, []*Node, wire.Bootstrap) {
	t.Helper()
	net := transport.NewMemNetwork()
	var addrs []string
	var nodes []*Node
	for i := 0; i < count; i++ {
		addr := "n" + string(rune('0'+i))
		n := New(addr, net)
		net.Register(addr, n)
		nodes = append(nodes, n)
		addrs = append(addrs, addr)
	}
	rng := rand.New(rand.NewSource(1))
	sample := make([][]byte, 200)
	for i := range sample {
		sample[i] = randDNA(rng, blockLen)
	}
	tree, err := vphash.Build(metric.Hamming{}, sample, 2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := tree.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	boot := wire.Bootstrap{
		HashTree: enc,
		Metric:   "hamming",
		BlockLen: blockLen,
		Margin:   8,
		Groups:   [][]string{addrs},
		Kind:     seq.DNA,
	}
	for _, n := range nodes {
		if _, err := n.Handle(context.Background(), boot); err != nil {
			t.Fatal(err)
		}
	}
	return net, nodes, boot
}

func randDNA(rng *rand.Rand, n int) []byte {
	const letters = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(4)]
	}
	return out
}

func blocksFor(t *testing.T, id seq.ID, data string, blockLen int) []wire.Block {
	t.Helper()
	s := seq.MustNew(id, "ref", seq.DNA, data)
	raw := invindex.Blocks(s, invindex.Config{BlockLen: blockLen, Margin: 8})
	out := make([]wire.Block, len(raw))
	for i, b := range raw {
		out[i] = wire.Block{Seq: b.Seq, Start: b.Start, Content: b.Content, Context: b.Context, CtxOff: b.CtxOff}
	}
	return out
}

func TestPing(t *testing.T) {
	_, nodes, _ := testCluster(t, 1, 8)
	resp, err := nodes[0].Handle(context.Background(), wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(wire.Pong).Node != "n0" {
		t.Fatalf("pong = %#v", resp)
	}
}

func TestUnknownMessage(t *testing.T) {
	_, nodes, _ := testCluster(t, 1, 8)
	if _, err := nodes[0].Handle(context.Background(), 42); err == nil {
		t.Fatal("unknown message accepted")
	}
}

func TestBootstrapValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	n := New("solo", net)
	ctx := context.Background()
	if _, err := n.Handle(ctx, wire.Bootstrap{Metric: "bogus", BlockLen: 8, Groups: [][]string{{"solo"}}}); err == nil {
		t.Error("bad metric accepted")
	}
	if _, err := n.Handle(ctx, wire.Bootstrap{Metric: "hamming", BlockLen: 8, Groups: [][]string{{"other"}}}); err == nil {
		t.Error("topology without self accepted")
	}
	if _, err := n.Handle(ctx, wire.Bootstrap{Metric: "hamming", BlockLen: 0, Groups: [][]string{{"solo"}}}); err == nil {
		t.Error("zero block length accepted")
	}
	if _, err := n.Handle(ctx, wire.Bootstrap{Metric: "hamming", BlockLen: 8, HashTree: []byte("junk"), Groups: [][]string{{"solo"}}}); err == nil {
		t.Error("corrupt hash tree accepted")
	}
}

func TestOperationsRequireBootstrap(t *testing.T) {
	n := New("solo", transport.NewMemNetwork())
	ctx := context.Background()
	if _, err := n.Handle(ctx, wire.IndexBlocks{}); err == nil || !strings.Contains(err.Error(), "bootstrapped") {
		t.Errorf("index: %v", err)
	}
	if _, err := n.Handle(ctx, wire.LocalSearch{Params: wire.DefaultParams()}); err == nil {
		t.Error("search before bootstrap accepted")
	}
}

func TestIndexBlocksAndStats(t *testing.T) {
	_, nodes, _ := testCluster(t, 1, 8)
	n := nodes[0]
	blocks := blocksFor(t, 1, "ACGTACGTACGTACGTACGT", 8)
	resp, err := n.Handle(context.Background(), wire.IndexBlocks{Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(wire.IndexBlocksAck).Accepted; got != len(blocks) {
		t.Fatalf("accepted = %d, want %d", got, len(blocks))
	}
	// Duplicate submission is idempotent.
	resp, err = n.Handle(context.Background(), wire.IndexBlocks{Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(wire.IndexBlocksAck).Accepted; got != 0 {
		t.Fatalf("duplicate accepted = %d", got)
	}
	stats := n.stats()
	if stats.Blocks != len(blocks) || stats.TreeSize != len(blocks) {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Residues != len(blocks)*8 {
		t.Fatalf("residues = %d", stats.Residues)
	}
}

func TestIndexBlocksRejectsWrongLength(t *testing.T) {
	_, nodes, _ := testCluster(t, 1, 8)
	bad := wire.IndexBlocks{Blocks: []wire.Block{{Seq: 1, Start: 0, Content: []byte("ACG")}}}
	if _, err := nodes[0].Handle(context.Background(), bad); err == nil {
		t.Fatal("wrong-length block accepted")
	}
}

func TestSequenceRepository(t *testing.T) {
	_, nodes, _ := testCluster(t, 1, 8)
	n := nodes[0]
	ctx := context.Background()
	store := wire.StoreSequences{
		IDs:   []seq.ID{7},
		Names: []string{"chr7"},
		Data:  [][]byte{[]byte("ACGTACGTAC")},
	}
	if _, err := n.Handle(ctx, store); err != nil {
		t.Fatal(err)
	}
	resp, err := n.Handle(ctx, wire.FetchRegion{Seq: 7, Start: 2, End: 6})
	if err != nil {
		t.Fatal(err)
	}
	region := resp.(wire.Region)
	if string(region.Data) != "GTAC" || region.Start != 2 || region.Len != 10 {
		t.Fatalf("region = %+v", region)
	}
	// Clamping.
	resp, _ = n.Handle(ctx, wire.FetchRegion{Seq: 7, Start: -5, End: 99})
	if string(resp.(wire.Region).Data) != "ACGTACGTAC" {
		t.Fatalf("clamped region = %+v", resp)
	}
	resp, _ = n.Handle(ctx, wire.FetchRegion{Seq: 7, Start: 8, End: 3})
	if len(resp.(wire.Region).Data) != 0 {
		t.Fatal("inverted range should be empty")
	}
	if _, err := n.Handle(ctx, wire.FetchRegion{Seq: 99}); err == nil {
		t.Fatal("missing sequence fetch accepted")
	}
	if _, err := n.Handle(ctx, wire.StoreSequences{IDs: []seq.ID{1}}); err == nil {
		t.Fatal("malformed store accepted")
	}
}

func TestLocalSearchFindsExactSegment(t *testing.T) {
	_, nodes, _ := testCluster(t, 1, 8)
	n := nodes[0]
	ctx := context.Background()
	ref := "ACGTACGTGGCCTTAAGGCCTTACGTACGT"
	if _, err := n.Handle(ctx, wire.IndexBlocks{Blocks: blocksFor(t, 3, ref, 8)}); err != nil {
		t.Fatal(err)
	}
	params := wire.DefaultParams()
	params.Matrix = "DNA"
	params.Identity = 0.9
	params.CScore = 0.5
	params.Neighbors = 4
	query := []byte(ref[10:18]) // exact 8-mer from the reference
	resp, err := n.Handle(ctx, wire.LocalSearch{
		Query: query, Offsets: []int{0}, WindowLen: 8, Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	anchors := resp.(wire.LocalSearchResult).Anchors
	if len(anchors) == 0 {
		t.Fatal("no anchors for exact segment")
	}
	found := false
	for _, a := range anchors {
		if a.Seq == 3 && a.SStart <= 10 && a.SEnd >= 18 {
			found = true
		}
	}
	if !found {
		t.Fatalf("anchors = %+v", anchors)
	}
}

func TestLocalSearchValidation(t *testing.T) {
	_, nodes, _ := testCluster(t, 1, 8)
	n := nodes[0]
	ctx := context.Background()
	params := wire.DefaultParams()
	params.Matrix = "DNA"
	if _, err := n.Handle(ctx, wire.LocalSearch{Query: []byte("ACGTACGT"), Offsets: []int{0}, WindowLen: 4, Params: params}); err == nil {
		t.Error("mismatched window length accepted")
	}
	if _, err := n.Handle(ctx, wire.LocalSearch{Query: []byte("ACGTACGT"), Offsets: []int{5}, WindowLen: 8, Params: params}); err == nil {
		t.Error("out-of-range offset accepted")
	}
	bad := params
	bad.Matrix = "NOPE"
	if _, err := n.Handle(ctx, wire.LocalSearch{Query: []byte("ACGTACGT"), Offsets: []int{0}, WindowLen: 8, Params: bad}); err == nil {
		t.Error("unknown matrix accepted")
	}
	invalid := params
	invalid.Neighbors = 0
	if _, err := n.Handle(ctx, wire.LocalSearch{Query: []byte("ACGTACGT"), Offsets: []int{0}, WindowLen: 8, Params: invalid}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestGroupSearchAggregatesAcrossNodes(t *testing.T) {
	_, nodes, _ := testCluster(t, 3, 8)
	ctx := context.Background()
	ref := "TTTTTTTTACGTACGTGGCCAAGGTTTTTTTT"
	blocks := blocksFor(t, 5, ref, 8)
	// Scatter blocks round-robin across the three nodes, as the flat hash
	// would.
	for i, b := range blocks {
		target := nodes[i%3]
		if _, err := target.Handle(ctx, wire.IndexBlocks{Blocks: []wire.Block{b}}); err != nil {
			t.Fatal(err)
		}
	}
	params := wire.DefaultParams()
	params.Matrix = "DNA"
	params.Identity = 0.9
	params.CScore = 0.5
	query := []byte(ref[8:24])
	resp, err := nodes[1].Handle(ctx, wire.GroupSearch{
		Group: 0, Query: query, Offsets: []int{0, 8}, WindowLen: 8, Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	anchors := resp.(wire.GroupSearchResult).Anchors
	if len(anchors) == 0 {
		t.Fatal("group search found nothing")
	}
	// The matching region must be covered by a merged anchor.
	covered := false
	for _, a := range anchors {
		if a.Seq == 5 && a.SStart <= 8 && a.SEnd >= 24 {
			covered = true
		}
	}
	if !covered {
		t.Fatalf("anchors = %+v", anchors)
	}
}

func TestGroupSearchWrongGroup(t *testing.T) {
	_, nodes, _ := testCluster(t, 2, 8)
	params := wire.DefaultParams()
	params.Matrix = "DNA"
	_, err := nodes[0].Handle(context.Background(), wire.GroupSearch{
		Group: 9, Query: []byte("ACGTACGT"), Offsets: []int{0}, WindowLen: 8, Params: params,
	})
	if err == nil {
		t.Fatal("wrong group accepted")
	}
}

func TestGroupSearchSurvivesMemberFailure(t *testing.T) {
	net, nodes, _ := testCluster(t, 3, 8)
	ctx := context.Background()
	ref := "ACGTACGTGGCCAAGGACGTACGTGGCCAAGG"
	for i, b := range blocksFor(t, 1, ref, 8) {
		if _, err := nodes[i%3].Handle(ctx, wire.IndexBlocks{Blocks: []wire.Block{b}}); err != nil {
			t.Fatal(err)
		}
	}
	net.Fail("n2")
	params := wire.DefaultParams()
	params.Matrix = "DNA"
	params.Identity = 0.9
	resp, err := nodes[0].Handle(ctx, wire.GroupSearch{
		Group: 0, Query: []byte(ref[0:8]), Offsets: []int{0}, WindowLen: 8, Params: params,
	})
	if err != nil {
		t.Fatalf("group search failed despite surviving members: %v", err)
	}
	_ = resp.(wire.GroupSearchResult)
}

func TestGroupSearchAllMembersDown(t *testing.T) {
	net, nodes, _ := testCluster(t, 3, 8)
	// n0 coordinates; peers fail, and n0's own share still answers, so
	// kill only peers to check partial service, then verify the all-down
	// error path via an isolated second cluster where the entry point has
	// no local handler shortcut... the entry point always answers its own
	// share, so "all unreachable" cannot happen unless the entry point is
	// excluded; assert partial success instead.
	net.Fail("n1")
	net.Fail("n2")
	params := wire.DefaultParams()
	params.Matrix = "DNA"
	resp, err := nodes[0].Handle(context.Background(), wire.GroupSearch{
		Group: 0, Query: []byte("ACGTACGT"), Offsets: []int{0}, WindowLen: 8, Params: params,
	})
	if err != nil {
		t.Fatalf("entry point should still answer its own share: %v", err)
	}
	_ = resp.(wire.GroupSearchResult)
}
