package node

import (
	"testing"

	"mendel/internal/matrix"
	"mendel/internal/seq"
	"mendel/internal/wire"
)

func TestIdentity(t *testing.T) {
	cases := []struct {
		w, c string
		want float64
	}{
		{"ACGT", "ACGT", 1.0},
		{"ACGT", "ACGA", 0.75},
		{"AAAA", "TTTT", 0.0},
	}
	for _, c := range cases {
		if got := identity([]byte(c.w), []byte(c.c)); got != c.want {
			t.Errorf("identity(%q,%q) = %f, want %f", c.w, c.c, got, c.want)
		}
	}
	if identity(nil, nil) != 0 {
		t.Error("empty identity should be 0")
	}
}

func TestCScoreExactRuns(t *testing.T) {
	m := matrix.DNAUnit
	// All matches consecutive: c = 1.
	if got := cScore([]byte("ACGTACGT"), []byte("ACGTACGT"), m); got != 1.0 {
		t.Fatalf("full match c-score = %f", got)
	}
	// Matches at alternating positions: no runs, c = 0.
	// window A C A C A C  vs  A G A G A G -> matches at 0,2,4 isolated.
	if got := cScore([]byte("ACACAC"), []byte("AGAGAG"), m); got != 0.0 {
		t.Fatalf("isolated matches c-score = %f", got)
	}
	// AACGTA vs AATGCA matches at 0,1 (a run), 3 and 5 (isolated):
	// 2 of 4 matched positions are consecutive -> 0.5.
	if got := cScore([]byte("AACGTA"), []byte("AATGCA"), m); got != 0.5 {
		t.Fatalf("mixed c-score = %f, want 0.5", got)
	}
	// No matches at all.
	if got := cScore([]byte("AAAA"), []byte("TTTT"), m); got != 0 {
		t.Fatalf("no-match c-score = %f", got)
	}
	if cScore(nil, nil, m) != 0 {
		t.Fatal("empty c-score should be 0")
	}
}

func TestCScorePositiveSubstitutionsCountForProtein(t *testing.T) {
	m := matrix.BLOSUM62
	// I/L scores +2: treated as successive match even though not equal.
	window := []byte("ILIL")
	cand := []byte("LILI")
	if got := cScore(window, cand, m); got != 1.0 {
		t.Fatalf("conservative substitution c-score = %f, want 1", got)
	}
	// W vs G scores negative: not a match.
	if got := cScore([]byte("WWWW"), []byte("GGGG"), m); got != 0 {
		t.Fatalf("radical substitution c-score = %f, want 0", got)
	}
}

func TestExtendAnchorCoordinates(t *testing.T) {
	// Block from subject positions [10,18) with context [6,22) (CtxOff 4).
	subject := []byte("TTTTTTGGACGTACGTGGCCTT")
	block := blockAt(subject, 5, 10, 8, 4)
	query := []byte("ACGTACGT")
	a := extendAnchor(query, 0, 8, block, matrix.DNAUnit)
	if a.Seq != 5 {
		t.Fatalf("seq = %d", a.Seq)
	}
	if a.SStart < 6 || a.SEnd > 22 {
		t.Fatalf("anchor escaped context: %+v", a)
	}
	if a.SStart > 10 || a.SEnd < 18 {
		t.Fatalf("anchor does not cover seed: %+v", a)
	}
	if a.QEnd-a.QStart != a.SEnd-a.SStart {
		t.Fatalf("ungapped anchor with unequal spans: %+v", a)
	}
}

// blockAt builds a wire.Block for subject[start:start+w] with margin residues
// of context on each side (clamped).
func blockAt(subject []byte, seqID seq.ID, start, w, margin int) wire.Block {
	ctxStart := start - margin
	if ctxStart < 0 {
		ctxStart = 0
	}
	ctxEnd := start + w + margin
	if ctxEnd > len(subject) {
		ctxEnd = len(subject)
	}
	return wire.Block{
		Seq:     seqID,
		Start:   start,
		Content: subject[start : start+w],
		Context: subject[ctxStart:ctxEnd],
		CtxOff:  start - ctxStart,
	}
}
