package node

import (
	"runtime"
	"testing"

	"mendel/internal/matrix"
	"mendel/internal/seq"
	"mendel/internal/wire"
)

func TestIdentity(t *testing.T) {
	cases := []struct {
		w, c string
		want float64
	}{
		{"ACGT", "ACGT", 1.0},
		{"ACGT", "ACGA", 0.75},
		{"AAAA", "TTTT", 0.0},
	}
	for _, c := range cases {
		if got := identity([]byte(c.w), []byte(c.c)); got != c.want {
			t.Errorf("identity(%q,%q) = %f, want %f", c.w, c.c, got, c.want)
		}
	}
	if identity(nil, nil) != 0 {
		t.Error("empty identity should be 0")
	}
}

func TestCScoreExactRuns(t *testing.T) {
	m := matrix.DNAUnit
	// All matches consecutive: c = 1.
	if got := cScore([]byte("ACGTACGT"), []byte("ACGTACGT"), m); got != 1.0 {
		t.Fatalf("full match c-score = %f", got)
	}
	// Matches at alternating positions: no runs, c = 0.
	// window A C A C A C  vs  A G A G A G -> matches at 0,2,4 isolated.
	if got := cScore([]byte("ACACAC"), []byte("AGAGAG"), m); got != 0.0 {
		t.Fatalf("isolated matches c-score = %f", got)
	}
	// AACGTA vs AATGCA matches at 0,1 (a run), 3 and 5 (isolated):
	// 2 of 4 matched positions are consecutive -> 0.5.
	if got := cScore([]byte("AACGTA"), []byte("AATGCA"), m); got != 0.5 {
		t.Fatalf("mixed c-score = %f, want 0.5", got)
	}
	// No matches at all.
	if got := cScore([]byte("AAAA"), []byte("TTTT"), m); got != 0 {
		t.Fatalf("no-match c-score = %f", got)
	}
	if cScore(nil, nil, m) != 0 {
		t.Fatal("empty c-score should be 0")
	}
}

func TestCScorePositiveSubstitutionsCountForProtein(t *testing.T) {
	m := matrix.BLOSUM62
	// I/L scores +2: treated as successive match even though not equal.
	window := []byte("ILIL")
	cand := []byte("LILI")
	if got := cScore(window, cand, m); got != 1.0 {
		t.Fatalf("conservative substitution c-score = %f, want 1", got)
	}
	// W vs G scores negative: not a match.
	if got := cScore([]byte("WWWW"), []byte("GGGG"), m); got != 0 {
		t.Fatalf("radical substitution c-score = %f, want 0", got)
	}
}

func TestExtendAnchorCoordinates(t *testing.T) {
	// Block from subject positions [10,18) with context [6,22) (CtxOff 4).
	subject := []byte("TTTTTTGGACGTACGTGGCCTT")
	block := blockAt(subject, 5, 10, 8, 4)
	query := []byte("ACGTACGT")
	a := extendAnchor(query, 0, 8, block, matrix.DNAUnit)
	if a.Seq != 5 {
		t.Fatalf("seq = %d", a.Seq)
	}
	if a.SStart < 6 || a.SEnd > 22 {
		t.Fatalf("anchor escaped context: %+v", a)
	}
	if a.SStart > 10 || a.SEnd < 18 {
		t.Fatalf("anchor does not cover seed: %+v", a)
	}
	if a.QEnd-a.QStart != a.SEnd-a.SStart {
		t.Fatalf("ungapped anchor with unequal spans: %+v", a)
	}
}

// blockAt builds a wire.Block for subject[start:start+w] with margin residues
// of context on each side (clamped).
func blockAt(subject []byte, seqID seq.ID, start, w, margin int) wire.Block {
	ctxStart := start - margin
	if ctxStart < 0 {
		ctxStart = 0
	}
	ctxEnd := start + w + margin
	if ctxEnd > len(subject) {
		ctxEnd = len(subject)
	}
	return wire.Block{
		Seq:     seqID,
		Start:   start,
		Content: subject[start : start+w],
		Context: subject[ctxStart:ctxEnd],
		CtxOff:  start - ctxStart,
	}
}

// TestLocalSearchWorkers pins the pool-sizing rules: floored at one worker
// (single-core runners must not compute zero workers and hang), capped at
// the window count, and never more than half the cores.
func TestLocalSearchWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	if got := localSearchWorkers(100); got != 1 {
		t.Errorf("GOMAXPROCS=1: workers = %d, want 1", got)
	}
	runtime.GOMAXPROCS(8)
	if got := localSearchWorkers(100); got != 4 {
		t.Errorf("GOMAXPROCS=8: workers = %d, want 4", got)
	}
	if got := localSearchWorkers(2); got != 2 {
		t.Errorf("GOMAXPROCS=8, 2 offsets: workers = %d, want 2", got)
	}
	if got := localSearchWorkers(0); got != 0 {
		t.Errorf("0 offsets: workers = %d, want 0", got)
	}
}

// TestCScoreIntoScratchReuse feeds the same scratch through candidates with
// progressively fewer matches: stale trues from a previous call must not
// leak into the next score.
func TestCScoreIntoScratchReuse(t *testing.T) {
	m, _ := matrix.ByName("DNA")
	scratch := make([]bool, 8)
	if got := cScoreInto([]byte("ACGTACGT"), []byte("ACGTACGT"), m, scratch); got != 1.0 {
		t.Fatalf("all-match = %f, want 1", got)
	}
	// Alternating matches: no runs, so consecutivity is 0. A stale scratch
	// from the all-match call would report every position consecutive.
	if got := cScoreInto([]byte("ACACAC"), []byte("AGAGAG"), m, scratch); got != 0.0 {
		t.Fatalf("alternating after all-match = %f, want 0 (stale scratch?)", got)
	}
	if got := cScoreInto([]byte("AAAA"), []byte("TTTT"), m, scratch); got != 0 {
		t.Fatalf("no-match after reuse = %f, want 0", got)
	}
	for trial := 0; trial < 3; trial++ {
		want := cScore([]byte("AACGTA"), []byte("AATGCA"), m)
		if got := cScoreInto([]byte("AACGTA"), []byte("AATGCA"), m, scratch); got != want {
			t.Fatalf("trial %d: reuse = %f, fresh = %f", trial, got, want)
		}
	}
}
