package node

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mendel/internal/anchorset"
	"mendel/internal/obs"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// groupSearchBatch answers a coalesced batch of group searches: each item
// is evaluated exactly as a standalone GroupSearch would be, under its own
// trace context, and failures are reported item-wise so one query's dead
// replica set cannot fail the whole batch. Items run sequentially — every
// member node already parallelizes internally across subquery windows, so
// batch-level concurrency would only add scheduler churn on the entry
// point's cores.
func (n *Node) groupSearchBatch(ctx context.Context, r wire.GroupSearchBatch) (any, error) {
	if len(r.TCs) != 0 && len(r.TCs) != len(r.Items) {
		return nil, fmt.Errorf("node %s: batch of %d items with %d trace contexts", n.addr, len(r.Items), len(r.TCs))
	}
	n.mu.RLock()
	reg := n.reg
	n.mu.RUnlock()
	out := wire.GroupSearchBatchResult{
		Items: make([]wire.GroupSearchResult, len(r.Items)),
		Errs:  make([]string, len(r.Items)),
	}
	for i, item := range r.Items {
		itemCtx := ctx
		if len(r.TCs) > 0 && r.TCs[i].Valid() {
			itemCtx = obs.ContextWithTrace(ctx, r.TCs[i])
		}
		resp, err := n.groupSearch(itemCtx, item)
		if err != nil {
			out.Errs[i] = err.Error()
			continue
		}
		gsr, ok := resp.(wire.GroupSearchResult)
		if !ok {
			out.Errs[i] = fmt.Sprintf("node %s: malformed group search reply %T", n.addr, resp)
			continue
		}
		out.Items[i] = gsr
	}
	reg.Counter("node_batch_searches").Inc()
	reg.Histogram("node_batch_size").Observe(int64(len(r.Items)))
	return out, nil
}

// groupSearch implements the group entry point role (§V-B): blocks within a
// group were dispersed by a flat hash, so any member may hold a relevant
// block and the subqueries are replicated to every node of the group in
// parallel. The entry point then performs the first aggregation stage,
// combining overlapping anchors on the same diagonal before forwarding the
// merged set to the system entry point.
//
// Nodes that fail mid-query are skipped rather than failing the whole
// search: a partial answer from the surviving replicas is the behaviour a
// storage system should degrade to, and the paper's symmetric design makes
// every node's contribution independent.
func (n *Node) groupSearch(ctx context.Context, r wire.GroupSearch) (any, error) {
	n.mu.RLock()
	booted := n.booted
	topo := n.topo
	group := n.group
	reg := n.reg
	tracer := n.tracer
	n.mu.RUnlock()
	if !booted {
		return nil, fmt.Errorf("node %s: not bootstrapped", n.addr)
	}
	if r.Group != group {
		return nil, fmt.Errorf("node %s: group search for group %d routed to group %d", n.addr, r.Group, group)
	}
	// Trace adoption is three-way: a sampled caller context puts this span
	// into the caller's distributed trace; a valid-but-unsampled context
	// means an upstream tracing layer deliberately skipped this query, so
	// record nothing (the head sampler's decision must hold cluster-wide);
	// no context at all is a pre-tracing caller, for which the node keeps
	// its original local-only group_search spans.
	tc, _ := obs.TraceFromContext(ctx)
	var sp *obs.Span
	switch {
	case tc.Valid() && tc.Sampled:
		sp = tracer.StartTrace("group_search", tc)
		sp.SetNode(n.addr)
	case tc.Valid():
		// unsampled: sp stays nil (a no-op sink)
	default:
		sp = tracer.Start("group_search")
	}
	defer sp.End()
	sp.SetAttr("group", int64(group))
	sp.SetAttr("offsets", int64(len(r.Offsets)))
	local := wire.LocalSearch{
		Query:     r.Query,
		Offsets:   r.Offsets,
		WindowLen: r.WindowLen,
		Params:    r.Params,
	}
	// Members record their local_search spans under this group span.
	memberCtx := ctx
	if c := sp.Context(); c.Valid() {
		memberCtx = obs.ContextWithTrace(ctx, c)
	}
	members := topo.GroupNodes(group)
	type reply struct {
		member  string
		elapsed time.Duration
		res     wire.LocalSearchResult
		err     error
	}
	ch := make(chan reply, len(members))
	for _, member := range members {
		go func(member string) {
			began := time.Now()
			var resp any
			var err error
			if member == n.addr {
				// Answer our own share without a self-RPC.
				resp, err = n.localSearch(memberCtx, local)
			} else {
				resp, err = n.caller.Call(memberCtx, member, local)
			}
			if err != nil {
				ch <- reply{member: member, err: err}
				return
			}
			lsr, ok := resp.(wire.LocalSearchResult)
			if !ok {
				ch <- reply{member: member, err: fmt.Errorf("node %s: malformed LocalSearch reply %T from %s", n.addr, resp, member)}
				return
			}
			ch <- reply{member: member, elapsed: time.Since(began), res: lsr}
		}(member)
	}
	var all []wire.Anchor
	var failures int
	var lastErr error
	out := wire.GroupSearchResult{}
	for range members {
		rep := <-ch
		if rep.err != nil {
			if errors.Is(rep.err, transport.ErrUnreachable) {
				failures++
				lastErr = rep.err
				continue
			}
			return nil, rep.err
		}
		all = append(all, rep.res.Anchors...)
		out.KNNNs += rep.res.KNNNs
		out.ExtendNs += rep.res.ExtendNs
		out.Visits += rep.res.Visits
		for _, s := range rep.res.Spans {
			// Member spans shipped inline graft straight into this span, so
			// the group subtree travels whole to the coordinator.
			sp.AttachSnapshot(s)
		}
		sp.AddTimed("local:"+rep.member, rep.elapsed,
			obs.Attr{Key: "anchors", Value: int64(len(rep.res.Anchors))},
			obs.Attr{Key: "knn_ns", Value: rep.res.KNNNs},
			obs.Attr{Key: "extend_ns", Value: rep.res.ExtendNs},
			obs.Attr{Key: "visits", Value: rep.res.Visits})
	}
	if failures == len(members) {
		return nil, fmt.Errorf("node %s: every member of group %d unreachable: %w", n.addr, group, lastErr)
	}
	mergeStart := time.Now()
	out.Anchors = anchorset.Merge(all)
	out.MergeNs = time.Since(mergeStart).Nanoseconds()
	reg.Counter("node_group_searches").Inc()
	reg.Histogram("node_group_merge_ns").Observe(out.MergeNs)
	sp.SetAttr("members_failed", int64(failures))
	sp.SetAttr("anchors", int64(len(out.Anchors)))
	if tc.Valid() && tc.Sampled {
		sp.End()
		out.Spans = []obs.SpanSnapshot{sp.Snapshot()}
	}
	return out, nil
}
