package node

import (
	"context"
	"errors"
	"fmt"

	"mendel/internal/anchorset"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// groupSearch implements the group entry point role (§V-B): blocks within a
// group were dispersed by a flat hash, so any member may hold a relevant
// block and the subqueries are replicated to every node of the group in
// parallel. The entry point then performs the first aggregation stage,
// combining overlapping anchors on the same diagonal before forwarding the
// merged set to the system entry point.
//
// Nodes that fail mid-query are skipped rather than failing the whole
// search: a partial answer from the surviving replicas is the behaviour a
// storage system should degrade to, and the paper's symmetric design makes
// every node's contribution independent.
func (n *Node) groupSearch(ctx context.Context, r wire.GroupSearch) (any, error) {
	n.mu.RLock()
	booted := n.booted
	topo := n.topo
	group := n.group
	n.mu.RUnlock()
	if !booted {
		return nil, fmt.Errorf("node %s: not bootstrapped", n.addr)
	}
	if r.Group != group {
		return nil, fmt.Errorf("node %s: group search for group %d routed to group %d", n.addr, r.Group, group)
	}
	local := wire.LocalSearch{
		Query:     r.Query,
		Offsets:   r.Offsets,
		WindowLen: r.WindowLen,
		Params:    r.Params,
	}
	members := topo.GroupNodes(group)
	type reply struct {
		anchors []wire.Anchor
		err     error
	}
	ch := make(chan reply, len(members))
	for _, member := range members {
		go func(member string) {
			var resp any
			var err error
			if member == n.addr {
				// Answer our own share without a self-RPC.
				resp, err = n.localSearch(local)
			} else {
				resp, err = n.caller.Call(ctx, member, local)
			}
			if err != nil {
				ch <- reply{err: err}
				return
			}
			lsr, ok := resp.(wire.LocalSearchResult)
			if !ok {
				ch <- reply{err: fmt.Errorf("node %s: malformed LocalSearch reply %T from %s", n.addr, resp, member)}
				return
			}
			ch <- reply{anchors: lsr.Anchors}
		}(member)
	}
	var all []wire.Anchor
	var failures int
	var lastErr error
	for range members {
		rep := <-ch
		if rep.err != nil {
			if errors.Is(rep.err, transport.ErrUnreachable) {
				failures++
				lastErr = rep.err
				continue
			}
			return nil, rep.err
		}
		all = append(all, rep.anchors...)
	}
	if failures == len(members) {
		return nil, fmt.Errorf("node %s: every member of group %d unreachable: %w", n.addr, group, lastErr)
	}
	return wire.GroupSearchResult{Anchors: anchorset.Merge(all)}, nil
}
