package wire

import (
	"bytes"
	"testing"

	"mendel/internal/seq"
)

// sampleMessages returns one representative value per registered wire type,
// the seed corpus for FuzzDecode and the fixture for TestMarshalRoundTrip.
func sampleMessages() []any {
	return []any{
		Ping{},
		Pong{Node: "node-007", Booted: true},
		Bootstrap{
			HashTree: []byte{1, 2, 3},
			Metric:   "hamming",
			BlockLen: 16,
			Margin:   32,
			Groups:   [][]string{{"a", "b"}, {"c"}},
			Kind:     1,
		},
		BootstrapAck{},
		UpdateTopology{Groups: [][]string{{"a"}, {"b", "c"}}},
		UpdateTopologyAck{},
		IndexBlocks{Blocks: []Block{{
			Seq: 7, Start: 160, Content: []byte("ACGTACGTACGTACGT"),
			Context: []byte("TTACGTACGTACGTACGTAA"), CtxOff: 2,
		}}},
		IndexBlocksAck{Accepted: 1},
		StoreSequences{IDs: []seq.ID{1}, Names: []string{"chr1"}, Data: [][]byte{[]byte("ACGT")}},
		StoreSequencesAck{},
		FetchRegion{Seq: 3, Start: 10, End: 90},
		Region{Seq: 3, Start: 10, Data: []byte("ACGTACGT"), Len: 1000},
		LocalSearch{Query: []byte("MKVLAT"), Offsets: []int{0, 16}, WindowLen: 16, Params: DefaultParams()},
		LocalSearchResult{
			Anchors: []Anchor{{Seq: 1, QStart: 0, QEnd: 16, SStart: 100, SEnd: 116, Score: 42}},
			KNNNs:   1234, ExtendNs: 567, Visits: 89,
		},
		GroupSearch{Group: 1, Query: []byte("MKVLAT"), Offsets: []int{0}, WindowLen: 16, Params: DefaultParams()},
		GroupSearchResult{
			Anchors: []Anchor{{Seq: 2, QEnd: 16, SStart: 5, SEnd: 21, Score: 33}},
			KNNNs:   1, ExtendNs: 2, Visits: 3, MergeNs: 4,
		},
		GroupSearchBatch{
			Group: 1,
			Items: []GroupSearch{
				{Group: 1, Query: []byte("MKVLAT"), Offsets: []int{0}, WindowLen: 16, Params: DefaultParams()},
				{Group: 1, Query: []byte("TALVKM"), Offsets: []int{0, 16}, WindowLen: 16, Params: DefaultParams()},
			},
		},
		GroupSearchBatchResult{
			Items: []GroupSearchResult{{
				Anchors: []Anchor{{Seq: 2, QEnd: 16, SStart: 5, SEnd: 21, Score: 33}},
			}, {}},
			Errs: []string{"", "node node-001: every member of group 1 unreachable"},
		},
		Metrics{},
		MetricsResult{Node: "node-001"},
		Stats{},
		StatsResult{Node: "node-001", Blocks: 10, Residues: 160, Sequences: 2, TreeSize: 10, BusyNS: 999, TopoNodes: 6},
		BlockManifest{},
		BlockManifestResult{
			Node:   "node-002",
			Refs:   []uint64{1 << 20, 2 << 20},
			Hashes: []uint64{0xdeadbeef, 0xcafef00d},
			Seqs:   []seq.ID{1, 3},
		},
		PushBlocks{Target: "node-003", Refs: []uint64{42, 43}},
		PushBlocksAck{Pushed: 2, Missing: 1},
		PushSequences{Target: "node-004", IDs: []seq.ID{7}},
		PushSequencesAck{Pushed: 1},
		SketchFetch{},
		SketchFetchResult{Node: "node-005", Sketch: []byte{1, 1, 5, 0x80, 0x80, 4, 8, 0, 0}},
	}
}

// TestMarshalRoundTrip pins the codec on every registered message type.
func TestMarshalRoundTrip(t *testing.T) {
	for _, msg := range sampleMessages() {
		data, err := Marshal(msg)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", msg, err)
		}
		out, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal(%T): %v", msg, err)
		}
		// gob does not distinguish nil from empty slices, so compare via a
		// second encoding rather than reflect.DeepEqual.
		again, err := Marshal(out)
		if err != nil {
			t.Fatalf("re-Marshal(%T): %v", out, err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%T: round trip changed encoding\n  first:  %x\n  second: %x", msg, data, again)
		}
	}
}

// FuzzCodecEquivalence is the differential fuzz target for the binary
// codec. Inputs are interpreted two ways:
//
//  1. As a gob envelope: if Unmarshal accepts the input and yields a hot
//     message, that message is binary-encoded and decoded, and the result
//     must be exactly the value a gob round trip produces (compared via
//     re-encoding, which sidesteps nil-vs-empty and NaN pitfalls).
//  2. As raw binary codec payloads: DecodeHot, DecodeRequest and
//     DecodeResponse must never panic, and anything they accept must
//     re-encode and re-decode to a stable value.
//
// The corpus is seeded with the existing gob fuzz samples plus their binary
// encodings, so both interpretations start from meaningful inputs.
func FuzzCodecEquivalence(f *testing.F) {
	for _, msg := range sampleMessages() {
		data, err := Marshal(msg)
		if err != nil {
			f.Fatalf("seeding corpus with %T: %v", msg, err)
		}
		f.Add(data)
		if bin, ok := AppendHot(nil, msg); ok {
			f.Add(bin)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xFF, 0x03, 'b', 'o', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Differential leg: gob-decodable hot messages must round-trip
		// identically through both codecs.
		if msg, err := Unmarshal(data); err == nil && IsHot(msg) {
			viaGobBytes, err := Marshal(msg)
			if err != nil {
				t.Fatalf("re-encoding gob-decoded %T: %v", msg, err)
			}
			bin, ok := AppendHot(nil, msg)
			if !ok {
				t.Fatalf("hot message %T refused by AppendHot", msg)
			}
			out, err := DecodeHot(bin)
			if err != nil {
				t.Fatalf("binary decode of own encoding of %T: %v", msg, err)
			}
			viaBinBytes, err := Marshal(out)
			if err != nil {
				t.Fatalf("re-encoding binary-decoded %T: %v", out, err)
			}
			if !bytes.Equal(viaGobBytes, viaBinBytes) {
				t.Errorf("codec divergence for %T:\n  gob:    %x\n  binary: %x", msg, viaGobBytes, viaBinBytes)
			}
		}
		// Robustness leg: the binary decoders must reject or round-trip
		// arbitrary input without panicking.
		if msg, err := DecodeHot(data); err == nil {
			bin, ok := AppendHot(nil, msg)
			if !ok {
				t.Fatalf("DecodeHot produced non-hot %T", msg)
			}
			again, err := DecodeHot(bin)
			if err != nil {
				t.Fatalf("unstable binary round trip for %T: %v", msg, err)
			}
			a, _ := Marshal(msg)
			b, _ := Marshal(again)
			if !bytes.Equal(a, b) {
				t.Errorf("binary re-decode changed %T", msg)
			}
		}
		if tc, msg, err := DecodeRequest(data); err == nil {
			payload, ok := AppendRequest(nil, tc, msg)
			if !ok {
				t.Fatalf("DecodeRequest produced non-hot %T", msg)
			}
			if _, _, err := DecodeRequest(payload); err != nil {
				t.Fatalf("unstable request round trip for %T: %v", msg, err)
			}
		}
		if msg, errMsg, err := DecodeResponse(data); err == nil {
			var payload []byte
			if errMsg != "" {
				payload = AppendErrorResponse(nil, errMsg)
			} else {
				var ok bool
				if payload, ok = AppendResponse(nil, msg); !ok {
					t.Fatalf("DecodeResponse produced non-hot %T", msg)
				}
			}
			if _, _, err := DecodeResponse(payload); err != nil {
				t.Fatalf("unstable response round trip: %v", err)
			}
		}
	})
}

// FuzzDecode feeds arbitrary bytes to Unmarshal: it must never panic, and
// any input it accepts must re-encode and re-decode to a stable value.
func FuzzDecode(f *testing.F) {
	for _, msg := range sampleMessages() {
		data, err := Marshal(msg)
		if err != nil {
			f.Fatalf("seeding corpus with %T: %v", msg, err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		// Accepted input must round-trip: the decoded value re-encodes
		// (byte-identical, which also sidesteps NaN != NaN under DeepEqual)
		// and decodes again without error.
		out, err := Marshal(msg)
		if err != nil {
			t.Fatalf("decoded %T but cannot re-encode it: %v", msg, err)
		}
		again, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-decoding own encoding of %T: %v", msg, err)
		}
		out2, err := Marshal(again)
		if err != nil {
			t.Fatalf("re-encoding %T: %v", again, err)
		}
		if !bytes.Equal(out, out2) {
			t.Errorf("unstable round trip for %T:\n  first:  %x\n  second: %x", msg, out, out2)
		}
	})
}
