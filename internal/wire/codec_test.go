package wire

import (
	"bytes"
	"strings"
	"testing"

	"mendel/internal/obs"
)

// hotSampleMessages filters sampleMessages down to the types the binary
// codec covers, plus extra cases that stress its edges (empty slices, zero
// values, negative ints, span blobs, batch items).
func hotSampleMessages() []any {
	var hot []any
	for _, m := range sampleMessages() {
		if IsHot(m) {
			hot = append(hot, m)
		}
	}
	return append(hot,
		GroupSearch{},
		GroupSearchResult{},
		GroupSearchBatch{},
		GroupSearchBatchResult{},
		LocalSearch{},
		LocalSearchResult{},
		IndexBlocks{},
		IndexBlocks{Stage: true, Blocks: []Block{{}}},
		FetchRegion{},
		Region{},
		PushBlocks{},
		PushSequences{},
		LocalSearchResult{
			Anchors: []Anchor{{Seq: 3, QStart: -5, QEnd: -1, SStart: -100, SEnd: -90, Score: -42}},
			Spans: []obs.SpanSnapshot{{
				TraceID: "00000000000000010000000000000002",
				SpanID:  7, Node: "n1", Name: "local_search", NS: 123,
				Attrs:    []obs.Attr{{Key: "visits", Value: 9}},
				Children: []obs.SpanSnapshot{{Name: "knn", NS: 45}},
			}},
		},
		GroupSearchResult{
			Anchors: []Anchor{{Seq: 1 << 30, QStart: 1 << 40, SStart: -(1 << 40)}},
			Spans:   []obs.SpanSnapshot{{Name: "group_search"}},
		},
		GroupSearchBatch{
			Group: -1,
			Items: []GroupSearch{{Query: []byte("ACGT")}, {}},
			TCs: []obs.TraceContext{
				{TraceHi: 1, TraceLo: 2, SpanID: 3, Sampled: true},
				{},
			},
		},
		LocalSearch{Query: []byte{}, Offsets: []int{}, Params: Params{Matrix: "PAM250"}},
		LocalSearch{Params: Params{Matrix: "custom-matrix", BothStrands: true, Mask: true}},
		Region{Seq: 4294967295, Start: -1, Data: bytes.Repeat([]byte("ACGT"), 64), Len: 1 << 31},
		PushBlocks{Target: "node:with:colons", Refs: []uint64{0, 1<<64 - 1}},
	)
}

// gobRoundTripValue runs v through the same self-contained gob envelope the
// transports' fallback path uses, yielding gob's canonical post-decode form
// (empty slices become nil, etc.).
func gobRoundTripValue(t *testing.T, v any) any {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatalf("gob marshal %T: %v", v, err)
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("gob unmarshal %T: %v", v, err)
	}
	return out
}

// binaryRoundTripValue runs v through the binary codec.
func binaryRoundTripValue(t *testing.T, v any) any {
	t.Helper()
	data, ok := AppendHot(nil, v)
	if !ok {
		t.Fatalf("AppendHot(%T): not a hot message", v)
	}
	out, err := DecodeHot(data)
	if err != nil {
		t.Fatalf("DecodeHot(%T): %v", v, err)
	}
	return out
}

// TestCodecGobEquivalence is the codec's core contract: for every hot
// message, a binary round trip must produce exactly the value a gob round
// trip produces. Values are compared via their gob encodings, which
// sidesteps nil-vs-empty and NaN DeepEqual pitfalls the same way the
// existing round-trip tests do.
func TestCodecGobEquivalence(t *testing.T) {
	for _, msg := range hotSampleMessages() {
		viaGob := gobRoundTripValue(t, msg)
		viaBin := binaryRoundTripValue(t, msg)
		gobBytes, err := Marshal(viaGob)
		if err != nil {
			t.Fatalf("re-marshal gob result %T: %v", viaGob, err)
		}
		binBytes, err := Marshal(viaBin)
		if err != nil {
			t.Fatalf("re-marshal binary result %T: %v", viaBin, err)
		}
		if !bytes.Equal(gobBytes, binBytes) {
			t.Errorf("%T: binary round trip diverges from gob round trip\n  gob:    %x\n  binary: %x",
				msg, gobBytes, binBytes)
		}
	}
}

// TestCodecRequestResponseRoundTrip covers the transport-facing payload
// helpers, trace context included.
func TestCodecRequestResponseRoundTrip(t *testing.T) {
	tcs := []obs.TraceContext{
		{},
		obs.UnsampledContext(),
		{TraceHi: 0xdeadbeef, TraceLo: 0xcafef00d, SpanID: 42, Sampled: true},
	}
	for _, tc := range tcs {
		for _, msg := range hotSampleMessages() {
			payload, ok := AppendRequest(nil, tc, msg)
			if !ok {
				t.Fatalf("AppendRequest(%T): not hot", msg)
			}
			gotTC, gotMsg, err := DecodeRequest(payload)
			if err != nil {
				t.Fatalf("DecodeRequest(%T): %v", msg, err)
			}
			if gotTC != tc {
				t.Fatalf("%T: trace context changed: %+v != %+v", msg, gotTC, tc)
			}
			a, _ := Marshal(gobRoundTripValue(t, msg))
			b, _ := Marshal(gotMsg)
			if !bytes.Equal(a, b) {
				t.Errorf("%T: request round trip diverged", msg)
			}
		}
	}

	// Response payloads: messages and errors.
	payload, ok := AppendResponse(nil, IndexBlocksAck{Accepted: 3})
	if !ok {
		t.Fatal("AppendResponse(IndexBlocksAck): not hot")
	}
	msg, errMsg, err := DecodeResponse(payload)
	if err != nil || errMsg != "" {
		t.Fatalf("DecodeResponse: msg=%v errMsg=%q err=%v", msg, errMsg, err)
	}
	if ack, okAck := msg.(IndexBlocksAck); !okAck || ack.Accepted != 3 {
		t.Fatalf("DecodeResponse: got %#v", msg)
	}
	ep := AppendErrorResponse(nil, "node n1: boom")
	msg, errMsg, err = DecodeResponse(ep)
	if err != nil || msg != nil || errMsg != "node n1: boom" {
		t.Fatalf("error response round trip: msg=%v errMsg=%q err=%v", msg, errMsg, err)
	}
}

// TestCodecRejectsCorruptInput pins the failure modes: truncation, trailing
// garbage, unknown tags, and adversarial slice lengths must all error
// without panicking or allocating huge slices.
func TestCodecRejectsCorruptInput(t *testing.T) {
	good, _ := AppendHot(nil, GroupSearch{Query: []byte("MKVLAT"), Offsets: []int{0, 16}, Params: DefaultParams()})
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeHot(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeHot(append(append([]byte(nil), good...), 0x01)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := DecodeHot([]byte{0x7E, 1, 2, 3}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	if _, err := DecodeHot(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	// A frame claiming 2^40 anchors but carrying 3 bytes must be rejected
	// before allocation.
	evil := []byte{tagLocalSearchResult}
	evil = appendUvarint(evil, 1<<40)
	evil = append(evil, 1, 2, 3)
	if _, err := DecodeHot(evil); err == nil || !strings.Contains(err.Error(), "exceeds remaining") {
		t.Fatalf("adversarial anchor count: err = %v", err)
	}
}

// TestCodecZeroCopyAliasing documents the aliasing contract: byte fields of
// a decoded message are views into the input buffer.
func TestCodecZeroCopyAliasing(t *testing.T) {
	in := IndexBlocks{Blocks: []Block{{Seq: 1, Content: []byte("ACGTACGTACGTACGT")}}}
	data, _ := AppendHot(nil, in)
	out, err := DecodeHot(data)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(IndexBlocks).Blocks[0].Content
	if !bytes.Equal(got, in.Blocks[0].Content) {
		t.Fatalf("content changed: %q", got)
	}
	// The frame tail is Context-len, CtxOff and Stage (one byte each), so
	// Content's last byte sits four bytes from the end.
	data[len(data)-4] ^= 0xFF
	if bytes.Equal(got, in.Blocks[0].Content) {
		t.Fatal("decoded Content does not alias the input buffer; zero-copy contract broken")
	}
}

// TestCodecSizeReduction pins the acceptance criterion of the codec PR:
// binary encodings of the query-path messages are at least 2x smaller than
// their self-contained gob counterparts.
func TestCodecSizeReduction(t *testing.T) {
	msgs := []any{
		GroupSearch{Group: 3, Query: bytes.Repeat([]byte("MKVLAT"), 20), Offsets: []int{0, 16, 32, 48, 64, 80, 96}, WindowLen: 16, Params: DefaultParams()},
		LocalSearchResult{Anchors: make([]Anchor, 24), KNNNs: 12345, ExtendNs: 678, Visits: 90},
	}
	for _, msg := range msgs {
		gobBytes, err := Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		binBytes, _ := AppendHot(nil, msg)
		if len(binBytes)*2 > len(gobBytes) {
			t.Errorf("%T: binary %dB vs gob %dB — less than the required 2x reduction",
				msg, len(binBytes), len(gobBytes))
		}
	}
}

// TestFramePool covers the encode-side scratch pool.
func TestFramePool(t *testing.T) {
	fp := GetFrame()
	if len(*fp) != 0 {
		t.Fatalf("GetFrame returned non-empty buffer (len %d)", len(*fp))
	}
	b, _ := AppendHot(*fp, FetchRegion{Seq: 1, Start: 2, End: 3})
	*fp = b
	PutFrame(fp)
	fp2 := GetFrame()
	if len(*fp2) != 0 {
		t.Fatalf("recycled frame not reset (len %d)", len(*fp2))
	}
	PutFrame(fp2)
}

// TestMatrixInterning ensures the known scoring matrix names decode without
// retaining the input buffer (interned constants, not views).
func TestMatrixInterning(t *testing.T) {
	for _, name := range []string{"BLOSUM62", "PAM250", "DNA"} {
		data, _ := AppendHot(nil, LocalSearch{Params: Params{Matrix: name}})
		out, err := DecodeHot(data)
		if err != nil {
			t.Fatal(err)
		}
		got := out.(LocalSearch).Params.Matrix
		if got != name {
			t.Fatalf("matrix %q decoded as %q", name, got)
		}
	}
}

func TestIsHotAndCompressible(t *testing.T) {
	for _, m := range []any{Ping{}, Bootstrap{}, Stats{}, Metrics{}, TraceFetch{}, BuildIndex{}, StoreSequences{}} {
		if IsHot(m) {
			t.Errorf("%T reported hot", m)
		}
		if _, ok := AppendHot(nil, m); ok {
			t.Errorf("%T unexpectedly binary-encoded", m)
		}
	}
	if !Compressible(IndexBlocks{}) || !Compressible(PushBlocks{}) {
		t.Error("block-transfer messages must be compressible")
	}
	if Compressible(GroupSearch{}) || Compressible(Region{}) {
		t.Error("latency-sensitive messages must not be compressible")
	}
}
