// Hand-rolled binary codec for the hot RPC messages. encoding/gob pays
// reflection plus self-describing type preambles on every self-contained
// Marshal; the half-dozen message types that dominate cluster traffic
// (search fan-out, staged block ingest, region fetches, repair pushes) are
// instead encoded field-by-field: varint integers, fixed 8-byte floats,
// length-prefixed byte strings. Decoding is zero-copy: []byte fields of
// decoded messages are views into the input buffer, so a frame is decoded
// with one allocation per slice-of-struct field and none per byte field.
// Callers that hand a decoded message to code that retains it (the node
// block store keeps IndexBlocks contents forever) must therefore not
// recycle the input buffer; the transports allocate a fresh buffer per
// received frame for exactly this reason, and pool only encode-side
// scratch (GetFrame/PutFrame).
//
// Cold and rare messages (Bootstrap, Metrics, Stats, TraceFetch, topology
// updates) intentionally stay on gob: their cost is irrelevant and gob's
// field-name matching gives free cross-version tolerance. AppendHot
// reports whether a message has a binary encoding so transports can
// dispatch per message.
//
// Wire-format equivalence with gob is pinned by TestCodecGobEquivalence
// and the FuzzCodecEquivalence differential fuzz target: a binary
// round trip must yield exactly the value a gob round trip yields
// (including gob's empty-slice-decodes-as-nil convention).
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync"

	"mendel/internal/obs"
	"mendel/internal/seq"
)

// Message type tags. Tag 0 is reserved (never emitted) and 0xFF is the
// transports' error-response tag, so neither can collide with a message.
const (
	tagInvalid byte = 0

	tagGroupSearch            byte = 1
	tagGroupSearchResult      byte = 2
	tagGroupSearchBatch       byte = 3
	tagGroupSearchBatchResult byte = 4
	tagLocalSearch            byte = 5
	tagLocalSearchResult      byte = 6
	tagIndexBlocks            byte = 7
	tagIndexBlocksAck         byte = 8
	tagFetchRegion            byte = 9
	tagRegion                 byte = 10
	tagPushBlocks             byte = 11
	tagPushBlocksAck          byte = 12
	tagPushSequences          byte = 13
	tagPushSequencesAck       byte = 14
	tagSketchFetch            byte = 15
	tagSketchFetchResult      byte = 16

	// tagError marks a transport-level error response (a string, not a
	// message); exported to transports via AppendErrorResponse/DecodeResponse.
	tagError byte = 0xFF
)

// IsHot reports whether msg has a hand-rolled binary encoding. Everything
// else rides gob.
func IsHot(msg any) bool {
	switch msg.(type) {
	case GroupSearch, GroupSearchResult, GroupSearchBatch, GroupSearchBatchResult,
		LocalSearch, LocalSearchResult, IndexBlocks, IndexBlocksAck,
		FetchRegion, Region, PushBlocks, PushBlocksAck,
		PushSequences, PushSequencesAck, SketchFetch, SketchFetchResult:
		return true
	}
	return false
}

// Compressible reports whether msg is a block-transfer message whose frames
// are worth compressing: bulk ingest and repair payloads carry residue data
// with real redundancy, while search messages are latency-sensitive and
// small.
func Compressible(msg any) bool {
	switch msg.(type) {
	case IndexBlocks, PushBlocks:
		return true
	}
	return false
}

// frame pool: encode-side scratch buffers, the []byte counterpart of
// BufPool. Stored as *[]byte so Put does not allocate a slice header.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetFrame returns a pooled zero-length byte slice for building frames.
// Release with PutFrame once the frame has been written to the wire;
// never release a buffer whose contents a decoded message still aliases.
func GetFrame() *[]byte { return framePool.Get().(*[]byte) }

// PutFrame recycles a frame buffer, keeping its grown capacity.
func PutFrame(b *[]byte) {
	*b = (*b)[:0]
	framePool.Put(b)
}

// AppendHot appends the binary encoding of a hot message (type tag + body)
// to dst and reports whether msg had a binary codec; dst is returned
// unchanged for cold messages.
func AppendHot(dst []byte, msg any) ([]byte, bool) {
	switch m := msg.(type) {
	case GroupSearch:
		dst = append(dst, tagGroupSearch)
		return appendGroupSearch(dst, &m), true
	case GroupSearchResult:
		dst = append(dst, tagGroupSearchResult)
		return appendGroupSearchResult(dst, &m), true
	case GroupSearchBatch:
		dst = append(dst, tagGroupSearchBatch)
		dst = appendInt(dst, m.Group)
		dst = appendUvarint(dst, uint64(len(m.Items)))
		for i := range m.Items {
			dst = appendGroupSearch(dst, &m.Items[i])
		}
		dst = appendUvarint(dst, uint64(len(m.TCs)))
		for _, tc := range m.TCs {
			dst = AppendTraceContext(dst, tc)
		}
		return dst, true
	case GroupSearchBatchResult:
		dst = append(dst, tagGroupSearchBatchResult)
		dst = appendUvarint(dst, uint64(len(m.Items)))
		for i := range m.Items {
			dst = appendGroupSearchResult(dst, &m.Items[i])
		}
		dst = appendUvarint(dst, uint64(len(m.Errs)))
		for _, e := range m.Errs {
			dst = appendString(dst, e)
		}
		return dst, true
	case LocalSearch:
		dst = append(dst, tagLocalSearch)
		dst = appendBytes(dst, m.Query)
		dst = appendInts(dst, m.Offsets)
		dst = appendInt(dst, m.WindowLen)
		return appendParams(dst, &m.Params), true
	case LocalSearchResult:
		dst = append(dst, tagLocalSearchResult)
		dst = appendAnchors(dst, m.Anchors)
		dst = appendInt64(dst, m.KNNNs)
		dst = appendInt64(dst, m.ExtendNs)
		dst = appendInt64(dst, m.Visits)
		return appendSpans(dst, m.Spans), true
	case IndexBlocks:
		dst = append(dst, tagIndexBlocks)
		dst = appendUvarint(dst, uint64(len(m.Blocks)))
		for i := range m.Blocks {
			b := &m.Blocks[i]
			dst = appendUvarint(dst, uint64(b.Seq))
			dst = appendInt(dst, b.Start)
			dst = appendBytes(dst, b.Content)
			dst = appendBytes(dst, b.Context)
			dst = appendInt(dst, b.CtxOff)
		}
		return append(dst, boolByte(m.Stage)), true
	case IndexBlocksAck:
		dst = append(dst, tagIndexBlocksAck)
		return appendInt(dst, m.Accepted), true
	case FetchRegion:
		dst = append(dst, tagFetchRegion)
		dst = appendUvarint(dst, uint64(m.Seq))
		dst = appendInt(dst, m.Start)
		return appendInt(dst, m.End), true
	case Region:
		dst = append(dst, tagRegion)
		dst = appendUvarint(dst, uint64(m.Seq))
		dst = appendInt(dst, m.Start)
		dst = appendBytes(dst, m.Data)
		return appendInt(dst, m.Len), true
	case PushBlocks:
		dst = append(dst, tagPushBlocks)
		dst = appendString(dst, m.Target)
		dst = appendUvarint(dst, uint64(len(m.Refs)))
		for _, r := range m.Refs {
			dst = appendUvarint(dst, r)
		}
		return dst, true
	case PushBlocksAck:
		dst = append(dst, tagPushBlocksAck)
		dst = appendInt(dst, m.Pushed)
		return appendInt(dst, m.Missing), true
	case PushSequences:
		dst = append(dst, tagPushSequences)
		dst = appendString(dst, m.Target)
		dst = appendUvarint(dst, uint64(len(m.IDs)))
		for _, id := range m.IDs {
			dst = appendUvarint(dst, uint64(id))
		}
		return dst, true
	case PushSequencesAck:
		dst = append(dst, tagPushSequencesAck)
		dst = appendInt(dst, m.Pushed)
		return appendInt(dst, m.Missing), true
	case SketchFetch:
		return append(dst, tagSketchFetch), true
	case SketchFetchResult:
		dst = append(dst, tagSketchFetchResult)
		dst = appendString(dst, m.Node)
		return appendBytes(dst, m.Sketch), true
	}
	return dst, false
}

// DecodeHot decodes an AppendHot-encoded payload. Byte-slice fields of the
// result alias data; the input must be fully consumed (trailing bytes are
// an error). It never panics on arbitrary input (fuzz-enforced).
func DecodeHot(data []byte) (any, error) {
	r := reader{b: data}
	msg := decodeHot(&r)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("wire: codec: %d trailing bytes after message", len(r.b)-r.off)
	}
	return msg, nil
}

func decodeHot(r *reader) any {
	switch tag := r.byte(); tag {
	case tagGroupSearch:
		return decodeGroupSearch(r)
	case tagGroupSearchResult:
		return decodeGroupSearchResult(r)
	case tagGroupSearchBatch:
		m := GroupSearchBatch{Group: r.int()}
		if n := r.count(2); n > 0 {
			m.Items = make([]GroupSearch, n)
			for i := range m.Items {
				m.Items[i] = decodeGroupSearch(r)
			}
		}
		if n := r.count(4); n > 0 {
			m.TCs = make([]obs.TraceContext, n)
			for i := range m.TCs {
				m.TCs[i] = r.traceContext()
			}
		}
		return m
	case tagGroupSearchBatchResult:
		var m GroupSearchBatchResult
		if n := r.count(5); n > 0 {
			m.Items = make([]GroupSearchResult, n)
			for i := range m.Items {
				m.Items[i] = decodeGroupSearchResult(r)
			}
		}
		if n := r.count(1); n > 0 {
			m.Errs = make([]string, n)
			for i := range m.Errs {
				m.Errs[i] = r.str()
			}
		}
		return m
	case tagLocalSearch:
		return LocalSearch{
			Query:     r.bytes(),
			Offsets:   r.ints(),
			WindowLen: r.int(),
			Params:    decodeParams(r),
		}
	case tagLocalSearchResult:
		return LocalSearchResult{
			Anchors:  r.anchors(),
			KNNNs:    r.int64(),
			ExtendNs: r.int64(),
			Visits:   r.int64(),
			Spans:    r.spans(),
		}
	case tagIndexBlocks:
		var m IndexBlocks
		if n := r.count(5); n > 0 {
			m.Blocks = make([]Block, n)
			for i := range m.Blocks {
				m.Blocks[i] = Block{
					Seq:     seq.ID(r.uvarint()),
					Start:   r.int(),
					Content: r.bytes(),
					Context: r.bytes(),
					CtxOff:  r.int(),
				}
			}
		}
		m.Stage = r.bool()
		return m
	case tagIndexBlocksAck:
		return IndexBlocksAck{Accepted: r.int()}
	case tagFetchRegion:
		return FetchRegion{Seq: seq.ID(r.uvarint()), Start: r.int(), End: r.int()}
	case tagRegion:
		return Region{Seq: seq.ID(r.uvarint()), Start: r.int(), Data: r.bytes(), Len: r.int()}
	case tagPushBlocks:
		m := PushBlocks{Target: r.str()}
		if n := r.count(1); n > 0 {
			m.Refs = make([]uint64, n)
			for i := range m.Refs {
				m.Refs[i] = r.uvarint()
			}
		}
		return m
	case tagPushBlocksAck:
		return PushBlocksAck{Pushed: r.int(), Missing: r.int()}
	case tagPushSequences:
		m := PushSequences{Target: r.str()}
		if n := r.count(1); n > 0 {
			m.IDs = make([]seq.ID, n)
			for i := range m.IDs {
				m.IDs[i] = seq.ID(r.uvarint())
			}
		}
		return m
	case tagPushSequencesAck:
		return PushSequencesAck{Pushed: r.int(), Missing: r.int()}
	case tagSketchFetch:
		return SketchFetch{}
	case tagSketchFetchResult:
		return SketchFetchResult{Node: r.str(), Sketch: r.bytes()}
	default:
		r.failf("unknown message tag 0x%02x", tag)
		return nil
	}
}

// AppendRequest appends a binary request payload — trace context followed by
// the message — and reports whether msg had a binary codec.
func AppendRequest(dst []byte, tc obs.TraceContext, msg any) ([]byte, bool) {
	if !IsHot(msg) {
		return dst, false
	}
	dst = AppendTraceContext(dst, tc)
	return AppendHot(dst, msg)
}

// DecodeRequest decodes an AppendRequest payload. The message may alias data.
func DecodeRequest(data []byte) (obs.TraceContext, any, error) {
	r := reader{b: data}
	tc := r.traceContext()
	msg := decodeHot(&r)
	if r.err != nil {
		return obs.TraceContext{}, nil, r.err
	}
	if r.off != len(r.b) {
		return obs.TraceContext{}, nil, fmt.Errorf("wire: codec: %d trailing bytes after request", len(r.b)-r.off)
	}
	return tc, msg, nil
}

// AppendResponse appends a binary response payload and reports whether msg
// had a binary codec. Error responses use AppendErrorResponse instead.
func AppendResponse(dst []byte, msg any) ([]byte, bool) {
	return AppendHot(dst, msg)
}

// AppendErrorResponse appends the binary encoding of an application-level
// error response; every error is binary-encodable regardless of message
// type.
func AppendErrorResponse(dst []byte, errMsg string) []byte {
	dst = append(dst, tagError)
	return appendString(dst, errMsg)
}

// DecodeResponse decodes a binary response payload into either a message or
// a remote error string. The message may alias data.
func DecodeResponse(data []byte) (msg any, errMsg string, err error) {
	if len(data) > 0 && data[0] == tagError {
		r := reader{b: data, off: 1}
		errMsg = r.str()
		if r.err != nil {
			return nil, "", r.err
		}
		if r.off != len(r.b) {
			return nil, "", fmt.Errorf("wire: codec: trailing bytes after error response")
		}
		return nil, errMsg, nil
	}
	msg, err = DecodeHot(data)
	return msg, "", err
}

// AppendTraceContext appends a trace context (three varints + sampled flag).
// The common zero context costs four bytes.
func AppendTraceContext(dst []byte, tc obs.TraceContext) []byte {
	dst = appendUvarint(dst, tc.TraceHi)
	dst = appendUvarint(dst, tc.TraceLo)
	dst = appendUvarint(dst, tc.SpanID)
	return append(dst, boolByte(tc.Sampled))
}

// ---- per-type bodies shared between standalone and batched encodings ----

func appendGroupSearch(dst []byte, m *GroupSearch) []byte {
	dst = appendInt(dst, m.Group)
	dst = appendBytes(dst, m.Query)
	dst = appendInts(dst, m.Offsets)
	dst = appendInt(dst, m.WindowLen)
	return appendParams(dst, &m.Params)
}

func decodeGroupSearch(r *reader) GroupSearch {
	return GroupSearch{
		Group:     r.int(),
		Query:     r.bytes(),
		Offsets:   r.ints(),
		WindowLen: r.int(),
		Params:    decodeParams(r),
	}
}

func appendGroupSearchResult(dst []byte, m *GroupSearchResult) []byte {
	dst = appendAnchors(dst, m.Anchors)
	dst = appendInt64(dst, m.KNNNs)
	dst = appendInt64(dst, m.ExtendNs)
	dst = appendInt64(dst, m.Visits)
	dst = appendInt64(dst, m.MergeNs)
	return appendSpans(dst, m.Spans)
}

func decodeGroupSearchResult(r *reader) GroupSearchResult {
	return GroupSearchResult{
		Anchors:  r.anchors(),
		KNNNs:    r.int64(),
		ExtendNs: r.int64(),
		Visits:   r.int64(),
		MergeNs:  r.int64(),
		Spans:    r.spans(),
	}
}

func appendParams(dst []byte, p *Params) []byte {
	dst = appendInt(dst, p.Step)
	dst = appendInt(dst, p.Neighbors)
	dst = appendFloat(dst, p.Identity)
	dst = appendFloat(dst, p.CScore)
	dst = appendString(dst, p.Matrix)
	dst = appendInt(dst, p.GappedS)
	dst = appendInt(dst, p.Band)
	dst = appendFloat(dst, p.MaxE)
	var flags byte
	if p.BothStrands {
		flags |= 1
	}
	if p.Mask {
		flags |= 2
	}
	return append(dst, flags)
}

func decodeParams(r *reader) Params {
	p := Params{
		Step:      r.int(),
		Neighbors: r.int(),
		Identity:  r.float(),
		CScore:    r.float(),
		Matrix:    r.matrix(),
		GappedS:   r.int(),
		Band:      r.int(),
		MaxE:      r.float(),
	}
	flags := r.byte()
	p.BothStrands = flags&1 != 0
	p.Mask = flags&2 != 0
	return p
}

func appendAnchors(dst []byte, as []Anchor) []byte {
	dst = appendUvarint(dst, uint64(len(as)))
	for i := range as {
		a := &as[i]
		dst = appendUvarint(dst, uint64(a.Seq))
		dst = appendInt(dst, a.QStart)
		dst = appendInt(dst, a.QEnd)
		dst = appendInt(dst, a.SStart)
		dst = appendInt(dst, a.SEnd)
		dst = appendInt(dst, a.Score)
	}
	return dst
}

// appendSpans encodes the rare tracing payload as a self-contained gob
// blob: spans ride only on sampled queries, and SpanSnapshot is a recursive
// tree gob already handles. A zero-length blob means no spans.
func appendSpans(dst []byte, spans []obs.SpanSnapshot) []byte {
	if len(spans) == 0 {
		return appendUvarint(dst, 0)
	}
	buf := BufPool.Get().(*bytes.Buffer)
	defer BufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(spans); err != nil {
		// SpanSnapshot is plain exported data; gob cannot fail on it. Drop
		// spans rather than corrupt the frame if it somehow does.
		return appendUvarint(dst, 0)
	}
	dst = appendUvarint(dst, uint64(buf.Len()))
	return append(dst, buf.Bytes()...)
}

// ---- primitive encoders ----

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendInt(dst []byte, v int) []byte        { return binary.AppendVarint(dst, int64(v)) }
func appendInt64(dst []byte, v int64) []byte    { return binary.AppendVarint(dst, v) }

func appendFloat(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendBytes(dst, p []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendInts(dst []byte, vs []int) []byte {
	dst = appendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendInt(dst, v)
	}
	return dst
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ---- decoder ----

// reader is a sticky-error cursor over a binary payload. Every accessor is
// safe after a failure (it returns zero values), so decode functions read
// fields unconditionally and check err once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: codec: "+format+" at offset %d", append(args, r.off)...)
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.failf("truncated byte")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) bool() bool { return r.byte() != 0 }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.failf("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) int64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.failf("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) int() int { return int(r.int64()) }

func (r *reader) float() float64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.failf("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// count reads a slice length and bounds it by the bytes remaining: each
// element of the pending slice occupies at least min bytes, so a count that
// could not possibly fit is rejected before any allocation (a corrupt or
// adversarial length cannot force a huge make).
func (r *reader) count(min int) int {
	v := r.uvarint()
	if r.err != nil || v == 0 {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(r.remaining())/uint64(min) {
		r.failf("slice length %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

// bytes returns a zero-copy view of a length-prefixed byte string. A
// zero-length string decodes as nil, matching gob's empty-slice convention.
func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.failf("byte string length %d exceeds remaining input", n)
		return nil
	}
	end := r.off + int(n)
	v := r.b[r.off:end:end]
	r.off = end
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

// matrix decodes Params.Matrix, interning the scoring matrix names the
// repository ships so the decode hot path does not allocate a string per
// request.
func (r *reader) matrix() string {
	b := r.bytes()
	switch string(b) {
	case "BLOSUM62":
		return "BLOSUM62"
	case "PAM250":
		return "PAM250"
	case "DNA":
		return "DNA"
	}
	return string(b)
}

func (r *reader) ints() []int {
	n := r.count(1)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.int()
	}
	return out
}

func (r *reader) anchors() []Anchor {
	n := r.count(6)
	if n == 0 {
		return nil
	}
	out := make([]Anchor, n)
	for i := range out {
		out[i] = Anchor{
			Seq:    seq.ID(r.uvarint()),
			QStart: r.int(),
			QEnd:   r.int(),
			SStart: r.int(),
			SEnd:   r.int(),
			Score:  r.int(),
		}
	}
	return out
}

func (r *reader) traceContext() obs.TraceContext {
	return obs.TraceContext{
		TraceHi: r.uvarint(),
		TraceLo: r.uvarint(),
		SpanID:  r.uvarint(),
		Sampled: r.bool(),
	}
}

func (r *reader) spans() []obs.SpanSnapshot {
	blob := r.bytes()
	if len(blob) == 0 {
		return nil
	}
	var spans []obs.SpanSnapshot
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&spans); err != nil {
		r.failf("span blob: %v", err)
		return nil
	}
	return spans
}
