package wire

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"

	"mendel/internal/seq"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRanges(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Step = 0 },
		func(p *Params) { p.Neighbors = 0 },
		func(p *Params) { p.Identity = -0.1 },
		func(p *Params) { p.Identity = 1.1 },
		func(p *Params) { p.CScore = -0.1 },
		func(p *Params) { p.CScore = 1.5 },
		func(p *Params) { p.Matrix = "" },
		func(p *Params) { p.GappedS = -1 },
		func(p *Params) { p.Band = -1 },
		func(p *Params) { p.MaxE = -1 },
	}
	for i, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAnchorDiagonal(t *testing.T) {
	a := Anchor{QStart: 10, SStart: 25}
	if a.Diagonal() != 15 {
		t.Fatalf("diagonal = %d", a.Diagonal())
	}
	b := Anchor{QStart: 25, SStart: 10}
	if b.Diagonal() != -15 {
		t.Fatalf("negative diagonal = %d", b.Diagonal())
	}
}

// TestAllMessagesGobRoundTrip ensures every registered message survives the
// envelope encoding both transports rely on.
func TestAllMessagesGobRoundTrip(t *testing.T) {
	messages := []any{
		Ping{},
		Pong{Node: "n1"},
		Bootstrap{HashTree: []byte{1, 2}, Metric: "hamming", BlockLen: 16, Margin: 8, Groups: [][]string{{"a"}, {"b"}}},
		BootstrapAck{},
		IndexBlocks{Blocks: []Block{{Seq: 1, Start: 2, Content: []byte("ACGT"), Context: []byte("AACGTT"), CtxOff: 1}}},
		IndexBlocksAck{Accepted: 7},
		StoreSequences{IDs: []seq.ID{1, 2, 3}, Names: []string{"x", "y", "z"}, Data: [][]byte{{65}, {67}, {71}}},
		StoreSequencesAck{},
		FetchRegion{Seq: 9, Start: 1, End: 5},
		Region{Seq: 9, Start: 1, Data: []byte("CGT"), Len: 100},
		LocalSearch{Query: []byte("ACGTACGT"), Offsets: []int{0, 4}, WindowLen: 4, Params: DefaultParams()},
		LocalSearchResult{Anchors: []Anchor{{Seq: 1, QStart: 0, QEnd: 4, SStart: 2, SEnd: 6, Score: 8}}},
		GroupSearch{Group: 2, Query: []byte("ACGT"), Offsets: []int{0}, WindowLen: 4, Params: DefaultParams()},
		GroupSearchResult{},
		Stats{},
		StatsResult{Node: "n", Blocks: 1, Residues: 16, Sequences: 1, TreeSize: 1},
	}
	for _, msg := range messages {
		var buf bytes.Buffer
		box := struct{ V any }{msg}
		if err := gob.NewEncoder(&buf).Encode(&box); err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		var out struct{ V any }
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if out.V == nil {
			t.Fatalf("%T: decoded nil", msg)
		}
	}
}

func TestParamsGobRoundTripProperty(t *testing.T) {
	f := func(step, neighbors uint8, identity, cscore float64) bool {
		p := Params{
			Step:      int(step),
			Neighbors: int(neighbors),
			Identity:  identity,
			CScore:    cscore,
			Matrix:    "BLOSUM62",
			GappedS:   28,
			Band:      8,
			MaxE:      10,
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(p); err != nil {
			return false
		}
		var back Params
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			return false
		}
		// gob omits zero-value fields; reflexive equality still must hold
		// for our field types.
		return back.Matrix == p.Matrix && back.Step == p.Step && back.Identity == p.Identity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
