package wire

import (
	"bytes"
	"testing"

	"mendel/internal/seq"
)

// Benchmark fixtures sized like real query-path traffic: a multi-window
// subquery, a result with a few dozen anchors, a block-transfer batch, and
// a coalesced search batch.
func benchGroupSearch() GroupSearch {
	return GroupSearch{
		Group:     3,
		Query:     bytes.Repeat([]byte("MKVLATGQW"), 14),
		Offsets:   []int{0, 16, 32, 48, 64, 80, 96, 112},
		WindowLen: 16,
		Params:    DefaultParams(),
	}
}

func benchLocalSearchResult() LocalSearchResult {
	anchors := make([]Anchor, 24)
	for i := range anchors {
		anchors[i] = Anchor{Seq: seq.ID(i), QStart: i * 16, QEnd: i*16 + 16,
			SStart: i * 100, SEnd: i*100 + 16, Score: 40 + i}
	}
	return LocalSearchResult{Anchors: anchors, KNNNs: 123456, ExtendNs: 7890, Visits: 321}
}

func benchIndexBlocks() IndexBlocks {
	blocks := make([]Block, 32)
	for i := range blocks {
		blocks[i] = Block{Seq: seq.ID(i % 4), Start: i * 16,
			Content: bytes.Repeat([]byte("ACGT"), 4),
			Context: bytes.Repeat([]byte("ACGT"), 8), CtxOff: 8}
	}
	return IndexBlocks{Blocks: blocks}
}

func benchGroupSearchBatch() GroupSearchBatch {
	items := make([]GroupSearch, 8)
	for i := range items {
		items[i] = benchGroupSearch()
	}
	return GroupSearchBatch{Group: 3, Items: items}
}

// benchmarkMarshal measures binary encoding into a pooled scratch frame —
// exactly the transport's send path — and reports the encoded size.
func benchmarkMarshal(b *testing.B, msg any) {
	b.Helper()
	data, ok := AppendHot(nil, msg)
	if !ok {
		b.Fatalf("%T is not hot", msg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp := GetFrame()
		out, _ := AppendHot(*fp, msg)
		*fp = out
		PutFrame(fp)
	}
	b.ReportMetric(float64(len(data)), "wire-bytes")
}

// benchmarkUnmarshal measures binary decoding from a pre-encoded frame —
// the transport's receive path, minus the per-frame buffer allocation that
// real receives pay for retention safety.
func benchmarkUnmarshal(b *testing.B, msg any) {
	b.Helper()
	data, ok := AppendHot(nil, msg)
	if !ok {
		b.Fatalf("%T is not hot", msg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeHot(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalGroupSearch(b *testing.B)   { benchmarkMarshal(b, benchGroupSearch()) }
func BenchmarkUnmarshalGroupSearch(b *testing.B) { benchmarkUnmarshal(b, benchGroupSearch()) }

func BenchmarkMarshalLocalSearchResult(b *testing.B) { benchmarkMarshal(b, benchLocalSearchResult()) }
func BenchmarkUnmarshalLocalSearchResult(b *testing.B) {
	benchmarkUnmarshal(b, benchLocalSearchResult())
}

func BenchmarkMarshalIndexBlocks(b *testing.B)   { benchmarkMarshal(b, benchIndexBlocks()) }
func BenchmarkUnmarshalIndexBlocks(b *testing.B) { benchmarkUnmarshal(b, benchIndexBlocks()) }

func BenchmarkMarshalGroupSearchBatch(b *testing.B) { benchmarkMarshal(b, benchGroupSearchBatch()) }
func BenchmarkUnmarshalGroupSearchBatch(b *testing.B) {
	benchmarkUnmarshal(b, benchGroupSearchBatch())
}
