// Package wire defines the messages exchanged between Mendel cluster nodes
// and the query parameters of the paper's Table I. Messages are plain
// structs carried by the transports as interface values, with a per-message
// codec dispatch: the hot request/response types have a hand-rolled binary
// encoding (codec.go — varint fields, zero-copy byte views, pooled frames),
// while cold and rare messages ride encoding/gob, for which every concrete
// type is registered here. Marshal/Unmarshal remain the self-contained gob
// envelope codec used for persistence, debugging and cold-path frames.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"mendel/internal/obs"
	"mendel/internal/seq"
)

// Params are the user-facing query parameters, one field per row of the
// paper's Table I.
type Params struct {
	Step      int     // k: sliding window step over the query
	Neighbors int     // n: nearest neighbours fetched per subquery
	Identity  float64 // i: minimum percent-identity of a candidate, in [0,1]
	CScore    float64 // c: minimum consecutivity score, in [0,1]
	Matrix    string  // M: scoring matrix name (BLOSUM62, PAM250, DNA)
	GappedS   int     // S: normalized score threshold for gapped extension
	Band      int     // l: gapped alignment band width, in diagonals
	MaxE      float64 // E: expectation value threshold for reporting
	// BothStrands additionally searches the reverse complement of a DNA
	// query, reporting minus-strand hits with Hit.Strand == '-'. Ignored
	// for protein data.
	BothStrands bool
	// Mask filters low-complexity regions out of the query before
	// decomposition (SEG/DUST-style entropy masking): masked windows are
	// skipped so repeat tracts cannot flood the cluster with meaningless
	// subqueries.
	Mask bool
}

// DefaultParams returns the parameter defaults used throughout the
// repository for protein searches.
func DefaultParams() Params {
	return Params{
		Step:      16,
		Neighbors: 12,
		Identity:  0.30,
		CScore:    0.40,
		Matrix:    "BLOSUM62",
		GappedS:   28,
		Band:      8,
		MaxE:      10,
	}
}

// Validate checks the ranges of Table I (k,n >= 1; i,c in [0,1]; S,l,E >= 0).
func (p Params) Validate() error {
	switch {
	case p.Step < 1:
		return fmt.Errorf("params: step k = %d, want >= 1", p.Step)
	case p.Neighbors < 1:
		return fmt.Errorf("params: neighbors n = %d, want >= 1", p.Neighbors)
	case p.Identity < 0 || p.Identity > 1:
		return fmt.Errorf("params: identity i = %g, want [0,1]", p.Identity)
	case p.CScore < 0 || p.CScore > 1:
		return fmt.Errorf("params: c-score c = %g, want [0,1]", p.CScore)
	case p.Matrix == "":
		return fmt.Errorf("params: empty scoring matrix M")
	case p.GappedS < 0:
		return fmt.Errorf("params: gapped threshold S = %d, want >= 0", p.GappedS)
	case p.Band < 0:
		return fmt.Errorf("params: band l = %d, want >= 0", p.Band)
	case p.MaxE < 0:
		return fmt.Errorf("params: expectation E = %g, want >= 0", p.MaxE)
	}
	return nil
}

// Block is the wire form of an inverted index block (§V-A1).
type Block struct {
	Seq     seq.ID
	Start   int
	Content []byte
	Context []byte
	CtxOff  int
}

// Anchor is an extended ungapped match produced on a storage node and
// aggregated at group and system entry points (§V-B). Coordinates are
// half-open; SStart/SEnd are subject (reference sequence) offsets.
type Anchor struct {
	Seq    seq.ID
	QStart int
	QEnd   int
	SStart int
	SEnd   int
	Score  int
}

// Diagonal returns the anchor's alignment diagonal (subject minus query
// start), the merge key of the aggregation stages.
func (a Anchor) Diagonal() int { return a.SStart - a.QStart }

// Ping checks liveness.
type Ping struct{}

// Pong answers Ping. Booted distinguishes a node that merely restarted (its
// process answers but it lost the bootstrapped cluster state) from one that
// is fully operational; the health monitor re-bootstraps the former before
// replaying hints at it.
type Pong struct {
	Node   string
	Booted bool
}

// Bootstrap distributes the shared cluster state to a storage node: the
// serialized vp-prefix hash tree, the metric and block geometry, and the
// topology (group membership lists).
type Bootstrap struct {
	HashTree []byte
	Metric   string
	BlockLen int
	Margin   int
	Groups   [][]string
	Kind     seq.Kind
	// SearchBudget caps the distance evaluations of each local vp-tree
	// lookup (0 = exact search). See vptree.NearestBudget.
	SearchBudget int
	// SketchK, SketchBloomBits and SketchMinHashK distribute the cluster's
	// sketch shape (internal/sketch.Params) so every node builds identical,
	// mergeable k-mer signatures during ingest. SketchK == 0 — the value a
	// pre-sketch coordinator sends implicitly, since gob omits unknown
	// fields — disables node-side sketching entirely.
	SketchK         int
	SketchBloomBits int
	SketchMinHashK  int
}

// BootstrapAck acknowledges Bootstrap.
type BootstrapAck struct{}

// UpdateTopology informs a node of a membership change (join or graceful
// leave) without disturbing its stored data, unlike Bootstrap which resets
// the node. Nodes use the topology when acting as group entry points.
type UpdateTopology struct {
	Groups [][]string
}

// UpdateTopologyAck acknowledges UpdateTopology.
type UpdateTopologyAck struct{}

// IndexBlocks stores a batch of blocks on the receiving node. With Stage
// set the node records the blocks but defers vp-tree insertion until a
// BuildIndex message arrives; the parallel ingest pipeline uses this so the
// tree is constructed once, in bulk, from an arrival-order-independent
// (sorted) item set — making the index deterministic no matter how many
// concurrent senders delivered the blocks.
type IndexBlocks struct {
	Blocks []Block
	Stage  bool
}

// IndexBlocksAck reports how many blocks the node accepted.
type IndexBlocksAck struct {
	Accepted int
}

// BuildIndex tells a node to fold every staged block into its local vp-tree
// with one bulk median-split build. Idempotent: with nothing staged it is a
// no-op.
type BuildIndex struct{}

// BuildIndexAck reports how many staged blocks the build consumed.
type BuildIndexAck struct {
	Items int
}

// StoreSequences places full reference sequences on the receiving node's
// shard of the distributed sequence repository, which coordinators consult
// for gapped extension.
type StoreSequences struct {
	IDs   []seq.ID
	Names []string
	Data  [][]byte
}

// StoreSequencesAck acknowledges StoreSequences.
type StoreSequencesAck struct{}

// FetchRegion asks a sequence-repository shard for reference residues
// [Start, End) of a sequence (clamped to its bounds).
type FetchRegion struct {
	Seq   seq.ID
	Start int
	End   int
}

// Region answers FetchRegion. Start carries the clamped effective offset.
type Region struct {
	Seq   seq.ID
	Start int
	Data  []byte
	Len   int // full sequence length
}

// LocalSearch runs subquery windows against the receiving node's local
// vp-tree: n-NN lookup, identity and c-score filtering, and margin-based
// anchor extension (§V-B). The full query travels with the request (queries
// are short relative to the database) so extension can grow anchors beyond
// the seed window on the query side too.
type LocalSearch struct {
	Query     []byte
	Offsets   []int // window start offsets assigned to this node's group
	WindowLen int
	Params    Params
}

// LocalSearchResult returns the node's extended anchors for the subqueries,
// plus the node-side timing breakdown so coordinators can attribute query
// latency to the paper's stages without extra round trips: KNNNs is the time
// spent in vp-tree nearest-neighbour lookups, ExtendNs the time spent in
// filtering and ungapped anchor extension, and Visits the number of vp-tree
// distance evaluations consumed.
type LocalSearchResult struct {
	Anchors  []Anchor
	KNNNs    int64
	ExtendNs int64
	Visits   int64
	// Spans carries the node's completed span subtrees for this request
	// when the caller's TraceContext was sampled; empty otherwise. Gob
	// ignores unknown fields, so results from nodes predating tracing
	// simply arrive without spans.
	Spans []obs.SpanSnapshot
}

// GroupSearch is sent to a group entry point, which fans the contained
// subqueries out to every node of its group, merges overlapping anchors on
// the same diagonal, and returns the merged set (first aggregation stage).
type GroupSearch struct {
	Group     int
	Query     []byte
	Offsets   []int
	WindowLen int
	Params    Params
}

// GroupSearchResult is the group entry point's merged anchor set. The
// timing fields aggregate (sum) the member nodes' LocalSearchResult
// breakdowns, and MergeNs is the entry point's own anchor-aggregation time.
type GroupSearchResult struct {
	Anchors  []Anchor
	KNNNs    int64
	ExtendNs int64
	Visits   int64
	MergeNs  int64
	// Spans carries the entry point's group_search subtree (member
	// local_search spans grafted in) for sampled traces; empty otherwise.
	Spans []obs.SpanSnapshot
}

// GroupSearchBatch carries several queries' GroupSearch requests for the
// same group in one RPC — the cross-query coalescing a concurrent serving
// layer uses to amortize transport cost: many in-flight searches that
// target the same group within one coalescing tick share a single round
// trip and a single gob envelope instead of one each.
//
// TCs, when present, carries one TraceContext per item so each query keeps
// its own distributed trace identity even though the batch travels under a
// single transport envelope; a zero context means that item is untraced.
type GroupSearchBatch struct {
	Group int
	Items []GroupSearch
	TCs   []obs.TraceContext
}

// GroupSearchBatchResult answers GroupSearchBatch item-wise: Items[i] is
// the GroupSearchResult of Items[i] of the request. Errs, when non-empty,
// is index-aligned with Items; a non-empty string is that item's
// application-level failure (the other items still stand — one query's
// failure must not shed the whole batch).
type GroupSearchBatchResult struct {
	Items []GroupSearchResult
	Errs  []string
}

// Metrics asks a node for a snapshot of its observability registry.
type Metrics struct{}

// MetricsResult carries one node's metric snapshots; empty when the node
// runs without a registry attached. Snapshots use obs's fixed histogram
// bucket layout, so coordinators merge them with obs.MergeSnapshots.
type MetricsResult struct {
	Node    string
	Metrics []obs.Snapshot
}

// MetricsHistory asks a node for its windowed time-series telemetry,
// trimmed to the trailing WindowNS nanoseconds (0 = everything retained).
// Like Metrics it rides the gob path — history pulls are a periodic
// dashboard/operator concern, not the query hot path, and gob already
// handles time.Time and the nested maps.
type MetricsHistory struct {
	WindowNS int64
}

// MetricsHistoryResult carries one node's windowed series; History.Points
// is empty when the node runs without a sampler attached. Coordinators
// merge per-node results with obs.MergeHistories.
type MetricsHistoryResult struct {
	Node    string
	History obs.History
}

// TraceFetch asks a node for every retained root span belonging to the
// given 32-hex trace ID — the pull half of cross-node trace assembly,
// covering spans that were not shipped inline in a search result (e.g.
// fetch_region spans recorded during gapped extension).
type TraceFetch struct {
	TraceID string
}

// TraceFetchResult answers TraceFetch; empty when the node runs without a
// tracer or retains nothing for the trace.
type TraceFetchResult struct {
	Node  string
	Spans []obs.SpanSnapshot
}

// BlockManifest asks a node for a summary of its block and sequence
// inventory — the read half of anti-entropy repair. The reply carries hashes
// rather than contents, so a manifest sweep over the whole cluster stays
// cheap relative to the data it describes.
type BlockManifest struct{}

// BlockManifestResult lists a node's holdings: the packed reference and
// placement hash (dht.KeyHash of the block content) of every stored block,
// index-aligned, plus the IDs of the sequence-repository shards it holds.
// The coordinator diffs Hashes against Topology.ReplicasForHash placement to
// find blocks whose replica set lost a copy.
type BlockManifestResult struct {
	Node   string
	Refs   []uint64 // packed (seq, start) block references, sorted
	Hashes []uint64 // Hashes[i] = dht.KeyHash of the block at Refs[i]
	Seqs   []seq.ID // sequence-repository shard IDs held, sorted
}

// PushBlocks tells a node (a surviving replica) to re-replicate the listed
// blocks to Target via the staged IndexBlocks path. Block contents flow
// node-to-node; the coordinator only ever routes references.
type PushBlocks struct {
	Target string
	Refs   []uint64
}

// PushBlocksAck reports a PushBlocks outcome: how many blocks the target
// accepted and how many of the requested refs the source no longer holds.
type PushBlocksAck struct {
	Pushed  int
	Missing int
}

// PushSequences is PushBlocks for the sequence repository: the receiving
// node forwards the listed full sequences to Target with StoreSequences.
type PushSequences struct {
	Target string
	IDs    []seq.ID
}

// PushSequencesAck reports a PushSequences outcome.
type PushSequencesAck struct {
	Pushed  int
	Missing int
}

// SketchFetch asks a node for its k-mer signature over every block it
// holds (internal/sketch encoding). The coordinator pulls these after
// ingest and repair, merges them per group (sketch union is exact and
// order-independent), and consults the merged signatures to skip groups
// during query fan-out.
type SketchFetch struct{}

// SketchFetchResult answers SketchFetch. Sketch is empty when the node was
// bootstrapped without sketch params (or predates them); the coordinator
// then marks the node's groups incomplete and never skips them.
type SketchFetchResult struct {
	Node   string
	Sketch []byte
}

// Stats queries a node's storage counters.
type Stats struct{}

// StatsResult reports per-node storage and work counters; the
// load-balancing evaluation (Fig. 5) reads the storage fields and the
// scalability evaluation (Fig. 6c) reads BusyNS, the cumulative time the
// node has spent answering LocalSearch requests. On an in-process cluster
// every node shares one machine's cores, so the *maximum per-node busy
// time* — the critical path — models the turnaround a deployment with one
// machine per node would see.
type StatsResult struct {
	Node      string
	Blocks    int
	Residues  int
	Sequences int
	TreeSize  int
	BusyNS    int64
	// TopoNodes is the cluster size in the node's own topology view; a node
	// that missed an UpdateTopology broadcast disagrees with the
	// coordinator here, which the self-healing tests assert against.
	TopoNodes int
}

// envelope boxes a message for Marshal/Unmarshal: gob refuses to encode a
// bare interface value, so the codec wraps it in a single-field struct,
// exactly as the transports frame their request/response exchanges.
type envelope struct{ V any }

// BufPool recycles encode/decode scratch buffers across Marshal calls and
// across the transports' per-message round trips: wire messages are encoded
// on every RPC, so per-call bytes.Buffer growth was a measurable slice of
// query-path allocations.
var BufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Marshal encodes a registered wire message into a self-contained byte
// slice (the persistence/debug counterpart of the transports' streaming
// framing). The returned slice is owned by the caller; internal scratch is
// pooled.
func Marshal(msg any) ([]byte, error) {
	buf := BufPool.Get().(*bytes.Buffer)
	defer BufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(&envelope{V: msg}); err != nil {
		return nil, fmt.Errorf("wire: marshal %T: %w", msg, err)
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// Unmarshal decodes a Marshal-produced byte slice back into its message.
// Arbitrary input returns an error; it must never panic (fuzz-enforced).
func Unmarshal(data []byte) (any, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return env.V, nil
}

func init() {
	gob.Register(Ping{})
	gob.Register(Pong{})
	gob.Register(Bootstrap{})
	gob.Register(BootstrapAck{})
	gob.Register(UpdateTopology{})
	gob.Register(UpdateTopologyAck{})
	gob.Register(IndexBlocks{})
	gob.Register(IndexBlocksAck{})
	gob.Register(BuildIndex{})
	gob.Register(BuildIndexAck{})
	gob.Register(StoreSequences{})
	gob.Register(StoreSequencesAck{})
	gob.Register(FetchRegion{})
	gob.Register(Region{})
	gob.Register(LocalSearch{})
	gob.Register(LocalSearchResult{})
	gob.Register(GroupSearch{})
	gob.Register(GroupSearchResult{})
	gob.Register(GroupSearchBatch{})
	gob.Register(GroupSearchBatchResult{})
	gob.Register(BlockManifest{})
	gob.Register(BlockManifestResult{})
	gob.Register(PushBlocks{})
	gob.Register(PushBlocksAck{})
	gob.Register(PushSequences{})
	gob.Register(PushSequencesAck{})
	gob.Register(Stats{})
	gob.Register(StatsResult{})
	gob.Register(Metrics{})
	gob.Register(MetricsResult{})
	gob.Register(MetricsHistory{})
	gob.Register(MetricsHistoryResult{})
	gob.Register(TraceFetch{})
	gob.Register(TraceFetchResult{})
	gob.Register(SketchFetch{})
	gob.Register(SketchFetchResult{})
}
