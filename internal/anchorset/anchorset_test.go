package anchorset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mendel/internal/seq"
	"mendel/internal/wire"
)

func a(seqID uint32, qs, qe, ss, se, score int) wire.Anchor {
	return wire.Anchor{Seq: 1, QStart: qs, QEnd: qe, SStart: ss, SEnd: se, Score: score}
}

func TestMergeOverlappingSameDiagonal(t *testing.T) {
	// Two anchors on diagonal +5 overlapping in subject space.
	in := []wire.Anchor{
		{Seq: 1, QStart: 0, QEnd: 10, SStart: 5, SEnd: 15, Score: 20},
		{Seq: 1, QStart: 8, QEnd: 20, SStart: 13, SEnd: 25, Score: 30},
	}
	out := Merge(in)
	if len(out) != 1 {
		t.Fatalf("merged = %d anchors", len(out))
	}
	m := out[0]
	if m.SStart != 5 || m.SEnd != 25 || m.QStart != 0 || m.QEnd != 20 {
		t.Fatalf("merged span = %+v", m)
	}
	if m.Score != 30 {
		t.Fatalf("merged score = %d", m.Score)
	}
}

func TestMergeTouchingAnchors(t *testing.T) {
	in := []wire.Anchor{
		{Seq: 1, QStart: 0, QEnd: 10, SStart: 0, SEnd: 10, Score: 10},
		{Seq: 1, QStart: 10, QEnd: 20, SStart: 10, SEnd: 20, Score: 12},
	}
	out := Merge(in)
	if len(out) != 1 || out[0].SEnd != 20 {
		t.Fatalf("merge of touching anchors = %+v", out)
	}
}

func TestMergeKeepsDistinctDiagonalsAndSeqs(t *testing.T) {
	in := []wire.Anchor{
		{Seq: 1, QStart: 0, QEnd: 10, SStart: 0, SEnd: 10, Score: 10},
		{Seq: 1, QStart: 0, QEnd: 10, SStart: 3, SEnd: 13, Score: 10},  // diag +3
		{Seq: 2, QStart: 0, QEnd: 10, SStart: 0, SEnd: 10, Score: 10},  // other seq
		{Seq: 1, QStart: 0, QEnd: 10, SStart: 50, SEnd: 60, Score: 10}, // disjoint... diag +50
	}
	out := Merge(in)
	if len(out) != 4 {
		t.Fatalf("merged = %d anchors, want 4", len(out))
	}
}

func TestMergeDisjointSameDiagonal(t *testing.T) {
	in := []wire.Anchor{
		{Seq: 1, QStart: 0, QEnd: 5, SStart: 0, SEnd: 5, Score: 8},
		{Seq: 1, QStart: 20, QEnd: 25, SStart: 20, SEnd: 25, Score: 9},
	}
	if out := Merge(in); len(out) != 2 {
		t.Fatalf("disjoint anchors merged: %+v", out)
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	if Merge(nil) != nil {
		t.Fatal("Merge(nil) != nil")
	}
	one := []wire.Anchor{{Seq: 1, QEnd: 5, SEnd: 5, Score: 3}}
	if out := Merge(one); len(out) != 1 || out[0] != one[0] {
		t.Fatalf("single merge = %+v", out)
	}
}

func TestMergeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := rng.Intn(30)
		in := make([]wire.Anchor, n)
		for i := range in {
			qs := rng.Intn(50)
			l := rng.Intn(20) + 1
			d := rng.Intn(10)
			in[i] = wire.Anchor{
				Seq: seq.ID(1 + rng.Intn(3)), QStart: qs, QEnd: qs + l,
				SStart: qs + d, SEnd: qs + d + l, Score: rng.Intn(100),
			}
		}
		once := Merge(in)
		twice := Merge(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		n := rng.Intn(20) + 2
		in := make([]wire.Anchor, n)
		for i := range in {
			qs := rng.Intn(40)
			l := rng.Intn(15) + 1
			in[i] = wire.Anchor{Seq: 1, QStart: qs, QEnd: qs + l, SStart: qs + 5, SEnd: qs + 5 + l, Score: rng.Intn(50)}
		}
		shuffled := append([]wire.Anchor(nil), in...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a, b := Merge(in), Merge(shuffled)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinBySeq(t *testing.T) {
	in := []wire.Anchor{
		{Seq: 2, SStart: 30, SEnd: 40},
		{Seq: 1, SStart: 10, SEnd: 20},
		{Seq: 2, SStart: 5, SEnd: 12},
	}
	bins := BinBySeq(in)
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	if got := bins[2]; len(got) != 2 || got[0].SStart != 5 || got[1].SStart != 30 {
		t.Fatalf("seq 2 bin = %+v", got)
	}
}

func TestBest(t *testing.T) {
	in := []wire.Anchor{
		{Seq: 1, SStart: 0, Score: 5},
		{Seq: 1, SStart: 1, Score: 50},
		{Seq: 1, SStart: 2, Score: 20},
	}
	best := Best(in, 2)
	if len(best) != 2 || best[0].Score != 50 || best[1].Score != 20 {
		t.Fatalf("best = %+v", best)
	}
	if got := Best(in, 0); got != nil {
		t.Fatal("Best(0) should be nil")
	}
	if got := Best(in, 10); len(got) != 3 {
		t.Fatal("Best clamping wrong")
	}
	// Input order preserved.
	if in[0].Score != 5 {
		t.Fatal("Best mutated input")
	}
}
