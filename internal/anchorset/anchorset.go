// Package anchorset implements the anchor aggregation algebra of §V-B: the
// group and system entry points both combine overlapping anchors that lie on
// the same diagonal of the same reference sequence, and the system entry
// point bins the survivors by sequence to drive gapped extension.
package anchorset

import (
	"sort"

	"mendel/internal/seq"
	"mendel/internal/wire"
)

// SortCanonical orders anchors by (sequence, diagonal, subject start,
// subject end, score) so merging is a linear scan and results are
// deterministic across nodes.
func SortCanonical(anchors []wire.Anchor) {
	sort.Slice(anchors, func(i, j int) bool {
		a, b := anchors[i], anchors[j]
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Diagonal() != b.Diagonal() {
			return a.Diagonal() < b.Diagonal()
		}
		if a.SStart != b.SStart {
			return a.SStart < b.SStart
		}
		if a.SEnd != b.SEnd {
			return a.SEnd < b.SEnd
		}
		return a.Score > b.Score
	})
}

// Merge combines overlapping or touching anchors that share a sequence and
// a diagonal into their union span, keeping the maximum constituent score
// (the union is rescored during gapped extension, so a conservative score
// here only affects the S-threshold gate). The input is not modified; the
// result is canonically sorted.
func Merge(anchors []wire.Anchor) []wire.Anchor {
	if len(anchors) == 0 {
		return nil
	}
	sorted := append([]wire.Anchor(nil), anchors...)
	SortCanonical(sorted)
	out := sorted[:1]
	for _, a := range sorted[1:] {
		last := &out[len(out)-1]
		if a.Seq == last.Seq && a.Diagonal() == last.Diagonal() && a.SStart <= last.SEnd {
			if a.SEnd > last.SEnd {
				last.SEnd = a.SEnd
				last.QEnd = a.QEnd
			}
			if a.Score > last.Score {
				last.Score = a.Score
			}
			continue
		}
		out = append(out, a)
	}
	return out
}

// BinBySeq groups anchors by reference sequence, each bin sorted by anchor
// start position as the paper prescribes for the gapped-extension stage.
func BinBySeq(anchors []wire.Anchor) map[seq.ID][]wire.Anchor {
	bins := make(map[seq.ID][]wire.Anchor)
	for _, a := range anchors {
		bins[a.Seq] = append(bins[a.Seq], a)
	}
	for id := range bins {
		b := bins[id]
		sort.Slice(b, func(i, j int) bool {
			if b[i].SStart != b[j].SStart {
				return b[i].SStart < b[j].SStart
			}
			return b[i].Diagonal() < b[j].Diagonal()
		})
	}
	return bins
}

// Best returns the n highest-scoring anchors (ties broken canonically)
// without modifying the input.
func Best(anchors []wire.Anchor, n int) []wire.Anchor {
	if n <= 0 {
		return nil
	}
	sorted := append([]wire.Anchor(nil), anchors...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		if sorted[i].Seq != sorted[j].Seq {
			return sorted[i].Seq < sorted[j].Seq
		}
		return sorted[i].SStart < sorted[j].SStart
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}
