// Package dht implements Mendel's two-tiered, zero-hop distributed hash
// table topology (§IV-C): storage nodes are organized into groups; the
// first tier (the vp-prefix tree, package vphash) maps data to a group by
// similarity, and the second tier — this package — disperses data evenly
// among the group's nodes with a flat SHA-1 consistent-hash ring, the
// "tried-and-true flat hashing scheme" of §V-A2.
//
// Every node holds the full topology (zero-hop routing, as in Dynamo), so
// requests go directly to their destination without overlay hops. The
// consistent ring with virtual nodes gives the incremental scalability the
// paper targets: adding or removing a node within a group remaps only the
// keys adjacent to its virtual points.
package dht

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a SHA-1 consistent-hash ring over node addresses. The zero value
// is unusable; use NewRing.
type Ring struct {
	vnodesPerNode int
	points        []point // sorted by hash
	nodes         map[string]bool
}

type point struct {
	hash uint64
	node string
}

// DefaultVnodes is the virtual-node count per physical node when the caller
// passes 0: enough for <5% load skew across typical group sizes.
const DefaultVnodes = 64

// NewRing creates an empty ring with the given virtual nodes per physical
// node (0 selects DefaultVnodes).
func NewRing(vnodesPerNode int) *Ring {
	if vnodesPerNode <= 0 {
		vnodesPerNode = DefaultVnodes
	}
	return &Ring{vnodesPerNode: vnodesPerNode, nodes: make(map[string]bool)}
}

// Add places a node on the ring. Adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for v := 0; v < r.vnodesPerNode; v++ {
		r.points = append(r.points, point{hash: vnodeHash(node, v), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove takes a node off the ring. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the ring members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of physical nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns the node owning key: the first virtual point clockwise
// from SHA-1(key). It panics on an empty ring — routing to nobody is a
// programming error, not a runtime condition.
func (r *Ring) Lookup(key []byte) string {
	owners := r.LookupN(key, 1)
	return owners[0]
}

// LookupN returns the first n distinct nodes clockwise from SHA-1(key),
// the replica set used when replication is enabled. n is clamped to the
// ring size.
func (r *Ring) LookupN(key []byte, n int) []string {
	return r.LookupNHash(keyHash(key), n)
}

// LookupNHash is LookupN for a precomputed key hash. Anti-entropy repair
// uses it: block manifests ship KeyHash(content) instead of the contents
// themselves, so the coordinator can recompute placement for millions of
// blocks without ever holding their bytes.
func (r *Ring) LookupNHash(h uint64, n int) []string {
	if len(r.points) == 0 {
		panic("dht: lookup on empty ring")
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

func vnodeHash(node string, v int) uint64 {
	h := sha1.Sum([]byte(fmt.Sprintf("%s#%d", node, v)))
	return binary.BigEndian.Uint64(h[:8])
}

func keyHash(key []byte) uint64 {
	h := sha1.Sum(key)
	return binary.BigEndian.Uint64(h[:8])
}

// KeyHash exposes the ring's key hash for diagnostics and load studies.
func KeyHash(key []byte) uint64 { return keyHash(key) }
