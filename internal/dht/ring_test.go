package dht

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func ringWith(n int) *Ring {
	r := NewRing(0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("node-%02d", i))
	}
	return r
}

func randKey(rng *rand.Rand) []byte {
	k := make([]byte, 16)
	rng.Read(k)
	return k
}

func TestLookupDeterministic(t *testing.T) {
	r := ringWith(10)
	f := func(key []byte) bool {
		return r.Lookup(key) == r.Lookup(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLookupEmptyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(0).Lookup([]byte("key"))
}

func TestAddRemoveIdempotent(t *testing.T) {
	r := NewRing(8)
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 || len(r.points) != 8 {
		t.Fatalf("len=%d points=%d", r.Len(), len(r.points))
	}
	r.Remove("missing")
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatal("remove failed")
	}
}

func TestLoadBalanceIsEven(t *testing.T) {
	// The paper claims near-optimal balance within groups from the flat
	// SHA-1 scheme; with virtual nodes the skew should be modest.
	r := ringWith(10)
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(randKey(rng))]++
	}
	fair := keys / 10
	for n, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("node %s holds %d keys (fair %d)", n, c, fair)
		}
	}
}

func TestConsistencyUnderJoin(t *testing.T) {
	// Adding one node to a 10-node ring should move roughly 1/11 of keys
	// and certainly less than 30%.
	r := ringWith(10)
	rng := rand.New(rand.NewSource(2))
	keys := make([][]byte, 5000)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = randKey(rng)
		before[i] = r.Lookup(keys[i])
	}
	r.Add("node-99")
	moved, movedElsewhere := 0, 0
	for i := range keys {
		after := r.Lookup(keys[i])
		if after != before[i] {
			moved++
			if after != "node-99" {
				movedElsewhere++
			}
		}
	}
	if moved > len(keys)*30/100 {
		t.Fatalf("join moved %d/%d keys", moved, len(keys))
	}
	if movedElsewhere != 0 {
		t.Fatalf("%d keys moved to a node other than the new one", movedElsewhere)
	}
}

func TestConsistencyUnderLeave(t *testing.T) {
	r := ringWith(10)
	rng := rand.New(rand.NewSource(3))
	keys := make([][]byte, 5000)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = randKey(rng)
		before[i] = r.Lookup(keys[i])
	}
	r.Remove("node-04")
	for i := range keys {
		after := r.Lookup(keys[i])
		if before[i] != "node-04" && after != before[i] {
			t.Fatalf("key %d moved from %s to %s though its node stayed", i, before[i], after)
		}
		if after == "node-04" {
			t.Fatal("key routed to removed node")
		}
	}
}

func TestLookupN(t *testing.T) {
	r := ringWith(5)
	key := []byte("replicated-key")
	got := r.LookupN(key, 3)
	if len(got) != 3 {
		t.Fatalf("replicas = %d", len(got))
	}
	seen := map[string]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatal("duplicate replica")
		}
		seen[n] = true
	}
	if got[0] != r.Lookup(key) {
		t.Fatal("first replica must be the primary owner")
	}
	if all := r.LookupN(key, 99); len(all) != 5 {
		t.Fatalf("clamped replicas = %d", len(all))
	}
	if none := r.LookupN(key, 0); none != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestNodesSorted(t *testing.T) {
	r := NewRing(4)
	for _, n := range []string{"c", "a", "b"} {
		r.Add(n)
	}
	got := r.Nodes()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("nodes = %v", got)
	}
}
