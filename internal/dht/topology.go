package dht

import (
	"fmt"
	"sort"
)

// Topology is the cluster layout every Mendel node shares: an ordered list
// of groups, each backed by its own consistent-hash ring. Group membership
// is decided by the vp-prefix tree (first tier); this type answers "which
// node within the group" (second tier) and enumerates fan-out targets.
type Topology struct {
	groups []*Ring
	byNode map[string]int // node -> group index
}

// NewTopology builds a topology from per-group node address lists. Every
// group must have at least one node, and a node may belong to exactly one
// group.
func NewTopology(groups [][]string, vnodesPerNode int) (*Topology, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("dht: no groups")
	}
	t := &Topology{byNode: make(map[string]int)}
	for gi, members := range groups {
		if len(members) == 0 {
			return nil, fmt.Errorf("dht: group %d is empty", gi)
		}
		ring := NewRing(vnodesPerNode)
		for _, n := range members {
			if prev, dup := t.byNode[n]; dup {
				return nil, fmt.Errorf("dht: node %q in groups %d and %d", n, prev, gi)
			}
			t.byNode[n] = gi
			ring.Add(n)
		}
		t.groups = append(t.groups, ring)
	}
	return t, nil
}

// SplitNodes partitions a flat node list into numGroups groups round-robin,
// the layout used when the operator specifies only group count (§IV-C: size
// and quantity of groups are user-configurable).
func SplitNodes(nodes []string, numGroups int) ([][]string, error) {
	if numGroups <= 0 {
		return nil, fmt.Errorf("dht: numGroups = %d", numGroups)
	}
	if len(nodes) < numGroups {
		return nil, fmt.Errorf("dht: %d nodes cannot fill %d groups", len(nodes), numGroups)
	}
	groups := make([][]string, numGroups)
	for i, n := range nodes {
		groups[i%numGroups] = append(groups[i%numGroups], n)
	}
	return groups, nil
}

// Groups returns the number of groups.
func (t *Topology) Groups() int { return len(t.groups) }

// GroupNodes returns the members of group g in sorted order.
func (t *Topology) GroupNodes(g int) []string { return t.groups[g].Nodes() }

// GroupOf returns the group a node belongs to.
func (t *Topology) GroupOf(node string) (int, bool) {
	g, ok := t.byNode[node]
	return g, ok
}

// NodeFor returns the node within group g that owns key — the second-tier
// flat hash placement.
func (t *Topology) NodeFor(g int, key []byte) string { return t.groups[g].Lookup(key) }

// ReplicasFor returns the n-node replica set within group g for key.
func (t *Topology) ReplicasFor(g int, key []byte, n int) []string {
	return t.groups[g].LookupN(key, n)
}

// ReplicasForHash is ReplicasFor with a precomputed key hash, for callers
// (anti-entropy repair) that know KeyHash(key) but not key itself.
func (t *Topology) ReplicasForHash(g int, h uint64, n int) []string {
	return t.groups[g].LookupNHash(h, n)
}

// AllNodes returns every node address in the cluster, sorted.
func (t *Topology) AllNodes() []string {
	out := make([]string, 0, len(t.byNode))
	for n := range t.byNode {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumNodes returns the total node count.
func (t *Topology) NumNodes() int { return len(t.byNode) }

// AddNode joins a node to group g, remapping only adjacent ring keys.
func (t *Topology) AddNode(g int, node string) error {
	if g < 0 || g >= len(t.groups) {
		return fmt.Errorf("dht: group %d out of range", g)
	}
	if prev, dup := t.byNode[node]; dup {
		return fmt.Errorf("dht: node %q already in group %d", node, prev)
	}
	t.byNode[node] = g
	t.groups[g].Add(node)
	return nil
}

// RemoveNode removes a node from the cluster. The last node of a group
// cannot be removed: the group would become unroutable.
func (t *Topology) RemoveNode(node string) error {
	g, ok := t.byNode[node]
	if !ok {
		return fmt.Errorf("dht: unknown node %q", node)
	}
	if t.groups[g].Len() == 1 {
		return fmt.Errorf("dht: node %q is the last member of group %d", node, g)
	}
	delete(t.byNode, node)
	t.groups[g].Remove(node)
	return nil
}
