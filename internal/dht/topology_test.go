package dht

import (
	"fmt"
	"math/rand"
	"testing"
)

func testGroups(groups, perGroup int) [][]string {
	out := make([][]string, groups)
	for g := range out {
		for i := 0; i < perGroup; i++ {
			out[g] = append(out[g], fmt.Sprintf("g%d-n%d", g, i))
		}
	}
	return out
}

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology(nil, 0); err == nil {
		t.Error("no groups accepted")
	}
	if _, err := NewTopology([][]string{{}}, 0); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewTopology([][]string{{"a"}, {"a"}}, 0); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestTopologyAccessors(t *testing.T) {
	top, err := NewTopology(testGroups(10, 5), 16)
	if err != nil {
		t.Fatal(err)
	}
	if top.Groups() != 10 || top.NumNodes() != 50 {
		t.Fatalf("groups=%d nodes=%d", top.Groups(), top.NumNodes())
	}
	if len(top.AllNodes()) != 50 {
		t.Fatal("AllNodes wrong")
	}
	if members := top.GroupNodes(3); len(members) != 5 {
		t.Fatalf("group 3 members = %v", members)
	}
	g, ok := top.GroupOf("g7-n2")
	if !ok || g != 7 {
		t.Fatalf("GroupOf = %d %v", g, ok)
	}
	if _, ok := top.GroupOf("nope"); ok {
		t.Fatal("unknown node resolved")
	}
}

func TestNodeForStaysInGroup(t *testing.T) {
	top, err := NewTopology(testGroups(6, 4), 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		g := rng.Intn(6)
		node := top.NodeFor(g, randKey(rng))
		if got, _ := top.GroupOf(node); got != g {
			t.Fatalf("NodeFor(%d) returned node of group %d", g, got)
		}
	}
}

func TestReplicasFor(t *testing.T) {
	top, _ := NewTopology(testGroups(2, 5), 16)
	reps := top.ReplicasFor(1, []byte("key"), 3)
	if len(reps) != 3 {
		t.Fatalf("replicas = %v", reps)
	}
	for _, n := range reps {
		if g, _ := top.GroupOf(n); g != 1 {
			t.Fatal("replica outside group")
		}
	}
}

func TestSplitNodes(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e", "f", "g"}
	groups, err := SplitNodes(nodes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		if len(g) < 2 || len(g) > 3 {
			t.Fatalf("unbalanced group %v", g)
		}
	}
	if total != 7 {
		t.Fatalf("total = %d", total)
	}
	if _, err := SplitNodes(nodes, 0); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := SplitNodes([]string{"a"}, 2); err == nil {
		t.Error("fewer nodes than groups accepted")
	}
}

func TestAddRemoveNode(t *testing.T) {
	top, _ := NewTopology(testGroups(2, 2), 16)
	if err := top.AddNode(5, "x"); err == nil {
		t.Error("out-of-range group accepted")
	}
	if err := top.AddNode(1, "g0-n0"); err == nil {
		t.Error("duplicate add accepted")
	}
	if err := top.AddNode(1, "new-node"); err != nil {
		t.Fatal(err)
	}
	if g, _ := top.GroupOf("new-node"); g != 1 {
		t.Fatal("added node in wrong group")
	}
	if err := top.RemoveNode("ghost"); err == nil {
		t.Error("unknown remove accepted")
	}
	if err := top.RemoveNode("new-node"); err != nil {
		t.Fatal(err)
	}
	// Drain group 0 down to one node; the last removal must fail.
	if err := top.RemoveNode("g0-n1"); err != nil {
		t.Fatal(err)
	}
	if err := top.RemoveNode("g0-n0"); err == nil {
		t.Error("removed last node of a group")
	}
}

func TestJoinRemapsOnlyWithinGroup(t *testing.T) {
	top, _ := NewTopology(testGroups(3, 4), 32)
	rng := rand.New(rand.NewSource(5))
	keys := make([][]byte, 2000)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = randKey(rng)
		before[i] = top.NodeFor(1, keys[i])
	}
	// Adding a node to group 2 must not disturb group 1 placement.
	if err := top.AddNode(2, "late-joiner"); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if top.NodeFor(1, keys[i]) != before[i] {
			t.Fatal("join in group 2 remapped keys of group 1")
		}
	}
}
