package gateway

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionImmediateBelowLimit(t *testing.T) {
	a := newAdmission(2, 4)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := a.inflightNow(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	a.release()
	a.release()
	if got := a.inflightNow(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 2)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Two waiters fit in the queue.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { results <- a.acquire(ctx) }()
	}
	waitFor(t, func() bool { return a.queueDepth() == 2 })
	// The third is shed immediately.
	if err := a.acquire(ctx); !errors.Is(err, errQueueFull) {
		t.Fatalf("acquire with full queue = %v, want errQueueFull", err)
	}
	// Draining grants both waiters.
	a.release()
	a.release()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	}
	a.release()
}

func TestAdmissionFIFOOrder(t *testing.T) {
	a := newAdmission(1, 8)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	const waiters = 5
	order := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		go func() {
			if err := a.acquire(ctx); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			a.release()
		}()
		// Serialize enqueue so arrival order is known.
		waitFor(t, func() bool { return a.queueDepth() == int64(i+1) })
	}
	a.release() // start the chain: each waiter releases to the next
	for want := 0; want < waiters; want++ {
		got := <-order
		if got != want {
			t.Fatalf("grant order: got waiter %d in position %d (not FIFO)", got, want)
		}
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	errCh := make(chan error, 1)
	go func() { errCh <- a.acquire(cctx) }()
	waitFor(t, func() bool { return a.queueDepth() == 1 })
	// A second, patient waiter queues behind the doomed one.
	okCh := make(chan error, 1)
	go func() { okCh <- a.acquire(ctx) }()
	waitFor(t, func() bool { return a.queueDepth() == 2 })

	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return a.queueDepth() == 1 })
	// Releasing must skip the abandoned waiter and grant the live one.
	a.release()
	if err := <-okCh; err != nil {
		t.Fatalf("patient acquire: %v", err)
	}
	a.release()
	if a.inflightNow() != 0 || a.queueDepth() != 0 {
		t.Fatalf("inflight=%d queued=%d after drain, want 0/0", a.inflightNow(), a.queueDepth())
	}
}

// TestAdmissionStress hammers acquire/release from many goroutines with
// random cancellation, checking the semaphore invariant (never more than
// max concurrent holders) and that everything drains. Run with -race.
func TestAdmissionStress(t *testing.T) {
	const max, maxQueue, goroutines, rounds = 4, 8, 32, 50
	a := newAdmission(max, maxQueue)
	var holders atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (g+r)%3 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(r%5)*100*time.Microsecond)
				}
				err := a.acquire(ctx)
				cancel()
				if err != nil {
					continue // shed or timed out: both fine under stress
				}
				if n := holders.Add(1); n > max {
					t.Errorf("%d concurrent holders, limit %d", n, max)
				}
				time.Sleep(time.Duration(r%3) * 50 * time.Microsecond)
				holders.Add(-1)
				a.release()
			}
		}(g)
	}
	wg.Wait()
	if a.inflightNow() != 0 || a.queueDepth() != 0 {
		t.Fatalf("inflight=%d queued=%d after stress, want 0/0", a.inflightNow(), a.queueDepth())
	}
}

// waitFor polls cond until true or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(500 * time.Microsecond)
	}
}
