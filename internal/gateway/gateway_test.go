package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mendel/internal/core"
	"mendel/internal/datagen"
	"mendel/internal/obs"
	"mendel/internal/seq"
)

// testEnv is one in-process cluster with a gateway mounted on an obs mux
// behind httptest, the full serving stack minus real sockets.
type testEnv struct {
	gw      *Gateway
	srv     *httptest.Server
	cluster *core.InProcess
	reg     *obs.Registry
	db      *seq.Set
}

func newTestEnv(t *testing.T, gcfg Config) *testEnv {
	t.Helper()
	cfg := core.DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 500
	ip, err := core.NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	gen := datagen.New(seq.Protein, 5)
	db, err := gen.Database(12, 300, 50, "ref")
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.Index(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	gw := New(ip.Cluster, gcfg, reg)
	srv := httptest.NewServer(obs.HandlerWithRoutes(reg, nil, nil, nil, gw.Routes()...))
	t.Cleanup(srv.Close)
	return &testEnv{gw: gw, srv: srv, cluster: ip, reg: reg, db: db}
}

// postSearch sends one search and returns the status code, decoded body
// (nil on non-200), and the Retry-After header.
func (e *testEnv) postSearch(t *testing.T, query, tenant string) (int, *SearchResponse, string) {
	t.Helper()
	body, _ := json.Marshal(SearchRequest{Query: query})
	req, err := http.NewRequest(http.MethodPost, e.srv.URL+"/v1/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Mendel-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	retryAfter := resp.Header.Get("Retry-After")
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, retryAfter
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &sr, retryAfter
}

func counterValue(reg *obs.Registry, name string) int64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

func TestGatewaySearchOK(t *testing.T) {
	e := newTestEnv(t, Config{})
	query := string(e.db.Seqs[3].Data[40:160])
	status, sr, _ := e.postSearch(t, query, "")
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if len(sr.Hits) == 0 {
		t.Fatal("no hits for a database-derived query")
	}
	if sr.Hits[0].Seq != 3 {
		t.Fatalf("top hit seq = %d, want 3", sr.Hits[0].Seq)
	}
	if sr.Hits[0].Cigar == "" || sr.Hits[0].Bits <= 0 {
		t.Fatalf("degenerate top hit: %+v", sr.Hits[0])
	}
	if got := counterValue(e.reg, "gw_search_ok_total"); got != 1 {
		t.Fatalf("gw_search_ok_total = %d, want 1", got)
	}
}

func TestGatewaySimilarityOK(t *testing.T) {
	e := newTestEnv(t, Config{})
	body, _ := json.Marshal(SimilarityRequest{Query: string(e.db.Seqs[5].Data[:200]), Top: 3})
	resp, err := http.Post(e.srv.URL+"/v1/similarity", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var sr SimilarityResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Hits) == 0 || sr.Hits[0].Seq != 5 {
		t.Fatalf("similarity hits = %+v, want seq 5 first", sr.Hits)
	}
	if len(sr.Hits) > 3 {
		t.Fatalf("got %d hits, top=3", len(sr.Hits))
	}
	if got := counterValue(e.reg, "gw_similarity_ok_total"); got != 1 {
		t.Fatalf("gw_similarity_ok_total = %d, want 1", got)
	}
}

// TestGatewayRequestValidation is the table-driven bad-input suite.
func TestGatewayRequestValidation(t *testing.T) {
	e := newTestEnv(t, Config{})
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"get search", http.MethodGet, "/v1/search", "", http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "/v1/search", "{", http.StatusBadRequest},
		{"empty query", http.MethodPost, "/v1/search", `{"query":""}`, http.StatusBadRequest},
		{"invalid residues", http.MethodPost, "/v1/search", `{"query":"MKV!@#"}`, http.StatusBadRequest},
		{"get ingest", http.MethodGet, "/v1/ingest", "", http.StatusMethodNotAllowed},
		{"ingest no seqs", http.MethodPost, "/v1/ingest", `{"sequences":[]}`, http.StatusBadRequest},
		{"ingest bad residues", http.MethodPost, "/v1/ingest", `{"sequences":[{"name":"x","data":"!!!"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, e.srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestGatewayQueueFullSheds pins the overload contract: with the in-flight
// window and wait queue both full, new requests get 429 with a Retry-After
// hint instead of queueing without bound.
func TestGatewayQueueFullSheds(t *testing.T) {
	e := newTestEnv(t, Config{MaxInFlight: 1, MaxQueue: 1})
	ctx := context.Background()
	// Fill the one slot and the one queue seat directly.
	if err := e.gw.adm.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- e.gw.adm.acquire(ctx) }()
	waitFor(t, func() bool { return e.gw.adm.queueDepth() == 1 })

	status, _, retryAfter := e.postSearch(t, string(e.db.Seqs[0].Data[0:120]), "")
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	if retryAfter == "" {
		t.Fatal("429 without Retry-After header")
	}
	if got := counterValue(e.reg, "gw_shed_total"); got != 1 {
		t.Fatalf("gw_shed_total = %d, want 1", got)
	}

	// Drain: release grants the queued waiter, then release that too.
	e.gw.adm.release()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	e.gw.adm.release()
	if e.gw.adm.inflightNow() != 0 {
		t.Fatal("slots leaked")
	}
}

// TestGatewayDeadlineWhileQueued pins the deadline contract: a request that
// cannot be admitted within its deadline answers 504, and its queue seat is
// reclaimed.
func TestGatewayDeadlineWhileQueued(t *testing.T) {
	e := newTestEnv(t, Config{MaxInFlight: 1, MaxQueue: 4, Deadline: 100 * time.Millisecond})
	if err := e.gw.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	status, _, _ := e.postSearch(t, string(e.db.Seqs[0].Data[0:120]), "")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	if got := counterValue(e.reg, "gw_deadline_total"); got != 1 {
		t.Fatalf("gw_deadline_total = %d, want 1", got)
	}
	waitFor(t, func() bool { return e.gw.adm.queueDepth() == 0 })
	e.gw.adm.release()
}

// TestGatewayTenantQuota pins per-tenant throttling: a tenant that exhausts
// its token bucket gets 429 while other tenants keep being served.
func TestGatewayTenantQuota(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	e := newTestEnv(t, Config{TenantRate: 5, TenantBurst: 2, Clock: clk.Now})
	query := string(e.db.Seqs[1].Data[20:140])
	for i := 0; i < 2; i++ {
		if status, _, _ := e.postSearch(t, query, "alice"); status != http.StatusOK {
			t.Fatalf("alice request %d within burst: status %d", i, status)
		}
	}
	status, _, retryAfter := e.postSearch(t, query, "alice")
	if status != http.StatusTooManyRequests {
		t.Fatalf("alice beyond burst: status = %d, want 429", status)
	}
	if retryAfter == "" {
		t.Fatal("throttled 429 without Retry-After")
	}
	// Bob is a different bucket.
	if status, _, _ := e.postSearch(t, query, "bob"); status != http.StatusOK {
		t.Fatalf("bob: status = %d, want 200", status)
	}
	// The clock moving forward refills alice.
	clk.advance(time.Second)
	if status, _, _ := e.postSearch(t, query, "alice"); status != http.StatusOK {
		t.Fatalf("alice after refill: status = %d, want 200", status)
	}
	if got := counterValue(e.reg, "gw_tenant_throttled_total"); got != 1 {
		t.Fatalf("gw_tenant_throttled_total = %d, want 1", got)
	}
}

func TestGatewayStatus(t *testing.T) {
	e := newTestEnv(t, Config{MaxInFlight: 7, MaxQueue: 9})
	resp, err := http.Get(e.srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.MaxInFlight != 7 || st.MaxQueue != 9 {
		t.Fatalf("limits = %d/%d, want 7/9", st.MaxInFlight, st.MaxQueue)
	}
	if st.Sequences != 12 || st.Nodes != 4 || st.Groups != 2 {
		t.Fatalf("cluster shape = %d seqs %d nodes %d groups, want 12/4/2", st.Sequences, st.Nodes, st.Groups)
	}
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("idle gateway reports inflight=%d queue=%d", st.InFlight, st.QueueDepth)
	}
}

// TestGatewayIngestThenSearch round-trips a sequence through POST
// /v1/ingest and finds it via POST /v1/search.
func TestGatewayIngestThenSearch(t *testing.T) {
	e := newTestEnv(t, Config{})
	gen := datagen.New(seq.Protein, 77)
	data := gen.Sequence(240)
	body, _ := json.Marshal(IngestRequest{Sequences: []IngestSequence{{Name: "fresh", Data: string(data)}}})
	resp, err := http.Post(e.srv.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Indexed != 1 {
		t.Fatalf("ingest: status %d indexed %d", resp.StatusCode, ir.Indexed)
	}
	status, sr, _ := e.postSearch(t, string(data[30:150]), "")
	if status != http.StatusOK {
		t.Fatalf("search after ingest: status %d", status)
	}
	found := false
	for _, h := range sr.Hits {
		if h.Name == "fresh" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingested sequence not among %d hits", len(sr.Hits))
	}
}

// TestGatewayConcurrentClients runs many clients against a small window and
// checks the bookkeeping: every request is answered 200 or 429, the
// admission gauges return to zero, and ok+shed counters equal the request
// count. Run with -race.
func TestGatewayConcurrentClients(t *testing.T) {
	e := newTestEnv(t, Config{MaxInFlight: 2, MaxQueue: 2, Deadline: 10 * time.Second})
	query := string(e.db.Seqs[2].Data[10:130])
	const clients, perClient = 8, 4
	var mu sync.Mutex
	statuses := make(map[int]int)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				status, _, _ := e.postSearch(t, query, "")
				mu.Lock()
				statuses[status]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	total := 0
	for status, n := range statuses {
		if status != http.StatusOK && status != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d (%d times)", status, n)
		}
		total += n
	}
	if total != clients*perClient {
		t.Fatalf("answered %d requests, want %d", total, clients*perClient)
	}
	if e.gw.adm.inflightNow() != 0 || e.gw.adm.queueDepth() != 0 {
		t.Fatal("admission state did not drain")
	}
	ok := counterValue(e.reg, "gw_search_ok_total")
	shed := counterValue(e.reg, "gw_shed_total")
	if ok+shed != int64(total) {
		t.Fatalf("ok(%d)+shed(%d) != answered(%d)", ok, shed, total)
	}
	if ok == 0 {
		t.Fatal("no request succeeded")
	}
}

// TestGatewayMetricsExposed checks the gw_* gauges are wired into the
// /metrics surface the gateway shares with the observability mux.
func TestGatewayMetricsExposed(t *testing.T) {
	e := newTestEnv(t, Config{})
	e.postSearch(t, string(e.db.Seqs[0].Data[0:120]), "")
	resp, err := http.Get(e.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, name := range []string{"gw_inflight", "gw_queue_depth", "gw_requests_total"} {
		if !strings.Contains(text, name) {
			t.Fatalf("/metrics missing %s:\n%s", name, text)
		}
	}
}
