package gateway

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"mendel/internal/core"
	"mendel/internal/datagen"
	"mendel/internal/obs"
	"mendel/internal/seq"
)

// TestGatewayShutdownGoroutines asserts the full serving stack — gateway,
// obs surface with history sampler and SLO watchdog, HTTP server — releases
// every goroutine it started once shut down. Guards the sampler lifecycle:
// a TimeSeries.Run goroutine that outlives its server is a leak every
// long-lived serve process pays for.
func TestGatewayShutdownGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	func() {
		cfg := core.DefaultConfig(seq.Protein)
		cfg.Groups = 2
		cfg.SampleSize = 500
		ip, err := core.NewInProcess(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		gen := datagen.New(seq.Protein, 5)
		db, err := gen.Database(8, 200, 50, "ref")
		if err != nil {
			t.Fatal(err)
		}
		if err := ip.Index(context.Background(), db); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		gw := New(ip.Cluster, Config{}, reg)

		series := obs.NewTimeSeries(reg, obs.TimeSeriesConfig{Interval: 5 * time.Millisecond, Capacity: 64})
		series.AddCollector(obs.NewRuntimeCollector(reg).Collect)
		wd := obs.NewWatchdog(series, obs.SLOConfig{
			Fast:       50 * time.Millisecond,
			Slow:       200 * time.Millisecond,
			Objectives: obs.GatewayObjectives(time.Second, 0.5, 0.5, 100),
		})
		wd.Watch()
		ctx, cancel := context.WithCancel(context.Background())
		go series.Run(ctx)

		srv := httptest.NewServer(obs.Surface{
			Registry: reg,
			History:  series,
			SLO:      wd,
			Routes:   gw.Routes(),
		}.Handler())

		// Real traffic through every layer so the stack actually spins up.
		for i := 0; i < 3; i++ {
			resp, err := srv.Client().Get(srv.URL + "/metrics/history?nodes=1")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		for series.Samples() < 5 {
			time.Sleep(time.Millisecond)
		}

		cancel()
		srv.Close()
	}()

	// Goroutine teardown is asynchronous (http keep-alives, ticker stop);
	// poll briefly before judging.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
