package gateway

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// fakeClock is a deterministic, manually advanced quota clock.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func TestQuotaBurstThenThrottle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	q := newQuotaTable(1, 3, clk.Now)
	for i := 0; i < 3; i++ {
		if !q.allow("a") {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	if q.allow("a") {
		t.Fatal("request beyond burst admitted with no time passing")
	}
	// One second refills exactly one token at rate 1.
	clk.advance(time.Second)
	if !q.allow("a") {
		t.Fatal("refilled token denied")
	}
	if q.allow("a") {
		t.Fatal("second token admitted after one second at rate 1")
	}
}

func TestQuotaTenantsIndependent(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	q := newQuotaTable(1, 2, clk.Now)
	for i := 0; i < 2; i++ {
		if !q.allow("a") {
			t.Fatal("tenant a within burst denied")
		}
	}
	if q.allow("a") {
		t.Fatal("tenant a beyond burst admitted")
	}
	// Tenant b's bucket is untouched by a's exhaustion.
	for i := 0; i < 2; i++ {
		if !q.allow("b") {
			t.Fatal("tenant b within burst denied")
		}
	}
}

func TestQuotaNilTableAdmitsEverything(t *testing.T) {
	var q *quotaTable
	for i := 0; i < 100; i++ {
		if !q.allow("any") {
			t.Fatal("nil quota table denied a request")
		}
	}
}

// TestQuotaPropertyRateBound is the property test of the token bucket: for
// random rates, bursts, and arrival schedules, the number of admitted
// requests in the window [start, t] never exceeds rate·t + burst — the
// bucket must not be exploitable by any arrival pattern, including long
// idle stretches (capped refill) and dense bursts.
func TestQuotaPropertyRateBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rate := 0.5 + rng.Float64()*20 // 0.5..20.5 qps
			burst := 1 + rng.Intn(10)      // 1..10
			clk := &fakeClock{now: time.Unix(int64(trial)*1000, 0)}
			q := newQuotaTable(rate, burst, clk.Now)
			start := clk.now
			admitted := 0
			arrivals := 200 + rng.Intn(200)
			for i := 0; i < arrivals; i++ {
				// Arrival gaps from 0 (same instant) to ~200ms, with
				// occasional multi-second idles to test capped refill.
				switch rng.Intn(10) {
				case 0:
					clk.advance(time.Duration(rng.Intn(5)) * time.Second)
				case 1, 2:
					// no advance: burst of simultaneous arrivals
				default:
					clk.advance(time.Duration(rng.Intn(200)) * time.Millisecond)
				}
				if q.allow("tenant") {
					admitted++
				}
				elapsed := clk.now.Sub(start).Seconds()
				bound := rate*elapsed + float64(burst)
				if float64(admitted) > bound+1e-6 {
					t.Fatalf("after %.3fs: admitted %d > rate·t+burst = %.3f (rate=%.2f burst=%d)",
						elapsed, admitted, bound, rate, burst)
				}
			}
			if admitted == 0 {
				t.Fatal("property trial admitted nothing; schedule degenerate")
			}
		})
	}
}
