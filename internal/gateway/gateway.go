package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mendel/internal/core"
	"mendel/internal/obs"
	"mendel/internal/seq"
	"mendel/internal/wire"
)

// Config tunes the gateway. Zero values select the defaults.
type Config struct {
	// MaxInFlight bounds the number of queries running concurrently
	// against the cluster (default 16).
	MaxInFlight int
	// MaxQueue bounds the admission wait queue; requests arriving beyond
	// it are shed with 429 + Retry-After (default 64).
	MaxQueue int
	// Deadline is the per-request budget covering both queue wait and
	// query execution; exceeding it answers 504 (default 30s).
	Deadline time.Duration
	// TenantRate enables per-tenant token-bucket quotas at this many
	// queries per second per tenant (keyed by the X-Mendel-Tenant header,
	// "default" when absent). Zero disables quotas.
	TenantRate float64
	// TenantBurst is the bucket capacity when quotas are enabled
	// (default 8).
	TenantBurst int
	// MaxHits caps the hits returned per query (default 50); requests may
	// ask for fewer via max_hits.
	MaxHits int
	// Params are the search parameters applied to every query; the zero
	// value selects wire.DefaultParams().
	Params wire.Params
	// Clock overrides the quota clock for tests; nil uses time.Now.
	Clock func() time.Time
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 16
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 8
	}
	if cfg.MaxHits <= 0 {
		cfg.MaxHits = 50
	}
	if cfg.Params.Step == 0 {
		cfg.Params = wire.DefaultParams()
	}
	return cfg
}

// Gateway serves concurrent similarity queries over one shared
// core.Cluster. Create with New, mount Routes onto an obs mux (or any
// http.ServeMux), and serve.
type Gateway struct {
	cluster *core.Cluster
	cfg     Config
	reg     *obs.Registry
	adm     *admission
	quotas  *quotaTable
	// ingestMu serializes Index calls, which the cluster requires; queries
	// keep flowing during an ingest.
	ingestMu sync.Mutex
}

// New builds a gateway over cluster. reg receives the gw_* metrics and may
// be nil (metrics off). The cluster must already be indexed or concurrently
// being indexed; ErrNotIndexed maps to 503 until then.
func New(cluster *core.Cluster, cfg Config, reg *obs.Registry) *Gateway {
	cfg = cfg.withDefaults()
	g := &Gateway{
		cluster: cluster,
		cfg:     cfg,
		reg:     reg,
		adm:     newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
	}
	if cfg.TenantRate > 0 {
		g.quotas = newQuotaTable(cfg.TenantRate, cfg.TenantBurst, cfg.Clock)
	}
	if reg != nil {
		reg.SetGaugeFunc("gw_inflight", g.adm.inflightNow)
		reg.SetGaugeFunc("gw_queue_depth", g.adm.queueDepth)
	}
	return g
}

// Routes returns the gateway's API surface for mounting onto the obs mux:
//
//	POST /v1/search      run one query
//	POST /v1/similarity  rank sequences by alignment-free MinHash Jaccard
//	POST /v1/ingest      add sequences to the index
//	GET  /v1/status      gateway and cluster status
func (g *Gateway) Routes() []obs.Route {
	return []obs.Route{
		{Pattern: "/v1/search", Handler: http.HandlerFunc(g.handleSearch)},
		{Pattern: "/v1/similarity", Handler: http.HandlerFunc(g.handleSimilarity)},
		{Pattern: "/v1/ingest", Handler: http.HandlerFunc(g.handleIngest)},
		{Pattern: "/v1/status", Handler: http.HandlerFunc(g.handleStatus)},
	}
}

// SearchRequest is the POST /v1/search body.
type SearchRequest struct {
	// Query is the residue string to search (protein or DNA per the
	// cluster's configured kind).
	Query string `json:"query"`
	// MaxHits optionally lowers the per-query hit cap below Config.MaxHits.
	MaxHits int `json:"max_hits,omitempty"`
}

// SearchHit is one reported alignment in a SearchResponse.
type SearchHit struct {
	Seq    uint32  `json:"seq"`
	Name   string  `json:"name"`
	Strand string  `json:"strand"`
	Bits   float64 `json:"bits"`
	E      float64 `json:"e"`
	Score  int     `json:"score"`
	QStart int     `json:"q_start"`
	QEnd   int     `json:"q_end"`
	SStart int     `json:"s_start"`
	SEnd   int     `json:"s_end"`
	Cigar  string  `json:"cigar"`
}

// SearchResponse is the POST /v1/search reply.
type SearchResponse struct {
	Hits      []SearchHit `json:"hits"`
	Partial   bool        `json:"partial,omitempty"`
	TraceID   string      `json:"trace_id,omitempty"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// errorBody is the JSON error payload on every non-2xx answer.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (g *Gateway) count(name string) {
	if g.reg != nil {
		g.reg.Counter(name).Inc()
	}
}

// retryAfter estimates how long a shed client should back off: one deadline
// per full queue drain, floored at a second.
func (g *Gateway) retryAfter() string {
	secs := int(g.cfg.Deadline.Seconds() / 4)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Mendel-Tenant"); t != "" {
		return t
	}
	return "default"
}

func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	g.count("gw_requests_total")
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty query"})
		return
	}
	query := []byte(req.Query)
	if err := seq.AlphabetFor(g.cluster.Config().Kind).Normalize(query); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	// Quota before admission: a throttled tenant must not occupy queue
	// slots other tenants could use.
	tenant := tenantOf(r)
	if !g.quotas.allow(tenant) {
		g.count("gw_tenant_throttled_total")
		w.Header().Set("Retry-After", g.retryAfter())
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "tenant quota exhausted"})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.Deadline)
	defer cancel()
	if err := g.adm.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			g.count("gw_shed_total")
			w.Header().Set("Retry-After", g.retryAfter())
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "admission queue full"})
		case errors.Is(err, context.DeadlineExceeded):
			g.count("gw_deadline_total")
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline exceeded while queued"})
		default: // client went away
			g.count("gw_canceled_total")
			writeJSON(w, 499, errorBody{Error: "client closed request"})
		}
		return
	}
	defer g.adm.release()

	start := time.Now()
	hits, trace, err := g.cluster.SearchTrace(ctx, query, g.cfg.Params)
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			g.count("gw_deadline_total")
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline exceeded"})
		case errors.Is(err, context.Canceled):
			g.count("gw_canceled_total")
			writeJSON(w, 499, errorBody{Error: "client closed request"})
		case errors.Is(err, core.ErrNotIndexed):
			g.count("gw_errors_total")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "cluster has no indexed data"})
		default:
			g.count("gw_errors_total")
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	if g.reg != nil {
		g.reg.Histogram("gw_search_ns").Observe(elapsed.Nanoseconds())
	}
	maxHits := g.cfg.MaxHits
	if req.MaxHits > 0 && req.MaxHits < maxHits {
		maxHits = req.MaxHits
	}
	if len(hits) > maxHits {
		hits = hits[:maxHits]
	}
	resp := SearchResponse{
		Hits:      make([]SearchHit, len(hits)),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
	if trace != nil {
		resp.Partial = trace.Partial
		resp.TraceID = trace.TraceID
	}
	for i, h := range hits {
		resp.Hits[i] = SearchHit{
			Seq:    uint32(h.Seq),
			Name:   h.Name,
			Strand: string(h.Strand),
			Bits:   h.Bits,
			E:      h.E,
			Score:  h.Alignment.Score,
			QStart: h.Alignment.QStart,
			QEnd:   h.Alignment.QEnd,
			SStart: h.Alignment.SStart,
			SEnd:   h.Alignment.SEnd,
			Cigar:  h.Alignment.CIGAR(),
		}
	}
	g.count("gw_search_ok_total")
	writeJSON(w, http.StatusOK, resp)
}

// SimilarityRequest is the POST /v1/similarity body.
type SimilarityRequest struct {
	// Query is the residue string to rank against (protein or DNA per the
	// cluster's configured kind).
	Query string `json:"query"`
	// Top optionally lowers the number of ranked sequences returned below
	// Config.MaxHits.
	Top int `json:"top,omitempty"`
}

// SimilarityEntry is one ranked sequence in a SimilarityResponse.
type SimilarityEntry struct {
	Seq     uint32  `json:"seq"`
	Name    string  `json:"name"`
	Jaccard float64 `json:"jaccard"`
}

// SimilarityResponse is the POST /v1/similarity reply.
type SimilarityResponse struct {
	Hits      []SimilarityEntry `json:"hits"`
	ElapsedMS float64           `json:"elapsed_ms"`
}

// handleSimilarity answers alignment-free MinHash ranking requests. The
// computation is coordinator-local (per-sequence signatures from the
// manifest; no node fan-out), but it still honors tenant quotas and
// admission so a ranking storm cannot starve alignment queries.
func (g *Gateway) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	g.count("gw_requests_total")
	var req SimilarityRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty query"})
		return
	}

	tenant := tenantOf(r)
	if !g.quotas.allow(tenant) {
		g.count("gw_tenant_throttled_total")
		w.Header().Set("Retry-After", g.retryAfter())
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "tenant quota exhausted"})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.Deadline)
	defer cancel()
	if err := g.adm.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			g.count("gw_shed_total")
			w.Header().Set("Retry-After", g.retryAfter())
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "admission queue full"})
		case errors.Is(err, context.DeadlineExceeded):
			g.count("gw_deadline_total")
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline exceeded while queued"})
		default: // client went away
			g.count("gw_canceled_total")
			writeJSON(w, 499, errorBody{Error: "client closed request"})
		}
		return
	}
	defer g.adm.release()

	top := g.cfg.MaxHits
	if req.Top > 0 && req.Top < top {
		top = req.Top
	}
	start := time.Now()
	hits, err := g.cluster.Similarity([]byte(req.Query), top)
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrNotIndexed):
			g.count("gw_errors_total")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "cluster has no indexed data"})
		default:
			g.count("gw_errors_total")
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	if g.reg != nil {
		g.reg.Histogram("gw_similarity_ns").Observe(elapsed.Nanoseconds())
	}
	resp := SimilarityResponse{
		Hits:      make([]SimilarityEntry, len(hits)),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
	for i, h := range hits {
		resp.Hits[i] = SimilarityEntry{Seq: uint32(h.Seq), Name: h.Name, Jaccard: h.Jaccard}
	}
	g.count("gw_similarity_ok_total")
	writeJSON(w, http.StatusOK, resp)
}

// IngestRequest is the POST /v1/ingest body.
type IngestRequest struct {
	Sequences []IngestSequence `json:"sequences"`
}

// IngestSequence is one reference sequence to index.
type IngestSequence struct {
	Name string `json:"name"`
	Data string `json:"data"`
}

// IngestResponse is the POST /v1/ingest reply.
type IngestResponse struct {
	Indexed   int     `json:"indexed"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	g.count("gw_ingests_total")
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Sequences) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "no sequences"})
		return
	}
	set := seq.NewSet(g.cluster.Config().Kind)
	for _, s := range req.Sequences {
		if _, err := set.Add(s.Name, []byte(s.Data)); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
	}
	start := time.Now()
	// The cluster requires Index calls to be serialized; queries keep
	// running concurrently with the ingest.
	g.ingestMu.Lock()
	err := g.cluster.Index(r.Context(), set)
	g.ingestMu.Unlock()
	if err != nil {
		g.count("gw_errors_total")
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	g.count("gw_ingest_ok_total")
	writeJSON(w, http.StatusOK, IngestResponse{
		Indexed:   set.Len(),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// StatusResponse is the GET /v1/status reply.
type StatusResponse struct {
	InFlight    int64  `json:"inflight"`
	QueueDepth  int64  `json:"queue_depth"`
	MaxInFlight int    `json:"max_inflight"`
	MaxQueue    int    `json:"max_queue"`
	Sequences   int    `json:"sequences"`
	Residues    int    `json:"residues"`
	Groups      int    `json:"groups"`
	Nodes       int    `json:"nodes"`
	Kind        string `json:"kind"`
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	topo := g.cluster.Topology()
	writeJSON(w, http.StatusOK, StatusResponse{
		InFlight:    g.adm.inflightNow(),
		QueueDepth:  g.adm.queueDepth(),
		MaxInFlight: g.cfg.MaxInFlight,
		MaxQueue:    g.cfg.MaxQueue,
		Sequences:   g.cluster.NumSequences(),
		Residues:    g.cluster.TotalResidues(),
		Groups:      topo.Groups(),
		Nodes:       len(topo.AllNodes()),
		Kind:        fmt.Sprint(g.cluster.Config().Kind),
	})
}
