// Package gateway turns a coordinator into a long-lived query service: an
// HTTP/JSON API over one shared core.Cluster, running many queries
// concurrently under admission control (a bounded in-flight window with a
// FIFO wait queue), per-tenant token-bucket quotas, and per-request
// deadlines. Overload sheds load explicitly — 429 with Retry-After — rather
// than queueing without bound, so goodput stays flat when offered load
// exceeds capacity.
package gateway

import (
	"context"
	"errors"
	"sync"
)

// errQueueFull is returned by acquire when the wait queue is at capacity;
// the HTTP layer maps it to 429 + Retry-After.
var errQueueFull = errors.New("gateway: admission queue full")

// waiter is one request parked in the admission queue.
type waiter struct {
	grant   chan struct{} // closed (under admission.mu) when a slot transfers
	granted bool          // set under admission.mu before closing grant
	gone    bool          // abandoned by deadline/cancel; release skips it
}

// admission is a bounded in-flight semaphore with an explicit FIFO wait
// queue. Up to max requests run concurrently; the next maxQueue wait in
// arrival order; beyond that acquire fails fast with errQueueFull. release
// hands the freed slot directly to the queue head, so admission order is
// strictly FIFO and a full window never starves waiters.
type admission struct {
	mu       sync.Mutex
	max      int
	maxQueue int
	inflight int
	queued   int // live (non-gone) waiters, for the gw_queue_depth gauge
	queue    []*waiter
}

func newAdmission(max, maxQueue int) *admission {
	return &admission{max: max, maxQueue: maxQueue}
}

// acquire blocks until a slot is granted, the queue is full (errQueueFull),
// or ctx ends (its error). The caller must release after a nil return.
func (a *admission) acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.inflight < a.max {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return errQueueFull
	}
	w := &waiter{grant: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.queued++
	a.mu.Unlock()
	select {
	case <-w.grant:
		return nil // slot transferred by release; inflight already counted
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Lost the race: a slot arrived while we were cancelling.
			// Put it back so it reaches the next waiter.
			a.mu.Unlock()
			a.release()
			return ctx.Err()
		}
		w.gone = true
		a.queued--
		a.mu.Unlock()
		return ctx.Err()
	}
}

// release frees one slot, handing it to the first still-waiting request in
// FIFO order, or shrinking the in-flight count when the queue is empty.
func (a *admission) release() {
	a.mu.Lock()
	for len(a.queue) > 0 {
		w := a.queue[0]
		a.queue[0] = nil
		a.queue = a.queue[1:]
		if w.gone {
			continue
		}
		w.granted = true
		a.queued--
		close(w.grant)
		a.mu.Unlock()
		return // inflight unchanged: the slot moved to w
	}
	a.inflight--
	a.mu.Unlock()
}

// inflightNow reports the number of admitted requests, for gw_inflight.
func (a *admission) inflightNow() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(a.inflight)
}

// queueDepth reports the number of live waiters, for gw_queue_depth.
func (a *admission) queueDepth() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(a.queued)
}
