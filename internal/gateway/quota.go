package gateway

import (
	"sync"
	"time"
)

// tokenBucket is a standard token bucket: tokens refill continuously at
// rate per second up to burst, and each admitted request spends one. A
// bucket starts full, so over any window of length t starting from first
// contact a tenant is admitted at most rate·t + burst requests — the bound
// the property test in quota_test.go checks.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// quotaTable holds one token bucket per tenant, created full on first use.
// The clock is injectable so tests can drive time deterministically.
type quotaTable struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newQuotaTable(rate float64, burst int, now func() time.Time) *quotaTable {
	if now == nil {
		now = time.Now
	}
	return &quotaTable{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*tokenBucket),
	}
}

// allow spends one token from tenant's bucket, reporting whether one was
// available. A nil table (quotas disabled) admits everything.
func (q *quotaTable) allow(tenant string) bool {
	if q == nil {
		return true
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * q.rate
			if b.tokens > q.burst {
				b.tokens = q.burst
			}
			b.last = now
		}
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
