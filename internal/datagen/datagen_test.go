package datagen

import (
	"testing"

	"mendel/internal/seq"
)

func TestSequenceIsValidAndDeterministic(t *testing.T) {
	for _, kind := range []seq.Kind{seq.DNA, seq.Protein} {
		g1 := New(kind, 42)
		g2 := New(kind, 42)
		s1 := g1.Sequence(500)
		s2 := g2.Sequence(500)
		if string(s1) != string(s2) {
			t.Fatalf("%v: generation not deterministic", kind)
		}
		if err := seq.AlphabetFor(kind).Normalize(s1); err != nil {
			t.Fatalf("%v: invalid residue: %v", kind, err)
		}
	}
}

func TestProteinCompositionSkew(t *testing.T) {
	g := New(seq.Protein, 7)
	counts := map[byte]int{}
	for _, c := range g.Sequence(200000) {
		counts[c]++
	}
	if counts['L'] < 4*counts['W'] {
		t.Fatalf("Leu/Trp ratio = %d/%d, want strong skew", counts['L'], counts['W'])
	}
	for _, c := range []byte("BZX*") {
		if counts[c] != 0 {
			t.Fatalf("ambiguity code %c generated", c)
		}
	}
}

func TestDNACompositionUniform(t *testing.T) {
	g := New(seq.DNA, 7)
	counts := map[byte]int{}
	const n = 100000
	for _, c := range g.Sequence(n) {
		counts[c]++
	}
	for _, c := range []byte("ACGT") {
		frac := float64(counts[c]) / n
		if frac < 0.22 || frac > 0.28 {
			t.Fatalf("freq(%c) = %f", c, frac)
		}
	}
	if counts['N'] != 0 {
		t.Fatal("N generated")
	}
}

func TestDatabaseShape(t *testing.T) {
	g := New(seq.Protein, 1)
	db, err := g.Database(50, 300, 50, "nr")
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 50 {
		t.Fatalf("len = %d", db.Len())
	}
	for _, s := range db.Seqs {
		if s.Len() < 250 || s.Len() > 350 {
			t.Fatalf("length %d outside jitter range", s.Len())
		}
	}
	if db.Seqs[7].Name != "nr000007" {
		t.Fatalf("name = %q", db.Seqs[7].Name)
	}
	if _, err := g.Database(0, 100, 10, "x"); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := g.Database(5, 100, 100, "x"); err == nil {
		t.Error("jitter >= mean accepted")
	}
}

func TestMutateRates(t *testing.T) {
	g := New(seq.Protein, 3)
	in := g.Sequence(10000)
	out := g.Mutate(in, 0.1, 0)
	if len(out) != len(in) {
		t.Fatalf("substitution-only mutation changed length: %d", len(out))
	}
	diffs := 0
	for i := range in {
		if in[i] != out[i] {
			diffs++
		}
	}
	// ~10% expected, allow wide margin (substituting can pick the same
	// residue occasionally does not happen here since residue() may return
	// the original — rate is slightly below 0.1).
	if diffs < 500 || diffs > 1500 {
		t.Fatalf("diffs = %d of %d", diffs, len(in))
	}
	withIndels := g.Mutate(in, 0, 0.05)
	if len(withIndels) == len(in) {
		t.Log("indel mutation kept length (possible but unlikely)")
	}
	if len(g.Mutate([]byte{'A'}, 0, 1)) == 0 {
		t.Fatal("mutation produced empty sequence")
	}
}

func TestQuerySetHasHomologs(t *testing.T) {
	g := New(seq.Protein, 5)
	db, err := g.Database(10, 500, 0, "ref")
	if err != nil {
		t.Fatal(err)
	}
	queries, err := g.QuerySet(db, 20, 100, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 20 {
		t.Fatalf("queries = %d", len(queries))
	}
	for _, q := range queries {
		if len(q) < 80 || len(q) > 120 {
			t.Fatalf("query length %d drifted too far", len(q))
		}
	}
	if _, err := g.QuerySet(db, 5, 1000, 0, 0); err == nil {
		t.Error("oversized query length accepted")
	}
	if _, err := g.QuerySet(db, 0, 10, 0, 0); err == nil {
		t.Error("zero count accepted")
	}
}

func TestMutateToSimilarityExact(t *testing.T) {
	g := New(seq.Protein, 9)
	target := g.Sequence(1000)
	for _, sim := range []float64{1.0, 0.9, 0.7, 0.5, 0.3} {
		mut := g.MutateToSimilarity(target, sim)
		if len(mut) != len(target) {
			t.Fatalf("length changed at sim %f", sim)
		}
		same := 0
		for i := range target {
			if mut[i] == target[i] {
				same++
			}
		}
		got := float64(same) / float64(len(target))
		if got < sim-0.001 || got > sim+0.001 {
			t.Fatalf("requested similarity %f, got %f", sim, got)
		}
	}
	// Clamping.
	if got := g.MutateToSimilarity(target, 1.5); string(got) != string(target) {
		t.Fatal("similarity > 1 should be identity")
	}
}

func TestFamily(t *testing.T) {
	g := New(seq.Protein, 11)
	target := g.Sequence(200)
	fam, err := g.Family(target, 10, 0.8, "fam")
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 10 {
		t.Fatalf("family size = %d", fam.Len())
	}
	for _, s := range fam.Seqs {
		if s.Len() != 200 {
			t.Fatal("family member length drifted")
		}
	}
}
