package invindex

import (
	"testing"
	"testing/quick"

	"mendel/internal/seq"
)

func TestPackUnpackRef(t *testing.T) {
	f := func(id uint32, start uint32) bool {
		gotID, gotStart := UnpackRef(PackRef(seq.ID(id), int(start)))
		return gotID == seq.ID(id) && gotStart == int(start)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighbourRefsAreAdjacent(t *testing.T) {
	// With stride-1 indexing, the previous/next block references of the
	// paper are Ref-1 and Ref+1.
	r := PackRef(3, 100)
	id, start := UnpackRef(r + 1)
	if id != 3 || start != 101 {
		t.Fatalf("next ref = (%d,%d)", id, start)
	}
	id, start = UnpackRef(r - 1)
	if id != 3 || start != 99 {
		t.Fatalf("prev ref = (%d,%d)", id, start)
	}
}

func TestBlocksGeometry(t *testing.T) {
	s := seq.MustNew(5, "s", seq.DNA, "ACGTACGTACGTACGTACGT") // 20 residues
	cfg := Config{BlockLen: 8, Margin: 4}
	blocks := Blocks(s, cfg)
	if len(blocks) != 13 { // L-w+1
		t.Fatalf("blocks = %d, want 13", len(blocks))
	}
	first := blocks[0]
	if first.Start != 0 || string(first.Content) != "ACGTACGT" {
		t.Fatalf("first block = %+v", first)
	}
	// First block has no left margin, 4 right margin residues.
	if first.CtxOff != 0 || len(first.Context) != 12 {
		t.Fatalf("first context = off %d len %d", first.CtxOff, len(first.Context))
	}
	mid := blocks[6]
	if mid.Start != 6 || mid.CtxOff != 4 || len(mid.Context) != 16 {
		t.Fatalf("mid block = %+v (ctx len %d)", mid, len(mid.Context))
	}
	if string(mid.Context[mid.CtxOff:mid.CtxOff+8]) != string(mid.Content) {
		t.Fatal("context does not embed content at CtxOff")
	}
	last := blocks[len(blocks)-1]
	if last.Start != 12 || last.End() != 20 {
		t.Fatalf("last block = %+v", last)
	}
	if last.Ref() != PackRef(5, 12) {
		t.Fatal("ref mismatch")
	}
}

func TestBlocksShortSequence(t *testing.T) {
	s := seq.MustNew(0, "s", seq.DNA, "ACG")
	if got := Blocks(s, Config{BlockLen: 8, Margin: 2}); got != nil {
		t.Fatalf("short sequence produced %d blocks", len(got))
	}
}

func TestBlocksExactLength(t *testing.T) {
	s := seq.MustNew(0, "s", seq.DNA, "ACGTACGT")
	blocks := Blocks(s, Config{BlockLen: 8, Margin: 2})
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if len(blocks[0].Context) != 8 || blocks[0].CtxOff != 0 {
		t.Fatal("context should equal content for exact-length sequence")
	}
}

func TestBlockCountMatches(t *testing.T) {
	f := func(l uint8, w uint8) bool {
		ln := int(l)
		wn := int(w)%24 + 1
		data := make([]byte, ln)
		for i := range data {
			data[i] = 'A'
		}
		var blocks []Block
		if ln > 0 {
			s, err := seq.New(0, "s", seq.DNA, data)
			if err != nil {
				return ln == 0
			}
			blocks = Blocks(s, Config{BlockLen: wn, Margin: 3})
		}
		return len(blocks) == BlockCount(ln, wn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{BlockLen: 0, Margin: 1}).Validate(); err == nil {
		t.Error("zero BlockLen accepted")
	}
	if err := (Config{BlockLen: 8, Margin: -1}).Validate(); err == nil {
		t.Error("negative margin accepted")
	}
}

func TestBlockString(t *testing.T) {
	b := Block{Seq: 2, Start: 5, Content: []byte("ACGT")}
	if got := b.String(); got != "block seq=2 [5:9)" {
		t.Fatalf("String = %q", got)
	}
}
