// Package invindex defines the inverted index block, Mendel's basic unit of
// computation and storage (§V-A1): a fixed-length segment of a reference
// sequence produced by a stride-1 sliding window, together with the metadata
// needed at query time — the sequence ID, start/end positions, and access to
// neighbouring residues so candidate matches can be extended into anchors.
//
// Blocks are identified by a packed 64-bit reference (sequence ID in the
// high word, start offset in the low word). Because the indexing stride is
// one, the references to the previous and next blocks the paper calls for
// are implicit: Ref±1 within the same sequence.
package invindex

import (
	"fmt"

	"mendel/internal/seq"
)

// Block is one inverted-index entry. Content is the w-residue segment the
// vp-tree indexes; Context carries up to Margin additional residues on each
// side so storage nodes can extend matches locally without fetching
// neighbouring blocks from other nodes (those neighbours were dispersed by
// the intra-group flat hash and may live anywhere in the group).
type Block struct {
	Seq     seq.ID
	Start   int
	Content []byte
	Context []byte
	CtxOff  int // offset of Content within Context
}

// Ref returns the packed block reference.
func (b *Block) Ref() uint64 { return PackRef(b.Seq, b.Start) }

// End returns the exclusive end offset of the block in its sequence.
func (b *Block) End() int { return b.Start + len(b.Content) }

// String implements fmt.Stringer.
func (b *Block) String() string {
	return fmt.Sprintf("block seq=%d [%d:%d)", b.Seq, b.Start, b.End())
}

// PackRef packs a sequence ID and start offset into a block reference.
func PackRef(id seq.ID, start int) uint64 {
	return uint64(id)<<32 | uint64(uint32(start))
}

// UnpackRef splits a packed block reference.
func UnpackRef(ref uint64) (seq.ID, int) {
	return seq.ID(ref >> 32), int(uint32(ref))
}

// Config controls block creation.
type Config struct {
	// BlockLen is the sliding-window length w; every block carries exactly
	// this many residues. The paper's index produces L-w+1 blocks for a
	// sequence of length L.
	BlockLen int
	// Margin is the number of extra residues captured on each side of the
	// block in Context (clamped at the sequence bounds).
	Margin int
}

// DefaultConfig is the block geometry used throughout the repository:
// 16-residue windows with a 32-residue extension margin per side.
var DefaultConfig = Config{BlockLen: 16, Margin: 32}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BlockLen <= 0 {
		return fmt.Errorf("invindex: BlockLen = %d", c.BlockLen)
	}
	if c.Margin < 0 {
		return fmt.Errorf("invindex: Margin = %d", c.Margin)
	}
	return nil
}

// Blocks fragments a sequence into stride-1 inverted index blocks. The
// Content and Context slices alias the sequence data; blocks are immutable
// views, so this is safe and keeps indexing allocation-free per block.
// Sequences shorter than BlockLen yield no blocks.
func Blocks(s *seq.Sequence, cfg Config) []Block {
	w := cfg.BlockLen
	if w <= 0 || s.Len() < w {
		return nil
	}
	out := make([]Block, 0, s.Len()-w+1)
	for start := 0; start+w <= s.Len(); start++ {
		ctxStart := start - cfg.Margin
		if ctxStart < 0 {
			ctxStart = 0
		}
		ctxEnd := start + w + cfg.Margin
		if ctxEnd > s.Len() {
			ctxEnd = s.Len()
		}
		out = append(out, Block{
			Seq:     s.ID,
			Start:   start,
			Content: s.Data[start : start+w],
			Context: s.Data[ctxStart:ctxEnd],
			CtxOff:  start - ctxStart,
		})
	}
	return out
}

// BlockCount returns the number of blocks Blocks would produce for a
// sequence of length l.
func BlockCount(l, blockLen int) int {
	if blockLen <= 0 || l < blockLen {
		return 0
	}
	return l - blockLen + 1
}
