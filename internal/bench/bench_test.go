package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestScaleValidate(t *testing.T) {
	if err := DefaultScale().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TestScale().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TestScale()
	bad.Nodes = 1
	bad.Groups = 2
	if err := bad.Validate(); err == nil {
		t.Error("nodes < groups accepted")
	}
	bad = TestScale()
	bad.QueriesPerPoint = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero queries accepted")
	}
}

func TestTableI(t *testing.T) {
	out := TableI()
	for _, param := range []string{"k", "n", "i", "c", "M", "S", "l", "E", "BLOSUM62"} {
		if !strings.Contains(out, param) {
			t.Errorf("Table I missing %q:\n%s", param, out)
		}
	}
}

func TestFig5ShapesHold(t *testing.T) {
	res, err := RunFig5(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	s := TestScale()
	if len(res.Nodes) != s.Nodes {
		t.Fatalf("nodes = %d", len(res.Nodes))
	}
	sumFlat, sumTwo := 0.0, 0.0
	for i := range res.Nodes {
		sumFlat += res.FlatPct[i]
		sumTwo += res.TwoTierPct[i]
	}
	if sumFlat < 99.9 || sumFlat > 100.1 || sumTwo < 99.9 || sumTwo > 100.1 {
		t.Fatalf("shares do not sum to 100: flat=%f two-tier=%f", sumFlat, sumTwo)
	}
	// The flat hash is the balance gold standard; two-tier should not be
	// catastrophically worse (the paper reports <=1pp gap at 50 nodes;
	// tiny scales are noisier so assert a loose bound).
	if Spread(res.TwoTierPct) > 20*Spread(res.FlatPct)+25 {
		t.Fatalf("two-tier spread %f implausibly worse than flat %f",
			Spread(res.TwoTierPct), Spread(res.FlatPct))
	}
	out := res.Render()
	if !strings.Contains(out, "two-tier") || !strings.Contains(out, "spread") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSpreadAndStdev(t *testing.T) {
	if Spread(nil) != 0 || Stdev(nil) != 0 {
		t.Fatal("empty series")
	}
	if got := Spread([]float64{1, 5, 3}); got != 4 {
		t.Fatalf("spread = %f", got)
	}
	if got := Stdev([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("stdev = %f", got)
	}
}

func TestFig6aRuns(t *testing.T) {
	res, err := RunFig6a(TestScale(), []int{64, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.MendelMS < 0 || p.BlastMS < 0 {
			t.Fatalf("negative time: %+v", p)
		}
		// The queries were sampled from the database: both systems should
		// find their homolog.
		if p.MendelHits == 0 {
			t.Fatalf("mendel found nothing at length %.0f", p.X)
		}
		if p.BlastHits == 0 {
			t.Fatalf("blast found nothing at length %.0f", p.X)
		}
	}
	if !strings.Contains(res.Render(), "query len") {
		t.Fatal("render missing x label")
	}
}

func TestFig6bRuns(t *testing.T) {
	res, err := RunFig6b(TestScale(), []int{10, 20}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[1].X <= res.Points[0].X {
		t.Fatal("db sizes not increasing")
	}
}

func TestFig6cRuns(t *testing.T) {
	res, err := RunFig6c(TestScale(), []int{2, 4}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Nodes != 2 || res.Points[1].Nodes != 4 {
		t.Fatalf("points = %+v", res.Points)
	}
	if !strings.Contains(res.Render(), "cluster size") {
		t.Fatal("render wrong")
	}
}

func TestFig6dRecallShape(t *testing.T) {
	s := TestScale()
	s.DBSequences = 10
	res, err := RunFig6d(s, []float64{0.9, 0.5}, 5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	high := res.Points[0]
	if high.MendelRecall < 0.99 {
		t.Fatalf("mendel recall at 90%% similarity = %f, want ~1", high.MendelRecall)
	}
	if high.BlastRecall < 0.99 {
		t.Fatalf("blast recall at 90%% similarity = %f, want ~1", high.BlastRecall)
	}
	for _, p := range res.Points {
		if p.MendelRecall < 0 || p.MendelRecall > 1 || p.BlastRecall < 0 || p.BlastRecall > 1 {
			t.Fatalf("recall out of range: %+v", p)
		}
	}
	if !strings.Contains(res.Render(), "sensitivity") {
		t.Fatal("render wrong")
	}
}

func TestAblateDepth(t *testing.T) {
	res, err := RunAblateDepth(TestScale(), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.HashNS <= 0 {
			t.Fatalf("hash cost = %f", p.HashNS)
		}
		if p.SpreadPct < 0 || p.SpreadPct > 100 {
			t.Fatalf("spread = %f", p.SpreadPct)
		}
	}
	if !strings.Contains(res.Render(), "depth") {
		t.Fatal("render wrong")
	}
}

func TestAblateTier2ShowsParallelismLoss(t *testing.T) {
	res, err := RunAblateTier2(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	// The flat hash should spread each block neighbourhood across at least
	// as many nodes as the similarity-grouping vp placement — that is the
	// paper's §V-A2 argument for keeping SHA-1 inside groups.
	if res.FlatTouchedAvg < res.VPTouchedAvg {
		t.Fatalf("flat touches %.2f nodes < vp %.2f — ablation contradicts the design rationale",
			res.FlatTouchedAvg, res.VPTouchedAvg)
	}
	if !strings.Contains(res.Render(), "SHA-1") {
		t.Fatal("render wrong")
	}
}

func TestAblateInsert(t *testing.T) {
	s := TestScale()
	s.DBSequences = 5 // 500 items
	res, err := RunAblateInsert(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != 500 {
		t.Fatalf("items = %d", res.Items)
	}
	if res.Build <= 0 || res.Batched <= 0 || res.OneByOne <= 0 {
		t.Fatal("missing timings")
	}
	if !strings.Contains(res.Render(), "bulk build") {
		t.Fatal("render wrong")
	}
}

func TestAblateBucket(t *testing.T) {
	s := TestScale()
	s.DBSequences = 5
	res, err := RunAblateBucket(s, []int{1, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Bigger buckets make shorter trees.
	if res.Points[1].Height >= res.Points[0].Height {
		t.Fatalf("bucket 32 height %d >= bucket 1 height %d",
			res.Points[1].Height, res.Points[0].Height)
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"a", "long-header"}, [][]string{{"xxxxxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("header and separator misaligned:\n%s", out)
	}
}

func TestRunPerf(t *testing.T) {
	if testing.Short() {
		t.Skip("perf harness runs real benchmarks")
	}
	r, err := RunPerf(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks <= 0 {
		t.Fatalf("blocks = %d", r.Blocks)
	}
	if r.IngestSerialNsPerOp <= 0 || r.IngestParallelNsPerOp <= 0 {
		t.Fatalf("ingest ns/op: serial %d parallel %d", r.IngestSerialNsPerOp, r.IngestParallelNsPerOp)
	}
	if r.IngestSpeedup <= 0 {
		t.Fatalf("speedup = %f", r.IngestSpeedup)
	}
	if r.QueryNsPerOp <= 0 || r.QueryAllocsPerOp <= 0 {
		t.Fatalf("query: %d ns/op, %d allocs/op", r.QueryNsPerOp, r.QueryAllocsPerOp)
	}
	if r.QueryP95Ns < r.QueryP50Ns {
		t.Fatalf("p95 %d < p50 %d", r.QueryP95Ns, r.QueryP50Ns)
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back PerfResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.Blocks != r.Blocks || back.QueryP95Ns != r.QueryP95Ns {
		t.Fatal("JSON round trip lost fields")
	}
	if !strings.Contains(r.Render(), "ingest speedup") {
		t.Fatal("Render missing speedup row")
	}
}
