package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mendel/internal/core"
	"mendel/internal/datagen"
	"mendel/internal/obs"
	"mendel/internal/seq"
)

// PerfResult is the machine-readable performance snapshot behind
// `mendel-bench perf -json` and the BENCH_*.json artifacts the CI
// benchmark gate archives. All times are nanoseconds.
type PerfResult struct {
	// Environment: perf numbers are meaningless without the core count
	// they were measured on.
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPU        string `json:"cpu,omitempty"`

	// Workload dimensions.
	Nodes       int `json:"nodes"`
	Groups      int `json:"groups"`
	DBSequences int `json:"db_sequences"`
	SeqLen      int `json:"seq_len"`
	Blocks      int `json:"blocks"` // inverted-index blocks placed per ingest

	// Ingest: the serial (IngestWorkers=1) pipeline vs the parallel
	// default, same database, same placement, identical resulting trees.
	IngestSerialNsPerOp     int64   `json:"ingest_serial_ns_per_op"`
	IngestParallelNsPerOp   int64   `json:"ingest_parallel_ns_per_op"`
	IngestSerialBlocksSec   float64 `json:"ingest_serial_blocks_per_sec"`
	IngestParallelBlocksSec float64 `json:"ingest_parallel_blocks_per_sec"`
	IngestSpeedup           float64 `json:"ingest_speedup"`

	// Query hot path (coordinator Search, end to end).
	QueryNsPerOp     int64 `json:"query_ns_per_op"`
	QueryAllocsPerOp int64 `json:"query_allocs_per_op"`
	QueryBytesPerOp  int64 `json:"query_bytes_per_op"`
	QueryP50Ns       int64 `json:"query_p50_ns"`
	QueryP95Ns       int64 `json:"query_p95_ns"`
	QuerySamples     int64 `json:"query_samples"`
}

// RunPerf measures the ingest and query hot paths at the given scale. Ingest
// is timed with both pipelines so the emitted JSON carries the speedup; the
// query loop runs under testing.Benchmark for ns/op and allocs/op, while an
// attached obs registry supplies the latency quantiles the paper-style
// tables cannot (a mean hides tail latency).
func RunPerf(s Scale) (*PerfResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	db, gen, err := makeDB(s)
	if err != nil {
		return nil, err
	}
	res := &PerfResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Nodes:       s.Nodes,
		Groups:      s.Groups,
		DBSequences: s.DBSequences,
		SeqLen:      s.SeqLen,
	}

	ingest := func(workers int) (int64, error) {
		var indexErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := core.DefaultConfig(db.Kind)
				cfg.Groups = s.Groups
				cfg.Seed = s.Seed
				cfg.IngestWorkers = workers
				ip, err := core.NewInProcess(cfg, s.Nodes)
				if err != nil {
					indexErr = err
					return
				}
				b.StartTimer()
				if err := ip.Index(context.Background(), db); err != nil {
					indexErr = err
					return
				}
				b.StopTimer()
				if res.Blocks == 0 {
					stats, err := ip.Stats(context.Background())
					if err != nil {
						indexErr = err
						return
					}
					for _, st := range stats {
						res.Blocks += st.Blocks
					}
				}
			}
		})
		return r.NsPerOp(), indexErr
	}

	if res.IngestSerialNsPerOp, err = ingest(1); err != nil {
		return nil, fmt.Errorf("bench: serial ingest: %w", err)
	}
	if res.IngestParallelNsPerOp, err = ingest(0); err != nil {
		return nil, fmt.Errorf("bench: parallel ingest: %w", err)
	}
	res.IngestSerialBlocksSec = float64(res.Blocks) / (float64(res.IngestSerialNsPerOp) / 1e9)
	res.IngestParallelBlocksSec = float64(res.Blocks) / (float64(res.IngestParallelNsPerOp) / 1e9)
	if res.IngestParallelNsPerOp > 0 {
		res.IngestSpeedup = float64(res.IngestSerialNsPerOp) / float64(res.IngestParallelNsPerOp)
	}

	// Query path: one cluster, a homolog workload, coordinator-side p50/p95
	// from the search_ns histogram.
	ip, err := newCluster(s, db)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	ip.Observe(reg, nil)
	queries, err := perfQueries(gen, db, s)
	if err != nil {
		return nil, err
	}
	params := proteinParams()
	var searchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ip.Search(context.Background(), queries[i%len(queries)], params); err != nil {
				searchErr = err
				return
			}
		}
	})
	if searchErr != nil {
		return nil, fmt.Errorf("bench: query: %w", searchErr)
	}
	res.QueryNsPerOp = r.NsPerOp()
	res.QueryAllocsPerOp = r.AllocsPerOp()
	res.QueryBytesPerOp = r.AllocedBytesPerOp()
	h := reg.Histogram("search_ns")
	res.QueryP50Ns = h.Quantile(0.50)
	res.QueryP95Ns = h.Quantile(0.95)
	res.QuerySamples = int64(r.N)
	return res, nil
}

// perfQueries derives a fixed homolog query set from the database: 120-long
// fragments mutated to ~90% identity, the workload Fig. 6a uses.
func perfQueries(gen *datagen.Generator, db *seq.Set, s Scale) ([][]byte, error) {
	n := s.QueriesPerPoint
	if n < 4 {
		n = 4
	}
	return gen.QuerySet(db, n, 120, 0.1, 0.01)
}

// JSON renders the result for the BENCH_*.json artifact.
func (r *PerfResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render prints the human-readable table.
func (r *PerfResult) Render() string {
	rows := [][]string{
		{"ingest serial", fmt.Sprintf("%.1f blocks/s", r.IngestSerialBlocksSec), fmt.Sprintf("%d ns/op", r.IngestSerialNsPerOp)},
		{"ingest parallel", fmt.Sprintf("%.1f blocks/s", r.IngestParallelBlocksSec), fmt.Sprintf("%d ns/op", r.IngestParallelNsPerOp)},
		{"ingest speedup", fmt.Sprintf("%.2fx", r.IngestSpeedup), fmt.Sprintf("GOMAXPROCS=%d", r.GOMAXPROCS)},
		{"query", fmt.Sprintf("%d allocs/op", r.QueryAllocsPerOp), fmt.Sprintf("%d ns/op", r.QueryNsPerOp)},
		{"query p50/p95", time.Duration(r.QueryP50Ns).Round(time.Microsecond).String(), time.Duration(r.QueryP95Ns).Round(time.Microsecond).String()},
	}
	return fmt.Sprintf("Perf hot paths (%d nodes, %d groups, %d blocks)\n%s",
		r.Nodes, r.Groups, r.Blocks, table([]string{"path", "throughput", "latency"}, rows))
}
