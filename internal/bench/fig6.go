package bench

import (
	"context"
	"fmt"
	"time"

	"mendel/internal/blast"
	"mendel/internal/core"
	"mendel/internal/matrix"
)

// Point is one X position of a comparative timing series.
type Point struct {
	X          float64
	MendelMS   float64
	BlastMS    float64
	MendelHits int
	BlastHits  int
}

// SeriesResult holds a Mendel-vs-BLAST timing series (Figs. 6a and 6b).
type SeriesResult struct {
	Title  string
	XLabel string
	Points []Point
}

// Render prints the series as a table.
func (r *SeriesResult) Render() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%.0f", p.X),
			fmt.Sprintf("%.3f", p.MendelMS),
			fmt.Sprintf("%.3f", p.BlastMS),
			fmt.Sprintf("%d", p.MendelHits),
			fmt.Sprintf("%d", p.BlastHits),
		}
	}
	return r.Title + "\n" + table([]string{r.XLabel, "mendel ms", "blast ms", "mendel hits", "blast hits"}, rows)
}

// RunFig6a measures average query turnaround as a function of query length
// (the paper sweeps 500–3000 residues over nr with s_aureus queries) for
// Mendel and the BLAST baseline over the same database.
func RunFig6a(s Scale, lengths []int) (*SeriesResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(lengths) == 0 {
		lengths = []int{500, 1000, 1500, 2000, 2500, 3000}
	}
	maxLen := 0
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	// Database sequences must be long enough to source the longest query;
	// scale the sequence count down to keep total residues comparable.
	if minSeqLen := maxLen + maxLen/4; s.SeqLen < minSeqLen {
		s.DBSequences = s.DBSequences * s.SeqLen / minSeqLen
		if s.DBSequences < 4 {
			s.DBSequences = 4
		}
		s.SeqLen = minSeqLen
	}
	db, gen, err := makeDB(s)
	if err != nil {
		return nil, err
	}
	ip, err := newCluster(s, db)
	if err != nil {
		return nil, err
	}
	bdb, err := blast.NewDB(db, blast.DefaultProteinConfig(), matrix.BLOSUM62)
	if err != nil {
		return nil, err
	}
	res := &SeriesResult{
		Title:  "Fig 6a — avg turnaround vs query length",
		XLabel: "query len",
	}
	ctx := context.Background()
	params := proteinParams()
	for _, length := range lengths {
		queries, err := gen.QuerySet(db, s.QueriesPerPoint, length, 0.05, 0.01)
		if err != nil {
			return nil, err
		}
		p := Point{X: float64(length)}
		mendelTime, blastTime := time.Duration(0), time.Duration(0)
		for _, q := range queries {
			start := time.Now()
			mh, err := ip.Search(ctx, q, params)
			if err != nil {
				return nil, err
			}
			mendelTime += time.Since(start)
			p.MendelHits += len(mh)

			start = time.Now()
			bh, err := bdb.Search(q, params.MaxE)
			if err != nil {
				return nil, err
			}
			blastTime += time.Since(start)
			p.BlastHits += len(bh)
		}
		n := time.Duration(len(queries))
		p.MendelMS = float64((mendelTime / n).Microseconds()) / 1000
		p.BlastMS = float64((blastTime / n).Microseconds()) / 1000
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// RunFig6b measures average turnaround at a fixed query length (the paper
// uses 1000 residues) while the database grows; dbSeqCounts lists the
// database sizes in sequences. Mendel's DHT keeps turnaround near constant
// while BLAST degrades with volume.
func RunFig6b(s Scale, dbSeqCounts []int, queryLen int) (*SeriesResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(dbSeqCounts) == 0 {
		dbSeqCounts = []int{100, 200, 400, 800}
	}
	if queryLen <= 0 {
		queryLen = 1000
	}
	res := &SeriesResult{
		Title:  "Fig 6b — avg turnaround vs database size (query len " + fmt.Sprint(queryLen) + ")",
		XLabel: "db residues",
	}
	ctx := context.Background()
	params := proteinParams()
	for _, count := range dbSeqCounts {
		sz := s
		sz.DBSequences = count
		// Database sequences must fit the query length.
		if sz.SeqLen < queryLen+sz.SeqLen/5 {
			sz.SeqLen = queryLen + queryLen/4
		}
		db, gen, err := makeDB(sz)
		if err != nil {
			return nil, err
		}
		ip, err := newCluster(sz, db)
		if err != nil {
			return nil, err
		}
		bdb, err := blast.NewDB(db, blast.DefaultProteinConfig(), matrix.BLOSUM62)
		if err != nil {
			return nil, err
		}
		queries, err := gen.QuerySet(db, sz.QueriesPerPoint, queryLen, 0.05, 0.01)
		if err != nil {
			return nil, err
		}
		p := Point{X: float64(db.TotalResidues())}
		mendelTime, blastTime := time.Duration(0), time.Duration(0)
		for _, q := range queries {
			start := time.Now()
			mh, err := ip.Search(ctx, q, params)
			if err != nil {
				return nil, err
			}
			mendelTime += time.Since(start)
			p.MendelHits += len(mh)
			start = time.Now()
			bh, err := bdb.Search(q, params.MaxE)
			if err != nil {
				return nil, err
			}
			blastTime += time.Since(start)
			p.BlastHits += len(bh)
		}
		n := time.Duration(len(queries))
		p.MendelMS = float64((mendelTime / n).Microseconds()) / 1000
		p.BlastMS = float64((blastTime / n).Microseconds()) / 1000
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// ScalePoint is one cluster size of the Fig. 6c sweep. WallMS is the
// in-process wall time, which shares one machine's cores across all
// simulated nodes; CriticalMS is the maximum per-node busy time per query —
// the turnaround a deployment with one machine per node would approach,
// and the series whose shape corresponds to the paper's Fig. 6c.
type ScalePoint struct {
	Nodes      int
	WallMS     float64
	CriticalMS float64
	Hits       int
}

// Fig6cResult reproduces the scalability experiment: average turnaround of
// a fixed query set as nodes are added to the cluster.
type Fig6cResult struct {
	Points []ScalePoint
}

// Render prints the series.
func (r *Fig6cResult) Render() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%.3f", p.CriticalMS),
			fmt.Sprintf("%.3f", p.WallMS),
			fmt.Sprintf("%d", p.Hits),
		}
	}
	return "Fig 6c — avg turnaround vs cluster size\n" +
		table([]string{"nodes", "per-node critical-path ms", "in-process wall ms", "hits"}, rows)
}

// RunFig6c indexes the same database over clusters of increasing size and
// measures the e_coli-like query set's average turnaround on each. Local
// lookups run exact (unbudgeted) so per-node work genuinely shrinks as the
// data spreads over more nodes, and the per-node busy counters capture the
// parallel critical path that the single shared machine cannot express in
// wall time.
func RunFig6c(s Scale, nodeCounts []int, queryLen int) (*Fig6cResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(nodeCounts) == 0 {
		nodeCounts = []int{5, 10, 20, 30, 40, 50}
	}
	if queryLen <= 0 {
		queryLen = 400
	}
	db, gen, err := makeDB(s)
	if err != nil {
		return nil, err
	}
	queries, err := gen.QuerySet(db, s.QueriesPerPoint, queryLen, 0.05, 0.01)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	params := proteinParams()
	res := &Fig6cResult{}
	for _, nodes := range nodeCounts {
		sz := s
		sz.Nodes = nodes
		sz.SearchBudget = -1 // exact: per-node work scales with per-node data
		if sz.Groups > nodes {
			sz.Groups = nodes
		}
		ip, err := newCluster(sz, db)
		if err != nil {
			return nil, err
		}
		before, err := busyByNode(ctx, ip)
		if err != nil {
			return nil, err
		}
		point := ScalePoint{Nodes: nodes}
		total := time.Duration(0)
		for _, q := range queries {
			start := time.Now()
			hits, err := ip.Search(ctx, q, params)
			if err != nil {
				return nil, err
			}
			total += time.Since(start)
			point.Hits += len(hits)
		}
		after, err := busyByNode(ctx, ip)
		if err != nil {
			return nil, err
		}
		maxBusy := int64(0)
		for node, b := range after {
			if delta := b - before[node]; delta > maxBusy {
				maxBusy = delta
			}
		}
		point.WallMS = float64((total / time.Duration(len(queries))).Microseconds()) / 1000
		point.CriticalMS = float64(maxBusy) / float64(len(queries)) / 1e6
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// busyByNode snapshots each node's cumulative LocalSearch busy time.
func busyByNode(ctx context.Context, ip *core.InProcess) (map[string]int64, error) {
	stats, err := ip.Stats(ctx)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(stats))
	for _, s := range stats {
		out[s.Node] = s.BusyNS
	}
	return out, nil
}
