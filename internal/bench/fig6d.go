package bench

import (
	"context"
	"fmt"

	"mendel/internal/blast"
	"mendel/internal/datagen"
	"mendel/internal/matrix"
	"mendel/internal/seq"
)

// SensitivityPoint is one similarity level of the Fig. 6d sweep.
type SensitivityPoint struct {
	Similarity   float64
	MendelRecall float64
	BlastRecall  float64
}

// Fig6dResult reproduces the sensitivity experiment: a 1000-residue target
// spawns families of mutants at decreasing similarity; recall is the
// fraction of planted family members each system recovers when queried with
// the original target.
type Fig6dResult struct {
	FamilySize int
	TargetLen  int
	Points     []SensitivityPoint
}

// Render prints the series.
func (r *Fig6dResult) Render() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%.0f%%", p.Similarity*100),
			fmt.Sprintf("%.2f", p.MendelRecall),
			fmt.Sprintf("%.2f", p.BlastRecall),
		}
	}
	return fmt.Sprintf("Fig 6d — sensitivity vs similarity level (family %d, target %d aa)\n",
		r.FamilySize, r.TargetLen) +
		table([]string{"similarity", "mendel recall", "blast recall"}, rows)
}

// RunFig6d generates, for each similarity level, a family of mutants of a
// single target sequence, indexes the family alongside background noise,
// queries with the original target, and reports the fraction of family
// members recovered by Mendel and by the BLAST baseline.
func RunFig6d(s Scale, levels []float64, familySize, targetLen int) (*Fig6dResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(levels) == 0 {
		levels = []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3}
	}
	if familySize <= 0 {
		familySize = 10
	}
	if targetLen <= 0 {
		targetLen = 1000
	}
	gen := datagen.New(seq.Protein, s.Seed)
	target := gen.Sequence(targetLen)
	res := &Fig6dResult{FamilySize: familySize, TargetLen: targetLen}
	ctx := context.Background()

	for _, level := range levels {
		// Fresh database per level: the planted family plus background
		// noise so the E-value search space is not trivially small.
		db := seq.NewSet(seq.Protein)
		family, err := gen.Family(target, familySize, level, "fam")
		if err != nil {
			return nil, err
		}
		familyIDs := make(map[seq.ID]bool, familySize)
		for _, member := range family.Seqs {
			added, err := db.Add(member.Name, append([]byte(nil), member.Data...))
			if err != nil {
				return nil, err
			}
			familyIDs[added.ID] = true
		}
		for i := 0; i < s.DBSequences; i++ {
			if _, err := db.Add(fmt.Sprintf("noise%04d", i), gen.Sequence(s.SeqLen)); err != nil {
				return nil, err
			}
		}

		ip, err := newCluster(s, db)
		if err != nil {
			return nil, err
		}
		params := proteinParams()
		// Low-similarity search relaxes the candidate filters and tightens
		// the subquery stride, as a user hunting remote homologs would
		// (Table I exposes exactly these knobs).
		if level < 0.6 {
			params.Identity = 0.15
			params.CScore = 0.2
			params.Neighbors = 16
		}
		if level < 0.35 {
			params.Identity = 0.05
			params.CScore = 0
			params.Neighbors = 24
			params.Step = 8
		}
		mHits, err := ip.Search(ctx, target, params)
		if err != nil {
			return nil, err
		}
		mendelFound := map[seq.ID]bool{}
		for _, h := range mHits {
			if familyIDs[h.Seq] {
				mendelFound[h.Seq] = true
			}
		}

		bdb, err := blast.NewDB(db, blast.DefaultProteinConfig(), matrix.BLOSUM62)
		if err != nil {
			return nil, err
		}
		bHits, err := bdb.Search(target, params.MaxE)
		if err != nil {
			return nil, err
		}
		blastFound := map[seq.ID]bool{}
		for _, h := range bHits {
			if familyIDs[h.Seq] {
				blastFound[h.Seq] = true
			}
		}

		res.Points = append(res.Points, SensitivityPoint{
			Similarity:   level,
			MendelRecall: float64(len(mendelFound)) / float64(familySize),
			BlastRecall:  float64(len(blastFound)) / float64(familySize),
		})
	}
	return res, nil
}
