package bench

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mendel/internal/dht"
	"mendel/internal/invindex"
)

// Fig5Result reproduces Fig. 5: the percentage of total system data stored
// at each node under (a) a standard flat SHA-1 hash over all nodes and
// (b) Mendel's two-tiered vantage point LSH scheme.
type Fig5Result struct {
	Nodes      []string
	FlatPct    []float64
	TwoTierPct []float64
	TotalBlock int
}

// RunFig5 indexes the workload into a real in-process cluster (two-tier
// placement read back from node Stats) and computes the flat-hash placement
// of the identical block stream analytically over one ring spanning every
// node.
func RunFig5(s Scale) (*Fig5Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	db, _, err := makeDB(s)
	if err != nil {
		return nil, err
	}
	ip, err := newCluster(s, db)
	if err != nil {
		return nil, err
	}
	stats, err := ip.Stats(context.Background())
	if err != nil {
		return nil, err
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Node < stats[j].Node })

	// Flat single-tier baseline: same blocks, one SHA-1 ring, no groups.
	flatRing := dht.NewRing(0)
	for _, st := range stats {
		flatRing.Add(st.Node)
	}
	flatCounts := make(map[string]int)
	blockCfg := invindex.Config{BlockLen: ip.Config().BlockLen, Margin: 0}
	total := 0
	for _, sq := range db.Seqs {
		for _, b := range invindex.Blocks(sq, blockCfg) {
			flatCounts[flatRing.Lookup(b.Content)]++
			total++
		}
	}

	res := &Fig5Result{TotalBlock: total}
	for _, st := range stats {
		res.Nodes = append(res.Nodes, st.Node)
		res.FlatPct = append(res.FlatPct, 100*float64(flatCounts[st.Node])/float64(total))
		res.TwoTierPct = append(res.TwoTierPct, 100*float64(st.Blocks)/float64(total))
	}
	return res, nil
}

// Spread returns the max-min percentage gap of a share series, the paper's
// headline balance number ("the difference between single nodes never
// exceeds 1% of the total data volume stored").
func Spread(shares []float64) float64 {
	if len(shares) == 0 {
		return 0
	}
	lo, hi := shares[0], shares[0]
	for _, v := range shares {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// Stdev returns the standard deviation of a share series.
func Stdev(shares []float64) float64 {
	if len(shares) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range shares {
		mean += v
	}
	mean /= float64(len(shares))
	ss := 0.0
	for _, v := range shares {
		ss += (v - mean) * (v - mean)
	}
	return math.Sqrt(ss / float64(len(shares)))
}

// Render prints the per-node table plus the summary statistics.
func (r *Fig5Result) Render() string {
	rows := make([][]string, len(r.Nodes))
	for i, n := range r.Nodes {
		rows[i] = []string{
			n,
			fmt.Sprintf("%.3f", r.FlatPct[i]),
			fmt.Sprintf("%.3f", r.TwoTierPct[i]),
		}
	}
	out := "Fig 5 — data distribution, % of total blocks per node\n"
	out += table([]string{"node", "flat SHA-1 %", "two-tier vp-LSH %"}, rows)
	out += fmt.Sprintf("\ntotal blocks: %d\n", r.TotalBlock)
	out += fmt.Sprintf("flat:     spread %.3f%%  stdev %.3f%%\n", Spread(r.FlatPct), Stdev(r.FlatPct))
	out += fmt.Sprintf("two-tier: spread %.3f%%  stdev %.3f%%\n", Spread(r.TwoTierPct), Stdev(r.TwoTierPct))
	return out
}
