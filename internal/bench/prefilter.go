package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mendel/internal/core"
	"mendel/internal/datagen"
	"mendel/internal/seq"
)

// PrefilterResult is the machine-readable sketch-prefilter snapshot behind
// `mendel-bench prefilter -json` and the BENCH_7.json artifact: how many
// fan-out groups each query mode contacts and what that does to query
// latency, with the bloom mode's exact-recall contract checked on the side.
type PrefilterResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`

	// Workload dimensions.
	Nodes       int `json:"nodes"`
	Groups      int `json:"groups"`
	DBSequences int `json:"db_sequences"`
	SeqLen      int `json:"seq_len"`
	Queries     int `json:"queries"`

	// Fan-out accounting over one pass of the query set: group requests are
	// the groups contacted per decomposed strand, summed over all queries.
	GroupRequestsOff   int  `json:"group_requests_off"`
	GroupRequestsBloom int  `json:"group_requests_bloom"`
	GroupsSkipped      int  `json:"groups_skipped"`
	GuardActivations   int  `json:"guard_activations"`
	HitsIdentical      bool `json:"hits_identical"`

	// Query latency, same query set, prefilter off vs bloom.
	QueryNsPerOpOff   int64   `json:"query_ns_per_op_off"`
	QueryNsPerOpBloom int64   `json:"query_ns_per_op_bloom"`
	SpeedupX          float64 `json:"speedup_x"`
}

// RunPrefilter measures the sketch prefilter's fan-out reduction at the
// given scale. The query set mixes indexed excerpts (never skippable — every
// k-mer is in the holding groups' Blooms), mutated homologs, and foreign
// sequences sharing no k-mer with the database (the skip source: their
// windows are provably absent everywhere).
func RunPrefilter(s Scale) (*PrefilterResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	db, gen, err := makeDB(s)
	if err != nil {
		return nil, err
	}
	ip, err := newCluster(s, db)
	if err != nil {
		return nil, err
	}
	queries, err := prefilterQueries(gen, db)
	if err != nil {
		return nil, err
	}
	res := &PrefilterResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Nodes:       s.Nodes,
		Groups:      s.Groups,
		DBSequences: s.DBSequences,
		SeqLen:      s.SeqLen,
		Queries:     len(queries),
	}
	params := proteinParams()
	ctx := context.Background()

	// One traced pass per mode for the fan-out accounting and the recall
	// check, then an untraced timing loop per mode.
	pass := func(mode core.PrefilterMode) (hits [][]core.Hit, groups, skipped, guarded int, err error) {
		ip.SetPrefilterMode(mode)
		for _, q := range queries {
			h, tr, err := ip.SearchTrace(ctx, q, params)
			if err != nil {
				return nil, 0, 0, 0, err
			}
			hits = append(hits, h)
			groups += tr.GroupRequests
			skipped += tr.GroupsSkipped
			guarded += tr.PrefilterGuard
		}
		return hits, groups, skipped, guarded, nil
	}
	baseline, groupsOff, _, _, err := pass(core.PrefilterOff)
	if err != nil {
		return nil, fmt.Errorf("bench: prefilter off: %w", err)
	}
	filtered, groupsBloom, skipped, guarded, err := pass(core.PrefilterBloom)
	if err != nil {
		return nil, fmt.Errorf("bench: prefilter bloom: %w", err)
	}
	res.GroupRequestsOff = groupsOff
	res.GroupRequestsBloom = groupsBloom
	res.GroupsSkipped = skipped
	res.GuardActivations = guarded
	res.HitsIdentical = reflect.DeepEqual(baseline, filtered)

	timed := func(mode core.PrefilterMode) (int64, error) {
		ip.SetPrefilterMode(mode)
		var searchErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ip.Search(ctx, queries[i%len(queries)], params); err != nil {
					searchErr = err
					return
				}
			}
		})
		return r.NsPerOp(), searchErr
	}
	if res.QueryNsPerOpOff, err = timed(core.PrefilterOff); err != nil {
		return nil, fmt.Errorf("bench: timing prefilter off: %w", err)
	}
	if res.QueryNsPerOpBloom, err = timed(core.PrefilterBloom); err != nil {
		return nil, fmt.Errorf("bench: timing prefilter bloom: %w", err)
	}
	if res.QueryNsPerOpBloom > 0 {
		res.SpeedupX = float64(res.QueryNsPerOpOff) / float64(res.QueryNsPerOpBloom)
	}
	return res, nil
}

// prefilterQueries builds the mixed workload: indexed excerpts, ~90%
// identity homologs, and foreign sequences matching nothing.
func prefilterQueries(gen *datagen.Generator, db *seq.Set) ([][]byte, error) {
	var queries [][]byte
	for i, ln := range []int{16, 24, 40, 120} {
		s := db.Seqs[(i*7)%len(db.Seqs)]
		if len(s.Data) <= ln {
			continue
		}
		start := (i * 31) % (len(s.Data) - ln)
		queries = append(queries, s.Data[start:start+ln])
	}
	homologs, err := gen.QuerySet(db, 4, 120, 0.1, 0.01)
	if err != nil {
		return nil, err
	}
	queries = append(queries, homologs...)
	for _, ln := range []int{16, 24, 48, 96} {
		queries = append(queries, gen.Sequence(ln))
	}
	return queries, nil
}

// JSON renders the result for the BENCH_7.json artifact.
func (r *PrefilterResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render prints the human-readable table.
func (r *PrefilterResult) Render() string {
	rows := [][]string{
		{"groups contacted", fmt.Sprintf("%d", r.GroupRequestsOff), fmt.Sprintf("%d (skipped %d, guard %d)", r.GroupRequestsBloom, r.GroupsSkipped, r.GuardActivations)},
		{"query latency", time.Duration(r.QueryNsPerOpOff).Round(time.Microsecond).String(), time.Duration(r.QueryNsPerOpBloom).Round(time.Microsecond).String()},
		{"speedup", "1.00x", fmt.Sprintf("%.2fx", r.SpeedupX)},
		{"hits identical", "-", fmt.Sprintf("%v", r.HitsIdentical)},
	}
	return fmt.Sprintf("Sketch prefilter (%d nodes, %d groups, %d queries)\n%s",
		r.Nodes, r.Groups, r.Queries, table([]string{"metric", "prefilter=off", "prefilter=bloom"}, rows))
}
