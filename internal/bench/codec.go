package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"mendel/internal/seq"
	"mendel/internal/wire"
)

// CodecABRow is one message type's gob-vs-binary comparison: encoded sizes
// and Marshal/Unmarshal latencies under both codecs.
type CodecABRow struct {
	Message        string  `json:"message"`
	GobBytes       int     `json:"gob_bytes"`
	BinaryBytes    int     `json:"binary_bytes"`
	SizeRatio      float64 `json:"size_ratio"` // gob/binary; >= 2 is the PR's acceptance bar
	GobMarshalNs   int64   `json:"gob_marshal_ns_per_op"`
	BinMarshalNs   int64   `json:"binary_marshal_ns_per_op"`
	GobUnmarshalNs int64   `json:"gob_unmarshal_ns_per_op"`
	BinUnmarshalNs int64   `json:"binary_unmarshal_ns_per_op"`
}

// CodecABResult is the machine-readable codec A/B behind
// `mendel-bench codec -json` and the BENCH_6.json artifact.
type CodecABResult struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Rows       []CodecABRow `json:"rows"`
}

// codecABMessages builds realistic hot-path payloads: a multi-window
// subquery, results with a few dozen anchors, a 32-block transfer batch,
// and a coalesced 8-item search batch — the shapes the query and ingest
// fan-outs actually put on the wire.
func codecABMessages() []struct {
	name string
	msg  any
} {
	gs := wire.GroupSearch{
		Group:     3,
		Query:     bytes.Repeat([]byte("MKVLATGQW"), 14),
		Offsets:   []int{0, 16, 32, 48, 64, 80, 96, 112},
		WindowLen: 16,
		Params:    wire.DefaultParams(),
	}
	anchors := make([]wire.Anchor, 24)
	for i := range anchors {
		anchors[i] = wire.Anchor{Seq: seq.ID(i), QStart: i * 16, QEnd: i*16 + 16,
			SStart: i * 100, SEnd: i*100 + 16, Score: 40 + i}
	}
	blocks := make([]wire.Block, 32)
	for i := range blocks {
		blocks[i] = wire.Block{Seq: seq.ID(i % 4), Start: i * 16,
			Content: bytes.Repeat([]byte("ACGT"), 4),
			Context: bytes.Repeat([]byte("ACGT"), 8), CtxOff: 8}
	}
	items := make([]wire.GroupSearch, 8)
	for i := range items {
		items[i] = gs
	}
	return []struct {
		name string
		msg  any
	}{
		{"GroupSearch", gs},
		{"GroupSearchResult", wire.GroupSearchResult{Anchors: anchors, KNNNs: 123456, ExtendNs: 7890, Visits: 321}},
		{"LocalSearch", wire.LocalSearch{Query: gs.Query, Offsets: gs.Offsets, WindowLen: 16, Params: gs.Params}},
		{"LocalSearchResult", wire.LocalSearchResult{Anchors: anchors, KNNNs: 123456, ExtendNs: 7890, Visits: 321}},
		{"IndexBlocks", wire.IndexBlocks{Blocks: blocks}},
		{"GroupSearchBatch", wire.GroupSearchBatch{Group: 3, Items: items}},
		{"FetchRegion", wire.FetchRegion{Seq: 7, Start: 1000, End: 1400}},
		{"Region", wire.Region{Seq: 7, Start: 1000, Data: bytes.Repeat([]byte("ACGT"), 100), Len: 5000}},
	}
}

// RunCodecAB measures every hot message type under both codecs: the
// self-contained gob envelope the transport used before (and still uses as
// its compatibility fallback) against the hand-rolled binary codec on the
// negotiated fast path.
func RunCodecAB() (*CodecABResult, error) {
	res := &CodecABResult{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, m := range codecABMessages() {
		gobData, err := wire.Marshal(m.msg)
		if err != nil {
			return nil, fmt.Errorf("bench: gob marshal %s: %w", m.name, err)
		}
		binData, ok := wire.AppendHot(nil, m.msg)
		if !ok {
			return nil, fmt.Errorf("bench: %s is not covered by the binary codec", m.name)
		}
		row := CodecABRow{
			Message:     m.name,
			GobBytes:    len(gobData),
			BinaryBytes: len(binData),
			SizeRatio:   float64(len(gobData)) / float64(len(binData)),
		}
		msg := m.msg
		row.GobMarshalNs = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wire.Marshal(msg); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp()
		row.BinMarshalNs = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fp := wire.GetFrame()
				out, _ := wire.AppendHot(*fp, msg)
				*fp = out
				wire.PutFrame(fp)
			}
		}).NsPerOp()
		row.GobUnmarshalNs = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wire.Unmarshal(gobData); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp()
		row.BinUnmarshalNs = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wire.DecodeHot(binData); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// JSON renders the result for the BENCH_6.json artifact.
func (r *CodecABResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render prints the human-readable table.
func (r *CodecABResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Message,
			fmt.Sprintf("%d B", row.GobBytes),
			fmt.Sprintf("%d B", row.BinaryBytes),
			fmt.Sprintf("%.1fx", row.SizeRatio),
			fmt.Sprintf("%d / %d ns", row.GobMarshalNs, row.BinMarshalNs),
			fmt.Sprintf("%d / %d ns", row.GobUnmarshalNs, row.BinUnmarshalNs),
		})
	}
	return "Wire codec A/B (gob vs binary, per message)\n" +
		table([]string{"message", "gob", "binary", "size", "marshal g/b", "unmarshal g/b"}, rows)
}
