package bench

import (
	"fmt"
	"time"

	"mendel/internal/datagen"
	"mendel/internal/dht"
	"mendel/internal/invindex"
	"mendel/internal/metric"
	"mendel/internal/seq"
	"mendel/internal/vphash"
	"mendel/internal/vptree"
	"mendel/internal/wire"
)

// TableI renders the paper's Table I — the query parameters with their
// types, ranges and this implementation's defaults.
func TableI() string {
	d := wire.DefaultParams()
	rows := [][]string{
		{"k", "Sliding window step", "int(1..inf)", fmt.Sprint(d.Step)},
		{"n", "No. of nearest neighbors to find", "int(1..inf)", fmt.Sprint(d.Neighbors)},
		{"i", "Identity threshold", "float(0..1)", fmt.Sprint(d.Identity)},
		{"c", "Consecutivity score threshold", "float(0..1)", fmt.Sprint(d.CScore)},
		{"M", "Scoring Matrix", "string", d.Matrix},
		{"S", "Score threshold for gapped extension", "float(0..inf)", fmt.Sprint(d.GappedS)},
		{"l", "Gapped alignment band width", "int(0..inf)", fmt.Sprint(d.Band)},
		{"E", "Expectation value threshold", "float(0..inf)", fmt.Sprint(d.MaxE)},
	}
	return "Table I — query parameters\n" + table([]string{"param", "description", "type", "default"}, rows)
}

// DepthPoint is one threshold depth of the depth ablation.
type DepthPoint struct {
	Depth     int
	SpreadPct float64
	HashNS    float64 // mean per-block hash cost
}

// DepthAblation studies the vp-prefix tree cutoff depth (§III-F): deeper
// trees cost more per hash and fragment the space into more leaves; the
// paper picks half the tree depth as the balance.
type DepthAblation struct {
	Points []DepthPoint
}

// Render prints the table.
func (r *DepthAblation) Render() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%d", p.Depth),
			fmt.Sprintf("%.3f", p.SpreadPct),
			fmt.Sprintf("%.0f", p.HashNS),
		}
	}
	return "Ablation — vp-prefix tree depth threshold\n" +
		table([]string{"depth", "group spread %", "hash ns/block"}, rows)
}

// RunAblateDepth measures, for each threshold depth, the per-block hash
// cost and the balance of the group assignment over the workload.
func RunAblateDepth(s Scale, depths []int) (*DepthAblation, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(depths) == 0 {
		depths = []int{1, 2, 3, 4, 6, 8}
	}
	db, _, err := makeDB(s)
	if err != nil {
		return nil, err
	}
	met := metric.ForKind(seq.Protein)
	blockCfg := invindex.Config{BlockLen: 16, Margin: 0}
	var blocks [][]byte
	var sample [][]byte
	for _, sq := range db.Seqs {
		for _, b := range invindex.Blocks(sq, blockCfg) {
			blocks = append(blocks, b.Content)
			if len(sample) < 2000 && len(blocks)%7 == 0 {
				sample = append(sample, b.Content)
			}
		}
	}
	res := &DepthAblation{}
	for _, depth := range depths {
		tree, err := vphash.Build(met, sample, depth, s.Groups, s.Seed)
		if err != nil {
			return nil, err
		}
		counts := make([]float64, s.Groups)
		start := time.Now()
		for _, b := range blocks {
			counts[tree.Group(b)]++
		}
		elapsed := time.Since(start)
		for g := range counts {
			counts[g] = 100 * counts[g] / float64(len(blocks))
		}
		res.Points = append(res.Points, DepthPoint{
			Depth:     depth,
			SpreadPct: Spread(counts),
			HashNS:    float64(elapsed.Nanoseconds()) / float64(len(blocks)),
		})
	}
	return res, nil
}

// Tier2Ablation compares intra-group placement policies (§V-A2): the flat
// SHA-1 hash Mendel ships versus the rejected second-tier vp-prefix hash,
// which groups similar blocks onto the same node, skewing load and
// collapsing intra-group query parallelism.
type Tier2Ablation struct {
	NodesPerGroup   int
	FlatSpreadPct   float64
	VPSpreadPct     float64
	FlatTouchedAvg  float64 // avg nodes holding relevant blocks per probe
	VPTouchedAvg    float64
	ProbesEvaluated int
}

// Render prints the comparison.
func (r *Tier2Ablation) Render() string {
	rows := [][]string{
		{"flat SHA-1", fmt.Sprintf("%.3f", r.FlatSpreadPct), fmt.Sprintf("%.2f", r.FlatTouchedAvg)},
		{"second-tier vp-hash", fmt.Sprintf("%.3f", r.VPSpreadPct), fmt.Sprintf("%.2f", r.VPTouchedAvg)},
	}
	return fmt.Sprintf("Ablation — intra-group placement (%d nodes/group, %d probes)\n",
		r.NodesPerGroup, r.ProbesEvaluated) +
		table([]string{"policy", "intra-group spread %", "avg nodes sharing a neighborhood"}, rows)
}

// RunAblateTier2 places one group's blocks under both policies and measures
// load spread and how many distinct nodes hold each probe block's 8-NN
// neighbourhood (a proxy for intra-group parallelism: more nodes sharing a
// neighbourhood means more of the group works on a query in parallel —
// exactly why the paper kept the flat hash).
func RunAblateTier2(s Scale) (*Tier2Ablation, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	db, _, err := makeDB(s)
	if err != nil {
		return nil, err
	}
	met := metric.ForKind(seq.Protein)
	blockCfg := invindex.Config{BlockLen: 16, Margin: 0}
	var blocks [][]byte
	for _, sq := range db.Seqs {
		for _, b := range invindex.Blocks(sq, blockCfg) {
			blocks = append(blocks, b.Content)
		}
	}
	perGroup := s.Nodes / s.Groups
	if perGroup < 2 {
		perGroup = 2
	}
	nodes := make([]string, perGroup)
	ring := dht.NewRing(0)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("gnode-%02d", i)
		ring.Add(nodes[i])
	}
	var sample [][]byte
	for i := 0; i < len(blocks); i += 7 {
		if len(sample) >= 1000 {
			break
		}
		sample = append(sample, blocks[i])
	}
	// Second-tier vp tree with enough leaves to cover the group.
	depth := 1
	for 1<<depth < perGroup {
		depth++
	}
	vpTree, err := vphash.Build(met, sample, depth, perGroup, s.Seed)
	if err != nil {
		return nil, err
	}

	flatCounts := make(map[string]float64)
	vpCounts := make(map[string]float64)
	flatOwner := make([]int, len(blocks))
	vpOwner := make([]int, len(blocks))
	nodeIdx := make(map[string]int, len(nodes))
	for i, n := range nodes {
		nodeIdx[n] = i
	}
	for i, b := range blocks {
		fo := ring.Lookup(b)
		flatCounts[fo]++
		flatOwner[i] = nodeIdx[fo]
		vo := nodes[vpTree.Group(b)%perGroup]
		vpCounts[vo]++
		vpOwner[i] = nodeIdx[vo]
	}
	toPct := func(counts map[string]float64) []float64 {
		out := make([]float64, len(nodes))
		for i, n := range nodes {
			out[i] = 100 * counts[n] / float64(len(blocks))
		}
		return out
	}

	// Parallelism proxy: brute-force 8-NN of probe blocks, count distinct
	// owner nodes under each policy.
	tree := vptree.Build(met, 0, s.Seed, itemsOf(blocks))
	const probes = 50
	flatTouched, vpTouched := 0.0, 0.0
	step := len(blocks) / probes
	if step < 1 {
		step = 1
	}
	evaluated := 0
	for i := 0; i < len(blocks) && evaluated < probes; i += step {
		neighbors := tree.Nearest(blocks[i], 8)
		fset, vset := map[int]bool{}, map[int]bool{}
		for _, nb := range neighbors {
			fset[flatOwner[nb.Ref]] = true
			vset[vpOwner[nb.Ref]] = true
		}
		flatTouched += float64(len(fset))
		vpTouched += float64(len(vset))
		evaluated++
	}
	return &Tier2Ablation{
		NodesPerGroup:   perGroup,
		FlatSpreadPct:   Spread(toPct(flatCounts)),
		VPSpreadPct:     Spread(toPct(vpCounts)),
		FlatTouchedAvg:  flatTouched / float64(evaluated),
		VPTouchedAvg:    vpTouched / float64(evaluated),
		ProbesEvaluated: evaluated,
	}, nil
}

func itemsOf(blocks [][]byte) []vptree.Item {
	items := make([]vptree.Item, len(blocks))
	for i, b := range blocks {
		items[i] = vptree.Item{Key: b, Ref: uint64(i)}
	}
	return items
}

// InsertAblation compares vp-tree population strategies (§III-D): naive
// one-at-a-time insertion, Mendel's batched insertion, and a one-shot
// balanced build.
type InsertAblation struct {
	Items    int
	OneByOne time.Duration
	Batched  time.Duration
	Build    time.Duration
	Heights  [3]int
}

// Render prints the comparison.
func (r *InsertAblation) Render() string {
	rows := [][]string{
		{"one-by-one", r.OneByOne.String(), fmt.Sprint(r.Heights[0])},
		{"batched (4k)", r.Batched.String(), fmt.Sprint(r.Heights[1])},
		{"bulk build", r.Build.String(), fmt.Sprint(r.Heights[2])},
	}
	return fmt.Sprintf("Ablation — vp-tree population strategy (%d items)\n", r.Items) +
		table([]string{"strategy", "time", "height"}, rows)
}

// RunAblateInsert times the three population strategies over the same items.
func RunAblateInsert(s Scale) (*InsertAblation, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	gen := datagen.New(seq.Protein, s.Seed)
	met := metric.ForKind(seq.Protein)
	n := s.DBSequences * 100
	items := make([]vptree.Item, n)
	for i := range items {
		items[i] = vptree.Item{Key: gen.Sequence(16), Ref: uint64(i)}
	}
	res := &InsertAblation{Items: n}

	start := time.Now()
	t1 := vptree.New(met, 0, s.Seed)
	for _, it := range items {
		t1.Insert(it)
	}
	res.OneByOne = time.Since(start)
	res.Heights[0] = t1.Height()

	start = time.Now()
	t2 := vptree.New(met, 0, s.Seed)
	for lo := 0; lo < n; lo += 4096 {
		hi := lo + 4096
		if hi > n {
			hi = n
		}
		t2.InsertBatch(items[lo:hi])
	}
	res.Batched = time.Since(start)
	res.Heights[1] = t2.Height()

	start = time.Now()
	t3 := vptree.Build(met, 0, s.Seed, items)
	res.Build = time.Since(start)
	res.Heights[2] = t3.Height()
	return res, nil
}

// BucketPoint is one leaf capacity of the bucket ablation.
type BucketPoint struct {
	BucketCap int
	Height    int
	QueryUS   float64
}

// BucketAblation studies leaf bucket capacity (§III-D optimization 1).
type BucketAblation struct {
	Items  int
	Points []BucketPoint
}

// Render prints the table.
func (r *BucketAblation) Render() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%d", p.BucketCap),
			fmt.Sprintf("%d", p.Height),
			fmt.Sprintf("%.1f", p.QueryUS),
		}
	}
	return fmt.Sprintf("Ablation — vp-tree bucket capacity (%d items)\n", r.Items) +
		table([]string{"bucket", "height", "8-NN us/query"}, rows)
}

// RunAblateBucket measures tree height and query latency across bucket
// capacities.
func RunAblateBucket(s Scale, buckets []int) (*BucketAblation, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(buckets) == 0 {
		buckets = []int{1, 4, 16, 32, 64, 128}
	}
	gen := datagen.New(seq.Protein, s.Seed)
	met := metric.ForKind(seq.Protein)
	n := s.DBSequences * 100
	items := make([]vptree.Item, n)
	for i := range items {
		items[i] = vptree.Item{Key: gen.Sequence(16), Ref: uint64(i)}
	}
	queries := make([][]byte, 200)
	for i := range queries {
		queries[i] = gen.Sequence(16)
	}
	res := &BucketAblation{Items: n}
	for _, cap := range buckets {
		tree := vptree.Build(met, cap, s.Seed, items)
		start := time.Now()
		for _, q := range queries {
			tree.Nearest(q, 8)
		}
		perQuery := time.Since(start) / time.Duration(len(queries))
		res.Points = append(res.Points, BucketPoint{
			BucketCap: cap,
			Height:    tree.Height(),
			QueryUS:   float64(perQuery.Nanoseconds()) / 1000,
		})
	}
	return res, nil
}
