// Package bench regenerates every figure of the paper's evaluation section
// (§VI) against the synthetic workloads of internal/datagen: Fig. 5 (load
// balance of flat vs two-tier hashing), Fig. 6a (turnaround vs query
// length), Fig. 6b (turnaround vs database size), Fig. 6c (turnaround vs
// cluster size) and Fig. 6d (sensitivity vs similarity level), plus the
// ablations DESIGN.md calls out. Each experiment returns a typed result
// with a Render method that prints the same rows/series the paper reports.
//
// Absolute numbers differ from the paper's 50-node testbed — the substrate
// here is an in-process cluster — but the shapes (who wins, how curves
// trend) are the reproduction target; see EXPERIMENTS.md.
package bench

import (
	"context"
	"fmt"
	"strings"

	"mendel/internal/core"
	"mendel/internal/datagen"
	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// Scale fixes the workload dimensions of an experiment so the same harness
// runs at unit-test size and at full benchmark size.
type Scale struct {
	Nodes           int
	Groups          int
	DBSequences     int
	SeqLen          int
	QueriesPerPoint int
	Seed            int64
	// Latency optionally simulates LAN delay per message.
	Latency transport.LatencyModel
	// SearchBudget overrides the per-lookup distance budget (0 = framework
	// default, -1 = exact search).
	SearchBudget int
	// QueryEps overrides the vp-prefix branching radius used at query
	// time (0 = framework default). Large values trade the LSH's
	// search-space reduction for sensitivity to remote homologs.
	QueryEps int
}

// DefaultScale is the size used by cmd/mendel-bench.
func DefaultScale() Scale {
	return Scale{
		Nodes:           20,
		Groups:          4,
		DBSequences:     400,
		SeqLen:          500,
		QueriesPerPoint: 5,
		Seed:            1,
	}
}

// TestScale is a miniature used by unit tests.
func TestScale() Scale {
	return Scale{
		Nodes:           4,
		Groups:          2,
		DBSequences:     30,
		SeqLen:          300,
		QueriesPerPoint: 2,
		Seed:            1,
	}
}

// Validate reports scale errors.
func (s Scale) Validate() error {
	switch {
	case s.Nodes <= 0 || s.Groups <= 0 || s.Nodes < s.Groups:
		return fmt.Errorf("bench: nodes=%d groups=%d", s.Nodes, s.Groups)
	case s.DBSequences <= 0 || s.SeqLen <= 0:
		return fmt.Errorf("bench: db %dx%d", s.DBSequences, s.SeqLen)
	case s.QueriesPerPoint <= 0:
		return fmt.Errorf("bench: queries per point = %d", s.QueriesPerPoint)
	}
	return nil
}

// newCluster builds and indexes an in-process Mendel cluster over db.
func newCluster(s Scale, db *seq.Set) (*core.InProcess, error) {
	cfg := core.DefaultConfig(db.Kind)
	cfg.Groups = s.Groups
	cfg.Seed = s.Seed
	cfg.SearchBudget = s.SearchBudget
	cfg.QueryEps = s.QueryEps
	var opts []transport.MemOption
	if s.Latency.Base > 0 || s.Latency.Jitter > 0 {
		opts = append(opts, transport.WithLatency(s.Latency))
	}
	ip, err := core.NewInProcess(cfg, s.Nodes, opts...)
	if err != nil {
		return nil, err
	}
	if err := ip.Index(context.Background(), db); err != nil {
		return nil, err
	}
	return ip, nil
}

// proteinParams are the Mendel query parameters used by the experiments.
func proteinParams() wire.Params {
	p := wire.DefaultParams()
	p.Neighbors = 8
	return p
}

// makeDB builds the nr-like database for a scale.
func makeDB(s Scale) (*seq.Set, *datagen.Generator, error) {
	gen := datagen.New(seq.Protein, s.Seed)
	jitter := s.SeqLen / 5
	db, err := gen.Database(s.DBSequences, s.SeqLen, jitter, "nr")
	if err != nil {
		return nil, nil, err
	}
	return db, gen, nil
}

// table renders an aligned text table.
func table(headers []string, rows [][]string) string {
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
