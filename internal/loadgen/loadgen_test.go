package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mendel/internal/core"
	"mendel/internal/datagen"
	"mendel/internal/gateway"
	"mendel/internal/obs"
	"mendel/internal/seq"
)

// newGatewayServer stands up the full serving stack (cluster, gateway, obs
// mux) behind httptest for the load generator to drive.
func newGatewayServer(t *testing.T, gcfg gateway.Config) (*httptest.Server, *core.InProcess) {
	t.Helper()
	cfg := core.DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 500
	ip, err := core.NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	gen := datagen.New(seq.Protein, 5)
	db, err := gen.Database(12, 300, 50, "ref")
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.Index(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	gw := gateway.New(ip.Cluster, gcfg, reg)
	srv := httptest.NewServer(obs.HandlerWithRoutes(reg, nil, nil, nil, gw.Routes()...))
	t.Cleanup(srv.Close)
	return srv, ip
}

// TestLoadOpenLoopKeepsOfferingUnderSlowServer pins the open-loop property:
// arrivals follow the schedule even when the server is slow. A closed loop
// with these numbers could complete at most ~5 requests; the open loop must
// offer close to rate×duration regardless.
func TestLoadOpenLoopKeepsOfferingUnderSlowServer(t *testing.T) {
	var served atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		time.Sleep(200 * time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"hits":[],"elapsed_ms":200}`))
	}))
	defer slow.Close()

	res, err := Run(context.Background(), Config{
		URL:      slow.URL,
		Rate:     100,
		Duration: 500 * time.Millisecond,
		Kind:     seq.Protein,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The schedule calls for ~50 arrivals in 500ms; allow scheduling slack
	// but fail anything resembling closed-loop behaviour (~2-3 requests).
	if res.Sent < 30 {
		t.Fatalf("open loop sent only %d requests against a slow server (closed-loop symptom)", res.Sent)
	}
	if res.OK+res.Errors != res.Sent {
		t.Fatalf("accounting: ok=%d errors=%d sent=%d", res.OK, res.Errors, res.Sent)
	}
}

func TestLoadReadMixAgainstGateway(t *testing.T) {
	srv, _ := newGatewayServer(t, gateway.Config{MaxInFlight: 8, MaxQueue: 64})
	res, err := Run(context.Background(), Config{
		URL:      srv.URL,
		Rate:     100,
		Duration: time.Second,
		Mix:      MixRead,
		Kind:     seq.Protein,
		QueryLen: 48,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.OK == 0 {
		t.Fatalf("sent=%d ok=%d, want both > 0", res.Sent, res.OK)
	}
	if res.Errors != 0 {
		t.Fatalf("%d non-shed errors under read mix", res.Errors)
	}
	if res.GoodputQPS <= 0 || res.P50Ms <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// The JSON artifact round-trips.
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.OK != res.OK {
		t.Fatalf("JSON round trip lost ok count: %d != %d", back.OK, res.OK)
	}
}

func TestLoadWriteMixIngestsAndQueries(t *testing.T) {
	srv, ip := newGatewayServer(t, gateway.Config{MaxInFlight: 8, MaxQueue: 64})
	before := ip.NumSequences()
	res, err := Run(context.Background(), Config{
		URL:         srv.URL,
		Rate:        50,
		Duration:    time.Second,
		Mix:         MixWrite,
		Kind:        seq.Protein,
		QueryLen:    48,
		IngestEvery: 5,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingests == 0 || res.IngestOK == 0 {
		t.Fatalf("write mix performed no ingests: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors under write mix", res.Errors)
	}
	if got := ip.NumSequences(); got != before+res.IngestOK {
		t.Fatalf("cluster has %d sequences, want %d+%d", got, before, res.IngestOK)
	}
}

// TestLoadBurstMixShedsButStaysCorrect drives a burst mix into a tiny
// admission window: shed responses are expected and tolerated, anything
// else (5xx, transport errors) is not.
func TestLoadBurstMixShedsButStaysCorrect(t *testing.T) {
	srv, _ := newGatewayServer(t, gateway.Config{MaxInFlight: 1, MaxQueue: 1})
	res, err := Run(context.Background(), Config{
		URL:      srv.URL,
		Rate:     100,
		Duration: time.Second,
		Mix:      MixBurst,
		Kind:     seq.Protein,
		QueryLen: 48,
		Tenants:  3,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d non-shed errors under overload (shed=%d ok=%d)", res.Errors, res.Shed, res.OK)
	}
	if res.OK == 0 {
		t.Fatal("overload starved every request; admission should keep goodput > 0")
	}
	if res.OK+res.Shed+res.Deadline != res.Sent {
		t.Fatalf("accounting: ok=%d shed=%d deadline=%d sent=%d", res.OK, res.Shed, res.Deadline, res.Sent)
	}
}

func TestLoadConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Rate: 1, Duration: time.Second}); err == nil {
		t.Fatal("missing URL accepted")
	}
	if _, err := Run(context.Background(), Config{URL: "http://x", Duration: time.Second}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(context.Background(), Config{URL: "http://x", Rate: 1}); err == nil {
		t.Fatal("zero duration accepted")
	}
}
