// Package loadgen is an open-loop workload generator for the query gateway:
// requests are fired on a fixed arrival schedule derived from the target
// rate, independent of when earlier requests complete. Unlike a closed loop
// (fixed worker pool, next request after the previous reply), an open loop
// keeps offering load when the server slows down, which is what exposes
// queueing collapse and measures goodput under overload — the behaviour the
// gateway's admission control exists to bound.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"mendel/internal/datagen"
	"mendel/internal/seq"
)

// Mix names a workload shape.
type Mix string

// The three workload mixes of the load harness.
const (
	// MixRead is pure queries at a constant rate.
	MixRead Mix = "read"
	// MixWrite interleaves ingests with queries (one ingest per
	// IngestEvery arrivals), the concurrent read/write regime.
	MixWrite Mix = "write"
	// MixBurst alternates one second at the base rate with one second at
	// four times the base rate, probing shed behaviour and recovery.
	MixBurst Mix = "burst"
)

// Config shapes one load run.
type Config struct {
	// URL is the gateway base URL, e.g. "http://127.0.0.1:9090".
	URL string
	// Rate is the target arrival rate in requests per second.
	Rate float64
	// Duration is how long arrivals are generated (completions may land
	// slightly after).
	Duration time.Duration
	// Mix selects the workload shape (default MixRead).
	Mix Mix
	// Kind is the cluster's molecule kind, used to synthesize queries and
	// ingest payloads.
	Kind seq.Kind
	// Queries are the query bodies cycled through; empty synthesizes
	// QueryCount random queries of QueryLen residues from Seed.
	Queries [][]byte
	// QueryLen is the synthesized query length (default 64).
	QueryLen int
	// QueryCount is how many distinct synthetic queries to cycle
	// (default 32).
	QueryCount int
	// Tenants > 1 spreads requests round-robin over that many
	// X-Mendel-Tenant values, exercising per-tenant quotas.
	Tenants int
	// IngestEvery makes every Nth arrival an ingest in MixWrite
	// (default 10).
	IngestEvery int
	// IngestSeqLen is the length of each ingested sequence (default 256).
	IngestSeqLen int
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
	// Seed feeds the query/payload synthesizer.
	Seed int64
}

func (cfg Config) withDefaults() Config {
	if cfg.Mix == "" {
		cfg.Mix = MixRead
	}
	if cfg.QueryLen <= 0 {
		cfg.QueryLen = 64
	}
	if cfg.QueryCount <= 0 {
		cfg.QueryCount = 32
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.IngestEvery <= 0 {
		cfg.IngestEvery = 10
	}
	if cfg.IngestSeqLen <= 0 {
		cfg.IngestSeqLen = 256
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	return cfg
}

// Result is the machine-readable outcome of one load run — the BENCH_5.json
// artifact. Latency quantiles cover successful queries only; goodput is
// successful queries per second of wall-clock, the number that should stay
// flat when offered load exceeds capacity.
type Result struct {
	Mix       string  `json:"mix"`
	TargetQPS float64 `json:"target_qps"`
	DurationS float64 `json:"duration_s"`

	Sent      int `json:"sent"`
	OK        int `json:"ok"`
	Shed      int `json:"shed"`      // 429: queue full or tenant throttled
	Deadline  int `json:"deadline"`  // 504
	Errors    int `json:"errors"`    // transport failures and other non-2xx
	Ingests   int `json:"ingests"`   // write mix: ingest arrivals
	IngestOK  int `json:"ingest_ok"` // write mix: successful ingests
	HitsTotal int `json:"hits_total"`

	SustainedQPS float64 `json:"sustained_qps"` // OK / wall-clock
	GoodputQPS   float64 `json:"goodput_qps"`   // same, under overload the headline
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
}

// JSON renders the result for the BENCH_5.json artifact.
func (r *Result) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// String renders a human-readable summary table.
func (r *Result) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "load %s: target %.0f qps for %.1fs\n", r.Mix, r.TargetQPS, r.DurationS)
	fmt.Fprintf(&b, "  sent=%d ok=%d shed=%d deadline=%d errors=%d", r.Sent, r.OK, r.Shed, r.Deadline, r.Errors)
	if r.Ingests > 0 {
		fmt.Fprintf(&b, " ingests=%d/%d", r.IngestOK, r.Ingests)
	}
	fmt.Fprintf(&b, "\n  goodput=%.1f qps  p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms  hits=%d",
		r.GoodputQPS, r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs, r.HitsTotal)
	return b.String()
}

// searchReply is the slice of the gateway response the generator needs.
type searchReply struct {
	Hits []json.RawMessage `json:"hits"`
}

// Run drives one open-loop load run against a gateway and reports the
// outcome. ctx cancellation stops the arrival schedule early; in-flight
// requests are awaited either way.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: no gateway URL")
	}
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: rate and duration must be positive")
	}
	queries := cfg.Queries
	if len(queries) == 0 {
		gen := datagen.New(cfg.Kind, cfg.Seed)
		queries = make([][]byte, cfg.QueryCount)
		for i := range queries {
			queries[i] = gen.Sequence(cfg.QueryLen)
		}
	}
	// Ingest payloads are pre-generated so the arrival loop never blocks
	// on synthesis; the name carries the seed and index for uniqueness.
	ingestGen := datagen.New(cfg.Kind, cfg.Seed+1)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	client := &http.Client{Timeout: cfg.Timeout}
	res := &Result{Mix: string(cfg.Mix), TargetQPS: cfg.Rate}
	var (
		mu        sync.Mutex
		latencies []float64 // ms, successful queries
		wg        sync.WaitGroup
	)
	record := func(kind string, ms float64, hits int) {
		mu.Lock()
		defer mu.Unlock()
		switch kind {
		case "ok":
			res.OK++
			res.HitsTotal += hits
			latencies = append(latencies, ms)
		case "shed":
			res.Shed++
		case "deadline":
			res.Deadline++
		case "ingest_ok":
			res.IngestOK++
		default:
			res.Errors++
		}
	}

	fireQuery := func(q []byte, tenant string) {
		defer wg.Done()
		body, _ := json.Marshal(map[string]string{"query": string(q)})
		req, err := http.NewRequest(http.MethodPost, cfg.URL+"/v1/search", bytes.NewReader(body))
		if err != nil {
			record("error", 0, 0)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Mendel-Tenant", tenant)
		}
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			record("error", 0, 0)
			return
		}
		defer resp.Body.Close()
		ms := float64(time.Since(start).Microseconds()) / 1000
		switch resp.StatusCode {
		case http.StatusOK:
			var sr searchReply
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				record("error", 0, 0)
				return
			}
			record("ok", ms, len(sr.Hits))
		case http.StatusTooManyRequests:
			io.Copy(io.Discard, resp.Body)
			record("shed", 0, 0)
		case http.StatusGatewayTimeout:
			io.Copy(io.Discard, resp.Body)
			record("deadline", 0, 0)
		default:
			io.Copy(io.Discard, resp.Body)
			record("error", 0, 0)
		}
	}

	var ingestSeq int
	var ingestMu sync.Mutex
	fireIngest := func() {
		defer wg.Done()
		ingestMu.Lock()
		ingestSeq++
		n := ingestSeq
		data := ingestGen.Sequence(cfg.IngestSeqLen)
		ingestMu.Unlock()
		body, _ := json.Marshal(map[string]any{
			"sequences": []map[string]string{{
				"name": fmt.Sprintf("load-%d-%d", cfg.Seed, n),
				"data": string(data),
			}},
		})
		req, err := http.NewRequest(http.MethodPost, cfg.URL+"/v1/ingest", bytes.NewReader(body))
		if err != nil {
			record("error", 0, 0)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			record("error", 0, 0)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			record("ingest_ok", 0, 0)
		} else {
			record("error", 0, 0)
		}
	}

	// The open loop: arrival k fires at its scheduled instant whether or
	// not earlier requests have completed. Burst mixes alternate the
	// instantaneous rate second by second.
	rateAt := func(elapsed time.Duration) float64 {
		if cfg.Mix == MixBurst && int(elapsed.Seconds())%2 == 1 {
			return cfg.Rate * 4
		}
		return cfg.Rate
	}
	start := time.Now()
	next := start
	for k := 0; ; k++ {
		now := time.Now()
		if next.After(now) {
			select {
			case <-time.After(next.Sub(now)):
			case <-ctx.Done():
			}
		}
		elapsed := time.Since(start)
		if elapsed >= cfg.Duration || ctx.Err() != nil {
			break
		}
		res.Sent++
		wg.Add(1)
		if cfg.Mix == MixWrite && res.Sent%cfg.IngestEvery == 0 {
			res.Ingests++
			go fireIngest()
		} else {
			tenant := ""
			if cfg.Tenants > 1 {
				tenant = fmt.Sprintf("tenant-%d", rng.Intn(cfg.Tenants))
			}
			go fireQuery(queries[k%len(queries)], tenant)
		}
		next = next.Add(time.Duration(float64(time.Second) / rateAt(elapsed)))
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	res.DurationS = wall
	if wall > 0 {
		res.SustainedQPS = float64(res.OK) / wall
		res.GoodputQPS = res.SustainedQPS
	}
	sort.Float64s(latencies)
	res.P50Ms = quantile(latencies, 0.50)
	res.P95Ms = quantile(latencies, 0.95)
	res.P99Ms = quantile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		res.MaxMs = latencies[n-1]
	}
	return res, nil
}

// quantile reads the q-quantile from an ascending-sorted slice
// (nearest-rank; 0 for an empty slice).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
