package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"mendel/internal/obs"
)

// InstrumentedCaller decorates a Caller with per-call metrics: an overall
// RPC latency histogram, a per-message-type latency histogram, and call /
// error / unreachable counters. Layer it outside a ResilientCaller to
// measure what callers experience (retries included) or inside to measure
// raw attempts.
type InstrumentedCaller struct {
	inner Caller
	reg   *obs.Registry
}

// NewInstrumentedCaller wraps inner, recording into reg. A nil registry
// yields a pass-through wrapper with no recording cost beyond nil checks.
func NewInstrumentedCaller(inner Caller, reg *obs.Registry) *InstrumentedCaller {
	return &InstrumentedCaller{inner: inner, reg: reg}
}

// reqName returns the short metric label of a request type: "wire.Ping"
// becomes "Ping".
func reqName(req any) string {
	name := fmt.Sprintf("%T", req)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// Call implements Caller.
func (ic *InstrumentedCaller) Call(ctx context.Context, addr string, req any) (any, error) {
	start := time.Now()
	resp, err := ic.inner.Call(ctx, addr, req)
	ns := time.Since(start).Nanoseconds()
	ic.reg.Counter("rpc_calls").Inc()
	ic.reg.Histogram("rpc_call_ns").Observe(ns)
	ic.reg.Histogram("rpc_call_ns." + reqName(req)).Observe(ns)
	if err != nil {
		ic.reg.Counter("rpc_errors").Inc()
		if errors.Is(err, ErrUnreachable) {
			ic.reg.Counter("rpc_unreachable").Inc()
		}
	}
	return resp, err
}

// Register surfaces the resilient caller's counters in a registry as
// snapshot-time gauges, so /metrics and cluster-wide aggregation see retry,
// circuit-breaker and timeout activity without double bookkeeping.
func (r *ResilientCaller) Register(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.SetGaugeFunc("rpc_resilient_calls", r.calls.Load)
	reg.SetGaugeFunc("rpc_resilient_attempts", r.attempts.Load)
	reg.SetGaugeFunc("rpc_resilient_retries", r.retries.Load)
	reg.SetGaugeFunc("rpc_resilient_failures", r.failures.Load)
	reg.SetGaugeFunc("rpc_resilient_timeouts", r.timeouts.Load)
	reg.SetGaugeFunc("rpc_breaker_trips", r.trips.Load)
	reg.SetGaugeFunc("rpc_breaker_rejections", r.rejected.Load)
	reg.SetGaugeFunc("rpc_breaker_half_open_probes", r.probes.Load)
	reg.SetGaugeFunc("rpc_breaker_open", func() int64 { return int64(r.Stats().OpenBreakers) })
}

// countingConn counts the bytes crossing a net.Conn into two counters.
type countingConn struct {
	net.Conn
	sent *obs.Counter
	recv *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}
