package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"mendel/internal/wire"
)

func TestMemFailNextIsOneShot(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	n.FailNext("a", 2)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := n.Call(ctx, "a", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("call %d: err = %v, want injected failure", i, err)
		}
	}
	if _, err := n.Call(ctx, "a", wire.Ping{}); err != nil {
		t.Fatalf("fault did not clear: %v", err)
	}
}

func TestMemFlakyProbability(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	n.SetFlaky("a", 0.5)
	ctx := context.Background()
	failures := 0
	const calls = 400
	for i := 0; i < calls; i++ {
		if _, err := n.Call(ctx, "a", wire.Ping{}); err != nil {
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("err = %v", err)
			}
			failures++
		}
	}
	// Deterministic seed; ~50% must fail, but keep the band generous.
	if failures < calls/4 || failures > 3*calls/4 {
		t.Fatalf("failures = %d/%d with p=0.5", failures, calls)
	}
	n.SetFlaky("a", 0)
	for i := 0; i < 50; i++ {
		if _, err := n.Call(ctx, "a", wire.Ping{}); err != nil {
			t.Fatalf("flakiness did not clear: %v", err)
		}
	}
}

func TestMemFlakyWithResilientCallerRecovers(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	n.SetFlaky("a", 0.4)
	rc := NewResilientCaller(n, ResilientConfig{MaxRetries: 8, RetryBase: time.Microsecond})
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if _, err := rc.Call(ctx, "a", wire.Ping{}); err != nil {
			t.Fatalf("call %d failed despite retries: %v", i, err)
		}
	}
	if rc.Stats().Retries == 0 {
		t.Fatal("flaky link exercised no retries")
	}
}

func TestMemPartitionIsPairwiseAndSymmetric(t *testing.T) {
	n := NewMemNetwork()
	for _, name := range []string{"a", "b", "c"} {
		n.Register(name, echoHandler{name})
	}
	n.Partition("a", "b")
	ctx := context.Background()
	aCaller, bCaller, cCaller := n.Bind("a"), n.Bind("b"), n.Bind("c")

	if _, err := aCaller.Call(ctx, "b", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("a->b across partition: %v", err)
	}
	if _, err := bCaller.Call(ctx, "a", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("b->a across partition: %v", err)
	}
	// Third parties and the anonymous coordinator still reach both sides.
	for _, dst := range []string{"a", "b"} {
		if _, err := cCaller.Call(ctx, dst, wire.Ping{}); err != nil {
			t.Fatalf("c->%s: %v", dst, err)
		}
		if _, err := n.Call(ctx, dst, wire.Ping{}); err != nil {
			t.Fatalf("coordinator->%s: %v", dst, err)
		}
	}
	n.HealPartition("b", "a") // order must not matter
	if _, err := aCaller.Call(ctx, "b", wire.Ping{}); err != nil {
		t.Fatalf("healed partition still cut: %v", err)
	}
}

func TestMemPartitionFromCoordinator(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	n.Partition("", "a")
	if _, err := n.Call(context.Background(), "a", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.Bind("b").Call(context.Background(), "a", wire.Ping{}); err != nil {
		t.Fatalf("node-to-node traffic caught by coordinator partition: %v", err)
	}
}

func TestMemPerAddressLatency(t *testing.T) {
	n := NewMemNetwork()
	n.Register("slow", echoHandler{"slow"})
	n.Register("fast", echoHandler{"fast"})
	n.SetAddrLatency("slow", LatencyModel{Base: 40 * time.Millisecond})
	ctx := context.Background()
	start := time.Now()
	if _, err := n.Call(ctx, "fast", wire.Ping{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("fast node delayed: %v", elapsed)
	}
	start = time.Now()
	if _, err := n.Call(ctx, "slow", wire.Ping{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("straggler latency not applied: %v", elapsed)
	}
	// A straggler plus a tight caller deadline behaves like a timeout.
	tctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if _, err := n.Call(tctx, "slow", wire.Ping{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}
