package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"mendel/internal/wire"
)

// scriptedCaller fails the first failN calls with ErrUnreachable and then
// succeeds, counting every attempt it receives.
type scriptedCaller struct {
	attempts atomic.Int64
	failN    int64
	err      error
	sleep    time.Duration
}

func (s *scriptedCaller) Call(ctx context.Context, addr string, req any) (any, error) {
	n := s.attempts.Add(1)
	if s.sleep > 0 {
		select {
		case <-time.After(s.sleep):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if n <= s.failN {
		if s.err != nil {
			return nil, s.err
		}
		return nil, ErrUnreachable
	}
	return wire.Pong{Node: addr}, nil
}

func TestResilientRetriesUntilSuccess(t *testing.T) {
	inner := &scriptedCaller{failN: 2}
	rc := NewResilientCaller(inner, ResilientConfig{
		MaxRetries: 3,
		RetryBase:  time.Millisecond,
	})
	resp, err := rc.Call(context.Background(), "a", wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(wire.Pong).Node != "a" {
		t.Fatalf("resp = %#v", resp)
	}
	st := rc.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Failures != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResilientExhaustsRetries(t *testing.T) {
	inner := &scriptedCaller{failN: 100}
	rc := NewResilientCaller(inner, ResilientConfig{
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
	})
	_, err := rc.Call(context.Background(), "a", wire.Ping{})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if got := inner.attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestResilientDoesNotRetryRemoteErrors(t *testing.T) {
	inner := &scriptedCaller{failN: 100, err: &RemoteError{Addr: "a", Msg: "boom"}}
	rc := NewResilientCaller(inner, ResilientConfig{
		MaxRetries: 5,
		RetryBase:  time.Millisecond,
	})
	_, err := rc.Call(context.Background(), "a", wire.Ping{})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if got := inner.attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, application errors must not be retried", got)
	}
}

func TestResilientPerCallTimeout(t *testing.T) {
	inner := &scriptedCaller{sleep: time.Second}
	rc := NewResilientCaller(inner, ResilientConfig{CallTimeout: 10 * time.Millisecond})
	start := time.Now()
	_, err := rc.Call(context.Background(), "a", wire.Ping{})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want timeout mapped to ErrUnreachable", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("per-call timeout not applied")
	}
	if rc.Stats().Timeouts != 1 {
		t.Fatalf("stats = %+v", rc.Stats())
	}
}

func TestResilientParentContextWins(t *testing.T) {
	inner := &scriptedCaller{sleep: time.Second}
	rc := NewResilientCaller(inner, ResilientConfig{CallTimeout: time.Minute, MaxRetries: 3})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := rc.Call(ctx, "a", wire.Ping{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the parent deadline to surface unchanged", err)
	}
	if got := inner.attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, expired context must stop retries", got)
	}
}

// TestCircuitBreakerStopsHammeringDeadAddress is the acceptance test for
// the breaker: once tripped, attempts to the dead address drop to the
// half-open probe rate instead of one (or more, with retries) per call.
func TestCircuitBreakerStopsHammeringDeadAddress(t *testing.T) {
	inner := &scriptedCaller{failN: 1 << 30}
	rc := NewResilientCaller(inner, ResilientConfig{
		TripAfter: 3,
		Cooldown:  time.Hour, // no probe during the hammering phase
	})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := rc.Call(ctx, "dead", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if got := inner.attempts.Load(); got != 3 {
		t.Fatalf("inner attempts = %d, want exactly TripAfter=3 before the breaker opens", got)
	}
	st := rc.Stats()
	if st.Trips != 1 {
		t.Fatalf("trips = %d, want 1", st.Trips)
	}
	if st.Rejections != 47 {
		t.Fatalf("rejections = %d, want 47", st.Rejections)
	}
	if st.OpenBreakers != 1 {
		t.Fatalf("open breakers = %d", st.OpenBreakers)
	}
}

func TestCircuitBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	inner := &scriptedCaller{failN: 4} // trips at 3; probe 4 fails; probe 5 heals
	rc := NewResilientCaller(inner, ResilientConfig{
		TripAfter: 3,
		Cooldown:  20 * time.Millisecond,
	})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		rc.Call(ctx, "flappy", wire.Ping{})
	}
	if got := inner.attempts.Load(); got != 3 {
		t.Fatalf("attempts before cooldown = %d, want 3", got)
	}

	// After the cooldown one probe is admitted; it fails and re-opens.
	time.Sleep(25 * time.Millisecond)
	if _, err := rc.Call(ctx, "flappy", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("probe err = %v", err)
	}
	if got := inner.attempts.Load(); got != 4 {
		t.Fatalf("attempts after first probe = %d, want 4", got)
	}
	if _, err := rc.Call(ctx, "flappy", wire.Ping{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("post-probe call err = %v, want immediate rejection", err)
	}

	// Next probe succeeds and closes the breaker; traffic flows again.
	time.Sleep(25 * time.Millisecond)
	if _, err := rc.Call(ctx, "flappy", wire.Ping{}); err != nil {
		t.Fatalf("healing probe err = %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := rc.Call(ctx, "flappy", wire.Ping{}); err != nil {
			t.Fatalf("post-recovery call err = %v", err)
		}
	}
	st := rc.Stats()
	if st.HalfOpenProbes != 2 {
		t.Fatalf("probes = %d, want 2", st.HalfOpenProbes)
	}
	if st.OpenBreakers != 0 {
		t.Fatalf("open breakers = %d after recovery", st.OpenBreakers)
	}
	if st.Trips != 2 {
		t.Fatalf("trips = %d, want 2 (initial + failed probe)", st.Trips)
	}
}

func TestCircuitBreakerIsPerAddress(t *testing.T) {
	net := NewMemNetwork()
	net.Register("alive", echoHandler{"alive"})
	rc := NewResilientCaller(net, ResilientConfig{TripAfter: 2, Cooldown: time.Hour})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		rc.Call(ctx, "dead", wire.Ping{})
	}
	if _, err := rc.Call(ctx, "alive", wire.Ping{}); err != nil {
		t.Fatalf("healthy address affected by dead address's breaker: %v", err)
	}
}

func TestResilientZeroConfigPassesThrough(t *testing.T) {
	net := NewMemNetwork()
	net.Register("a", echoHandler{"a"})
	rc := NewResilientCaller(net, ResilientConfig{})
	resp, err := rc.Call(context.Background(), "a", wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(wire.Pong).Node != "a" {
		t.Fatalf("resp = %#v", resp)
	}
	if _, err := rc.Call(context.Background(), "ghost", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}
