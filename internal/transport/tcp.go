package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mendel/internal/obs"
)

// reqEnvelope and respEnvelope frame every TCP exchange. gob streams are
// self-delimiting, so a persistent encoder/decoder pair per connection is
// both the simplest and the fastest framing. TC carries the caller's trace
// context; gob ignores unknown fields and zeroes missing ones, so peers
// built before tracing interoperate — their requests simply arrive with an
// invalid (zero) context and handlers fall back to local-only tracing.
type reqEnvelope struct {
	V  any
	TC obs.TraceContext
}

type respEnvelope struct {
	V   any
	Err string
}

// TCPServer serves a node's handler over a TCP listener.
type TCPServer struct {
	ln net.Listener

	mu      sync.Mutex
	handler Handler
	reg     *obs.Registry
	conns   map[net.Conn]bool
	closed  bool
	wg      sync.WaitGroup
}

// Observe attaches a metrics registry: connections accepted afterwards
// count request totals, handler errors, handler latency and bytes in/out.
func (s *TCPServer) Observe(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
}

// SetHandler installs or replaces the request handler. It exists so a node
// can learn its bound address (needed for its own identity) before wiring
// itself in; requests arriving while no handler is set receive an error.
func (s *TCPServer) SetHandler(h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

// ListenTCP starts serving handler on addr (e.g. "127.0.0.1:0") and returns
// the server; Addr reports the bound address.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all open connections, waiting for handler
// goroutines to drain.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	s.mu.Lock()
	reg := s.reg
	s.mu.Unlock()
	var rw io.ReadWriter = conn
	if reg != nil {
		rw = &countingConn{Conn: conn,
			sent: reg.Counter("server_bytes_sent"), recv: reg.Counter("server_bytes_recv")}
	}
	dec := gob.NewDecoder(rw)
	enc := gob.NewEncoder(rw)
	for {
		var req reqEnvelope
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.mu.Lock()
		h := s.handler
		s.mu.Unlock()
		var env respEnvelope
		start := time.Now()
		if h == nil {
			env = respEnvelope{Err: "transport: server has no handler installed"}
		} else {
			resp, err := safeHandle(h, req.TC, req.V)
			env = respEnvelope{V: resp}
			if err != nil {
				env = respEnvelope{Err: err.Error()}
			}
		}
		if reg != nil {
			reg.Counter("server_requests").Inc()
			reg.Histogram("server_handle_ns").Observe(time.Since(start).Nanoseconds())
			reg.Histogram("server_handle_ns." + reqName(req.V)).Observe(time.Since(start).Nanoseconds())
			if env.Err != "" {
				reg.Counter("server_errors").Inc()
			}
		}
		if err := enc.Encode(&env); err != nil {
			return
		}
	}
}

// safeHandle invokes the handler, converting a panic into an error so one
// poisoned request surfaces as a RemoteError on the client instead of
// killing the connection goroutine (and, unrecovered, the whole node). A
// valid trace context from the request envelope is re-injected into the
// handler's context, completing server-side trace extraction.
func safeHandle(h Handler, tc obs.TraceContext, req any) (resp any, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("transport: handler panic on %T: %v", req, r)
		}
	}()
	ctx := context.Background()
	if tc.Valid() {
		ctx = obs.ContextWithTrace(ctx, tc)
	}
	return h.Handle(ctx, req)
}

// TCPClient is a Caller over TCP with a small per-address connection pool.
type TCPClient struct {
	dialTimeout time.Duration
	poolSize    int

	mu    sync.Mutex
	reg   *obs.Registry
	pools map[string]chan *tcpConn
}

// Observe attaches a metrics registry: connections dialed afterwards count
// rpc_bytes_sent / rpc_bytes_recv, and every fresh dial counts rpc_dials.
func (c *TCPClient) Observe(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
}

type tcpConn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewTCPClient creates a client keeping up to poolSize idle connections per
// address (0 selects 4).
func NewTCPClient(poolSize int) *TCPClient {
	if poolSize <= 0 {
		poolSize = 4
	}
	return &TCPClient{
		dialTimeout: 5 * time.Second,
		poolSize:    poolSize,
		pools:       make(map[string]chan *tcpConn),
	}
}

func (c *TCPClient) pool(addr string) chan *tcpConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pools[addr]
	if !ok {
		p = make(chan *tcpConn, c.poolSize)
		c.pools[addr] = p
	}
	return p
}

func (c *TCPClient) get(ctx context.Context, addr string) (tc *tcpConn, pooled bool, err error) {
	select {
	case tc := <-c.pool(addr):
		return tc, true, nil
	default:
	}
	d := net.Dialer{Timeout: c.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	c.mu.Lock()
	reg := c.reg
	c.mu.Unlock()
	var rw io.ReadWriter = conn
	if reg != nil {
		reg.Counter("rpc_dials").Inc()
		rw = &countingConn{Conn: conn,
			sent: reg.Counter("rpc_bytes_sent"), recv: reg.Counter("rpc_bytes_recv")}
	}
	return &tcpConn{c: conn, enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}, false, nil
}

func (c *TCPClient) put(addr string, tc *tcpConn) {
	select {
	case c.pool(addr) <- tc:
	default:
		tc.c.Close()
	}
}

// Call implements Caller. Deadlines from ctx apply to the socket I/O.
//
// A pooled connection may have gone stale — the server restarted, or an
// idle-connection timeout fired — between the call that parked it and now.
// An I/O failure on a pooled connection therefore drops it and
// transparently retries (draining further stale pool entries, then dialing
// fresh) before any error is reported; Mendel's RPCs are idempotent (pure
// lookups, dedup-on-insert stores), so replaying the request on a fresh
// connection is safe. A freshly dialed connection's failure is final.
func (c *TCPClient) Call(ctx context.Context, addr string, req any) (any, error) {
	trace, _ := obs.TraceFromContext(ctx)
	for {
		tc, pooled, err := c.get(ctx, addr)
		if err != nil {
			return nil, err
		}
		if dl, ok := ctx.Deadline(); ok {
			tc.c.SetDeadline(dl)
		} else {
			tc.c.SetDeadline(time.Time{})
		}
		retriable := pooled && ctx.Err() == nil
		if err := tc.enc.Encode(&reqEnvelope{V: req, TC: trace}); err != nil {
			tc.c.Close()
			if retriable {
				continue
			}
			return nil, fmt.Errorf("%w: send: %v", ErrUnreachable, err)
		}
		var resp respEnvelope
		if err := tc.dec.Decode(&resp); err != nil {
			tc.c.Close()
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			if retriable {
				continue
			}
			return nil, fmt.Errorf("%w: recv: %v", ErrUnreachable, err)
		}
		c.put(addr, tc)
		if resp.Err != "" {
			return nil, &RemoteError{Addr: addr, Msg: resp.Err}
		}
		return resp.V, nil
	}
}

// Close drops all pooled connections.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, p := range c.pools {
		for {
			select {
			case tc := <-p:
				if err := tc.c.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
				continue
			default:
			}
			break
		}
	}
	c.pools = make(map[string]chan *tcpConn)
	if firstErr != nil && !errors.Is(firstErr, net.ErrClosed) {
		return firstErr
	}
	return nil
}
