package transport

import (
	"bufio"
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mendel/internal/obs"
	"mendel/internal/wire"
)

// The TCP protocol speaks two framings on one connection, negotiated by the
// first request/response exchange:
//
//   - Legacy gob: a persistent gob encoder/decoder pair per connection
//     carrying reqEnvelope/respEnvelope. Every connection starts here, and
//     connections to or from peers built before the binary codec stay here
//     forever — gob ignores unknown struct fields, so the negotiation byte
//     is invisible to old binaries.
//   - Binary frames: after a client advertising Wire >= 1 receives a
//     response echoing Wire >= 1, both sides switch the connection to
//     length-prefixed frames ([flags byte][uvarint length][payload]). Hot
//     messages use the wire package's hand-rolled binary codec; cold
//     messages ride as self-contained gob payloads inside a frame (flags
//     codec bit clear). Block-transfer frames may be flate-compressed
//     (flags compression bit), decoded unconditionally, produced only when
//     the sender enables compression.
//
// Negotiation is in lockstep: the server switches right after writing the
// gob response that echoes Wire, the client right after reading it, and the
// strict request/response discipline means no other bytes are in flight
// during the switch. Both sides read through one bufio.Reader shared
// between the gob decoder and the frame reader, so any read-ahead survives
// the mode change.
type reqEnvelope struct {
	V  any
	TC obs.TraceContext
	// Wire advertises the sender's protocol version (wireVersion) for
	// codec negotiation; 0 — the value old binaries implicitly send —
	// means gob-only.
	Wire byte
}

type respEnvelope struct {
	V   any
	Err string
	// Wire echoes a supported protocol version back to an advertising
	// client; 0 declines the upgrade.
	Wire byte
}

// wireVersion is the protocol version advertised and echoed in envelope
// negotiation. Version 1 adds binary framing with per-message codec
// dispatch.
const wireVersion = 1

// Frame flag bits and limits.
const (
	// frameBinary marks a payload encoded with the wire binary codec;
	// clear means a self-contained gob envelope payload.
	frameBinary byte = 1 << 0
	// frameCompressed marks a flate-compressed payload.
	frameCompressed byte = 1 << 1

	// maxFrameHeader is the widest possible frame header: flags plus a
	// uvarint length. Frame builders reserve this much padding up front so
	// header and payload go out in a single Write.
	maxFrameHeader = 1 + binary.MaxVarintLen64

	// maxFramePayload bounds a frame (and its decompressed form) so a
	// corrupt or adversarial length prefix cannot force a huge allocation.
	maxFramePayload = 1 << 30

	// compressMin is the smallest payload worth deflating.
	compressMin = 512
)

// Codec names accepted by WireConfig.
const (
	CodecBinary = "binary"
	CodecGob    = "gob"
)

// WireConfig selects a peer's codec behaviour; the zero value means the
// negotiated binary codec with no compression — the default everywhere.
type WireConfig struct {
	// Codec is "binary" (or empty) for negotiated binary framing with
	// transparent gob fallback against old peers, or "gob" to pin the
	// legacy framing (what a pre-codec binary speaks).
	Codec string
	// Compress enables flate compression of outgoing block-transfer
	// request frames (wire.Compressible messages) on binary connections.
	// Decompression is always supported, so only the sending side needs
	// the flag.
	Compress bool
}

// forceGob reports whether the config pins the legacy framing.
func (wc WireConfig) forceGob() (bool, error) {
	switch wc.Codec {
	case "", CodecBinary:
		return false, nil
	case CodecGob:
		return true, nil
	}
	return false, fmt.Errorf("transport: unknown codec %q (want %q or %q)", wc.Codec, CodecBinary, CodecGob)
}

// TCPServer serves a node's handler over a TCP listener.
type TCPServer struct {
	ln net.Listener

	mu       sync.Mutex
	handler  Handler
	reg      *obs.Registry
	conns    map[net.Conn]bool
	closed   bool
	forceGob bool
	wg       sync.WaitGroup
}

// Observe attaches a metrics registry: connections accepted afterwards
// count request totals, handler errors, handler latency and bytes in/out.
func (s *TCPServer) Observe(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
}

// SetWire configures the server's codec behaviour. CodecGob makes the
// server behave like a pre-codec binary (never echo the negotiation byte),
// which the mixed-version compatibility tests use as a stand-in for an old
// deployment. Applies to connections whose first request arrives
// afterwards.
func (s *TCPServer) SetWire(wc WireConfig) error {
	fg, err := wc.forceGob()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forceGob = fg
	return nil
}

// SetHandler installs or replaces the request handler. It exists so a node
// can learn its bound address (needed for its own identity) before wiring
// itself in; requests arriving while no handler is set receive an error.
func (s *TCPServer) SetHandler(h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

// ListenTCP starts serving handler on addr (e.g. "127.0.0.1:0") and returns
// the server; Addr reports the bound address.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all open connections, waiting for handler
// goroutines to drain.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	s.mu.Lock()
	reg := s.reg
	s.mu.Unlock()
	var rw io.ReadWriter = conn
	if reg != nil {
		rw = &countingConn{Conn: conn,
			sent: reg.Counter("server_bytes_sent"), recv: reg.Counter("server_bytes_recv")}
	}
	// One buffered reader feeds both framings, so bytes buffered ahead by
	// the gob decoder are not lost when the connection upgrades.
	br := bufio.NewReader(rw)
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(rw)
	binMode := false
	for {
		var reqV any
		var reqTC obs.TraceContext
		upgrade := false
		if binMode {
			flags, payload, err := readFrame(br)
			if err != nil {
				return
			}
			reqTC, reqV, err = decodeFrameRequest(flags, payload)
			if err != nil {
				// Protocol corruption past negotiation: drop the
				// connection rather than answer garbage.
				return
			}
		} else {
			var req reqEnvelope
			if err := dec.Decode(&req); err != nil {
				return
			}
			reqV, reqTC = req.V, req.TC
			s.mu.Lock()
			fg := s.forceGob
			s.mu.Unlock()
			upgrade = req.Wire >= wireVersion && !fg
		}
		s.mu.Lock()
		h := s.handler
		s.mu.Unlock()
		var respV any
		var errStr string
		start := time.Now()
		if h == nil {
			errStr = "transport: server has no handler installed"
		} else {
			resp, err := safeHandle(h, reqTC, reqV)
			respV = resp
			if err != nil {
				respV, errStr = nil, err.Error()
			}
		}
		if reg != nil {
			reg.Counter("server_requests").Inc()
			reg.Histogram("server_handle_ns").Observe(time.Since(start).Nanoseconds())
			reg.Histogram("server_handle_ns." + reqName(reqV)).Observe(time.Since(start).Nanoseconds())
			if errStr != "" {
				reg.Counter("server_errors").Inc()
			}
		}
		if binMode {
			if err := writeFrameResponse(rw, respV, errStr); err != nil {
				return
			}
		} else {
			env := respEnvelope{V: respV, Err: errStr}
			if upgrade {
				env.Wire = wireVersion
			}
			if err := enc.Encode(&env); err != nil {
				return
			}
			if upgrade {
				binMode = true
				if reg != nil {
					reg.Counter("server_conns_binary").Inc()
				}
			}
		}
	}
}

// safeHandle invokes the handler, converting a panic into an error so one
// poisoned request surfaces as a RemoteError on the client instead of
// killing the connection goroutine (and, unrecovered, the whole node). A
// valid trace context from the request envelope is re-injected into the
// handler's context, completing server-side trace extraction.
func safeHandle(h Handler, tc obs.TraceContext, req any) (resp any, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("transport: handler panic on %T: %v", req, r)
		}
	}()
	ctx := context.Background()
	if tc.Valid() {
		ctx = obs.ContextWithTrace(ctx, tc)
	}
	return h.Handle(ctx, req)
}

// TCPClient is a Caller over TCP with a small per-address connection pool.
type TCPClient struct {
	dialTimeout time.Duration
	poolSize    int

	mu       sync.Mutex
	reg      *obs.Registry
	pools    map[string]chan *tcpConn
	forceGob bool
	compress bool
}

// Observe attaches a metrics registry: connections dialed afterwards count
// rpc_bytes_sent / rpc_bytes_recv, and every fresh dial counts rpc_dials.
// Pooled connections dialed before the registry was attached are dropped so
// the byte accounting covers all subsequent traffic.
func (c *TCPClient) Observe(reg *obs.Registry) {
	c.mu.Lock()
	c.reg = reg
	pools := c.pools
	c.pools = make(map[string]chan *tcpConn)
	c.mu.Unlock()
	drainPools(pools)
}

// SetWire configures the client's codec behaviour. CodecGob makes the
// client behave like a pre-codec binary (never advertise the negotiation
// byte); Compress deflates outgoing block-transfer frames on binary
// connections. Existing pooled connections are dropped so the setting
// applies uniformly.
func (c *TCPClient) SetWire(wc WireConfig) error {
	fg, err := wc.forceGob()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.forceGob = fg
	c.compress = wc.Compress
	pools := c.pools
	c.pools = make(map[string]chan *tcpConn)
	c.mu.Unlock()
	drainPools(pools)
	return nil
}

// tcpConn is one pooled connection and its negotiated framing state.
type tcpConn struct {
	c  net.Conn
	w  io.Writer     // conn, byte-counting when a registry is attached
	br *bufio.Reader // shared by the gob decoder and the frame reader
	// enc/dec are the legacy persistent gob pair; unused once bin is set.
	enc *gob.Encoder
	dec *gob.Decoder
	// negotiated is set after the first exchange; bin after a successful
	// upgrade to binary framing.
	negotiated bool
	bin        bool
}

// NewTCPClient creates a client keeping up to poolSize idle connections per
// address (0 selects 4).
func NewTCPClient(poolSize int) *TCPClient {
	if poolSize <= 0 {
		poolSize = 4
	}
	return &TCPClient{
		dialTimeout: 5 * time.Second,
		poolSize:    poolSize,
		pools:       make(map[string]chan *tcpConn),
	}
}

func (c *TCPClient) pool(addr string) chan *tcpConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pools[addr]
	if !ok {
		p = make(chan *tcpConn, c.poolSize)
		c.pools[addr] = p
	}
	return p
}

func (c *TCPClient) get(ctx context.Context, addr string) (tc *tcpConn, pooled bool, err error) {
	select {
	case tc := <-c.pool(addr):
		return tc, true, nil
	default:
	}
	d := net.Dialer{Timeout: c.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	c.mu.Lock()
	reg := c.reg
	c.mu.Unlock()
	var rw io.ReadWriter = conn
	if reg != nil {
		reg.Counter("rpc_dials").Inc()
		rw = &countingConn{Conn: conn,
			sent: reg.Counter("rpc_bytes_sent"), recv: reg.Counter("rpc_bytes_recv")}
	}
	br := bufio.NewReader(rw)
	return &tcpConn{c: conn, w: rw, br: br, enc: gob.NewEncoder(rw), dec: gob.NewDecoder(br)}, false, nil
}

func (c *TCPClient) put(addr string, tc *tcpConn) {
	select {
	case c.pool(addr) <- tc:
	default:
		tc.c.Close()
	}
}

// Call implements Caller. Deadlines from ctx apply to the socket I/O.
//
// A pooled connection may have gone stale — the server restarted, or an
// idle-connection timeout fired — between the call that parked it and now.
// An I/O failure on a pooled connection therefore drops it and
// transparently retries (draining further stale pool entries, then dialing
// fresh) before any error is reported; Mendel's RPCs are idempotent (pure
// lookups, dedup-on-insert stores), so replaying the request on a fresh
// connection is safe. A freshly dialed connection's failure is final.
func (c *TCPClient) Call(ctx context.Context, addr string, req any) (any, error) {
	trace, _ := obs.TraceFromContext(ctx)
	c.mu.Lock()
	forceGob, compress, reg := c.forceGob, c.compress, c.reg
	c.mu.Unlock()
	for {
		tc, pooled, err := c.get(ctx, addr)
		if err != nil {
			return nil, err
		}
		if dl, ok := ctx.Deadline(); ok {
			tc.c.SetDeadline(dl)
		} else {
			tc.c.SetDeadline(time.Time{})
		}
		retriable := pooled && ctx.Err() == nil
		var resp respEnvelope
		var sendErr, recvErr error
		if tc.bin {
			resp, sendErr, recvErr = callBinary(tc, trace, req, compress)
		} else {
			env := reqEnvelope{V: req, TC: trace}
			if !forceGob && !tc.negotiated {
				env.Wire = wireVersion
			}
			if sendErr = tc.enc.Encode(&env); sendErr == nil {
				if recvErr = tc.dec.Decode(&resp); recvErr == nil && !tc.negotiated {
					tc.negotiated = true
					if env.Wire >= wireVersion && resp.Wire >= wireVersion {
						tc.bin = true
						if reg != nil {
							reg.Counter("rpc_conns_binary").Inc()
						}
					}
				}
			}
		}
		if sendErr != nil {
			tc.c.Close()
			if retriable {
				continue
			}
			return nil, fmt.Errorf("%w: send: %v", ErrUnreachable, sendErr)
		}
		if recvErr != nil {
			tc.c.Close()
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			if retriable {
				continue
			}
			return nil, fmt.Errorf("%w: recv: %v", ErrUnreachable, recvErr)
		}
		c.put(addr, tc)
		if resp.Err != "" {
			return nil, &RemoteError{Addr: addr, Msg: resp.Err}
		}
		return resp.V, nil
	}
}

// callBinary performs one framed exchange on an upgraded connection.
func callBinary(tc *tcpConn, trace obs.TraceContext, req any, compress bool) (resp respEnvelope, sendErr, recvErr error) {
	fp := wire.GetFrame()
	defer func() { wire.PutFrame(fp) }()
	buf := append((*fp)[:0], framePad...)
	flags := byte(0)
	if b, ok := wire.AppendRequest(buf, trace, req); ok {
		buf, flags = b, frameBinary
	} else {
		// Cold request: self-contained gob envelope inside the frame.
		b, err := gobEnvelopePayload(buf, &reqEnvelope{V: req, TC: trace})
		if err != nil {
			return resp, err, nil
		}
		buf = b
	}
	if flags&frameBinary != 0 && compress && wire.Compressible(req) && len(buf)-maxFrameHeader >= compressMin {
		b, err := compressPayload(buf)
		if err == nil && len(b) < len(buf) {
			buf, flags = b, flags|frameCompressed
		}
	}
	*fp = buf
	if _, sendErr = tc.w.Write(buildFrame(buf, flags)); sendErr != nil {
		return resp, sendErr, nil
	}
	rflags, payload, err := readFrame(tc.br)
	if err != nil {
		return resp, nil, err
	}
	if payload, err = maybeInflate(rflags, payload); err != nil {
		return resp, nil, err
	}
	if rflags&frameBinary != 0 {
		msg, errMsg, err := wire.DecodeResponse(payload)
		if err != nil {
			return resp, nil, err
		}
		resp = respEnvelope{V: msg, Err: errMsg}
		return resp, nil, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&resp); err != nil {
		return resp, nil, err
	}
	return resp, nil, nil
}

// writeFrameResponse encodes and writes one server-side response frame:
// binary for hot messages and errors, an embedded gob envelope otherwise.
func writeFrameResponse(w io.Writer, respV any, errStr string) error {
	fp := wire.GetFrame()
	defer func() { wire.PutFrame(fp) }()
	buf := append((*fp)[:0], framePad...)
	flags := byte(0)
	switch {
	case errStr != "":
		buf, flags = wire.AppendErrorResponse(buf, errStr), frameBinary
	default:
		if b, ok := wire.AppendResponse(buf, respV); ok {
			buf, flags = b, frameBinary
		} else {
			b, err := gobEnvelopePayload(buf, &respEnvelope{V: respV})
			if err != nil {
				return err
			}
			buf = b
		}
	}
	*fp = buf
	_, err := w.Write(buildFrame(buf, flags))
	return err
}

// framePad reserves room for the frame header so buildFrame can right-align
// it and the whole frame goes out in one Write (one segment for the small
// query-path frames).
var framePad = make([]byte, maxFrameHeader)

// buildFrame finalizes a buffer whose payload was built after framePad,
// returning the [flags][uvarint length][payload] wire image.
func buildFrame(buf []byte, flags byte) []byte {
	payloadLen := len(buf) - maxFrameHeader
	var hdr [maxFrameHeader]byte
	hdr[0] = flags
	n := 1 + binary.PutUvarint(hdr[1:], uint64(payloadLen))
	start := maxFrameHeader - n
	copy(buf[start:], hdr[:n])
	return buf[start:]
}

// readFrame reads one frame, allocating a fresh payload buffer: decoded
// messages hold zero-copy views into it and may be retained indefinitely
// (stored blocks, cached regions), so received frames are never pooled.
func readFrame(br *bufio.Reader) (flags byte, payload []byte, err error) {
	flags, err = br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, err
	}
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, err
	}
	return flags, payload, nil
}

// decodeFrameRequest turns a request frame payload into its trace context
// and message.
func decodeFrameRequest(flags byte, payload []byte) (obs.TraceContext, any, error) {
	payload, err := maybeInflate(flags, payload)
	if err != nil {
		return obs.TraceContext{}, nil, err
	}
	if flags&frameBinary != 0 {
		return wire.DecodeRequest(payload)
	}
	var req reqEnvelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&req); err != nil {
		return obs.TraceContext{}, nil, err
	}
	return req.TC, req.V, nil
}

// gobEnvelopePayload appends a self-contained gob encoding of env to dst —
// the cold-message path, where per-message type preambles cost nothing that
// matters.
func gobEnvelopePayload[T any](dst []byte, env *T) ([]byte, error) {
	buf := wire.BufPool.Get().(*bytes.Buffer)
	defer wire.BufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(env); err != nil {
		return dst, err
	}
	return append(dst, buf.Bytes()...), nil
}

// flateWriterPool recycles flate writers, which are expensive to construct.
var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

// compressPayload deflates the payload of a padded frame buffer, returning
// a new padded buffer; the caller keeps the original on any error or when
// compression does not pay.
func compressPayload(buf []byte) ([]byte, error) {
	bb := wire.BufPool.Get().(*bytes.Buffer)
	defer wire.BufPool.Put(bb)
	bb.Reset()
	fw := flateWriterPool.Get().(*flate.Writer)
	defer flateWriterPool.Put(fw)
	fw.Reset(bb)
	if _, err := fw.Write(buf[maxFrameHeader:]); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	out := make([]byte, 0, maxFrameHeader+bb.Len())
	out = append(out, framePad...)
	return append(out, bb.Bytes()...), nil
}

// maybeInflate decompresses a compressed frame payload, bounding the
// decompressed size the same way readFrame bounds the raw size.
func maybeInflate(flags byte, payload []byte) ([]byte, error) {
	if flags&frameCompressed == 0 {
		return payload, nil
	}
	fr := flate.NewReader(bytes.NewReader(payload))
	defer fr.Close()
	out, err := io.ReadAll(io.LimitReader(fr, maxFramePayload+1))
	if err != nil {
		return nil, fmt.Errorf("transport: inflating frame: %w", err)
	}
	if len(out) > maxFramePayload {
		return nil, fmt.Errorf("transport: decompressed frame exceeds %d bytes", maxFramePayload)
	}
	return out, nil
}

// drainPools closes every pooled connection.
func drainPools(pools map[string]chan *tcpConn) {
	for _, p := range pools {
		for {
			select {
			case tc := <-p:
				tc.c.Close()
				continue
			default:
			}
			break
		}
	}
}

// Close drops all pooled connections.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, p := range c.pools {
		for {
			select {
			case tc := <-p:
				if err := tc.c.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
				continue
			default:
			}
			break
		}
	}
	c.pools = make(map[string]chan *tcpConn)
	if firstErr != nil && !errors.Is(firstErr, net.ErrClosed) {
		return firstErr
	}
	return nil
}
