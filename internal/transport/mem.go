package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"math/rand"
	"sync"
	"time"

	"mendel/internal/wire"
)

// LatencyModel simulates LAN message delay for the in-memory network: each
// call sleeps Base plus a uniform jitter in [0, Jitter). The zero value
// disables simulation entirely, which benchmarks of pure compute use.
type LatencyModel struct {
	Base   time.Duration
	Jitter time.Duration
}

func (l LatencyModel) enabled() bool { return l.Base > 0 || l.Jitter > 0 }

// chaosState is the per-address failure injection knobs of a MemNetwork:
// together with Fail/Heal and Partition they form the chaos-testing surface
// that stands in for the machine crashes, packet loss and switch faults a
// commodity cluster sees in production.
type chaosState struct {
	// flaky is the probability in [0,1] that a call fails with
	// ErrUnreachable (a lossy or congested link).
	flaky float64
	// failNext makes the next n calls fail (one-shot fault injection).
	failNext int
	// latency overrides the network-wide latency model for this address
	// (a slow disk or an overloaded box).
	latency *LatencyModel
}

// MemNetwork is an in-process transport: nodes register handlers under
// string addresses and calls are direct function invocations, optionally
// delayed by a latency model and optionally round-tripped through gob to
// guarantee anything that works in-memory also works over TCP.
type MemNetwork struct {
	mu         sync.RWMutex
	handlers   map[string]Handler
	failed     map[string]bool
	chaos      map[string]*chaosState
	partitions map[[2]string]bool
	latency    LatencyModel
	encode     bool
	rng        *rand.Rand
	rngMu      sync.Mutex
}

// MemOption configures a MemNetwork.
type MemOption func(*MemNetwork)

// WithLatency enables simulated per-call latency.
func WithLatency(l LatencyModel) MemOption {
	return func(n *MemNetwork) { n.latency = l }
}

// WithEncodeCheck makes every call serialize its request and response
// through the same codecs the TCP transport would pick — the binary codec
// for hot messages, gob otherwise — so encoding bugs surface in in-process
// tests (chaos suites included) without a real network.
func WithEncodeCheck() MemOption {
	return func(n *MemNetwork) { n.encode = true }
}

// WithChaosSeed seeds the RNG behind flaky-drop decisions and latency
// jitter, so chaos tests can log the seed they ran with and replay a
// failure exactly. Without it the network uses a fixed default seed.
func WithChaosSeed(seed int64) MemOption {
	return func(n *MemNetwork) { n.rng = rand.New(rand.NewSource(seed)) }
}

// NewMemNetwork creates an empty in-memory network.
func NewMemNetwork(opts ...MemOption) *MemNetwork {
	n := &MemNetwork{
		handlers:   make(map[string]Handler),
		failed:     make(map[string]bool),
		chaos:      make(map[string]*chaosState),
		partitions: make(map[[2]string]bool),
		rng:        rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Register attaches a handler under addr, replacing any previous handler.
func (n *MemNetwork) Register(addr string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[addr] = h
}

// Fail marks a node unreachable (failure injection for tests).
func (n *MemNetwork) Fail(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed[addr] = true
}

// Heal clears a failure.
func (n *MemNetwork) Heal(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.failed, addr)
}

// chaosFor returns addr's chaos knobs, creating them if needed. Callers
// hold n.mu.
func (n *MemNetwork) chaosFor(addr string) *chaosState {
	c := n.chaos[addr]
	if c == nil {
		c = &chaosState{}
		n.chaos[addr] = c
	}
	return c
}

// SetFlaky makes every call to addr fail with ErrUnreachable independently
// with probability p in [0,1]. p = 0 restores reliable delivery.
func (n *MemNetwork) SetFlaky(addr string, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.chaosFor(addr).flaky = p
}

// FailNext makes the next count calls to addr fail with ErrUnreachable and
// then restores normal delivery — a transient fault rather than a crash.
func (n *MemNetwork) FailNext(addr string, count int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.chaosFor(addr).failNext = count
}

// SetAddrLatency overrides the network-wide latency model for calls to
// addr, simulating a straggler node.
func (n *MemNetwork) SetAddrLatency(addr string, l LatencyModel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	lc := l
	n.chaosFor(addr).latency = &lc
}

// ClearChaos removes all flaky/one-shot/latency injection for addr
// (partitions and Fail marks are cleared separately).
func (n *MemNetwork) ClearChaos(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.chaos, addr)
}

// partitionKey orders a pair of endpoints so {a,b} and {b,a} name the same
// symmetric partition.
func partitionKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Partition cuts the (bidirectional) link between endpoints a and b while
// leaving both reachable from everyone else — the classic network split.
// Callers are identified by the source address their Bind caller stamps;
// the coordinator-side Caller of the network itself has source "", so
// Partition("", addr) isolates a node from coordinators only.
func (n *MemNetwork) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[partitionKey(a, b)] = true
}

// HealPartition restores the link between a and b.
func (n *MemNetwork) HealPartition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, partitionKey(a, b))
}

// boundCaller is a MemNetwork view that stamps a fixed source address on
// every call so partitions can tell who is calling.
type boundCaller struct {
	net  *MemNetwork
	addr string
}

// Call implements Caller.
func (b boundCaller) Call(ctx context.Context, addr string, req any) (any, error) {
	return b.net.call(ctx, b.addr, addr, req)
}

// Bind returns a Caller whose calls originate from addr, for partition
// simulation. Node-side callers should be bound; the MemNetwork itself is
// also a Caller with the anonymous source "".
func (n *MemNetwork) Bind(addr string) Caller { return boundCaller{net: n, addr: addr} }

// Call implements Caller with the anonymous source "".
func (n *MemNetwork) Call(ctx context.Context, addr string, req any) (any, error) {
	return n.call(ctx, "", addr, req)
}

// call routes one request from src to addr through every enabled chaos
// filter, in the order a real network would apply them: partition and crash
// checks first, then loss, then latency, then delivery. The caller's ctx
// reaches the handler directly, so a trace context attached with
// obs.ContextWithTrace propagates implicitly — the in-memory counterpart of
// the TCP transport's explicit envelope field.
func (n *MemNetwork) call(ctx context.Context, src, addr string, req any) (any, error) {
	n.mu.Lock()
	h, ok := n.handlers[addr]
	failed := n.failed[addr] || n.partitions[partitionKey(src, addr)]
	lat := n.latency
	enc := n.encode
	var flaky float64
	if c := n.chaos[addr]; c != nil {
		flaky = c.flaky
		if c.failNext > 0 {
			c.failNext--
			failed = true
		}
		if c.latency != nil {
			lat = *c.latency
		}
	}
	n.mu.Unlock()
	if !ok || failed {
		return nil, ErrUnreachable
	}
	if flaky > 0 {
		n.rngMu.Lock()
		drop := n.rng.Float64() < flaky
		n.rngMu.Unlock()
		if drop {
			return nil, ErrUnreachable
		}
	}
	if lat.enabled() {
		delay := lat.Base
		if lat.Jitter > 0 {
			n.rngMu.Lock()
			delay += time.Duration(n.rng.Int63n(int64(lat.Jitter)))
			n.rngMu.Unlock()
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if enc {
		var err error
		if req, err = codecRoundTrip(req); err != nil {
			return nil, err
		}
	}
	resp, err := h.Handle(ctx, req)
	if err != nil {
		return nil, &RemoteError{Addr: addr, Msg: err.Error()}
	}
	if enc {
		if resp, err = codecRoundTrip(resp); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// rtBufPool recycles the encode-check scratch buffers: with WithEncodeCheck
// every in-memory RPC round-trips through gob twice, and a fresh
// bytes.Buffer per message was pure garbage on the query fan-out path.
var rtBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// codecRoundTrip serializes v the way the TCP transport would: hot messages
// through the binary codec, everything else through gob. The binary decode
// buffer is deliberately NOT pooled — decoded messages hold zero-copy views
// into it, mirroring the real receive path's retention semantics so any
// buffer-reuse bug shows up in memory-transport tests too.
func codecRoundTrip(v any) (any, error) {
	if data, ok := wire.AppendHot(nil, v); ok {
		return wire.DecodeHot(data)
	}
	return gobRoundTrip(v)
}

func gobRoundTrip(v any) (any, error) {
	buf := rtBufPool.Get().(*bytes.Buffer)
	defer rtBufPool.Put(buf)
	buf.Reset()
	box := struct{ V any }{v}
	if err := gob.NewEncoder(buf).Encode(&box); err != nil {
		return nil, err
	}
	var out struct{ V any }
	if err := gob.NewDecoder(buf).Decode(&out); err != nil {
		return nil, err
	}
	return out.V, nil
}
