package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"math/rand"
	"sync"
	"time"
)

// LatencyModel simulates LAN message delay for the in-memory network: each
// call sleeps Base plus a uniform jitter in [0, Jitter). The zero value
// disables simulation entirely, which benchmarks of pure compute use.
type LatencyModel struct {
	Base   time.Duration
	Jitter time.Duration
}

func (l LatencyModel) enabled() bool { return l.Base > 0 || l.Jitter > 0 }

// MemNetwork is an in-process transport: nodes register handlers under
// string addresses and calls are direct function invocations, optionally
// delayed by a latency model and optionally round-tripped through gob to
// guarantee anything that works in-memory also works over TCP.
type MemNetwork struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	failed   map[string]bool
	latency  LatencyModel
	encode   bool
	rng      *rand.Rand
	rngMu    sync.Mutex
}

// MemOption configures a MemNetwork.
type MemOption func(*MemNetwork)

// WithLatency enables simulated per-call latency.
func WithLatency(l LatencyModel) MemOption {
	return func(n *MemNetwork) { n.latency = l }
}

// WithEncodeCheck makes every call serialize its request and response
// through gob, so encoding bugs surface in in-process tests.
func WithEncodeCheck() MemOption {
	return func(n *MemNetwork) { n.encode = true }
}

// NewMemNetwork creates an empty in-memory network.
func NewMemNetwork(opts ...MemOption) *MemNetwork {
	n := &MemNetwork{
		handlers: make(map[string]Handler),
		failed:   make(map[string]bool),
		rng:      rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Register attaches a handler under addr, replacing any previous handler.
func (n *MemNetwork) Register(addr string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[addr] = h
}

// Fail marks a node unreachable (failure injection for tests).
func (n *MemNetwork) Fail(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed[addr] = true
}

// Heal clears a failure.
func (n *MemNetwork) Heal(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.failed, addr)
}

// Call implements Caller.
func (n *MemNetwork) Call(ctx context.Context, addr string, req any) (any, error) {
	n.mu.RLock()
	h, ok := n.handlers[addr]
	failed := n.failed[addr]
	lat := n.latency
	enc := n.encode
	n.mu.RUnlock()
	if !ok || failed {
		return nil, ErrUnreachable
	}
	if lat.enabled() {
		delay := lat.Base
		if lat.Jitter > 0 {
			n.rngMu.Lock()
			delay += time.Duration(n.rng.Int63n(int64(lat.Jitter)))
			n.rngMu.Unlock()
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if enc {
		var err error
		if req, err = gobRoundTrip(req); err != nil {
			return nil, err
		}
	}
	resp, err := h.Handle(ctx, req)
	if err != nil {
		return nil, &RemoteError{Addr: addr, Msg: err.Error()}
	}
	if enc {
		if resp, err = gobRoundTrip(resp); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

func gobRoundTrip(v any) (any, error) {
	var buf bytes.Buffer
	box := struct{ V any }{v}
	if err := gob.NewEncoder(&buf).Encode(&box); err != nil {
		return nil, err
	}
	var out struct{ V any }
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		return nil, err
	}
	return out.V, nil
}
