package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mendel/internal/obs"
)

// ErrCircuitOpen reports a call rejected locally because the destination's
// circuit breaker is open. It wraps ErrUnreachable so every failover path
// (group entry-point rotation, repository ring successors, degraded-mode
// fan-out) treats a tripped address exactly like a dead one.
var ErrCircuitOpen = fmt.Errorf("%w: circuit open", ErrUnreachable)

// ResilientConfig tunes a ResilientCaller. The zero value disables every
// mechanism (calls pass straight through); DefaultResilientConfig returns
// the settings the CLIs use.
type ResilientConfig struct {
	// CallTimeout bounds each individual attempt. 0 disables the per-call
	// deadline (the parent context still applies).
	CallTimeout time.Duration
	// MaxRetries is the number of additional attempts after the first when
	// a call fails with ErrUnreachable (application errors from a live node
	// are never retried).
	MaxRetries int
	// RetryBase is the backoff before the first retry; each subsequent
	// retry doubles it (with jitter) up to RetryMax.
	RetryBase time.Duration
	// RetryMax caps the exponential backoff. 0 means no cap.
	RetryMax time.Duration
	// TripAfter is the number of consecutive transport failures to one
	// address that trips its circuit breaker. 0 disables the breaker.
	TripAfter int
	// Cooldown is how long a tripped breaker rejects calls before letting
	// a single half-open probe through.
	Cooldown time.Duration
}

// DefaultResilientConfig returns the production defaults: 10s per attempt,
// two retries starting at 25ms, and a breaker tripping after 5 consecutive
// failures with a 5s cooldown.
func DefaultResilientConfig() ResilientConfig {
	return ResilientConfig{
		CallTimeout: 10 * time.Second,
		MaxRetries:  2,
		RetryBase:   25 * time.Millisecond,
		RetryMax:    2 * time.Second,
		TripAfter:   5,
		Cooldown:    5 * time.Second,
	}
}

// ResilientStats is a snapshot of a ResilientCaller's counters.
type ResilientStats struct {
	Calls          int64 // Call invocations
	Attempts       int64 // attempts issued to the wrapped caller
	Retries        int64 // attempts beyond the first
	Failures       int64 // attempts that failed at the transport level
	Timeouts       int64 // attempts cut off by the per-call timeout
	Trips          int64 // breaker transitions closed -> open
	Rejections     int64 // calls rejected by an open breaker
	HalfOpenProbes int64 // probe attempts let through a cooled-down breaker
	OpenBreakers   int   // addresses currently open or half-open
}

// String renders a compact single-line summary.
func (s ResilientStats) String() string {
	return fmt.Sprintf("calls=%d attempts=%d retries=%d failures=%d timeouts=%d trips=%d rejected=%d probes=%d open=%d",
		s.Calls, s.Attempts, s.Retries, s.Failures, s.Timeouts,
		s.Trips, s.Rejections, s.HalfOpenProbes, s.OpenBreakers)
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the per-address circuit state. It trips open after TripAfter
// consecutive transport failures, rejects calls for Cooldown, then admits a
// single half-open probe whose outcome either closes it or re-opens it.
type breaker struct {
	state       int
	consecutive int
	openedAt    time.Time
}

// ResilientCaller decorates a Caller with per-call timeouts, bounded
// retries with exponential backoff and jitter on ErrUnreachable, and a
// per-address circuit breaker, making coordinator fan-out robust against
// slow, flapping, and dead nodes without hammering them.
type ResilientCaller struct {
	inner Caller
	cfg   ResilientConfig

	calls    atomic.Int64
	attempts atomic.Int64
	retries  atomic.Int64
	failures atomic.Int64
	timeouts atomic.Int64
	trips    atomic.Int64
	rejected atomic.Int64
	probes   atomic.Int64

	mu       sync.Mutex
	breakers map[string]*breaker
	rng      *rand.Rand
}

// NewResilientCaller wraps inner with the given resilience policy.
func NewResilientCaller(inner Caller, cfg ResilientConfig) *ResilientCaller {
	return &ResilientCaller{
		inner:    inner,
		cfg:      cfg,
		breakers: make(map[string]*breaker),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Observe forwards a metrics registry to the wrapped Caller when it
// supports observation (the TCP client does), so byte and dial counters
// reach /metrics even through the resilience decorator.
func (r *ResilientCaller) Observe(reg *obs.Registry) {
	if o, ok := r.inner.(interface{ Observe(*obs.Registry) }); ok {
		o.Observe(reg)
	}
}

// Stats returns a snapshot of the caller's counters.
func (r *ResilientCaller) Stats() ResilientStats {
	r.mu.Lock()
	open := 0
	for _, b := range r.breakers {
		if b.state != breakerClosed {
			open++
		}
	}
	r.mu.Unlock()
	return ResilientStats{
		Calls:          r.calls.Load(),
		Attempts:       r.attempts.Load(),
		Retries:        r.retries.Load(),
		Failures:       r.failures.Load(),
		Timeouts:       r.timeouts.Load(),
		Trips:          r.trips.Load(),
		Rejections:     r.rejected.Load(),
		HalfOpenProbes: r.probes.Load(),
		OpenBreakers:   open,
	}
}

// BreakerStates reports the current circuit state of every address the
// caller has a breaker for: "closed", "open", or "half-open". The health
// monitor folds these into its cluster view, so an address that trips mid
// query surfaces as suspect before the next probe sweep reaches it.
func (r *ResilientCaller) BreakerStates() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.breakers))
	for addr, b := range r.breakers {
		switch b.state {
		case breakerOpen:
			out[addr] = "open"
		case breakerHalfOpen:
			out[addr] = "half-open"
		default:
			out[addr] = "closed"
		}
	}
	return out
}

// admit consults addr's breaker. It returns false when the call must be
// rejected; probe is true when the call was admitted as the half-open probe.
func (r *ResilientCaller) admit(addr string) (admitted, probe bool) {
	if r.cfg.TripAfter <= 0 {
		return true, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[addr]
	if b == nil {
		b = &breaker{}
		r.breakers[addr] = b
	}
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if time.Since(b.openedAt) >= r.cfg.Cooldown {
			b.state = breakerHalfOpen
			return true, true
		}
		return false, false
	default: // half-open: one probe already in flight
		return false, false
	}
}

// report records an attempt's outcome in addr's breaker.
func (r *ResilientCaller) report(addr string, probe, success bool) {
	if r.cfg.TripAfter <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[addr]
	if b == nil {
		return
	}
	if success {
		b.state = breakerClosed
		b.consecutive = 0
		return
	}
	b.consecutive++
	if probe || b.consecutive >= r.cfg.TripAfter {
		if b.state != breakerOpen {
			r.trips.Add(1)
		}
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

// backoff returns the jittered exponential delay before retry number
// attempt (1-based): uniform in [d/2, d) where d = RetryBase << (attempt-1),
// capped at RetryMax.
func (r *ResilientCaller) backoff(attempt int) time.Duration {
	d := r.cfg.RetryBase << uint(attempt-1)
	if r.cfg.RetryMax > 0 && d > r.cfg.RetryMax {
		d = r.cfg.RetryMax
	}
	if d <= 0 {
		return 0
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.mu.Unlock()
	return d/2 + j
}

// Call implements Caller.
func (r *ResilientCaller) Call(ctx context.Context, addr string, req any) (any, error) {
	r.calls.Add(1)
	var lastErr error
	for attempt := 0; attempt <= r.cfg.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			r.retries.Add(1)
			select {
			case <-time.After(r.backoff(attempt)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		admitted, probe := r.admit(addr)
		if !admitted {
			r.rejected.Add(1)
			lastErr = ErrCircuitOpen
			continue
		}
		if probe {
			r.probes.Add(1)
		}
		r.attempts.Add(1)
		resp, err := r.callOnce(ctx, addr, req)
		if err == nil {
			r.report(addr, probe, true)
			return resp, nil
		}
		if !errors.Is(err, ErrUnreachable) {
			// The node answered: an application error, a malformed reply,
			// or the parent context expiring. Not the transport's fault —
			// leave the breaker alone and do not retry.
			r.report(addr, probe, true)
			return nil, err
		}
		r.failures.Add(1)
		r.report(addr, probe, false)
		lastErr = err
	}
	return nil, lastErr
}

// callOnce issues one attempt under the per-call timeout, mapping an
// attempt-deadline expiry to ErrUnreachable (a node too slow to answer is
// indistinguishable from a dead one) while letting the parent context's own
// cancellation surface unchanged.
func (r *ResilientCaller) callOnce(ctx context.Context, addr string, req any) (any, error) {
	if r.cfg.CallTimeout <= 0 {
		return r.inner.Call(ctx, addr, req)
	}
	cctx, cancel := context.WithTimeout(ctx, r.cfg.CallTimeout)
	defer cancel()
	resp, err := r.inner.Call(cctx, addr, req)
	if err != nil && cctx.Err() != nil && ctx.Err() == nil {
		r.timeouts.Add(1)
		return nil, fmt.Errorf("%w: no answer from %s within %v", ErrUnreachable, addr, r.cfg.CallTimeout)
	}
	return resp, err
}
