package transport

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mendel/internal/wire"
)

func TestTCPServerWithoutHandlerReturnsError(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewTCPClient(1)
	defer c.Close()
	_, err = c.Call(context.Background(), s.Addr(), wire.Ping{})
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "no handler") {
		t.Fatalf("err = %v", err)
	}
	// Installing a handler makes the same connection usable.
	s.SetHandler(echoHandler{"late"})
	resp, err := c.Call(context.Background(), s.Addr(), wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(wire.Pong).Node != "late" {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestTCPClientRecoversAfterServerRestart(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0", echoHandler{"v1"})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	c := NewTCPClient(2)
	defer c.Close()
	if _, err := c.Call(context.Background(), addr, wire.Ping{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart on the same address; the client's pooled connection is dead
	// and the first call may fail, but a retry must reconnect.
	s2, err := ListenTCP(addr, echoHandler{"v2"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var resp any
	deadline := time.Now().Add(5 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		resp, err = c.Call(ctx, addr, wire.Ping{})
		cancel()
		if err == nil || time.Now().After(deadline) {
			break
		}
	}
	if err != nil {
		t.Fatalf("client never recovered: %v", err)
	}
	if resp.(wire.Pong).Node != "v2" {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestTCPClientCloseIdempotent(t *testing.T) {
	c := NewTCPClient(1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
