package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mendel/internal/obs"
	"mendel/internal/wire"
)

// flakyStub fails every third call with ErrUnreachable and succeeds
// otherwise, deterministically, so totals are exactly predictable.
type flakyStub struct {
	n atomic.Int64
}

func (s *flakyStub) Call(ctx context.Context, addr string, req any) (any, error) {
	if s.n.Add(1)%3 == 0 {
		return nil, fmt.Errorf("stub: %s: %w", addr, ErrUnreachable)
	}
	return wire.Pong{}, nil
}

// TestInstrumentedCallerConcurrent hammers one InstrumentedCaller from many
// goroutines (run under -race in CI) and asserts the counter and histogram
// totals are exact: no update may be lost or double-counted under
// contention.
func TestInstrumentedCallerConcurrent(t *testing.T) {
	const goroutines = 16
	const perG = 250
	const total = goroutines * perG

	reg := obs.NewRegistry()
	stub := &flakyStub{}
	ic := NewInstrumentedCaller(stub, reg)

	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ic.Call(context.Background(), "10.0.0.1:1", wire.Ping{})
			}
		}()
	}
	wg.Wait()

	wantErrors := int64(total / 3)
	snaps := make(map[string]obs.Snapshot)
	for _, s := range reg.Snapshot() {
		snaps[s.Name] = s
	}
	if got := snaps["rpc_calls"].Value; got != total {
		t.Errorf("rpc_calls = %d, want %d", got, total)
	}
	if got := snaps["rpc_errors"].Value; got != wantErrors {
		t.Errorf("rpc_errors = %d, want %d", got, wantErrors)
	}
	if got := snaps["rpc_unreachable"].Value; got != wantErrors {
		t.Errorf("rpc_unreachable = %d, want %d", got, wantErrors)
	}
	if got := snaps["rpc_call_ns"].Count; got != total {
		t.Errorf("rpc_call_ns count = %d, want %d", got, total)
	}
	if got := snaps["rpc_call_ns.Ping"].Count; got != total {
		t.Errorf("rpc_call_ns.Ping count = %d, want %d", got, total)
	}
}

// TestInstrumentedCallerNilRegistry pins the pass-through contract: a nil
// registry must cost nothing and crash nothing.
func TestInstrumentedCallerNilRegistry(t *testing.T) {
	ic := NewInstrumentedCaller(&flakyStub{}, nil)
	for i := 0; i < 6; i++ {
		ic.Call(context.Background(), "10.0.0.1:1", wire.Ping{})
	}
}
