package transport

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mendel/internal/wire"
)

// panicHandler panics on Stats requests and echoes Pings.
type panicHandler struct{}

func (panicHandler) Handle(_ context.Context, req any) (any, error) {
	if _, ok := req.(wire.Stats); ok {
		panic("poisoned request")
	}
	return wire.Pong{Node: "srv"}, nil
}

func TestTCPServerRecoversHandlerPanic(t *testing.T) {
	s := startServer(t, panicHandler{})
	c := NewTCPClient(1)
	defer c.Close()
	ctx := context.Background()

	_, err := c.Call(ctx, s.Addr(), wire.Stats{})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want a RemoteError carrying the panic", err)
	}
	if !strings.Contains(re.Msg, "panic") || !strings.Contains(re.Msg, "poisoned request") {
		t.Fatalf("remote error = %q", re.Msg)
	}
	// The connection goroutine must survive: the same client (and the same
	// pooled connection) keeps working.
	for i := 0; i < 3; i++ {
		if _, err := c.Call(ctx, s.Addr(), wire.Ping{}); err != nil {
			t.Fatalf("call %d after panic: %v", i, err)
		}
	}
}

func TestTCPClientSurvivesServerRestart(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0", echoHandler{"gen1"})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	c := NewTCPClient(2)
	defer c.Close()
	ctx := context.Background()

	// Park a healthy connection in the pool, then restart the server on
	// the same address so the pooled connection goes stale.
	if _, err := c.Call(ctx, addr, wire.Ping{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := ListenTCP(addr, echoHandler{"gen2"})
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer s2.Close()

	resp, err := c.Call(ctx, addr, wire.Ping{})
	if err != nil {
		t.Fatalf("call over stale pooled connection: %v", err)
	}
	if pong := resp.(wire.Pong); pong.Node != "gen2" {
		t.Fatalf("resp = %#v, want the restarted server's answer", resp)
	}
}

func TestTCPClientDrainsMultipleStaleConns(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0", echoHandler{"gen1"})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	c := NewTCPClient(4)
	defer c.Close()
	ctx := context.Background()

	// Park several connections at once, then restart the server.
	const parallel = 3
	done := make(chan error, parallel)
	for i := 0; i < parallel; i++ {
		go func() {
			_, err := c.Call(ctx, addr, wire.Ping{})
			done <- err
		}()
	}
	for i := 0; i < parallel; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := ListenTCP(addr, echoHandler{"gen2"})
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer s2.Close()

	// One call must chew through every stale pooled connection and still
	// succeed on a fresh dial.
	if _, err := c.Call(ctx, addr, wire.Ping{}); err != nil {
		t.Fatalf("call with %d stale pooled conns: %v", parallel, err)
	}
}

func TestTCPResilientEndToEnd(t *testing.T) {
	s := startServer(t, echoHandler{"srv"})
	inner := NewTCPClient(2)
	defer inner.Close()
	rc := NewResilientCaller(inner, ResilientConfig{
		CallTimeout: 2 * time.Second,
		MaxRetries:  2,
		RetryBase:   time.Millisecond,
		TripAfter:   3,
		Cooldown:    time.Hour,
	})
	ctx := context.Background()
	if _, err := rc.Call(ctx, s.Addr(), wire.Ping{}); err != nil {
		t.Fatal(err)
	}
	// A dead TCP address trips the breaker after TripAfter transport
	// failures; further calls are rejected without touching the network.
	for i := 0; i < 5; i++ {
		if _, err := rc.Call(ctx, "127.0.0.1:1", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("err = %v", err)
		}
	}
	st := rc.Stats()
	if st.Trips != 1 || st.Rejections == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The live server is unaffected.
	if _, err := rc.Call(ctx, s.Addr(), wire.Ping{}); err != nil {
		t.Fatal(err)
	}
}
