package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mendel/internal/wire"
)

type echoHandler struct{ name string }

func (h echoHandler) Handle(_ context.Context, req any) (any, error) {
	switch r := req.(type) {
	case wire.Ping:
		return wire.Pong{Node: h.name}, nil
	case wire.FetchRegion:
		if r.Start < 0 {
			return nil, fmt.Errorf("bad start %d", r.Start)
		}
		return wire.Region{Seq: r.Seq, Start: r.Start, Data: []byte("ACGT")}, nil
	default:
		return nil, fmt.Errorf("unexpected request %T", req)
	}
}

func TestMemCallRoundTrip(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	resp, err := n.Call(context.Background(), "a", wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if pong, ok := resp.(wire.Pong); !ok || pong.Node != "a" {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestMemUnreachable(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Call(context.Background(), "ghost", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	n.Register("a", echoHandler{"a"})
	n.Fail("a")
	if _, err := n.Call(context.Background(), "a", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("failed node err = %v", err)
	}
	n.Heal("a")
	if _, err := n.Call(context.Background(), "a", wire.Ping{}); err != nil {
		t.Fatalf("healed node err = %v", err)
	}
}

func TestMemRemoteError(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	_, err := n.Call(context.Background(), "a", wire.FetchRegion{Start: -1})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if re.Addr != "a" || !strings.Contains(re.Msg, "bad start") {
		t.Fatalf("remote error = %+v", re)
	}
}

func TestMemEncodeCheck(t *testing.T) {
	n := NewMemNetwork(WithEncodeCheck())
	n.Register("a", echoHandler{"a"})
	resp, err := n.Call(context.Background(), "a", wire.FetchRegion{Seq: 3, Start: 1, End: 5})
	if err != nil {
		t.Fatal(err)
	}
	region, ok := resp.(wire.Region)
	if !ok || region.Seq != 3 || string(region.Data) != "ACGT" {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestMemLatencyAndCancellation(t *testing.T) {
	n := NewMemNetwork(WithLatency(LatencyModel{Base: 30 * time.Millisecond}))
	n.Register("a", echoHandler{"a"})
	start := time.Now()
	if _, err := n.Call(context.Background(), "a", wire.Ping{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := n.Call(ctx, "a", wire.Ping{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancel err = %v", err)
	}
}

func TestBroadcast(t *testing.T) {
	n := NewMemNetwork()
	for _, name := range []string{"a", "b", "c"} {
		n.Register(name, echoHandler{name})
	}
	resps, err := Broadcast(context.Background(), n, []string{"a", "b", "c"}, wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"a", "b", "c"} {
		if resps[i].(wire.Pong).Node != want {
			t.Fatalf("resp[%d] = %#v", i, resps[i])
		}
	}
}

func TestBroadcastPartialFailure(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	n.Register("b", echoHandler{"b"})
	n.Fail("b")
	resps, err := Broadcast(context.Background(), n, []string{"a", "b"}, wire.Ping{})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "b") {
		t.Fatalf("error should name the failed node: %v", err)
	}
	// The healthy node's response may still be present.
	_ = resps
}

type countingHandler struct{ calls int64 }

func (h *countingHandler) Handle(_ context.Context, req any) (any, error) {
	atomic.AddInt64(&h.calls, 1)
	return wire.Pong{Node: "n"}, nil
}

func TestMemConcurrentCalls(t *testing.T) {
	n := NewMemNetwork()
	h := &countingHandler{}
	n.Register("a", h)
	const workers = 32
	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := n.Call(context.Background(), "a", wire.Ping{}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt64(&h.calls); got != workers*50 {
		t.Fatalf("calls = %d", got)
	}
}
