package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mendel/internal/wire"
)

type echoHandler struct{ name string }

func (h echoHandler) Handle(_ context.Context, req any) (any, error) {
	switch r := req.(type) {
	case wire.Ping:
		return wire.Pong{Node: h.name}, nil
	case wire.FetchRegion:
		if r.Start < 0 {
			return nil, fmt.Errorf("bad start %d", r.Start)
		}
		return wire.Region{Seq: r.Seq, Start: r.Start, Data: []byte("ACGT")}, nil
	default:
		return nil, fmt.Errorf("unexpected request %T", req)
	}
}

func TestMemCallRoundTrip(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	resp, err := n.Call(context.Background(), "a", wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if pong, ok := resp.(wire.Pong); !ok || pong.Node != "a" {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestMemUnreachable(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Call(context.Background(), "ghost", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	n.Register("a", echoHandler{"a"})
	n.Fail("a")
	if _, err := n.Call(context.Background(), "a", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("failed node err = %v", err)
	}
	n.Heal("a")
	if _, err := n.Call(context.Background(), "a", wire.Ping{}); err != nil {
		t.Fatalf("healed node err = %v", err)
	}
}

func TestMemRemoteError(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	_, err := n.Call(context.Background(), "a", wire.FetchRegion{Start: -1})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if re.Addr != "a" || !strings.Contains(re.Msg, "bad start") {
		t.Fatalf("remote error = %+v", re)
	}
}

func TestMemEncodeCheck(t *testing.T) {
	n := NewMemNetwork(WithEncodeCheck())
	n.Register("a", echoHandler{"a"})
	resp, err := n.Call(context.Background(), "a", wire.FetchRegion{Seq: 3, Start: 1, End: 5})
	if err != nil {
		t.Fatal(err)
	}
	region, ok := resp.(wire.Region)
	if !ok || region.Seq != 3 || string(region.Data) != "ACGT" {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestMemLatencyAndCancellation(t *testing.T) {
	n := NewMemNetwork(WithLatency(LatencyModel{Base: 30 * time.Millisecond}))
	n.Register("a", echoHandler{"a"})
	start := time.Now()
	if _, err := n.Call(context.Background(), "a", wire.Ping{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := n.Call(ctx, "a", wire.Ping{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancel err = %v", err)
	}
}

func TestBroadcast(t *testing.T) {
	n := NewMemNetwork()
	for _, name := range []string{"a", "b", "c"} {
		n.Register(name, echoHandler{name})
	}
	resps, err := Broadcast(context.Background(), n, []string{"a", "b", "c"}, wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"a", "b", "c"} {
		if resps[i].(wire.Pong).Node != want {
			t.Fatalf("resp[%d] = %#v", i, resps[i])
		}
	}
}

func TestBroadcastPartialFailure(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	n.Register("b", echoHandler{"b"})
	n.Fail("b")
	resps, err := Broadcast(context.Background(), n, []string{"a", "b"}, wire.Ping{})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "b") {
		t.Fatalf("error should name the failed node: %v", err)
	}
	// The healthy node's response may still be present.
	_ = resps
}

// TestBroadcastFirstErrorCancelsSiblings pins down the strict broadcast
// contract: the first error cancels every in-flight sibling call, while
// replies that already arrived are preserved in the partial result slice.
func TestBroadcastFirstErrorCancelsSiblings(t *testing.T) {
	n := NewMemNetwork()
	okDone := make(chan struct{})
	slowStarted := make(chan struct{})
	var sawCancel atomic.Bool

	n.Register("ok", HandlerFunc(func(_ context.Context, _ any) (any, error) {
		close(okDone)
		return wire.Pong{Node: "ok"}, nil
	}))
	n.Register("slow", HandlerFunc(func(ctx context.Context, _ any) (any, error) {
		close(slowStarted)
		select {
		case <-ctx.Done():
			sawCancel.Store(true)
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return wire.Pong{Node: "slow"}, nil
		}
	}))
	// The failer errors only once "ok" has answered and "slow" is parked in
	// its select, so the outcome of each sibling is deterministic.
	n.Register("failer", HandlerFunc(func(_ context.Context, _ any) (any, error) {
		<-okDone
		<-slowStarted
		return nil, errors.New("boom")
	}))

	start := time.Now()
	resps, err := Broadcast(context.Background(), n, []string{"ok", "slow", "failer"}, wire.Ping{})
	if err == nil || !strings.Contains(err.Error(), "failer") {
		t.Fatalf("err = %v, want broadcast error naming failer", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("first error did not cancel the slow sibling (took %v)", elapsed)
	}
	if !sawCancel.Load() {
		t.Fatal("slow handler never observed cancellation")
	}
	if pong, ok := resps[0].(wire.Pong); !ok || pong.Node != "ok" {
		t.Fatalf("completed sibling's reply lost: resps[0] = %#v", resps[0])
	}
	if resps[1] != nil {
		t.Fatalf("cancelled sibling produced a reply: %#v", resps[1])
	}
}

// TestBroadcastAllToleratesFailures pins down the degraded-mode contract:
// one dead address never cancels the others, and per-address errors line up
// with the input order.
func TestBroadcastAllToleratesFailures(t *testing.T) {
	n := NewMemNetwork()
	n.Register("a", echoHandler{"a"})
	n.Register("b", echoHandler{"b"})
	n.Register("c", echoHandler{"c"})
	n.Fail("b")
	// A slow healthy node must still answer after the dead one has errored.
	n.SetAddrLatency("c", LatencyModel{Base: 20 * time.Millisecond})

	resps, errs := BroadcastAll(context.Background(), n, []string{"a", "b", "c"}, wire.Ping{})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy nodes errored: %v", errs)
	}
	if !errors.Is(errs[1], ErrUnreachable) {
		t.Fatalf("errs[1] = %v, want ErrUnreachable", errs[1])
	}
	if pong, ok := resps[0].(wire.Pong); !ok || pong.Node != "a" {
		t.Fatalf("resps[0] = %#v", resps[0])
	}
	if resps[1] != nil {
		t.Fatalf("dead node produced a reply: %#v", resps[1])
	}
	if pong, ok := resps[2].(wire.Pong); !ok || pong.Node != "c" {
		t.Fatalf("slow sibling was cancelled by the dead node: %#v", resps[2])
	}
}

type countingHandler struct{ calls int64 }

func (h *countingHandler) Handle(_ context.Context, req any) (any, error) {
	atomic.AddInt64(&h.calls, 1)
	return wire.Pong{Node: "n"}, nil
}

func TestMemConcurrentCalls(t *testing.T) {
	n := NewMemNetwork()
	h := &countingHandler{}
	n.Register("a", h)
	const workers = 32
	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := n.Call(context.Background(), "a", wire.Ping{}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt64(&h.calls); got != workers*50 {
		t.Fatalf("calls = %d", got)
	}
}
