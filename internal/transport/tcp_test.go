package transport

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mendel/internal/wire"
)

func startServer(t *testing.T, h Handler) *TCPServer {
	t.Helper()
	s, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestTCPRoundTrip(t *testing.T) {
	s := startServer(t, echoHandler{"srv"})
	c := NewTCPClient(2)
	defer c.Close()
	resp, err := c.Call(context.Background(), s.Addr(), wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if pong, ok := resp.(wire.Pong); !ok || pong.Node != "srv" {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	s := startServer(t, echoHandler{"srv"})
	c := NewTCPClient(1)
	defer c.Close()
	for i := 0; i < 20; i++ {
		if _, err := c.Call(context.Background(), s.Addr(), wire.Ping{}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestTCPRemoteError(t *testing.T) {
	s := startServer(t, echoHandler{"srv"})
	c := NewTCPClient(1)
	defer c.Close()
	_, err := c.Call(context.Background(), s.Addr(), wire.FetchRegion{Start: -5})
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "bad start") {
		t.Fatalf("err = %v", err)
	}
	// The connection must remain usable after an application error.
	if _, err := c.Call(context.Background(), s.Addr(), wire.Ping{}); err != nil {
		t.Fatalf("call after remote error: %v", err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	c := NewTCPClient(1)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.Call(ctx, "127.0.0.1:1", wire.Ping{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	s := startServer(t, HandlerFunc(func(_ context.Context, req any) (any, error) {
		blocks := req.(wire.IndexBlocks)
		return wire.IndexBlocksAck{Accepted: len(blocks.Blocks)}, nil
	}))
	c := NewTCPClient(1)
	defer c.Close()
	blocks := make([]wire.Block, 5000)
	for i := range blocks {
		blocks[i] = wire.Block{Seq: 1, Start: i, Content: []byte("ACGTACGTACGTACGT")}
	}
	resp, err := c.Call(context.Background(), s.Addr(), wire.IndexBlocks{Blocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(wire.IndexBlocksAck).Accepted != 5000 {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	s := startServer(t, echoHandler{"srv"})
	c := NewTCPClient(4)
	defer c.Close()
	const workers = 16
	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			for j := 0; j < 25; j++ {
				if _, err := c.Call(context.Background(), s.Addr(), wire.Ping{}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPServerClose(t *testing.T) {
	s := startServer(t, echoHandler{"srv"})
	c := NewTCPClient(1)
	defer c.Close()
	if _, err := c.Call(context.Background(), s.Addr(), wire.Ping{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, s.Addr(), wire.Ping{}); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

func TestTCPBroadcast(t *testing.T) {
	s1 := startServer(t, echoHandler{"n1"})
	s2 := startServer(t, echoHandler{"n2"})
	c := NewTCPClient(2)
	defer c.Close()
	resps, err := Broadcast(context.Background(), c, []string{s1.Addr(), s2.Addr()}, wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].(wire.Pong).Node != "n1" || resps[1].(wire.Pong).Node != "n2" {
		t.Fatalf("resps = %#v", resps)
	}
}
