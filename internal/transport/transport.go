// Package transport provides the request/response messaging layer of a
// Mendel cluster. Two implementations share one interface: an in-memory
// network that wires nodes together inside a single process (with optional
// simulated latency and failure injection, standing in for the paper's LAN
// testbed), and a TCP transport for real multi-process deployments that
// negotiates per-connection framing — length-prefixed binary frames using
// the wire package's hand-rolled codec for hot messages, with a transparent
// gob fallback for cold messages and for peers built before the binary
// codec existed.
package transport

import (
	"context"
	"errors"
	"fmt"
)

// Handler processes one request addressed to a node and returns its
// response. Implementations must be safe for concurrent calls.
type Handler interface {
	Handle(ctx context.Context, req any) (any, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, req any) (any, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(ctx context.Context, req any) (any, error) { return f(ctx, req) }

// Caller issues requests to nodes by address. It is the only transport
// capability query coordinators and ingest pipelines need.
type Caller interface {
	Call(ctx context.Context, addr string, req any) (any, error)
}

// ErrUnreachable reports that the destination node does not exist or is
// currently failed/partitioned.
var ErrUnreachable = errors.New("transport: node unreachable")

// RemoteError carries an error string returned by a remote handler so
// callers can distinguish transport failures from application failures.
type RemoteError struct {
	Addr string
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Addr, e.Msg)
}

// Broadcast calls every address concurrently and collects the responses in
// input order. The first error cancels the remaining calls and is returned
// alongside the partial results.
func Broadcast(ctx context.Context, c Caller, addrs []string, req any) ([]any, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type reply struct {
		i    int
		resp any
		err  error
	}
	ch := make(chan reply, len(addrs))
	for i, addr := range addrs {
		go func(i int, addr string) {
			resp, err := c.Call(ctx, addr, req)
			ch <- reply{i, resp, err}
		}(i, addr)
	}
	out := make([]any, len(addrs))
	var firstErr error
	for range addrs {
		r := <-ch
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("broadcast to %s: %w", addrs[r.i], r.err)
				cancel()
			}
			continue
		}
		out[r.i] = r.resp
	}
	return out, firstErr
}

// BroadcastAll calls every address concurrently and waits for all calls to
// finish: a failure never cancels the siblings. It returns the responses and
// errors in input order, errs[i] being non-nil exactly when the call to
// addrs[i] failed — the degraded-mode primitive for operations that should
// tolerate individual down nodes rather than abort (topology broadcasts,
// cluster-wide stats).
func BroadcastAll(ctx context.Context, c Caller, addrs []string, req any) (resps []any, errs []error) {
	type reply struct {
		i    int
		resp any
		err  error
	}
	ch := make(chan reply, len(addrs))
	for i, addr := range addrs {
		go func(i int, addr string) {
			resp, err := c.Call(ctx, addr, req)
			ch <- reply{i, resp, err}
		}(i, addr)
	}
	resps = make([]any, len(addrs))
	errs = make([]error, len(addrs))
	for range addrs {
		r := <-ch
		resps[r.i], errs[r.i] = r.resp, r.err
	}
	return resps, errs
}
