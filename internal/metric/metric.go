// Package metric defines the metric-space distance functions Mendel uses to
// compare fixed-length sequence segments, as required by the vantage point
// tree (§III-B of the paper).
//
// For DNA, the distance is plain Hamming distance. For proteins, Hamming
// distance is a poor similarity proxy (residue background frequencies and
// mutation rates are highly non-uniform), so the distance is the position-wise
// sum of a per-residue metric derived from a scoring matrix via
// matrix.DistanceMatrix. Both are true metrics on equal-length strings.
package metric

import (
	"fmt"

	"mendel/internal/matrix"
	"mendel/internal/seq"
)

// Metric measures the distance between two equal-length residue segments.
// Implementations must satisfy the metric axioms; the vp-tree relies on the
// triangle inequality for search-space pruning.
type Metric interface {
	// Distance returns the distance between a and b, which must have equal
	// length. Implementations panic on unequal lengths: segment lengths are
	// a structural invariant of the Mendel index, not a runtime condition.
	Distance(a, b []byte) int
	// MaxPerResidue returns the largest possible single-position distance,
	// used to normalize distances into [0,1] for thresholding.
	MaxPerResidue() int
	// Name identifies the metric for logs and wire messages.
	Name() string
}

// Hamming is the DNA distance: the number of positions at which two
// equal-length segments differ (§III-B). Ambiguity code N counts as a
// mismatch against everything including itself, making it conservatively far
// from all residues while remaining a metric (d(N,N)=0 would also be fine;
// we use byte equality so d(N,N)=0 holds).
type Hamming struct{}

// Distance implements Metric.
func (Hamming) Distance(a, b []byte) int {
	checkLen(a, b)
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// MaxPerResidue implements Metric.
func (Hamming) MaxPerResidue() int { return 1 }

// Name implements Metric.
func (Hamming) Name() string { return "hamming" }

// MatrixMetric sums a per-residue metric table over positions. The table
// comes from matrix.DistanceMatrix and is addressed through a byte-indexed
// lookup so the hot path performs no alphabet translation.
type MatrixMetric struct {
	name   string
	maxPer int
	table  [256][256]uint16
}

// NewMatrixMetric builds the segment metric for a scoring matrix. Residues
// outside the matrix alphabet sit at the maximum per-residue distance from
// everything (including themselves), which keeps malformed input safely far
// rather than panicking mid-query.
func NewMatrixMetric(m *matrix.Matrix) *MatrixMetric {
	d := matrix.DistanceMatrix(m)
	mm := &MatrixMetric{name: "mendel-" + m.Name}
	for i := range d {
		for j := range d[i] {
			if d[i][j] > mm.maxPer {
				mm.maxPer = d[i][j]
			}
		}
	}
	for x := range mm.table {
		for y := range mm.table[x] {
			mm.table[x][y] = uint16(mm.maxPer)
		}
	}
	letters := m.Alphabet.Letters()
	for i, ci := range letters {
		for j, cj := range letters {
			v := uint16(d[i][j])
			mm.table[ci][cj] = v
			mm.table[lowerByte(ci)][cj] = v
			mm.table[ci][lowerByte(cj)] = v
			mm.table[lowerByte(ci)][lowerByte(cj)] = v
		}
	}
	return mm
}

func lowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// Distance implements Metric.
func (m *MatrixMetric) Distance(a, b []byte) int {
	checkLen(a, b)
	d := 0
	for i := range a {
		d += int(m.table[a[i]][b[i]])
	}
	return d
}

// MaxPerResidue implements Metric.
func (m *MatrixMetric) MaxPerResidue() int { return m.maxPer }

// Name implements Metric.
func (m *MatrixMetric) Name() string { return m.name }

// ResidueDistance exposes the per-residue distance, used by tests and by
// consecutivity scoring.
func (m *MatrixMetric) ResidueDistance(a, b byte) int { return int(m.table[a][b]) }

// ForKind returns the Mendel default metric for a molecule kind: Hamming for
// DNA and the BLOSUM62-derived matrix metric for proteins (§III-B).
func ForKind(kind seq.Kind) Metric {
	if kind == seq.DNA {
		return Hamming{}
	}
	return defaultProtein
}

// ByName resolves a metric from its wire name, the inverse of Name. Cluster
// nodes use this to agree on the index metric during bootstrap.
func ByName(name string) (Metric, error) {
	switch name {
	case "hamming":
		return Hamming{}, nil
	case "mendel-BLOSUM62":
		return defaultProtein, nil
	case "mendel-PAM250":
		return pam250Once(), nil
	default:
		return nil, fmt.Errorf("metric: unknown metric %q", name)
	}
}

var defaultProtein = NewMatrixMetric(matrix.BLOSUM62)

var pam250Metric *MatrixMetric

func pam250Once() *MatrixMetric {
	if pam250Metric == nil {
		pam250Metric = NewMatrixMetric(matrix.PAM250)
	}
	return pam250Metric
}

func checkLen(a, b []byte) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: segment lengths differ: %d vs %d", len(a), len(b)))
	}
}
