package metric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mendel/internal/matrix"
	"mendel/internal/seq"
)

func TestHammingBasics(t *testing.T) {
	h := Hamming{}
	cases := []struct {
		a, b string
		want int
	}{
		{"ACGT", "ACGT", 0},
		{"ACGT", "ACGA", 1},
		{"AAAA", "TTTT", 4},
		{"", "", 0},
		{"NN", "NN", 0},
	}
	for _, c := range cases {
		if got := h.Distance([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("Hamming(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if h.MaxPerResidue() != 1 || h.Name() != "hamming" {
		t.Fatal("metadata wrong")
	}
}

func TestHammingPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Hamming{}.Distance([]byte("AC"), []byte("A"))
}

func TestMatrixMetricIdentity(t *testing.T) {
	m := NewMatrixMetric(matrix.BLOSUM62)
	if got := m.Distance([]byte("WILDTYPE"), []byte("WILDTYPE")); got != 0 {
		t.Fatalf("self distance = %d", got)
	}
}

func TestMatrixMetricConservativeVsRadical(t *testing.T) {
	m := NewMatrixMetric(matrix.BLOSUM62)
	conservative := m.Distance([]byte("I"), []byte("L")) // BLOSUM62 +2
	radical := m.Distance([]byte("W"), []byte("G"))      // BLOSUM62 -2
	if conservative >= radical {
		t.Fatalf("d(I,L)=%d should be < d(W,G)=%d", conservative, radical)
	}
}

func TestMatrixMetricAdditive(t *testing.T) {
	m := NewMatrixMetric(matrix.BLOSUM62)
	a, b := []byte("ILWG"), []byte("LIGW")
	sum := 0
	for i := range a {
		sum += m.ResidueDistance(a[i], b[i])
	}
	if got := m.Distance(a, b); got != sum {
		t.Fatalf("Distance = %d, positionwise sum = %d", got, sum)
	}
}

func TestMatrixMetricInvalidResiduesAreFar(t *testing.T) {
	m := NewMatrixMetric(matrix.BLOSUM62)
	if got := m.ResidueDistance('!', 'A'); got != m.MaxPerResidue() {
		t.Fatalf("invalid residue distance = %d, want %d", got, m.MaxPerResidue())
	}
}

func TestMatrixMetricLowercase(t *testing.T) {
	m := NewMatrixMetric(matrix.BLOSUM62)
	if m.Distance([]byte("wild"), []byte("WILD")) != 0 {
		t.Fatal("lowercase residues should be identical to uppercase")
	}
}

func randomProteinSegment(rng *rand.Rand, n int) []byte {
	const standard = "ARNDCQEGHILKMFPSTWYV"
	out := make([]byte, n)
	for i := range out {
		out[i] = standard[rng.Intn(len(standard))]
	}
	return out
}

func TestMetricAxiomsOnSegments(t *testing.T) {
	m := NewMatrixMetric(matrix.BLOSUM62)
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := rng.Intn(20) + 1
		a := randomProteinSegment(rng, n)
		b := randomProteinSegment(rng, n)
		c := randomProteinSegment(rng, n)
		dab, dba := m.Distance(a, b), m.Distance(b, a)
		if dab != dba || dab < 0 {
			return false
		}
		if m.Distance(a, a) != 0 {
			return false
		}
		// Triangle inequality on segments follows from the per-residue
		// metric; verify directly.
		return m.Distance(a, c) <= dab+m.Distance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestForKind(t *testing.T) {
	if _, ok := ForKind(seq.DNA).(Hamming); !ok {
		t.Fatal("DNA metric should be Hamming")
	}
	if ForKind(seq.Protein).Name() != "mendel-BLOSUM62" {
		t.Fatalf("protein metric = %q", ForKind(seq.Protein).Name())
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, m := range []Metric{Hamming{}, ForKind(seq.Protein)} {
		got, err := ByName(m.Name())
		if err != nil {
			t.Fatalf("ByName(%q): %v", m.Name(), err)
		}
		if got.Name() != m.Name() {
			t.Fatalf("round trip = %q", got.Name())
		}
	}
	if m, err := ByName("mendel-PAM250"); err != nil || m.Name() != "mendel-PAM250" {
		t.Fatalf("PAM250 lookup: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name resolved")
	}
}
