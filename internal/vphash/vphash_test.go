package vphash

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mendel/internal/metric"
	"mendel/internal/seq"
)

func randDNA(rng *rand.Rand, n int) []byte {
	const letters = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(4)]
	}
	return out
}

func sampleDNA(rng *rand.Rand, count, keyLen int) [][]byte {
	out := make([][]byte, count)
	for i := range out {
		out[i] = randDNA(rng, keyLen)
	}
	return out
}

func buildTestTree(t *testing.T, rng *rand.Rand, depth, groups int) *Tree {
	t.Helper()
	tree, err := Build(metric.Hamming{}, sampleDNA(rng, 2000, 16), depth, groups, 7)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(metric.Hamming{}, nil, 3, 4, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Build(metric.Hamming{}, [][]byte{[]byte("ACGT")}, -1, 4, 1); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := Build(metric.Hamming{}, [][]byte{[]byte("ACGT")}, 3, 0, 1); err == nil {
		t.Error("zero groups accepted")
	}
}

func TestHashDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree := buildTestTree(t, rng, 4, 8)
	f := func(raw []byte) bool {
		key := make([]byte, 16)
		for i := range key {
			if len(raw) > 0 {
				key[i] = "ACGT"[int(raw[i%len(raw)])%4]
			} else {
				key[i] = 'A'
			}
		}
		return tree.Hash(key) == tree.Hash(key) && tree.Group(key) == tree.Group(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixEncodesPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree := buildTestTree(t, rng, 4, 8)
	// Every leaf prefix must start with the root's 1 bit: value >= 1 and
	// its bit length must be at most depth+1.
	for prefix := range tree.groupOf {
		if prefix == 0 {
			t.Fatal("zero prefix")
		}
		bits := 0
		for p := prefix; p > 0; p >>= 1 {
			bits++
		}
		if bits > tree.Depth()+1 {
			t.Fatalf("prefix %b has %d bits, depth %d", prefix, bits, tree.Depth())
		}
	}
}

func TestGroupsWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := buildTestTree(t, rng, 5, 10)
	for i := 0; i < 500; i++ {
		g := tree.Group(randDNA(rng, 16))
		if g < 0 || g >= 10 {
			t.Fatalf("group %d out of range", g)
		}
	}
}

func TestSimilarKeysCollide(t *testing.T) {
	// The LSH property (§III-E): near-identical segments should land in
	// the same group far more often than random pairs.
	rng := rand.New(rand.NewSource(4))
	tree := buildTestTree(t, rng, 4, 8)
	sameNear, sameRand := 0, 0
	const trials = 400
	for i := 0; i < trials; i++ {
		a := randDNA(rng, 16)
		b := append([]byte(nil), a...)
		b[rng.Intn(16)] = "ACGT"[rng.Intn(4)] // <=1 substitution
		if tree.Group(a) == tree.Group(b) {
			sameNear++
		}
		if tree.Group(a) == tree.Group(randDNA(rng, 16)) {
			sameRand++
		}
	}
	if sameNear <= sameRand {
		t.Fatalf("LSH property violated: near=%d/%d random=%d/%d", sameNear, trials, sameRand, trials)
	}
	if float64(sameNear)/trials < 0.5 {
		t.Fatalf("near-identical collision rate too low: %d/%d", sameNear, trials)
	}
}

func TestGroupsForBranching(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tree := buildTestTree(t, rng, 4, 8)
	key := randDNA(rng, 16)
	exact := tree.GroupsFor(key, 0)
	if len(exact) != 1 || exact[0] != tree.Group(key) {
		t.Fatalf("eps=0 GroupsFor = %v, Group = %d", exact, tree.Group(key))
	}
	// With a huge epsilon every boundary straddles: all groups selected.
	all := tree.GroupsFor(key, 1000)
	if len(all) < 2 {
		t.Fatalf("eps=inf selected %d groups", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatal("GroupsFor result not sorted/deduplicated")
		}
	}
	// Monotone: a larger epsilon can only add groups.
	small := tree.GroupsFor(key, 1)
	if len(small) > len(all) {
		t.Fatal("larger eps returned fewer groups")
	}
}

func TestGroupsForContainsExactGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tree := buildTestTree(t, rng, 5, 6)
	for i := 0; i < 200; i++ {
		key := randDNA(rng, 16)
		want := tree.Group(key)
		found := false
		for _, g := range tree.GroupsFor(key, 2) {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("GroupsFor missing exact group %d", want)
		}
	}
}

func TestHalfDepth(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 16: 2, 1024: 5, 1 << 20: 10}
	for n, want := range cases {
		if got := HalfDepth(n); got != want {
			t.Errorf("HalfDepth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDegenerateSampleSingleLeaf(t *testing.T) {
	same := make([][]byte, 50)
	for i := range same {
		same[i] = []byte("ACGTACGT")
	}
	tree, err := Build(metric.Hamming{}, same, 4, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != 1 {
		t.Fatalf("leaves = %d", tree.Leaves())
	}
	if g := tree.Group([]byte("TTTTTTTT")); g < 0 || g >= 4 {
		t.Fatalf("group = %d", g)
	}
}

func TestGroupBalanceOnSample(t *testing.T) {
	// Hashing the very sample the tree was built from should spread load
	// across groups: no group should hold more than 3x its fair share.
	rng := rand.New(rand.NewSource(8))
	sample := sampleDNA(rng, 4000, 16)
	const groups = 8
	tree, err := Build(metric.Hamming{}, sample, 5, groups, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, groups)
	for _, k := range sample {
		counts[tree.Group(k)]++
	}
	fair := len(sample) / groups
	for g, c := range counts {
		if c > 3*fair {
			t.Fatalf("group %d holds %d of %d (fair share %d)", g, c, len(sample), fair)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tree := buildTestTree(t, rng, 4, 8)
	data, err := tree.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Depth() != tree.Depth() || back.Groups() != tree.Groups() || back.Leaves() != tree.Leaves() {
		t.Fatal("metadata mismatch after round trip")
	}
	for i := 0; i < 300; i++ {
		key := randDNA(rng, 16)
		if tree.Hash(key) != back.Hash(key) {
			t.Fatal("hash mismatch after round trip")
		}
		if tree.Group(key) != back.Group(key) {
			t.Fatal("group mismatch after round trip")
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var tr Tree
	if err := tr.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestProteinMetricTree(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := metric.ForKind(seq.Protein)
	const letters = "ARNDCQEGHILKMFPSTWYV"
	sample := make([][]byte, 1000)
	for i := range sample {
		k := make([]byte, 12)
		for j := range k {
			k[j] = letters[rng.Intn(len(letters))]
		}
		sample[i] = k
	}
	tree, err := Build(m, sample, 4, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	data, err := tree.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if tree.Group(sample[i]) != back.Group(sample[i]) {
			t.Fatal("protein tree round trip mismatch")
		}
	}
}
