// Package vphash implements the vantage-point prefix tree of §III-E/F: a
// depth-limited vp-tree used as a locality sensitive hash. Each node carries
// a binary prefix (root = 1; children shift left and set the low bit on the
// right branch), so the prefix of the leaf a segment routes to encodes the
// path taken and collides for similar segments. A cutoff depth bounds the
// hash cost and sets the resolution of the similarity groups.
//
// Leaf prefixes are assigned to storage groups with a greedy balance over
// the sample mass observed at build time, addressing the load-balancing
// hazard of similarity grouping (§II-A): heavily populated regions of
// sequence space are spread across groups as evenly as the leaf granularity
// allows.
package vphash

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sort"

	"mendel/internal/metric"
)

// Tree is an immutable vp-prefix hash tree shared by every node of a Mendel
// cluster. Build it once from a sample of the data, then hash any number of
// segments concurrently.
type Tree struct {
	metric  metric.Metric
	depth   int
	groups  int
	root    *pnode
	groupOf map[uint64]int // leaf prefix -> group
}

type pnode struct {
	vantage []byte
	mu      int
	left    *pnode
	right   *pnode
	prefix  uint64
	samples int // sample points that routed here (leaves only)
}

// Build constructs a prefix tree of at most the given depth over a sample of
// segments, assigning leaves to numGroups storage groups. The sample should
// be representative of the data to be indexed; a few thousand segments
// suffice. depth is the paper's threshold depth (§III-F); the effective
// number of leaves is at most 2^depth.
func Build(m metric.Metric, sample [][]byte, depth, numGroups int, seed int64) (*Tree, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("vphash: empty sample")
	}
	if depth < 0 {
		return nil, fmt.Errorf("vphash: negative depth %d", depth)
	}
	if numGroups <= 0 {
		return nil, fmt.Errorf("vphash: numGroups = %d", numGroups)
	}
	t := &Tree{metric: m, depth: depth, groups: numGroups}
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, len(sample))
	copy(keys, sample)
	t.root = build(m, rng, keys, 1, depth)
	t.assignGroups()
	return t, nil
}

// HalfDepth returns the paper's default threshold depth for a sample: half
// the depth of a balanced vp-tree over it (§V-A2: "the depth threshold is
// set to half the tree's depth").
func HalfDepth(sampleSize int) int {
	full := 0
	for n := sampleSize; n > 1; n /= 2 {
		full++
	}
	d := full / 2
	if d < 1 {
		d = 1
	}
	return d
}

func build(m metric.Metric, rng *rand.Rand, keys [][]byte, prefix uint64, depth int) *pnode {
	if depth == 0 || len(keys) < 2 {
		return &pnode{prefix: prefix, samples: len(keys)}
	}
	vantage := selectVantage(m, rng, keys)
	ds := make([]int, len(keys))
	for i, k := range keys {
		ds[i] = m.Distance(vantage, k)
	}
	sorted := append([]int(nil), ds...)
	sort.Ints(sorted)
	mu := sorted[len(sorted)/2]
	var left, right [][]byte
	for i, k := range keys {
		if ds[i] <= mu {
			left = append(left, k)
		} else {
			right = append(right, k)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// Degenerate sample region; stop splitting here.
		return &pnode{prefix: prefix, samples: len(keys)}
	}
	return &pnode{
		vantage: append([]byte(nil), vantage...),
		mu:      mu,
		prefix:  prefix,
		left:    build(m, rng, left, prefix<<1, depth-1),
		right:   build(m, rng, right, prefix<<1|1, depth-1),
	}
}

func selectVantage(m metric.Metric, rng *rand.Rand, keys [][]byte) []byte {
	const candidates, probes = 6, 16
	best, bestSpread := keys[0], -1.0
	for c := 0; c < candidates; c++ {
		cand := keys[rng.Intn(len(keys))]
		ds := make([]int, 0, probes)
		for p := 0; p < probes; p++ {
			ds = append(ds, m.Distance(cand, keys[rng.Intn(len(keys))]))
		}
		sort.Ints(ds)
		median := ds[len(ds)/2]
		spread := 0.0
		for _, d := range ds {
			diff := float64(d - median)
			spread += diff * diff
		}
		if spread > bestSpread {
			best, bestSpread = cand, spread
		}
	}
	return best
}

// assignGroups distributes leaf prefixes over groups, heaviest sample mass
// first onto the currently lightest group.
func (t *Tree) assignGroups() {
	var leaves []*pnode
	var walk func(n *pnode)
	walk = func(n *pnode) {
		if n == nil {
			return
		}
		if n.left == nil && n.right == nil {
			leaves = append(leaves, n)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	sort.Slice(leaves, func(a, b int) bool {
		if leaves[a].samples != leaves[b].samples {
			return leaves[a].samples > leaves[b].samples
		}
		return leaves[a].prefix < leaves[b].prefix
	})
	load := make([]int, t.groups)
	t.groupOf = make(map[uint64]int, len(leaves))
	for _, leaf := range leaves {
		g := 0
		for i := 1; i < t.groups; i++ {
			if load[i] < load[g] {
				g = i
			}
		}
		t.groupOf[leaf.prefix] = g
		load[g] += leaf.samples + 1
	}
}

// Depth returns the configured threshold depth.
func (t *Tree) Depth() int { return t.depth }

// Groups returns the number of storage groups the tree hashes into.
func (t *Tree) Groups() int { return t.groups }

// Leaves returns the number of leaf prefixes.
func (t *Tree) Leaves() int { return len(t.groupOf) }

// Hash routes key to its leaf and returns the leaf prefix. The prefix
// uniquely encodes the root-to-leaf path (§III-E).
func (t *Tree) Hash(key []byte) uint64 {
	n := t.root
	for n.left != nil {
		if t.metric.Distance(n.vantage, key) <= n.mu {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prefix
}

// Group returns the storage group for key, the first-tier hash of §V-A2.
func (t *Tree) Group(key []byte) int { return t.groupOf[t.Hash(key)] }

// GroupsFor returns every group key could plausibly collide into when
// searched with uncertainty radius eps: traversal branches both ways
// whenever the eps-ball around the key straddles a vantage boundary
// (the query-time multi-group case of §V-B). The result is deduplicated
// and sorted; eps = 0 degenerates to the single Group.
func (t *Tree) GroupsFor(key []byte, eps int) []int {
	seen := map[int]bool{}
	var visit func(n *pnode)
	visit = func(n *pnode) {
		for n.left != nil {
			d := t.metric.Distance(n.vantage, key)
			if d <= n.mu {
				if d+eps > n.mu {
					visit(n.right)
				}
				n = n.left
			} else {
				if d-eps <= n.mu {
					visit(n.left)
				}
				n = n.right
			}
		}
		seen[t.groupOf[n.prefix]] = true
	}
	visit(t.root)
	out := make([]int, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// GroupOfPrefix exposes the leaf-to-group assignment for diagnostics.
func (t *Tree) GroupOfPrefix(prefix uint64) (int, bool) {
	g, ok := t.groupOf[prefix]
	return g, ok
}

// wire structures for gob serialization, so one node can build the tree and
// ship it to the rest of the cluster during bootstrap.
type wireNode struct {
	Vantage []byte
	Mu      int
	Prefix  uint64
	Samples int
	Leaf    bool
}

type wireTree struct {
	Metric string
	Depth  int
	Groups int
	Nodes  []wireNode // preorder
	Assign map[uint64]int
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Tree) MarshalBinary() ([]byte, error) {
	var nodes []wireNode
	var walk func(n *pnode)
	walk = func(n *pnode) {
		if n == nil {
			return
		}
		nodes = append(nodes, wireNode{
			Vantage: n.vantage, Mu: n.mu, Prefix: n.prefix,
			Samples: n.samples, Leaf: n.left == nil,
		})
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(wireTree{
		Metric: t.metric.Name(), Depth: t.depth, Groups: t.groups,
		Nodes: nodes, Assign: t.groupOf,
	})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Tree) UnmarshalBinary(data []byte) error {
	var w wireTree
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("vphash: decode: %w", err)
	}
	m, err := metric.ByName(w.Metric)
	if err != nil {
		return err
	}
	pos := 0
	var rebuild func() *pnode
	rebuild = func() *pnode {
		if pos >= len(w.Nodes) {
			return nil
		}
		rec := w.Nodes[pos]
		pos++
		n := &pnode{vantage: rec.Vantage, mu: rec.Mu, prefix: rec.Prefix, samples: rec.Samples}
		if !rec.Leaf {
			n.left = rebuild()
			n.right = rebuild()
		}
		return n
	}
	root := rebuild()
	if root == nil || pos != len(w.Nodes) {
		return fmt.Errorf("vphash: malformed tree encoding")
	}
	t.metric = m
	t.depth = w.Depth
	t.groups = w.Groups
	t.root = root
	t.groupOf = w.Assign
	return nil
}
