package vphash

import (
	"math/rand"
	"testing"

	"mendel/internal/metric"
)

func TestGroupOfPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tree := buildTestTree(t, rng, 4, 6)
	key := randDNA(rng, 16)
	prefix := tree.Hash(key)
	g, ok := tree.GroupOfPrefix(prefix)
	if !ok {
		t.Fatal("hashed prefix unknown to assignment")
	}
	if g != tree.Group(key) {
		t.Fatalf("GroupOfPrefix = %d, Group = %d", g, tree.Group(key))
	}
	if _, ok := tree.GroupOfPrefix(0); ok {
		t.Fatal("prefix 0 should not exist")
	}
}

func TestEveryLeafPrefixAssigned(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	tree := buildTestTree(t, rng, 5, 4)
	// Hashing many keys must only ever produce assigned prefixes.
	for i := 0; i < 1000; i++ {
		prefix := tree.Hash(randDNA(rng, 16))
		if _, ok := tree.GroupOfPrefix(prefix); !ok {
			t.Fatalf("unassigned prefix %b", prefix)
		}
	}
}

func TestDepthZeroSingleGroup(t *testing.T) {
	tree, err := Build(metric.Hamming{}, [][]byte{[]byte("ACGT"), []byte("TGCA")}, 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != 1 {
		t.Fatalf("depth 0 leaves = %d", tree.Leaves())
	}
	if g := tree.Group([]byte("AAAA")); g < 0 || g >= 3 {
		t.Fatalf("group = %d", g)
	}
}
