package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testSinks() (*Registry, *Tracer) {
	reg := NewRegistry()
	reg.Counter("rpc_calls").Add(9)
	reg.Histogram("rpc_call_ns").Observe(1500)
	tr := NewTracer(8)
	root := tr.Start("search")
	root.Child("fanout").End()
	root.End()
	return reg, tr
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	h := Handler(testSinks())
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"rpc_calls 9\n", "rpc_call_ns_count 1\n", "rpc_call_ns_p95 "} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, h, "/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("json status = %d", code)
	}
	var snaps []Snapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("invalid JSON from /metrics: %v\n%s", err, body)
	}
	found := false
	for _, s := range snaps {
		if s.Name == "rpc_call_ns" && s.Kind == "histogram" && s.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("histogram snapshot missing from JSON: %s", body)
	}
}

func TestSpansEndpoint(t *testing.T) {
	h := Handler(testSinks())
	code, body := get(t, h, "/debug/spans")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "search ") || !strings.Contains(body, "  fanout ") {
		t.Fatalf("span tree not rendered:\n%s", body)
	}

	code, body = get(t, h, "/debug/spans?format=json")
	if code != http.StatusOK {
		t.Fatalf("json status = %d", code)
	}
	var spans []SpanSnapshot
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("invalid JSON from /debug/spans: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0].Name != "search" || len(spans[0].Children) != 1 {
		t.Fatalf("span JSON = %+v", spans)
	}

	if code, body = get(t, h, "/debug/spans?slow=1"); code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Fatalf("slow log should be empty: %d %q", code, body)
	}
}

func TestSpansEndpointN(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Start("q").End()
	}
	h := Handler(reg, tr)
	_, body := get(t, h, "/debug/spans?format=json&n=2")
	var spans []SpanSnapshot
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("n=2 returned %d spans", len(spans))
	}
}

func TestDebugEndpoints(t *testing.T) {
	h := Handler(testSinks())
	for _, url := range []string{"/debug/vars", "/debug/pprof/", "/debug/pprof/cmdline"} {
		if code, _ := get(t, h, url); code != http.StatusOK {
			t.Errorf("%s status = %d", url, code)
		}
	}
}

func TestNilSinksServe(t *testing.T) {
	h := Handler(nil, nil)
	if code, body := get(t, h, "/metrics"); code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Fatalf("/metrics with nil registry: %d %q", code, body)
	}
	if code, _ := get(t, h, "/debug/spans"); code != http.StatusOK {
		t.Fatalf("/debug/spans with nil tracer: status %d", code)
	}
}

func TestServeBindsAndAnswers(t *testing.T) {
	reg, tr := testSinks()
	srv, addr, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "rpc_calls 9") {
		t.Fatalf("served metrics wrong: %d %s", resp.StatusCode, body)
	}
	if _, _, err := Serve(addr, reg, tr); err == nil {
		t.Fatal("second bind of the same address should fail")
	}
}

func TestHealthEndpoint(t *testing.T) {
	reg, tr := testSinks()
	type row struct {
		Addr  string `json:"addr"`
		State string `json:"state"`
	}
	src := HealthSource(func() any {
		return []row{{Addr: "node-000", State: "up"}, {Addr: "node-001", State: "down"}}
	})
	h := HandlerWithHealth(reg, tr, nil, src)
	code, body := get(t, h, "/debug/health")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var rows []row
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("invalid JSON from /debug/health: %v\n%s", err, body)
	}
	if len(rows) != 2 || rows[0].Addr != "node-000" || rows[1].State != "down" {
		t.Fatalf("health rows = %+v", rows)
	}

	// Without a source the path 404s; the rest of the surface still works.
	h = HandlerWithHealth(reg, tr, nil, nil)
	if code, _ := get(t, h, "/debug/health"); code != http.StatusNotFound {
		t.Fatalf("nil source status = %d, want 404", code)
	}
	if code, _ := get(t, h, "/metrics"); code != http.StatusOK {
		t.Fatalf("metrics broken by nil health source: %d", code)
	}
}
