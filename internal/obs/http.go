package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// Handler builds the observability HTTP surface over a registry and tracer
// (either may be nil):
//
//	/metrics          plain-text metrics; ?format=json for a JSON snapshot
//	/metrics/history  windowed time-series JSON (?window=30s, ?nodes=1 for
//	                  the per-node breakdown); 404 until a TimeSeries is
//	                  attached
//	/debug/slo        SLO watchdog state (ok/warn/page) as JSON; 404 until
//	                  a Watchdog is attached
//	/debug/vars       expvar (process-global JSON, includes memstats)
//	/debug/pprof/*    the standard runtime profiles
//	/debug/spans      recent completed query span trees; ?slow=1 for the
//	                  slow-query log, ?format=json for machine-readable
//	                  output, ?n=K to bound the span count
//	/debug/trace/{id} the assembled span tree of one trace ID (local roots
//	                  merged via AssembleTrace, or the tree registered with
//	                  SetTraceSource); 404 for unknown IDs
//
// Every /metrics* and /debug/* response carries Cache-Control: no-store so
// polling clients and proxies never serve stale telemetry.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	return Surface{Registry: reg, Tracer: tr}.Handler()
}

// TraceSource resolves a 32-hex trace ID to its assembled cross-node span
// tree. The coordinator passes Cluster.FetchTrace-backed lookup so
// /debug/trace/{id} covers node-side spans; plain node processes use the
// tracer-local fallback.
type TraceSource func(traceID string) []SpanSnapshot

// HealthSource supplies the value served as JSON from /debug/health. The
// coordinator plugs in HealthMonitor.Snapshot (per-node up/suspect/down
// states); a standalone node serves its own inventory summary. The returned
// value must be JSON-encodable.
type HealthSource func() any

// ClusterHistory is the /metrics/history response body: the cluster-merged
// window plus (on request) the per-node series and any unreachable nodes.
type ClusterHistory struct {
	Merged History
	Nodes  []History `json:",omitempty"`
	Down   []string  `json:",omitempty"`
}

// HistorySource supplies windowed histories for /metrics/history. The
// coordinator backs it with Cluster.HistoryDetailed so one endpoint covers
// the whole cluster; perNode requests the unmerged per-node series too.
type HistorySource func(window time.Duration, perNode bool) (ClusterHistory, error)

// Route is an application (pattern, handler) pair mounted onto the
// observability mux, letting a process serve its API and its observability
// surface from one listener (the gateway mounts /v1/search this way).
// Patterns follow http.ServeMux rules and must not collide with the
// observability paths.
type Route struct {
	Pattern string
	Handler http.Handler
}

// Surface bundles every sink the observability HTTP endpoints draw from.
// All fields are optional: nil sinks serve empty bodies or 404, never
// panic. The positional Handler*/Serve* helpers delegate here; new call
// sites should build a Surface directly.
type Surface struct {
	Registry *Registry
	Tracer   *Tracer
	Trace    TraceSource
	Health   HealthSource
	// History serves the local process's windowed series at
	// /metrics/history.
	History *TimeSeries
	// Cluster, when set, overrides History at /metrics/history with a
	// cluster-wide view (the coordinator wires Cluster.HistoryDetailed).
	Cluster HistorySource
	// SLO serves the watchdog state at /debug/slo.
	SLO    *Watchdog
	Routes []Route
}

// Handler builds the mux for this surface. See Handler (package function)
// for the endpoint list.
func (s Surface) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.Routes {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		if s.Health == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Health())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if s.Registry == nil {
				w.Write([]byte("[]\n"))
				return
			}
			json.NewEncoder(w).Encode(s.Registry.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Registry == nil {
			return
		}
		s.Registry.WriteText(w)
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		if s.Cluster == nil && s.History == nil {
			http.NotFound(w, r)
			return
		}
		var window time.Duration
		if v := r.URL.Query().Get("window"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad window: "+err.Error(), http.StatusBadRequest)
				return
			}
			window = d
		}
		perNode := r.URL.Query().Get("nodes") != ""
		var ch ClusterHistory
		if s.Cluster != nil {
			var err error
			ch, err = s.Cluster(window, perNode)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
		} else {
			local := s.History.History(window)
			ch.Merged = local
			if perNode {
				ch.Nodes = []History{local}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ch)
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		if s.SLO == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.SLO.Status())
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			n, _ = strconv.Atoi(v)
		}
		var spans []SpanSnapshot
		if s.Tracer != nil {
			if r.URL.Query().Get("slow") != "" {
				spans = s.Tracer.Slow(n)
			} else {
				spans = s.Tracer.Recent(n)
			}
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, sp := range spans {
			sp.WriteTo(w)
		}
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
		var spans []SpanSnapshot
		switch {
		case id == "":
			// fall through to 404
		case s.Trace != nil:
			spans = s.Trace(id)
		case s.Tracer != nil:
			spans = AssembleTrace(s.Tracer.Trace(id))
		}
		if len(spans) == 0 {
			http.NotFound(w, r)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, sp := range spans {
			sp.WriteTo(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return noStoreTelemetry(mux)
}

// noStoreTelemetry stamps Cache-Control: no-store on every /metrics* and
// /debug/* response before the handler runs, so intermediaries and polling
// clients (mendel top, stats -watch, CI scrapes) never see stale
// telemetry. Application routes mounted on the same mux are untouched.
func noStoreTelemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Path
		if p == "/metrics" || strings.HasPrefix(p, "/metrics/") || strings.HasPrefix(p, "/debug/") {
			w.Header().Set("Cache-Control", "no-store")
		}
		next.ServeHTTP(w, r)
	})
}

// Serve binds addr (":0" picks a free port), serves this surface from a
// background goroutine, and returns the server (for Shutdown/Close) plus
// the bound address.
func (s Surface) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// HandlerWithTraces is Handler with an optional cross-node trace source
// backing /debug/trace/{id}. A nil src falls back to the tracer's own
// retained roots. All three sinks may be nil: nil reg serves empty metrics,
// nil tr serves empty span lists and 404 traces — never a panic (the
// documented "either may be nil" contract).
func HandlerWithTraces(reg *Registry, tr *Tracer, src TraceSource) http.Handler {
	return Surface{Registry: reg, Tracer: tr, Trace: src}.Handler()
}

// HandlerWithHealth is HandlerWithTraces with an optional health source
// backing /debug/health. A nil health source serves 404 from that path.
func HandlerWithHealth(reg *Registry, tr *Tracer, src TraceSource, health HealthSource) http.Handler {
	return Surface{Registry: reg, Tracer: tr, Trace: src, Health: health}.Handler()
}

// HandlerWithRoutes is HandlerWithHealth plus application routes mounted
// onto the same mux.
func HandlerWithRoutes(reg *Registry, tr *Tracer, src TraceSource, health HealthSource, routes ...Route) http.Handler {
	return Surface{Registry: reg, Tracer: tr, Trace: src, Health: health, Routes: routes}.Handler()
}

// Publish exposes the registry under the given expvar name, so the JSON
// snapshot also appears in /debug/vars alongside the runtime's variables.
// Publishing the same name twice panics (an expvar rule), so callers should
// publish once per process.
func Publish(name string, reg *Registry) {
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}

// Serve binds addr (":0" picks a free port), serves the observability
// surface from a background goroutine, and returns the server (for
// Shutdown/Close) plus the bound address. It is a convenience for CLIs.
func Serve(addr string, reg *Registry, tr *Tracer) (*http.Server, string, error) {
	return ServeWithTraces(addr, reg, tr, nil)
}

// ServeWithTraces is Serve with a cross-node trace source backing
// /debug/trace/{id} (see HandlerWithTraces).
func ServeWithTraces(addr string, reg *Registry, tr *Tracer, src TraceSource) (*http.Server, string, error) {
	return ServeWithHealth(addr, reg, tr, src, nil)
}

// ServeWithHealth is ServeWithTraces with a health source backing
// /debug/health (see HandlerWithHealth).
func ServeWithHealth(addr string, reg *Registry, tr *Tracer, src TraceSource, health HealthSource) (*http.Server, string, error) {
	return ServeWithRoutes(addr, reg, tr, src, health)
}

// ServeWithRoutes is ServeWithHealth plus application routes mounted onto
// the same mux (see HandlerWithRoutes).
func ServeWithRoutes(addr string, reg *Registry, tr *Tracer, src TraceSource, health HealthSource, routes ...Route) (*http.Server, string, error) {
	return Surface{Registry: reg, Tracer: tr, Trace: src, Health: health, Routes: routes}.Serve(addr)
}
