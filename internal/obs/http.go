package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Handler builds the observability HTTP surface over a registry and tracer
// (either may be nil):
//
//	/metrics          plain-text metrics; ?format=json for a JSON snapshot
//	/debug/vars       expvar (process-global JSON, includes memstats)
//	/debug/pprof/*    the standard runtime profiles
//	/debug/spans      recent completed query span trees; ?slow=1 for the
//	                  slow-query log, ?format=json for machine-readable
//	                  output, ?n=K to bound the span count
//	/debug/trace/{id} the assembled span tree of one trace ID (local roots
//	                  merged via AssembleTrace, or the tree registered with
//	                  SetTraceSource); 404 for unknown IDs
func Handler(reg *Registry, tr *Tracer) http.Handler {
	return HandlerWithTraces(reg, tr, nil)
}

// TraceSource resolves a 32-hex trace ID to its assembled cross-node span
// tree. The coordinator passes Cluster.FetchTrace-backed lookup so
// /debug/trace/{id} covers node-side spans; plain node processes use the
// tracer-local fallback.
type TraceSource func(traceID string) []SpanSnapshot

// HealthSource supplies the value served as JSON from /debug/health. The
// coordinator plugs in HealthMonitor.Snapshot (per-node up/suspect/down
// states); a standalone node serves its own inventory summary. The returned
// value must be JSON-encodable.
type HealthSource func() any

// HandlerWithTraces is Handler with an optional cross-node trace source
// backing /debug/trace/{id}. A nil src falls back to the tracer's own
// retained roots. All three sinks may be nil: nil reg serves empty metrics,
// nil tr serves empty span lists and 404 traces — never a panic (the
// documented "either may be nil" contract).
func HandlerWithTraces(reg *Registry, tr *Tracer, src TraceSource) http.Handler {
	return HandlerWithHealth(reg, tr, src, nil)
}

// Route is an application (pattern, handler) pair mounted onto the
// observability mux, letting a process serve its API and its observability
// surface from one listener (the gateway mounts /v1/search this way).
// Patterns follow http.ServeMux rules and must not collide with the
// observability paths.
type Route struct {
	Pattern string
	Handler http.Handler
}

// HandlerWithHealth is HandlerWithTraces with an optional health source
// backing /debug/health. A nil health source serves 404 from that path.
func HandlerWithHealth(reg *Registry, tr *Tracer, src TraceSource, health HealthSource) http.Handler {
	return HandlerWithRoutes(reg, tr, src, health)
}

// HandlerWithRoutes is HandlerWithHealth plus application routes mounted
// onto the same mux.
func HandlerWithRoutes(reg *Registry, tr *Tracer, src TraceSource, health HealthSource, routes ...Route) http.Handler {
	mux := http.NewServeMux()
	for _, rt := range routes {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		if health == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(health())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if reg == nil {
				w.Write([]byte("[]\n"))
				return
			}
			json.NewEncoder(w).Encode(reg.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if reg == nil {
			return
		}
		reg.WriteText(w)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			n, _ = strconv.Atoi(v)
		}
		var spans []SpanSnapshot
		if tr != nil {
			if r.URL.Query().Get("slow") != "" {
				spans = tr.Slow(n)
			} else {
				spans = tr.Recent(n)
			}
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, s := range spans {
			s.WriteTo(w)
		}
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
		var spans []SpanSnapshot
		switch {
		case id == "":
			// fall through to 404
		case src != nil:
			spans = src(id)
		case tr != nil:
			spans = AssembleTrace(tr.Trace(id))
		}
		if len(spans) == 0 {
			http.NotFound(w, r)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, s := range spans {
			s.WriteTo(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Publish exposes the registry under the given expvar name, so the JSON
// snapshot also appears in /debug/vars alongside the runtime's variables.
// Publishing the same name twice panics (an expvar rule), so callers should
// publish once per process.
func Publish(name string, reg *Registry) {
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}

// Serve binds addr (":0" picks a free port), serves the observability
// surface from a background goroutine, and returns the server (for
// Shutdown/Close) plus the bound address. It is a convenience for CLIs.
func Serve(addr string, reg *Registry, tr *Tracer) (*http.Server, string, error) {
	return ServeWithTraces(addr, reg, tr, nil)
}

// ServeWithTraces is Serve with a cross-node trace source backing
// /debug/trace/{id} (see HandlerWithTraces).
func ServeWithTraces(addr string, reg *Registry, tr *Tracer, src TraceSource) (*http.Server, string, error) {
	return ServeWithHealth(addr, reg, tr, src, nil)
}

// ServeWithHealth is ServeWithTraces with a health source backing
// /debug/health (see HandlerWithHealth).
func ServeWithHealth(addr string, reg *Registry, tr *Tracer, src TraceSource, health HealthSource) (*http.Server, string, error) {
	return ServeWithRoutes(addr, reg, tr, src, health)
}

// ServeWithRoutes is ServeWithHealth plus application routes mounted onto
// the same mux (see HandlerWithRoutes).
func ServeWithRoutes(addr string, reg *Registry, tr *Tracer, src TraceSource, health HealthSource, routes ...Route) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: HandlerWithRoutes(reg, tr, src, health, routes...)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
