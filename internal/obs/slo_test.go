package obs

import (
	"bytes"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sloHarness drives a watchdog through deterministic time: a fake clock, a
// shed-rate ratio objective and a latency objective over short burn-rate
// windows, evaluated on every sample like Watch would.
type sloHarness struct {
	reg *Registry
	clk *fakeClock
	ts  *TimeSeries
	w   *Watchdog
}

func newSLOHarness(t *testing.T, logBuf *bytes.Buffer) *sloHarness {
	t.Helper()
	reg := NewRegistry()
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 100, Clock: clk.Now})
	var logger *slog.Logger
	if logBuf != nil {
		logger = NewLogger(logBuf, slog.LevelInfo)
	}
	w := NewWatchdog(ts, SLOConfig{
		Fast: 3 * time.Second,
		Slow: 10 * time.Second,
		Objectives: []Objective{
			{
				Name: "shed_rate", Kind: ObjectiveRatio,
				Num: "gw_shed_total", Denom: "gw_requests_total",
				Threshold: 0.05, MinEvents: 5,
			},
		},
		Logger: logger,
	})
	w.Watch()
	return &sloHarness{reg: reg, clk: clk, ts: ts, w: w}
}

// tick advances one interval with the given request/shed activity.
func (h *sloHarness) tick(requests, sheds int64) {
	h.reg.Counter("gw_requests_total").Add(requests)
	h.reg.Counter("gw_shed_total").Add(sheds)
	h.clk.Sample(h.ts, time.Second)
}

func TestWatchdogBurnRateTransitions(t *testing.T) {
	var logBuf bytes.Buffer
	h := newSLOHarness(t, &logBuf)

	// Healthy traffic: 20 req/s, no sheds → ok.
	for i := 0; i < 12; i++ {
		h.tick(20, 0)
	}
	if got := h.w.Status().Level; got != "ok" {
		t.Fatalf("healthy level = %s, want ok", got)
	}

	// Overload begins: 50%% shed rate. The fast window (3s) breaches before
	// the slow window (10s) has absorbed enough bad intervals → warn first.
	sawWarn := false
	for i := 0; i < 20; i++ {
		h.tick(20, 10)
		level := h.w.Status().Level
		if level == "warn" {
			sawWarn = true
		}
		if level == "page" {
			break
		}
	}
	if !sawWarn {
		t.Fatal("never saw warn between ok and page")
	}
	if got := h.w.Status().Level; got != "page" {
		t.Fatalf("sustained overload level = %s, want page", got)
	}
	st := h.w.Status()
	if !st.Objectives[0].FastBreach || !st.Objectives[0].SlowBreach {
		t.Fatalf("page without both windows breaching: %+v", st.Objectives[0])
	}

	// Load stops entirely. Windows drain below MinEvents → not breaching →
	// recover to ok (no-data must read as healthy or the page never clears).
	for i := 0; i < 15; i++ {
		h.tick(0, 0)
	}
	if got := h.w.Status().Level; got != "ok" {
		t.Fatalf("post-overload level = %s, want ok (recovered)", got)
	}
	if tr := h.w.Status().Transitions; tr < 3 {
		t.Fatalf("transitions = %d, want >= 3 (ok→warn→page→...→ok)", tr)
	}

	// Transition log lines carry the objective and both levels.
	logs := logBuf.String()
	for _, want := range []string{"slo transition", `"objective":"shed_rate"`, `"to":"page"`, `"to":"ok"`} {
		if !strings.Contains(logs, want) {
			t.Fatalf("transition log missing %q in:\n%s", want, logs)
		}
	}
}

func TestWatchdogRecoverViaHealthyTraffic(t *testing.T) {
	h := newSLOHarness(t, nil)
	for i := 0; i < 12; i++ {
		h.tick(20, 15)
	}
	if got := h.w.Status().Level; got != "page" {
		t.Fatalf("overload level = %s, want page", got)
	}
	// Healthy traffic (not silence) must also recover once the bad
	// intervals age out of both windows.
	for i := 0; i < 15; i++ {
		h.tick(20, 0)
	}
	if got := h.w.Status().Level; got != "ok" {
		t.Fatalf("recovered level = %s, want ok", got)
	}
}

func TestWatchdogLatencyObjective(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 100, Clock: clk.Now})
	w := NewWatchdog(ts, SLOConfig{
		Fast:       3 * time.Second,
		Slow:       6 * time.Second,
		Objectives: GatewayObjectives(2*time.Millisecond, 0, 0, 0),
	})
	w.Watch()

	for i := 0; i < 8; i++ {
		for j := 0; j < 10; j++ {
			reg.Histogram("gw_search_ns").Observe(500_000) // 0.5ms, healthy
		}
		clk.Sample(ts, time.Second)
	}
	if got := w.Status().Level; got != "ok" {
		t.Fatalf("healthy p95 level = %s, want ok", got)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 10; j++ {
			reg.Histogram("gw_search_ns").Observe(50_000_000) // 50ms
		}
		clk.Sample(ts, time.Second)
	}
	if got := w.Status().Level; got != "page" {
		t.Fatalf("slow p95 level = %s, want page", got)
	}
}

func TestWatchdogGrowthObjective(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 100, Clock: clk.Now})
	w := NewWatchdog(ts, SLOConfig{
		Fast:       3 * time.Second,
		Slow:       6 * time.Second,
		Objectives: GatewayObjectives(0, 0, 0, 1.0), // page above +1 hint/s
	})
	w.Watch()

	for i := 0; i < 8; i++ {
		reg.Gauge("hints_pending").Set(0)
		clk.Sample(ts, time.Second)
	}
	if got := w.Status().Level; got != "ok" {
		t.Fatalf("flat gauge level = %s, want ok", got)
	}
	for i := 1; i <= 8; i++ {
		reg.Gauge("hints_pending").Set(int64(i * 5)) // +5/s
		clk.Sample(ts, time.Second)
	}
	if got := w.Status().Level; got != "page" {
		t.Fatalf("growing gauge level = %s, want page", got)
	}
}

func TestWatchdogBreachHookAndProfileCapture(t *testing.T) {
	var logBuf bytes.Buffer
	h := newSLOHarness(t, &logBuf)

	dir := filepath.Join(t.TempDir(), "profiles")
	pc, err := NewProfileCapturer(ProfileConfig{Dir: dir, CPUDuration: 10 * time.Millisecond, MaxSets: 2})
	if err != nil {
		t.Fatal(err)
	}
	var breaches []string
	h.w.OnBreach(func(st ObjectiveStatus) { breaches = append(breaches, st.Name+":"+st.Level) })

	for i := 0; i < 20; i++ {
		h.tick(20, 15)
	}
	if len(breaches) == 0 {
		t.Fatal("no breach hooks fired across ok→warn→page")
	}
	if first := breaches[0]; first != "shed_rate:warn" && first != "shed_rate:page" {
		t.Fatalf("first breach = %s", first)
	}

	// Synchronous capture (the watchdog's OnBreach wrapper runs it async).
	if !pc.Capture("shed_rate") {
		t.Fatal("capture reported failure")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cpu, heap bool
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), "_cpu.pprof") {
			cpu = true
		}
		if strings.HasSuffix(e.Name(), "_heap.pprof") {
			heap = true
		}
	}
	if !cpu || !heap {
		t.Fatalf("capture set incomplete: cpu=%v heap=%v (%d entries)", cpu, heap, len(entries))
	}

	// The ring stays bounded at MaxSets capture sets.
	for i := 0; i < 4; i++ {
		if !pc.Capture("again") {
			t.Fatalf("capture %d skipped unexpectedly", i)
		}
		time.Sleep(2 * time.Millisecond) // distinct timestamps for the prune order
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) > 2*2 {
		t.Fatalf("ring holds %d files, want <= 4 (2 sets × cpu+heap)", len(entries))
	}
	if pc.Captured() < 5 {
		t.Fatalf("captured = %d, want >= 5", pc.Captured())
	}
}

func TestWatchdogNilSafe(t *testing.T) {
	var w *Watchdog
	if got := w.Status().Level; got != "ok" {
		t.Fatalf("nil watchdog level = %s, want ok", got)
	}
	w.OnBreach(func(ObjectiveStatus) {})
	w.Evaluate(time.Now())
	var pc *ProfileCapturer
	pc.OnBreach(ObjectiveStatus{})
	if pc.Capture("x") {
		t.Fatal("nil capturer must not capture")
	}
}
