package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("search")
	root.SetAttr("query_len", 130)
	d := root.Child("decompose")
	d.End()
	f := root.Child("fanout")
	f.AddTimed("knn", 3*time.Millisecond, Attr{Key: "visits", Value: 77})
	f.AddTimed("ungapped", 2*time.Millisecond)
	f.End()
	root.Child("gapped").End()
	root.End()

	recent := tr.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("recent = %d spans, want 1", len(recent))
	}
	snap := recent[0]
	if snap.Name != "search" {
		t.Fatalf("root name = %q", snap.Name)
	}
	// Children must appear in creation order: decompose, fanout, gapped.
	var names []string
	for _, c := range snap.Children {
		names = append(names, c.Name)
	}
	if strings.Join(names, ",") != "decompose,fanout,gapped" {
		t.Fatalf("child order = %v", names)
	}
	knn := snap.Find("knn")
	if knn == nil {
		t.Fatal("knn span missing")
	}
	if time.Duration(knn.NS) != 3*time.Millisecond {
		t.Fatalf("AddTimed duration = %v", time.Duration(knn.NS))
	}
	if len(knn.Attrs) != 1 || knn.Attrs[0].Key != "visits" || knn.Attrs[0].Value != 77 {
		t.Fatalf("knn attrs = %+v", knn.Attrs)
	}
	// The synthetic child must nest under fanout, not the root.
	fanout := snap.Find("fanout")
	if fanout.Find("knn") == nil {
		t.Fatal("knn not nested under fanout")
	}
	if got := snap.Attrs[0]; got.Key != "query_len" || got.Value != 130 {
		t.Fatalf("root attrs = %+v", snap.Attrs)
	}
	if snap.Find("nope") != nil {
		t.Fatal("Find invented a span")
	}
}

func TestEndIdempotentAndChildNotPublished(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("q")
	c := root.Child("stage")
	c.End()
	c.End() // double End of a child: no-op
	root.End()
	root.End() // double End of a root: must not publish twice
	if got := len(tr.Recent(0)); got != 1 {
		t.Fatalf("recent = %d, want 1 (double End republished or child leaked)", got)
	}
}

func TestRecentRingBoundAndOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.Start("q")
		sp.SetAttr("i", int64(i))
		sp.End()
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(recent))
	}
	// Newest first: 9, 8, 7, 6.
	for k, want := range []int64{9, 8, 7, 6} {
		if recent[k].Attrs[0].Value != want {
			t.Fatalf("recent[%d] = span %d, want %d", k, recent[k].Attrs[0].Value, want)
		}
	}
	if got := len(tr.Recent(2)); got != 2 {
		t.Fatalf("Recent(2) = %d spans", got)
	}
}

func TestSlowLogAndCallback(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSlowThreshold(time.Nanosecond) // everything is slow
	var mu sync.Mutex
	var calls []string
	tr.OnSlow(func(s SpanSnapshot) {
		mu.Lock()
		calls = append(calls, s.Name)
		mu.Unlock()
	})
	tr.Start("slow-one").End()
	if got := tr.Slow(0); len(got) != 1 || got[0].Name != "slow-one" {
		t.Fatalf("slow ring = %+v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || calls[0] != "slow-one" {
		t.Fatalf("onSlow calls = %v", calls)
	}
}

func TestFastSpansSkipSlowLog(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSlowThreshold(time.Hour)
	tr.Start("fast").End()
	if got := tr.Slow(0); len(got) != 0 {
		t.Fatalf("fast span landed in slow log: %+v", got)
	}
	if got := tr.Recent(0); len(got) != 1 {
		t.Fatalf("fast span missing from recent: %+v", got)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x") // nil
	sp.SetAttr("k", 1)
	sp.AddTimed("t", time.Second)
	child := sp.Child("c")
	child.End()
	sp.End()
	if sp.Duration() != 0 {
		t.Fatal("nil span has a duration")
	}
	if tr.Recent(0) != nil || tr.Slow(0) != nil {
		t.Fatal("nil tracer returned spans")
	}
	tr.SetSlowThreshold(time.Second)
	tr.OnSlow(func(SpanSnapshot) {})
}

func TestWriteToRendersIndentedTree(t *testing.T) {
	tr := NewTracer(1)
	root := tr.Start("search")
	root.SetAttr("hits", 3)
	root.Child("fanout").End()
	root.End()
	var sb strings.Builder
	if _, err := tr.Recent(1)[0].WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "search ") || !strings.Contains(out, "[hits=3]") {
		t.Fatalf("root line malformed:\n%s", out)
	}
	if !strings.Contains(out, "\n  fanout ") {
		t.Fatalf("child not indented:\n%s", out)
	}
}

// TestConcurrentChildAttachment mirrors the group entry point: many
// goroutines attach timed children and attributes to one span while the
// owner keeps annotating it. Run with -race.
func TestConcurrentChildAttachment(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("group_search")
	var wg sync.WaitGroup
	const members = 8
	wg.Add(members)
	for i := 0; i < members; i++ {
		go func(i int) {
			defer wg.Done()
			root.AddTimed("local", time.Duration(i)*time.Millisecond, Attr{Key: "anchors", Value: int64(i)})
			root.SetAttr("last", int64(i))
		}(i)
	}
	wg.Wait()
	root.End()
	snap := tr.Recent(1)[0]
	if len(snap.Children) != members {
		t.Fatalf("children = %d, want %d", len(snap.Children), members)
	}
}
