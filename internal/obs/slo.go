package obs

import (
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// AlertLevel is the severity of an SLO objective or of the watchdog as a
// whole. Levels are ordered: Page > Warn > OK.
type AlertLevel int

const (
	LevelOK AlertLevel = iota
	LevelWarn
	LevelPage
)

func (l AlertLevel) String() string {
	switch l {
	case LevelWarn:
		return "warn"
	case LevelPage:
		return "page"
	default:
		return "ok"
	}
}

// ObjectiveKind selects how an Objective is evaluated against a History
// window.
type ObjectiveKind string

const (
	// ObjectiveLatency breaches when the windowed q-quantile of Hist
	// exceeds ThresholdNS.
	ObjectiveLatency ObjectiveKind = "latency"
	// ObjectiveRatio breaches when sum(Num deltas)/sum(Denom deltas) over
	// the window exceeds Threshold (a fraction, e.g. 0.05 = 5%).
	ObjectiveRatio ObjectiveKind = "ratio"
	// ObjectiveGrowth breaches when the Gauge's slope over the window
	// exceeds Threshold units per second.
	ObjectiveGrowth ObjectiveKind = "growth"
)

// Objective is one SLO target evaluated over both burn-rate windows.
type Objective struct {
	// Name labels the objective in /debug/slo and transition logs.
	Name string
	Kind ObjectiveKind

	// Hist + Quantile apply to ObjectiveLatency (e.g. "gw_search_ns", 0.95).
	Hist     string
	Quantile float64
	// Num / Denom apply to ObjectiveRatio (e.g. "gw_shed_total" over
	// "gw_requests_total").
	Num   string
	Denom string
	// Gauge applies to ObjectiveGrowth (e.g. "hints_pending").
	Gauge string

	// Threshold is the breach boundary: nanoseconds for latency, a
	// fraction for ratio, units/second for growth.
	Threshold float64

	// MinEvents is the minimum window activity (histogram observations or
	// denominator delta) required before the objective can breach. Below
	// it the window counts as healthy — no traffic is not an outage, and
	// this is what lets a breached objective recover once load stops.
	// Defaults to 1.
	MinEvents int64
}

// windowValue evaluates the objective over the trailing window d,
// returning the measured value and whether the window had enough activity
// to judge.
func (o Objective) windowValue(h History, d time.Duration) (float64, bool) {
	minEvents := o.MinEvents
	if minEvents <= 0 {
		minEvents = 1
	}
	switch o.Kind {
	case ObjectiveLatency:
		if h.HistCount(o.Hist, d) < minEvents {
			return 0, false
		}
		return float64(h.Quantile(o.Hist, o.Quantile, d)), true
	case ObjectiveRatio:
		denom := h.CounterSum(o.Denom, d)
		if denom < minEvents {
			return 0, false
		}
		return float64(h.CounterSum(o.Num, d)) / float64(denom), true
	case ObjectiveGrowth:
		if len(h.Window(d).Points) < 2 {
			return 0, false
		}
		return h.GaugeSlope(o.Gauge, d), true
	default:
		return 0, false
	}
}

// SLOConfig shapes a Watchdog.
type SLOConfig struct {
	// Fast and Slow are the burn-rate windows: both breaching pages, one
	// breaching warns. Defaults: 30s fast, 5m slow.
	Fast time.Duration
	Slow time.Duration
	// Objectives are the targets to watch. Empty means the watchdog stays
	// permanently ok.
	Objectives []Objective
	// Logger receives one structured record per level transition; nil
	// disables logging.
	Logger *slog.Logger
}

// ObjectiveStatus is one objective's current evaluation, as served at
// /debug/slo.
type ObjectiveStatus struct {
	Name       string
	Kind       ObjectiveKind
	Level      string
	FastBreach bool
	SlowBreach bool
	// FastValue / SlowValue are the measured values over each window
	// (NaN-free; 0 when the window lacked activity).
	FastValue float64
	SlowValue float64
	Threshold float64
	// Since is when the objective entered its current level.
	Since time.Time
}

// SLOStatus is the watchdog's full state: the worst objective level plus
// every objective's detail.
type SLOStatus struct {
	Level       string
	EvaluatedAt time.Time
	Fast        time.Duration
	Slow        time.Duration
	Objectives  []ObjectiveStatus
	// Transitions counts level changes since start — a cheap way for
	// scripts to detect "breached then recovered" without polling every
	// sample.
	Transitions int64
}

// Watchdog evaluates SLO objectives against a TimeSeries on every sample,
// maintains per-objective alert levels with fast/slow burn-rate windows,
// logs transitions, and fires breach hooks (e.g. profile capture) on
// upward transitions. Attach it with Watch, or call Evaluate directly
// under a deterministic clock.
type Watchdog struct {
	ts  *TimeSeries
	cfg SLOConfig

	mu          sync.Mutex
	levels      []AlertLevel
	since       []time.Time
	statuses    []ObjectiveStatus
	level       AlertLevel
	evaluatedAt time.Time
	transitions int64
	onBreach    []func(ObjectiveStatus)
}

// NewWatchdog builds a watchdog over ts. It does not observe samples until
// Watch is called.
func NewWatchdog(ts *TimeSeries, cfg SLOConfig) *Watchdog {
	if cfg.Fast <= 0 {
		cfg.Fast = 30 * time.Second
	}
	if cfg.Slow <= 0 {
		cfg.Slow = 5 * time.Minute
	}
	if cfg.Slow < cfg.Fast {
		cfg.Slow = cfg.Fast
	}
	w := &Watchdog{
		ts:       ts,
		cfg:      cfg,
		levels:   make([]AlertLevel, len(cfg.Objectives)),
		since:    make([]time.Time, len(cfg.Objectives)),
		statuses: make([]ObjectiveStatus, len(cfg.Objectives)),
	}
	for i, o := range cfg.Objectives {
		w.statuses[i] = ObjectiveStatus{Name: o.Name, Kind: o.Kind, Level: LevelOK.String(), Threshold: o.Threshold}
	}
	return w
}

// Watch registers the watchdog on its TimeSeries so every Sample triggers
// an evaluation.
func (w *Watchdog) Watch() {
	if w == nil || w.ts == nil {
		return
	}
	w.ts.OnSample(func(p Point) { w.Evaluate(p.T) })
}

// OnBreach registers fn to run whenever an objective's level rises (ok→warn,
// ok→page, warn→page). fn runs synchronously inside Evaluate; spawn a
// goroutine for slow work such as profile capture.
func (w *Watchdog) OnBreach(fn func(ObjectiveStatus)) {
	if w == nil || fn == nil {
		return
	}
	w.mu.Lock()
	w.onBreach = append(w.onBreach, fn)
	w.mu.Unlock()
}

// Evaluate re-judges every objective against the TimeSeries history as of
// now and returns the resulting status. Called automatically per sample
// once Watch is active.
func (w *Watchdog) Evaluate(now time.Time) SLOStatus {
	if w == nil {
		return SLOStatus{Level: LevelOK.String()}
	}
	h := w.ts.History(w.cfg.Slow)

	w.mu.Lock()
	var fired []ObjectiveStatus
	worst := LevelOK
	for i, o := range w.cfg.Objectives {
		fastVal, fastOK := o.windowValue(h, w.cfg.Fast)
		slowVal, slowOK := o.windowValue(h, w.cfg.Slow)
		fastBreach := fastOK && fastVal > o.Threshold
		slowBreach := slowOK && slowVal > o.Threshold
		level := LevelOK
		switch {
		case fastBreach && slowBreach:
			level = LevelPage
		case fastBreach || slowBreach:
			level = LevelWarn
		}
		prev := w.levels[i]
		if level != prev {
			w.transitions++
			w.since[i] = now
			w.levels[i] = level
			if w.cfg.Logger != nil {
				w.cfg.Logger.Info("slo transition",
					slog.String("objective", o.Name),
					slog.String("from", prev.String()),
					slog.String("to", level.String()),
					slog.Bool("fast_breach", fastBreach),
					slog.Bool("slow_breach", slowBreach),
					slog.String("fast_value", fmt.Sprintf("%g", fastVal)),
					slog.String("slow_value", fmt.Sprintf("%g", slowVal)),
					slog.String("threshold", fmt.Sprintf("%g", o.Threshold)),
				)
			}
		}
		if w.since[i].IsZero() {
			w.since[i] = now
		}
		st := ObjectiveStatus{
			Name:       o.Name,
			Kind:       o.Kind,
			Level:      level.String(),
			FastBreach: fastBreach,
			SlowBreach: slowBreach,
			FastValue:  fastVal,
			SlowValue:  slowVal,
			Threshold:  o.Threshold,
			Since:      w.since[i],
		}
		w.statuses[i] = st
		if level > prev {
			fired = append(fired, st)
		}
		if level > worst {
			worst = level
		}
	}
	w.level = worst
	w.evaluatedAt = now
	status := w.statusLocked()
	hooks := w.onBreach
	w.mu.Unlock()

	for _, st := range fired {
		for _, fn := range hooks {
			fn(st)
		}
	}
	return status
}

// Status returns the most recent evaluation without re-evaluating. Safe on
// nil (permanently ok).
func (w *Watchdog) Status() SLOStatus {
	if w == nil {
		return SLOStatus{Level: LevelOK.String()}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.statusLocked()
}

func (w *Watchdog) statusLocked() SLOStatus {
	out := SLOStatus{
		Level:       w.level.String(),
		EvaluatedAt: w.evaluatedAt,
		Fast:        w.cfg.Fast,
		Slow:        w.cfg.Slow,
		Objectives:  make([]ObjectiveStatus, len(w.statuses)),
		Transitions: w.transitions,
	}
	copy(out.Objectives, w.statuses)
	return out
}

// GatewayObjectives builds the standard serving-path objective set:
// windowed p95 search latency, error rate, shed rate, and hint-queue
// growth. Zero/negative thresholds disable the corresponding objective.
func GatewayObjectives(p95 time.Duration, errRate, shedRate, hintSlope float64) []Objective {
	var objs []Objective
	if p95 > 0 {
		objs = append(objs, Objective{
			Name: "search_p95", Kind: ObjectiveLatency,
			Hist: "gw_search_ns", Quantile: 0.95, Threshold: float64(p95.Nanoseconds()),
			MinEvents: 5,
		})
	}
	if errRate > 0 {
		objs = append(objs, Objective{
			Name: "error_rate", Kind: ObjectiveRatio,
			Num: "gw_errors_total", Denom: "gw_requests_total", Threshold: errRate,
			MinEvents: 5,
		})
	}
	if shedRate > 0 {
		objs = append(objs, Objective{
			Name: "shed_rate", Kind: ObjectiveRatio,
			Num: "gw_shed_total", Denom: "gw_requests_total", Threshold: shedRate,
			MinEvents: 5,
		})
	}
	if hintSlope > 0 {
		objs = append(objs, Objective{
			Name: "hints_pending_growth", Kind: ObjectiveGrowth,
			Gauge: "hints_pending", Threshold: hintSlope,
		})
	}
	return objs
}
