package obs

import (
	"context"
	"testing"
)

func TestTraceContextIdentity(t *testing.T) {
	var zero TraceContext
	if zero.Valid() {
		t.Error("zero context reports Valid")
	}
	if got := zero.TraceID(); got != "" {
		t.Errorf("zero context TraceID = %q, want empty", got)
	}

	tc := NewTraceContext()
	if !tc.Valid() || !tc.Sampled {
		t.Fatalf("NewTraceContext() = %+v, want valid and sampled", tc)
	}
	if len(tc.TraceID()) != 32 {
		t.Errorf("TraceID %q is not 32 hex chars", tc.TraceID())
	}
	if other := NewTraceContext(); other.TraceID() == tc.TraceID() {
		t.Error("two minted contexts share a trace ID")
	}

	child := tc.WithParent(42)
	if child.SpanID != 42 || child.TraceID() != tc.TraceID() {
		t.Errorf("WithParent changed identity: %+v", child)
	}

	un := UnsampledContext()
	if !un.Valid() || un.Sampled {
		t.Errorf("UnsampledContext() = %+v, want valid and unsampled", un)
	}
}

func TestContextWithTraceRoundTrip(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("bare context reports a trace")
	}
	tc := NewTraceContext().WithParent(7)
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext = %+v, %v; want %+v, true", got, ok, tc)
	}
	// An attached zero context must read back as "no trace".
	if _, ok := TraceFromContext(ContextWithTrace(context.Background(), TraceContext{})); ok {
		t.Error("invalid attached context reports a trace")
	}
}

func TestSamplerRates(t *testing.T) {
	count := func(s *Sampler, n int) int {
		hits := 0
		for i := 0; i < n; i++ {
			if s.Sample() {
				hits++
			}
		}
		return hits
	}
	if got := count(NewSampler(1), 100); got != 100 {
		t.Errorf("rate 1: sampled %d/100", got)
	}
	if got := count(NewSampler(2.5), 100); got != 100 {
		t.Errorf("rate > 1: sampled %d/100", got)
	}
	if got := count(NewSampler(0), 100); got != 0 {
		t.Errorf("rate 0: sampled %d/100", got)
	}
	if got := count(NewSampler(-1), 100); got != 0 {
		t.Errorf("negative rate: sampled %d/100", got)
	}
	if got := count(NewSampler(0.25), 100); got != 25 {
		t.Errorf("rate 0.25: sampled %d/100, want exactly 25 (deterministic 1-in-4)", got)
	}
	var nilSampler *Sampler
	if nilSampler.Sample() {
		t.Error("nil sampler sampled")
	}
}
