package obs

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a deterministic time source advancing only on Tick.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time       { return c.now }
func (c *fakeClock) Tick(d time.Duration) { c.now = c.now.Add(d) }
func (c *fakeClock) Sample(ts *TimeSeries, d time.Duration) Point {
	c.Tick(d)
	return ts.Sample()
}

func TestTimeSeriesDeltaEncoding(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 10, Clock: clk.Now})

	reg.Counter("reqs").Add(5)
	reg.Gauge("depth").Set(3)
	reg.Histogram("lat_ns").Observe(1000)
	ts.Sample() // prime: first point deltas from zero

	reg.Counter("reqs").Add(7)
	reg.Gauge("depth").Set(9)
	reg.Histogram("lat_ns").Observe(2000)
	reg.Histogram("lat_ns").Observe(4000)
	p := clk.Sample(ts, time.Second)

	if p.Counters["reqs"] != 7 {
		t.Fatalf("counter delta = %d, want 7", p.Counters["reqs"])
	}
	if p.Gauges["depth"] != 9 {
		t.Fatalf("gauge = %d, want instantaneous 9", p.Gauges["depth"])
	}
	if hp := p.Hists["lat_ns"]; hp.Count != 2 {
		t.Fatalf("hist interval count = %d, want 2", hp.Count)
	}
	if p.Elapsed != time.Second {
		t.Fatalf("elapsed = %v, want 1s", p.Elapsed)
	}
	if got := p.Rate("reqs"); got != 7 {
		t.Fatalf("rate = %v, want 7/s", got)
	}

	// An idle interval must delta to zero, not repeat the cumulative value.
	p = clk.Sample(ts, time.Second)
	if p.Counters["reqs"] != 0 || p.Hists["lat_ns"].Count != 0 {
		t.Fatalf("idle interval not zero: counters=%v hists=%v", p.Counters, p.Hists)
	}
}

func TestTimeSeriesRingWraparound(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	const capacity = 4
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: capacity, Clock: clk.Now})

	const samples = 11
	for i := 0; i < samples; i++ {
		reg.Counter("reqs").Add(int64(i)) // distinct delta per interval
		clk.Sample(ts, time.Second)
	}
	if got := ts.Samples(); got != samples {
		t.Fatalf("Samples() = %d, want %d", got, samples)
	}
	h := ts.History(0)
	if len(h.Points) != capacity {
		t.Fatalf("retained %d points, want capacity %d", len(h.Points), capacity)
	}
	// The ring must retain exactly the last `capacity` samples in order:
	// sample i carries delta i (sample 0 primed with delta 0).
	for i, p := range h.Points {
		want := int64(samples - capacity + i)
		if p.Counters["reqs"] != want {
			t.Fatalf("point %d delta = %d, want %d", i, p.Counters["reqs"], want)
		}
		if i > 0 && !h.Points[i].T.After(h.Points[i-1].T) {
			t.Fatalf("points out of order at %d", i)
		}
	}
	// CounterSum over everything retained equals the sum of retained deltas.
	var want int64
	for i := samples - capacity; i < samples; i++ {
		want += int64(i)
	}
	if got := h.CounterSum("reqs", 0); got != want {
		t.Fatalf("CounterSum = %d, want %d", got, want)
	}
}

// TestTimeSeriesRateMonotonicity property-tests the delta encoding: for any
// pattern of counter increments, every per-interval delta is non-negative
// and the deltas sum to the cumulative total (while the ring still holds
// every sample).
func TestTimeSeriesRateMonotonicity(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 64, Clock: clk.Now})

	increments := []int64{0, 3, 0, 17, 1, 0, 0, 42, 5, 9, 0, 1}
	var total int64
	ts.Sample() // prime
	for _, inc := range increments {
		reg.Counter("reqs").Add(inc)
		total += inc
		clk.Sample(ts, time.Second)
	}
	h := ts.History(0)
	var sum int64
	for i, p := range h.Points {
		d := p.Counters["reqs"]
		if d < 0 {
			t.Fatalf("point %d: negative delta %d from a monotonic counter", i, d)
		}
		sum += d
	}
	if sum != total {
		t.Fatalf("deltas sum to %d, cumulative counter is %d", sum, total)
	}
}

func TestHistoryWindowedQuantile(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 100, Clock: clk.Now})

	// Old regime: slow (observations around 1ms). Then fast (~1µs). A
	// trailing window covering only the fast regime must not see the slow
	// observations, unlike the cumulative histogram.
	ts.Sample()
	for i := 0; i < 10; i++ {
		reg.Histogram("lat_ns").Observe(1_000_000)
		clk.Sample(ts, time.Second)
	}
	for i := 0; i < 10; i++ {
		reg.Histogram("lat_ns").Observe(1_000)
		clk.Sample(ts, time.Second)
	}
	h := ts.History(0)
	recent := h.Quantile("lat_ns", 0.95, 5*time.Second)
	if recent >= 1_000_000 {
		t.Fatalf("windowed p95 = %d still sees the old slow regime", recent)
	}
	all := h.Quantile("lat_ns", 0.95, 0)
	if all < 1_000_000/2 {
		t.Fatalf("full-history p95 = %d lost the slow observations", all)
	}
	if n := h.HistCount("lat_ns", 5*time.Second); n != 5 {
		t.Fatalf("windowed count = %d, want 5", n)
	}
}

func TestHistoryGaugeSlope(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 100, Clock: clk.Now})

	for i := 0; i <= 10; i++ {
		reg.Gauge("hints_pending").Set(int64(i * 3)) // +3/s
		clk.Sample(ts, time.Second)
	}
	h := ts.History(0)
	slope := h.GaugeSlope("hints_pending", 0)
	if slope < 2.9 || slope > 3.1 {
		t.Fatalf("slope = %v, want ~3/s", slope)
	}
	if last := h.GaugeLast("hints_pending"); last != 30 {
		t.Fatalf("last = %d, want 30", last)
	}
}

func TestMergeHistories(t *testing.T) {
	mk := func(node string, base time.Time, deltas ...int64) History {
		h := History{Node: node, Interval: time.Second}
		for i, d := range deltas {
			hp := HistPoint{Count: d, Sum: d * 100, Buckets: make([]int64, HistogramBuckets)}
			hp.Buckets[10] = d
			h.Points = append(h.Points, Point{
				T:        base.Add(time.Duration(i) * time.Second),
				Elapsed:  time.Second,
				Counters: map[string]int64{"reqs": d},
				Gauges:   map[string]int64{"depth": d},
				Hists:    map[string]HistPoint{"lat_ns": hp},
			})
		}
		return h
	}
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	a := mk("a", base, 1, 2, 3, 4)
	b := mk("b", base.Add(300*time.Millisecond), 10, 20) // shorter, offset clock

	m := MergeHistories(a, b)
	if len(m.Points) != 2 {
		t.Fatalf("merged %d points, want min length 2", len(m.Points))
	}
	// Aligned from the end: a's last two deltas (3, 4) pair with b's (10, 20).
	if got := m.Points[0].Counters["reqs"]; got != 13 {
		t.Fatalf("merged point 0 = %d, want 3+10", got)
	}
	if got := m.Points[1].Counters["reqs"]; got != 24 {
		t.Fatalf("merged point 1 = %d, want 4+20", got)
	}
	if got := m.Points[1].Gauges["depth"]; got != 24 {
		t.Fatalf("merged gauge = %d, want 24", got)
	}
	hp := m.Points[1].Hists["lat_ns"]
	if hp.Count != 24 || hp.Buckets[10] != 24 {
		t.Fatalf("merged hist = %+v, want count 24 in bucket 10", hp)
	}
	if MergeHistories().Points != nil {
		t.Fatal("empty merge must return an empty history")
	}
}

func TestTimeSeriesNilSafe(t *testing.T) {
	var ts *TimeSeries
	ts.Sample()
	ts.AddCollector(func() {})
	ts.OnSample(func(Point) {})
	ts.SetNode("x")
	if h := ts.History(time.Minute); len(h.Points) != 0 {
		t.Fatal("nil TimeSeries must serve an empty history")
	}
}

func TestRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	rc := NewRuntimeCollector(reg)
	rc.Collect()
	rc.Collect()
	snap := map[string]Snapshot{}
	for _, s := range reg.Snapshot() {
		snap[s.Name] = s
	}
	if snap[MetricGoroutines].Value <= 0 {
		t.Fatalf("goroutines = %d, want > 0", snap[MetricGoroutines].Value)
	}
	if snap[MetricHeapBytes].Value <= 0 {
		t.Fatalf("heap bytes = %d, want > 0", snap[MetricHeapBytes].Value)
	}
}

func BenchmarkTimeSeriesSample(b *testing.B) {
	reg := NewRegistry()
	// A realistic registry shape: the serve process carries ~20 counters,
	// ~5 gauges and ~10 histograms.
	for i := 0; i < 20; i++ {
		reg.Counter(fmt.Sprintf("c%d", i)).Add(int64(i))
	}
	for i := 0; i < 5; i++ {
		reg.Gauge(fmt.Sprintf("g%d", i)).Set(int64(i))
	}
	for i := 0; i < 10; i++ {
		h := reg.Histogram(fmt.Sprintf("h%d", i))
		for j := 0; j < 100; j++ {
			h.Observe(int64(j) * 1000)
		}
	}
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 300, Clock: clk.Now})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Tick(time.Second)
		ts.Sample()
	}
}

func BenchmarkHistoryMerge(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 20; i++ {
		reg.Counter(fmt.Sprintf("c%d", i)).Add(int64(i))
	}
	for i := 0; i < 10; i++ {
		h := reg.Histogram(fmt.Sprintf("h%d", i))
		for j := 0; j < 100; j++ {
			h.Observe(int64(j) * 1000)
		}
	}
	clk := newFakeClock()
	// 8 nodes × 300 samples, the default dashboard pull shape.
	histories := make([]History, 8)
	for n := range histories {
		ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 300, Clock: clk.Now})
		for i := 0; i < 300; i++ {
			reg.Counter("c0").Add(1)
			clk.Tick(time.Second)
			ts.Sample()
		}
		histories[n] = ts.History(0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := MergeHistories(histories...)
		if len(m.Points) == 0 {
			b.Fatal("empty merge")
		}
	}
}
