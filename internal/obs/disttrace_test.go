package obs

import (
	"strings"
	"testing"
)

func TestStartTraceCarriesIdentity(t *testing.T) {
	tr := NewTracer(8)
	tc := NewTraceContext().WithParent(99)
	sp := tr.StartTrace("group_search", tc)
	sp.SetNode("10.0.0.1:7946")
	child := sp.Child("knn")
	child.End()
	sp.End()

	if got := sp.TraceID(); got != tc.TraceID() {
		t.Errorf("span TraceID = %q, want %q", got, tc.TraceID())
	}
	out := sp.Context()
	if out.TraceID() != tc.TraceID() || out.SpanID != sp.ID() || !out.Sampled {
		t.Errorf("span Context = %+v, want same trace, parent %d, sampled", out, sp.ID())
	}

	snap := sp.Snapshot()
	if snap.ParentID != 99 {
		t.Errorf("root ParentID = %d, want the remote parent 99", snap.ParentID)
	}
	if snap.Node != "10.0.0.1:7946" {
		t.Errorf("Node = %q", snap.Node)
	}
	if len(snap.Children) != 1 || snap.Children[0].Node != snap.Node {
		t.Fatalf("child did not inherit node: %+v", snap.Children)
	}
	if snap.Children[0].TraceID != snap.TraceID || snap.Children[0].ParentID != snap.SpanID {
		t.Errorf("child linkage wrong: %+v", snap.Children[0])
	}
}

func TestLocalStartHasNoIdentity(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("group_search")
	sp.End()
	if sp.TraceID() != "" {
		t.Errorf("local span TraceID = %q, want empty", sp.TraceID())
	}
	if c := sp.Context(); c.Valid() {
		t.Errorf("local span Context = %+v, want zero", c)
	}
	snap := sp.Snapshot()
	if snap.TraceID != "" || snap.SpanID == 0 {
		t.Errorf("local snapshot identity: TraceID=%q SpanID=%d", snap.TraceID, snap.SpanID)
	}
}

func TestTracerTraceLookup(t *testing.T) {
	tr := NewTracer(8)
	tc := NewTraceContext()
	a := tr.StartTrace("search", tc)
	a.End()
	b := tr.StartTrace("fetch_region", tc)
	b.End()
	other := tr.StartTrace("search", NewTraceContext())
	other.End()

	got := tr.Trace(tc.TraceID())
	if len(got) != 2 {
		t.Fatalf("Trace returned %d spans, want 2", len(got))
	}
	if got[0].Name != "search" || got[1].Name != "fetch_region" {
		t.Errorf("Trace order = %s, %s; want oldest first", got[0].Name, got[1].Name)
	}
	if tr.Trace("") != nil {
		t.Error("empty trace ID returned spans")
	}
	if spans := tr.Trace("feedfacefeedfacefeedfacefeedface"); len(spans) != 0 {
		t.Errorf("unknown trace ID returned %d spans", len(spans))
	}
}

func TestAttachSnapshotAppearsInSnapshot(t *testing.T) {
	tr := NewTracer(8)
	tc := NewTraceContext()
	sp := tr.StartTrace("group", tc)
	remote := SpanSnapshot{TraceID: tc.TraceID(), SpanID: 12345, ParentID: sp.ID(),
		Node: "10.0.0.2:7946", Name: "local_search"}
	sp.AttachSnapshot(remote)
	sp.End()
	snap := sp.Snapshot()
	if len(snap.Children) != 1 || snap.Children[0].SpanID != 12345 {
		t.Fatalf("graft missing from snapshot: %+v", snap.Children)
	}
}

// TestAssembleTraceCrossNode models the real shipping paths at once: the
// coordinator's root holds a fan-out child, the node's group_search root
// (remote-parented at the fan-out span) arrives BOTH grafted under the
// fan-out span and as a ring root pulled via TraceFetch, and a fetch_region
// ring root arrives only via pull. Assembly must dedup the double delivery
// and hang everything off one tree.
func TestAssembleTraceCrossNode(t *testing.T) {
	coord := NewTracer(8)
	node := NewTracer(8)
	tc := NewTraceContext()

	root := coord.StartTrace("search", tc)
	fan := root.Child("group")

	nodeSp := node.StartTrace("group_search", tc.WithParent(fan.ID()))
	nodeSp.SetNode("10.0.0.2:7946")
	nodeSp.Child("knn").End()
	nodeSp.End()
	fan.AttachSnapshot(nodeSp.Snapshot())
	fan.End()

	fetch := node.StartTrace("fetch_region", tc.WithParent(root.ID()))
	fetch.SetNode("10.0.0.2:7946")
	fetch.End()
	root.End()

	var all []SpanSnapshot
	all = append(all, coord.Trace(tc.TraceID())...)
	all = append(all, node.Trace(tc.TraceID())...)
	trees := AssembleTrace(all)
	if len(trees) != 1 {
		t.Fatalf("assembled %d roots, want 1:\n%+v", len(trees), trees)
	}
	tree := trees[0]
	if tree.Name != "search" {
		t.Fatalf("root is %q, want search", tree.Name)
	}
	if got := len(tree.FindAll("group_search")); got != 1 {
		var b strings.Builder
		tree.WriteTo(&b)
		t.Fatalf("group_search appears %d times, want 1 (dedup):\n%s", got, b.String())
	}
	gs := tree.Find("group")
	if gs == nil || gs.Find("group_search") == nil || gs.Find("knn") == nil {
		t.Fatalf("node subtree not under the fan-out span: %+v", tree)
	}
	if tree.Find("fetch_region") == nil {
		t.Fatal("pulled fetch_region root not re-linked under the coordinator root")
	}
	var check func(s SpanSnapshot)
	check = func(s SpanSnapshot) {
		if s.TraceID != tc.TraceID() {
			t.Errorf("span %s has TraceID %q, want %q", s.Name, s.TraceID, tc.TraceID())
		}
		for _, c := range s.Children {
			check(c)
		}
	}
	check(tree)
}

func TestAssembleTraceOrphanAndLegacy(t *testing.T) {
	tc := NewTraceContext()
	// An orphan whose parent span was never collected stays a root.
	orphan := SpanSnapshot{TraceID: tc.TraceID(), SpanID: 5, ParentID: 77, Name: "group_search"}
	// Identity-less legacy roots (pre-tracing nodes) pass through verbatim,
	// keeping their own subtree intact.
	legacy := SpanSnapshot{Name: "group_search", StartUnix: 10,
		Children: []SpanSnapshot{{Name: "local:a"}, {Name: "local:b"}}}
	out := AssembleTrace([]SpanSnapshot{orphan, legacy})
	if len(out) != 2 {
		t.Fatalf("assembled %d roots, want 2", len(out))
	}
	for _, s := range out {
		if s.Name != "group_search" {
			t.Errorf("unexpected root %q", s.Name)
		}
		if s.SpanID == 0 && len(s.Children) != 2 {
			t.Errorf("legacy subtree lost children: %+v", s)
		}
	}
	if got := AssembleTrace(nil); len(got) != 0 {
		t.Errorf("AssembleTrace(nil) = %+v, want empty", got)
	}
}

func TestWriteToShowsNode(t *testing.T) {
	snap := SpanSnapshot{Name: "local_search", NS: 1000, Node: "10.0.0.9:1"}
	var b strings.Builder
	snap.WriteTo(&b)
	if !strings.Contains(b.String(), "@10.0.0.9:1") {
		t.Errorf("rendered span lacks @node: %q", b.String())
	}
	// Spans without a node render exactly as before tracing existed.
	b.Reset()
	SpanSnapshot{Name: "x", NS: 1000}.WriteTo(&b)
	if strings.Contains(b.String(), "@") {
		t.Errorf("node-less span rendered an @: %q", b.String())
	}
}
