// Package obs is Mendel's dependency-free observability layer: an atomic
// metrics registry (counters, gauges, bounded histograms with quantile
// estimation), a span-based query tracer that decomposes each search into
// the paper's pipeline stages, and an HTTP surface serving /metrics,
// /debug/spans and the standard pprof endpoints.
//
// Everything is nil-receiver safe: a component handed a nil *Registry or
// nil *Tracer records nothing at zero cost, so instrumentation points never
// need guarding at call sites.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramBuckets is the number of exponential buckets every Histogram
// uses: bucket i counts observations v with 2^(i-1) < v <= 2^i (bucket 0
// counts v <= 1). A fixed cluster-wide layout makes histograms mergeable by
// element-wise addition, which cluster-wide aggregation relies on.
const HistogramBuckets = 64

// Histogram is a bounded-memory histogram over non-negative int64
// observations (latencies in nanoseconds, sizes in bytes) with power-of-two
// buckets. All methods are safe for concurrent use.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// minPlus1 stores min+1 so the zero value means "no observations yet"
	// and the CAS loop needs no separate initialization step.
	minPlus1 atomic.Int64
	max      atomic.Int64
	buckets  [HistogramBuckets]atomic.Int64

	// Exemplar: the label (a trace ID) of the largest observation recorded
	// via ObserveExemplar, linking /metrics tails to /debug/trace/{id}.
	// Mutex-guarded: only sampled observations carry labels, so the lock is
	// off the unlabelled hot path.
	exMu    sync.Mutex
	exLabel string
	exValue int64
}

// bucketIndex returns the bucket of observation v: the number of bits
// needed to represent v, so bucket 0 holds v <= 1, bucket 1 holds v = 2,
// bucket 2 holds 3..4, bucket i holds 2^(i-1)+1 .. 2^i.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1) << uint(i)
}

// Observe records one observation. Negative values clamp to zero. No-op on
// a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.minPlus1.Load()
		if cur != 0 && v+1 >= cur {
			break
		}
		if h.minPlus1.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveExemplar records one observation and, when label is non-empty and
// v is the largest labelled observation so far, retains label as the
// histogram's exemplar. Mendel labels sampled search latencies with their
// trace ID, so the slowest traced query is always one curl away from its
// full cross-node span tree.
func (h *Histogram) ObserveExemplar(v int64, label string) {
	h.Observe(v)
	if h == nil || label == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	h.exMu.Lock()
	if h.exLabel == "" || v >= h.exValue {
		h.exLabel, h.exValue = label, v
	}
	h.exMu.Unlock()
}

// Exemplar returns the label and value of the largest labelled observation,
// or ("", 0) when none was recorded.
func (h *Histogram) Exemplar() (string, int64) {
	if h == nil {
		return "", 0
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.exLabel, h.exValue
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts.
// The estimate interpolates within the bucket holding the target rank, so
// its relative error is bounded by the bucket width (a factor of two).
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	var buckets [HistogramBuckets]int64
	for i := range buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return QuantileFromBuckets(buckets[:], q)
}

// QuantileFromBuckets estimates a quantile from a bucket count vector laid
// out per HistogramBuckets. Exposed so cluster-wide aggregation can merge
// bucket vectors from many nodes and quantile the merged distribution.
func QuantileFromBuckets(buckets []int64, q float64) int64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total-1)) + 1 // 1-based rank of the target
	var seen int64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo := int64(0)
			if i > 0 {
				lo = bucketUpper(i-1) + 1
			}
			hi := bucketUpper(i)
			// Linear interpolation of the rank within the bucket.
			frac := float64(rank-seen) / float64(c)
			est := float64(lo) + frac*float64(hi-lo)
			return int64(est)
		}
		seen += c
	}
	return bucketUpper(len(buckets) - 1)
}

// Snapshot is a point-in-time copy of one metric, the unit of /metrics
// output and of cluster-wide aggregation. Exported fields only: snapshots
// travel over the wire in wire.MetricsResult.
type Snapshot struct {
	Name string
	Kind string // "counter", "gauge", "histogram"
	// Value carries counter and gauge readings.
	Value int64
	// Histogram fields.
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	Buckets []int64
	// Exemplar links the histogram's tail to a trace: the label (trace ID)
	// and value of the largest labelled observation, when any was recorded.
	Exemplar      string `json:",omitempty"`
	ExemplarValue int64  `json:",omitempty"`
}

// Quantile estimates a quantile of a histogram snapshot.
func (s Snapshot) Quantile(q float64) int64 { return QuantileFromBuckets(s.Buckets, q) }

// Mean returns the arithmetic mean of a histogram snapshot.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry is a named collection of metrics. Lookup methods create on first
// use, so call sites need no registration ceremony. A nil *Registry is a
// valid no-op sink.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		funcs:      make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// SetGaugeFunc registers a gauge computed at snapshot time, used to surface
// counters owned by other components (e.g. a ResilientCaller's stats)
// without double bookkeeping. fn must be safe for concurrent calls.
func (r *Registry) SetGaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot returns a copy of every metric, sorted by name.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.funcs))
	for name, c := range r.counters {
		out = append(out, Snapshot{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Snapshot{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, fn := range r.funcs {
		out = append(out, Snapshot{Name: name, Kind: "gauge", Value: fn()})
	}
	for name, h := range r.histograms {
		min := h.minPlus1.Load()
		if min > 0 {
			min--
		}
		s := Snapshot{
			Name:    name,
			Kind:    "histogram",
			Count:   h.count.Load(),
			Sum:     h.sum.Load(),
			Min:     min,
			Max:     h.max.Load(),
			Buckets: make([]int64, HistogramBuckets),
		}
		for i := range h.buckets {
			s.Buckets[i] = h.buckets[i].Load()
		}
		s.Exemplar, s.ExemplarValue = h.Exemplar()
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders the registry in a Prometheus-flavoured plain-text
// format: one "name value" line per counter/gauge, and per-histogram lines
// for count, sum, min, max and the p50/p95/p99 estimates.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		var err error
		switch s.Kind {
		case "histogram":
			_, err = fmt.Fprintf(w, "%s_count %d\n%s_sum %d\n%s_min %d\n%s_max %d\n%s_p50 %d\n%s_p95 %d\n%s_p99 %d\n",
				s.Name, s.Count, s.Name, s.Sum, s.Name, s.Min, s.Name, s.Max,
				s.Name, s.Quantile(0.50), s.Name, s.Quantile(0.95), s.Name, s.Quantile(0.99))
			if err == nil && s.Exemplar != "" {
				_, err = fmt.Fprintf(w, "%s_slowest_trace %s\n", s.Name, s.Exemplar)
			}
		default:
			_, err = fmt.Fprintf(w, "%s %d\n", s.Name, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// MergeSnapshots aggregates per-node metric snapshots into one cluster-wide
// view: counters and gauges sum, histogram counts/sums add element-wise (so
// quantiles of the merged distribution remain estimable), min/max combine.
func MergeSnapshots(groups ...[]Snapshot) []Snapshot {
	byName := make(map[string]*Snapshot)
	var order []string
	for _, snaps := range groups {
		for _, s := range snaps {
			agg, ok := byName[s.Name]
			if !ok {
				cp := s
				cp.Buckets = append([]int64(nil), s.Buckets...)
				byName[s.Name] = &cp
				order = append(order, s.Name)
				continue
			}
			agg.Value += s.Value
			if s.Count > 0 {
				if agg.Count == 0 || s.Min < agg.Min {
					agg.Min = s.Min
				}
				if s.Max > agg.Max {
					agg.Max = s.Max
				}
			}
			agg.Count += s.Count
			agg.Sum += s.Sum
			for i := range s.Buckets {
				if i < len(agg.Buckets) {
					agg.Buckets[i] += s.Buckets[i]
				}
			}
			if s.Exemplar != "" && (agg.Exemplar == "" || s.ExemplarValue > agg.ExemplarValue) {
				agg.Exemplar, agg.ExemplarValue = s.Exemplar, s.ExemplarValue
			}
		}
	}
	sort.Strings(order)
	out := make([]Snapshot, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}
