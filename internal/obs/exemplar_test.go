package obs

import (
	"strings"
	"testing"
)

func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("search_ns")
	h.ObserveExemplar(100, "aaaa")
	h.ObserveExemplar(500, "bbbb")
	h.ObserveExemplar(200, "cccc") // slower exemplar already held
	label, v := h.Exemplar()
	if label != "bbbb" || v != 500 {
		t.Errorf("Exemplar = %q, %d; want bbbb, 500", label, v)
	}
	// Unlabelled observations (unsampled queries) still count but never
	// displace the exemplar.
	h.ObserveExemplar(9999, "")
	if label, _ = h.Exemplar(); label != "bbbb" {
		t.Errorf("empty label displaced exemplar: %q", label)
	}
	snap := reg.Snapshot()
	found := false
	for _, s := range snap {
		if s.Name == "search_ns" {
			found = true
			if s.Exemplar != "bbbb" || s.ExemplarValue != 500 {
				t.Errorf("snapshot exemplar = %q, %d", s.Exemplar, s.ExemplarValue)
			}
			if s.Count != 4 {
				t.Errorf("Count = %d, want 4 (every observation recorded)", s.Count)
			}
		}
	}
	if !found {
		t.Fatal("search_ns missing from snapshot")
	}

	var b strings.Builder
	reg.WriteText(&b)
	if !strings.Contains(b.String(), "search_ns_slowest_trace bbbb") {
		t.Errorf("WriteText lacks exemplar line:\n%s", b.String())
	}

	var nilH *Histogram
	nilH.ObserveExemplar(1, "x") // must not panic
	if label, v := nilH.Exemplar(); label != "" || v != 0 {
		t.Errorf("nil histogram exemplar = %q, %d", label, v)
	}
}

func TestMergeSnapshotsKeepsSlowestExemplar(t *testing.T) {
	a := NewRegistry()
	a.Histogram("search_ns").ObserveExemplar(100, "fast")
	b := NewRegistry()
	b.Histogram("search_ns").ObserveExemplar(900, "slow")
	c := NewRegistry()
	c.Histogram("search_ns").Observe(5000) // no exemplar at all
	merged := MergeSnapshots(a.Snapshot(), b.Snapshot(), c.Snapshot())
	for _, s := range merged {
		if s.Name == "search_ns" {
			if s.Exemplar != "slow" || s.ExemplarValue != 900 {
				t.Errorf("merged exemplar = %q, %d; want slow, 900", s.Exemplar, s.ExemplarValue)
			}
			return
		}
	}
	t.Fatal("search_ns missing from merge")
}
