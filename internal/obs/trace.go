package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are int64 — the
// quantities Mendel traces (counts, byte sizes, residue lengths) are all
// integral, and a fixed value type keeps snapshots wire-encodable.
type Attr struct {
	Key   string
	Value int64
}

// Span is one timed region of a query, arranged in a parent/child tree.
// Children may be added from the goroutine that owns the span; attribute
// and child updates are internally locked so aggregation goroutines can
// attach synthetic children concurrently.
type Span struct {
	tracer *Tracer
	parent *Span
	id     int64
	name   string
	start  time.Time

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	dur      time.Duration
	ended    bool
}

// Tracer collects completed root spans in a bounded ring, with a separate
// ring for spans slower than a configurable threshold (the slow-query log).
// A nil *Tracer is a valid no-op sink.
type Tracer struct {
	nextID atomic.Int64

	mu     sync.Mutex
	recent []*Span // completed roots, oldest first
	slow   []*Span // completed roots over the slow threshold
	cap    int
	thresh time.Duration
	onSlow func(SpanSnapshot)
}

// DefaultTraceCapacity bounds the completed-span rings when NewTracer is
// given a non-positive capacity.
const DefaultTraceCapacity = 128

// NewTracer creates a tracer retaining up to capacity completed root spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// SetSlowThreshold enables the slow-query log: completed root spans with a
// duration of at least d are retained separately and passed to the OnSlow
// callback. d <= 0 disables it.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.thresh = d
}

// OnSlow installs a callback invoked (synchronously, without internal
// locks held) with each slow span's snapshot — typically a log writer.
func (t *Tracer) OnSlow(fn func(SpanSnapshot)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onSlow = fn
}

// Start opens a root span. Returns nil (a no-op span) on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, id: t.nextID.Add(1), name: name, start: time.Now()}
}

// Child opens a sub-span under s. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, parent: s, id: s.tracer.nextID.Add(1), name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddTimed attaches an already-completed child span of the given duration,
// used for work measured elsewhere (a storage node reporting its k-NN time
// inside an RPC reply) that still belongs in the query's span tree.
func (s *Span) AddTimed(name string, d time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	c := &Span{tracer: s.tracer, parent: s, id: s.tracer.nextID.Add(1), name: name,
		start: time.Now().Add(-d), dur: d, ended: true, attrs: attrs}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// SetAttr annotates the span. No-op on a nil span.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// Duration returns the span's duration (final once ended, running so far
// otherwise).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// End closes the span. Ending a root span publishes it to the tracer's
// completed ring (and slow log when over threshold). Ending twice is a
// no-op, so deferred Ends compose with early returns.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	dur := s.dur
	s.mu.Unlock()
	if s.parent != nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	t.recent = append(t.recent, s)
	if len(t.recent) > t.cap {
		t.recent = t.recent[len(t.recent)-t.cap:]
	}
	slow := t.thresh > 0 && dur >= t.thresh
	if slow {
		t.slow = append(t.slow, s)
		if len(t.slow) > t.cap {
			t.slow = t.slow[len(t.slow)-t.cap:]
		}
	}
	onSlow := t.onSlow
	t.mu.Unlock()
	if slow && onSlow != nil {
		onSlow(s.snapshot())
	}
}

// SpanSnapshot is an immutable copy of a completed span subtree, the unit
// of /debug/spans output.
type SpanSnapshot struct {
	ID        int64
	Name      string
	StartUnix int64 // nanoseconds since the epoch
	NS        int64 // duration in nanoseconds
	Attrs     []Attr
	Children  []SpanSnapshot
}

// snapshot deep-copies a span subtree.
func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		ID:        s.id,
		Name:      s.name,
		StartUnix: s.start.UnixNano(),
		NS:        int64(s.dur),
		Attrs:     append([]Attr(nil), s.attrs...),
	}
	if !s.ended {
		out.NS = int64(time.Since(s.start))
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

// Recent returns up to n most recently completed root spans, newest first.
// n <= 0 returns all retained spans.
func (t *Tracer) Recent(n int) []SpanSnapshot {
	return t.ring(n, false)
}

// Slow returns up to n retained slow spans, newest first.
func (t *Tracer) Slow(n int) []SpanSnapshot {
	return t.ring(n, true)
}

func (t *Tracer) ring(n int, slow bool) []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	src := t.recent
	if slow {
		src = t.slow
	}
	spans := append([]*Span(nil), src...)
	t.mu.Unlock()
	if n <= 0 || n > len(spans) {
		n = len(spans)
	}
	out := make([]SpanSnapshot, 0, n)
	for i := len(spans) - 1; i >= len(spans)-n; i-- {
		out = append(out, spans[i].snapshot())
	}
	return out
}

// WriteTo renders the snapshot as an indented tree, one line per span:
//
//	search 1.2ms [query_len=130 hits=3]
//	  fanout 800µs [groups=2]
func (s SpanSnapshot) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	s.write(&b, 0)
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (s SpanSnapshot) write(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	fmt.Fprintf(b, " %v", time.Duration(s.NS).Round(time.Microsecond))
	if len(s.Attrs) > 0 {
		b.WriteString(" [")
		for i, a := range s.Attrs {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "%s=%d", a.Key, a.Value)
		}
		b.WriteByte(']')
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.write(b, depth+1)
	}
}

// Find returns the first descendant span (including s itself) with the
// given name, pre-order, or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if found := s.Children[i].Find(name); found != nil {
			return found
		}
	}
	return nil
}
