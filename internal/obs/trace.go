package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	crand "crypto/rand"
)

// Attr is one key/value annotation on a span. Values are int64 — the
// quantities Mendel traces (counts, byte sizes, residue lengths) are all
// integral, and a fixed value type keeps snapshots wire-encodable.
type Attr struct {
	Key   string
	Value int64
}

// Span is one timed region of a query, arranged in a parent/child tree.
// Children may be added from the goroutine that owns the span; attribute
// and child updates are internally locked so aggregation goroutines can
// attach synthetic children concurrently.
type Span struct {
	tracer *Tracer
	parent *Span
	id     uint64
	name   string
	start  time.Time

	// Distributed-trace identity. Zero traceHi|traceLo means the span is
	// purely local (pre-tracing behaviour). remoteParent is the caller-side
	// span ID for roots adopted from an RPC's TraceContext; it is what lets
	// the coordinator re-link shipped node spans under its own fan-out
	// spans during assembly.
	traceHi      uint64
	traceLo      uint64
	remoteParent uint64

	mu       sync.Mutex
	node     string
	attrs    []Attr
	children []*Span
	grafts   []SpanSnapshot // completed remote subtrees attached verbatim
	dur      time.Duration
	ended    bool
}

// Tracer collects completed root spans in a bounded ring, with a separate
// ring for spans slower than a configurable threshold (the slow-query log).
// A nil *Tracer is a valid no-op sink.
type Tracer struct {
	nextID atomic.Uint64

	mu     sync.Mutex
	recent []*Span // completed roots, oldest first
	slow   []*Span // completed roots over the slow threshold
	cap    int
	thresh time.Duration
	onSlow func(SpanSnapshot)
}

// DefaultTraceCapacity bounds the completed-span rings when NewTracer is
// given a non-positive capacity.
const DefaultTraceCapacity = 128

// NewTracer creates a tracer retaining up to capacity completed root spans.
// Span IDs start at a random 64-bit offset so IDs minted by different
// tracers (different nodes, or a restarted process) stay distinct within
// one assembled trace.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{cap: capacity}
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		t.nextID.Store(binary.BigEndian.Uint64(b[:]))
	}
	return t
}

// SetSlowThreshold enables the slow-query log: completed root spans with a
// duration of at least d are retained separately and passed to the OnSlow
// callback. d <= 0 disables it.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.thresh = d
}

// OnSlow installs a callback invoked (synchronously, without internal
// locks held) with each slow span's snapshot — typically a log writer.
func (t *Tracer) OnSlow(fn func(SpanSnapshot)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onSlow = fn
}

// Start opens a root span with no distributed-trace identity — the
// node-local tracing mode that predates trace propagation, still used when
// a request arrives without a TraceContext.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, id: t.nextID.Add(1), name: name, start: time.Now()}
}

// StartTrace opens a root span carrying the given trace identity: the span
// joins tc's trace, and tc.SpanID (the caller-side span on another node)
// becomes its remote parent for cross-node assembly. Callers are expected
// to check tc.Sampled first; StartTrace on a nil tracer or an invalid
// context degrades to Start's behaviour.
func (t *Tracer) StartTrace(name string, tc TraceContext) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t, id: t.nextID.Add(1), name: name, start: time.Now(),
		traceHi: tc.TraceHi, traceLo: tc.TraceLo, remoteParent: tc.SpanID,
	}
}

// ID returns the span's ID, the value remote children reference as their
// parent. Zero on a nil span.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Context returns the trace context an RPC issued under this span should
// carry: same trace, this span as parent, sampled (a span only exists for
// sampled queries). The zero context on a nil or trace-less span.
func (s *Span) Context() TraceContext {
	if s == nil || s.traceHi|s.traceLo == 0 {
		return TraceContext{}
	}
	return TraceContext{TraceHi: s.traceHi, TraceLo: s.traceLo, SpanID: s.id, Sampled: true}
}

// TraceID returns the span's 32-hex-character trace ID, or "" for local
// spans with no distributed identity.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return TraceContext{TraceHi: s.traceHi, TraceLo: s.traceLo}.TraceID()
}

// SetNode stamps the span (and, by inheritance at creation time, its future
// children) with the network identity of the process that recorded it.
func (s *Span) SetNode(node string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.node = node
	s.mu.Unlock()
}

// Child opens a sub-span under s, inheriting its trace identity and node.
// Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, parent: s, id: s.tracer.nextID.Add(1), name: name, start: time.Now(),
		traceHi: s.traceHi, traceLo: s.traceLo}
	s.mu.Lock()
	c.node = s.node
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddTimed attaches an already-completed child span of the given duration,
// used for work measured elsewhere (a storage node reporting its k-NN time
// inside an RPC reply) that still belongs in the query's span tree.
func (s *Span) AddTimed(name string, d time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	c := &Span{tracer: s.tracer, parent: s, id: s.tracer.nextID.Add(1), name: name,
		start: time.Now().Add(-d), dur: d, ended: true, attrs: attrs,
		traceHi: s.traceHi, traceLo: s.traceLo}
	s.mu.Lock()
	c.node = s.node
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// AttachSnapshot grafts a completed remote span subtree (shipped back in an
// RPC reply) under s. The graft is kept verbatim — its SpanID/ParentID
// linkage already points into this trace — and appears among the span's
// children in every snapshot.
func (s *Span) AttachSnapshot(snap SpanSnapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.grafts = append(s.grafts, snap)
	s.mu.Unlock()
}

// SetAttr annotates the span. No-op on a nil span.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// Duration returns the span's duration (final once ended, running so far
// otherwise).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// End closes the span. Ending a root span publishes it to the tracer's
// completed ring (and slow log when over threshold). Ending twice is a
// no-op, so deferred Ends compose with early returns.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	dur := s.dur
	s.mu.Unlock()
	if s.parent != nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	t.recent = append(t.recent, s)
	if len(t.recent) > t.cap {
		t.recent = t.recent[len(t.recent)-t.cap:]
	}
	slow := t.thresh > 0 && dur >= t.thresh
	if slow {
		t.slow = append(t.slow, s)
		if len(t.slow) > t.cap {
			t.slow = t.slow[len(t.slow)-t.cap:]
		}
	}
	onSlow := t.onSlow
	t.mu.Unlock()
	if slow && onSlow != nil {
		onSlow(s.snapshot())
	}
}

// SpanSnapshot is an immutable copy of a completed span subtree, the unit
// of /debug/spans and /debug/trace output. TraceID/SpanID/ParentID carry
// the distributed identity (empty/zero for purely local spans); ParentID on
// a root names the caller-side span on another node.
type SpanSnapshot struct {
	TraceID   string `json:",omitempty"`
	SpanID    uint64 `json:",omitempty"`
	ParentID  uint64 `json:",omitempty"`
	Node      string `json:",omitempty"`
	Name      string
	StartUnix int64 // nanoseconds since the epoch
	NS        int64 // duration in nanoseconds
	Attrs     []Attr
	Children  []SpanSnapshot
}

// Snapshot deep-copies the span subtree, including grafted remote spans.
// Safe on an unfinished span (the duration reads as "so far").
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.snapshot()
}

// snapshot deep-copies a span subtree.
func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		TraceID:   TraceContext{TraceHi: s.traceHi, TraceLo: s.traceLo}.TraceID(),
		SpanID:    s.id,
		Node:      s.node,
		Name:      s.name,
		StartUnix: s.start.UnixNano(),
		NS:        int64(s.dur),
		Attrs:     append([]Attr(nil), s.attrs...),
	}
	if s.parent != nil {
		out.ParentID = s.parent.id
	} else {
		out.ParentID = s.remoteParent
	}
	if !s.ended {
		out.NS = int64(time.Since(s.start))
	}
	children := append([]*Span(nil), s.children...)
	grafts := append([]SpanSnapshot(nil), s.grafts...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot())
	}
	out.Children = append(out.Children, grafts...)
	return out
}

// Recent returns up to n most recently completed root spans, newest first.
// n <= 0 returns all retained spans.
func (t *Tracer) Recent(n int) []SpanSnapshot {
	return t.ring(n, false)
}

// Slow returns up to n retained slow spans, newest first.
func (t *Tracer) Slow(n int) []SpanSnapshot {
	return t.ring(n, true)
}

func (t *Tracer) ring(n int, slow bool) []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	src := t.recent
	if slow {
		src = t.slow
	}
	spans := append([]*Span(nil), src...)
	t.mu.Unlock()
	if n <= 0 || n > len(spans) {
		n = len(spans)
	}
	out := make([]SpanSnapshot, 0, n)
	for i := len(spans) - 1; i >= len(spans)-n; i-- {
		out = append(out, spans[i].snapshot())
	}
	return out
}

// Trace returns snapshots of every retained root span belonging to the
// given 32-hex trace ID, oldest first. Node-side this is the TraceFetch
// handler's data source; coordinator-side it seeds cross-node assembly.
func (t *Tracer) Trace(traceID string) []SpanSnapshot {
	if t == nil || traceID == "" {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.recent...)
	t.mu.Unlock()
	var out []SpanSnapshot
	for _, s := range spans {
		if s.TraceID() == traceID {
			out = append(out, s.snapshot())
		}
	}
	return out
}

// AssembleTrace merges span snapshots gathered from several tracers (the
// coordinator's own roots, subtrees shipped in RPC replies, and roots
// pulled from node rings via TraceFetch) into one tree per trace root.
// Spans are deduplicated by SpanID — the same span can arrive both grafted
// into a parent and as a node-ring root, or twice when coordinator and
// nodes share one in-process tracer — and roots are re-linked under the
// span named by their ParentID when it is present. Spans without a
// distributed identity (SpanID zero) keep their structural position.
// Children and the returned roots are ordered by start time.
func AssembleTrace(spans []SpanSnapshot) []SpanSnapshot {
	type node struct {
		snap     SpanSnapshot // Children stripped; rebuilt below
		pid      uint64
		kids     []*node
		verbatim []SpanSnapshot // legacy SpanID-0 subtrees, kept as-is
	}
	byID := make(map[uint64]*node)
	var order []*node

	var walk func(s SpanSnapshot, structParent uint64) *node
	walk = func(s SpanSnapshot, structParent uint64) *node {
		pid := s.ParentID
		if structParent != 0 {
			pid = structParent
		}
		n, dup := byID[s.SpanID]
		if s.SpanID == 0 || !dup {
			flat := s
			flat.Children = nil
			n = &node{snap: flat, pid: pid}
			if s.SpanID != 0 {
				byID[s.SpanID] = n
			}
			order = append(order, n)
		} else if n.pid == 0 {
			n.pid = pid
		}
		for _, c := range s.Children {
			if c.SpanID == 0 {
				// No identity to dedup on: keep the subtree exactly where
				// it structurally appeared, once per distinct parent visit.
				if !dup {
					n.verbatim = append(n.verbatim, c)
				}
				continue
			}
			walk(c, s.SpanID)
		}
		return n
	}
	var legacy []SpanSnapshot // identity-less roots pass through untouched
	for _, s := range spans {
		if s.SpanID == 0 {
			legacy = append(legacy, s)
			continue
		}
		walk(s, 0)
	}

	var roots []*node
	for _, n := range order {
		if p, ok := byID[n.pid]; ok && p != n && n.pid != 0 {
			p.kids = append(p.kids, n)
		} else {
			roots = append(roots, n)
		}
	}

	seen := make(map[*node]bool)
	var build func(n *node) SpanSnapshot
	build = func(n *node) SpanSnapshot {
		out := n.snap
		seen[n] = true
		kids := make([]SpanSnapshot, 0, len(n.kids)+len(n.verbatim))
		for _, k := range n.kids {
			if seen[k] {
				continue
			}
			kids = append(kids, build(k))
		}
		kids = append(kids, n.verbatim...)
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].StartUnix < kids[j].StartUnix })
		if len(kids) > 0 {
			out.Children = kids
		}
		return out
	}
	out := make([]SpanSnapshot, 0, len(roots)+len(legacy))
	for _, r := range roots {
		if seen[r] {
			continue
		}
		out = append(out, build(r))
	}
	out = append(out, legacy...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUnix < out[j].StartUnix })
	return out
}

// WriteTo renders the snapshot as an indented tree, one line per span:
//
//	search 1.2ms [query_len=130 hits=3]
//	  fanout 800µs [groups=2]
//	    group_search 700µs @127.0.0.1:9001 [anchors=12]
func (s SpanSnapshot) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	s.write(&b, 0)
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (s SpanSnapshot) write(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	fmt.Fprintf(b, " %v", time.Duration(s.NS).Round(time.Microsecond))
	if s.Node != "" {
		b.WriteString(" @")
		b.WriteString(s.Node)
	}
	if len(s.Attrs) > 0 {
		b.WriteString(" [")
		for i, a := range s.Attrs {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "%s=%d", a.Key, a.Value)
		}
		b.WriteByte(']')
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.write(b, depth+1)
	}
}

// Find returns the first descendant span (including s itself) with the
// given name, pre-order, or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if found := s.Children[i].Find(name); found != nil {
			return found
		}
	}
	return nil
}

// FindAll appends every descendant span (including s itself) with the given
// name, pre-order.
func (s *SpanSnapshot) FindAll(name string) []SpanSnapshot {
	if s == nil {
		return nil
	}
	var out []SpanSnapshot
	var walk func(sp SpanSnapshot)
	walk = func(sp SpanSnapshot) {
		if sp.Name == name {
			out = append(out, sp)
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(*s)
	return out
}
