package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// TraceContext identifies one position in a distributed trace: the 128-bit
// trace ID minted once per query at the system entry point, the span ID of
// the caller (remote spans attach under it during cross-node assembly), and
// the head-based sampling decision. The zero value means "no trace": RPCs
// from callers without a tracing layer carry it, and receivers fall back to
// their pre-tracing local behaviour, which is the compatibility path for
// envelopes produced by older binaries.
//
// All fields are exported so the context rides the transports' gob request
// envelopes unchanged.
type TraceContext struct {
	TraceHi uint64 // high 64 bits of the trace ID
	TraceLo uint64 // low 64 bits of the trace ID
	SpanID  uint64 // the caller-side span the receiver's spans belong under
	Sampled bool   // head-based sampling decision, made once at the root
}

// NewTraceContext mints a fresh sampled trace identity from crypto/rand.
// Only sampled queries mint contexts, so the entropy read is off the
// unsampled hot path.
func NewTraceContext() TraceContext {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a non-zero
		// constant keeps the context valid even if it somehow does.
		b[15] = 1
	}
	tc := TraceContext{
		TraceHi: binary.BigEndian.Uint64(b[:8]),
		TraceLo: binary.BigEndian.Uint64(b[8:]),
		Sampled: true,
	}
	if tc.TraceHi|tc.TraceLo == 0 {
		tc.TraceLo = 1
	}
	return tc
}

// UnsampledContext returns the sentinel context a tracing-aware caller
// propagates for queries the head sampler skipped: Valid (so receivers know
// a tracing layer exists upstream and suppress their own local tracing)
// but not Sampled (so they record nothing). It needs no entropy, keeping
// the unsampled path allocation- and syscall-free.
func UnsampledContext() TraceContext {
	return TraceContext{TraceLo: 1}
}

// Valid reports whether the context carries a trace identity.
func (tc TraceContext) Valid() bool { return tc.TraceHi|tc.TraceLo != 0 }

// TraceID renders the 128-bit trace ID as 32 lowercase hex characters, the
// form used in logs, /debug/trace URLs and exemplars. Invalid contexts
// render as the empty string.
func (tc TraceContext) TraceID() string {
	if !tc.Valid() {
		return ""
	}
	return fmt.Sprintf("%016x%016x", tc.TraceHi, tc.TraceLo)
}

// WithParent returns a copy whose SpanID is the given caller-side span,
// the context to propagate on an outgoing RPC issued under that span.
func (tc TraceContext) WithParent(spanID uint64) TraceContext {
	tc.SpanID = spanID
	return tc
}

// traceCtxKey keys a TraceContext inside a context.Context.
type traceCtxKey struct{}

// ContextWithTrace attaches a trace context for downstream transports and
// handlers. The in-memory transport propagates it implicitly (the handler
// receives the caller's context); the TCP transport extracts it here and
// re-injects it server-side from the request envelope.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the trace context attached to ctx, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// Sampler makes head-based sampling decisions at a fixed rate using a
// deterministic 1-in-N counter — cheaper and lower-variance than a PRNG,
// and immune to coordinated omission of rare slow queries under steady
// load. A nil *Sampler never samples.
type Sampler struct {
	every uint64 // 0 = never, 1 = always, N = one query in N
	n     atomic.Uint64
}

// NewSampler builds a sampler for the given rate: rate >= 1 samples every
// query, rate <= 0 samples none, and intermediate rates sample one query in
// round(1/rate).
func NewSampler(rate float64) *Sampler {
	s := &Sampler{}
	switch {
	case rate >= 1:
		s.every = 1
	case rate <= 0:
		s.every = 0
	default:
		s.every = uint64(1/rate + 0.5)
		if s.every < 1 {
			s.every = 1
		}
	}
	return s
}

// Sample reports whether the next query should be traced.
func (s *Sampler) Sample() bool {
	if s == nil || s.every == 0 {
		return false
	}
	if s.every == 1 {
		return true
	}
	return s.n.Add(1)%s.every == 1
}
