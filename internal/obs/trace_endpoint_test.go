package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getStatus(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestTraceEndpoint(t *testing.T) {
	tr := NewTracer(8)
	tc := NewTraceContext()
	sp := tr.StartTrace("search", tc)
	sp.SetNode("10.0.0.1:1")
	sp.Child("fanout").End()
	sp.End()
	h := Handler(nil, tr)

	code, body := getStatus(t, h, "/debug/trace/"+tc.TraceID())
	if code != http.StatusOK {
		t.Fatalf("known trace: status %d\n%s", code, body)
	}
	for _, want := range []string{"search", "fanout", "@10.0.0.1:1"} {
		if !strings.Contains(body, want) {
			t.Errorf("trace text missing %q:\n%s", want, body)
		}
	}

	code, body = getStatus(t, h, "/debug/trace/"+tc.TraceID()+"?format=json")
	if code != http.StatusOK {
		t.Fatalf("json trace: status %d", code)
	}
	var spans []SpanSnapshot
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0].TraceID != tc.TraceID() {
		t.Errorf("json spans = %+v", spans)
	}

	if code, _ = getStatus(t, h, "/debug/trace/feedfacefeedfacefeedfacefeedface"); code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", code)
	}
	if code, _ = getStatus(t, h, "/debug/trace/"); code != http.StatusNotFound {
		t.Errorf("empty trace id: status %d, want 404", code)
	}
}

func TestTraceEndpointUsesSource(t *testing.T) {
	var asked string
	src := func(id string) []SpanSnapshot {
		asked = id
		return []SpanSnapshot{{Name: "assembled", TraceID: id}}
	}
	h := HandlerWithTraces(nil, nil, src)
	code, body := getStatus(t, h, "/debug/trace/abc123")
	if code != http.StatusOK || asked != "abc123" || !strings.Contains(body, "assembled") {
		t.Errorf("source not consulted: status=%d asked=%q body=%q", code, asked, body)
	}
}

// Regression: before the nil-sink hardening, /debug/spans and
// /debug/trace/{id} dereferenced a nil tracer/registry and panicked the
// serving goroutine; Handler documents that "either may be nil".
func TestHandlerNilSinksDoNotPanic(t *testing.T) {
	h := Handler(nil, nil)
	if code, body := getStatus(t, h, "/debug/spans?format=json"); code != http.StatusOK || strings.TrimSpace(body) != "null" && strings.TrimSpace(body) != "[]" {
		t.Errorf("/debug/spans with nil tracer: status %d body %q", code, body)
	}
	if code, _ := getStatus(t, h, "/debug/spans"); code != http.StatusOK {
		t.Errorf("/debug/spans text with nil tracer: status %d", code)
	}
	if code, _ := getStatus(t, h, "/debug/trace/abc"); code != http.StatusNotFound {
		t.Errorf("/debug/trace with nil sinks: status %d, want 404", code)
	}
	if code, _ := getStatus(t, h, "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics with nil registry: status %d", code)
	}
}
