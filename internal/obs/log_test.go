package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// TestLogOutputShape pins the structured log format both CLIs emit: one
// JSON object per line with time/level/msg, base attributes on every
// record, and — after WithTrace — the 32-hex trace_id.
func TestLogOutputShape(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo, slog.String("node", "10.0.0.1:7946"))
	tc := NewTraceContext()
	WithTrace(l, tc).Info("slow query", slog.Int("hits", 3))
	l.Debug("suppressed") // below the configured level

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[0])
	}
	want := map[string]any{
		"level":    "INFO",
		"msg":      "slow query",
		"node":     "10.0.0.1:7946",
		"trace_id": tc.TraceID(),
		"hits":     float64(3),
	}
	for k, v := range want {
		if rec[k] != v {
			t.Errorf("record[%q] = %v, want %v", k, rec[k], v)
		}
	}
	if _, ok := rec["time"]; !ok {
		t.Error("record has no time field")
	}
}

func TestWithTraceNoOpCases(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo)
	if got := WithTrace(l, TraceContext{}); got != l {
		t.Error("invalid context did not return the logger unchanged")
	}
	if got := WithTrace(nil, NewTraceContext()); got != nil {
		t.Error("nil logger did not stay nil")
	}
	WithTrace(l, TraceContext{}).Info("ok")
	if strings.Contains(buf.String(), "trace_id") {
		t.Errorf("trace_id stamped from invalid context:\n%s", buf.String())
	}
}
