package obs

import (
	"io"
	"log/slog"
)

// NewLogger builds the structured logger both CLIs share: one JSON object
// per line on w, machine-parseable (time/level/msg plus attrs), with any
// base attributes (e.g. node identity) stamped on every record. The
// output shape is pinned by TestLogOutputShape.
func NewLogger(w io.Writer, level slog.Level, attrs ...slog.Attr) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	if len(attrs) == 0 {
		return slog.New(h)
	}
	return slog.New(h.WithAttrs(attrs))
}

// WithTrace returns a logger stamping every record with the trace ID, so
// log lines grep-correlate with /debug/trace/{id}. Invalid contexts (no
// trace) return l unchanged; a nil l returns nil (callers using optional
// logging guard on nil themselves).
func WithTrace(l *slog.Logger, tc TraceContext) *slog.Logger {
	if l == nil || !tc.Valid() {
		return l
	}
	return l.With(slog.String("trace_id", tc.TraceID()))
}
