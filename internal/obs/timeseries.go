package obs

import (
	"context"
	"sync"
	"time"
)

// DefaultSampleInterval and DefaultHistorySamples shape the windowed
// telemetry ring when TimeSeriesConfig leaves them zero: one snapshot per
// second, five minutes retained.
const (
	DefaultSampleInterval = time.Second
	DefaultHistorySamples = 300
)

// TimeSeriesConfig shapes a TimeSeries. The zero value selects the defaults
// (1s interval, 300 samples retained, wall clock).
type TimeSeriesConfig struct {
	// Interval is the sampling period of the Run loop and the nominal
	// spacing of ring entries.
	Interval time.Duration
	// Capacity is the number of interval samples the ring retains.
	Capacity int
	// Clock overrides the time source for tests; nil uses time.Now. Sample
	// reads it once per tick, so a deterministic clock yields a fully
	// deterministic ring.
	Clock func() time.Time
}

func (cfg TimeSeriesConfig) withDefaults() TimeSeriesConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultSampleInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultHistorySamples
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// HistPoint is one histogram's activity during a single sample interval:
// the count/sum deltas and the per-bucket count deltas between two
// consecutive registry snapshots. Buckets follow the fixed
// HistogramBuckets layout, so windowed quantiles come from summing
// HistPoints and calling QuantileFromBuckets, and cluster-wide merges add
// element-wise exactly like cumulative snapshots do.
type HistPoint struct {
	Count   int64
	Sum     int64
	Buckets []int64 `json:",omitempty"`
}

// Quantile estimates the q-quantile of the interval's observations.
func (h HistPoint) Quantile(q float64) int64 { return QuantileFromBuckets(h.Buckets, q) }

// Point is one interval of windowed telemetry: every counter's delta over
// the interval, every gauge's instantaneous reading at the end of it, and
// every histogram's interval activity. Counters are deltas — divide by
// Elapsed for a rate — so a Point is mergeable across nodes by plain
// addition, unlike cumulative snapshots whose zero points differ per
// process.
type Point struct {
	// T is the sample timestamp (the end of the interval).
	T time.Time
	// Elapsed is the measured wall time since the previous sample. It can
	// differ from the configured interval under scheduler delay; rates must
	// use it, not the nominal interval.
	Elapsed time.Duration
	// Counters maps counter name to its delta over the interval. Deltas are
	// non-negative because counters are monotonic (property-tested).
	Counters map[string]int64 `json:",omitempty"`
	// Gauges maps gauge name to its reading at sample time.
	Gauges map[string]int64 `json:",omitempty"`
	// Hists maps histogram name to its interval activity.
	Hists map[string]HistPoint `json:",omitempty"`
}

// Rate returns the named counter's per-second rate over the interval.
func (p Point) Rate(name string) float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Counters[name]) / p.Elapsed.Seconds()
}

// History is an ordered window of telemetry points, oldest first — the unit
// served at /metrics/history, shipped in wire.MetricsHistoryResult, and
// merged cluster-wide by MergeHistories.
type History struct {
	// Node labels the originating process ("" for a merged view).
	Node string `json:",omitempty"`
	// Interval is the nominal sampling period.
	Interval time.Duration
	// Points holds one entry per retained interval, oldest first.
	Points []Point
}

// Window returns the trailing sub-history covering at most d of wall time
// (0 returns h unchanged). The cut uses the points' own timestamps, so it
// is exact under deterministic clocks too.
func (h History) Window(d time.Duration) History {
	if d <= 0 || len(h.Points) == 0 {
		return h
	}
	cut := h.Points[len(h.Points)-1].T.Add(-d)
	lo := len(h.Points)
	for lo > 0 && h.Points[lo-1].T.After(cut) {
		lo--
	}
	out := h
	out.Points = h.Points[lo:]
	return out
}

// Rate returns the named counter's mean per-second rate over the trailing
// window d (0 = the whole history).
func (h History) Rate(name string, d time.Duration) float64 {
	w := h.Window(d)
	var total int64
	var elapsed time.Duration
	for _, p := range w.Points {
		total += p.Counters[name]
		elapsed += p.Elapsed
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(total) / elapsed.Seconds()
}

// CounterSum returns the named counter's total delta over the trailing
// window d (0 = the whole history).
func (h History) CounterSum(name string, d time.Duration) int64 {
	var total int64
	for _, p := range h.Window(d).Points {
		total += p.Counters[name]
	}
	return total
}

// Quantile estimates the q-quantile of the named histogram's observations
// within the trailing window d (0 = the whole history), by summing the
// per-interval bucket deltas — a true windowed quantile, not a quantile of
// quantiles. Returns 0 when the window saw no observations.
func (h History) Quantile(name string, q float64, d time.Duration) int64 {
	buckets, n := h.windowBuckets(name, d)
	if n == 0 {
		return 0
	}
	return QuantileFromBuckets(buckets, q)
}

// HistCount returns how many observations the named histogram recorded
// within the trailing window d.
func (h History) HistCount(name string, d time.Duration) int64 {
	_, n := h.windowBuckets(name, d)
	return n
}

func (h History) windowBuckets(name string, d time.Duration) ([]int64, int64) {
	var buckets []int64
	var n int64
	for _, p := range h.Window(d).Points {
		hp, ok := p.Hists[name]
		if !ok {
			continue
		}
		n += hp.Count
		if buckets == nil {
			buckets = make([]int64, HistogramBuckets)
		}
		for i, c := range hp.Buckets {
			if i < len(buckets) {
				buckets[i] += c
			}
		}
	}
	return buckets, n
}

// GaugeLast returns the named gauge's most recent reading (0 when the
// history is empty or never saw the gauge).
func (h History) GaugeLast(name string) int64 {
	for i := len(h.Points) - 1; i >= 0; i-- {
		if v, ok := h.Points[i].Gauges[name]; ok {
			return v
		}
	}
	return 0
}

// GaugeSlope returns the named gauge's mean growth per second over the
// trailing window d — positive when it is climbing (e.g. a hint queue that
// is not draining, a goroutine leak).
func (h History) GaugeSlope(name string, d time.Duration) float64 {
	w := h.Window(d)
	first, last := int64(0), int64(0)
	firstT, lastT := time.Time{}, time.Time{}
	seen := false
	for _, p := range w.Points {
		v, ok := p.Gauges[name]
		if !ok {
			continue
		}
		if !seen {
			first, firstT, seen = v, p.T, true
		}
		last, lastT = v, p.T
	}
	if !seen || !lastT.After(firstT) {
		return 0
	}
	return float64(last-first) / lastT.Sub(firstT).Seconds()
}

// MergeHistories folds per-node histories into one cluster-wide view:
// counter deltas and gauge readings sum, histogram interval activity adds
// bucket-wise (so windowed quantiles reflect the merged distribution).
// Points align from the most recent backwards — the sampling clocks are
// independent but the periods match, so index-from-the-end alignment is
// within one interval of true time alignment. Timestamps come from the
// first history; the merged length is the shortest input's.
func MergeHistories(hs ...History) History {
	var nonEmpty []History
	for _, h := range hs {
		if len(h.Points) > 0 {
			nonEmpty = append(nonEmpty, h)
		}
	}
	if len(nonEmpty) == 0 {
		return History{}
	}
	out := History{Interval: nonEmpty[0].Interval}
	n := len(nonEmpty[0].Points)
	for _, h := range nonEmpty[1:] {
		if len(h.Points) < n {
			n = len(h.Points)
		}
	}
	out.Points = make([]Point, n)
	for i := 0; i < n; i++ {
		// i counts from the end: merged point n-1-i sums every history's
		// point len-1-i.
		base := nonEmpty[0].Points[len(nonEmpty[0].Points)-1-i]
		merged := Point{
			T:        base.T,
			Elapsed:  base.Elapsed,
			Counters: make(map[string]int64),
			Gauges:   make(map[string]int64),
			Hists:    make(map[string]HistPoint),
		}
		for _, h := range nonEmpty {
			p := h.Points[len(h.Points)-1-i]
			for name, v := range p.Counters {
				merged.Counters[name] += v
			}
			for name, v := range p.Gauges {
				merged.Gauges[name] += v
			}
			for name, hp := range p.Hists {
				agg := merged.Hists[name]
				agg.Count += hp.Count
				agg.Sum += hp.Sum
				if agg.Buckets == nil {
					agg.Buckets = make([]int64, HistogramBuckets)
				}
				for b, c := range hp.Buckets {
					if b < len(agg.Buckets) {
						agg.Buckets[b] += c
					}
				}
				merged.Hists[name] = agg
			}
		}
		out.Points[n-1-i] = merged
	}
	return out
}

// TimeSeries converts a point-in-time Registry into windowed telemetry: a
// fixed-capacity ring of periodic snapshots, delta-encoded so counters
// become rates and histograms become per-interval distributions. Drive it
// with Run (a ticker loop) or call Sample directly under a deterministic
// clock. All methods are safe for concurrent use; a nil *TimeSeries is a
// valid no-op source, matching the registry's nil-sink contract.
type TimeSeries struct {
	reg  *Registry
	cfg  TimeSeriesConfig
	node string

	mu         sync.Mutex
	collectors []func()
	onSample   []func(Point)
	prev       map[string]Snapshot // last raw snapshot, by metric name
	prevT      time.Time
	ring       []Point // ring[head] is the next write slot
	head       int
	filled     int
	total      int64
}

// NewTimeSeries builds a windowed sampler over reg. No goroutine starts
// until Run; the ring stays empty until the first Sample.
func NewTimeSeries(reg *Registry, cfg TimeSeriesConfig) *TimeSeries {
	cfg = cfg.withDefaults()
	return &TimeSeries{
		reg:  reg,
		cfg:  cfg,
		ring: make([]Point, cfg.Capacity),
	}
}

// SetNode labels the history with the owning process's identity.
func (ts *TimeSeries) SetNode(node string) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	ts.node = node
	ts.mu.Unlock()
}

// Interval returns the configured sampling period (0 on nil).
func (ts *TimeSeries) Interval() time.Duration {
	if ts == nil {
		return 0
	}
	return ts.cfg.Interval
}

// AddCollector registers fn to run at the start of every Sample, before
// the registry snapshot is taken — the hook a RuntimeCollector uses to
// fold goroutine/heap/GC readings into the same sampling cadence.
func (ts *TimeSeries) AddCollector(fn func()) {
	if ts == nil || fn == nil {
		return
	}
	ts.mu.Lock()
	ts.collectors = append(ts.collectors, fn)
	ts.mu.Unlock()
}

// OnSample registers fn to receive every completed Point — the hook the
// SLO watchdog evaluates on. fn runs synchronously inside Sample, off any
// query path; keep it cheap.
func (ts *TimeSeries) OnSample(fn func(Point)) {
	if ts == nil || fn == nil {
		return
	}
	ts.mu.Lock()
	ts.onSample = append(ts.onSample, fn)
	ts.mu.Unlock()
}

// Sample takes one snapshot, delta-encodes it against the previous one,
// appends the resulting Point to the ring (overwriting the oldest entry
// once full) and returns it. The first call primes the baseline and
// records a zero-delta point. No-op zero Point on a nil receiver.
func (ts *TimeSeries) Sample() Point {
	if ts == nil {
		return Point{}
	}
	ts.mu.Lock()
	collectors := ts.collectors
	hooks := ts.onSample
	ts.mu.Unlock()
	// Collectors run outside the lock: ReadMemStats may block briefly and
	// concurrent History() readers should not wait on it.
	for _, fn := range collectors {
		fn()
	}
	now := ts.cfg.Clock()
	snap := ts.reg.Snapshot()

	ts.mu.Lock()
	p := Point{
		T:        now,
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Hists:    make(map[string]HistPoint),
	}
	if !ts.prevT.IsZero() {
		p.Elapsed = now.Sub(ts.prevT)
	}
	cur := make(map[string]Snapshot, len(snap))
	for _, s := range snap {
		cur[s.Name] = s
		switch s.Kind {
		case "counter":
			prev := ts.prev[s.Name] // zero Snapshot when new: delta from 0
			d := s.Value - prev.Value
			if d < 0 {
				// A counter can only run backwards if the registry was
				// swapped or a gauge func is misdeclared; clamp rather than
				// emit a negative rate.
				d = 0
			}
			p.Counters[s.Name] = d
		case "gauge":
			p.Gauges[s.Name] = s.Value
		case "histogram":
			prev := ts.prev[s.Name]
			hp := HistPoint{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
			if hp.Count < 0 {
				hp = HistPoint{}
			}
			if hp.Count > 0 {
				hp.Buckets = make([]int64, len(s.Buckets))
				copy(hp.Buckets, s.Buckets)
				for i, c := range prev.Buckets {
					if i < len(hp.Buckets) {
						hp.Buckets[i] -= c
					}
				}
			}
			p.Hists[s.Name] = hp
		}
	}
	ts.prev = cur
	ts.prevT = now
	ts.ring[ts.head] = p
	ts.head = (ts.head + 1) % len(ts.ring)
	if ts.filled < len(ts.ring) {
		ts.filled++
	}
	ts.total++
	ts.mu.Unlock()

	for _, fn := range hooks {
		fn(p)
	}
	return p
}

// Samples reports how many samples were ever taken (not capped by the ring
// capacity).
func (ts *TimeSeries) Samples() int64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.total
}

// History returns the retained points, oldest first, trimmed to the
// trailing window d (0 = everything retained). The returned slices are
// copies; callers may hold them across further sampling.
func (ts *TimeSeries) History(d time.Duration) History {
	if ts == nil {
		return History{}
	}
	ts.mu.Lock()
	h := History{Node: ts.node, Interval: ts.cfg.Interval, Points: make([]Point, 0, ts.filled)}
	start := ts.head - ts.filled
	if start < 0 {
		start += len(ts.ring)
	}
	for i := 0; i < ts.filled; i++ {
		h.Points = append(h.Points, ts.ring[(start+i)%len(ts.ring)])
	}
	ts.mu.Unlock()
	return h.Window(d)
}

// Run samples on the configured interval until ctx is cancelled. Call from
// a dedicated goroutine:
//
//	go ts.Run(ctx)
func (ts *TimeSeries) Run(ctx context.Context) {
	if ts == nil {
		return
	}
	tick := time.NewTicker(ts.cfg.Interval)
	defer tick.Stop()
	ts.Sample() // prime the delta baseline immediately
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			ts.Sample()
		}
	}
}
