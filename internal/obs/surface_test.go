package obs

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// getRec is get() but returns the recorder so header assertions can run.
func getRec(h http.Handler, url string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestTelemetryHeaders verifies every /metrics* and /debug/* response
// carries Cache-Control: no-store and an explicit Content-Type, while
// application routes on the same mux are left alone.
func TestTelemetryHeaders(t *testing.T) {
	reg, tr := testSinks()
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 8, Clock: clk.Now})
	clk.Sample(ts, time.Second)
	w := NewWatchdog(ts, SLOConfig{})
	appRoute := Route{Pattern: "/v1/echo", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})}
	h := Surface{Registry: reg, Tracer: tr, History: ts, SLO: w,
		Health: func() any { return "ok" }, Routes: []Route{appRoute}}.Handler()

	telemetry := []string{
		"/metrics",
		"/metrics?format=json",
		"/metrics/history",
		"/debug/slo",
		"/debug/health",
		"/debug/spans",
		"/debug/vars",
		"/debug/pprof/cmdline",
	}
	for _, url := range telemetry {
		rec := getRec(h, url)
		if rec.Code != http.StatusOK {
			t.Errorf("%s status = %d", url, rec.Code)
			continue
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", url, cc)
		}
		if ct := rec.Header().Get("Content-Type"); ct == "" {
			t.Errorf("%s has no explicit Content-Type", url)
		}
	}
	// Even 404s on the telemetry prefix must not be cacheable.
	if rec := getRec(h, "/debug/trace/unknown"); rec.Header().Get("Cache-Control") != "no-store" {
		t.Error("/debug/trace 404 is cacheable")
	}
	// The application route is not telemetry and stays untouched.
	if rec := getRec(h, "/v1/echo"); rec.Header().Get("Cache-Control") != "" {
		t.Error("application route got the telemetry Cache-Control header")
	}
}

func TestHistoryEndpointLocal(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 32, Clock: clk.Now})
	ts.SetNode("n1")
	for i := 0; i < 5; i++ {
		reg.Counter("reqs").Add(10)
		clk.Sample(ts, time.Second)
	}
	h := Surface{Registry: reg, History: ts}.Handler()

	rec := getRec(h, "/metrics/history?window=3s&nodes=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var ch ClusterHistory
	if err := json.Unmarshal(rec.Body.Bytes(), &ch); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body)
	}
	if len(ch.Merged.Points) == 0 || len(ch.Merged.Points) > 3 {
		t.Fatalf("window=3s returned %d points", len(ch.Merged.Points))
	}
	if len(ch.Nodes) != 1 || ch.Nodes[0].Node != "n1" {
		t.Fatalf("nodes=1 breakdown = %+v", ch.Nodes)
	}
	if ch.Merged.Points[len(ch.Merged.Points)-1].Counters["reqs"] != 10 {
		t.Fatalf("last point lost the counter delta: %+v", ch.Merged.Points)
	}

	if rec := getRec(h, "/metrics/history?window=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad window status = %d, want 400", rec.Code)
	}
	// No sampler attached → 404.
	if rec := getRec(Surface{Registry: reg}.Handler(), "/metrics/history"); rec.Code != http.StatusNotFound {
		t.Fatalf("no-sampler status = %d, want 404", rec.Code)
	}
}

func TestHistoryEndpointClusterSource(t *testing.T) {
	calls := 0
	src := HistorySource(func(window time.Duration, perNode bool) (ClusterHistory, error) {
		calls++
		if window != 7*time.Second {
			t.Errorf("window = %v, want 7s", window)
		}
		if !perNode {
			t.Error("perNode not forwarded")
		}
		return ClusterHistory{Down: []string{"node-2"}}, nil
	})
	h := Surface{Cluster: src}.Handler()
	rec := getRec(h, "/metrics/history?window=7s&nodes=1")
	if rec.Code != http.StatusOK || calls != 1 {
		t.Fatalf("status=%d calls=%d", rec.Code, calls)
	}
	var ch ClusterHistory
	if err := json.Unmarshal(rec.Body.Bytes(), &ch); err != nil {
		t.Fatal(err)
	}
	if len(ch.Down) != 1 || ch.Down[0] != "node-2" {
		t.Fatalf("down = %v", ch.Down)
	}

	failing := Surface{Cluster: func(time.Duration, bool) (ClusterHistory, error) {
		return ClusterHistory{}, errors.New("fan-out failed")
	}}.Handler()
	if rec := getRec(failing, "/metrics/history"); rec.Code != http.StatusBadGateway {
		t.Fatalf("failing source status = %d, want 502", rec.Code)
	}
}

func TestSLOEndpoint(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := NewTimeSeries(reg, TimeSeriesConfig{Interval: time.Second, Capacity: 32, Clock: clk.Now})
	w := NewWatchdog(ts, SLOConfig{
		Fast: 2 * time.Second,
		Slow: 4 * time.Second,
		Objectives: []Objective{{
			Name: "shed_rate", Kind: ObjectiveRatio,
			Num: "sheds", Denom: "reqs", Threshold: 0.1, MinEvents: 1,
		}},
	})
	w.Watch()
	h := Surface{Registry: reg, History: ts, SLO: w}.Handler()

	rec := getRec(h, "/debug/slo")
	var st SLOStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body)
	}
	if st.Level != "ok" || len(st.Objectives) != 1 {
		t.Fatalf("initial status = %+v", st)
	}

	for i := 0; i < 6; i++ {
		reg.Counter("reqs").Add(10)
		reg.Counter("sheds").Add(9)
		clk.Sample(ts, time.Second)
	}
	rec = getRec(h, "/debug/slo")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Level != "page" {
		t.Fatalf("breached level = %s, want page\n%s", st.Level, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "shed_rate") {
		t.Fatalf("objective detail missing: %s", rec.Body)
	}

	// No watchdog attached → 404.
	if rec := getRec(Surface{Registry: reg}.Handler(), "/debug/slo"); rec.Code != http.StatusNotFound {
		t.Fatalf("no-watchdog status = %d, want 404", rec.Code)
	}
}
