package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ProfileConfig shapes a ProfileCapturer.
type ProfileConfig struct {
	// Dir is where profiles land; created if missing.
	Dir string
	// CPUDuration is how long each CPU profile records (default 5s).
	CPUDuration time.Duration
	// MaxSets bounds the on-disk ring: at most this many capture sets
	// (one CPU + one heap profile each) are retained, oldest deleted
	// first (default 8).
	MaxSets int
	// Clock overrides the timestamp source for tests; nil uses time.Now.
	Clock func() time.Time
}

// ProfileCapturer writes pprof CPU+heap profile pairs into a bounded
// on-disk ring when the SLO watchdog reports a breach. Captures run
// asynchronously (CPU profiling blocks for CPUDuration) and overlap-guard:
// a breach arriving while a capture is in flight is dropped, not queued,
// so a flapping objective cannot pile up profiling work on a node that is
// already in trouble.
type ProfileCapturer struct {
	cfg  ProfileConfig
	busy atomic.Bool

	mu       sync.Mutex
	captured int64
}

// NewProfileCapturer builds a capturer rooted at cfg.Dir, creating the
// directory. Returns an error only when the directory cannot be made.
func NewProfileCapturer(cfg ProfileConfig) (*ProfileCapturer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: profile dir required")
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 5 * time.Second
	}
	if cfg.MaxSets <= 0 {
		cfg.MaxSets = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	return &ProfileCapturer{cfg: cfg}, nil
}

// Captured reports how many capture sets completed. Nil-safe.
func (pc *ProfileCapturer) Captured() int64 {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.captured
}

// OnBreach is the Watchdog hook: it kicks off an async capture tagged with
// the breaching objective's name. Safe on nil.
func (pc *ProfileCapturer) OnBreach(st ObjectiveStatus) {
	if pc == nil {
		return
	}
	go pc.Capture(st.Name)
}

// Capture records one CPU profile (blocking CPUDuration) and one heap
// profile into the ring, then prunes to MaxSets. Returns false when
// skipped because another capture was in flight or CPU profiling was
// already active (e.g. an operator using /debug/pprof/profile).
func (pc *ProfileCapturer) Capture(reason string) bool {
	if pc == nil {
		return false
	}
	if !pc.busy.CompareAndSwap(false, true) {
		return false
	}
	defer pc.busy.Store(false)

	stamp := pc.cfg.Clock().UTC().Format("20060102T150405.000")
	tag := sanitizeProfileTag(reason)
	base := filepath.Join(pc.cfg.Dir, fmt.Sprintf("%s_%s", stamp, tag))

	cpuOK := pc.captureCPU(base + "_cpu.pprof")
	heapOK := pc.captureHeap(base + "_heap.pprof")
	if cpuOK || heapOK {
		pc.mu.Lock()
		pc.captured++
		pc.mu.Unlock()
	}
	pc.prune()
	return cpuOK || heapOK
}

func (pc *ProfileCapturer) captureCPU(path string) bool {
	f, err := os.Create(path)
	if err != nil {
		return false
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is running; don't fight it.
		f.Close()
		os.Remove(path)
		return false
	}
	time.Sleep(pc.cfg.CPUDuration)
	pprof.StopCPUProfile()
	return f.Close() == nil
}

func (pc *ProfileCapturer) captureHeap(path string) bool {
	f, err := os.Create(path)
	if err != nil {
		return false
	}
	err = pprof.Lookup("heap").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return false
	}
	return true
}

// prune deletes the oldest capture sets beyond MaxSets. File names embed a
// sortable timestamp, so lexical order is capture order.
func (pc *ProfileCapturer) prune() {
	entries, err := os.ReadDir(pc.cfg.Dir)
	if err != nil {
		return
	}
	// Group by "stamp_tag" prefix so a CPU+heap pair counts as one set.
	sets := map[string][]string{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".pprof") {
			continue
		}
		key := strings.TrimSuffix(name, "_cpu.pprof")
		key = strings.TrimSuffix(key, "_heap.pprof")
		sets[key] = append(sets[key], name)
	}
	if len(sets) <= pc.cfg.MaxSets {
		return
	}
	keys := make([]string, 0, len(sets))
	for k := range sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys[:len(keys)-pc.cfg.MaxSets] {
		for _, name := range sets[k] {
			os.Remove(filepath.Join(pc.cfg.Dir, name))
		}
	}
}

func sanitizeProfileTag(s string) string {
	if s == "" {
		return "manual"
	}
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}
