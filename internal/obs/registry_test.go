package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("requests") != c {
		t.Fatal("second lookup created a new counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	r.SetGaugeFunc("derived", func() int64 { return 42 })
	snaps := r.Snapshot()
	byName := map[string]Snapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	if byName["derived"].Value != 42 || byName["derived"].Kind != "gauge" {
		t.Fatalf("gauge func snapshot = %+v", byName["derived"])
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i-1].Name > snaps[i].Name {
			t.Fatalf("snapshot not sorted: %q after %q", snaps[i].Name, snaps[i-1].Name)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every operation on a nil registry and its nil metrics must be a no-op,
	// never a panic: instrumented components run happily without sinks.
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(5)
	r.SetGaugeFunc("f", func() int64 { return 1 })
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v", got)
	}
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil metrics returned nonzero values")
	}
	if r.Histogram("z").Count() != 0 || r.Histogram("z").Quantile(0.5) != 0 {
		t.Fatal("nil histogram returned nonzero values")
	}
}

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3},
		{9, 4}, {16, 4}, {17, 5}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		v := c.v
		if v < 0 {
			v = 0 // Observe clamps before bucketing
		}
		if got := bucketIndex(v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's upper bound must map back into its own bucket.
	for i := 0; i < HistogramBuckets-1; i++ {
		if got := bucketIndex(bucketUpper(i)); got != i {
			t.Errorf("bucketUpper(%d) = %d lands in bucket %d", i, bucketUpper(i), got)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []int64{100, 200, 400, 800, -7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1500 { // -7 clamps to 0
		t.Fatalf("sum = %d", h.Sum())
	}
	var snap Snapshot
	for _, s := range r.Snapshot() {
		if s.Name == "lat" {
			snap = s
		}
	}
	if snap.Min != 0 || snap.Max != 800 {
		t.Fatalf("min/max = %d/%d, want 0/800", snap.Min, snap.Max)
	}
	if snap.Mean() != 300 {
		t.Fatalf("mean = %f", snap.Mean())
	}
}

// TestQuantileAccuracy pins the documented error bound: the estimate
// interpolates inside a power-of-two bucket, so it can never stray below
// half the true value or above twice it.
func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	const v = 1000
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < v/2 || got > 2*v {
			t.Errorf("Quantile(%g) = %d, want within [%d,%d]", q, got, v/2, 2*v)
		}
	}
	// A two-point distribution must separate the extremes: with 99 samples
	// at the low value and 1 at the high, the p50 and even the p99 rank land
	// on the low mode (the 99th smallest of 100 is still 10), while the max
	// quantile reaches the outlier.
	var h2 Histogram
	for i := 0; i < 99; i++ {
		h2.Observe(10)
	}
	h2.Observe(100000)
	if p50 := h2.Quantile(0.50); p50 > 20 {
		t.Errorf("p50 = %d, want <= 20", p50)
	}
	if p99 := h2.Quantile(0.99); p99 > 20 {
		t.Errorf("p99 = %d, want <= 20 (99 of 100 samples are 10)", p99)
	}
	if top := h2.Quantile(1); top < 50000 {
		t.Errorf("Quantile(1) = %d, want >= 50000", top)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

// TestConcurrentUpdates hammers one counter and one histogram from many
// goroutines; totals must be exact. Run with -race to double as the data
// race check for the whole registry path.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Get-or-create races with other goroutines on purpose.
				r.Counter("hits").Inc()
				r.Histogram("lat").Observe(int64(g*per + i))
				if i%100 == 0 {
					r.Snapshot() // concurrent readers must not wobble writers
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	h := r.Histogram("lat")
	if h.Count() != goroutines*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*per)
	}
	var snap Snapshot
	for _, s := range r.Snapshot() {
		if s.Name == "lat" {
			snap = s
		}
	}
	if snap.Min != 0 || snap.Max != goroutines*per-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", snap.Min, snap.Max, goroutines*per-1)
	}
	var bucketTotal int64
	for _, c := range snap.Buckets {
		bucketTotal += c
	}
	if bucketTotal != goroutines*per {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, goroutines*per)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("rpc").Add(3)
	b.Counter("rpc").Add(4)
	a.Counter("only_a").Inc()
	for i := 0; i < 10; i++ {
		a.Histogram("lat").Observe(100)
		b.Histogram("lat").Observe(10000)
	}
	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	byName := map[string]Snapshot{}
	for _, s := range merged {
		byName[s.Name] = s
	}
	if byName["rpc"].Value != 7 {
		t.Fatalf("merged counter = %d, want 7", byName["rpc"].Value)
	}
	if byName["only_a"].Value != 1 {
		t.Fatalf("unmatched counter lost: %+v", byName["only_a"])
	}
	lat := byName["lat"]
	if lat.Count != 20 || lat.Sum != 101000 {
		t.Fatalf("merged histogram count/sum = %d/%d", lat.Count, lat.Sum)
	}
	if lat.Min != 100 || lat.Max != 10000 {
		t.Fatalf("merged min/max = %d/%d", lat.Min, lat.Max)
	}
	// The merged distribution is bimodal; its median must sit at the low
	// mode and its p99 at the high mode, proving buckets really merged.
	if p50 := lat.Quantile(0.50); p50 > 200 {
		t.Errorf("merged p50 = %d, want <= 200", p50)
	}
	if p99 := lat.Quantile(0.99); p99 < 5000 {
		t.Errorf("merged p99 = %d, want >= 5000", p99)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("searches").Add(2)
	r.Histogram("search_ns").Observe(1500)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"searches 2\n", "search_ns_count 1\n", "search_ns_sum 1500\n", "search_ns_p50 ", "search_ns_p99 "} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}
