package obs

import (
	"runtime"
	"sync"
)

// Runtime metric names published by RuntimeCollector.
const (
	MetricGoroutines = "runtime_goroutines"
	MetricHeapBytes  = "runtime_heap_bytes"
	MetricHeapObjs   = "runtime_heap_objects"
	MetricGCPauseNS  = "runtime_gc_pause_ns"
	MetricGCCount    = "runtime_gc_count"
)

// RuntimeCollector folds Go runtime health — goroutine count, heap bytes,
// cumulative GC pause time — into a Registry on each Collect call. Gauge
// readings (goroutines, heap) are instantaneous; GC pause and cycle totals
// are published as counters carrying the delta since the previous Collect,
// so the time-series tier windows them like any other counter. Register it
// on a TimeSeries via AddCollector so readings share the sampling cadence:
//
//	ts.AddCollector(NewRuntimeCollector(reg).Collect)
type RuntimeCollector struct {
	reg *Registry

	mu          sync.Mutex
	lastPauseNS uint64
	lastGCCount uint32
}

// NewRuntimeCollector builds a collector publishing into reg.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	return &RuntimeCollector{reg: reg}
}

// Collect samples the runtime and publishes into the registry. Safe for
// concurrent use; nil receivers no-op.
func (rc *RuntimeCollector) Collect() {
	if rc == nil || rc.reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rc.reg.Gauge(MetricGoroutines).Set(int64(runtime.NumGoroutine()))
	rc.reg.Gauge(MetricHeapBytes).Set(int64(ms.HeapAlloc))
	rc.reg.Gauge(MetricHeapObjs).Set(int64(ms.HeapObjects))

	rc.mu.Lock()
	pauseDelta := ms.PauseTotalNs - rc.lastPauseNS
	gcDelta := ms.NumGC - rc.lastGCCount
	first := rc.lastPauseNS == 0 && rc.lastGCCount == 0
	rc.lastPauseNS = ms.PauseTotalNs
	rc.lastGCCount = ms.NumGC
	rc.mu.Unlock()
	if first {
		// Skip the process-lifetime backlog so the first window does not
		// report every GC since startup as having happened this interval.
		return
	}
	if pauseDelta > 0 {
		rc.reg.Counter(MetricGCPauseNS).Add(int64(pauseDelta))
	}
	if gcDelta > 0 {
		rc.reg.Counter(MetricGCCount).Add(int64(gcDelta))
	}
}
