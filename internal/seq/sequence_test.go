package seq

import (
	"strings"
	"testing"
)

func TestNewValidatesAndUppercases(t *testing.T) {
	s, err := New(0, "q", DNA, []byte("acGT"))
	if err != nil {
		t.Fatal(err)
	}
	if string(s.Data) != "ACGT" {
		t.Fatalf("data = %q", s.Data)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(0, "q", DNA, nil); err != ErrEmptySequence {
		t.Fatalf("err = %v, want ErrEmptySequence", err)
	}
}

func TestNewRejectsInvalidResidue(t *testing.T) {
	_, err := New(0, "bad", Protein, []byte("ACDEF!"))
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, "x", DNA, "XYZ!")
}

func TestWindowAndRegion(t *testing.T) {
	s := MustNew(0, "s", DNA, "ACGTACGT")
	if got := string(s.Window(2, 3)); got != "GTA" {
		t.Fatalf("Window = %q", got)
	}
	if got := string(s.Region(-5, 3)); got != "ACG" {
		t.Fatalf("Region(-5,3) = %q", got)
	}
	if got := string(s.Region(6, 100)); got != "GT" {
		t.Fatalf("Region(6,100) = %q", got)
	}
	if got := s.Region(5, 5); got != nil {
		t.Fatalf("Region(5,5) = %q, want nil", got)
	}
	if got := s.Region(7, 2); got != nil {
		t.Fatalf("inverted region = %q, want nil", got)
	}
}

func TestReverseComplement(t *testing.T) {
	s := MustNew(0, "s", DNA, "AACGTN")
	if got := string(s.ReverseComplement()); got != "NACGTT" {
		t.Fatalf("revcomp = %q", got)
	}
}

func TestSequenceString(t *testing.T) {
	s := MustNew(7, "chr1", DNA, "ACGT")
	got := s.String()
	for _, want := range []string{"dna", "#7", "chr1", "4 residues"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}

func TestSetAddAssignsDenseIDs(t *testing.T) {
	set := NewSet(Protein)
	for i, d := range []string{"ACD", "EFGH", "IKLMN"} {
		s, err := set.Add("s", []byte(d))
		if err != nil {
			t.Fatal(err)
		}
		if s.ID != ID(i) {
			t.Fatalf("id = %d, want %d", s.ID, i)
		}
	}
	if set.Len() != 3 {
		t.Fatalf("len = %d", set.Len())
	}
	if set.TotalResidues() != 3+4+5 {
		t.Fatalf("total = %d", set.TotalResidues())
	}
	if set.Get(1).Len() != 4 {
		t.Fatal("Get(1) wrong")
	}
	if set.Get(99) != nil {
		t.Fatal("Get out of range should be nil")
	}
}

func TestSetAddPropagatesError(t *testing.T) {
	set := NewSet(DNA)
	if _, err := set.Add("bad", []byte("AXQ")); err == nil {
		t.Fatal("expected validation error")
	}
	if set.Len() != 0 {
		t.Fatal("failed add must not grow the set")
	}
}
