package seq

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMaskLowComplexityPolyARun(t *testing.T) {
	// A poly-A tract inside random DNA must be masked; the flanks kept.
	rng := rand.New(rand.NewSource(1))
	flank := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = "ACGT"[rng.Intn(4)]
		}
		return out
	}
	left, right := flank(40), flank(40)
	data := append(append(append([]byte{}, left...), bytes.Repeat([]byte("A"), 30)...), right...)
	masked := MaskLowComplexity(data, DNA, 0, 0)
	if len(masked) != len(data) {
		t.Fatal("length changed")
	}
	// The centre of the run must be N.
	centre := masked[40+10 : 40+20]
	if strings.Count(string(centre), "N") < 8 {
		t.Fatalf("poly-A centre not masked: %s", centre)
	}
	// Input untouched.
	if data[45] != 'A' {
		t.Fatal("input mutated")
	}
}

func TestMaskLowComplexityLeavesComplexSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 300)
	const letters = "ARNDCQEGHILKMFPSTWYV"
	for i := range data {
		data[i] = letters[rng.Intn(len(letters))]
	}
	masked := MaskLowComplexity(data, Protein, 0, 0)
	if frac := MaskedFraction(masked, Protein); frac > 0.05 {
		t.Fatalf("random protein masked %.0f%%", frac*100)
	}
}

func TestMaskLowComplexityProteinRepeat(t *testing.T) {
	data := []byte("MKVLAAGWTY" + strings.Repeat("P", 25) + "MKVLAAGWTY")
	masked := MaskLowComplexity(data, Protein, 0, 0)
	if strings.Count(string(masked), "X") < 15 {
		t.Fatalf("proline run not masked: %s", masked)
	}
}

func TestMaskLowComplexityShortInput(t *testing.T) {
	data := []byte("ACG")
	masked := MaskLowComplexity(data, DNA, 12, 0)
	if string(masked) != "ACG" {
		t.Fatalf("short input changed: %s", masked)
	}
}

func TestMaskedFraction(t *testing.T) {
	if got := MaskedFraction([]byte("AXXA"), Protein); got != 0.5 {
		t.Fatalf("fraction = %f", got)
	}
	if got := MaskedFraction([]byte("ANNA"), DNA); got != 0.5 {
		t.Fatalf("DNA fraction = %f", got)
	}
	if MaskedFraction(nil, DNA) != 0 {
		t.Fatal("empty fraction")
	}
}
