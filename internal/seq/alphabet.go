// Package seq provides the biological sequence substrate used throughout
// Mendel: alphabets for DNA and protein data, sequence records, FASTA I/O,
// and sliding-window iteration.
//
// Sequences are stored as upper-case ASCII bytes. Every residue is validated
// against an Alphabet before it enters the system so that downstream distance
// and scoring code can index matrices without bounds checks.
package seq

import "fmt"

// Kind identifies the molecule type of a sequence.
type Kind uint8

// Molecule kinds supported by Mendel.
const (
	DNA Kind = iota
	Protein
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case DNA:
		return "dna"
	case Protein:
		return "protein"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Alphabet defines the residue set of a molecule kind. It maps residue bytes
// to dense indices usable with scoring and distance matrices.
type Alphabet struct {
	kind    Kind
	letters []byte    // dense index -> residue byte
	index   [256]int8 // residue byte -> dense index, -1 if invalid
	ambig   [256]bool // residues that are ambiguity codes
	comp    [256]byte // complement table (DNA only)
}

// DNAAlphabet is the nucleotide alphabet A, C, G, T plus the ambiguity
// code N. N participates in distance computations as a maximal mismatch.
var DNAAlphabet = newDNAAlphabet()

// ProteinAlphabet is the 20 standard amino acids plus the ambiguity codes
// B, Z, X and the stop/unknown symbol *. Ordering matches the BLOSUM and PAM
// matrices in internal/matrix.
var ProteinAlphabet = newProteinAlphabet()

// ProteinLetters is the canonical residue ordering shared with the scoring
// matrices: the 20 standard amino acids followed by B, Z, X and *.
const ProteinLetters = "ARNDCQEGHILKMFPSTWYVBZX*"

// DNALetters is the canonical nucleotide ordering.
const DNALetters = "ACGTN"

func newAlphabet(kind Kind, letters string, ambig string) *Alphabet {
	a := &Alphabet{kind: kind, letters: []byte(letters)}
	for i := range a.index {
		a.index[i] = -1
	}
	for i, c := range []byte(letters) {
		a.index[c] = int8(i)
		if c >= 'A' && c <= 'Z' {
			a.index[c+'a'-'A'] = int8(i) // accept lower case on input
		}
	}
	for _, c := range []byte(ambig) {
		a.ambig[c] = true
	}
	return a
}

func newDNAAlphabet() *Alphabet {
	a := newAlphabet(DNA, DNALetters, "N")
	pairs := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C', 'N': 'N'}
	for i := range a.comp {
		a.comp[i] = 'N'
	}
	for b, c := range pairs {
		a.comp[b] = c
	}
	return a
}

func newProteinAlphabet() *Alphabet {
	return newAlphabet(Protein, ProteinLetters, "BZX*")
}

// Kind reports the molecule kind this alphabet describes.
func (a *Alphabet) Kind() Kind { return a.kind }

// Len returns the number of residues in the alphabet.
func (a *Alphabet) Len() int { return len(a.letters) }

// Letters returns the residues in dense-index order. The caller must not
// modify the returned slice.
func (a *Alphabet) Letters() []byte { return a.letters }

// Index returns the dense index of residue c, or -1 if c is not part of the
// alphabet. Lower-case input is accepted.
func (a *Alphabet) Index(c byte) int { return int(a.index[c]) }

// Valid reports whether c is a residue of the alphabet (either case).
func (a *Alphabet) Valid(c byte) bool { return a.index[c] >= 0 }

// Ambiguous reports whether c is an ambiguity code such as N or X.
func (a *Alphabet) Ambiguous(c byte) bool { return a.ambig[c] }

// Normalize upper-cases s in place and verifies every residue. It returns an
// error identifying the first invalid byte.
func (a *Alphabet) Normalize(s []byte) error {
	for i, c := range s {
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
			s[i] = c
		}
		if a.index[c] < 0 {
			return fmt.Errorf("seq: invalid %s residue %q at position %d", a.kind, c, i)
		}
	}
	return nil
}

// Complement returns the complementary nucleotide. It panics if the alphabet
// is not DNA.
func (a *Alphabet) Complement(c byte) byte {
	if a.kind != DNA {
		panic("seq: Complement on non-DNA alphabet")
	}
	return a.comp[c]
}

// AlphabetFor returns the package-level alphabet for the given kind.
func AlphabetFor(kind Kind) *Alphabet {
	if kind == DNA {
		return DNAAlphabet
	}
	return ProteinAlphabet
}
