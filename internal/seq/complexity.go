package seq

import "math"

// MaskLowComplexity returns a copy of data with low-complexity regions
// replaced by the alphabet's ambiguity code (X for protein, N for DNA), in
// the spirit of BLAST's SEG/DUST filters: windows whose Shannon entropy
// falls below threshold bits are masked. Low-complexity tracts (poly-A
// runs, proline-rich repeats) otherwise seed floods of biologically
// meaningless matches.
//
// window is the examination width (0 selects 12) and threshold the entropy
// cutoff in bits (0 selects 2.2 for protein, 1.5 for DNA — values in the
// range conventionally used by SEG and DUST).
func MaskLowComplexity(data []byte, kind Kind, window int, threshold float64) []byte {
	if window <= 0 {
		window = 12
	}
	if threshold <= 0 {
		if kind == DNA {
			threshold = 1.5
		} else {
			threshold = 2.2
		}
	}
	maskByte := byte('X')
	if kind == DNA {
		maskByte = 'N'
	}
	out := append([]byte(nil), data...)
	if len(data) < window {
		return out
	}

	// Sliding window with incremental counts.
	var counts [256]int
	entropy := func() float64 {
		h := 0.0
		for _, c := range counts {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(window)
			h -= p * math.Log2(p)
		}
		return h
	}
	mask := make([]bool, len(data))
	for i := 0; i < window; i++ {
		counts[data[i]]++
	}
	if entropy() < threshold {
		for i := 0; i < window; i++ {
			mask[i] = true
		}
	}
	for start := 1; start+window <= len(data); start++ {
		counts[data[start-1]]--
		counts[data[start+window-1]]++
		if entropy() < threshold {
			for i := start; i < start+window; i++ {
				mask[i] = true
			}
		}
	}
	for i, m := range mask {
		if m {
			out[i] = maskByte
		}
	}
	return out
}

// MaskedFraction reports the fraction of residues carrying the ambiguity
// mask (X or N), a diagnostic for how aggressive a masking pass was.
func MaskedFraction(data []byte, kind Kind) float64 {
	if len(data) == 0 {
		return 0
	}
	maskByte := byte('X')
	if kind == DNA {
		maskByte = 'N'
	}
	n := 0
	for _, c := range data {
		if c == maskByte {
			n++
		}
	}
	return float64(n) / float64(len(data))
}
