package seq

import (
	"testing"
	"testing/quick"
)

func collectWindows(data string, w, step int, covering bool) (starts []int, windows []string) {
	fn := func(start int, win []byte) {
		starts = append(starts, start)
		windows = append(windows, string(win))
	}
	if covering {
		WindowsCovering([]byte(data), w, step, fn)
	} else {
		Windows([]byte(data), w, step, fn)
	}
	return starts, windows
}

func TestWindowsStrideOne(t *testing.T) {
	starts, wins := collectWindows("ABCDE", 3, 1, false)
	wantStarts := []int{0, 1, 2}
	wantWins := []string{"ABC", "BCD", "CDE"}
	if len(starts) != 3 {
		t.Fatalf("count = %d", len(starts))
	}
	for i := range wantStarts {
		if starts[i] != wantStarts[i] || wins[i] != wantWins[i] {
			t.Fatalf("window %d = (%d, %q)", i, starts[i], wins[i])
		}
	}
}

func TestWindowsPaperBlockCount(t *testing.T) {
	// The paper states a k-length sliding window yields L-k segments
	// (i.e. L-k+1 with inclusive counting); verify our stride-1 count.
	L, k := 100, 16
	n := Windows(make([]byte, L), k, 1, func(int, []byte) {})
	if n != L-k+1 {
		t.Fatalf("windows = %d, want %d", n, L-k+1)
	}
}

func TestWindowsDegenerate(t *testing.T) {
	if n := Windows([]byte("AB"), 3, 1, nil); n != 0 {
		t.Fatalf("short data: %d windows", n)
	}
	if n := Windows([]byte("ABC"), 0, 1, nil); n != 0 {
		t.Fatalf("w=0: %d windows", n)
	}
	if n := Windows([]byte("ABC"), 2, 0, nil); n != 0 {
		t.Fatalf("step=0: %d windows", n)
	}
	if n := WindowsCovering([]byte("AB"), 3, 1, nil); n != 0 {
		t.Fatalf("covering short data: %d windows", n)
	}
}

func TestWindowsCoveringAddsTail(t *testing.T) {
	// len 10, w 4, step 4 -> full windows at 0,4; tail window at 6.
	starts, wins := collectWindows("ABCDEFGHIJ", 4, 4, true)
	if len(starts) != 3 || starts[2] != 6 || wins[2] != "GHIJ" {
		t.Fatalf("starts = %v wins = %v", starts, wins)
	}
	// Exact tiling adds no tail.
	starts, _ = collectWindows("ABCDEFGH", 4, 4, true)
	if len(starts) != 2 {
		t.Fatalf("exact tiling starts = %v", starts)
	}
}

func TestWindowCountMatchesWindows(t *testing.T) {
	f := func(n uint8, w8, step8 uint8) bool {
		dataLen := int(n)
		w := int(w8)%20 + 1
		step := int(step8)%7 + 1
		got := Windows(make([]byte, dataLen), w, step, func(int, []byte) {})
		return got == WindowCount(dataLen, w, step)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowsCoveringCoversEveryResidue(t *testing.T) {
	f := func(n uint8, w8, step8 uint8) bool {
		dataLen := int(n)
		w := int(w8)%20 + 1
		step := int(step8)%w + 1 // full coverage requires step <= w
		if dataLen < w {
			return true
		}
		covered := make([]bool, dataLen)
		WindowsCovering(make([]byte, dataLen), w, step, func(start int, win []byte) {
			for i := start; i < start+len(win); i++ {
				covered[i] = true
			}
		})
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
