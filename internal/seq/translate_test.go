package seq

import (
	"bytes"
	"testing"
)

func TestTranslateCodonKnownValues(t *testing.T) {
	cases := map[string]byte{
		"ATG": 'M', "TGG": 'W', "TTT": 'F', "AAA": 'K',
		"TAA": '*', "TAG": '*', "TGA": '*',
		"GGG": 'G', "GCT": 'A', "CAT": 'H', "CGA": 'R',
		"ANN": 'X', "NTG": 'X',
	}
	for codon, want := range cases {
		if got := TranslateCodon(codon[0], codon[1], codon[2]); got != want {
			t.Errorf("TranslateCodon(%s) = %c, want %c", codon, got, want)
		}
	}
}

func TestTranslateCodonLowercase(t *testing.T) {
	if got := TranslateCodon('a', 't', 'g'); got != 'M' {
		t.Fatalf("lowercase atg = %c", got)
	}
}

func TestTranslateForwardFrames(t *testing.T) {
	// ATG GCT TGA | frame 0 -> M A *
	dna := []byte("ATGGCTTGA")
	p0, err := Translate(dna, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(p0) != "MA*" {
		t.Fatalf("frame 0 = %s", p0)
	}
	// frame 1: TGG CTT -> W L
	p1, err := Translate(dna, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(p1) != "WL" {
		t.Fatalf("frame 1 = %s", p1)
	}
	// frame 2: GGC TTG -> G L
	p2, err := Translate(dna, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(p2) != "GL" {
		t.Fatalf("frame 2 = %s", p2)
	}
}

func TestTranslateReverseFrames(t *testing.T) {
	// Reverse complement of CAT is ATG -> M in frame 3.
	p, err := Translate([]byte("CAT"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(p) != "M" {
		t.Fatalf("frame 3 of CAT = %s", p)
	}
}

func TestTranslateErrors(t *testing.T) {
	if _, err := Translate([]byte("ATG"), 6); err == nil {
		t.Error("frame 6 accepted")
	}
	if _, err := Translate([]byte("ATG"), -1); err == nil {
		t.Error("negative frame accepted")
	}
	if _, err := Translate([]byte("AT"), 0); err == nil {
		t.Error("too-short sequence accepted")
	}
	if _, err := Translate([]byte("ATGC"), 2); err == nil {
		t.Error("frame beyond last codon accepted")
	}
}

func TestTranslateOutputIsValidProtein(t *testing.T) {
	dna := []byte("ATGGCCATTGTAATGGGCCGCTGAAAGGGTGCCCGATAG")
	for frame := 0; frame < 6; frame++ {
		p, err := Translate(dna, frame)
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		if err := ProteinAlphabet.Normalize(p); err != nil {
			t.Fatalf("frame %d produced invalid protein: %v", frame, err)
		}
	}
}

func TestSixFrames(t *testing.T) {
	frames := SixFrames([]byte("ATGGCTTGAATG"))
	if len(frames) != 6 {
		t.Fatalf("frames = %d", len(frames))
	}
	// Short input: some frames drop out.
	short := SixFrames([]byte("ATGC"))
	if len(short) != 4 { // frames 0,1 forward and 0,1 reverse have codons
		t.Fatalf("short frames = %d", len(short))
	}
}

func TestGeneticCodeCoversAllCodons(t *testing.T) {
	seen := map[byte]bool{}
	stops := 0
	for _, aa := range geneticCode {
		if aa == 0 {
			t.Fatal("unassigned codon")
		}
		if aa == '*' {
			stops++
		}
		seen[aa] = true
	}
	if stops != 3 {
		t.Fatalf("stops = %d, want 3", stops)
	}
	// All 20 amino acids plus stop must appear.
	if len(seen) != 21 {
		t.Fatalf("distinct symbols = %d, want 21", len(seen))
	}
}

func TestTranslateRoundTripLength(t *testing.T) {
	dna := bytes.Repeat([]byte("ACG"), 50)
	p, err := Translate(dna, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 50 {
		t.Fatalf("protein length = %d", len(p))
	}
}
