package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// ReadFASTA parses FASTA records from r into a Set of the given kind.
// Headers begin with '>'; the first whitespace-delimited token after '>' is
// kept as the name with the remainder discarded. Blank lines are ignored.
func ReadFASTA(r io.Reader, kind Kind) (*Set, error) {
	set := NewSet(kind)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		name string
		data []byte
		have bool
	)
	flush := func() error {
		if !have {
			return nil
		}
		if _, err := set.Add(name, data); err != nil {
			return err
		}
		name, data, have = "", nil, false
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			fields := bytes.Fields(line[1:])
			if len(fields) == 0 {
				return nil, fmt.Errorf("seq: empty FASTA header at line %d", lineNo)
			}
			name = string(fields[0])
			have = true
			continue
		}
		if !have {
			return nil, fmt.Errorf("seq: residue data before first FASTA header at line %d", lineNo)
		}
		data = append(data, line...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: reading FASTA: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return set, nil
}

// WriteFASTA writes the set to w in FASTA format with lines wrapped at
// width residues (width <= 0 means 70).
func WriteFASTA(w io.Writer, set *Set, width int) error {
	if width <= 0 {
		width = 70
	}
	bw := bufio.NewWriter(w)
	for _, s := range set.Seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Name); err != nil {
			return err
		}
		for start := 0; start < len(s.Data); start += width {
			end := start + width
			if end > len(s.Data) {
				end = len(s.Data)
			}
			if _, err := bw.Write(s.Data[start:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
