package seq

import (
	"errors"
	"fmt"
)

// ID identifies a reference sequence within a Mendel deployment. IDs are
// assigned by the ingest pipeline and are dense, starting at zero, which lets
// per-sequence state live in slices instead of maps.
type ID uint32

// Sequence is a validated biological sequence with an identifier and a
// human-readable name (typically the FASTA header).
type Sequence struct {
	ID   ID
	Name string
	Kind Kind
	Data []byte
}

// ErrEmptySequence is returned when a sequence has no residues.
var ErrEmptySequence = errors.New("seq: empty sequence")

// New validates data against the alphabet for kind and returns a Sequence.
// The data slice is retained (and upper-cased in place).
func New(id ID, name string, kind Kind, data []byte) (*Sequence, error) {
	if len(data) == 0 {
		return nil, ErrEmptySequence
	}
	if err := AlphabetFor(kind).Normalize(data); err != nil {
		return nil, fmt.Errorf("sequence %q: %w", name, err)
	}
	return &Sequence{ID: id, Name: name, Kind: kind, Data: data}, nil
}

// MustNew is like New but panics on error. Intended for tests and literals.
func MustNew(id ID, name string, kind Kind, data string) *Sequence {
	s, err := New(id, name, kind, []byte(data))
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.Data) }

// Window returns the residues in [start, start+w). It panics if the window
// is out of range, mirroring slice semantics.
func (s *Sequence) Window(start, w int) []byte { return s.Data[start : start+w] }

// Region returns the residues in [start, end) clamped to the sequence
// bounds, so callers extending alignments can over-ask safely.
func (s *Sequence) Region(start, end int) []byte {
	if start < 0 {
		start = 0
	}
	if end > len(s.Data) {
		end = len(s.Data)
	}
	if start >= end {
		return nil
	}
	return s.Data[start:end]
}

// ReverseComplement returns a new residue slice with the reverse complement
// of s. It panics for non-DNA sequences.
func (s *Sequence) ReverseComplement() []byte {
	a := AlphabetFor(s.Kind)
	out := make([]byte, len(s.Data))
	for i, c := range s.Data {
		out[len(s.Data)-1-i] = a.Complement(c)
	}
	return out
}

// String implements fmt.Stringer with a short summary, not the residues,
// since sequences can be megabytes long.
func (s *Sequence) String() string {
	return fmt.Sprintf("%s#%d %s (%d residues)", s.Kind, s.ID, s.Name, len(s.Data))
}

// Set is an ordered collection of sequences with dense IDs. It is the unit
// handed to the Mendel ingest pipeline.
type Set struct {
	Kind Kind
	Seqs []*Sequence
}

// NewSet creates an empty set of the given kind.
func NewSet(kind Kind) *Set { return &Set{Kind: kind} }

// Add validates data, assigns the next dense ID, and appends the sequence.
func (ss *Set) Add(name string, data []byte) (*Sequence, error) {
	s, err := New(ID(len(ss.Seqs)), name, ss.Kind, data)
	if err != nil {
		return nil, err
	}
	ss.Seqs = append(ss.Seqs, s)
	return s, nil
}

// Len returns the number of sequences in the set.
func (ss *Set) Len() int { return len(ss.Seqs) }

// TotalResidues returns the summed length of all sequences; this is the `n`
// of Karlin–Altschul E-value statistics.
func (ss *Set) TotalResidues() int {
	total := 0
	for _, s := range ss.Seqs {
		total += len(s.Data)
	}
	return total
}

// Get returns the sequence with the given ID, or nil if out of range.
func (ss *Set) Get(id ID) *Sequence {
	if int(id) >= len(ss.Seqs) {
		return nil
	}
	return ss.Seqs[id]
}
