package seq

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if DNA.String() != "dna" || Protein.String() != "protein" {
		t.Fatalf("unexpected kind names: %q %q", DNA, Protein)
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestDNAAlphabetIndexRoundTrip(t *testing.T) {
	a := DNAAlphabet
	if a.Kind() != DNA {
		t.Fatalf("kind = %v", a.Kind())
	}
	if a.Len() != 5 {
		t.Fatalf("len = %d, want 5", a.Len())
	}
	for i, c := range a.Letters() {
		if got := a.Index(c); got != i {
			t.Errorf("Index(%q) = %d, want %d", c, got, i)
		}
		lower := c + 'a' - 'A'
		if got := a.Index(lower); got != i {
			t.Errorf("Index(%q) = %d, want %d", lower, got, i)
		}
	}
}

func TestProteinAlphabetMatchesLetters(t *testing.T) {
	a := ProteinAlphabet
	if a.Len() != len(ProteinLetters) {
		t.Fatalf("len = %d, want %d", a.Len(), len(ProteinLetters))
	}
	for i := 0; i < len(ProteinLetters); i++ {
		if got := a.Index(ProteinLetters[i]); got != i {
			t.Errorf("Index(%q) = %d, want %d", ProteinLetters[i], got, i)
		}
	}
}

func TestAlphabetInvalid(t *testing.T) {
	for _, c := range []byte{'1', ' ', '-', 0, '>'} {
		if DNAAlphabet.Valid(c) {
			t.Errorf("DNA Valid(%q) = true", c)
		}
		if ProteinAlphabet.Valid(c) {
			t.Errorf("Protein Valid(%q) = true", c)
		}
	}
	if DNAAlphabet.Valid('E') {
		t.Error("DNA accepted E")
	}
	// '*' is protein-only.
	if DNAAlphabet.Valid('*') || !ProteinAlphabet.Valid('*') {
		t.Error("'*' membership wrong")
	}
}

func TestAmbiguous(t *testing.T) {
	if !DNAAlphabet.Ambiguous('N') || DNAAlphabet.Ambiguous('A') {
		t.Error("DNA ambiguity flags wrong")
	}
	for _, c := range []byte("BZX*") {
		if !ProteinAlphabet.Ambiguous(c) {
			t.Errorf("Protein Ambiguous(%q) = false", c)
		}
	}
	if ProteinAlphabet.Ambiguous('L') {
		t.Error("L marked ambiguous")
	}
}

func TestNormalize(t *testing.T) {
	buf := []byte("acgtn")
	if err := DNAAlphabet.Normalize(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ACGTN" {
		t.Fatalf("normalized = %q", buf)
	}
	if err := DNAAlphabet.Normalize([]byte("ACGU")); err == nil {
		t.Fatal("expected error for U in DNA")
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C', 'N': 'N'}
	for b, want := range pairs {
		if got := DNAAlphabet.Complement(b); got != want {
			t.Errorf("Complement(%q) = %q, want %q", b, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for protein complement")
		}
	}()
	ProteinAlphabet.Complement('A')
}

func TestComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		for _, c := range raw {
			i := int(c) % len(DNALetters)
			b := DNALetters[i]
			if DNAAlphabet.Complement(DNAAlphabet.Complement(b)) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlphabetFor(t *testing.T) {
	if AlphabetFor(DNA) != DNAAlphabet || AlphabetFor(Protein) != ProteinAlphabet {
		t.Fatal("AlphabetFor returned wrong alphabet")
	}
}
