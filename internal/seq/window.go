package seq

// Windows calls fn for each sliding window of length w over data, advancing
// by step. fn receives the window start offset and the window bytes, which
// alias data and must not be retained without copying. It returns the number
// of windows visited. A final partial window is never emitted; callers that
// need tail coverage should use WindowsCovering.
func Windows(data []byte, w, step int, fn func(start int, window []byte)) int {
	if w <= 0 || step <= 0 || len(data) < w {
		return 0
	}
	n := 0
	for start := 0; start+w <= len(data); start += step {
		fn(start, data[start:start+w])
		n++
	}
	return n
}

// WindowsCovering is like Windows but guarantees the final residues are
// covered: if the last full step would leave a tail shorter than w uncovered,
// one extra window anchored at len(data)-w is emitted. This is used for query
// decomposition so the end of a query is always searchable.
func WindowsCovering(data []byte, w, step int, fn func(start int, window []byte)) int {
	if w <= 0 || step <= 0 || len(data) < w {
		return 0
	}
	n := 0
	last := -1
	for start := 0; start+w <= len(data); start += step {
		fn(start, data[start:start+w])
		last = start
		n++
	}
	if tail := len(data) - w; tail > last {
		fn(tail, data[tail:])
		n++
	}
	return n
}

// WindowCount returns the number of windows Windows would visit.
func WindowCount(dataLen, w, step int) int {
	if w <= 0 || step <= 0 || dataLen < w {
		return 0
	}
	return (dataLen-w)/step + 1
}
