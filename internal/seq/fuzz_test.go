package seq

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFASTA throws arbitrary text at the FASTA parser for both molecule
// kinds: it must never panic, and whatever it accepts must survive a
// write/re-read round trip unchanged (ingestion normalizes residues, so the
// first parse is the fixed point).
func FuzzReadFASTA(f *testing.F) {
	f.Add(">seq1\nACGTACGT\nACGT\n")
	f.Add(">a description here\nMKVLATNN\n>b\nPQRS\n")
	f.Add(">empty\n>next\nACGT\n")
	f.Add("no header\nACGT\n")
	f.Add(">x\n   AC GT\t\n\n\nacgt\n")
	f.Add("")
	f.Add(">")
	f.Add(">n\nACGTN-RYKM\n")
	f.Fuzz(func(t *testing.T, text string) {
		for _, kind := range []Kind{DNA, Protein} {
			set, err := ReadFASTA(strings.NewReader(text), kind)
			if err != nil {
				continue // rejected input is fine; panicking is not
			}
			var buf bytes.Buffer
			if err := WriteFASTA(&buf, set, 60); err != nil {
				t.Fatalf("kind %v: writing accepted set: %v", kind, err)
			}
			back, err := ReadFASTA(bytes.NewReader(buf.Bytes()), kind)
			if err != nil {
				t.Fatalf("kind %v: re-reading own output: %v\noutput:\n%s", kind, err, buf.Bytes())
			}
			if back.Len() != set.Len() {
				t.Fatalf("kind %v: round trip changed record count: %d -> %d", kind, set.Len(), back.Len())
			}
			for i := range set.Seqs {
				if set.Seqs[i].Name != back.Seqs[i].Name {
					t.Errorf("kind %v: record %d name %q -> %q", kind, i, set.Seqs[i].Name, back.Seqs[i].Name)
				}
				if !bytes.Equal(set.Seqs[i].Data, back.Seqs[i].Data) {
					t.Errorf("kind %v: record %d residues changed across round trip", kind, i)
				}
			}
		}
	})
}
