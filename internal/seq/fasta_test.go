package seq

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

const sampleFASTA = `>seq1 description ignored
ACGTAC
GTACGT

>seq2
acgt
`

func TestReadFASTA(t *testing.T) {
	set, err := ReadFASTA(strings.NewReader(sampleFASTA), DNA)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("len = %d", set.Len())
	}
	if set.Seqs[0].Name != "seq1" || string(set.Seqs[0].Data) != "ACGTACGTACGT" {
		t.Fatalf("seq1 = %v %q", set.Seqs[0].Name, set.Seqs[0].Data)
	}
	if set.Seqs[1].Name != "seq2" || string(set.Seqs[1].Data) != "ACGT" {
		t.Fatalf("seq2 = %v %q", set.Seqs[1].Name, set.Seqs[1].Data)
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := map[string]string{
		"data before header": "ACGT\n>ok\nACGT\n",
		"empty header":       ">\nACGT\n",
		"bad residue":        ">x\nAC!T\n",
		"empty record":       ">only-header\n>second\nACGT\n",
	}
	for name, in := range cases {
		if _, err := ReadFASTA(strings.NewReader(in), DNA); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteFASTAWraps(t *testing.T) {
	set := NewSet(DNA)
	if _, err := set.Add("x", bytes.Repeat([]byte("ACGT"), 5)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, set, 8); err != nil {
		t.Fatal(err)
	}
	want := ">x\nACGTACGT\nACGTACGT\nACGT\n"
	if buf.String() != want {
		t.Fatalf("output = %q, want %q", buf.String(), want)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	f := func(raw [][]byte, width uint8) bool {
		set := NewSet(Protein)
		for _, r := range raw {
			if len(r) == 0 {
				continue
			}
			data := make([]byte, len(r))
			for i, c := range r {
				data[i] = ProteinLetters[int(c)%len(ProteinLetters)]
			}
			if _, err := set.Add("s", data); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, set, int(width)); err != nil {
			return false
		}
		back, err := ReadFASTA(&buf, Protein)
		if err != nil {
			return false
		}
		if back.Len() != set.Len() {
			return false
		}
		for i := range set.Seqs {
			if !bytes.Equal(set.Seqs[i].Data, back.Seqs[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
