package seq

import "fmt"

// geneticCode is the standard genetic code (NCBI translation table 1),
// mapping a 6-bit codon index (2 bits per nucleotide, A=0 C=1 G=2 T=3) to
// an amino acid; '*' marks stop codons.
var geneticCode = buildGeneticCode()

func buildGeneticCode() [64]byte {
	// Codons in TCAG-major order per the conventional code table.
	const (
		bases = "TCAG"
		aas   = "FFLLSSSSYY**CC*W" + // TTT..TGG
			"LLLLPPPPHHQQRRRR" + // CTT..CGG
			"IIIMTTTTNNKKSSRR" + // ATT..AGG
			"VVVVAAAADDEEGGGG" // GTT..GGG
	)
	var code [64]byte
	idx := func(b byte) int {
		switch b {
		case 'A':
			return 0
		case 'C':
			return 1
		case 'G':
			return 2
		default: // T
			return 3
		}
	}
	pos := 0
	for _, b1 := range []byte(bases) {
		for _, b2 := range []byte(bases) {
			for _, b3 := range []byte(bases) {
				code[idx(b1)<<4|idx(b2)<<2|idx(b3)] = aas[pos]
				pos++
			}
		}
	}
	return code
}

// TranslateCodon returns the amino acid for one codon; codons containing N
// translate to X.
func TranslateCodon(a, b, c byte) byte {
	ia, ib, ic := nucIndex(a), nucIndex(b), nucIndex(c)
	if ia < 0 || ib < 0 || ic < 0 {
		return 'X'
	}
	return geneticCode[ia<<4|ib<<2|ic]
}

func nucIndex(b byte) int {
	switch b {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't':
		return 3
	default:
		return -1
	}
}

// Translate translates a DNA sequence in the given reading frame:
// frames 0-2 read the forward strand starting at that offset, frames 3-5
// read the reverse complement likewise. Stop codons become '*', codons with
// ambiguous bases become 'X'. Returns an error for invalid frames or
// sequences too short to contain one codon in that frame.
func Translate(dna []byte, frame int) ([]byte, error) {
	if frame < 0 || frame > 5 {
		return nil, fmt.Errorf("seq: frame %d out of range 0-5", frame)
	}
	src := dna
	if frame >= 3 {
		src = make([]byte, len(dna))
		for i, c := range dna {
			src[len(dna)-1-i] = DNAAlphabet.Complement(c)
		}
		frame -= 3
	}
	if len(src) < frame+3 {
		return nil, fmt.Errorf("seq: sequence of %d nt has no codon in frame %d", len(dna), frame)
	}
	n := (len(src) - frame) / 3
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		p := frame + 3*i
		out[i] = TranslateCodon(src[p], src[p+1], src[p+2])
	}
	return out, nil
}

// SixFrames translates a DNA sequence in all six reading frames, skipping
// frames too short to translate.
func SixFrames(dna []byte) [][]byte {
	out := make([][]byte, 0, 6)
	for frame := 0; frame < 6; frame++ {
		if p, err := Translate(dna, frame); err == nil {
			out = append(out, p)
		}
	}
	return out
}
