package align

import (
	"math/rand"
	"testing"

	"mendel/internal/matrix"
)

// refLocalScore is an independent O(n*m) reference implementation of local
// affine-gap alignment scoring (score only, no traceback) used to validate
// the production DP.
func refLocalScore(q, s []byte, m *matrix.Matrix) int {
	openCost := m.GapOpen + m.GapExtend
	extCost := m.GapExtend
	qn, sn := len(q), len(s)
	H := make([][]int, qn+1)
	E := make([][]int, qn+1) // gap in subject (consumes query)
	F := make([][]int, qn+1) // gap in query (consumes subject)
	for i := range H {
		H[i] = make([]int, sn+1)
		E[i] = make([]int, sn+1)
		F[i] = make([]int, sn+1)
		for j := range E[i] {
			E[i][j] = negInf
			F[i][j] = negInf
		}
	}
	best := 0
	for i := 1; i <= qn; i++ {
		for j := 1; j <= sn; j++ {
			E[i][j] = max2(H[i-1][j]-openCost, E[i-1][j]-extCost)
			F[i][j] = max2(H[i][j-1]-openCost, F[i][j-1]-extCost)
			h := H[i-1][j-1] + m.Score(q[i-1], s[j-1])
			h = max2(h, E[i][j])
			h = max2(h, F[i][j])
			if h < 0 {
				h = 0
			}
			H[i][j] = h
			if h > best {
				best = h
			}
		}
	}
	return best
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// scoreFromOps recomputes an alignment's score from its traceback.
func scoreFromOps(a Alignment, q, s []byte, m *matrix.Matrix) int {
	score := 0
	qi, si := a.QStart, a.SStart
	for _, op := range a.Ops {
		switch op.Op {
		case OpMatch:
			for k := 0; k < op.Len; k++ {
				score += m.Score(q[qi], s[si])
				qi++
				si++
			}
		case OpInsert:
			score -= m.GapOpen + op.Len*m.GapExtend
			qi += op.Len
		case OpDelete:
			score -= m.GapOpen + op.Len*m.GapExtend
			si += op.Len
		}
	}
	return score
}

func randomProtein(rng *rand.Rand, n int) []byte {
	const standard = "ARNDCQEGHILKMFPSTWYV"
	out := make([]byte, n)
	for i := range out {
		out[i] = standard[rng.Intn(len(standard))]
	}
	return out
}

func mutate(rng *rand.Rand, in []byte, subs, indels int) []byte {
	out := append([]byte(nil), in...)
	const standard = "ARNDCQEGHILKMFPSTWYV"
	for k := 0; k < subs && len(out) > 0; k++ {
		out[rng.Intn(len(out))] = standard[rng.Intn(len(standard))]
	}
	for k := 0; k < indels && len(out) > 1; k++ {
		p := rng.Intn(len(out))
		if rng.Intn(2) == 0 {
			out = append(out[:p], out[p+1:]...)
		} else {
			out = append(out[:p], append([]byte{standard[rng.Intn(len(standard))]}, out[p:]...)...)
		}
	}
	return out
}

func TestSmithWatermanIdenticalSequences(t *testing.T) {
	q := []byte("MKVLAAGWTY")
	a := SmithWaterman(q, q, matrix.BLOSUM62)
	if a.QStart != 0 || a.QEnd != len(q) || a.SStart != 0 || a.SEnd != len(q) {
		t.Fatalf("self alignment span = %+v", a.Segment)
	}
	want := matrix.BLOSUM62.ScoreSegments(q, q)
	if a.Score != want {
		t.Fatalf("score = %d, want %d", a.Score, want)
	}
	if a.Identity(q, q) != 1.0 {
		t.Fatal("self identity != 1")
	}
}

func TestSmithWatermanNoPositiveAlignment(t *testing.T) {
	a := SmithWaterman([]byte("WWWW"), []byte("PPPP"), matrix.BLOSUM62)
	if a.Score != 0 || len(a.Ops) != 0 {
		t.Fatalf("expected empty alignment, got %+v", a)
	}
	if got := SmithWaterman(nil, []byte("AA"), matrix.BLOSUM62); got.Score != 0 {
		t.Fatal("empty query should produce empty alignment")
	}
}

func TestSmithWatermanKnownGap(t *testing.T) {
	// Query has a 3-residue deletion relative to the subject; with DNA
	// scoring (+1/-2, gaps 5/2) the best local alignment bridges the gap
	// when flanks are long enough.
	q := []byte("ACGTACGTACGTACGTACGTACGTACGTACGT")
	s := []byte("ACGTACGTACGTACGTTTTACGTACGTACGTACGT")
	a := SmithWaterman(q, s, matrix.DNAUnit)
	if err := a.consistent(); err != nil {
		t.Fatal(err)
	}
	if a.Gaps() == 0 {
		t.Fatalf("expected gapped alignment, got CIGAR %s", a.CIGAR())
	}
	if got := scoreFromOps(a, q, s, matrix.DNAUnit); got != a.Score {
		t.Fatalf("traceback score %d != DP score %d", got, a.Score)
	}
}

func TestSmithWatermanMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		q := randomProtein(rng, rng.Intn(40)+1)
		s := randomProtein(rng, rng.Intn(40)+1)
		// Half the trials plant a homologous region for positive scores.
		if trial%2 == 0 && len(q) > 10 {
			s = append(s, mutate(rng, q, 2, 1)...)
		}
		want := refLocalScore(q, s, matrix.BLOSUM62)
		a := SmithWaterman(q, s, matrix.BLOSUM62)
		if a.Score != want {
			t.Fatalf("trial %d: DP score %d, reference %d (q=%s s=%s)", trial, a.Score, want, q, s)
		}
		if err := a.consistent(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if a.Score > 0 {
			if got := scoreFromOps(a, q, s, matrix.BLOSUM62); got != a.Score {
				t.Fatalf("trial %d: traceback score %d != %d (CIGAR %s)", trial, got, a.Score, a.CIGAR())
			}
		}
	}
}

func TestSmithWatermanSymmetricScore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		q := randomProtein(rng, 30)
		s := mutate(rng, q, 4, 1)
		if SmithWaterman(q, s, matrix.BLOSUM62).Score != SmithWaterman(s, q, matrix.BLOSUM62).Score {
			t.Fatalf("trial %d: asymmetric SW score", trial)
		}
	}
}
