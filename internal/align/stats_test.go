package align

import (
	"math"
	"testing"

	"mendel/internal/matrix"
)

func TestSolveLambdaBLOSUM62(t *testing.T) {
	// Published ungapped Lambda for BLOSUM62 with Robinson frequencies is
	// ~0.3176; our solver must land close.
	lambda, err := SolveLambda(matrix.BLOSUM62, matrix.ProteinBackground())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-0.3176) > 0.01 {
		t.Fatalf("lambda = %f, want ~0.3176", lambda)
	}
}

func TestSolveLambdaDNA(t *testing.T) {
	// For +1/-2 with uniform background: sum p_i p_j e^{lambda s} = 1
	// => (1/4)e^l + (3/4)e^{-2l} = 1; root is ~1.3331.
	lambda, err := SolveLambda(matrix.DNAUnit, matrix.DNABackground())
	if err != nil {
		t.Fatal(err)
	}
	check := 0.25*math.Exp(lambda) + 0.75*math.Exp(-2*lambda)
	if math.Abs(check-1) > 1e-9 {
		t.Fatalf("lambda = %f does not satisfy defining equation (phi=%f)", lambda, check)
	}
	if math.Abs(lambda-1.3331) > 0.01 {
		t.Fatalf("lambda = %f, want ~1.3331", lambda)
	}
}

func TestSolveLambdaRejectsAllPositive(t *testing.T) {
	m := matrix.NewDNA(1, 1, 1, 1) // "mismatch" scores +1: expected score positive
	if _, err := SolveLambda(m, matrix.DNABackground()); err == nil {
		t.Fatal("expected error for non-negative scoring system")
	}
}

func TestParamsAndEValueMonotonic(t *testing.T) {
	p, err := ParamsForMatrix(matrix.BLOSUM62)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 0.134 {
		t.Fatalf("K = %f", p.K)
	}
	if p.H <= 0 {
		t.Fatalf("H = %f", p.H)
	}
	e50 := p.EValue(50, 1000, 1e6)
	e60 := p.EValue(60, 1000, 1e6)
	if e60 >= e50 {
		t.Fatalf("E-value not decreasing in score: %g vs %g", e60, e50)
	}
	eBig := p.EValue(50, 1000, 1e8)
	if eBig <= e50 {
		t.Fatal("E-value must grow with database size")
	}
}

func TestBitScorePositive(t *testing.T) {
	p, _ := ParamsForMatrix(matrix.BLOSUM62)
	if p.BitScore(100) <= 0 {
		t.Fatal("bit score of strong raw score should be positive")
	}
	if p.BitScore(100) <= p.BitScore(50) {
		t.Fatal("bit score not monotonic")
	}
}

func TestScoreForEValueInverts(t *testing.T) {
	p, _ := ParamsForMatrix(matrix.BLOSUM62)
	for _, e := range []float64{1e-10, 1e-3, 1, 10} {
		s := p.ScoreForEValue(e, 1000, 1e7)
		if got := p.EValue(s, 1000, 1e7); got > e*1.0001 {
			t.Errorf("E(%d) = %g > requested %g", s, got, e)
		}
		if got := p.EValue(s-1, 1000, 1e7); got < e {
			t.Errorf("score %d not minimal for E=%g", s, e)
		}
	}
	if p.ScoreForEValue(0, 100, 100) <= 0 {
		t.Error("zero E-value should produce a large positive score cutoff")
	}
}

func TestParamsCaching(t *testing.T) {
	a, err := ParamsForMatrix(matrix.PAM250)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParamsForMatrix(matrix.PAM250)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cached params differ")
	}
	if a.K != 0.090 {
		t.Fatalf("PAM250 K = %f", a.K)
	}
}

func TestParamsUnknownMatrixFallbackK(t *testing.T) {
	m := matrix.NewDNA(2, -3, 5, 2)
	m.Name = "custom"
	p, err := Params(m, matrix.DNABackground())
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 0.1 {
		t.Fatalf("fallback K = %f", p.K)
	}
}
