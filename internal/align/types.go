// Package align implements the sequence-alignment substrate of Mendel:
// BLAST-style ungapped X-drop extension, full and banded Smith–Waterman
// local alignment with affine gap penalties, Needleman–Wunsch global
// alignment, and Karlin–Altschul significance statistics (bit scores and
// E-values).
package align

import (
	"bytes"
	"fmt"
	"strings"
)

// Segment is an ungapped aligned region: query residues [QStart,QEnd)
// against subject residues [SStart,SEnd), with the segment score under some
// scoring matrix. For ungapped segments QEnd-QStart == SEnd-SStart.
type Segment struct {
	QStart, QEnd int
	SStart, SEnd int
	Score        int
}

// Diagonal returns the alignment diagonal, defined (as in the paper, §V-B)
// as the difference between the subject and query start positions.
func (s Segment) Diagonal() int { return s.SStart - s.QStart }

// QLen returns the query span length.
func (s Segment) QLen() int { return s.QEnd - s.QStart }

// SLen returns the subject span length.
func (s Segment) SLen() int { return s.SEnd - s.SStart }

// Empty reports whether the segment covers no residues.
func (s Segment) Empty() bool { return s.QEnd <= s.QStart || s.SEnd <= s.SStart }

// String implements fmt.Stringer.
func (s Segment) String() string {
	return fmt.Sprintf("q[%d:%d] s[%d:%d] score=%d", s.QStart, s.QEnd, s.SStart, s.SEnd, s.Score)
}

// Op is an alignment edit operation in CIGAR convention.
type Op byte

// CIGAR operation codes.
const (
	OpMatch  Op = 'M' // aligned pair (match or mismatch)
	OpInsert Op = 'I' // residue in query only (gap in subject)
	OpDelete Op = 'D' // residue in subject only (gap in query)
)

// CigarOp is a run-length encoded alignment operation.
type CigarOp struct {
	Op  Op
	Len int
}

// Alignment is a (possibly gapped) local or global alignment between a query
// and a subject sequence, with traceback in CIGAR form.
type Alignment struct {
	Segment
	Ops []CigarOp
}

// CIGAR renders the traceback as a CIGAR string, e.g. "35M2D10M".
func (a Alignment) CIGAR() string {
	var b strings.Builder
	for _, op := range a.Ops {
		fmt.Fprintf(&b, "%d%c", op.Len, byte(op.Op))
	}
	return b.String()
}

// AlignedLength returns the number of alignment columns (matches plus gaps).
func (a Alignment) AlignedLength() int {
	n := 0
	for _, op := range a.Ops {
		n += op.Len
	}
	return n
}

// Identity returns the fraction of alignment columns that are exact residue
// matches, given the original query and subject sequences. Gap columns count
// against identity.
func (a Alignment) Identity(query, subject []byte) float64 {
	cols, matches := 0, 0
	qi, si := a.QStart, a.SStart
	for _, op := range a.Ops {
		switch op.Op {
		case OpMatch:
			for k := 0; k < op.Len; k++ {
				if query[qi] == subject[si] {
					matches++
				}
				qi++
				si++
			}
		case OpInsert:
			qi += op.Len
		case OpDelete:
			si += op.Len
		}
		cols += op.Len
	}
	if cols == 0 {
		return 0
	}
	return float64(matches) / float64(cols)
}

// Gaps returns the total number of gap columns.
func (a Alignment) Gaps() int {
	n := 0
	for _, op := range a.Ops {
		if op.Op != OpMatch {
			n += op.Len
		}
	}
	return n
}

// Format renders the alignment in the familiar three-line BLAST style:
// query line, midline (| for identity, + for positive score, space
// otherwise), subject line. score is computed with the given matrix for the
// midline '+' marks; pass nil to mark only identities.
func (a Alignment) Format(query, subject []byte, scorer interface{ Score(a, b byte) int }) string {
	var q, mid, s bytes.Buffer
	qi, si := a.QStart, a.SStart
	for _, op := range a.Ops {
		for k := 0; k < op.Len; k++ {
			switch op.Op {
			case OpMatch:
				qc, sc := query[qi], subject[si]
				q.WriteByte(qc)
				s.WriteByte(sc)
				switch {
				case qc == sc:
					mid.WriteByte('|')
				case scorer != nil && scorer.Score(qc, sc) > 0:
					mid.WriteByte('+')
				default:
					mid.WriteByte(' ')
				}
				qi++
				si++
			case OpInsert:
				q.WriteByte(query[qi])
				mid.WriteByte(' ')
				s.WriteByte('-')
				qi++
			case OpDelete:
				q.WriteByte('-')
				mid.WriteByte(' ')
				s.WriteByte(subject[si])
				si++
			}
		}
	}
	return fmt.Sprintf("Query %5d %s %d\n            %s\nSbjct %5d %s %d\n",
		a.QStart+1, q.String(), a.QEnd, mid.String(), a.SStart+1, s.String(), a.SEnd)
}

// consistent verifies that the CIGAR spans match the segment coordinates;
// used by tests and debug assertions.
func (a Alignment) consistent() error {
	qlen, slen := 0, 0
	for _, op := range a.Ops {
		if op.Len <= 0 {
			return fmt.Errorf("align: non-positive op length %d%c", op.Len, byte(op.Op))
		}
		switch op.Op {
		case OpMatch:
			qlen += op.Len
			slen += op.Len
		case OpInsert:
			qlen += op.Len
		case OpDelete:
			slen += op.Len
		default:
			return fmt.Errorf("align: unknown op %q", byte(op.Op))
		}
	}
	if qlen != a.QLen() || slen != a.SLen() {
		return fmt.Errorf("align: CIGAR spans q=%d s=%d, segment q=%d s=%d", qlen, slen, a.QLen(), a.SLen())
	}
	return nil
}
