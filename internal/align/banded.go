package align

import (
	"sync"

	"mendel/internal/matrix"
)

// swScratch holds the DP rows and traceback matrix of one banded alignment.
// Gapped extension runs up to MaxGapped alignments per query, so the
// per-call allocations here dominated the extend stage's garbage; pooling
// them drops that to near zero.
type swScratch struct {
	h, ins, del, hPrev, insPrev []int
	tb                          []byte
}

var swPool = sync.Pool{New: func() any { return new(swScratch) }}

// resize readies the scratch for a rowLen-wide band over qn query rows. The
// score rows are fully re-initialized by the caller; tb is intentionally NOT
// zeroed — the traceback only follows direction flags written this call
// (stale bytes are unreachable because every move is guarded by the freshly
// reset score rows' -inf sentinels).
func (s *swScratch) resize(rowLen, tbLen int) {
	if cap(s.h) < rowLen {
		s.h = make([]int, rowLen)
		s.ins = make([]int, rowLen)
		s.del = make([]int, rowLen)
		s.hPrev = make([]int, rowLen)
		s.insPrev = make([]int, rowLen)
	}
	s.h, s.ins, s.del = s.h[:rowLen], s.ins[:rowLen], s.del[:rowLen]
	s.hPrev, s.insPrev = s.hPrev[:rowLen], s.insPrev[:rowLen]
	if cap(s.tb) < tbLen {
		s.tb = make([]byte, tbLen)
	}
	s.tb = s.tb[:tbLen]
}

// BandedSmithWaterman computes the best local alignment whose path stays
// within the diagonal band [minDiag, maxDiag], where a cell aligning
// query[i-1] with subject[j-1] lies on diagonal j-i. This implements the
// paper's gapped extension step (§V-B): an anchor on diagonal d is extended
// considering alignments within l diagonals in either direction, i.e. band
// [d-l, d+l]. Time and memory are O(len(query) * bandWidth).
func BandedSmithWaterman(query, subject []byte, minDiag, maxDiag int, m *matrix.Matrix) Alignment {
	qn, sn := len(query), len(subject)
	if qn == 0 || sn == 0 || minDiag > maxDiag {
		return Alignment{}
	}
	// Clamp the band to diagonals that intersect the matrix at all.
	if minDiag < -qn {
		minDiag = -qn
	}
	if maxDiag > sn {
		maxDiag = sn
	}
	if minDiag > maxDiag {
		return Alignment{}
	}
	width := maxDiag - minDiag + 1
	openCost := m.GapOpen + m.GapExtend
	extCost := m.GapExtend

	// Band storage: column b of row i holds matrix column j = i + minDiag + b.
	// Two padding columns (b = -1 and b = width) hold -inf sentinels so the
	// recurrences never index outside the band.
	rowLen := width + 2
	scratch := swPool.Get().(*swScratch)
	defer swPool.Put(scratch)
	scratch.resize(rowLen, (qn+1)*rowLen)
	h := scratch.h         // h[b+1] = H[i][j]
	ins := scratch.ins     // Ins matrix (gap in subject, consumes query)
	del := scratch.del     // Del matrix (gap in query, consumes subject)
	hPrev := scratch.hPrev // previous row
	insPrev := scratch.insPrev
	tb := scratch.tb

	for b := 0; b < rowLen; b++ {
		h[b], ins[b], del[b] = negInf, negInf, negInf
	}
	// Row 0: H[0][j] = 0 for in-band j >= 0.
	for b := 0; b < width; b++ {
		if j := 0 + minDiag + b; j >= 0 && j <= sn {
			h[b+1] = 0
		}
	}

	best, bi, bb := 0, 0, 0
	for i := 1; i <= qn; i++ {
		copy(hPrev, h)
		copy(insPrev, ins)
		for b := 0; b < rowLen; b++ {
			h[b], ins[b], del[b] = negInf, negInf, negInf
		}
		row := tb[i*rowLen:]
		for b := 0; b < width; b++ {
			j := i + minDiag + b
			if j < 0 || j > sn {
				continue
			}
			if j == 0 {
				h[b+1] = 0 // local-alignment boundary column
				continue
			}
			// In band coordinates, (i-1, j) is column b+1 of the previous
			// row, (i-1, j-1) is column b, and (i, j-1) is column b-1 of
			// the current row.
			insOpen := hPrev[b+2] - openCost
			insExt := insPrev[b+2] - extCost
			insCur, insFlag := insOpen, byte(0)
			if insExt > insCur {
				insCur, insFlag = insExt, tbInsExtend
			}

			delOpen := h[b] - openCost
			delExt := del[b] - extCost
			delCur, delFlag := delOpen, byte(0)
			if delExt > delCur {
				delCur, delFlag = delExt, tbDelExtend
			}

			diag := hPrev[b+1]
			var diagScore int
			if diag == negInf {
				diagScore = negInf
			} else {
				diagScore = diag + m.Score(query[i-1], subject[j-1])
			}

			cur, dir := 0, byte(tbStop)
			if diagScore > cur {
				cur, dir = diagScore, tbDiag
			}
			if insCur > cur {
				cur, dir = insCur, tbIns
			}
			if delCur > cur {
				cur, dir = delCur, tbDel
			}
			h[b+1], ins[b+1], del[b+1] = cur, insCur, delCur
			row[b+1] = dir | insFlag | delFlag
			if cur > best {
				best, bi, bb = cur, i, b
			}
		}
	}
	if best == 0 {
		return Alignment{}
	}
	return bandTraceback(tb, rowLen, minDiag, bi, bb, best)
}

// bandTraceback walks the banded direction matrix. Band column movement:
// diagonal move keeps the same band column (i and j both decrease);
// an insertion (i--) shifts the band column right by one; a deletion (j--)
// shifts it left by one.
func bandTraceback(tb []byte, rowLen, minDiag, bi, bb, score int) Alignment {
	var rev []CigarOp
	push := func(op Op) {
		if n := len(rev); n > 0 && rev[n-1].Op == op {
			rev[n-1].Len++
			return
		}
		rev = append(rev, CigarOp{Op: op, Len: 1})
	}
	i, b := bi, bb
	j := i + minDiag + b
	endI, endJ := i, j
	state := Op(0)
	for i > 0 && j > 0 {
		cell := tb[i*rowLen+b+1]
		switch state {
		case 0:
			switch cell & 3 {
			case tbStop:
				goto done
			case tbDiag:
				push(OpMatch)
				i--
				j--
			case tbIns:
				push(OpInsert)
				if cell&tbInsExtend != 0 {
					state = OpInsert
				}
				i--
				b++
			case tbDel:
				push(OpDelete)
				if cell&tbDelExtend != 0 {
					state = OpDelete
				}
				j--
				b--
			}
		case OpInsert:
			push(OpInsert)
			if cell&tbInsExtend == 0 {
				state = 0
			}
			i--
			b++
		case OpDelete:
			push(OpDelete)
			if cell&tbDelExtend == 0 {
				state = 0
			}
			j--
			b--
		}
	}
done:
	ops := make([]CigarOp, len(rev))
	for k := range rev {
		ops[len(rev)-1-k] = rev[k]
	}
	return Alignment{
		Segment: Segment{QStart: i, QEnd: endI, SStart: j, SEnd: endJ, Score: score},
		Ops:     ops,
	}
}
