package align

import "mendel/internal/matrix"

// NeedlemanWunsch computes the optimal global alignment of query against
// subject with affine gap penalties. It is used for end-to-end comparisons
// in tests and examples; the search pipeline itself uses local alignments.
func NeedlemanWunsch(query, subject []byte, m *matrix.Matrix) Alignment {
	qn, sn := len(query), len(subject)
	openCost := m.GapOpen + m.GapExtend
	extCost := m.GapExtend

	h := make([]int, sn+1)
	ins := make([]int, sn+1)
	del := make([]int, sn+1)
	tb := make([]byte, (qn+1)*(sn+1))

	// Row 0: leading gap in the query (deletions).
	ins[0] = negInf
	del[0] = negInf
	for j := 1; j <= sn; j++ {
		del[j] = -openCost - (j-1)*extCost
		h[j] = del[j]
		ins[j] = negInf
		flag := byte(tbDel)
		if j > 1 {
			flag |= tbDelExtend
		}
		tb[j] = flag
	}

	for i := 1; i <= qn; i++ {
		diagH := h[0]
		h[0] = -openCost - (i-1)*extCost
		insCol := h[0]
		row := tb[i*(sn+1):]
		row[0] = tbIns
		if i > 1 {
			row[0] |= tbInsExtend
		}
		ins0 := insCol
		delCur := negInf
		_ = ins0
		for j := 1; j <= sn; j++ {
			insOpen := h[j] - openCost
			insExt := ins[j] - extCost
			insCur, insFlag := insOpen, byte(0)
			if insExt > insCur {
				insCur, insFlag = insExt, tbInsExtend
			}

			delOpen := h[j-1] - openCost
			delExt := delCur - extCost
			if j == 1 {
				delExt = del[0] - extCost
			}
			delCur2, delFlag := delOpen, byte(0)
			if delExt > delCur2 {
				delCur2, delFlag = delExt, tbDelExtend
			}

			diagScore := diagH + m.Score(query[i-1], subject[j-1])
			cur, dir := diagScore, byte(tbDiag)
			if insCur > cur {
				cur, dir = insCur, tbIns
			}
			if delCur2 > cur {
				cur, dir = delCur2, tbDel
			}

			diagH = h[j]
			h[j] = cur
			ins[j] = insCur
			delCur = delCur2
			row[j] = dir | insFlag | delFlag
		}
	}

	a := globalTraceback(tb, sn+1, qn, sn, h[sn])
	return a
}

// globalTraceback walks the direction matrix from (qn, sn) back to (0, 0).
func globalTraceback(tb []byte, stride, bi, bj, score int) Alignment {
	var rev []CigarOp
	push := func(op Op) {
		if n := len(rev); n > 0 && rev[n-1].Op == op {
			rev[n-1].Len++
			return
		}
		rev = append(rev, CigarOp{Op: op, Len: 1})
	}
	i, j := bi, bj
	state := Op(0)
	for i > 0 || j > 0 {
		cell := tb[i*stride+j]
		switch state {
		case 0:
			switch cell & 3 {
			case tbDiag:
				push(OpMatch)
				i--
				j--
			case tbIns:
				push(OpInsert)
				if cell&tbInsExtend != 0 {
					state = OpInsert
				}
				i--
			case tbDel:
				push(OpDelete)
				if cell&tbDelExtend != 0 {
					state = OpDelete
				}
				j--
			default:
				// tbStop only occurs at the origin in a global alignment.
				i, j = 0, 0
			}
		case OpInsert:
			push(OpInsert)
			if cell&tbInsExtend == 0 {
				state = 0
			}
			i--
		case OpDelete:
			push(OpDelete)
			if cell&tbDelExtend == 0 {
				state = 0
			}
			j--
		}
	}
	ops := make([]CigarOp, len(rev))
	for k := range rev {
		ops[len(rev)-1-k] = rev[k]
	}
	return Alignment{
		Segment: Segment{QStart: 0, QEnd: bi, SStart: 0, SEnd: bj, Score: score},
		Ops:     ops,
	}
}
