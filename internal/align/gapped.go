package align

import (
	"mendel/internal/matrix"
)

const negInf = int(-1) << 40

// traceback direction encoding. The low two bits give the source of the H
// (best) matrix at a cell; two more bits record whether the gap matrices
// extend an existing gap or open a new one.
const (
	tbStop = 0
	tbDiag = 1
	tbIns  = 2 // came from insertion matrix (gap in subject)
	tbDel  = 3 // came from deletion matrix (gap in query)

	tbInsExtend = 1 << 2 // insertion matrix extended a gap
	tbDelExtend = 1 << 3 // deletion matrix extended a gap
)

// SmithWaterman computes the optimal local alignment of query against
// subject under the matrix's scores and affine gap penalties
// (cost of a gap of length g = GapOpen + g*GapExtend). It runs the full
// O(len(query)*len(subject)) dynamic program with traceback and is the
// ground-truth aligner used by tests and by final alignment reporting.
func SmithWaterman(query, subject []byte, m *matrix.Matrix) Alignment {
	qn, sn := len(query), len(subject)
	if qn == 0 || sn == 0 {
		return Alignment{}
	}
	openCost := m.GapOpen + m.GapExtend
	extCost := m.GapExtend

	// One row at a time for H, Ins, Del; full byte matrix for traceback.
	h := make([]int, sn+1)
	ins := make([]int, sn+1)
	del := make([]int, sn+1)
	tb := make([]byte, (qn+1)*(sn+1))
	for j := 0; j <= sn; j++ {
		ins[j] = negInf
		del[j] = negInf
	}

	best, bi, bj := 0, 0, 0
	for i := 1; i <= qn; i++ {
		diagH := h[0] // H[i-1][0] == 0
		h[0] = 0
		row := tb[i*(sn+1):]
		for j := 1; j <= sn; j++ {
			// Insertion: consumes query residue i (gap in subject).
			// Values in ins[] are from row i-1 at this point.
			insOpen := h[j] - openCost
			insExt := ins[j] - extCost
			var insCur int
			var insFlag byte
			if insExt > insOpen {
				insCur, insFlag = insExt, tbInsExtend
			} else {
				insCur = insOpen
			}

			// Deletion: consumes subject residue j (gap in query).
			delOpen := h[j-1] - openCost
			delExt := del[j-1] - extCost
			var delCur int
			var delFlag byte
			if delExt > delOpen {
				delCur, delFlag = delExt, tbDelExtend
			} else {
				delCur = delOpen
			}

			diagScore := diagH + m.Score(query[i-1], subject[j-1])
			cur, dir := 0, byte(tbStop)
			if diagScore > cur {
				cur, dir = diagScore, tbDiag
			}
			if insCur > cur {
				cur, dir = insCur, tbIns
			}
			if delCur > cur {
				cur, dir = delCur, tbDel
			}

			diagH = h[j]
			h[j] = cur
			ins[j] = insCur
			del[j] = delCur
			row[j] = dir | insFlag | delFlag

			if cur > best {
				best, bi, bj = cur, i, j
			}
		}
	}
	if best == 0 {
		return Alignment{}
	}
	return traceback(tb, sn+1, bi, bj, best)
}

// traceback reconstructs the alignment path ending at (bi, bj) from the
// packed direction matrix with row stride.
func traceback(tb []byte, stride, bi, bj, score int) Alignment {
	var rev []CigarOp
	push := func(op Op) {
		if n := len(rev); n > 0 && rev[n-1].Op == op {
			rev[n-1].Len++
			return
		}
		rev = append(rev, CigarOp{Op: op, Len: 1})
	}
	i, j := bi, bj
	state := Op(0) // 0 = in H matrix; otherwise inside a gap run
	for i > 0 && j > 0 {
		cell := tb[i*stride+j]
		switch state {
		case 0:
			switch cell & 3 {
			case tbStop:
				goto done
			case tbDiag:
				push(OpMatch)
				i--
				j--
			case tbIns:
				push(OpInsert)
				if cell&tbInsExtend != 0 {
					state = OpInsert
				}
				i--
			case tbDel:
				push(OpDelete)
				if cell&tbDelExtend != 0 {
					state = OpDelete
				}
				j--
			}
		case OpInsert:
			push(OpInsert)
			if cell&tbInsExtend == 0 {
				state = 0
			}
			i--
		case OpDelete:
			push(OpDelete)
			if cell&tbDelExtend == 0 {
				state = 0
			}
			j--
		}
	}
done:
	ops := make([]CigarOp, len(rev))
	for k := range rev {
		ops[len(rev)-1-k] = rev[k]
	}
	return Alignment{
		Segment: Segment{QStart: i, QEnd: bi, SStart: j, SEnd: bj, Score: score},
		Ops:     ops,
	}
}
