package align

import (
	"math/rand"
	"testing"

	"mendel/internal/matrix"
)

// refGlobalScore is a reference affine global alignment scorer.
func refGlobalScore(q, s []byte, m *matrix.Matrix) int {
	openCost := m.GapOpen + m.GapExtend
	extCost := m.GapExtend
	qn, sn := len(q), len(s)
	H := make([][]int, qn+1)
	E := make([][]int, qn+1)
	F := make([][]int, qn+1)
	for i := range H {
		H[i] = make([]int, sn+1)
		E[i] = make([]int, sn+1)
		F[i] = make([]int, sn+1)
	}
	for i := 0; i <= qn; i++ {
		for j := 0; j <= sn; j++ {
			E[i][j], F[i][j] = negInf, negInf
			switch {
			case i == 0 && j == 0:
				H[0][0] = 0
			case i == 0:
				F[0][j] = -openCost - (j-1)*extCost
				H[0][j] = F[0][j]
			case j == 0:
				E[i][0] = -openCost - (i-1)*extCost
				H[i][0] = E[i][0]
			default:
				E[i][j] = max2(H[i-1][j]-openCost, E[i-1][j]-extCost)
				F[i][j] = max2(H[i][j-1]-openCost, F[i][j-1]-extCost)
				H[i][j] = max2(H[i-1][j-1]+m.Score(q[i-1], s[j-1]), max2(E[i][j], F[i][j]))
			}
		}
	}
	return H[qn][sn]
}

func TestNeedlemanWunschIdentical(t *testing.T) {
	q := []byte("MKVLAAGW")
	a := NeedlemanWunsch(q, q, matrix.BLOSUM62)
	if a.Score != matrix.BLOSUM62.ScoreSegments(q, q) {
		t.Fatalf("score = %d", a.Score)
	}
	if a.CIGAR() != "8M" {
		t.Fatalf("CIGAR = %s", a.CIGAR())
	}
}

func TestNeedlemanWunschAllGaps(t *testing.T) {
	m := matrix.DNAUnit
	a := NeedlemanWunsch([]byte("ACGT"), nil, m)
	if want := -(m.GapOpen + 4*m.GapExtend); a.Score != want {
		t.Fatalf("score = %d, want %d", a.Score, want)
	}
	if a.CIGAR() != "4I" {
		t.Fatalf("CIGAR = %s", a.CIGAR())
	}
	b := NeedlemanWunsch(nil, []byte("AC"), m)
	if b.CIGAR() != "2D" {
		t.Fatalf("CIGAR = %s", b.CIGAR())
	}
}

func TestNeedlemanWunschMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		q := randomProtein(rng, rng.Intn(25)+1)
		s := randomProtein(rng, rng.Intn(25)+1)
		if trial%2 == 0 {
			s = mutate(rng, q, 3, 2)
		}
		want := refGlobalScore(q, s, matrix.BLOSUM62)
		a := NeedlemanWunsch(q, s, matrix.BLOSUM62)
		if a.Score != want {
			t.Fatalf("trial %d: NW %d, reference %d (q=%s s=%s)", trial, a.Score, want, q, s)
		}
		if err := a.consistent(); err != nil {
			t.Fatalf("trial %d: %v (CIGAR %s)", trial, err, a.CIGAR())
		}
		if a.QStart != 0 || a.QEnd != len(q) || a.SStart != 0 || a.SEnd != len(s) {
			t.Fatalf("trial %d: global span %+v", trial, a.Segment)
		}
		if got := scoreFromOps(a, q, s, matrix.BLOSUM62); got != a.Score {
			t.Fatalf("trial %d: traceback %d != %d (CIGAR %s)", trial, got, a.Score, a.CIGAR())
		}
	}
}

func TestGlobalAtLeastLocalNever(t *testing.T) {
	// Local score is always >= global score for the same pair.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		q := randomProtein(rng, 20)
		s := randomProtein(rng, 20)
		if SmithWaterman(q, s, matrix.BLOSUM62).Score < NeedlemanWunsch(q, s, matrix.BLOSUM62).Score {
			t.Fatal("local < global")
		}
	}
}
