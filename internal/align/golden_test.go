package align

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mendel/internal/matrix"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenCases pin the exact alignments — coordinates, score, CIGAR, and
// Karlin–Altschul statistics — the three aligners produce on fixed inputs.
// Any change to scoring, traceback or statistics shows up as a golden diff,
// reviewed (and re-recorded with -update) rather than silently absorbed.
var goldenCases = []struct {
	name    string
	algo    string // sw | nw | banded
	matrix  *matrix.Matrix
	query   string
	subject string
	minDiag int // banded only
	maxDiag int
}{
	{
		name: "sw_blosum62_identical", algo: "sw", matrix: matrix.BLOSUM62,
		query:   "MKVLATNNPQRSTWYCF",
		subject: "MKVLATNNPQRSTWYCF",
	},
	{
		name: "sw_blosum62_substitutions", algo: "sw", matrix: matrix.BLOSUM62,
		query:   "MKVLATNNPQRSTWYCF",
		subject: "MKILASNNPQKSTWYCF",
	},
	{
		name: "sw_blosum62_gap", algo: "sw", matrix: matrix.BLOSUM62,
		query:   "MKVLATNNWWPQRSTWYCF",
		subject: "MKVLATNNPQRSTWYCF",
	},
	{
		name: "sw_blosum62_local_island", algo: "sw", matrix: matrix.BLOSUM62,
		query:   "GGGGWWWWHHHHGGGG",
		subject: "PPPPWWWWHHHHPPPP",
	},
	{
		name: "sw_pam250_substitutions", algo: "sw", matrix: matrix.PAM250,
		query:   "MKVLATNNPQRSTWYCF",
		subject: "MKILASNNPQKSTWYCF",
	},
	{
		name: "sw_dna_mismatch", algo: "sw", matrix: matrix.DNAUnit,
		query:   "ACGTACGTACGTACGT",
		subject: "ACGTACCTACGTACGT",
	},
	{
		name: "nw_blosum62_global_gap", algo: "nw", matrix: matrix.BLOSUM62,
		query:   "MKVLATNNPQRSTW",
		subject: "MKVLATPQRSTW",
	},
	{
		name: "nw_dna_global", algo: "nw", matrix: matrix.DNAUnit,
		query:   "ACGTACGTACGT",
		subject: "ACGTTACGTACG",
	},
	{
		name: "banded_blosum62_center", algo: "banded", matrix: matrix.BLOSUM62,
		query:   "MKVLATNNPQRSTWYCF",
		subject: "MKILASNNPQKSTWYCF",
		minDiag: -4, maxDiag: 4,
	},
	{
		name: "banded_dna_offset_diagonal", algo: "banded", matrix: matrix.DNAUnit,
		query:   "ACGTACGTACGT",
		subject: "TTTTACGTACGTACGTTTTT",
		minDiag: 0, maxDiag: 8,
	},
	{
		name: "banded_excludes_best_path", algo: "banded", matrix: matrix.DNAUnit,
		query:   "ACGTACGTACGT",
		subject: "TTTTACGTACGTACGTTTTT",
		minDiag: -2, maxDiag: 2,
	},
}

// formatGolden renders one case's outcome as the golden line. E-values use
// the gapped Karlin–Altschul parameters against a nominal 1e6-residue
// database; global alignments have no E-value semantics, so they pin only
// coordinates, score and CIGAR.
func formatGolden(t *testing.T, c struct {
	name    string
	algo    string
	matrix  *matrix.Matrix
	query   string
	subject string
	minDiag int
	maxDiag int
}) string {
	q, s := []byte(c.query), []byte(c.subject)
	var al Alignment
	switch c.algo {
	case "sw":
		al = SmithWaterman(q, s, c.matrix)
	case "nw":
		al = NeedlemanWunsch(q, s, c.matrix)
	case "banded":
		al = BandedSmithWaterman(q, s, c.minDiag, c.maxDiag, c.matrix)
	default:
		t.Fatalf("%s: unknown algo %q", c.name, c.algo)
	}
	line := fmt.Sprintf("%s: q[%d:%d] s[%d:%d] score=%d cigar=%s",
		c.name, al.QStart, al.QEnd, al.SStart, al.SEnd, al.Score, al.CIGAR())
	if c.algo != "nw" {
		kp, err := GappedParamsForMatrix(c.matrix)
		if err != nil {
			t.Fatalf("%s: gapped params: %v", c.name, err)
		}
		line += fmt.Sprintf(" bits=%.4f E=%.6g", kp.BitScore(al.Score), kp.EValue(al.Score, len(q), 1000000))
	}
	return line + "\n"
}

func TestAlignmentsGolden(t *testing.T) {
	var got bytes.Buffer
	for _, c := range goldenCases {
		got.WriteString(formatGolden(t, c))
	}
	path := filepath.Join("testdata", "alignments.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run 'go test ./internal/align -update' to record): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("alignment output drifted from %s (re-record deliberately with -update):\n--- got ---\n%s--- want ---\n%s",
			path, got.Bytes(), want)
	}
}
