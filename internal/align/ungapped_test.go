package align

import (
	"math/rand"
	"testing"

	"mendel/internal/matrix"
)

func TestExtendUngappedFullMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	q := randomProtein(rng, 50)
	s := append(append(randomProtein(rng, 20), q...), randomProtein(rng, 20)...)
	// Seed in the middle of the homologous region.
	seg := ExtendUngapped(q, s, 20, 40, 5, matrix.BLOSUM62, 20)
	if seg.QStart != 0 || seg.QEnd != 50 {
		t.Fatalf("query span = [%d,%d), want [0,50)", seg.QStart, seg.QEnd)
	}
	if seg.SStart != 20 || seg.SEnd != 70 {
		t.Fatalf("subject span = [%d,%d), want [20,70)", seg.SStart, seg.SEnd)
	}
	if want := matrix.BLOSUM62.ScoreSegments(q, q); seg.Score != want {
		t.Fatalf("score = %d, want %d", seg.Score, want)
	}
}

func TestExtendUngappedStopsAtJunk(t *testing.T) {
	// Homologous core flanked by hostile residues: extension should trim
	// back to the scoring core.
	core := []byte("WWWWWWWWWW")
	q := append(append([]byte("PPPPP"), core...), []byte("PPPPP")...)
	s := append(append([]byte("GGGGG"), core...), []byte("GGGGG")...)
	seg := ExtendUngapped(q, s, 7, 7, 3, matrix.BLOSUM62, 15)
	if seg.QStart != 5 || seg.QEnd != 15 {
		t.Fatalf("span = [%d,%d), want [5,15)", seg.QStart, seg.QEnd)
	}
	if want := matrix.BLOSUM62.ScoreSegments(core, core); seg.Score != want {
		t.Fatalf("score = %d, want %d", seg.Score, want)
	}
}

func TestExtendUngappedScoreMatchesScoreUngapped(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		q := randomProtein(rng, 60)
		s := mutate(rng, q, 10, 0) // substitutions only: same length
		if len(s) != len(q) {
			continue
		}
		seg := ExtendUngapped(q, s, 25, 25, 8, matrix.BLOSUM62, 20)
		if got := ScoreUngapped(q, s, seg, matrix.BLOSUM62); got != seg.Score {
			t.Fatalf("trial %d: rescore %d != %d", trial, got, seg.Score)
		}
	}
}

func TestExtendUngappedDefaultXDrop(t *testing.T) {
	q := []byte("AAAA")
	seg := ExtendUngapped(q, q, 0, 0, 4, matrix.BLOSUM62, 0)
	if seg.QLen() != 4 {
		t.Fatalf("span = %d", seg.QLen())
	}
}

func TestExtendUngappedNeverShrinksBelowSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		q := randomProtein(rng, 40)
		s := randomProtein(rng, 40)
		seed := 6
		qp, sp := rng.Intn(len(q)-seed), rng.Intn(len(s)-seed)
		seg := ExtendUngapped(q, s, qp, sp, seed, matrix.BLOSUM62, 10)
		if seg.QStart > qp || seg.QEnd < qp+seed {
			t.Fatalf("trial %d: segment %v does not contain seed q[%d:%d]", trial, seg, qp, qp+seed)
		}
		if seg.Diagonal() != sp-qp {
			t.Fatalf("trial %d: diagonal changed", trial)
		}
	}
}
