package align

import "mendel/internal/matrix"

// ExtendUngapped performs BLAST-style X-drop extension of an ungapped seed.
// The seed aligns query[qSeed:qSeed+seedLen] with subject[sSeed:sSeed+seedLen].
// Extension proceeds independently to the left and right, accumulating the
// pairwise score and stopping once the running score falls more than xDrop
// below the best score seen in that direction; the returned segment is
// trimmed to the best-scoring extent. This is the anchor-lengthening step of
// the paper's §V-B ("incrementally extended until the extension deteriorates
// the score").
func ExtendUngapped(query, subject []byte, qSeed, sSeed, seedLen int, m *matrix.Matrix, xDrop int) Segment {
	if xDrop <= 0 {
		xDrop = 20
	}
	seedScore := 0
	for k := 0; k < seedLen; k++ {
		seedScore += m.Score(query[qSeed+k], subject[sSeed+k])
	}

	// Extend right from the seed end.
	bestRight, run := 0, 0
	qEnd, sEnd := qSeed+seedLen, sSeed+seedLen
	bestQEnd, bestSEnd := qEnd, sEnd
	for qi, si := qEnd, sEnd; qi < len(query) && si < len(subject); qi, si = qi+1, si+1 {
		run += m.Score(query[qi], subject[si])
		if run > bestRight {
			bestRight = run
			bestQEnd, bestSEnd = qi+1, si+1
		}
		if bestRight-run > xDrop {
			break
		}
	}

	// Extend left from the seed start.
	bestLeft, run := 0, 0
	bestQStart, bestSStart := qSeed, sSeed
	for qi, si := qSeed-1, sSeed-1; qi >= 0 && si >= 0; qi, si = qi-1, si-1 {
		run += m.Score(query[qi], subject[si])
		if run > bestLeft {
			bestLeft = run
			bestQStart, bestSStart = qi, si
		}
		if bestLeft-run > xDrop {
			break
		}
	}

	return Segment{
		QStart: bestQStart, QEnd: bestQEnd,
		SStart: bestSStart, SEnd: bestSEnd,
		Score: seedScore + bestLeft + bestRight,
	}
}

// ScoreUngapped recomputes the pairwise matrix score of an ungapped segment;
// coordinators use it to rescore anchors after merging.
func ScoreUngapped(query, subject []byte, s Segment, m *matrix.Matrix) int {
	total := 0
	for qi, si := s.QStart, s.SStart; qi < s.QEnd && si < s.SEnd; qi, si = qi+1, si+1 {
		total += m.Score(query[qi], subject[si])
	}
	return total
}
