package align

import (
	"strings"
	"testing"

	"mendel/internal/matrix"
)

func TestSegmentAccessors(t *testing.T) {
	s := Segment{QStart: 2, QEnd: 10, SStart: 5, SEnd: 13, Score: 42}
	if s.Diagonal() != 3 {
		t.Fatalf("diagonal = %d", s.Diagonal())
	}
	if s.QLen() != 8 || s.SLen() != 8 {
		t.Fatalf("lens = %d %d", s.QLen(), s.SLen())
	}
	if s.Empty() {
		t.Fatal("non-empty segment reported empty")
	}
	if !(Segment{}).Empty() {
		t.Fatal("zero segment should be empty")
	}
	if !strings.Contains(s.String(), "score=42") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestCIGARRendering(t *testing.T) {
	a := Alignment{Ops: []CigarOp{{OpMatch, 35}, {OpDelete, 2}, {OpMatch, 10}}}
	if got := a.CIGAR(); got != "35M2D10M" {
		t.Fatalf("CIGAR = %q", got)
	}
	if a.AlignedLength() != 47 {
		t.Fatalf("aligned length = %d", a.AlignedLength())
	}
	if a.Gaps() != 2 {
		t.Fatalf("gaps = %d", a.Gaps())
	}
}

func TestIdentity(t *testing.T) {
	q := []byte("ACGTACGT")
	s := []byte("ACGAACGT")
	a := Alignment{
		Segment: Segment{QStart: 0, QEnd: 8, SStart: 0, SEnd: 8},
		Ops:     []CigarOp{{OpMatch, 8}},
	}
	if got := a.Identity(q, s); got != 7.0/8.0 {
		t.Fatalf("identity = %f", got)
	}
	gapped := Alignment{
		Segment: Segment{QStart: 0, QEnd: 4, SStart: 0, SEnd: 5},
		Ops:     []CigarOp{{OpMatch, 2}, {OpDelete, 1}, {OpMatch, 2}},
	}
	// q=ACGT s=ACXGT: columns = 5, matches = 4.
	if got := gapped.Identity([]byte("ACGT"), []byte("ACNGT")); got != 4.0/5.0 {
		t.Fatalf("gapped identity = %f", got)
	}
	if (Alignment{}).Identity(nil, nil) != 0 {
		t.Fatal("empty identity should be 0")
	}
}

func TestFormat(t *testing.T) {
	q := []byte("HEAGAWGHEE")
	s := []byte("PAWHEAE")
	a := SmithWaterman(q, s, matrix.BLOSUM62)
	out := a.Format(q, s, matrix.BLOSUM62)
	if !strings.Contains(out, "Query") || !strings.Contains(out, "Sbjct") {
		t.Fatalf("format missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("format has %d lines", len(lines))
	}
}

func TestConsistent(t *testing.T) {
	good := Alignment{
		Segment: Segment{QStart: 0, QEnd: 3, SStart: 0, SEnd: 4},
		Ops:     []CigarOp{{OpMatch, 3}, {OpDelete, 1}},
	}
	if err := good.consistent(); err != nil {
		t.Fatalf("good alignment rejected: %v", err)
	}
	bad := Alignment{
		Segment: Segment{QStart: 0, QEnd: 5, SStart: 0, SEnd: 5},
		Ops:     []CigarOp{{OpMatch, 3}},
	}
	if err := bad.consistent(); err == nil {
		t.Fatal("span mismatch not detected")
	}
	zeroOp := Alignment{Ops: []CigarOp{{OpMatch, 0}}}
	if err := zeroOp.consistent(); err == nil {
		t.Fatal("zero-length op not detected")
	}
	unknown := Alignment{Ops: []CigarOp{{Op('Q'), 1}}}
	if err := unknown.consistent(); err == nil {
		t.Fatal("unknown op not detected")
	}
}
