package align

import (
	"math/rand"
	"testing"

	"mendel/internal/matrix"
)

func TestBandedEqualsFullWhenBandCoversMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		q := randomProtein(rng, rng.Intn(30)+5)
		s := randomProtein(rng, rng.Intn(30)+5)
		if trial%2 == 0 {
			s = append(s, mutate(rng, q, 2, 1)...)
		}
		full := SmithWaterman(q, s, matrix.BLOSUM62)
		banded := BandedSmithWaterman(q, s, -len(q), len(s), matrix.BLOSUM62)
		if banded.Score != full.Score {
			t.Fatalf("trial %d: banded %d != full %d", trial, banded.Score, full.Score)
		}
		if err := banded.consistent(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBandedRespectsBand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		q := randomProtein(rng, 40)
		s := mutate(rng, q, 5, 2)
		center := 0
		band := 4
		a := BandedSmithWaterman(q, s, center-band, center+band, matrix.BLOSUM62)
		if a.Score == 0 {
			continue
		}
		// Walk the path and verify every cell's diagonal stays in band.
		qi, si := a.QStart, a.SStart
		for _, op := range a.Ops {
			for k := 0; k < op.Len; k++ {
				switch op.Op {
				case OpMatch:
					qi++
					si++
				case OpInsert:
					qi++
				case OpDelete:
					si++
				}
				d := si - qi
				if d < center-band || d > center+band {
					t.Fatalf("trial %d: path leaves band: diagonal %d", trial, d)
				}
			}
		}
		if got := scoreFromOps(a, q, s, matrix.BLOSUM62); got != a.Score {
			t.Fatalf("trial %d: traceback score %d != %d", trial, got, a.Score)
		}
	}
}

func TestBandedScoreNeverExceedsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		q := randomProtein(rng, 30)
		s := mutate(rng, q, 4, 2)
		full := SmithWaterman(q, s, matrix.BLOSUM62)
		for _, band := range []int{0, 1, 2, 5} {
			b := BandedSmithWaterman(q, s, -band, band, matrix.BLOSUM62)
			if b.Score > full.Score {
				t.Fatalf("trial %d band %d: banded %d > full %d", trial, band, b.Score, full.Score)
			}
		}
	}
}

func TestBandedOffsetDiagonal(t *testing.T) {
	// Subject contains the query starting at offset 10: the alignment lies
	// on diagonal +10 and a band around it must find it.
	rng := rand.New(rand.NewSource(13))
	q := randomProtein(rng, 25)
	s := append(randomProtein(rng, 10), q...)
	a := BandedSmithWaterman(q, s, 8, 12, matrix.BLOSUM62)
	want := matrix.BLOSUM62.ScoreSegments(q, q)
	if a.Score != want {
		t.Fatalf("score = %d, want %d", a.Score, want)
	}
	if a.Diagonal() != 10 {
		t.Fatalf("diagonal = %d, want 10", a.Diagonal())
	}
	// A band that excludes diagonal 10 entirely must not find it.
	miss := BandedSmithWaterman(q, s, -2, 2, matrix.BLOSUM62)
	if miss.Score >= want {
		t.Fatalf("out-of-band search scored %d", miss.Score)
	}
}

func TestBandedDegenerateInputs(t *testing.T) {
	if a := BandedSmithWaterman(nil, []byte("AC"), 0, 0, matrix.DNAUnit); !a.Empty() {
		t.Fatal("empty query should yield empty alignment")
	}
	if a := BandedSmithWaterman([]byte("AC"), []byte("AC"), 5, 3, matrix.DNAUnit); !a.Empty() {
		t.Fatal("inverted band should yield empty alignment")
	}
	// Band entirely outside the matrix.
	if a := BandedSmithWaterman([]byte("AC"), []byte("AC"), 50, 60, matrix.DNAUnit); !a.Empty() {
		t.Fatal("out-of-range band should yield empty alignment")
	}
}
