package align

import (
	"errors"
	"math"
	"sync"

	"mendel/internal/matrix"
	"mendel/internal/seq"
)

// KarlinParams holds the Karlin–Altschul statistical parameters of a scoring
// system: E = K*m*n*exp(-Lambda*S) for a raw score S against a search space
// of m query by n database residues. H is the relative entropy (bits of
// information per aligned pair).
type KarlinParams struct {
	Lambda float64
	K      float64
	H      float64
}

// ErrNoPositiveScore indicates the scoring system cannot produce positive
// scores under the background distribution, so no Lambda exists.
var ErrNoPositiveScore = errors.New("align: scoring system has no positive expected maximum")

// SolveLambda computes the unique positive root of
//
//	sum_{i,j} p_i p_j exp(lambda * s_ij) = 1
//
// by bisection, the defining equation of the ungapped Karlin–Altschul
// Lambda. bg gives background residue frequencies over the matrix alphabet.
// The scoring system must have negative expected score and at least one
// positive score; otherwise an error is returned.
func SolveLambda(m *matrix.Matrix, bg []float64) (float64, error) {
	n := m.Dim()
	expected, hasPositive := 0.0, false
	for i := 0; i < n; i++ {
		if bg[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if bg[j] == 0 {
				continue
			}
			s := float64(m.ScoreIndex(i, j))
			expected += bg[i] * bg[j] * s
			if s > 0 {
				hasPositive = true
			}
		}
	}
	if !hasPositive || expected >= 0 {
		return 0, ErrNoPositiveScore
	}
	phi := func(lambda float64) float64 {
		sum := 0.0
		for i := 0; i < n; i++ {
			if bg[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if bg[j] == 0 {
					continue
				}
				sum += bg[i] * bg[j] * math.Exp(lambda*float64(m.ScoreIndex(i, j)))
			}
		}
		return sum - 1
	}
	// phi(0) = 0 with phi'(0) = E[s] < 0; phi grows without bound as lambda
	// increases because some score is positive. Bracket the positive root.
	hi := 0.5
	for phi(hi) < 0 {
		hi *= 2
		if hi > 1e4 {
			return 0, ErrNoPositiveScore
		}
	}
	lo := 0.0
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if phi(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// relativeEntropy computes H = lambda * sum p_i p_j s_ij exp(lambda s_ij),
// the expected score per pair under the alignment-induced distribution,
// in nats.
func relativeEntropy(m *matrix.Matrix, bg []float64, lambda float64) float64 {
	n := m.Dim()
	h := 0.0
	for i := 0; i < n; i++ {
		if bg[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if bg[j] == 0 {
				continue
			}
			s := float64(m.ScoreIndex(i, j))
			h += bg[i] * bg[j] * s * math.Exp(lambda*s)
		}
	}
	return lambda * h
}

// knownK maps scoring systems to published K values (NCBI BLAST tables).
// Lambda is always recomputed from first principles by SolveLambda; K has no
// closed form, so for unknown systems we fall back to a conservative 0.1,
// which shifts E-values by a constant factor without changing rankings.
var knownK = map[string]float64{
	"BLOSUM62": 0.134,
	"PAM250":   0.090,
	"DNA":      0.460,
}

// gappedParams are published Karlin–Altschul parameters for gapped
// alignments under each matrix's default gap penalties (NCBI BLAST tables:
// BLOSUM62 11/1, PAM250 14/2, nucleotide +1/-2 with 5/2). Gapped scores
// follow the same E = K m n exp(-lambda S) law empirically, with smaller
// lambda and K than the ungapped theory.
var gappedParams = map[string]KarlinParams{
	"BLOSUM62": {Lambda: 0.267, K: 0.041, H: 0.14},
	"PAM250":   {Lambda: 0.170, K: 0.021, H: 0.10},
	"DNA":      {Lambda: 1.280, K: 0.460, H: 0.85},
}

// GappedParamsForMatrix returns the statistical parameters appropriate for
// scoring *gapped* alignments under the matrix's default gap penalties,
// falling back to the (conservative, larger-lambda) ungapped parameters for
// scoring systems without published gapped values.
func GappedParamsForMatrix(m *matrix.Matrix) (KarlinParams, error) {
	if p, ok := gappedParams[m.Name]; ok {
		return p, nil
	}
	return ParamsForMatrix(m)
}

// Params derives the full Karlin–Altschul parameter set for a matrix and
// background distribution.
func Params(m *matrix.Matrix, bg []float64) (KarlinParams, error) {
	lambda, err := SolveLambda(m, bg)
	if err != nil {
		return KarlinParams{}, err
	}
	k, ok := knownK[m.Name]
	if !ok {
		k = 0.1
	}
	return KarlinParams{Lambda: lambda, K: k, H: relativeEntropy(m, bg, lambda)}, nil
}

var paramCache sync.Map // *matrix.Matrix -> KarlinParams

// ParamsForMatrix resolves Params with the standard background for the
// matrix's alphabet, caching results per matrix.
func ParamsForMatrix(m *matrix.Matrix) (KarlinParams, error) {
	if p, ok := paramCache.Load(m); ok {
		return p.(KarlinParams), nil
	}
	var bg []float64
	if m.Alphabet.Kind() == seq.DNA {
		bg = matrix.DNABackground()
	} else {
		bg = matrix.ProteinBackground()
	}
	p, err := Params(m, bg)
	if err != nil {
		return KarlinParams{}, err
	}
	paramCache.Store(m, p)
	return p, nil
}

// BitScore converts a raw score to a normalized bit score.
func (p KarlinParams) BitScore(raw int) float64 {
	return (p.Lambda*float64(raw) - math.Log(p.K)) / math.Ln2
}

// EValue returns the expected number of chance alignments with score at
// least raw in a search space of queryLen by dbLen residues.
func (p KarlinParams) EValue(raw, queryLen, dbLen int) float64 {
	return p.K * float64(queryLen) * float64(dbLen) * math.Exp(-p.Lambda*float64(raw))
}

// ScoreForEValue inverts EValue: the minimum raw score whose E-value is at
// most e in the given search space. Used to derive score cutoffs.
func (p KarlinParams) ScoreForEValue(e float64, queryLen, dbLen int) int {
	if e < 1e-300 {
		e = 1e-300 // avoid overflow in the ratio below
	}
	s := (math.Log(p.K) + math.Log(float64(queryLen)) + math.Log(float64(dbLen)) - math.Log(e)) / p.Lambda
	return int(math.Ceil(s))
}
