package align

import (
	"testing"

	"mendel/internal/matrix"
)

func TestGappedParamsKnownMatrices(t *testing.T) {
	for _, m := range []*matrix.Matrix{matrix.BLOSUM62, matrix.PAM250, matrix.DNAUnit} {
		g, err := GappedParamsForMatrix(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		u, err := ParamsForMatrix(m)
		if err != nil {
			t.Fatal(err)
		}
		// Gapped lambda is always smaller than ungapped: gaps give chance
		// alignments more freedom, so the same raw score is less
		// significant.
		if g.Lambda >= u.Lambda {
			t.Errorf("%s: gapped lambda %f >= ungapped %f", m.Name, g.Lambda, u.Lambda)
		}
		if g.K <= 0 || g.Lambda <= 0 {
			t.Errorf("%s: invalid gapped params %+v", m.Name, g)
		}
	}
}

func TestGappedParamsFallbackToUngapped(t *testing.T) {
	m := matrix.NewDNA(3, -4, 6, 2)
	m.Name = "custom-dna"
	g, err := GappedParamsForMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Params(m, matrix.DNABackground())
	if err != nil {
		t.Fatal(err)
	}
	if g.Lambda != u.Lambda {
		t.Fatalf("fallback lambda %f != ungapped %f", g.Lambda, u.Lambda)
	}
}

func TestGappedEValueLargerThanUngapped(t *testing.T) {
	// For the same raw score, the gapped E-value must be larger (less
	// significant) than the ungapped one under BLOSUM62.
	g, _ := GappedParamsForMatrix(matrix.BLOSUM62)
	u, _ := ParamsForMatrix(matrix.BLOSUM62)
	if g.EValue(60, 500, 1e6) <= u.EValue(60, 500, 1e6) {
		t.Fatal("gapped E-value should exceed ungapped at equal raw score")
	}
}
