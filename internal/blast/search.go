package blast

import (
	"fmt"
	"sort"

	"mendel/internal/align"
	"mendel/internal/seq"
)

// Hit is one reported alignment with its statistics, mirroring core.Hit so
// the benchmark harness can compare the two systems uniformly.
type Hit struct {
	Seq       seq.ID
	Name      string
	Alignment align.Alignment
	Bits      float64
	E         float64
}

// diagKey identifies a (sequence, diagonal) lane for the two-hit filter.
type diagKey struct {
	seq  seq.ID
	diag int32
}

// diagState tracks per-lane progress: the query end of the last unpaired
// hit and the rightmost subject offset already covered by an extension.
type diagState struct {
	lastQEnd int32
	extended int32 // subject end of the last HSP on this lane, -1 if none
}

// Search runs the full pipeline against the database and returns hits with
// E-value at most maxE, ranked best-first.
func (db *DB) Search(query []byte, maxE float64) ([]Hit, error) {
	q := append([]byte(nil), query...)
	if err := db.alphabet.Normalize(q); err != nil {
		return nil, err
	}
	if len(q) < db.cfg.WordLen {
		return nil, fmt.Errorf("blast: query shorter than word length %d", db.cfg.WordLen)
	}
	kp, err := align.ParamsForMatrix(db.m)
	if err != nil {
		return nil, err
	}
	gkp, err := align.GappedParamsForMatrix(db.m)
	if err != nil {
		return nil, err
	}

	lanes := make(map[diagKey]*diagState)
	var hsps []hspRec
	k := db.cfg.WordLen

	neighborCache := make(map[uint64][]uint64) // word -> neighbourhood, memoized per query
	for qpos := 0; qpos+k <= len(q); qpos++ {
		word := q[qpos : qpos+k]
		code, ok := db.encode(word)
		if !ok {
			continue
		}
		var probes []uint64
		if db.cfg.Threshold > 0 {
			probes, ok = neighborCache[code]
			if !ok {
				probes = db.neighborhood(word, db.cfg.Threshold)
				neighborCache[code] = probes
			}
		} else {
			probes = []uint64{code}
		}
		for _, probe := range probes {
			for _, loc := range db.index[probe] {
				db.processHit(q, qpos, loc, lanes, &hsps)
			}
		}
	}

	return db.finish(q, hsps, kp, gkp, maxE)
}

type hspRec struct {
	seg align.Segment
	id  seq.ID
}

// processHit applies the two-hit heuristic and ungapped extension.
func (db *DB) processHit(q []byte, qpos int, loc wordLoc, lanes map[diagKey]*diagState, hsps *[]hspRec) {
	k := db.cfg.WordLen
	key := diagKey{seq: loc.seq, diag: loc.pos - int32(qpos)}
	lane := lanes[key]
	if lane == nil {
		lane = &diagState{lastQEnd: -1, extended: -1}
		lanes[key] = lane
	}
	// Skip hits already inside an extended HSP on this lane.
	if int32(loc.pos)+int32(k) <= lane.extended {
		return
	}
	if db.cfg.TwoHit {
		// A hit overlapping the recorded one is ignored (not re-recorded):
		// otherwise a run of consecutive hits would slide the mark forever
		// and never pair. A non-overlapping hit within the window triggers
		// extension; beyond the window it becomes the new recorded hit.
		if lane.lastQEnd >= 0 && int32(qpos) < lane.lastQEnd {
			return
		}
		if lane.lastQEnd < 0 || int32(qpos)-lane.lastQEnd > int32(db.cfg.TwoHitWindow) {
			lane.lastQEnd = int32(qpos + k)
			return
		}
	}
	subject := db.set.Get(loc.seq)
	seg := align.ExtendUngapped(q, subject.Data, qpos, int(loc.pos), k, db.m, db.cfg.XDrop)
	lane.extended = int32(seg.SEnd)
	lane.lastQEnd = -1
	*hsps = append(*hsps, hspRec{seg: seg, id: loc.seq})
}

// finish gap-extends qualifying HSPs, scores, filters and ranks.
func (db *DB) finish(q []byte, hsps []hspRec, kp, gkp align.KarlinParams, maxE float64) ([]Hit, error) {
	// Deduplicate HSPs by (seq, segment) before the expensive stage.
	type segKey struct {
		id seq.ID
		s  align.Segment
	}
	uniq := make(map[segKey]bool, len(hsps))
	var hits []Hit
	for _, h := range hsps {
		sk := segKey{h.id, h.seg}
		if uniq[sk] {
			continue
		}
		uniq[sk] = true
		if kp.BitScore(h.seg.Score) < db.cfg.GappedTriggerBits {
			continue
		}
		subject := db.set.Get(h.id)
		// Bound the gapped extension to a window around the HSP.
		pad := len(q) + db.cfg.Band
		winStart := h.seg.SStart - pad
		if winStart < 0 {
			winStart = 0
		}
		winEnd := h.seg.SEnd + pad
		if winEnd > subject.Len() {
			winEnd = subject.Len()
		}
		window := subject.Data[winStart:winEnd]
		centerDiag := (h.seg.SStart - winStart) - h.seg.QStart
		al := align.BandedSmithWaterman(q, window, centerDiag-db.cfg.Band, centerDiag+db.cfg.Band, db.m)
		if al.Empty() {
			continue
		}
		al.SStart += winStart
		al.SEnd += winStart
		e := gkp.EValue(al.Score, len(q), db.total)
		if e > maxE {
			continue
		}
		hits = append(hits, Hit{
			Seq:       h.id,
			Name:      subject.Name,
			Alignment: al,
			Bits:      gkp.BitScore(al.Score),
			E:         e,
		})
	}
	hits = dedupHits(hits)
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].E != hits[j].E {
			return hits[i].E < hits[j].E
		}
		return hits[i].Seq < hits[j].Seq
	})
	return hits, nil
}

// dedupHits removes exact duplicates and contained alignments, keeping the
// best-scoring representative per region.
func dedupHits(hits []Hit) []Hit {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Alignment.Score != hits[j].Alignment.Score {
			return hits[i].Alignment.Score > hits[j].Alignment.Score
		}
		if hits[i].Seq != hits[j].Seq {
			return hits[i].Seq < hits[j].Seq
		}
		return hits[i].Alignment.SStart < hits[j].Alignment.SStart
	})
	var out []Hit
	for _, h := range hits {
		contained := false
		for _, kept := range out {
			if kept.Seq != h.Seq {
				continue
			}
			if h.Alignment.SStart >= kept.Alignment.SStart && h.Alignment.SEnd <= kept.Alignment.SEnd &&
				h.Alignment.QStart >= kept.Alignment.QStart && h.Alignment.QEnd <= kept.Alignment.QEnd {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, h)
		}
	}
	return out
}
