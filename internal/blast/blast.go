// Package blast is a from-scratch implementation of the BLAST family's
// seed-and-extend search (Altschul et al. 1990; Gapped BLAST 1997), built as
// the single-machine baseline the paper's evaluation compares Mendel
// against. The pipeline is the classic one:
//
//  1. the query is tokenized into k-letter words; for proteins, each word's
//     neighbourhood — all words scoring at least T against it — is
//     generated (with branch-and-bound pruning);
//  2. an inverted word index over the database yields exact matches to the
//     neighbourhood words;
//  3. hits are filtered with the two-hit heuristic (two non-overlapping
//     hits on the same diagonal within a window) and extended without gaps
//     under an X-drop rule into HSPs;
//  4. HSPs above a bit-score trigger receive a banded gapped extension;
//  5. alignments are scored, assigned E-values and ranked.
//
// Because the whole database index lives in one memory image and every
// query word probes it, search cost grows with database size — the scaling
// signature Figures 6a/6b contrast with Mendel's DHT.
package blast

import (
	"fmt"

	"mendel/internal/matrix"
	"mendel/internal/seq"
)

// Config controls the search heuristics.
type Config struct {
	// WordLen is the seed word length: conventionally 3 for protein, 11
	// for DNA.
	WordLen int
	// Threshold is the neighbourhood score threshold T (protein only; DNA
	// uses exact word matches).
	Threshold int
	// TwoHit enables the two-hit seeding heuristic with the given window.
	TwoHit bool
	// TwoHitWindow is the maximum diagonal distance between paired hits.
	TwoHitWindow int
	// XDrop is the ungapped extension drop-off.
	XDrop int
	// GappedTriggerBits is the ungapped bit score above which a gapped
	// extension is attempted.
	GappedTriggerBits float64
	// Band is the gapped extension band half-width in diagonals.
	Band int
}

// DefaultProteinConfig mirrors blastp defaults (word 3, T=11, two-hit
// window 40).
func DefaultProteinConfig() Config {
	return Config{
		WordLen:           3,
		Threshold:         11,
		TwoHit:            true,
		TwoHitWindow:      40,
		XDrop:             20,
		GappedTriggerBits: 22,
		Band:              24,
	}
}

// DefaultDNAConfig mirrors blastn-style seeding (exact 11-mers, one-hit).
func DefaultDNAConfig() Config {
	return Config{
		WordLen:           11,
		Threshold:         0,
		TwoHit:            false,
		XDrop:             20,
		GappedTriggerBits: 16,
		Band:              24,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.WordLen <= 0 || c.WordLen > 12:
		return fmt.Errorf("blast: WordLen = %d", c.WordLen)
	case c.TwoHit && c.TwoHitWindow <= 0:
		return fmt.Errorf("blast: TwoHitWindow = %d", c.TwoHitWindow)
	case c.XDrop <= 0:
		return fmt.Errorf("blast: XDrop = %d", c.XDrop)
	case c.Band <= 0:
		return fmt.Errorf("blast: Band = %d", c.Band)
	}
	return nil
}

// wordLoc is one database occurrence of a word.
type wordLoc struct {
	seq seq.ID
	pos int32
}

// DB is an indexed sequence database.
type DB struct {
	cfg      Config
	m        *matrix.Matrix
	alphabet *seq.Alphabet
	set      *seq.Set
	index    map[uint64][]wordLoc
	total    int
}

// NewDB indexes every k-word of every sequence. Words containing ambiguity
// codes are skipped, as in NCBI BLAST.
func NewDB(set *seq.Set, cfg Config, m *matrix.Matrix) (*DB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db := &DB{
		cfg:      cfg,
		m:        m,
		alphabet: seq.AlphabetFor(set.Kind),
		set:      set,
		index:    make(map[uint64][]wordLoc),
		total:    set.TotalResidues(),
	}
	for _, s := range set.Seqs {
		db.indexSequence(s)
	}
	return db, nil
}

func (db *DB) indexSequence(s *seq.Sequence) {
	k := db.cfg.WordLen
	for pos := 0; pos+k <= s.Len(); pos++ {
		code, ok := db.encode(s.Data[pos : pos+k])
		if !ok {
			continue
		}
		db.index[code] = append(db.index[code], wordLoc{seq: s.ID, pos: int32(pos)})
	}
}

// encode packs a word into 5 bits per residue; ambiguous residues make the
// word unindexable.
func (db *DB) encode(word []byte) (uint64, bool) {
	var code uint64
	for _, c := range word {
		if db.alphabet.Ambiguous(c) {
			return 0, false
		}
		idx := db.alphabet.Index(c)
		if idx < 0 {
			return 0, false
		}
		code = code<<5 | uint64(idx)
	}
	return code, true
}

// TotalResidues returns the indexed database size.
func (db *DB) TotalResidues() int { return db.total }

// NumWords returns the number of distinct indexed words (diagnostics).
func (db *DB) NumWords() int { return len(db.index) }

// Sequence returns the underlying sequence for a hit.
func (db *DB) Sequence(id seq.ID) *seq.Sequence { return db.set.Get(id) }
