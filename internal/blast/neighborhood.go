package blast

// neighborhood enumerates every k-word whose pairwise score against the
// query word is at least T, using branch-and-bound: positions are extended
// left to right, pruning any partial word that cannot reach T even with the
// best possible score at every remaining position. For BLOSUM62 with T=11
// the neighbourhood of a typical 3-word has a few dozen members, so this is
// cheap despite the 20^k nominal space.
func (db *DB) neighborhood(word []byte, t int) []uint64 {
	k := len(word)
	letters := db.standardLetters()
	// bestAt[i] is the maximum score any letter can achieve against
	// word[i]; suffixBest[i] is the sum of bestAt[i:].
	bestAt := make([]int, k)
	for i := 0; i < k; i++ {
		best := db.m.Score(word[i], letters[0])
		for _, c := range letters[1:] {
			if s := db.m.Score(word[i], c); s > best {
				best = s
			}
		}
		bestAt[i] = best
	}
	suffixBest := make([]int, k+1)
	for i := k - 1; i >= 0; i-- {
		suffixBest[i] = suffixBest[i+1] + bestAt[i]
	}
	var out []uint64
	var rec func(i int, code uint64, score int)
	rec = func(i int, code uint64, score int) {
		if i == k {
			if score >= t {
				out = append(out, code)
			}
			return
		}
		for _, c := range letters {
			s := score + db.m.Score(word[i], c)
			if s+suffixBest[i+1] < t {
				continue
			}
			rec(i+1, code<<5|uint64(db.alphabet.Index(c)), s)
		}
	}
	rec(0, 0, 0)
	return out
}

// standardLetters returns the non-ambiguous residues of the alphabet, the
// candidates for neighbourhood words.
func (db *DB) standardLetters() []byte {
	var out []byte
	for _, c := range db.alphabet.Letters() {
		if !db.alphabet.Ambiguous(c) {
			out = append(out, c)
		}
	}
	return out
}
