package blast

import (
	"math/rand"
	"testing"

	"mendel/internal/matrix"
	"mendel/internal/seq"
)

const proteinLetters = "ARNDCQEGHILKMFPSTWYV"

func randProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = proteinLetters[rng.Intn(len(proteinLetters))]
	}
	return out
}

func proteinDB(t *testing.T, rng *rand.Rand, n, length int) (*seq.Set, *DB) {
	t.Helper()
	set := seq.NewSet(seq.Protein)
	for i := 0; i < n; i++ {
		if _, err := set.Add("ref", randProtein(rng, length)); err != nil {
			t.Fatal(err)
		}
	}
	db, err := NewDB(set, DefaultProteinConfig(), matrix.BLOSUM62)
	if err != nil {
		t.Fatal(err)
	}
	return set, db
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultProteinConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultDNAConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultProteinConfig()
	bad.WordLen = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero word length accepted")
	}
	bad = DefaultProteinConfig()
	bad.WordLen = 13
	if err := bad.Validate(); err == nil {
		t.Error("13-letter words would overflow the 64-bit code with 5-bit packing... accepted")
	}
	bad = DefaultProteinConfig()
	bad.TwoHitWindow = 0
	if err := bad.Validate(); err == nil {
		t.Error("two-hit without window accepted")
	}
}

func TestEncodeSkipsAmbiguous(t *testing.T) {
	set := seq.NewSet(seq.Protein)
	if _, err := set.Add("s", []byte("ACDEFGHIK")); err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(set, DefaultProteinConfig(), matrix.BLOSUM62)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.encode([]byte("AXC")); ok {
		t.Error("word with X encoded")
	}
	if _, ok := db.encode([]byte("ACD")); !ok {
		t.Error("clean word rejected")
	}
	c1, _ := db.encode([]byte("ACD"))
	c2, _ := db.encode([]byte("ACE"))
	if c1 == c2 {
		t.Error("distinct words collide")
	}
}

func TestNeighborhoodContainsSelfAndIsThresholded(t *testing.T) {
	set := seq.NewSet(seq.Protein)
	if _, err := set.Add("s", []byte("ACDEFGHIK")); err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(set, DefaultProteinConfig(), matrix.BLOSUM62)
	if err != nil {
		t.Fatal(err)
	}
	word := []byte("WWW") // self-score 33, far above T=11
	hood := db.neighborhood(word, 11)
	selfCode, _ := db.encode(word)
	foundSelf := false
	for _, c := range hood {
		if c == selfCode {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Fatal("neighbourhood missing the word itself")
	}
	// Every member must genuinely score >= T. Decode and rescore.
	letters := db.standardLetters()
	for _, c := range hood {
		var w [3]byte
		w[2] = letterByIndex(letters, db, int(c&31))
		w[1] = letterByIndex(letters, db, int((c>>5)&31))
		w[0] = letterByIndex(letters, db, int((c>>10)&31))
		score := 0
		for i := 0; i < 3; i++ {
			score += db.m.Score(word[i], w[i])
		}
		if score < 11 {
			t.Fatalf("neighbourhood word %s scores %d < 11", w, score)
		}
	}
	// Raising T shrinks the neighbourhood.
	if len(db.neighborhood(word, 25)) >= len(hood) {
		t.Fatal("higher threshold did not shrink neighbourhood")
	}
}

func letterByIndex(letters []byte, db *DB, idx int) byte {
	for _, c := range letters {
		if db.alphabet.Index(c) == idx {
			return c
		}
	}
	return '?'
}

func TestSearchFindsExactSubsequence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set, db := proteinDB(t, rng, 20, 400)
	query := set.Seqs[7].Data[100:220]
	hits, err := db.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("exact subsequence not found")
	}
	if hits[0].Seq != 7 {
		t.Fatalf("top hit = seq %d, want 7", hits[0].Seq)
	}
	if hits[0].Alignment.SStart > 100 || hits[0].Alignment.SEnd < 220 {
		t.Fatalf("span = %+v", hits[0].Alignment.Segment)
	}
	if hits[0].E > 1e-10 {
		t.Fatalf("E = %g", hits[0].E)
	}
}

func TestSearchFindsMutatedHomolog(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	set, db := proteinDB(t, rng, 15, 400)
	query := append([]byte(nil), set.Seqs[3].Data[50:200]...)
	for i := 0; i < len(query); i += 7 { // ~14% substitutions
		query[i] = proteinLetters[rng.Intn(len(proteinLetters))]
	}
	hits, err := db.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 3 {
		t.Fatalf("mutated homolog hits = %+v", hits)
	}
}

func TestSearchRandomQueryIsInsignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, db := proteinDB(t, rng, 10, 300)
	hits, err := db.Search(randProtein(rng, 120), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("random query produced %d hits; best E=%g", len(hits), hits[0].E)
	}
}

func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	_, db := proteinDB(t, rng, 3, 100)
	if _, err := db.Search([]byte("AC"), 10); err == nil {
		t.Error("too-short query accepted")
	}
	if _, err := db.Search([]byte("!!!"), 10); err == nil {
		t.Error("invalid residues accepted")
	}
}

func TestDNASearch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	set := seq.NewSet(seq.DNA)
	const dna = "ACGT"
	for i := 0; i < 8; i++ {
		data := make([]byte, 600)
		for j := range data {
			data[j] = dna[rng.Intn(4)]
		}
		if _, err := set.Add("chr", data); err != nil {
			t.Fatal(err)
		}
	}
	db, err := NewDB(set, DefaultDNAConfig(), matrix.DNAUnit)
	if err != nil {
		t.Fatal(err)
	}
	query := set.Seqs[2].Data[100:300]
	hits, err := db.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 2 {
		t.Fatalf("DNA hits = %+v", hits)
	}
}

func TestTwoHitReducesSeeding(t *testing.T) {
	// One-hit mode must find at least as many (typically more) HSPs than
	// two-hit mode; both must find a strong planted homolog.
	rng := rand.New(rand.NewSource(6))
	set := seq.NewSet(seq.Protein)
	for i := 0; i < 10; i++ {
		if _, err := set.Add("ref", randProtein(rng, 300)); err != nil {
			t.Fatal(err)
		}
	}
	oneHitCfg := DefaultProteinConfig()
	oneHitCfg.TwoHit = false
	twoHit, err := NewDB(set, DefaultProteinConfig(), matrix.BLOSUM62)
	if err != nil {
		t.Fatal(err)
	}
	oneHit, err := NewDB(set, oneHitCfg, matrix.BLOSUM62)
	if err != nil {
		t.Fatal(err)
	}
	query := set.Seqs[4].Data[50:250]
	h2, err := twoHit.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := oneHit.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2) == 0 || len(h1) == 0 {
		t.Fatal("planted homolog missed")
	}
	if h1[0].Seq != 4 || h2[0].Seq != 4 {
		t.Fatal("wrong top hit")
	}
}

func TestNumWordsGrowsWithDB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, small := proteinDB(t, rng, 2, 100)
	_, large := proteinDB(t, rng, 20, 400)
	if small.NumWords() >= large.NumWords() {
		t.Fatalf("word index did not grow: %d vs %d", small.NumWords(), large.NumWords())
	}
	if small.TotalResidues() != 200 {
		t.Fatalf("total = %d", small.TotalResidues())
	}
}
