package matrix

import (
	"testing"

	"mendel/internal/seq"
)

func TestBLOSUM62KnownValues(t *testing.T) {
	cases := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'L', 'L', 4}, {'C', 'C', 9},
		{'W', 'Y', 2}, {'A', 'R', -1}, {'G', 'I', -4}, {'*', '*', 1},
		{'A', '*', -4}, {'B', 'D', 4}, {'E', 'Z', 4}, {'X', 'X', -1},
	}
	for _, c := range cases {
		if got := BLOSUM62.Score(c.a, c.b); got != c.want {
			t.Errorf("BLOSUM62(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := BLOSUM62.Score(c.b, c.a); got != c.want {
			t.Errorf("BLOSUM62(%c,%c) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestPAM250KnownValues(t *testing.T) {
	cases := []struct {
		a, b byte
		want int
	}{
		{'W', 'W', 17}, {'C', 'C', 12}, {'A', 'A', 2}, {'F', 'Y', 7}, {'W', 'A', -6},
	}
	for _, c := range cases {
		if got := PAM250.Score(c.a, c.b); got != c.want {
			t.Errorf("PAM250(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLowercaseScoring(t *testing.T) {
	if got := BLOSUM62.Score('a', 'a'); got != 4 {
		t.Fatalf("lowercase score = %d", got)
	}
	if got := BLOSUM62.Score('a', 'R'); got != -1 {
		t.Fatalf("mixed-case score = %d", got)
	}
}

func TestInvalidResidueScoresAtMinimum(t *testing.T) {
	if got := BLOSUM62.Score('!', 'A'); got != BLOSUM62.Min() {
		t.Fatalf("invalid residue score = %d, want %d", got, BLOSUM62.Min())
	}
}

func TestMinMax(t *testing.T) {
	if BLOSUM62.Min() != -4 || BLOSUM62.Max() != 11 {
		t.Fatalf("BLOSUM62 min/max = %d/%d", BLOSUM62.Min(), BLOSUM62.Max())
	}
	if PAM250.Min() != -8 || PAM250.Max() != 17 {
		t.Fatalf("PAM250 min/max = %d/%d", PAM250.Min(), PAM250.Max())
	}
}

func TestGapDefaults(t *testing.T) {
	if BLOSUM62.GapOpen != 11 || BLOSUM62.GapExtend != 1 {
		t.Fatalf("BLOSUM62 gaps = %d/%d", BLOSUM62.GapOpen, BLOSUM62.GapExtend)
	}
}

func TestDNAMatrix(t *testing.T) {
	m := DNAUnit
	if got := m.Score('A', 'A'); got != 1 {
		t.Fatalf("match = %d", got)
	}
	if got := m.Score('A', 'G'); got != -2 {
		t.Fatalf("mismatch = %d", got)
	}
	if got := m.Score('N', 'N'); got != -2 {
		t.Fatalf("N-N should score as mismatch, got %d", got)
	}
	custom := NewDNA(5, -4, 10, 2)
	if custom.Score('C', 'C') != 5 || custom.Score('C', 'T') != -4 {
		t.Fatal("custom DNA matrix wrong")
	}
}

func TestScoreSegments(t *testing.T) {
	got := BLOSUM62.ScoreSegments([]byte("WWW"), []byte("WWY"))
	if want := 11 + 11 + 2; got != want {
		t.Fatalf("ScoreSegments = %d, want %d", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unequal lengths")
		}
	}()
	BLOSUM62.ScoreSegments([]byte("AB"), []byte("A"))
}

func TestByName(t *testing.T) {
	for _, name := range []string{"BLOSUM62", "blosum62", "PAM250", "pam250", "DNA", "dna"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("BLOSUM999"); ok {
		t.Error("unknown matrix resolved")
	}
}

func TestNewRejectsBadShapes(t *testing.T) {
	a := seq.DNAAlphabet
	if _, err := New("x", a, [][]int{{0}}, 1, 1); err == nil {
		t.Error("wrong row count accepted")
	}
	bad := make([][]int, a.Len())
	for i := range bad {
		bad[i] = make([]int, a.Len())
	}
	bad[0] = bad[0][:2]
	if _, err := New("x", a, bad, 1, 1); err == nil {
		t.Error("ragged rows accepted")
	}
	asym := make([][]int, a.Len())
	for i := range asym {
		asym[i] = make([]int, a.Len())
	}
	asym[0][1] = 3
	if _, err := New("x", a, asym, 1, 1); err == nil {
		t.Error("asymmetric matrix accepted")
	}
}

func TestProteinBackground(t *testing.T) {
	bg := ProteinBackground()
	if len(bg) != seq.ProteinAlphabet.Len() {
		t.Fatalf("len = %d", len(bg))
	}
	sum := 0.0
	for _, p := range bg {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("sum = %f", sum)
	}
	a := seq.ProteinAlphabet
	leu, trp := bg[a.Index('L')], bg[a.Index('W')]
	if leu < 5*trp {
		t.Fatalf("Leu/Trp ratio = %f, paper expects Leu far more frequent", leu/trp)
	}
	for _, c := range []byte("BZX*") {
		if bg[a.Index(c)] != 0 {
			t.Errorf("ambiguity code %c has nonzero background", c)
		}
	}
}

func TestDNABackground(t *testing.T) {
	bg := DNABackground()
	for _, c := range []byte("ACGT") {
		if bg[seq.DNAAlphabet.Index(c)] != 0.25 {
			t.Errorf("freq(%c) = %f", c, bg[seq.DNAAlphabet.Index(c)])
		}
	}
	if bg[seq.DNAAlphabet.Index('N')] != 0 {
		t.Error("N has nonzero background")
	}
}
