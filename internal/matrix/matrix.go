// Package matrix provides amino-acid and nucleotide scoring matrices
// (BLOSUM62, PAM250, configurable DNA match/mismatch) and the Mendel
// distance-matrix transform that turns a similarity scoring matrix into a
// true metric usable by vantage point trees.
//
// The paper (§III-B) defines the transform element-wise as
//
//	M[i][j] = |B[i][j] - B[i][i]|
//
// which corrects each column against its diagonal so exact matches sit at
// distance zero. As published the transform is neither symmetric (the two
// diagonal entries B[i][i] and B[j][j] differ) nor guaranteed to satisfy the
// triangle inequality, both of which the vp-tree needs for correct pruning.
// DistanceMatrix therefore symmetrizes with the max of the two
// column-corrected values and then applies a shortest-path metric closure
// (Floyd–Warshall), which preserves symmetry and the zero diagonal while
// enforcing the triangle inequality. Property tests verify the axioms.
package matrix

import (
	"fmt"
	"strings"

	"mendel/internal/seq"
)

// Matrix is a residue-pair scoring matrix over a dense alphabet, together
// with the affine gap penalties conventionally used with it. Scores follow
// the usual convention: positive for conservative pairs, negative for
// unlikely ones. Gap penalties are stored as positive costs.
type Matrix struct {
	Name      string
	Alphabet  *seq.Alphabet
	GapOpen   int // cost to open a gap (positive)
	GapExtend int // cost to extend a gap by one residue (positive)

	scores [][]int
	lookup [256][256]int16 // byte-indexed scores for the hot path
	min    int
	max    int
}

// New builds a Matrix from a dense score table whose dimensions must match
// the alphabet. The table is retained.
func New(name string, a *seq.Alphabet, scores [][]int, gapOpen, gapExtend int) (*Matrix, error) {
	n := a.Len()
	if len(scores) != n {
		return nil, fmt.Errorf("matrix %s: %d rows, alphabet has %d letters", name, len(scores), n)
	}
	m := &Matrix{Name: name, Alphabet: a, GapOpen: gapOpen, GapExtend: gapExtend, scores: scores}
	m.min, m.max = scores[0][0], scores[0][0]
	for i, row := range scores {
		if len(row) != n {
			return nil, fmt.Errorf("matrix %s: row %d has %d columns, want %d", name, i, len(row), n)
		}
		for j, s := range row {
			if s != scores[j][i] {
				return nil, fmt.Errorf("matrix %s: asymmetric at (%d,%d)", name, i, j)
			}
			if s < m.min {
				m.min = s
			}
			if s > m.max {
				m.max = s
			}
		}
	}
	letters := a.Letters()
	worst := int16(m.min)
	for x := range m.lookup {
		for y := range m.lookup[x] {
			m.lookup[x][y] = worst
		}
	}
	for i, ci := range letters {
		for j, cj := range letters {
			s := int16(scores[i][j])
			m.lookup[ci][cj] = s
			m.lookup[lower(ci)][cj] = s
			m.lookup[ci][lower(cj)] = s
			m.lookup[lower(ci)][lower(cj)] = s
		}
	}
	return m, nil
}

func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// MustNew is New but panics on error; used for the package-level matrices.
func MustNew(name string, a *seq.Alphabet, scores [][]int, gapOpen, gapExtend int) *Matrix {
	m, err := New(name, a, scores, gapOpen, gapExtend)
	if err != nil {
		panic(err)
	}
	return m
}

// Score returns the score of aligning residues a against b. Residues outside
// the alphabet score at the matrix minimum.
func (m *Matrix) Score(a, b byte) int { return int(m.lookup[a][b]) }

// ScoreIndex returns the score for dense alphabet indices i, j.
func (m *Matrix) ScoreIndex(i, j int) int { return m.scores[i][j] }

// Min and Max return the extreme entries of the matrix.
func (m *Matrix) Min() int { return m.min }

// Max returns the largest entry of the matrix.
func (m *Matrix) Max() int { return m.max }

// Dim returns the alphabet size.
func (m *Matrix) Dim() int { return m.Alphabet.Len() }

// ScoreSegments sums pairwise scores across two equal-length residue
// segments; it panics if the lengths differ.
func (m *Matrix) ScoreSegments(a, b []byte) int {
	if len(a) != len(b) {
		panic("matrix: ScoreSegments on unequal lengths")
	}
	total := 0
	for i := range a {
		total += int(m.lookup[a[i]][b[i]])
	}
	return total
}

// parse reads an NCBI-style matrix: a header line of residue letters then
// one row per residue. Rows and columns may appear in any order but must
// cover the alphabet exactly.
func parse(name string, a *seq.Alphabet, text string, gapOpen, gapExtend int) *Matrix {
	var header []byte
	n := a.Len()
	scores := make([][]int, n)
	seen := 0
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		if header == nil {
			for _, f := range fields {
				if len(f) != 1 || a.Index(f[0]) < 0 {
					panic(fmt.Sprintf("matrix %s: bad header token %q", name, f))
				}
				header = append(header, f[0])
			}
			if len(header) != n {
				panic(fmt.Sprintf("matrix %s: header has %d letters, alphabet %d", name, len(header), n))
			}
			continue
		}
		if len(fields) != n+1 {
			panic(fmt.Sprintf("matrix %s line %d: %d fields, want %d", name, lineNo, len(fields), n+1))
		}
		ri := a.Index(fields[0][0])
		if ri < 0 || scores[ri] != nil {
			panic(fmt.Sprintf("matrix %s line %d: bad or duplicate row %q", name, lineNo, fields[0]))
		}
		row := make([]int, n)
		for k, f := range fields[1:] {
			v := 0
			if _, err := fmt.Sscanf(f, "%d", &v); err != nil {
				panic(fmt.Sprintf("matrix %s line %d: bad value %q", name, lineNo, f))
			}
			row[a.Index(header[k])] = v
		}
		scores[ri] = row
		seen++
	}
	if seen != n {
		panic(fmt.Sprintf("matrix %s: %d rows, want %d", name, seen, n))
	}
	return MustNew(name, a, scores, gapOpen, gapExtend)
}
