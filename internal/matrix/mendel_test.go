package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mendel/internal/seq"
)

func TestDistanceMatrixIsMetric(t *testing.T) {
	for _, m := range []*Matrix{BLOSUM62, PAM250, DNAUnit} {
		d := DistanceMatrix(m)
		if err := CheckMetric(d); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestDistanceMatrixExactMatchIsZero(t *testing.T) {
	d := DistanceMatrix(BLOSUM62)
	for i := range d {
		if d[i][i] != 0 {
			t.Fatalf("d[%d][%d] = %d", i, i, d[i][i])
		}
	}
}

func TestDistanceMatrixOrdersMismatchStrength(t *testing.T) {
	// Conservative substitutions must sit closer than radical ones: the
	// paper's rationale is that mismatch penalties "retain the same
	// amplitude" relative to the exact match. I<->L (BLOSUM62 +2) should be
	// nearer than W<->G (-2, against diagonals 11 and 6).
	d := DistanceMatrix(BLOSUM62)
	a := seq.ProteinAlphabet
	il := d[a.Index('I')][a.Index('L')]
	wg := d[a.Index('W')][a.Index('G')]
	if il >= wg {
		t.Fatalf("d(I,L)=%d should be < d(W,G)=%d", il, wg)
	}
}

func TestDistanceMatrixDNA(t *testing.T) {
	d := DistanceMatrix(DNAUnit)
	a := seq.DNAAlphabet
	// All nucleotide mismatches are equidistant for a flat match/mismatch
	// matrix (N differs since its diagonal is also a mismatch score).
	want := d[a.Index('A')][a.Index('C')]
	for _, pair := range [][2]byte{{'A', 'G'}, {'A', 'T'}, {'C', 'G'}, {'C', 'T'}, {'G', 'T'}} {
		if got := d[a.Index(pair[0])][a.Index(pair[1])]; got != want {
			t.Errorf("d(%c,%c) = %d, want %d", pair[0], pair[1], got, want)
		}
	}
}

func TestCheckMetricDetectsViolations(t *testing.T) {
	ok := [][]int{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}}
	if err := CheckMetric(ok); err != nil {
		t.Fatalf("valid metric rejected: %v", err)
	}
	cases := map[string][][]int{
		"ragged":       {{0, 1}, {1}},
		"nonzero diag": {{1, 1}, {1, 0}},
		"negative":     {{0, -1}, {-1, 0}},
		"zero offdiag": {{0, 0}, {0, 0}},
		"asymmetric":   {{0, 1, 2}, {2, 0, 1}, {2, 1, 0}},
		"triangle":     {{0, 1, 9}, {1, 0, 1}, {9, 1, 0}},
	}
	for name, d := range cases {
		if err := CheckMetric(d); err == nil {
			t.Errorf("%s: violation not detected", name)
		}
	}
}

func TestMetricClosureIdempotent(t *testing.T) {
	d := DistanceMatrix(BLOSUM62)
	before := make([][]int, len(d))
	for i := range d {
		before[i] = append([]int(nil), d[i]...)
	}
	metricClosure(d)
	for i := range d {
		for j := range d[i] {
			if d[i][j] != before[i][j] {
				t.Fatalf("closure not idempotent at (%d,%d)", i, j)
			}
		}
	}
}

func TestMetricClosureOnRandomMatrices(t *testing.T) {
	// Closure of any positive symmetric matrix must satisfy the axioms.
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		n := rng.Intn(8) + 2
		d := make([][]int, n)
		for i := range d {
			d[i] = make([]int, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Intn(30) + 1
				d[i][j], d[j][i] = v, v
			}
		}
		metricClosure(d)
		return CheckMetric(d) == nil
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
