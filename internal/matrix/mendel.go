package matrix

import "fmt"

// DistanceMatrix converts a similarity scoring matrix into a per-residue
// metric per the Mendel transform (see the package comment): column-correct
// against the diagonal, symmetrize with max, force a positive floor on
// off-diagonal zeros, then take the shortest-path metric closure.
//
// The result satisfies all metric axioms (verified by CheckMetric and by the
// property tests) so that summing it position-wise over equal-length residue
// segments yields a metric on segments — the distance the vp-tree uses.
func DistanceMatrix(m *Matrix) [][]int {
	n := m.Dim()
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			di := abs(m.ScoreIndex(i, j) - m.ScoreIndex(i, i))
			dj := abs(m.ScoreIndex(i, j) - m.ScoreIndex(j, j))
			v := di
			if dj > v {
				v = dj
			}
			if v == 0 {
				v = 1 // identity of indiscernibles for distinct residues
			}
			d[i][j] = v
		}
	}
	metricClosure(d)
	return d
}

// metricClosure replaces d with its shortest-path closure, the largest
// pointwise-smaller matrix satisfying the triangle inequality. Symmetry and
// the zero diagonal are preserved; off-diagonal entries stay positive
// because all edge weights are positive.
func metricClosure(d [][]int) {
	n := len(d)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			for j := 0; j < n; j++ {
				if via := dik + d[k][j]; via < d[i][j] {
					d[i][j] = via
				}
			}
		}
	}
}

// CheckMetric verifies the metric axioms on a dense distance table:
// non-negativity, zero diagonal, positivity off the diagonal, symmetry, and
// the triangle inequality. It returns a descriptive error on the first
// violation found.
func CheckMetric(d [][]int) error {
	n := len(d)
	for i := 0; i < n; i++ {
		if len(d[i]) != n {
			return fmt.Errorf("matrix: row %d has length %d, want %d", i, len(d[i]), n)
		}
		if d[i][i] != 0 {
			return fmt.Errorf("matrix: d[%d][%d] = %d, want 0", i, i, d[i][i])
		}
		for j := 0; j < n; j++ {
			if d[i][j] < 0 {
				return fmt.Errorf("matrix: negative distance d[%d][%d] = %d", i, j, d[i][j])
			}
			if i != j && d[i][j] == 0 {
				return fmt.Errorf("matrix: zero distance between distinct residues %d, %d", i, j)
			}
			if d[i][j] != d[j][i] {
				return fmt.Errorf("matrix: asymmetric at (%d,%d): %d vs %d", i, j, d[i][j], d[j][i])
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][j] > d[i][k]+d[k][j] {
					return fmt.Errorf("matrix: triangle violated: d(%d,%d)=%d > d(%d,%d)+d(%d,%d)=%d",
						i, j, d[i][j], i, k, k, j, d[i][k]+d[k][j])
				}
			}
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
