package matrix

import "mendel/internal/seq"

// ProteinBackground returns the Robinson & Robinson amino-acid background
// frequencies used by BLAST, indexed by the dense protein alphabet. The
// ambiguity codes B, Z, X and * receive zero probability; the 20 standard
// residues sum to 1 (after normalization).
//
// These frequencies also drive the synthetic nr-like database generator,
// standing in for the UniProtKB composition statistics the paper cites
// (Leucine is ~7-9x more frequent than Tryptophan).
func ProteinBackground() []float64 {
	rr := map[byte]float64{
		'A': 0.07805, 'R': 0.05129, 'N': 0.04487, 'D': 0.05364, 'C': 0.01925,
		'Q': 0.04264, 'E': 0.06295, 'G': 0.07377, 'H': 0.02199, 'I': 0.05142,
		'L': 0.09019, 'K': 0.05744, 'M': 0.02243, 'F': 0.03856, 'P': 0.05203,
		'S': 0.07120, 'T': 0.05841, 'W': 0.01330, 'Y': 0.03216, 'V': 0.06441,
	}
	a := seq.ProteinAlphabet
	out := make([]float64, a.Len())
	total := 0.0
	for c, p := range rr {
		out[a.Index(c)] = p
		total += p
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// DNABackground returns uniform frequencies over A, C, G, T with zero mass
// on N, indexed by the dense DNA alphabet.
func DNABackground() []float64 {
	a := seq.DNAAlphabet
	out := make([]float64, a.Len())
	for _, c := range []byte("ACGT") {
		out[a.Index(c)] = 0.25
	}
	return out
}
