package matrix

import (
	"math/rand"
	"testing"
)

// propertySeed makes the random-triple property tests reproducible; change
// it only deliberately, and quote it when reporting a failure.
const propertySeed = 42

func distanceMatrices(t *testing.T) map[string][][]int {
	t.Helper()
	return map[string][][]int{
		"BLOSUM62": DistanceMatrix(BLOSUM62),
		"PAM250":   DistanceMatrix(PAM250),
		"DNA":      DistanceMatrix(DNAUnit),
	}
}

// TestDistancePropertiesRandomTriples samples residue triples with a
// deterministic seed and checks the metric axioms pointwise: zero diagonal,
// positivity for distinct residues, symmetry, and the triangle inequality.
// CheckMetric already sweeps the full table; this test documents the axioms
// independently and pins them to the exact matrices the vp-tree consumes.
func TestDistancePropertiesRandomTriples(t *testing.T) {
	for name, d := range distanceMatrices(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(propertySeed))
			n := len(d)
			for trial := 0; trial < 10000; trial++ {
				i, j, k := rng.Intn(n), rng.Intn(n), rng.Intn(n)
				if d[i][i] != 0 {
					t.Fatalf("seed %d trial %d: d[%d][%d] = %d, want 0", propertySeed, trial, i, i, d[i][i])
				}
				if i != j && d[i][j] <= 0 {
					t.Fatalf("seed %d trial %d: d[%d][%d] = %d, want > 0 for distinct residues",
						propertySeed, trial, i, j, d[i][j])
				}
				if d[i][j] != d[j][i] {
					t.Fatalf("seed %d trial %d: asymmetric d[%d][%d]=%d d[%d][%d]=%d",
						propertySeed, trial, i, j, d[i][j], j, i, d[j][i])
				}
				if d[i][j] > d[i][k]+d[k][j] {
					t.Fatalf("seed %d trial %d: triangle violated: d(%d,%d)=%d > d(%d,%d)+d(%d,%d)=%d",
						propertySeed, trial, i, j, d[i][j], i, k, k, j, d[i][k]+d[k][j])
				}
			}
		})
	}
}

// TestSegmentDistanceIsMetric lifts the pointwise axioms to equal-length
// segments: the position-wise sum of a per-residue metric (the distance the
// vp-tree actually evaluates over index blocks) must itself satisfy
// symmetry, identity of indiscernibles, and the triangle inequality on
// random segment triples.
func TestSegmentDistanceIsMetric(t *testing.T) {
	segDist := func(d [][]int, a, b []int) int {
		total := 0
		for i := range a {
			total += d[a[i]][b[i]]
		}
		return total
	}
	for name, d := range distanceMatrices(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(propertySeed))
			n := len(d)
			const segLen = 16
			randSeg := func() []int {
				s := make([]int, segLen)
				for i := range s {
					s[i] = rng.Intn(n)
				}
				return s
			}
			equal := func(a, b []int) bool {
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
				return true
			}
			for trial := 0; trial < 2000; trial++ {
				x, y, z := randSeg(), randSeg(), randSeg()
				dxy, dyx := segDist(d, x, y), segDist(d, y, x)
				if dxy != dyx {
					t.Fatalf("seed %d trial %d: segment distance asymmetric: %d vs %d", propertySeed, trial, dxy, dyx)
				}
				if segDist(d, x, x) != 0 {
					t.Fatalf("seed %d trial %d: nonzero self distance", propertySeed, trial)
				}
				if !equal(x, y) && dxy <= 0 {
					t.Fatalf("seed %d trial %d: distance %d between distinct segments", propertySeed, trial, dxy)
				}
				if dxz, dzy := segDist(d, x, z), segDist(d, z, y); dxy > dxz+dzy {
					t.Fatalf("seed %d trial %d: segment triangle violated: %d > %d + %d",
						propertySeed, trial, dxy, dxz, dzy)
				}
			}
		})
	}
}
