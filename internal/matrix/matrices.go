package matrix

import "mendel/internal/seq"

// BLOSUM62 is the standard NCBI BLOSUM62 matrix over the 24-letter protein
// alphabet, the default scoring matrix of BLAST and of Mendel alignments.
// Default gap penalties are BLAST's 11/1.
var BLOSUM62 = parse("BLOSUM62", seq.ProteinAlphabet, blosum62Text, 11, 1)

// PAM250 is the classic Dayhoff PAM250 matrix with conventional 14/2 gaps.
var PAM250 = parse("PAM250", seq.ProteinAlphabet, pam250Text, 14, 2)

// DNAUnit scores nucleotide matches +1 and mismatches -2 with 5/2 gaps
// (the historical BLASTN defaults). Pairs involving N score as mismatches.
var DNAUnit = NewDNA(1, -2, 5, 2)

// NewDNA builds a nucleotide matrix with the given match/mismatch scores and
// gap penalties. match must be positive and mismatch negative.
func NewDNA(match, mismatch, gapOpen, gapExtend int) *Matrix {
	a := seq.DNAAlphabet
	n := a.Len()
	scores := make([][]int, n)
	for i := range scores {
		scores[i] = make([]int, n)
		for j := range scores[i] {
			switch {
			case a.Letters()[i] == 'N' || a.Letters()[j] == 'N':
				scores[i][j] = mismatch
			case i == j:
				scores[i][j] = match
			default:
				scores[i][j] = mismatch
			}
		}
	}
	return MustNew("DNA", a, scores, gapOpen, gapExtend)
}

// ByName returns a built-in matrix by its conventional name, matching the
// paper's Table I parameter M (scoring matrix, a user-supplied string).
func ByName(name string) (*Matrix, bool) {
	switch name {
	case "BLOSUM62", "blosum62":
		return BLOSUM62, true
	case "PAM250", "pam250":
		return PAM250, true
	case "DNA", "dna":
		return DNAUnit, true
	default:
		return nil, false
	}
}

const blosum62Text = `
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
B -2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
Z -1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
`

const pam250Text = `
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0  0  0  0 -8
R -2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2 -1  0 -1 -8
N  0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2  2  1  0 -8
D  0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2  3  3 -1 -8
C -2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2 -4 -5 -3 -8
Q  0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2  1  3 -1 -8
E  0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2  3  3 -1 -8
G  1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1  0  0 -1 -8
H -1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2  1  2 -1 -8
I -1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4 -2 -2 -1 -8
L -2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2 -3 -3 -1 -8
K -1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2  1  0 -1 -8
M -1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2 -2 -2 -1 -8
F -3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1 -4 -5 -2 -8
P  1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1 -1  0 -1 -8
S  1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1  0  0  0 -8
T  1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0  0 -1  0 -8
W -6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6 -5 -6 -4 -8
Y -3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2 -3 -4 -2 -8
V  0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4 -2 -2 -1 -8
B  0 -1  2  3 -4  1  3  0  1 -2 -3  1 -2 -4 -1  0  0 -5 -3 -2  3  2 -1 -8
Z  0  0  1  3 -5  3  3  0  2 -2 -3  0 -2 -5  0  0 -1 -6 -4 -2  2  3 -1 -8
X  0 -1  0 -1 -3 -1 -1 -1 -1 -1 -1 -1 -1 -2 -1  0  0 -4 -2 -1 -1 -1 -1 -8
* -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8  1
`
