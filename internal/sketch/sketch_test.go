package sketch

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"mendel/internal/seq"
	"mendel/internal/wire"
)

const proteinLetters = "ARNDCQEGHILKMFPSTWYV"

func randProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = proteinLetters[rng.Intn(len(proteinLetters))]
	}
	return out
}

func randDNA(rng *rand.Rand, n int) []byte {
	const letters = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	return out
}

func testParams() Params {
	return Params{K: 5, BloomBits: 1 << 14, MinHashK: 64, Kind: seq.Protein}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(testParams())
	windows := make([][]byte, 50)
	for i := range windows {
		windows[i] = randProtein(rng, 16)
		s.Add(windows[i])
	}
	for _, w := range windows {
		Hashes(seq.Protein, 5, w, func(h uint64) {
			if !s.ContainsHash(h) {
				t.Fatalf("added k-mer hash %#x reported absent", h)
			}
		})
		if !s.SharesAny(w) {
			t.Fatalf("added window %q reported disjoint", w)
		}
	}
	if s.Empty() {
		t.Fatal("sketch with 50 windows reports empty")
	}
}

func TestSharesAnyDefinitiveNegative(t *testing.T) {
	s := New(testParams())
	s.Add([]byte("ARNDCQEGHILKMFPSTWYV"))
	// A window over a disjoint residue multiset: any true answer would be a
	// Bloom false positive, astronomically unlikely at this occupancy.
	if s.SharesAny([]byte("WWWWWWWWWWWWWWWW")) {
		t.Skip("bloom false positive (possible but ~2^-40 here)")
	}
}

func TestShortWindowNeverSkippable(t *testing.T) {
	s := New(testParams())
	s.Add([]byte("ARNDCQEGHILKMFPSTWYV"))
	if !s.SharesAny([]byte("AR")) { // shorter than K: nothing provable
		t.Fatal("window shorter than K must not be skippable")
	}
}

func TestMergeOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	parts := make([][]byte, 8)
	for i := range parts {
		parts[i] = randProtein(rng, 120)
	}
	build := func(order []int) []byte {
		total := New(testParams())
		for _, i := range order {
			part := New(testParams())
			part.Add(parts[i])
			if err := total.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		enc, err := total.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	want := build([]int{0, 1, 2, 3, 4, 5, 6, 7})
	got := build([]int{7, 3, 5, 1, 6, 0, 2, 4})
	if !bytes.Equal(want, got) {
		t.Fatal("merge order changed the marshalled sketch")
	}
}

func TestMergeIncompatibleParams(t *testing.T) {
	a := New(testParams())
	p := testParams()
	p.K = 7
	if err := a.Merge(New(p)); err == nil {
		t.Fatal("merge of incompatible params accepted")
	}
}

func TestBottomKExactOnSmallSets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randProtein(rng, 40), randProtein(rng, 40)
	p := Params{K: 5, MinHashK: 4096, Kind: seq.Protein} // k >> distinct k-mers
	sa, sb := New(p), New(p)
	sa.Add(a)
	sb.Add(b)

	// Exact Jaccard over the distinct canonical hash sets.
	setOf := func(data []byte) map[uint64]struct{} {
		m := make(map[uint64]struct{})
		Hashes(seq.Protein, 5, data, func(h uint64) { m[h] = struct{}{} })
		return m
	}
	ma, mb := setOf(a), setOf(b)
	inter := 0
	for h := range ma {
		if _, ok := mb[h]; ok {
			inter++
		}
	}
	union := len(ma) + len(mb) - inter
	want := float64(inter) / float64(union)

	got := JaccardBottomK(sa.MinHashes(), sb.MinHashes(), 4096)
	if got != want {
		t.Fatalf("bottom-k estimate %v != exact %v on small sets", got, want)
	}
	if got := JaccardBottomK(sa.MinHashes(), sa.MinHashes(), 4096); got != 1 {
		t.Fatalf("self Jaccard = %v, want 1", got)
	}
}

func TestJaccardEstimateErrorBound(t *testing.T) {
	// The recall gate's minhash contract: estimates within 0.05 of truth.
	// Overlapping sequences sharing a common core, k = 512 bottom hashes.
	rng := rand.New(rand.NewSource(4))
	core := randProtein(rng, 800)
	for trial := 0; trial < 10; trial++ {
		a := append(append([]byte{}, core...), randProtein(rng, 400)...)
		b := append(append([]byte{}, core...), randProtein(rng, 400)...)
		p := Params{K: 5, MinHashK: 512, Kind: seq.Protein}
		sa, sb := New(p), New(p)
		sa.Add(a)
		sb.Add(b)
		setOf := func(data []byte) map[uint64]struct{} {
			m := make(map[uint64]struct{})
			Hashes(seq.Protein, 5, data, func(h uint64) { m[h] = struct{}{} })
			return m
		}
		ma, mb := setOf(a), setOf(b)
		inter := 0
		for h := range ma {
			if _, ok := mb[h]; ok {
				inter++
			}
		}
		exact := float64(inter) / float64(len(ma)+len(mb)-inter)
		est := JaccardBottomK(sa.MinHashes(), sb.MinHashes(), 512)
		if d := est - exact; d > 0.05 || d < -0.05 {
			t.Fatalf("trial %d: estimate %v vs exact %v (error %v > 0.05)", trial, est, exact, d)
		}
	}
}

func TestDNACanonicalHashing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randDNA(rng, 200)
	s, err := seq.New(0, "fwd", seq.DNA, append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	rc := s.ReverseComplement()
	p := Params{K: 11, BloomBits: 1 << 14, MinHashK: 128, Kind: seq.DNA}
	sf, sr := New(p), New(p)
	sf.Add(s.Data)
	sr.Add(rc)
	ef, _ := sf.MarshalBinary()
	er, _ := sr.MarshalBinary()
	if !bytes.Equal(ef, er) {
		t.Fatal("a DNA sequence and its reverse complement produced different sketches")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, p := range []Params{
		testParams(),
		{K: 11, BloomBits: 1 << 10, Kind: seq.DNA},             // bloom only
		{K: 5, MinHashK: 32, Kind: seq.Protein},                // minhash only
		{K: 5, BloomBits: 100, MinHashK: 8, Kind: seq.Protein}, // non-pow2 bits
	} {
		s := New(p)
		s.Add(randProtein(rng, 300))
		enc, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalBinary(enc)
		if err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
		enc2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("params %+v: round trip not stable", p)
		}
		if !reflect.DeepEqual(s.MinHashes(), back.MinHashes()) {
			t.Fatalf("params %+v: MinHashes changed across round trip", p)
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	s := New(testParams())
	s.Add([]byte("ARNDCQEGHILKMFPSTWYV"))
	enc, _ := s.MarshalBinary()
	for _, bad := range [][]byte{
		nil,
		{},
		{99},
		enc[:len(enc)-3],
		append(append([]byte{}, enc...), 1, 2, 3),
	} {
		if _, err := UnmarshalBinary(bad); err == nil {
			t.Fatalf("corrupt input %v accepted", bad)
		}
	}
}

func TestEstimateContainment(t *testing.T) {
	s := New(testParams())
	data := []byte("ARNDCQEGHILKMFPSTWYVARNDC")
	s.Add(data)
	var present []uint64
	Hashes(seq.Protein, 5, data, func(h uint64) { present = append(present, h) })
	if got := EstimateContainment(present, s); got != 1 {
		t.Fatalf("containment of added hashes = %v, want 1", got)
	}
	if got := EstimateContainment(nil, s); got != 1 {
		t.Fatalf("containment of empty hash list = %v, want 1 (nothing provable)", got)
	}
}

// FuzzSketchRoundTrip exercises the sketch's three contracts at once:
// build/merge/query invariants (no false negatives, merge == bulk add),
// MarshalBinary/UnmarshalBinary stability plus rejection of arbitrary
// bytes, and the binary wire codec round trip of the SketchFetch messages
// that carry sketches between nodes and the coordinator.
func FuzzSketchRoundTrip(f *testing.F) {
	f.Add([]byte("ARNDCQEGHILKMFPSTWYV"), []byte("MKVLAAGWTYMKVLAAGWTY"), uint8(5), true)
	f.Add([]byte("ACGTACGTACGTACGT"), []byte("TTTTGGGGCCCCAAAA"), uint8(11), false)
	f.Add([]byte{}, []byte{0xFF, 0x00, 0x41}, uint8(3), true)
	if enc, err := New(testParams()).MarshalBinary(); err == nil {
		f.Add(enc, []byte{}, uint8(5), true)
	}
	f.Fuzz(func(t *testing.T, a, b []byte, kk uint8, protein bool) {
		// Arbitrary bytes must never panic the decoder; valid encodings
		// must re-marshal identically.
		if s, err := UnmarshalBinary(a); err == nil {
			enc, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("remarshal of accepted sketch failed: %v", err)
			}
			back, err := UnmarshalBinary(enc)
			if err != nil || !reflect.DeepEqual(back.MinHashes(), s.MinHashes()) {
				t.Fatalf("accepted sketch did not survive a round trip: %v", err)
			}
		}

		kind := seq.Protein
		if !protein {
			kind = seq.DNA
		}
		p := Params{K: int(kk%12) + 3, BloomBits: 1 << 12, MinHashK: 32, Kind: kind}

		// Merge of two single-input sketches must equal one bulk sketch
		// over both inputs (order-independent union).
		sa, sb, both := New(p), New(p), New(p)
		sa.Add(a)
		sb.Add(b)
		both.Add(a)
		both.Add(b)
		if err := sa.Merge(sb); err != nil {
			t.Fatal(err)
		}
		ea, _ := sa.MarshalBinary()
		eb, _ := both.MarshalBinary()
		if !bytes.Equal(ea, eb) {
			t.Fatal("merge(add(a), add(b)) != add(a;b)")
		}

		// No false negatives after the round trip.
		back, err := UnmarshalBinary(ea)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		for _, data := range [][]byte{a, b} {
			Hashes(kind, p.K, data, func(h uint64) {
				if !back.ContainsHash(h) {
					t.Fatalf("k-mer of added data absent after round trip")
				}
			})
		}

		// Wire codec round trip of the hot fetch messages.
		msg := wire.SketchFetchResult{Node: "node-001", Sketch: ea}
		frame, ok := wire.AppendHot(nil, msg)
		if !ok {
			t.Fatal("SketchFetchResult not hot-encodable")
		}
		dec, err := wire.DecodeHot(frame)
		if err != nil {
			t.Fatalf("decoding own SketchFetchResult frame: %v", err)
		}
		got, ok := dec.(wire.SketchFetchResult)
		if !ok || got.Node != msg.Node || !bytes.Equal(got.Sketch, msg.Sketch) {
			t.Fatalf("SketchFetchResult changed across the wire: %+v", dec)
		}
		if frame2, ok := wire.AppendHot(nil, wire.SketchFetch{}); !ok {
			t.Fatal("SketchFetch not hot-encodable")
		} else if dec2, err := wire.DecodeHot(frame2); err != nil {
			t.Fatalf("decoding SketchFetch frame: %v", err)
		} else if _, ok := dec2.(wire.SketchFetch); !ok {
			t.Fatalf("SketchFetch decoded as %T", dec2)
		}
	})
}

// BenchmarkSketchBuild measures incremental sketching at ingest-block
// granularity: the per-block cost a storage node pays inside IndexBlocks.
func BenchmarkSketchBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	blocks := make([][]byte, 1000)
	for i := range blocks {
		blocks[i] = randProtein(rng, 16)
	}
	p := DefaultParams(seq.Protein)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(p)
		for _, blk := range blocks {
			s.Add(blk)
		}
	}
	b.SetBytes(int64(1000 * 16))
}
