// Package sketch provides the probabilistic group signatures behind
// Mendel's query prefilter tier: a fixed-size Bloom filter over canonical
// k-mers (membership: "does this group hold any block sharing a k-mer with
// this window?") and a bottom-k MinHash sketch (cardinality-free Jaccard
// estimation for the alignment-free similarity query mode).
//
// Both structures are order-independent — Bloom union is a word-wise OR and
// bottom-k union keeps the k smallest distinct hashes of either side — so a
// sketch is a pure function of the set of blocks added, no matter how
// ingest, hint replay, and repair interleave. That is what lets the chaos
// suite assert bit-identical sketches between a faulted-and-repaired
// cluster and a never-faulted twin.
//
// A Bloom filter answers "definitely absent" or "maybe present"; the
// prefilter only ever acts on "definitely absent", so its false positives
// cost a wasted fan-out, never a lost hit. See DESIGN.md §14 for the
// false-positive math and the recall-safety argument.
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"mendel/internal/seq"
)

// Defaults chosen so that test- and CI-scale corpora occupy a few percent
// of the filter: protein 5-mers span a 20^5 ≈ 3.2M space, DNA 11-mers a
// 4^11 ≈ 4.2M space (canonical form halves it).
const (
	// DefaultProteinK is the k-mer length for protein sketches.
	DefaultProteinK = 5
	// DefaultDNAK is the k-mer length for DNA sketches (canonical form:
	// min of forward and reverse-complement hashes).
	DefaultDNAK = 11
	// DefaultBloomBits is the Bloom filter size in bits (1 MiBit = 128 KiB
	// per group signature).
	DefaultBloomBits = 1 << 20
	// DefaultMinHashK is the bottom-k MinHash sketch size.
	DefaultMinHashK = 512
)

// bloomHashes is the number of Bloom probe positions per key, derived from
// one 64-bit hash by double hashing.
const bloomHashes = 2

// Params fixes a sketch's shape. Two sketches can merge only if their
// Params are identical, so the coordinator distributes one Params in the
// Bootstrap message and every node builds against it.
type Params struct {
	// K is the k-mer length. Zero disables sketching entirely.
	K int
	// BloomBits is the Bloom filter size in bits, rounded up to a power of
	// two. Zero disables the Bloom filter (MinHash-only sketch).
	BloomBits int
	// MinHashK is the bottom-k sketch size. Zero disables MinHash.
	MinHashK int
	// Kind selects canonical hashing: DNA k-mers hash as
	// min(hash(fwd), hash(revcomp)) so both strands share one signature.
	Kind seq.Kind
}

// DefaultParams returns the standard sketch shape for the molecule kind.
func DefaultParams(kind seq.Kind) Params {
	k := DefaultProteinK
	if kind == seq.DNA {
		k = DefaultDNAK
	}
	return Params{K: k, BloomBits: DefaultBloomBits, MinHashK: DefaultMinHashK, Kind: kind}
}

// normalized rounds BloomBits up to a power of two (the probe mask must be
// bits-1) with a floor of 64 when enabled.
func (p Params) normalized() Params {
	if p.BloomBits > 0 {
		if p.BloomBits < 64 {
			p.BloomBits = 64
		}
		if p.BloomBits&(p.BloomBits-1) != 0 {
			p.BloomBits = 1 << bits.Len(uint(p.BloomBits))
		}
	}
	return p
}

// Enabled reports whether the params describe a non-empty sketch.
func (p Params) Enabled() bool { return p.K > 0 && (p.BloomBits > 0 || p.MinHashK > 0) }

// Sketch is one signature: Bloom bits and/or a bottom-k MinHash over the
// canonical k-mers of everything added. The zero value is unusable; create
// with New or UnmarshalBinary.
type Sketch struct {
	p     Params
	n     uint64 // k-mers added (with multiplicity); 0 means nothing added
	bloom []uint64
	mask  uint64
	mins  *bottomK
}

// New creates an empty sketch with the given (normalized) params.
func New(p Params) *Sketch {
	p = p.normalized()
	s := &Sketch{p: p}
	if p.BloomBits > 0 {
		s.bloom = make([]uint64, p.BloomBits/64)
		s.mask = uint64(p.BloomBits - 1)
	}
	if p.MinHashK > 0 {
		s.mins = newBottomK(p.MinHashK)
	}
	return s
}

// Params returns the sketch's normalized params.
func (s *Sketch) Params() Params { return s.p }

// Empty reports whether nothing has been added yet.
func (s *Sketch) Empty() bool { return s == nil || s.n == 0 }

// Add hashes every canonical k-mer of data into the sketch. Data shorter
// than K adds nothing.
func (s *Sketch) Add(data []byte) {
	Hashes(s.p.Kind, s.p.K, data, s.AddHash)
}

// AddHash adds one pre-computed canonical k-mer hash.
func (s *Sketch) AddHash(h uint64) {
	s.n++
	if s.bloom != nil {
		h2 := h>>33 | 1
		for i := uint64(0); i < bloomHashes; i++ {
			pos := (h + i*h2) & s.mask
			s.bloom[pos>>6] |= 1 << (pos & 63)
		}
	}
	if s.mins != nil {
		s.mins.add(h)
	}
}

// ContainsHash probes the Bloom filter: false means the k-mer was
// definitely never added; true means it may have been. Sketches without a
// Bloom filter answer true (nothing can be ruled out).
func (s *Sketch) ContainsHash(h uint64) bool {
	if s.bloom == nil {
		return true
	}
	h2 := h>>33 | 1
	for i := uint64(0); i < bloomHashes; i++ {
		pos := (h + i*h2) & s.mask
		if s.bloom[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// SharesAny reports whether any canonical k-mer of window may be present
// in the sketch. False is definitive ("provably disjoint at k-mer
// granularity"); true may be a Bloom false positive. Windows shorter than
// K share nothing provable, so they answer true.
func (s *Sketch) SharesAny(window []byte) bool {
	if s.bloom == nil || len(window) < s.p.K {
		return true
	}
	found := false
	Hashes(s.p.Kind, s.p.K, window, func(h uint64) {
		if !found && s.ContainsHash(h) {
			found = true
		}
	})
	return found
}

// Merge folds o into s. Both sides must share identical params. Merging is
// commutative and associative: Bloom words OR together and the bottom-k
// union keeps the smallest distinct hashes of either side.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil {
		return nil
	}
	if s.p != o.p {
		return fmt.Errorf("sketch: merging incompatible params %+v vs %+v", s.p, o.p)
	}
	s.n += o.n
	for i, w := range o.bloom {
		s.bloom[i] |= w
	}
	if s.mins != nil && o.mins != nil {
		for _, h := range o.mins.sorted() {
			s.mins.add(h)
		}
	}
	return nil
}

// MinHashes returns the bottom-k hash values in ascending order (a copy).
// For an input with at most MinHashK distinct k-mers this is the exact
// distinct-hash set, which makes Jaccard estimates on small corpora exact.
func (s *Sketch) MinHashes() []uint64 {
	if s == nil || s.mins == nil {
		return nil
	}
	return s.mins.sorted()
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c := New(s.p)
	c.Merge(s)
	return c
}

// marshalVersion tags the binary layout for forward evolution.
const marshalVersion = 1

// MarshalBinary encodes the sketch: a version byte, the params, the add
// count, the Bloom words, and the sorted bottom-k values. Two sketches over
// the same multiset of inputs marshal identically (the chaos suite's
// bit-identity hook).
func (s *Sketch) MarshalBinary() ([]byte, error) {
	mins := s.MinHashes()
	out := make([]byte, 0, 16+len(s.bloom)*8+len(mins)*8)
	out = append(out, marshalVersion, byte(s.p.Kind))
	out = binary.AppendUvarint(out, uint64(s.p.K))
	out = binary.AppendUvarint(out, uint64(s.p.BloomBits))
	out = binary.AppendUvarint(out, uint64(s.p.MinHashK))
	out = binary.AppendUvarint(out, s.n)
	out = binary.AppendUvarint(out, uint64(len(s.bloom)))
	for _, w := range s.bloom {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	out = binary.AppendUvarint(out, uint64(len(mins)))
	for _, h := range mins {
		out = binary.LittleEndian.AppendUint64(out, h)
	}
	return out, nil
}

var errCorrupt = errors.New("sketch: corrupt encoding")

// UnmarshalBinary decodes a MarshalBinary encoding. Arbitrary input is
// rejected with an error, never a panic or an oversized allocation.
func UnmarshalBinary(data []byte) (*Sketch, error) {
	if len(data) < 2 || data[0] != marshalVersion {
		return nil, errCorrupt
	}
	kind := seq.Kind(data[1])
	rest := data[2:]
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	k, ok1 := next()
	bbits, ok2 := next()
	mk, ok3 := next()
	n, ok4 := next()
	if !ok1 || !ok2 || !ok3 || !ok4 || k > 1<<16 || bbits > 1<<32 || mk > 1<<24 {
		return nil, errCorrupt
	}
	p := Params{K: int(k), BloomBits: int(bbits), MinHashK: int(mk), Kind: kind}
	if p.normalized() != p {
		return nil, errCorrupt // only normalized params are ever marshalled
	}
	s := New(p)
	s.n = n
	words, ok := next()
	if !ok || int(words) != len(s.bloom) || len(rest) < int(words)*8 {
		return nil, errCorrupt
	}
	for i := 0; i < int(words); i++ {
		s.bloom[i] = binary.LittleEndian.Uint64(rest[i*8:])
	}
	rest = rest[words*8:]
	nmins, ok := next()
	if !ok || nmins > mk || len(rest) != int(nmins)*8 {
		return nil, errCorrupt
	}
	if s.mins == nil && nmins > 0 {
		return nil, errCorrupt
	}
	prev := uint64(0)
	for i := 0; i < int(nmins); i++ {
		h := binary.LittleEndian.Uint64(rest[i*8:])
		if i > 0 && h <= prev {
			return nil, errCorrupt // must be strictly ascending
		}
		prev = h
		s.mins.add(h)
	}
	return s, nil
}

// FNV-1a 64-bit constants; the k-mer hash is inlined to keep sketching
// allocation-free on the ingest path.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// revComp complements nucleotides and maps every other byte to itself, so
// canonical hashing never panics on ambiguity codes or protein input.
var revComp = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = byte(i)
	}
	t['A'], t['T'], t['C'], t['G'] = 'T', 'A', 'G', 'C'
	return t
}()

// Hashes calls fn with the canonical FNV-1a hash of every k-mer of data.
// DNA k-mers hash as min(hash(fwd), hash(revcomp)) so a sequence and its
// reverse complement produce identical hash multisets; protein k-mers hash
// forward only.
func Hashes(kind seq.Kind, k int, data []byte, fn func(uint64)) {
	if k <= 0 || len(data) < k {
		return
	}
	dna := kind == seq.DNA
	for i := 0; i+k <= len(data); i++ {
		w := data[i : i+k]
		h := uint64(fnvOffset)
		for _, c := range w {
			h = (h ^ uint64(c)) * fnvPrime
		}
		if dna {
			hr := uint64(fnvOffset)
			for j := k - 1; j >= 0; j-- {
				hr = (hr ^ uint64(revComp[w[j]])) * fnvPrime
			}
			if hr < h {
				h = hr
			}
		}
		fn(h)
	}
}

// CountHashes returns the number of distinct canonical k-mer hashes in data.
func CountHashes(kind seq.Kind, k int, data []byte) int {
	set := make(map[uint64]struct{})
	Hashes(kind, k, data, func(h uint64) { set[h] = struct{}{} })
	return len(set)
}

// EstimateContainment returns the fraction of the given hashes the sketch's
// Bloom filter may contain. Zero is definitive: none of the hashes were
// ever added. Used by the minhash prefilter mode, which probes the query's
// bottom-k sample against each group's Bloom filter.
func EstimateContainment(hashes []uint64, s *Sketch) float64 {
	if len(hashes) == 0 {
		return 1 // nothing to rule out
	}
	found := 0
	for _, h := range hashes {
		if s.ContainsHash(h) {
			found++
		}
	}
	return float64(found) / float64(len(hashes))
}

// JaccardBottomK estimates the Jaccard similarity of two sets from their
// bottom-k sketches (sorted ascending, as MinHashes returns): take the k
// smallest hashes of the union and count how many belong to both sides.
// When both inputs hold their full distinct-hash sets (fewer than k
// distinct k-mers) the estimate is exact.
func JaccardBottomK(a, b []uint64, k int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	union := make([]uint64, 0, len(a)+len(b))
	union = append(union, a...)
	union = append(union, b...)
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	inBoth, size := 0, 0
	has := func(xs []uint64, h uint64) bool {
		i := sort.Search(len(xs), func(i int) bool { return xs[i] >= h })
		return i < len(xs) && xs[i] == h
	}
	var prev uint64
	for _, h := range union {
		if size > 0 && h == prev {
			continue
		}
		prev = h
		size++
		if has(a, h) && has(b, h) {
			inBoth++
		}
		if k > 0 && size == k {
			break
		}
	}
	if size == 0 {
		return 0
	}
	return float64(inBoth) / float64(size)
}

// bottomK keeps the k smallest distinct hashes seen, via a max-heap plus a
// membership set (O(log k) per insert, O(1) reject of large values).
type bottomK struct {
	k    int
	heap []uint64 // max-heap: heap[0] is the largest retained hash
	seen map[uint64]struct{}
}

func newBottomK(k int) *bottomK {
	return &bottomK{k: k, seen: make(map[uint64]struct{}, k)}
}

func (b *bottomK) add(h uint64) {
	if len(b.heap) == b.k && h >= b.heap[0] {
		return
	}
	if _, dup := b.seen[h]; dup {
		return
	}
	if len(b.heap) < b.k {
		b.seen[h] = struct{}{}
		b.heap = append(b.heap, h)
		// sift up
		for i := len(b.heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if b.heap[parent] >= b.heap[i] {
				break
			}
			b.heap[parent], b.heap[i] = b.heap[i], b.heap[parent]
			i = parent
		}
		return
	}
	delete(b.seen, b.heap[0])
	b.seen[h] = struct{}{}
	b.heap[0] = h
	// sift down
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(b.heap) && b.heap[l] > b.heap[largest] {
			largest = l
		}
		if r < len(b.heap) && b.heap[r] > b.heap[largest] {
			largest = r
		}
		if largest == i {
			break
		}
		b.heap[i], b.heap[largest] = b.heap[largest], b.heap[i]
		i = largest
	}
}

func (b *bottomK) sorted() []uint64 {
	out := append([]uint64(nil), b.heap...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
