package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"mendel/internal/seq"
	"mendel/internal/sketch"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// PrefilterMode selects how Search consults the merged per-group k-mer
// sketches before fanning a query out.
type PrefilterMode int

const (
	// PrefilterOff disables the prefilter: every vp-hash-routed group is
	// contacted (the pre-sketch behaviour, and the recall baseline the CI
	// recall gate compares the other modes against).
	PrefilterOff PrefilterMode = iota
	// PrefilterBloom drops a group from a window's fan-out only when the
	// group's Bloom filter proves the window shares no k-mer with any block
	// the group holds. "Definitely absent" is exact, so this mode returns
	// hits bit-identical to PrefilterOff (see DESIGN.md §14).
	PrefilterBloom
	// PrefilterMinHash skips a group when none of the query's bottom-k
	// MinHash samples land in the group's Bloom filter — a cheaper
	// whole-query test that, unlike PrefilterBloom, samples rather than
	// proves (its accuracy contract is the Jaccard error bound checked by
	// the CI recall gate).
	PrefilterMinHash
)

// String renders the mode as its flag spelling.
func (m PrefilterMode) String() string {
	switch m {
	case PrefilterBloom:
		return "bloom"
	case PrefilterMinHash:
		return "minhash"
	default:
		return "off"
	}
}

// ParsePrefilterMode parses the -prefilter flag values off|bloom|minhash.
func ParsePrefilterMode(s string) (PrefilterMode, error) {
	switch s {
	case "", "off":
		return PrefilterOff, nil
	case "bloom":
		return PrefilterBloom, nil
	case "minhash":
		return PrefilterMinHash, nil
	}
	return PrefilterOff, fmt.Errorf("core: unknown prefilter mode %q (want off, bloom or minhash)", s)
}

// SetPrefilterMode selects the group prefilter consulted before fan-out.
// Like SetObservability, call before serving queries; the field is read
// without synchronization by concurrent Searches.
func (c *Cluster) SetPrefilterMode(m PrefilterMode) { c.prefilter = m }

// PrefilterMode returns the active prefilter mode.
func (c *Cluster) PrefilterMode() PrefilterMode { return c.prefilter }

// refreshSketches pulls every node's k-mer sketch and merges them per
// group, replacing the coordinator's prefilter view. A group is marked
// complete — and thus eligible for skipping — only when every member
// answered with a parseable sketch; nodes that are down, predate the sketch
// tier, or hold incompatible params leave their group permanently
// contactable, so a stale or partial view can never lose a hit. Best
// effort by design: Index and Repair call it after the data moves, and a
// failed refresh only means the prefilter skips less.
func (c *Cluster) refreshSketches(ctx context.Context) {
	p := c.cfg.sketchParams()
	if !p.Enabled() {
		return
	}
	topo := c.topology()
	nodes := topo.AllNodes()
	resps, errs := transport.BroadcastAll(ctx, c.caller, nodes, wire.SketchFetch{})
	nodeSketch := make(map[string]*sketch.Sketch, len(nodes))
	for i, r := range resps {
		if errs[i] != nil {
			continue
		}
		sfr, ok := r.(wire.SketchFetchResult)
		if !ok || len(sfr.Sketch) == 0 {
			continue
		}
		s, err := sketch.UnmarshalBinary(sfr.Sketch)
		if err != nil {
			continue
		}
		nodeSketch[nodes[i]] = s
	}
	groupSketches := make(map[int]*sketch.Sketch, topo.Groups())
	sketchComplete := make(map[int]bool, topo.Groups())
	for g := 0; g < topo.Groups(); g++ {
		merged := sketch.New(p)
		complete := true
		for _, member := range topo.GroupNodes(g) {
			s, ok := nodeSketch[member]
			if !ok {
				complete = false
				continue
			}
			if err := merged.Merge(s); err != nil {
				complete = false
			}
		}
		groupSketches[g] = merged
		sketchComplete[g] = complete
	}
	c.mu.Lock()
	c.groupSketches = groupSketches
	c.sketchComplete = sketchComplete
	c.mu.Unlock()
	c.reg.Counter("sketch_refreshes").Inc()
}

// GroupSketchComplete reports whether group g's merged sketch covers every
// member (the precondition for the prefilter to skip it). Exposed for the
// chaos suite, which asserts repaired clusters regain complete sketches.
func (c *Cluster) GroupSketchComplete(g int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sketchComplete[g]
}

// GroupSketchBytes returns the marshaled merged sketch of group g (nil when
// unknown). The encoding is a pure function of the group's block set, which
// is what lets the chaos suite compare a faulted-and-repaired cluster
// against a never-faulted twin byte for byte.
func (c *Cluster) GroupSketchBytes(g int) []byte {
	c.mu.RLock()
	s := c.groupSketches[g]
	c.mu.RUnlock()
	if s == nil {
		return nil
	}
	enc, err := s.MarshalBinary()
	if err != nil {
		return nil
	}
	return enc
}

// prefilterGroups edits groupOffsets in place according to the active
// prefilter mode, returning how many whole groups were dropped and how
// often the false-drop guard fired. Only groups whose merged sketch is
// complete and non-empty are ever pruned.
func (c *Cluster) prefilterGroups(q []byte, groupOffsets map[int][]int) (skipped, guarded int) {
	c.mu.RLock()
	sketches := c.groupSketches
	complete := c.sketchComplete
	c.mu.RUnlock()
	if len(sketches) == 0 {
		return 0, 0
	}
	prunable := func(g int) (*sketch.Sketch, bool) {
		s := sketches[g]
		return s, s != nil && complete[g] && !s.Empty()
	}
	before := len(groupOffsets)

	switch c.prefilter {
	case PrefilterBloom:
		// Per-window pruning: a (window, group) route is dropped only when
		// the group's Bloom filter proves the window shares no canonical
		// k-mer with anything the group stores. Stride-1 blocking
		// guarantees an exactly matching window exists verbatim as a block
		// in its group — such a window shares all of its k-mers and is
		// never dropped. In practice stride-1 also smears every database
		// k-mer across many groups, so disjointness is usually
		// all-or-nothing per window: the skips come from windows (and whole
		// queries) that match nothing in the database. A window dropped
		// from every group increments PrefilterGuard — the signal audited
		// by the recall gate, since such drops rest on the k-mer
		// disjointness proof alone (see DESIGN.md §14).
		w := c.cfg.BlockLen
		byOffset := make(map[int][]int)
		for g, offs := range groupOffsets {
			for _, off := range offs {
				byOffset[off] = append(byOffset[off], g)
			}
		}
		kept := make(map[int][]int, before)
		for off, gs := range byOffset {
			window := q[off : off+w]
			dropped := 0
			for _, g := range gs {
				if s, ok := prunable(g); ok && !s.SharesAny(window) {
					dropped++
					continue
				}
				kept[g] = append(kept[g], off)
			}
			if dropped == len(gs) {
				guarded++
			}
		}
		for g := range groupOffsets {
			delete(groupOffsets, g)
		}
		for g, offs := range kept {
			// byOffset iteration order is random; restore the ascending
			// offset order decomposition produced so node-side processing
			// stays deterministic.
			sort.Ints(offs)
			groupOffsets[g] = offs
		}

	case PrefilterMinHash:
		// Whole-query sampling: probe the query's bottom-k k-mer hashes
		// against each group's Bloom filter and skip groups where none
		// land. Cheaper than hashing every window, but a sample — the CI
		// recall gate bounds its Jaccard-estimate error rather than
		// asserting exactness.
		p := c.cfg.sketchParams()
		qs := sketch.New(sketch.Params{K: p.K, MinHashK: p.MinHashK, Kind: p.Kind})
		qs.Add(q)
		hashes := qs.MinHashes()
		if len(hashes) == 0 {
			return 0, 0
		}
		var drop []int
		for g := range groupOffsets {
			if s, ok := prunable(g); ok && sketch.EstimateContainment(hashes, s) == 0 {
				drop = append(drop, g)
			}
		}
		if len(drop) == len(groupOffsets) {
			// Guard: a query that samples into no group keeps its full
			// fan-out rather than returning an empty answer unverified.
			return 0, 1
		}
		for _, g := range drop {
			delete(groupOffsets, g)
		}
	}
	return before - len(groupOffsets), guarded
}

// SimilarityHit is one alignment-free similarity result: an indexed
// sequence ranked by its estimated k-mer Jaccard similarity to the query.
type SimilarityHit struct {
	Seq     seq.ID
	Name    string
	Jaccard float64
}

// Similarity ranks the indexed sequences by estimated Jaccard similarity to
// the query, computed purely from the coordinator's per-sequence bottom-k
// MinHash signatures — no node is contacted and no alignment runs. On small
// sequences (fewer distinct k-mers than the sketch size) the estimate is
// exact; the CI recall gate bounds the error elsewhere. topN <= 0 returns
// every sequence with a non-zero estimate.
func (c *Cluster) Similarity(query []byte, topN int) ([]SimilarityHit, error) {
	p := c.cfg.sketchParams()
	if p.K <= 0 || p.MinHashK <= 0 {
		return nil, errors.New("core: similarity mode requires MinHash sketching (enabled by default; check SketchK/SketchMinHashK)")
	}
	q := append([]byte(nil), query...)
	if err := seq.AlphabetFor(c.cfg.Kind).Normalize(q); err != nil {
		return nil, err
	}
	qmins := MinHashesOf(q, c.cfg)

	c.mu.RLock()
	if len(c.seqSketches) == 0 {
		c.mu.RUnlock()
		return nil, ErrNotIndexed
	}
	type entry struct {
		id   seq.ID
		mins []uint64
	}
	entries := make([]entry, 0, len(c.seqSketches))
	for id, mins := range c.seqSketches {
		entries = append(entries, entry{id, mins})
	}
	c.mu.RUnlock()

	hits := make([]SimilarityHit, 0, len(entries))
	for _, e := range entries {
		j := sketch.JaccardBottomK(qmins, e.mins, p.MinHashK)
		if j <= 0 {
			continue
		}
		hits = append(hits, SimilarityHit{Seq: e.id, Name: c.NameOf(e.id), Jaccard: j})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Jaccard != hits[j].Jaccard {
			return hits[i].Jaccard > hits[j].Jaccard
		}
		return hits[i].Seq < hits[j].Seq
	})
	if topN > 0 && len(hits) > topN {
		hits = hits[:topN]
	}
	return hits, nil
}

// SeqSketch returns the stored bottom-k MinHash values of an indexed
// sequence (nil if unknown), for the similarity verification harness.
func (c *Cluster) SeqSketch(id seq.ID) []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.seqSketches[id]
}

// MinHashesOf computes the bottom-k MinHash signature of data under the
// cluster configuration's sketch params — the query-side half of Similarity
// and of the verification harness's exact-vs-estimate comparison.
func MinHashesOf(data []byte, cfg Config) []uint64 {
	p := cfg.sketchParams()
	if p.K <= 0 || p.MinHashK <= 0 {
		return nil
	}
	s := sketch.New(sketch.Params{K: p.K, MinHashK: p.MinHashK, Kind: p.Kind})
	s.Add(data)
	return s.MinHashes()
}

// ExactJaccard computes the exact canonical k-mer Jaccard similarity of two
// sequences under the cluster configuration's sketch params, from their full
// distinct-hash sets. It is the ground truth the CI recall gate compares the
// MinHash estimates of Similarity against.
func ExactJaccard(a, b []byte, cfg Config) float64 {
	p := cfg.sketchParams()
	if p.K <= 0 {
		return 0
	}
	return sketch.JaccardBottomK(distinctHashes(a, p), distinctHashes(b, p), 0)
}

// distinctHashes returns the sorted distinct canonical k-mer hashes of data.
func distinctHashes(data []byte, p sketch.Params) []uint64 {
	set := make(map[uint64]struct{})
	sketch.Hashes(p.Kind, p.K, data, func(h uint64) { set[h] = struct{}{} })
	out := make([]uint64, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// updateSeqSketches computes and stores the per-sequence MinHash signatures
// of a newly indexed set (the database side of Similarity). Sketching is
// coordinator-side: the full sequences are in hand during Index, and the
// signatures persist in the manifest so Similarity works after LoadManifest
// without contacting any node.
func (c *Cluster) updateSeqSketches(set *seq.Set, base seq.ID) {
	p := c.cfg.sketchParams()
	if p.K <= 0 || p.MinHashK <= 0 {
		return
	}
	mp := sketch.Params{K: p.K, MinHashK: p.MinHashK, Kind: p.Kind}
	mins := make(map[seq.ID][]uint64, len(set.Seqs))
	for _, s := range set.Seqs {
		sk := sketch.New(mp)
		sk.Add(s.Data)
		mins[base+s.ID] = sk.MinHashes()
	}
	c.mu.Lock()
	for id, v := range mins {
		c.seqSketches[id] = v
	}
	c.mu.Unlock()
}
