package core

import (
	"sync"

	"mendel/internal/wire"
)

// hintStore is the coordinator's hinted-handoff queue (the Dynamo
// technique): when ingest cannot reach a replica, the blocks and sequence
// shards destined for it are parked here instead of being dropped, and the
// health monitor replays them when the node returns. A mid-ingest crash
// therefore loses zero blocks — the write set is preserved verbatim, just
// deferred.
type hintStore struct {
	mu     sync.Mutex
	blocks map[string][]wire.Block
	seqs   map[string]*wire.StoreSequences
}

func newHintStore() *hintStore {
	return &hintStore{
		blocks: make(map[string][]wire.Block),
		seqs:   make(map[string]*wire.StoreSequences),
	}
}

// addBlocks parks blocks destined for addr.
func (h *hintStore) addBlocks(addr string, blocks []wire.Block) {
	if len(blocks) == 0 {
		return
	}
	h.mu.Lock()
	h.blocks[addr] = append(h.blocks[addr], blocks...)
	h.mu.Unlock()
}

// addSequences parks sequence shards destined for addr. Replayed shards
// overwrite by ID on the node, so duplicates across hints are harmless.
func (h *hintStore) addSequences(addr string, msg wire.StoreSequences) {
	if len(msg.IDs) == 0 {
		return
	}
	h.mu.Lock()
	q := h.seqs[addr]
	if q == nil {
		q = &wire.StoreSequences{}
		h.seqs[addr] = q
	}
	q.IDs = append(q.IDs, msg.IDs...)
	q.Names = append(q.Names, msg.Names...)
	q.Data = append(q.Data, msg.Data...)
	h.mu.Unlock()
}

// take removes and returns everything queued for addr. On a failed replay
// the caller must restore what it took.
func (h *hintStore) take(addr string) ([]wire.Block, *wire.StoreSequences) {
	h.mu.Lock()
	defer h.mu.Unlock()
	blocks := h.blocks[addr]
	seqs := h.seqs[addr]
	delete(h.blocks, addr)
	delete(h.seqs, addr)
	return blocks, seqs
}

// restore requeues hints a failed replay could not deliver.
func (h *hintStore) restore(addr string, blocks []wire.Block, seqs *wire.StoreSequences) {
	h.mu.Lock()
	if len(blocks) > 0 {
		h.blocks[addr] = append(blocks, h.blocks[addr]...)
	}
	if seqs != nil && len(seqs.IDs) > 0 {
		if q := h.seqs[addr]; q != nil {
			seqs.IDs = append(seqs.IDs, q.IDs...)
			seqs.Names = append(seqs.Names, q.Names...)
			seqs.Data = append(seqs.Data, q.Data...)
		}
		h.seqs[addr] = seqs
	}
	h.mu.Unlock()
}

// pending returns the total number of parked items (blocks plus sequence
// shards), the value behind the hints_pending gauge.
func (h *hintStore) pending() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n int64
	for _, b := range h.blocks {
		n += int64(len(b))
	}
	for _, s := range h.seqs {
		n += int64(len(s.IDs))
	}
	return n
}

// pendingFor returns the number of items parked for one address.
func (h *hintStore) pendingFor(addr string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.blocks[addr])
	if s := h.seqs[addr]; s != nil {
		n += len(s.IDs)
	}
	return n
}

// addrs returns every address with parked hints.
func (h *hintStore) addrs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.blocks)+len(h.seqs))
	seen := make(map[string]bool)
	for a := range h.blocks {
		seen[a] = true
		out = append(out, a)
	}
	for a := range h.seqs {
		if !seen[a] {
			out = append(out, a)
		}
	}
	return out
}

// HintsPending reports the number of queued hinted-handoff items (blocks
// plus sequence shards) awaiting replay to recovered nodes.
func (c *Cluster) HintsPending() int64 { return c.hints.pending() }
