package core

import (
	"context"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"mendel/internal/node"
	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// chaosSeed returns the seed for the MemNetwork chaos RNG (flaky-drop
// decisions and latency jitter) and logs it, so a failing run names the
// exact random sequence that produced it. Override with MENDEL_CHAOS_SEED
// to replay a reported failure.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(1)
	if s := os.Getenv("MENDEL_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad MENDEL_CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos rng seed %d (override with MENDEL_CHAOS_SEED)", seed)
	return seed
}

// chaosCluster builds the standard chaos testbed: 6 nodes in 2 groups with
// R=2 replication, so every block and every repository shard has a copy
// surviving any single-node loss per group.
func chaosCluster(t *testing.T) (*InProcess, *seq.Set) {
	t.Helper()
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 500
	cfg.Replicas = 2
	ip, err := NewInProcess(cfg, 6, transport.WithChaosSeed(chaosSeed(t)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	db := buildTestDB(rng, 20, 300)
	if err := ip.Index(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	return ip, db
}

// victimsCoverSomeSequence reports whether killing exactly the given nodes
// destroys every repository copy of some sequence. The repository ring is
// global (orthogonal to groups), so with R=2 a cross-group victim pair can
// own both copies of a sequence — an unavoidable data loss, not a fault-
// tolerance bug — and such pairs must be excluded from full-recall checks.
func victimsCoverSomeSequence(ip *InProcess, db *seq.Set, victims ...string) bool {
	dead := make(map[string]bool, len(victims))
	for _, v := range victims {
		dead[v] = true
	}
	for _, s := range db.Seqs {
		holders := ip.seqRing.LookupN(seqKey(s.ID), ip.cfg.replicas())
		alive := false
		for _, h := range holders {
			if !dead[h] {
				alive = true
				break
			}
		}
		if !alive {
			return true
		}
	}
	return false
}

// TestChaosKillOneNodePerGroupKeepsFullRecall is the first acceptance
// scenario: with R=2, failing one node in EVERY group simultaneously must
// not degrade the answer at all — correct hits, Trace.Partial == false —
// whenever at least one copy of every repository shard survives.
func TestChaosKillOneNodePerGroupKeepsFullRecall(t *testing.T) {
	ip, db := chaosCluster(t)
	ctx := context.Background()
	query := db.Seqs[11].Data[50:180]

	baseline, err := ip.Search(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 || baseline[0].Seq != 11 {
		t.Fatalf("baseline hits = %+v", baseline)
	}

	// Every combination of one victim per group that keeps a live copy of
	// each sequence (R=2 tolerates ANY one failure; a two-node loss is only
	// survivable when the pair doesn't own both copies of a shard).
	tested := 0
	for _, v0 := range ip.Topology().GroupNodes(0) {
		for _, v1 := range ip.Topology().GroupNodes(1) {
			if victimsCoverSomeSequence(ip, db, v0, v1) {
				continue
			}
			tested++
			ip.Net.Fail(v0)
			ip.Net.Fail(v1)
			hits, trace, err := ip.SearchTrace(ctx, query, defaultTestParams())
			if err != nil {
				t.Fatalf("search with %s+%s down: %v", v0, v1, err)
			}
			if trace.Partial {
				t.Fatalf("partial result with one node per group down (%s, %s): %s", v0, v1, trace)
			}
			if len(hits) == 0 || hits[0].Seq != 11 {
				t.Fatalf("recall lost with %s+%s down: %+v", v0, v1, hits)
			}
			ip.Net.Heal(v0)
			ip.Net.Heal(v1)
		}
	}
	if tested == 0 {
		t.Fatal("no survivable victim pair exists; reshape the test database")
	}

	// Single-node failures are ALWAYS survivable with R=2, anywhere.
	for _, n := range ip.Nodes {
		ip.Net.Fail(n.Addr())
		hits, trace, err := ip.SearchTrace(ctx, query, defaultTestParams())
		if err != nil {
			t.Fatalf("search with %s down: %v", n.Addr(), err)
		}
		if trace.Partial || len(hits) == 0 || hits[0].Seq != 11 {
			t.Fatalf("single failure %s degraded the query: %s %+v", n.Addr(), trace, hits)
		}
		ip.Net.Heal(n.Addr())
	}
}

// TestChaosFlappingNodesMidWorkload kills and heals one node per group in a
// tight loop while a query workload runs, asserting no query ever errors
// and no data race fires (run under -race).
func TestChaosFlappingNodesMidWorkload(t *testing.T) {
	ip, db := chaosCluster(t)
	ctx := context.Background()
	p := defaultTestParams()

	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		g0, g1 := ip.Topology().GroupNodes(0), ip.Topology().GroupNodes(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v0, v1 := g0[i%len(g0)], g1[i%len(g1)]
			ip.Net.Fail(v0)
			ip.Net.Fail(v1)
			time.Sleep(2 * time.Millisecond)
			ip.Net.Heal(v0)
			ip.Net.Heal(v1)
			time.Sleep(time.Millisecond)
		}
	}()

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				s := db.Seqs[(w*5+i)%len(db.Seqs)]
				if _, err := ip.Search(ctx, s.Data[40:170], p); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	flapper.Wait()
	select {
	case err := <-errs:
		t.Fatalf("query failed during flapping: %v", err)
	default:
	}
}

// findSpanningQuery returns a query from db that fans out to every group,
// so killing one whole group is guaranteed to intersect the query's route.
func findSpanningQuery(t *testing.T, ip *InProcess, db *seq.Set) ([]byte, seq.ID) {
	t.Helper()
	ctx := context.Background()
	for id := 0; id < len(db.Seqs); id++ {
		q := db.Seqs[id].Data[30:220]
		hits, trace, err := ip.SearchTrace(ctx, q, defaultTestParams())
		if err != nil {
			t.Fatal(err)
		}
		if trace.GroupRequests == ip.Config().Groups && len(hits) > 0 && hits[0].Seq == seq.ID(id) {
			return q, seq.ID(id)
		}
	}
	t.Fatal("no query spans all groups; enlarge the test database")
	return nil, 0
}

// TestChaosWholeGroupDownDegradesToPartial is the second acceptance
// scenario: with an entire group unreachable and AllowPartial set (the
// default), Search answers from the surviving groups and flags the outage
// in the trace instead of erroring.
func TestChaosWholeGroupDownDegradesToPartial(t *testing.T) {
	ip, db := chaosCluster(t)
	ctx := context.Background()
	query, _ := findSpanningQuery(t, ip, db)

	for _, addr := range ip.Topology().GroupNodes(1) {
		ip.Net.Fail(addr)
	}
	hits, trace, err := ip.SearchTrace(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatalf("whole-group outage aborted the query: %v", err)
	}
	if trace.GroupsFailed == 0 || !trace.Partial {
		t.Fatalf("outage not reported: %s", trace)
	}
	// The surviving groups' anchors still produce hits unless every anchor
	// happened to live in the dead group; with a query routed to both
	// groups the merged result must not be empty.
	if trace.AnchorsReturned == 0 {
		t.Fatalf("no anchors from surviving groups: %s", trace)
	}
	_ = hits

	// Healing restores full, non-partial answers.
	for _, addr := range ip.Topology().GroupNodes(1) {
		ip.Net.Heal(addr)
	}
	_, trace, err = ip.SearchTrace(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if trace.Partial {
		t.Fatalf("healed cluster still partial: %s", trace)
	}
}

// TestChaosWholeGroupDownStrictMode verifies the AllowPartial=false escape
// hatch: the pre-fault-tolerance fail-stop contract.
func TestChaosWholeGroupDownStrictMode(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 500
	cfg.Replicas = 2
	cfg.AllowPartial = false
	ip, err := NewInProcess(cfg, 6, transport.WithChaosSeed(chaosSeed(t)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(72))
	db := buildTestDB(rng, 20, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	query, _ := findSpanningQuery(t, ip, db)
	for _, addr := range ip.Topology().GroupNodes(0) {
		ip.Net.Fail(addr)
	}
	if _, err := ip.Search(ctx, query, defaultTestParams()); err == nil {
		t.Fatal("strict mode returned results with a whole group down")
	}
}

// TestChaosAllGroupsDownStillErrors: even in partial mode, a query that
// reaches no group at all is an error, not an empty success.
func TestChaosAllGroupsDownStillErrors(t *testing.T) {
	ip, db := chaosCluster(t)
	ctx := context.Background()
	for _, n := range ip.Nodes {
		ip.Net.Fail(n.Addr())
	}
	if _, err := ip.Search(ctx, db.Seqs[3].Data[40:170], defaultTestParams()); err == nil {
		t.Fatal("total outage returned results")
	}
}

// TestChaosFlakyNetworkWithResilientCaller drives every RPC — coordinator
// and node-to-node — through a 25%-lossy network and asserts the resilient
// caller's retries keep recall perfect.
func TestChaosFlakyNetworkWithResilientCaller(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 500
	cfg.Replicas = 2
	rc := transport.ResilientConfig{
		MaxRetries: 8,
		RetryBase:  50 * time.Microsecond,
		RetryMax:   time.Millisecond,
		// Breaker off: random loss must not lock out healthy nodes.
	}
	ip, err := NewInProcessResilient(cfg, 6, rc, transport.WithChaosSeed(chaosSeed(t)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(73))
	db := buildTestDB(rng, 20, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	for _, n := range ip.Nodes {
		ip.Net.SetFlaky(n.Addr(), 0.25)
	}
	for i := 0; i < 8; i++ {
		id := (i * 3) % len(db.Seqs)
		hits, trace, err := ip.SearchTrace(ctx, db.Seqs[id].Data[40:170], defaultTestParams())
		if err != nil {
			t.Fatalf("query %d failed on flaky network: %v", i, err)
		}
		if trace.Partial {
			t.Fatalf("query %d degraded despite retries: %s", i, trace)
		}
		if len(hits) == 0 || hits[0].Seq != seq.ID(id) {
			t.Fatalf("query %d recall lost: %+v", i, hits)
		}
	}
	if st := ip.Resilient.Stats(); st.Retries == 0 {
		t.Fatalf("flaky network exercised no retries: %+v", st)
	}
}

// TestChaosTransientFaultHealedByRetry uses one-shot fault injection: the
// next few calls to a node fail, then it recovers — a GC pause or dropped
// packet rather than a crash.
func TestChaosTransientFaultHealedByRetry(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 500
	cfg.Replicas = 2
	rc := transport.ResilientConfig{MaxRetries: 4, RetryBase: 50 * time.Microsecond}
	ip, err := NewInProcessResilient(cfg, 6, rc, transport.WithChaosSeed(chaosSeed(t)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(74))
	db := buildTestDB(rng, 20, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	for _, n := range ip.Nodes {
		ip.Net.FailNext(n.Addr(), 2)
	}
	hits, trace, err := ip.SearchTrace(ctx, db.Seqs[6].Data[40:170], defaultTestParams())
	if err != nil {
		t.Fatalf("transient faults failed the query: %v", err)
	}
	if trace.Partial {
		t.Fatalf("transient faults degraded the query: %s", trace)
	}
	if len(hits) == 0 || hits[0].Seq != 6 {
		t.Fatalf("recall lost: %+v", hits)
	}
}

// TestChaosCoordinatorPartitionedFromNode exercises the symmetric
// architecture: a coordinator that cannot reach one node still gets full
// recall, because any group member can act as the entry point and the
// node-to-node links are intact.
func TestChaosCoordinatorPartitionedFromNode(t *testing.T) {
	ip, db := chaosCluster(t)
	ctx := context.Background()
	victim := ip.Nodes[1].Addr()
	ip.Net.Partition("", victim) // coordinator <-/-> victim only

	query := db.Seqs[11].Data[50:180]
	hits, trace, err := ip.SearchTrace(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatalf("coordinator partition failed the query: %v", err)
	}
	if trace.Partial {
		t.Fatalf("coordinator partition degraded the query: %s", trace)
	}
	if len(hits) == 0 || hits[0].Seq != 11 {
		t.Fatalf("recall lost: %+v", hits)
	}

	// The victim is down from the coordinator's viewpoint...
	_, down, err := ip.StatsDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != 1 || down[0] != victim {
		t.Fatalf("down = %v, want [%s]", down, victim)
	}
	// ...but its peers still reach it over node-to-node links.
	peer := ip.Net.Bind(ip.Nodes[0].Addr())
	if _, err := peer.Call(ctx, victim, wire.Ping{}); err != nil {
		t.Fatalf("peer cannot reach partitioned node: %v", err)
	}
}

// victimsCoverSeqIDs is victimsCoverSomeSequence for a global ID range
// [first, first+n): sequences indexed from a second set, whose per-set IDs
// do not match their cluster-global ones.
func victimsCoverSeqIDs(ip *InProcess, first, n int, victims ...string) bool {
	dead := make(map[string]bool, len(victims))
	for _, v := range victims {
		dead[v] = true
	}
	for i := 0; i < n; i++ {
		holders := ip.seqRing.LookupN(seqKey(seq.ID(first+i)), ip.cfg.replicas())
		alive := false
		for _, h := range holders {
			if !dead[h] {
				alive = true
				break
			}
		}
		if !alive {
			return true
		}
	}
	return false
}

// TestChaosKillRestartConvergeFullRecall is the self-healing acceptance
// scenario: one node is killed mid-ingest (its writes park as hints), a
// second is killed mid-query after the first restarted empty; both restarts
// are recovered by the health monitor (re-bootstrap, hint replay, index
// build) and a Cluster.Repair pass re-replicates everything the wipes lost.
// Afterwards every query must return full (non-partial) results identical to
// a never-faulted twin cluster built from the same data, the hint queue must
// be empty, and the health view must report every node up.
func TestChaosKillRestartConvergeFullRecall(t *testing.T) {
	ip, db1 := chaosCluster(t)
	ctx := context.Background()
	db2 := buildTestDB(rand.New(rand.NewSource(77)), 10, 300)

	// The no-fault twin: same config, same data, no chaos. Placement is a
	// pure function of content and topology, and node-side search is exact,
	// so its answers are the ground truth the healed cluster must reproduce.
	twinCfg := DefaultConfig(seq.Protein)
	twinCfg.Groups = 2
	twinCfg.SampleSize = 500
	twinCfg.Replicas = 2
	twin, err := NewInProcess(twinCfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.Index(ctx, buildTestDB(rand.New(rand.NewSource(71)), 20, 300)); err != nil {
		t.Fatal(err)
	}
	if err := twin.Index(ctx, buildTestDB(rand.New(rand.NewSource(77)), 10, 300)); err != nil {
		t.Fatal(err)
	}

	// Victims in different groups whose simultaneous loss destroys no
	// repository shard of either data set (see victimsCoverSomeSequence).
	var victimA, victimB string
	for _, v0 := range ip.Topology().GroupNodes(0) {
		for _, v1 := range ip.Topology().GroupNodes(1) {
			if victimsCoverSomeSequence(ip, db1, v0, v1) ||
				victimsCoverSeqIDs(ip, db1.Len(), db2.Len(), v0, v1) {
				continue
			}
			victimA, victimB = v0, v1
		}
	}
	if victimA == "" {
		t.Fatal("no survivable victim pair exists; reshape the test database")
	}

	hm := NewHealthMonitor(ip.Cluster, HealthConfig{DownAfter: 2})
	hm.ProbeOnce(ctx)

	// Kill victimA mid-ingest: the second data set arrives while it is
	// down, so its share of the writes parks in the hint queue.
	ip.Net.Fail(victimA)
	if err := ip.Index(ctx, db2); err != nil {
		t.Fatalf("ingest with %s down: %v", victimA, err)
	}
	if ip.HintsPending() == 0 {
		t.Fatal("mid-ingest crash parked no hints")
	}

	// victimA restarts empty (the crash lost its disk); the next sweep
	// re-bootstraps it, replays the parked hints and rebuilds its index.
	ip.Net.Register(victimA, node.New(victimA, ip.Net.Bind(victimA)))
	ip.Net.Heal(victimA)
	hm.ProbeOnce(ctx)
	if pending := ip.HintsPending(); pending != 0 {
		t.Fatalf("hints not drained after %s recovered: %d pending", victimA, pending)
	}

	// Kill victimB mid-query: R=2 keeps answers full while it is down.
	ip.Net.Fail(victimB)
	hits, trace, err := ip.SearchTrace(ctx, db1.Seqs[11].Data[50:180], defaultTestParams())
	if err != nil {
		t.Fatalf("query with %s down: %v", victimB, err)
	}
	if trace.Partial || len(hits) == 0 || hits[0].Seq != 11 {
		t.Fatalf("mid-outage query degraded: %s %+v", trace, hits)
	}

	// victimB restarts empty too and is recovered the same way.
	ip.Net.Register(victimB, node.New(victimB, ip.Net.Bind(victimB)))
	ip.Net.Heal(victimB)
	hm.ProbeOnce(ctx)

	// Anti-entropy: re-replicate everything the two wipes lost.
	rep, err := ip.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksMoved == 0 {
		t.Fatalf("repair after two wipes moved no blocks: %s", rep)
	}
	if rep.Unrepairable != 0 || rep.PushErrors != 0 || len(rep.Unreachable) != 0 {
		t.Fatalf("repair not clean: %s", rep)
	}

	// Converged: no hints, every node up, and every query answers full
	// results identical to the never-faulted twin.
	if pending := ip.HintsPending(); pending != 0 {
		t.Fatalf("hints pending after repair: %d", pending)
	}
	for _, n := range hm.Snapshot() {
		if n.State != HealthUp || !n.Booted {
			t.Fatalf("node not healthy after convergence: %+v", n)
		}
	}
	queries := make(map[int][]byte, db1.Len()+db2.Len())
	for i, s := range db1.Seqs {
		queries[i] = s.Data[40:170]
	}
	for i, s := range db2.Seqs {
		queries[db1.Len()+i] = s.Data[40:170]
	}
	for id := 0; id < len(queries); id++ {
		hits, trace, err := ip.SearchTrace(ctx, queries[id], defaultTestParams())
		if err != nil {
			t.Fatalf("post-repair query %d: %v", id, err)
		}
		if trace.Partial {
			t.Fatalf("post-repair query %d partial: %s", id, trace)
		}
		want, err := twin.Search(ctx, queries[id], defaultTestParams())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(hits, want) {
			t.Fatalf("query %d diverged from the no-fault run:\n got %+v\nwant %+v", id, hits, want)
		}
	}

	// The sketch tier must have healed with the data: both wiped nodes
	// rebuilt their k-mer sketches from the replayed hints and repair pushes,
	// so every group's merged sketch is complete again and — marshaling being
	// deterministic — bit-identical to the never-faulted twin's.
	for g := 0; g < ip.Topology().Groups(); g++ {
		if !ip.GroupSketchComplete(g) || !twin.GroupSketchComplete(g) {
			t.Fatalf("group %d sketch incomplete after repair (healed=%v twin=%v)",
				g, ip.GroupSketchComplete(g), twin.GroupSketchComplete(g))
		}
		got, want := ip.GroupSketchBytes(g), twin.GroupSketchBytes(g)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("group %d sketch diverged from the no-fault twin after repair (%d vs %d bytes)",
				g, len(got), len(want))
		}
	}

	// Identical sketches make identical skip decisions, so the whole query
	// loop must still match the twin bit for bit with the prefilter on.
	// MENDEL_PREFILTER lets the chaos-nightly matrix pin the mode.
	mode := PrefilterBloom
	if s := os.Getenv("MENDEL_PREFILTER"); s != "" {
		m, err := ParsePrefilterMode(s)
		if err != nil {
			t.Fatalf("bad MENDEL_PREFILTER %q: %v", s, err)
		}
		mode = m
	}
	t.Logf("post-repair prefilter mode %s (override with MENDEL_PREFILTER)", mode)
	ip.SetPrefilterMode(mode)
	twin.SetPrefilterMode(mode)
	for id := 0; id < len(queries); id++ {
		hits, trace, err := ip.SearchTrace(ctx, queries[id], defaultTestParams())
		if err != nil {
			t.Fatalf("post-repair filtered query %d: %v", id, err)
		}
		if trace.Partial {
			t.Fatalf("post-repair filtered query %d partial: %s", id, trace)
		}
		want, err := twin.Search(ctx, queries[id], defaultTestParams())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(hits, want) {
			t.Fatalf("filtered query %d diverged from the no-fault run:\n got %+v\nwant %+v", id, hits, want)
		}
	}
}

// TestChaosStatsAndMembershipTolerateDownNodes covers the degraded-mode
// control plane: Stats answers with the survivors' counters and AddNode's
// topology broadcast is not blocked by an unrelated dead node.
func TestChaosStatsAndMembershipTolerateDownNodes(t *testing.T) {
	ip, _ := chaosCluster(t)
	ctx := context.Background()
	victim := ip.Nodes[4].Addr()
	ip.Net.Fail(victim)

	stats, down, err := ip.StatsDetailed(ctx)
	if err != nil {
		t.Fatalf("stats with a down node: %v", err)
	}
	if len(stats) != 5 {
		t.Fatalf("got %d stats, want 5 survivors", len(stats))
	}
	if len(down) != 1 || down[0] != victim {
		t.Fatalf("down = %v", down)
	}

	// Membership changes proceed despite the dead node.
	joiner := node.New("node-new", ip.Net.Bind("node-new"))
	ip.Net.Register("node-new", joiner)
	if err := ip.AddNode(ctx, 0, "node-new"); err != nil {
		t.Fatalf("join blocked by unrelated dead node: %v", err)
	}
	if err := ip.RemoveNode(ctx, victim); err != nil {
		t.Fatalf("removing the dead node itself: %v", err)
	}
	if ip.Topology().NumNodes() != 6 { // 6 - 1 victim + 1 joiner
		t.Fatalf("nodes = %d", ip.Topology().NumNodes())
	}
}
