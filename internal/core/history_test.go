package core

import (
	"context"
	"testing"
	"time"

	"mendel/internal/obs"
	"mendel/internal/seq"
)

// TestClusterHistoryDetailed exercises the windowed-telemetry pull path
// end to end over the in-memory transport: per-node samplers answering
// wire.MetricsHistory, the coordinator fan-out, and the cluster-wide merge
// behind /metrics/history.
func TestClusterHistoryDetailed(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	ip, err := NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ip.Observe(reg, nil)

	// One sampler per node over a deterministic clock; in-process nodes
	// share one registry, so each node's series sees the same counters —
	// the merge math is what's under test.
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	now := base
	clock := func() time.Time { return now }
	var series []*obs.TimeSeries
	for _, n := range ip.Nodes {
		ts := obs.NewTimeSeries(reg, obs.TimeSeriesConfig{Interval: time.Second, Capacity: 16, Clock: clock})
		ts.SetNode(n.Addr())
		n.ObserveHistory(ts)
		series = append(series, ts)
	}
	for i := 0; i < 5; i++ {
		reg.Counter("server_requests").Add(2)
		now = now.Add(time.Second)
		for _, ts := range series {
			ts.Sample()
		}
	}

	results, down, err := ip.HistoryDetailed(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != 0 {
		t.Fatalf("down = %v, want none", down)
	}
	if len(results) != 4 {
		t.Fatalf("histories from %d nodes, want 4", len(results))
	}
	for _, r := range results {
		if r.History.Node != r.Node {
			t.Fatalf("history node label %q != reporting node %q", r.History.Node, r.Node)
		}
		if len(r.History.Points) != 5 {
			t.Fatalf("node %s shipped %d points, want 5", r.Node, len(r.History.Points))
		}
	}

	// Window trimming happens node-side: WindowNS must bound the shipped
	// series, not just the merged view.
	results, _, err = ip.HistoryDetailed(context.Background(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.History.Points) > 2 {
			t.Fatalf("window=2s shipped %d points", len(r.History.Points))
		}
	}

	// HistorySource merges everything (4 nodes × delta 2 per interval) and
	// reports the per-node breakdown on request.
	src := ip.HistorySource(context.Background(), nil)
	ch, err := src(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Nodes) != 4 {
		t.Fatalf("per-node breakdown has %d entries, want 4", len(ch.Nodes))
	}
	last := ch.Merged.Points[len(ch.Merged.Points)-1]
	if got := last.Counters["server_requests"]; got != 8 {
		t.Fatalf("merged last delta = %d, want 4 nodes × 2", got)
	}
}

// TestClusterHistoryWithoutSamplers confirms the pull path degrades to
// empty histories (not errors) against nodes that never attached a
// sampler — mixed-version clusters must keep answering.
func TestClusterHistoryWithoutSamplers(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	ip, err := NewInProcess(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	results, down, err := ip.HistoryDetailed(context.Background(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != 0 || len(results) != 2 {
		t.Fatalf("results=%d down=%v", len(results), down)
	}
	for _, r := range results {
		if len(r.History.Points) != 0 {
			t.Fatalf("sampler-less node %s shipped %d points", r.Node, len(r.History.Points))
		}
	}
}
