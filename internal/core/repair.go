package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mendel/internal/obs"
	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// RepairReport summarizes one anti-entropy pass.
type RepairReport struct {
	// Groups lists the group IDs the pass covered.
	Groups []int
	// BlocksMoved is the number of blocks re-replicated onto nodes that
	// were missing them.
	BlocksMoved int
	// SequencesMoved is the number of sequence-repository shards
	// re-replicated.
	SequencesMoved int
	// Unrepairable counts blocks whose every replica is on a down node —
	// data the pass could not restore (it stays scheduled implicitly: a
	// later pass sees the same diff once a holder returns).
	Unrepairable int
	// PushErrors counts transfers that failed; the next pass retries them.
	PushErrors int
	// Unreachable lists nodes that could not contribute a manifest.
	Unreachable []string
	// Duration is the wall-clock time of the pass.
	Duration time.Duration
}

// String renders a compact single-line summary.
func (r *RepairReport) String() string {
	return fmt.Sprintf("groups=%v blocks-moved=%d seqs-moved=%d unrepairable=%d push-errors=%d unreachable=%d in %v",
		r.Groups, r.BlocksMoved, r.SequencesMoved, r.Unrepairable, r.PushErrors, len(r.Unreachable), r.Duration)
}

// Repair runs a full anti-entropy pass over the cluster (the Cassandra-style
// complement to hinted handoff, which only covers failures the coordinator
// witnessed): every reachable node reports a manifest of its block and
// sequence inventory, the coordinator diffs each group's inventory against
// the replica placement the DHT prescribes, and surviving replicas push the
// missing copies directly to the nodes that should hold them — through the
// staged IndexBlocks/BuildIndex path, so repaired vp-trees are rebuilt in
// deterministic bulk builds. Block contents never pass through the
// coordinator; manifests carry placement hashes instead.
func (c *Cluster) Repair(ctx context.Context) (*RepairReport, error) {
	groups := make([]int, c.topology().Groups())
	for i := range groups {
		groups[i] = i
	}
	return c.repairGroups(ctx, groups, true)
}

// repairGroups repairs the block inventory of the given groups; withSeqs
// additionally repairs the sequence repository (a ring over all nodes, so it
// is only meaningful on full passes). Scoped read-repairs pass one group.
func (c *Cluster) repairGroups(ctx context.Context, groups []int, withSeqs bool) (*RepairReport, error) {
	if !c.indexed() {
		return nil, ErrNotIndexed
	}
	start := time.Now()
	var sp *obs.Span
	if c.tracer != nil {
		sp = c.tracer.StartTrace("repair", obs.NewTraceContext())
		defer sp.End()
	}
	rep := &RepairReport{Groups: append([]int(nil), groups...)}

	// Phase 1: manifest sweep. A node that answers with an application
	// error (e.g. not bootstrapped yet) holds nothing usable, so it counts
	// as unreachable for planning purposes.
	nodes := c.topology().AllNodes()
	resps, errs := transport.BroadcastAll(ctx, c.caller, nodes, wire.BlockManifest{})
	manifests := make(map[string]wire.BlockManifestResult, len(nodes))
	for i, addr := range nodes {
		if errs[i] != nil {
			rep.Unreachable = append(rep.Unreachable, addr)
			continue
		}
		man, ok := resps[i].(wire.BlockManifestResult)
		if !ok {
			return nil, fmt.Errorf("core: manifest from %s: malformed reply %T", addr, resps[i])
		}
		manifests[addr] = man
	}
	if len(manifests) == 0 {
		return nil, fmt.Errorf("core: repair: no node answered the manifest sweep")
	}

	// Phase 2: per-group diff and block transfer plan.
	topo := c.topology()
	replicas := c.cfg.replicas()
	plan := make(map[[2]string][]uint64) // {source, target} -> refs
	targets := make(map[string]bool)
	for _, g := range groups {
		type blockInfo struct {
			hash    uint64
			holders []string
		}
		universe := make(map[uint64]*blockInfo)
		for _, m := range topo.GroupNodes(g) {
			man, ok := manifests[m]
			if !ok {
				continue
			}
			for i, ref := range man.Refs {
				info := universe[ref]
				if info == nil {
					info = &blockInfo{hash: man.Hashes[i]}
					universe[ref] = info
				}
				info.holders = append(info.holders, m)
			}
		}
		for ref, info := range universe {
			desired := topo.ReplicasForHash(g, info.hash, replicas)
			for _, d := range desired {
				if _, live := manifests[d]; !live {
					continue // down: a later pass covers it
				}
				held := false
				for _, h := range info.holders {
					if h == d {
						held = true
						break
					}
				}
				if held {
					continue
				}
				// Manifest holders are alive by construction; pick the
				// smallest address for a deterministic plan.
				src := info.holders[0]
				for _, h := range info.holders[1:] {
					if h < src {
						src = h
					}
				}
				plan[[2]string{src, d}] = append(plan[[2]string{src, d}], ref)
				targets[d] = true
			}
			if len(info.holders) == 0 {
				rep.Unrepairable++
			}
		}
	}

	// Phase 3: execute transfers source -> target, in deterministic order.
	pairs := make([][2]string, 0, len(plan))
	for p := range plan {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, p := range pairs {
		refs := plan[p]
		sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
		for s := 0; s < len(refs); s += indexBatchBlocks {
			e := s + indexBatchBlocks
			if e > len(refs) {
				e = len(refs)
			}
			resp, err := c.caller.Call(ctx, p[0], wire.PushBlocks{Target: p[1], Refs: refs[s:e]})
			if err != nil {
				rep.PushErrors++
				continue
			}
			if ack, ok := resp.(wire.PushBlocksAck); ok {
				rep.BlocksMoved += ack.Pushed
			}
		}
	}

	// Phase 4: fold the pushed blocks into the targets' vp-trees.
	if len(targets) > 0 {
		built := make([]string, 0, len(targets))
		for t := range targets {
			built = append(built, t)
		}
		sort.Strings(built)
		_, berrs := transport.BroadcastAll(ctx, c.caller, built, wire.BuildIndex{})
		for _, e := range berrs {
			if e != nil {
				rep.PushErrors++
			}
		}
	}

	// Phase 5: sequence-repository repair, diffing each sequence's ring
	// replica set against the manifests' shard inventories.
	if withSeqs {
		c.repairSequences(ctx, manifests, rep)
	}

	// Phase 6: repair moved blocks between nodes, so re-pull the group
	// sketches — a repaired node rebuilds its sketch incrementally on the
	// same staged IndexBlocks path the transfers used, and the prefilter's
	// view must match the repaired placement before it may skip again.
	c.refreshSketches(ctx)

	rep.Duration = time.Since(start)
	c.reg.Counter("repair_runs").Inc()
	c.reg.Counter("repair_blocks_moved").Add(int64(rep.BlocksMoved))
	c.reg.Counter("repair_seqs_moved").Add(int64(rep.SequencesMoved))
	c.reg.Histogram("repair_ns").Observe(rep.Duration.Nanoseconds())
	sp.SetAttr("groups", int64(len(groups)))
	sp.SetAttr("blocks_moved", int64(rep.BlocksMoved))
	sp.SetAttr("seqs_moved", int64(rep.SequencesMoved))
	sp.SetAttr("push_errors", int64(rep.PushErrors))
	return rep, nil
}

// repairSequences restores the replication factor of the distributed
// sequence repository: for every indexed sequence, the ring's replica set is
// compared against who actually holds a shard, and a surviving holder
// forwards the shard to each live node that is missing it.
func (c *Cluster) repairSequences(ctx context.Context, manifests map[string]wire.BlockManifestResult, rep *RepairReport) {
	holders := make(map[seq.ID][]string)
	for addr, man := range manifests {
		for _, id := range man.Seqs {
			holders[id] = append(holders[id], addr)
		}
	}
	c.mu.RLock()
	ids := make([]seq.ID, 0, len(c.names))
	for id := range c.names {
		ids = append(ids, id)
	}
	replicas := c.cfg.replicas()
	desired := make(map[seq.ID][]string, len(ids))
	for _, id := range ids {
		desired[id] = c.seqRing.LookupN(seqKey(id), replicas)
	}
	c.mu.RUnlock()

	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	plan := make(map[[2]string][]seq.ID)
	for _, id := range ids {
		hs := holders[id]
		if len(hs) == 0 {
			rep.Unrepairable++
			continue
		}
		src := hs[0]
		for _, h := range hs[1:] {
			if h < src {
				src = h
			}
		}
		for _, d := range desired[id] {
			if _, live := manifests[d]; !live {
				continue
			}
			held := false
			for _, h := range hs {
				if h == d {
					held = true
					break
				}
			}
			if !held {
				plan[[2]string{src, d}] = append(plan[[2]string{src, d}], id)
			}
		}
	}
	pairs := make([][2]string, 0, len(plan))
	for p := range plan {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, p := range pairs {
		resp, err := c.caller.Call(ctx, p[0], wire.PushSequences{Target: p[1], IDs: plan[p]})
		if err != nil {
			rep.PushErrors++
			continue
		}
		if ack, ok := resp.(wire.PushSequencesAck); ok {
			rep.SequencesMoved += ack.Pushed
		}
	}
}
