package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"mendel/internal/seq"
)

// The query mix spans the prefilter's interesting regimes: short queries
// (one window, where eps-branching routes to groups that hold nothing
// relevant — the main skip source), longer excerpts, and foreign random
// queries matching nothing.
func TestPrefilterBloomExactRecall(t *testing.T) {
	ip := newTestCluster(t, 8, 4)
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	db := buildTestDB(rng, 60, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}

	var queries [][]byte
	for i, ln := range []int{16, 16, 24, 40, 130} {
		s := db.Seqs[(i*13)%len(db.Seqs)]
		start := (i * 37) % (len(s.Data) - ln)
		queries = append(queries, s.Data[start:start+ln])
	}
	for i := 0; i < 5; i++ {
		queries = append(queries, randProtein(rng, 16+8*i))
	}
	// Mutated homologs probe the riskiest regime: heavily substituted
	// windows can lose every intact k-mer while the vp-tree still finds
	// their origin block by metric distance.
	for i, rate := range []float64{0.1, 0.15, 0.2, 0.3} {
		s := db.Seqs[(7*i+3)%len(db.Seqs)]
		queries = append(queries, mutateSubs(rng, s.Data[60:180], rate))
	}

	p := defaultTestParams()
	baseline := make([][]Hit, len(queries))
	for i, q := range queries {
		hits, err := ip.Search(ctx, q, p)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = hits
	}

	// The bloom prefilter's contract is exact recall: identical hits, in
	// identical order, with identical scores — not merely the same top hit.
	ip.SetPrefilterMode(PrefilterBloom)
	skipped, guarded := 0, 0
	for i, q := range queries {
		hits, trace, err := ip.SearchTrace(ctx, q, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(hits, baseline[i]) {
			t.Errorf("query %d (%d residues): filtered hits diverge from unfiltered baseline", i, len(q))
		}
		skipped += trace.GroupsSkipped
		guarded += trace.PrefilterGuard
	}
	t.Logf("bloom prefilter: %d groups skipped, %d guard activations over %d queries", skipped, guarded, len(queries))
	if skipped == 0 {
		t.Error("bloom prefilter never skipped a group on the seeded corpus")
	}
}

func TestPrefilterMinHashNoError(t *testing.T) {
	ip := newTestCluster(t, 8, 4)
	rng := rand.New(rand.NewSource(12))
	ctx := context.Background()
	db := buildTestDB(rng, 40, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	ip.SetPrefilterMode(PrefilterMinHash)
	p := defaultTestParams()
	// An indexed excerpt must still be found: its k-mers are in every
	// holding group's Bloom filter, so minhash sampling cannot rule its
	// groups out.
	q := db.Seqs[7].Data[30:150]
	hits, _, err := ip.SearchTrace(ctx, q, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 7 {
		t.Fatalf("minhash prefilter lost the exact excerpt (hits=%d)", len(hits))
	}
	// A foreign query must not error; either groups are skipped or the
	// whole-query guard keeps the fan-out.
	if _, _, err := ip.SearchTrace(ctx, randProtein(rng, 64), p); err != nil {
		t.Fatal(err)
	}
}

func TestPrefilterDisabledBySketchConfig(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 500
	cfg.SketchK = -1 // sketching disabled cluster-wide
	ip, err := NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	ctx := context.Background()
	db := buildTestDB(rng, 20, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	ip.SetPrefilterMode(PrefilterBloom)
	q := db.Seqs[3].Data[50:150]
	hits, trace, err := ip.SearchTrace(ctx, q, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("search with sketching disabled found nothing")
	}
	if trace.GroupsSkipped != 0 {
		t.Fatalf("prefilter skipped %d groups with sketching disabled", trace.GroupsSkipped)
	}
	if _, err := ip.Similarity(q, 5); err == nil {
		t.Error("Similarity succeeded with MinHash sketching disabled")
	}
}

func TestSimilarityRanksExactExcerptFirst(t *testing.T) {
	ip := newTestCluster(t, 8, 4)
	rng := rand.New(rand.NewSource(14))
	ctx := context.Background()
	db := buildTestDB(rng, 30, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	q := db.Seqs[21].Data[:200]
	hits, err := ip.Similarity(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 21 {
		t.Fatalf("similarity top hit = %+v, want seq 21", hits)
	}
	if hits[0].Jaccard <= 0.5 {
		t.Fatalf("2/3-overlap excerpt estimated at Jaccard %.3f", hits[0].Jaccard)
	}
}
