package core

import (
	"context"
	"math/rand"
	"testing"
)

func TestSearchAllOrderAndResults(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(121))
	ctx := context.Background()
	db := buildTestDB(rng, 15, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	queries := [][]byte{
		db.Seqs[2].Data[10:130],
		db.Seqs[9].Data[50:170],
		db.Seqs[14].Data[100:220],
	}
	results := ip.SearchAll(ctx, queries, defaultTestParams(), 2)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	wantSeqs := []int{2, 9, 14}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if len(r.Hits) == 0 || int(r.Hits[0].Seq) != wantSeqs[i] {
			t.Fatalf("query %d hits = %+v", i, r.Hits)
		}
	}
}

func TestSearchAllPerQueryErrors(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(122))
	ctx := context.Background()
	db := buildTestDB(rng, 8, 250)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	queries := [][]byte{
		db.Seqs[1].Data[10:130],
		[]byte("BAD!!"), // invalid residues: this one fails alone
	}
	results := ip.SearchAll(ctx, queries, defaultTestParams(), 0)
	if results[0].Err != nil {
		t.Fatalf("good query failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("bad query succeeded")
	}
}

func TestSearchAllEmpty(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	if got := ip.SearchAll(context.Background(), nil, defaultTestParams(), 4); len(got) != 0 {
		t.Fatalf("empty batch = %d results", len(got))
	}
}
