package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"mendel/internal/seq"
)

func TestSearchTraceCounters(t *testing.T) {
	ip := newTestCluster(t, 6, 3)
	rng := rand.New(rand.NewSource(101))
	ctx := context.Background()
	db := buildTestDB(rng, 20, 400)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	query := db.Seqs[7].Data[100:260] // 160 residues
	hits, trace, err := ip.SearchTrace(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if trace.QueryLen != 160 {
		t.Fatalf("query len = %d", trace.QueryLen)
	}
	if trace.Strands != 1 {
		t.Fatalf("strands = %d", trace.Strands)
	}
	// 160 residues, window 16, step 16 -> 10 windows exactly.
	if trace.SubQueries != 10 {
		t.Fatalf("subqueries = %d", trace.SubQueries)
	}
	if trace.GroupRequests < 1 || trace.GroupRequests > 3 {
		t.Fatalf("group requests = %d", trace.GroupRequests)
	}
	if trace.AnchorsReturned < trace.AnchorsMerged {
		t.Fatalf("returned %d < merged %d", trace.AnchorsReturned, trace.AnchorsMerged)
	}
	if trace.Hits != len(hits) {
		t.Fatalf("trace hits %d != %d", trace.Hits, len(hits))
	}
	if trace.Total <= 0 || trace.FanOut <= 0 {
		t.Fatalf("timings missing: %+v", trace)
	}
	if trace.Total < trace.FanOut {
		t.Fatal("total < fan-out stage")
	}
	s := trace.String()
	for _, want := range []string{"windows=10", "hits="} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace string %q missing %q", s, want)
		}
	}
}

func TestSearchTraceTwoStrands(t *testing.T) {
	ip, set, _ := dnaCluster(t)
	p := dnaParams()
	p.BothStrands = true
	_, trace, err := ip.SearchTrace(context.Background(), set.Seqs[1].Data[50:200], p)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Strands != 2 {
		t.Fatalf("strands = %d", trace.Strands)
	}
	// Windows counted for both orientations.
	if trace.SubQueries < 18 {
		t.Fatalf("subqueries = %d, want both strands' windows", trace.SubQueries)
	}
}

func TestSearchWithPAM250(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(102))
	ctx := context.Background()
	db := buildTestDB(rng, 12, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	p := defaultTestParams()
	p.Matrix = "PAM250"
	hits, err := ip.Search(ctx, db.Seqs[5].Data[50:170], p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 5 {
		t.Fatalf("PAM250 hits = %+v", hits)
	}
}

func TestSearchWithFinerStep(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(103))
	ctx := context.Background()
	db := buildTestDB(rng, 12, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	p := defaultTestParams()
	p.Step = 4 // stride < window: overlapping subqueries
	_, trace, err := ip.SearchTrace(ctx, db.Seqs[3].Data[60:180], p)
	if err != nil {
		t.Fatal(err)
	}
	// 120 residues, window 16, step 4 -> (120-16)/4+1 = 27 windows.
	if trace.SubQueries != 27 {
		t.Fatalf("subqueries = %d, want 27", trace.SubQueries)
	}
}

func TestExactSearchModeConfig(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 300
	cfg.SearchBudget = -1 // exact per-node lookups
	ip, err := NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(104))
	ctx := context.Background()
	db := buildTestDB(rng, 10, 250)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	hits, err := ip.Search(ctx, db.Seqs[4].Data[30:150], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 4 {
		t.Fatalf("exact mode hits = %+v", hits)
	}
	if cfg.searchBudget() != 0 {
		t.Fatalf("searchBudget() = %d, want 0 (exact) on the wire", cfg.searchBudget())
	}
}

func TestQueryEpsConfig(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.QueryEps = 5
	c := &Cluster{cfg: cfg}
	if got := c.queryEps(); got != 5 {
		t.Fatalf("queryEps = %d", got)
	}
}

func TestBusyCountersAdvance(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(105))
	ctx := context.Background()
	db := buildTestDB(rng, 10, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Search(ctx, db.Seqs[1].Data[20:140], defaultTestParams()); err != nil {
		t.Fatal(err)
	}
	stats, err := ip.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	busy := int64(0)
	for _, s := range stats {
		busy += s.BusyNS
	}
	if busy <= 0 {
		t.Fatal("no node reported busy time after a search")
	}
}
