package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"mendel/internal/dht"
	"mendel/internal/metric"
	"mendel/internal/seq"
	"mendel/internal/sketch"
	"mendel/internal/transport"
	"mendel/internal/vphash"
)

// manifest is the saved coordinator state: everything needed to resume
// querying a cluster whose nodes already hold their indexed data. This
// implements the paper's future-work item of persisting pre-indexed state
// so large datasets need not be re-ingested per session (§VII-B).
type manifest struct {
	Config   Config
	Groups   [][]string
	HashTree []byte
	Names    map[seq.ID]string
	Lengths  map[seq.ID]int
	Total    int
	NextID   seq.ID
	// Sketch tier state (absent in manifests written before the tier
	// existed — gob leaves the fields nil, and the prefilter then stays
	// inert until a refresh repopulates the group sketches).
	GroupSketches  map[int][]byte
	SketchComplete map[int]bool
	SeqSketches    map[seq.ID][]uint64
}

// SaveManifest writes the coordinator state to w. The storage nodes keep
// their own data; a saved manifest plus running nodes restore a fully
// queryable cluster via LoadManifest.
func (c *Cluster) SaveManifest(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := manifest{
		Config:  c.cfg,
		Groups:  c.groups,
		Names:   c.names,
		Lengths: c.lengths,
		Total:   c.totalResidues,
		NextID:  c.nextID,
	}
	if c.hashTree != nil {
		enc, err := c.hashTree.MarshalBinary()
		if err != nil {
			return err
		}
		m.HashTree = enc
	}
	if len(c.groupSketches) > 0 {
		m.GroupSketches = make(map[int][]byte, len(c.groupSketches))
		for g, s := range c.groupSketches {
			enc, err := s.MarshalBinary()
			if err != nil {
				return err
			}
			m.GroupSketches[g] = enc
		}
		m.SketchComplete = c.sketchComplete
	}
	if len(c.seqSketches) > 0 {
		m.SeqSketches = c.seqSketches
	}
	return gob.NewEncoder(w).Encode(&m)
}

// LoadManifest restores a coordinator from a saved manifest, attached to
// the given transport.
func LoadManifest(r io.Reader, caller transport.Caller) (*Cluster, error) {
	var m manifest
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decoding manifest: %w", err)
	}
	topo, err := dht.NewTopology(m.Groups, 0)
	if err != nil {
		return nil, err
	}
	seqRing := dht.NewRing(0)
	for _, n := range topo.AllNodes() {
		seqRing.Add(n)
	}
	c := &Cluster{
		cfg:           m.Config,
		caller:        caller,
		groups:        m.Groups,
		topo:          topo,
		met:           metric.ForKind(m.Config.Kind),
		seqRing:       seqRing,
		names:         m.Names,
		lengths:       m.Lengths,
		totalResidues: m.Total,
		nextID:        m.NextID,
		hints:         newHintStore(),
		repairPending: make(map[int]bool),
	}
	if c.names == nil {
		c.names = make(map[seq.ID]string)
	}
	if c.lengths == nil {
		c.lengths = make(map[seq.ID]int)
	}
	c.seqSketches = m.SeqSketches
	if c.seqSketches == nil {
		c.seqSketches = make(map[seq.ID][]uint64)
	}
	if len(m.GroupSketches) > 0 {
		c.groupSketches = make(map[int]*sketch.Sketch, len(m.GroupSketches))
		for g, enc := range m.GroupSketches {
			s, err := sketch.UnmarshalBinary(enc)
			if err != nil {
				return nil, fmt.Errorf("core: decoding group %d sketch: %w", g, err)
			}
			c.groupSketches[g] = s
		}
		c.sketchComplete = m.SketchComplete
	}
	if len(m.HashTree) > 0 {
		tree := new(vphash.Tree)
		if err := tree.UnmarshalBinary(m.HashTree); err != nil {
			return nil, err
		}
		c.hashTree = tree
	}
	c.rng = newClusterRNG(m.Config.Seed)
	return c, nil
}
