package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mendel/internal/dht"
	"mendel/internal/metric"
	"mendel/internal/obs"
	"mendel/internal/seq"
	"mendel/internal/sketch"
	"mendel/internal/transport"
	"mendel/internal/vphash"
	"mendel/internal/wire"
)

// Cluster is a coordinator's view of a Mendel deployment: the shared
// topology and vp-prefix hash tree plus a transport to reach the storage
// nodes. It is safe for concurrent Search calls; Index calls must be
// serialized by the caller.
type Cluster struct {
	cfg    Config
	caller transport.Caller
	groups [][]string
	topo   *dht.Topology
	met    metric.Metric

	// Observability sinks; both may be nil (no-op). Set via SetObservability
	// before serving queries.
	reg    *obs.Registry
	tracer *obs.Tracer
	// sampler makes the head-based trace sampling decision once per query;
	// built from Config.TraceSampleRate, replaceable via SetTraceSampleRate.
	sampler *obs.Sampler
	// batcher, when non-nil, coalesces concurrent queries' group subqueries
	// into batch RPCs. Set via EnableFanOutCoalescing before serving
	// queries; read without synchronization by concurrent Searches.
	batcher *fanoutBatcher
	// prefilter selects the sketch-based group prefilter consulted before
	// fan-out. Set via SetPrefilterMode before serving queries; read
	// without synchronization by concurrent Searches.
	prefilter PrefilterMode

	mu            sync.RWMutex
	hashTree      *vphash.Tree
	seqRing       *dht.Ring // sequence-repository placement over all nodes
	names         map[seq.ID]string
	lengths       map[seq.ID]int
	totalResidues int
	nextID        seq.ID
	rng           *rand.Rand

	// groupSketches and sketchComplete are the coordinator's prefilter
	// view: the per-group merges of the node k-mer sketches pulled by
	// refreshSketches. A group may be skipped only while its sketch is
	// complete (every member contributed).
	groupSketches  map[int]*sketch.Sketch
	sketchComplete map[int]bool
	// seqSketches holds each indexed sequence's bottom-k MinHash values —
	// the database side of the alignment-free Similarity mode, persisted in
	// the manifest.
	seqSketches map[seq.ID][]uint64

	// hints is the hinted-handoff queue: writes that could not reach their
	// replica during ingest, parked for replay when the node recovers.
	hints *hintStore
	// repairPending collects group IDs that a partial query flagged for
	// read-repair; the health monitor drains it with scoped repairs.
	repairMu      sync.Mutex
	repairPending map[int]bool
}

// NewCluster creates a coordinator for the given group layout. No node is
// contacted until Index runs.
func NewCluster(cfg Config, caller transport.Caller, groups [][]string) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(groups) != cfg.Groups {
		return nil, fmt.Errorf("core: %d group lists for %d configured groups", len(groups), cfg.Groups)
	}
	topo, err := dht.NewTopology(groups, 0)
	if err != nil {
		return nil, err
	}
	seqRing := dht.NewRing(0)
	for _, n := range topo.AllNodes() {
		seqRing.Add(n)
	}
	return &Cluster{
		cfg:           cfg,
		caller:        caller,
		groups:        groups,
		topo:          topo,
		met:           metric.ForKind(cfg.Kind),
		sampler:       obs.NewSampler(cfg.traceSampleRate()),
		seqRing:       seqRing,
		names:         make(map[seq.ID]string),
		lengths:       make(map[seq.ID]int),
		seqSketches:   make(map[seq.ID][]uint64),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		hints:         newHintStore(),
		repairPending: make(map[int]bool),
	}, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// SetObservability attaches the coordinator's observability sinks: reg
// accumulates query counters and stage-latency histograms, tracer records a
// span tree per query covering the paper's five pipeline stages. Either may
// be nil (that sink stays off). Call before serving queries; the fields are
// read without synchronization by concurrent Searches.
func (c *Cluster) SetObservability(reg *obs.Registry, tracer *obs.Tracer) {
	c.reg = reg
	c.tracer = tracer
	reg.SetGaugeFunc("hints_pending", c.hints.pending)
	// Forward the registry to the transport when it supports observation
	// (the TCP client, possibly behind a ResilientCaller), so rpc_bytes and
	// rpc_dials counters reach /metrics from serving processes too.
	if reg != nil {
		if o, ok := c.caller.(interface{ Observe(*obs.Registry) }); ok {
			o.Observe(reg)
		}
	}
}

// Registry returns the coordinator's metrics registry (nil if unset).
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// Tracer returns the coordinator's query tracer (nil if unset).
func (c *Cluster) Tracer() *obs.Tracer { return c.tracer }

// SetTraceSampleRate replaces the head-based trace sampling rate installed
// from Config.TraceSampleRate (same semantics: >= 1 traces everything,
// negative disables). Like SetObservability, call before serving queries;
// `mendel explain` uses it to force full sampling for its one diagnostic
// query.
func (c *Cluster) SetTraceSampleRate(rate float64) {
	c.sampler = obs.NewSampler(rate)
}

// FetchTrace assembles the full cross-node span tree of a trace: the
// coordinator's own retained roots (which carry the node subtrees shipped
// back inline in GroupSearchResult), plus every root pulled from the
// storage nodes via wire.TraceFetch — the only way to recover spans that
// are not shipped inline, such as fetch_region spans recorded during
// gapped extension. Unreachable nodes and nodes predating TraceFetch are
// skipped: assembly degrades to whatever the reachable cluster retains.
// Returns nil when nothing is known about the trace.
func (c *Cluster) FetchTrace(ctx context.Context, traceID string) []obs.SpanSnapshot {
	if traceID == "" {
		return nil
	}
	spans := c.tracer.Trace(traceID)
	nodes := c.topology().AllNodes()
	resps, errs := transport.BroadcastAll(ctx, c.caller, nodes, wire.TraceFetch{TraceID: traceID})
	for i, r := range resps {
		if errs[i] != nil {
			continue
		}
		if tfr, ok := r.(wire.TraceFetchResult); ok {
			spans = append(spans, tfr.Spans...)
		}
	}
	return obs.AssembleTrace(spans)
}

// TraceSource adapts FetchTrace to the obs HTTP surface, so a coordinator
// process can serve /debug/trace/{id} with cluster-wide assembly:
//
//	obs.ServeWithTraces(addr, reg, tracer, cluster.TraceSource(ctx))
func (c *Cluster) TraceSource(ctx context.Context) obs.TraceSource {
	return func(traceID string) []obs.SpanSnapshot {
		return c.FetchTrace(ctx, traceID)
	}
}

// MetricsDetailed collects an observability snapshot from every reachable
// node plus the addresses of the nodes that could not be reached, mirroring
// StatsDetailed. Nodes without an attached registry report an empty
// snapshot. The per-node bucket vectors share a fixed layout, so callers can
// merge them cluster-wide with obs.MergeSnapshots.
func (c *Cluster) MetricsDetailed(ctx context.Context) ([]wire.MetricsResult, []string, error) {
	nodes := c.topology().AllNodes()
	resps, errs := transport.BroadcastAll(ctx, c.caller, nodes, wire.Metrics{})
	out := make([]wire.MetricsResult, 0, len(resps))
	var down []string
	for i, r := range resps {
		if errs[i] != nil {
			if errors.Is(errs[i], transport.ErrUnreachable) {
				down = append(down, nodes[i])
				continue
			}
			return nil, nil, fmt.Errorf("core: metrics from %s: %w", nodes[i], errs[i])
		}
		mr, ok := r.(wire.MetricsResult)
		if !ok {
			return nil, nil, fmt.Errorf("core: metrics from %s: malformed reply %T", nodes[i], r)
		}
		out = append(out, mr)
	}
	return out, down, nil
}

// HistoryDetailed pulls the windowed time-series telemetry of every
// reachable node (trimmed to the trailing window; 0 = everything each node
// retains), plus the addresses of nodes that could not be reached,
// mirroring MetricsDetailed. Nodes without an attached sampler report an
// empty history. Callers merge the per-node series cluster-wide with
// obs.MergeHistories.
func (c *Cluster) HistoryDetailed(ctx context.Context, window time.Duration) ([]wire.MetricsHistoryResult, []string, error) {
	nodes := c.topology().AllNodes()
	resps, errs := transport.BroadcastAll(ctx, c.caller, nodes, wire.MetricsHistory{WindowNS: window.Nanoseconds()})
	out := make([]wire.MetricsHistoryResult, 0, len(resps))
	var down []string
	for i, r := range resps {
		if errs[i] != nil {
			if errors.Is(errs[i], transport.ErrUnreachable) {
				down = append(down, nodes[i])
				continue
			}
			return nil, nil, fmt.Errorf("core: history from %s: %w", nodes[i], errs[i])
		}
		hr, ok := r.(wire.MetricsHistoryResult)
		if !ok {
			return nil, nil, fmt.Errorf("core: history from %s: malformed reply %T", nodes[i], r)
		}
		out = append(out, hr)
	}
	return out, down, nil
}

// HistorySource adapts HistoryDetailed — plus the coordinator's own local
// sampler, which carries the gateway and coordinator-side metrics — to the
// obs HTTP surface, so a serving process exposes one cluster-wide
// /metrics/history endpoint:
//
//	surface.Cluster = cluster.HistorySource(ctx, localSeries)
func (c *Cluster) HistorySource(ctx context.Context, local *obs.TimeSeries) obs.HistorySource {
	return func(window time.Duration, perNode bool) (obs.ClusterHistory, error) {
		results, down, err := c.HistoryDetailed(ctx, window)
		if err != nil {
			return obs.ClusterHistory{}, err
		}
		histories := make([]obs.History, 0, len(results)+1)
		if lh := local.History(window); len(lh.Points) > 0 {
			if lh.Node == "" {
				lh.Node = "coordinator"
			}
			histories = append(histories, lh)
		}
		for _, r := range results {
			h := r.History
			if h.Node == "" {
				h.Node = r.Node
			}
			histories = append(histories, h)
		}
		ch := obs.ClusterHistory{Merged: obs.MergeHistories(histories...), Down: down}
		if perNode {
			ch.Nodes = histories
		}
		return ch, nil
	}
}

// Topology exposes the node layout for diagnostics.
func (c *Cluster) Topology() *dht.Topology { return c.topology() }

// topology returns the current topology snapshot. The returned value is
// immutable — membership changes swap in a freshly built topology under
// c.mu rather than mutating the shared one — so callers may use it without
// holding the lock, and a concurrent AddNode/RemoveNode can never race an
// in-flight fan-out.
func (c *Cluster) topology() *dht.Topology {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.topo
}

// TotalResidues returns the indexed database size in residues, the n of
// E-value statistics.
func (c *Cluster) TotalResidues() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.totalResidues
}

// NumSequences returns the number of indexed reference sequences.
func (c *Cluster) NumSequences() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.names)
}

// NameOf resolves a global sequence ID to its FASTA name.
func (c *Cluster) NameOf(id seq.ID) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.names[id]
}

// Stats collects storage counters from every reachable node (Fig. 5's raw
// data), tolerating individual down nodes: their counters are simply
// missing from the result. Use StatsDetailed to learn which nodes were
// unreachable.
func (c *Cluster) Stats(ctx context.Context) ([]wire.StatsResult, error) {
	out, _, err := c.StatsDetailed(ctx)
	return out, err
}

// StatsDetailed is Stats plus the addresses of the nodes that could not be
// reached. Only a malformed reply or an application-level failure from a
// live node is an error.
func (c *Cluster) StatsDetailed(ctx context.Context) ([]wire.StatsResult, []string, error) {
	nodes := c.topology().AllNodes()
	resps, errs := transport.BroadcastAll(ctx, c.caller, nodes, wire.Stats{})
	out := make([]wire.StatsResult, 0, len(resps))
	var down []string
	for i, r := range resps {
		if errs[i] != nil {
			if errors.Is(errs[i], transport.ErrUnreachable) {
				down = append(down, nodes[i])
				continue
			}
			return nil, nil, fmt.Errorf("core: stats from %s: %w", nodes[i], errs[i])
		}
		sr, ok := r.(wire.StatsResult)
		if !ok {
			return nil, nil, fmt.Errorf("core: stats from %s: malformed reply %T", nodes[i], r)
		}
		out = append(out, sr)
	}
	return out, down, nil
}

// Ping verifies every node is reachable.
func (c *Cluster) Ping(ctx context.Context) error {
	_, err := transport.Broadcast(ctx, c.caller, c.topology().AllNodes(), wire.Ping{})
	return err
}

// groupsSnapshot returns a copy of the current group membership lists.
func (c *Cluster) groupsSnapshot() [][]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([][]string, len(c.groups))
	for i, members := range c.groups {
		out[i] = append([]string(nil), members...)
	}
	return out
}

// noteFailedGroups schedules a scoped read-repair of groups that failed to
// answer a query; the health monitor drains the set once the group has live
// members again. Scheduling is idempotent per group.
func (c *Cluster) noteFailedGroups(groups []int) {
	c.repairMu.Lock()
	for _, g := range groups {
		if !c.repairPending[g] {
			c.repairPending[g] = true
			c.reg.Counter("read_repair_scheduled").Inc()
		}
	}
	c.repairMu.Unlock()
}

// takePendingRepairGroups drains the read-repair schedule, returning the
// group IDs in ascending order.
func (c *Cluster) takePendingRepairGroups() []int {
	c.repairMu.Lock()
	defer c.repairMu.Unlock()
	if len(c.repairPending) == 0 {
		return nil
	}
	out := make([]int, 0, len(c.repairPending))
	for g := range c.repairPending {
		out = append(out, g)
	}
	c.repairPending = make(map[int]bool)
	sort.Ints(out)
	return out
}

// PendingRepairGroups reports how many groups are awaiting read-repair.
func (c *Cluster) PendingRepairGroups() int {
	c.repairMu.Lock()
	defer c.repairMu.Unlock()
	return len(c.repairPending)
}

// seqKey is the placement key of a sequence in the repository ring.
func seqKey(id seq.ID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return b[:]
}

// newClusterRNG builds the deterministic entry-point selector.
func newClusterRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// queryEps returns the configured or derived multi-group branching radius.
func (c *Cluster) queryEps() int {
	if c.cfg.QueryEps > 0 {
		return c.cfg.QueryEps
	}
	return c.met.MaxPerResidue() * c.cfg.BlockLen / 8
}
