package core

import (
	"context"
	"fmt"
	"sort"

	"mendel/internal/seq"
	"mendel/internal/wire"
)

// TranslatedHit is a protein-database hit found by translating a DNA query:
// Frame identifies the reading frame (0-2 forward, 3-5 reverse complement)
// whose conceptual translation the alignment's query coordinates refer to.
type TranslatedHit struct {
	Hit
	Frame int
}

// SearchTranslated evaluates a DNA query against a protein cluster by
// conceptually translating it in all six reading frames and searching each
// (the classic blastx workflow). Hits carry their frame; results are ranked
// by E-value across frames.
func (c *Cluster) SearchTranslated(ctx context.Context, dnaQuery []byte, p wire.Params) ([]TranslatedHit, error) {
	if c.cfg.Kind != seq.Protein {
		return nil, fmt.Errorf("core: translated search requires a protein cluster, this one indexes %v", c.cfg.Kind)
	}
	q := append([]byte(nil), dnaQuery...)
	if err := seq.DNAAlphabet.Normalize(q); err != nil {
		return nil, err
	}
	var out []TranslatedHit
	searched := 0
	for frame := 0; frame < 6; frame++ {
		protein, err := seq.Translate(q, frame)
		if err != nil {
			continue // frame too short
		}
		if len(protein) < c.cfg.BlockLen {
			continue
		}
		searched++
		hits, err := c.Search(ctx, protein, p)
		if err != nil {
			return nil, err
		}
		for _, h := range hits {
			out = append(out, TranslatedHit{Hit: h, Frame: frame})
		}
	}
	if searched == 0 {
		return nil, fmt.Errorf("core: query of %d nt has no frame translating to >= %d residues",
			len(dnaQuery), c.cfg.BlockLen)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].E != out[j].E {
			return out[i].E < out[j].E
		}
		if out[i].Alignment.Score != out[j].Alignment.Score {
			return out[i].Alignment.Score > out[j].Alignment.Score
		}
		return out[i].Frame < out[j].Frame
	})
	return out, nil
}
