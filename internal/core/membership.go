package core

import (
	"context"
	"errors"
	"fmt"

	"mendel/internal/dht"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// AddNode joins a fresh storage node to group g at runtime — the
// incremental scalability the DHT design targets (§I: "commodity hardware
// can be added incrementally"). The new node is bootstrapped with the
// current shared state and every existing node learns the new topology.
//
// Existing data does not move: the per-group consistent ring only steers
// future block placements toward the new node, and queries remain correct
// because group fan-out reaches every member. Sequence-repository reads
// tolerate the remapping by probing a couple of ring successors past the
// configured replica set (see fetchRegion).
func (c *Cluster) AddNode(ctx context.Context, g int, addr string) error {
	c.mu.Lock()
	if c.hashTree == nil {
		c.mu.Unlock()
		return ErrNotIndexed
	}
	if g < 0 || g >= len(c.groups) {
		c.mu.Unlock()
		return fmt.Errorf("core: group %d out of range", g)
	}
	enc, err := c.hashTree.MarshalBinary()
	if err != nil {
		c.mu.Unlock()
		return err
	}
	newGroups := make([][]string, len(c.groups))
	for i, members := range c.groups {
		newGroups[i] = append([]string(nil), members...)
	}
	newGroups[g] = append(newGroups[g], addr)
	c.mu.Unlock()
	// Build the successor topology up front: it validates the join (duplicate
	// addresses, empty groups) before any node is contacted, and the swap
	// below publishes it atomically — concurrent searches keep reading the
	// old immutable topology until the new one is committed, so a membership
	// change never races an in-flight fan-out.
	newTopo, err := dht.NewTopology(newGroups, 0)
	if err != nil {
		return err
	}

	boot := wire.Bootstrap{
		HashTree:     enc,
		Metric:       c.met.Name(),
		BlockLen:     c.cfg.BlockLen,
		Margin:       c.cfg.Margin,
		Groups:       newGroups,
		Kind:         c.cfg.Kind,
		SearchBudget: c.cfg.searchBudget(),
	}
	if _, err := c.caller.Call(ctx, addr, boot); err != nil {
		return fmt.Errorf("core: bootstrapping new node %s: %w", addr, err)
	}

	// Commit locally, then inform the rest of the cluster.
	c.mu.Lock()
	c.topo = newTopo
	c.groups = newGroups
	c.seqRing.Add(addr)
	c.mu.Unlock()
	// Nodes that are down right now miss the update; a HealthMonitor re-pushes
	// the current topology (or re-bootstraps a node that restarted empty) as
	// part of the recovery sequence when they return.
	_, err = c.broadcastTopology(ctx, addr)
	return err
}

// RemoveNode gracefully removes a node from the cluster. Blocks and
// sequence shards held only by that node become unavailable unless the
// cluster was configured with Replicas >= 2, in which case queries keep
// full recall from the surviving copies.
func (c *Cluster) RemoveNode(ctx context.Context, addr string) error {
	g, ok := c.topology().GroupOf(addr)
	if !ok {
		return fmt.Errorf("core: unknown node %q", addr)
	}
	c.mu.RLock()
	newGroups := make([][]string, len(c.groups))
	for i, members := range c.groups {
		for _, m := range members {
			if m != addr {
				newGroups[i] = append(newGroups[i], m)
			}
		}
	}
	c.mu.RUnlock()
	if len(newGroups[g]) == 0 {
		return fmt.Errorf("core: node %q is the last member of group %d", addr, g)
	}
	// Same copy-on-write commit as AddNode: concurrent searches see either
	// the old or the new topology, never a half-mutated one.
	newTopo, err := dht.NewTopology(newGroups, 0)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.topo = newTopo
	c.groups = newGroups
	c.seqRing.Remove(addr)
	c.mu.Unlock()
	// The removed node itself is typically the unreachable one; a dead
	// node must not block its own removal.
	_, err = c.broadcastTopology(ctx, "")
	return err
}

// broadcastTopology sends the current group lists to every node except
// skip (which already has them from its Bootstrap). Individual unreachable
// nodes do not fail the broadcast — a membership change must not be blocked
// by the very failures it often reacts to — and are returned as missed so
// callers can report them; a node that answers with an application error
// does fail it.
func (c *Cluster) broadcastTopology(ctx context.Context, skip string) (missed []string, err error) {
	c.mu.RLock()
	groups := c.groups
	topo := c.topo
	c.mu.RUnlock()
	var targets []string
	for _, n := range topo.AllNodes() {
		if n != skip {
			targets = append(targets, n)
		}
	}
	_, errs := transport.BroadcastAll(ctx, c.caller, targets, wire.UpdateTopology{Groups: groups})
	for i, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, transport.ErrUnreachable) {
			missed = append(missed, targets[i])
			continue
		}
		return missed, fmt.Errorf("core: topology broadcast to %s: %w", targets[i], e)
	}
	return missed, nil
}
