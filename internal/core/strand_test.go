package core

import (
	"context"
	"math/rand"
	"testing"

	"mendel/internal/seq"
	"mendel/internal/wire"
)

func dnaCluster(t *testing.T) (*InProcess, *seq.Set, *rand.Rand) {
	t.Helper()
	cfg := DefaultConfig(seq.DNA)
	cfg.Groups = 2
	cfg.SampleSize = 300
	ip, err := NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	set := seq.NewSet(seq.DNA)
	const dna = "ACGT"
	for i := 0; i < 10; i++ {
		data := make([]byte, 500)
		for j := range data {
			data[j] = dna[rng.Intn(4)]
		}
		if _, err := set.Add("chr", data); err != nil {
			t.Fatal(err)
		}
	}
	if err := ip.Index(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	return ip, set, rng
}

func dnaParams() wire.Params {
	p := wire.DefaultParams()
	p.Matrix = "DNA"
	p.Identity = 0.8
	return p
}

func TestMinusStrandQueryMissedWithoutBothStrands(t *testing.T) {
	ip, set, _ := dnaCluster(t)
	ctx := context.Background()
	// The query is the reverse complement of a database excerpt: a
	// plus-strand-only search should not find a strong alignment.
	excerpt := seq.MustNew(0, "x", seq.DNA, string(set.Seqs[3].Data[100:300]))
	query := excerpt.ReverseComplement()
	p := dnaParams()
	p.MaxE = 1e-20
	hits, err := ip.Search(ctx, query, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Seq == 3 && h.Alignment.QLen() > 150 {
			t.Fatalf("plus-strand search found the minus-strand homolog: %+v", h)
		}
	}
}

func TestBothStrandsFindsMinusStrandHomolog(t *testing.T) {
	ip, set, _ := dnaCluster(t)
	ctx := context.Background()
	excerpt := seq.MustNew(0, "x", seq.DNA, string(set.Seqs[3].Data[100:300]))
	query := excerpt.ReverseComplement()
	p := dnaParams()
	p.BothStrands = true
	hits, err := ip.Search(ctx, query, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("both-strands search found nothing")
	}
	top := hits[0]
	if top.Seq != 3 || top.Strand != '-' {
		t.Fatalf("top hit = seq %d strand %c, want seq 3 strand '-'", top.Seq, top.Strand)
	}
	if top.Alignment.SStart > 100 || top.Alignment.SEnd < 300 {
		t.Fatalf("span = %+v", top.Alignment.Segment)
	}
}

func TestPlusStrandHitsMarkedPlus(t *testing.T) {
	ip, set, _ := dnaCluster(t)
	ctx := context.Background()
	p := dnaParams()
	p.BothStrands = true
	hits, err := ip.Search(ctx, set.Seqs[6].Data[50:250], p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 6 || hits[0].Strand != '+' {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestBothStrandsIgnoredForProtein(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(78))
	ctx := context.Background()
	db := buildTestDB(rng, 10, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	p := defaultTestParams()
	p.BothStrands = true // no-op for protein
	hits, err := ip.Search(ctx, db.Seqs[2].Data[40:160], p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Strand != '+' {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestReverseComplementHelper(t *testing.T) {
	if got := string(reverseComplement([]byte("AACGTN"))); got != "NACGTT" {
		t.Fatalf("revcomp = %q", got)
	}
}
