package core

import (
	"context"
	"runtime"
	"sync"

	"mendel/internal/wire"
)

// BatchResult pairs one query of a SearchAll call with its outcome.
type BatchResult struct {
	Index int
	Hits  []Hit
	Err   error
}

// SearchAll evaluates many queries concurrently with bounded parallelism —
// the throughput mode of the paper's metagenomics scenario (§I-A), where a
// sequencer emits far more reads than a user types queries. Results are
// returned in input order; individual query failures are reported per entry
// rather than failing the batch. concurrency <= 0 selects half the CPUs.
func (c *Cluster) SearchAll(ctx context.Context, queries [][]byte, p wire.Params, concurrency int) []BatchResult {
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0) / 2
		if concurrency < 1 {
			concurrency = 1
		}
	}
	if concurrency > len(queries) {
		concurrency = len(queries)
	}
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(concurrency)
	for w := 0; w < concurrency; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				hits, err := c.Search(ctx, queries[i], p)
				out[i] = BatchResult{Index: i, Hits: hits, Err: err}
			}
		}()
	}
	for i := range queries {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}
