package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mendel/internal/obs"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// CoalesceConfig tunes cross-query fan-out coalescing. Zero values select
// the defaults (2ms tick, 32 queries per batch).
type CoalesceConfig struct {
	// Tick is how long the first query queued for a group waits for
	// companions before the batch is flushed. It bounds the latency a query
	// can pay for coalescing.
	Tick time.Duration
	// MaxBatch flushes a group's queue immediately once this many queries
	// are waiting, so a hot group never builds a batch larger than one
	// entry point comfortably serves.
	MaxBatch int
}

func (cc CoalesceConfig) withDefaults() CoalesceConfig {
	if cc.Tick <= 0 {
		cc.Tick = 2 * time.Millisecond
	}
	if cc.MaxBatch <= 0 {
		cc.MaxBatch = 32
	}
	return cc
}

// EnableFanOutCoalescing routes concurrent queries' per-group subqueries
// through a shared batcher: all GroupSearch calls targeting the same group
// within one tick travel as a single wire.GroupSearchBatch RPC, amortizing
// transport round-trips when many queries are in flight (the gateway's
// serving mode). Queries keep their individual results and trace contexts;
// a batch of one behaves exactly like the direct path. Coalescing composes
// with the sketch prefilter: searchStrand prunes groupOffsets before the
// fan-out reaches the batcher, so a skipped group contributes nothing to any
// batch. Like SetObservability, call before serving queries.
func (c *Cluster) EnableFanOutCoalescing(cfg CoalesceConfig) {
	c.batcher = newFanoutBatcher(c, cfg)
}

// DisableFanOutCoalescing tears the batcher down, failing any queries still
// waiting in a batch queue. Only for tests and orderly shutdown; like
// EnableFanOutCoalescing it must not race in-flight searches.
func (c *Cluster) DisableFanOutCoalescing() {
	if c.batcher != nil {
		c.batcher.close()
		c.batcher = nil
	}
}

// errCoalescerClosed fails queries caught in the queue by a shutdown.
var errCoalescerClosed = errors.New("core: fan-out coalescer closed")

// batchOutcome is one query's share of a batch reply.
type batchOutcome struct {
	res wire.GroupSearchResult
	err error
}

// batchWaiter is one query's pending subquery in a group queue.
type batchWaiter struct {
	item wire.GroupSearch
	tc   obs.TraceContext
	done chan batchOutcome // buffered(1): send never blocks, waiter may abandon
}

// fanoutBatcher coalesces concurrent queries' GroupSearch calls into
// per-group batch RPCs. The first query to queue for a group arms that
// group's tick timer; the batch flushes at the tick or as soon as MaxBatch
// queries are waiting, whichever comes first.
type fanoutBatcher struct {
	c      *Cluster
	cfg    CoalesceConfig
	ctx    context.Context // bounds batch RPCs to the batcher's lifetime
	cancel context.CancelFunc

	mu      sync.Mutex
	closed  bool
	pending map[int][]*batchWaiter
	timer   map[int]*time.Timer
}

func newFanoutBatcher(c *Cluster, cfg CoalesceConfig) *fanoutBatcher {
	ctx, cancel := context.WithCancel(context.Background())
	return &fanoutBatcher{
		c:       c,
		cfg:     cfg.withDefaults(),
		ctx:     ctx,
		cancel:  cancel,
		pending: make(map[int][]*batchWaiter),
		timer:   make(map[int]*time.Timer),
	}
}

// do queues one group subquery, waits for its batch to complete, and
// returns this query's share of the reply. Cancelling ctx abandons the wait
// (the batch itself keeps running for its other members).
func (b *fanoutBatcher) do(ctx context.Context, msg wire.GroupSearch, tc obs.TraceContext) (wire.GroupSearchResult, error) {
	w := &batchWaiter{item: msg, tc: tc, done: make(chan batchOutcome, 1)}
	g := msg.Group
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return wire.GroupSearchResult{}, errCoalescerClosed
	}
	b.pending[g] = append(b.pending[g], w)
	var ready []*batchWaiter
	switch {
	case len(b.pending[g]) >= b.cfg.MaxBatch:
		ready = b.takeLocked(g)
	case len(b.pending[g]) == 1:
		b.timer[g] = time.AfterFunc(b.cfg.Tick, func() { b.flush(g) })
	}
	b.mu.Unlock()
	if ready != nil {
		go b.send(g, ready)
	}
	select {
	case out := <-w.done:
		return out.res, out.err
	case <-ctx.Done():
		return wire.GroupSearchResult{}, ctx.Err()
	}
}

// takeLocked empties group g's queue and disarms its timer. Caller holds b.mu.
func (b *fanoutBatcher) takeLocked(g int) []*batchWaiter {
	ws := b.pending[g]
	delete(b.pending, g)
	if t := b.timer[g]; t != nil {
		t.Stop()
		delete(b.timer, g)
	}
	return ws
}

// flush is the tick-timer callback: sends whatever is queued for group g.
func (b *fanoutBatcher) flush(g int) {
	b.mu.Lock()
	ws := b.takeLocked(g)
	b.mu.Unlock()
	if len(ws) > 0 {
		b.send(g, ws)
	}
}

// send ships one batch to a group entry point, retrying with the next
// member on unreachability exactly like the direct fan-out path, and
// distributes the per-item results. A batch-level failure (every member
// down, malformed reply) fails every query in the batch; a per-item error
// string fails only that query.
func (b *fanoutBatcher) send(g int, ws []*batchWaiter) {
	req := wire.GroupSearchBatch{
		Group: g,
		Items: make([]wire.GroupSearch, len(ws)),
		TCs:   make([]obs.TraceContext, len(ws)),
	}
	for i, w := range ws {
		req.Items[i] = w.item
		req.TCs[i] = w.tc
	}
	if reg := b.c.reg; reg != nil {
		reg.Counter("coalesce_batches").Inc()
		reg.Counter("coalesce_batched_queries").Add(int64(len(ws)))
		reg.Histogram("coalesce_batch_size").Observe(int64(len(ws)))
	}
	fail := func(err error) {
		for _, w := range ws {
			w.done <- batchOutcome{err: err}
		}
	}
	members := b.c.topology().GroupNodes(g)
	if len(members) == 0 {
		fail(fmt.Errorf("core: group %d has no members", g))
		return
	}
	b.c.mu.Lock()
	start := b.c.rng.Intn(len(members))
	b.c.mu.Unlock()
	var lastErr error
	for i := 0; i < len(members); i++ {
		entry := members[(start+i)%len(members)]
		resp, err := b.c.caller.Call(b.ctx, entry, req)
		if err != nil {
			lastErr = err
			if errors.Is(err, transport.ErrUnreachable) {
				continue
			}
			break
		}
		bres, ok := resp.(wire.GroupSearchBatchResult)
		if !ok {
			lastErr = fmt.Errorf("core: group %d entry %s: malformed batch reply %T", g, entry, resp)
			break
		}
		if len(bres.Items) != len(ws) || len(bres.Errs) != len(ws) {
			lastErr = fmt.Errorf("core: group %d entry %s: batch reply carries %d results for %d items",
				g, entry, len(bres.Items), len(ws))
			break
		}
		for i, w := range ws {
			if bres.Errs[i] != "" {
				w.done <- batchOutcome{err: errors.New(bres.Errs[i])}
				continue
			}
			w.done <- batchOutcome{res: bres.Items[i]}
		}
		return
	}
	fail(lastErr)
}

// close fails every queued query and stops accepting new ones.
func (b *fanoutBatcher) close() {
	b.mu.Lock()
	b.closed = true
	var all []*batchWaiter
	for g := range b.pending {
		all = append(all, b.takeLocked(g)...)
	}
	b.mu.Unlock()
	for _, w := range all {
		w.done <- batchOutcome{err: errCoalescerClosed}
	}
	b.cancel()
}
