package core

import (
	"context"
	"math/rand"
	"testing"

	"mendel/internal/node"
	"mendel/internal/seq"
	"mendel/internal/wire"
)

func TestAddNodeJoinsAndReceivesNewBlocks(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(91))
	ctx := context.Background()

	first := buildTestDB(rng, 15, 300)
	if err := ip.Index(ctx, first); err != nil {
		t.Fatal(err)
	}

	// Join a fresh node to group 0 at runtime.
	joiner := node.New("node-new", ip.Net)
	ip.Net.Register("node-new", joiner)
	if err := ip.AddNode(ctx, 0, "node-new"); err != nil {
		t.Fatal(err)
	}

	// Old data is still fully searchable.
	hits, err := ip.Search(ctx, first.Seqs[8].Data[40:160], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 8 {
		t.Fatalf("pre-join data lost: %+v", hits)
	}

	// New data lands partly on the joiner.
	second := buildTestDB(rng, 15, 300)
	if err := ip.Index(ctx, second); err != nil {
		t.Fatal(err)
	}
	resp, err := joiner.Handle(ctx, wire.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	stats := resp.(wire.StatsResult)
	if stats.Blocks == 0 {
		t.Fatal("joined node received no blocks from post-join indexing")
	}

	// Post-join data is searchable, including what the joiner holds.
	hits, err = ip.Search(ctx, second.Seqs[4].Data[40:160], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 19 { // 15 + 4
		t.Fatalf("post-join data not found: %+v", hits)
	}
}

func TestAddNodeValidation(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	ctx := context.Background()
	if err := ip.AddNode(ctx, 0, "x"); err != ErrNotIndexed {
		t.Fatalf("pre-index join err = %v", err)
	}
	rng := rand.New(rand.NewSource(92))
	if err := ip.Index(ctx, buildTestDB(rng, 5, 250)); err != nil {
		t.Fatal(err)
	}
	if err := ip.AddNode(ctx, 99, "x"); err == nil {
		t.Error("out-of-range group accepted")
	}
	// Unreachable joiner: bootstrap must fail and topology stay intact.
	before := ip.Topology().NumNodes()
	if err := ip.AddNode(ctx, 0, "ghost"); err == nil {
		t.Error("unreachable joiner accepted")
	}
	if ip.Topology().NumNodes() != before {
		t.Error("failed join mutated topology")
	}
}

func TestRemoveNodeGraceful(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 400
	cfg.Replicas = 2
	ip, err := NewInProcess(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(93))
	ctx := context.Background()
	db := buildTestDB(rng, 15, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	victim := ip.Nodes[1].Addr()
	if err := ip.RemoveNode(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if ip.Topology().NumNodes() != 5 {
		t.Fatalf("nodes = %d", ip.Topology().NumNodes())
	}
	// With R=2 the removed node's data survives on its replicas.
	hits, err := ip.Search(ctx, db.Seqs[9].Data[50:170], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 9 {
		t.Fatalf("recall lost after graceful removal: %+v", hits)
	}
	if err := ip.RemoveNode(ctx, "nope"); err == nil {
		t.Error("unknown node removal accepted")
	}
}

func TestUpdateTopologyValidation(t *testing.T) {
	_, nodes, _ := testNodePair(t)
	// Node not in new topology.
	if _, err := nodes[0].Handle(context.Background(), wire.UpdateTopology{Groups: [][]string{{"other"}}}); err == nil {
		t.Error("exclusion accepted")
	}
	if _, err := nodes[0].Handle(context.Background(), wire.UpdateTopology{Groups: nil}); err == nil {
		t.Error("empty topology accepted")
	}
}

// testNodePair builds two bootstrapped nodes for message-level tests.
func testNodePair(t *testing.T) (*InProcess, []*node.Node, *seq.Set) {
	t.Helper()
	ip := newTestCluster(t, 2, 1)
	rng := rand.New(rand.NewSource(94))
	db := buildTestDB(rng, 5, 250)
	if err := ip.Index(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	return ip, ip.Nodes, db
}
