package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mendel/internal/node"
	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// The concurrency-correctness suite: a cluster serving many queries at once
// — with and without fan-out coalescing, during ingest, and under chaos
// faults — must answer every query bit-identically to a serial run on a
// twin cluster that never saw concurrency. Run with -race; the suite exists
// as much to drive the detector through the shared search state as to check
// the answers.

// twinClusters builds two independent, identically configured clusters over
// identically generated databases: one to load with concurrency, one to
// answer serially as ground truth.
func twinClusters(t *testing.T, nodes, groups, dbSeed int64) (live, twin *InProcess, liveDB, twinDB *seq.Set) {
	t.Helper()
	mk := func() (*InProcess, *seq.Set) {
		cfg := DefaultConfig(seq.Protein)
		cfg.Groups = int(groups)
		cfg.SampleSize = 500
		ip, err := NewInProcess(cfg, int(nodes))
		if err != nil {
			t.Fatal(err)
		}
		db := buildTestDB(rand.New(rand.NewSource(dbSeed)), 20, 300)
		if err := ip.Index(context.Background(), db); err != nil {
			t.Fatal(err)
		}
		return ip, db
	}
	live, liveDB = mk()
	twin, twinDB = mk()
	return live, twin, liveDB, twinDB
}

// testQueries derives q distinct queries from database windows, so most hit.
func testQueries(db *seq.Set, q int) [][]byte {
	rng := rand.New(rand.NewSource(99))
	out := make([][]byte, q)
	for i := range out {
		s := db.Seqs[rng.Intn(len(db.Seqs))]
		start := rng.Intn(s.Len() - 120)
		out[i] = s.Data[start : start+120]
	}
	return out
}

// assertSameHits compares two hit lists field by field.
func assertSameHits(t *testing.T, label string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, serial twin returned %d", label, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: hit %d differs\n  concurrent: %+v\n  serial:     %+v", label, i, got[i], want[i])
		}
	}
}

// runConcurrent fires workers×rounds searches over the query set and
// returns the per-query results of the last round (all rounds must agree
// with the serial twin; any error fails the test via t).
func runConcurrent(t *testing.T, ip *InProcess, queries [][]byte, workers, rounds int, p wire.Params) [][]Hit {
	t.Helper()
	var wg sync.WaitGroup
	errCh := make(chan error, workers*rounds*len(queries))
	results := make([][]Hit, len(queries))
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for qi, q := range queries {
					hits, err := ip.Search(context.Background(), q, p)
					if err != nil {
						errCh <- err
						return
					}
					mu.Lock()
					results[qi] = hits
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent search: %v", err)
	}
	return results
}

func TestConcurrentSearchMatchesSerialTwin(t *testing.T) {
	live, twin, liveDB, _ := twinClusters(t, 6, 2, 42)
	queries := testQueries(liveDB, 6)
	p := defaultTestParams()

	got := runConcurrent(t, live, queries, 8, 3, p)
	for qi, q := range queries {
		want, err := twin.Search(context.Background(), q, p)
		if err != nil {
			t.Fatal(err)
		}
		assertSameHits(t, "query", got[qi], want)
	}
}

func TestConcurrentSearchWithCoalescingMatchesSerialTwin(t *testing.T) {
	live, twin, liveDB, _ := twinClusters(t, 6, 2, 43)
	live.EnableFanOutCoalescing(CoalesceConfig{})
	defer live.DisableFanOutCoalescing()
	queries := testQueries(liveDB, 6)
	p := defaultTestParams()

	got := runConcurrent(t, live, queries, 8, 3, p)
	for qi, q := range queries {
		want, err := twin.Search(context.Background(), q, p)
		if err != nil {
			t.Fatal(err)
		}
		assertSameHits(t, "coalesced query", got[qi], want)
	}
}

// TestConcurrentSearchDuringIngest checks the membership/ingest/search race
// surface: queries run while a second data set is being ingested (they may
// see either index state, but must never error or corrupt), and once the
// ingest completes, answers must be bit-identical to a twin that indexed
// both sets with no concurrency at all.
func TestConcurrentSearchDuringIngest(t *testing.T) {
	live, twin, liveDB, _ := twinClusters(t, 6, 2, 44)
	live.EnableFanOutCoalescing(CoalesceConfig{})
	defer live.DisableFanOutCoalescing()
	queries := testQueries(liveDB, 4)
	p := defaultTestParams()
	ctx := context.Background()

	// Queries against the first data set keep running while the second
	// set is ingested concurrently.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := live.Search(ctx, queries[(w+i)%len(queries)], p); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	secondLive := buildTestDB(rand.New(rand.NewSource(45)), 10, 300)
	if err := live.Index(ctx, secondLive); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("search during ingest: %v", err)
	}

	// Ground truth: the twin ingests the same second set serially.
	secondTwin := buildTestDB(rand.New(rand.NewSource(45)), 10, 300)
	if err := twin.Index(ctx, secondTwin); err != nil {
		t.Fatal(err)
	}
	got := runConcurrent(t, live, queries, 6, 2, p)
	for qi, q := range queries {
		want, err := twin.Search(ctx, q, p)
		if err != nil {
			t.Fatal(err)
		}
		assertSameHits(t, "post-ingest query", got[qi], want)
	}
}

// TestConcurrentSearchUnderChaos runs the concurrent suite with one node
// down in each group on an R=2 cluster: recall must not degrade (every
// block and shard has a surviving copy) and concurrent answers must still
// match the serial twin running under the same failures.
func TestConcurrentSearchUnderChaos(t *testing.T) {
	seed := chaosSeed(t)
	mk := func() (*InProcess, *seq.Set) {
		cfg := DefaultConfig(seq.Protein)
		cfg.Groups = 2
		cfg.SampleSize = 500
		cfg.Replicas = 2
		ip, err := NewInProcess(cfg, 6, transport.WithChaosSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		db := buildTestDB(rand.New(rand.NewSource(71)), 20, 300)
		if err := ip.Index(context.Background(), db); err != nil {
			t.Fatal(err)
		}
		return ip, db
	}
	live, liveDB := mk()
	twin, _ := mk()
	live.EnableFanOutCoalescing(CoalesceConfig{})
	defer live.DisableFanOutCoalescing()

	// Pick one victim per group whose loss keeps every sequence reachable.
	var victims []string
	for _, v0 := range live.Topology().GroupNodes(0) {
		for _, v1 := range live.Topology().GroupNodes(1) {
			if !victimsCoverSomeSequence(live, liveDB, v0, v1) {
				victims = []string{v0, v1}
				break
			}
		}
		if victims != nil {
			break
		}
	}
	if victims == nil {
		t.Fatal("no survivable victim pair")
	}
	for _, v := range victims {
		live.Net.Fail(v)
		twin.Net.Fail(v)
	}

	queries := testQueries(liveDB, 4)
	p := defaultTestParams()
	got := runConcurrent(t, live, queries, 6, 3, p)
	for qi, q := range queries {
		want, err := twin.Search(context.Background(), q, p)
		if err != nil {
			t.Fatal(err)
		}
		assertSameHits(t, "chaos query", got[qi], want)
	}
}

// TestConcurrentMembershipChangeDuringSearch drives the copy-on-write
// topology swap: AddNode/RemoveNode flips while searches are in flight. The
// race detector owns correctness here; the assertion is only that no search
// errors and the final topology is the expected one.
func TestConcurrentMembershipChangeDuringSearch(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 500
	ip, err := NewInProcess(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	db := buildTestDB(rand.New(rand.NewSource(46)), 20, 300)
	ctx := context.Background()
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	queries := testQueries(db, 4)
	p := defaultTestParams()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ip.Search(ctx, queries[(w+i)%len(queries)], p); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Join a fresh node, then remove it again, twice, while queries fly.
	for i := 0; i < 2; i++ {
		addr := fmt.Sprintf("node-join-%d", i)
		joiner := node.New(addr, ip.Net)
		ip.Net.Register(addr, joiner)
		if err := ip.AddNode(ctx, 0, addr); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		if err := ip.RemoveNode(ctx, addr); err != nil {
			t.Fatalf("RemoveNode: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("search during membership change: %v", err)
	}
	if n := len(ip.Topology().AllNodes()); n != 6 {
		t.Fatalf("topology has %d nodes after join/leave cycles, want 6", n)
	}
}
