package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mendel/internal/align"
	"mendel/internal/anchorset"
	"mendel/internal/matrix"
	"mendel/internal/obs"
	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/vphash"
	"mendel/internal/wire"
)

// Hit is one reported alignment: the gapped local alignment in global
// subject coordinates plus its Karlin–Altschul statistics. For DNA queries
// searched with Params.BothStrands, Strand is '-' when the alignment is
// against the reverse complement of the query (query coordinates then refer
// to the reverse-complemented sequence); otherwise it is '+'.
type Hit struct {
	Seq       seq.ID
	Name      string
	Strand    byte
	Alignment align.Alignment
	Bits      float64
	E         float64
}

// ErrNotIndexed is returned by Search before any Index call has succeeded.
var ErrNotIndexed = errors.New("core: cluster has no indexed data")

// Trace records what one Search did at each stage of §V-B, for
// observability and for the turnaround breakdowns in the evaluation. The
// KNN/Ungapped/Aggregate durations are node-reported (summed across every
// storage node that served the query), so they can exceed the wall-clock
// FanOut time when nodes work in parallel.
type Trace struct {
	TraceID          string // 32-hex distributed trace ID; "" when unsampled
	QueryLen         int
	Strands          int
	SubQueries       int           // sliding windows produced
	GroupRequests    int           // group entry points contacted
	AnchorsReturned  int           // anchors received from all groups
	AnchorsMerged    int           // after system-entry-point merge
	GappedCandidates int           // anchors above the S threshold (capped)
	Hits             int           // alignments reported
	GroupsFailed     int           // groups whose every member was unreachable
	RegionsFailed    int           // anchors dropped: no repository shard answered
	GroupsSkipped    int           // groups dropped by the sketch prefilter
	PrefilterGuard   int           // windows dropped from every group (audited drops)
	Partial          bool          // results degraded by an outage above
	TreeVisits       int64         // vp-tree distance evaluations, all nodes
	Decompose        time.Duration // stage 1
	Prefilter        time.Duration // stage 1b: sketch consultation (0 when off)
	FanOut           time.Duration // stage 2 (includes group-side work)
	KNN              time.Duration // stage 2a: node-side vp-tree lookups (CPU-summed)
	Ungapped         time.Duration // stage 2b: node-side filter + ungapped extension
	Aggregate        time.Duration // stage 3: group + system entry point merges
	Extend           time.Duration // stage 4
	Total            time.Duration
}

// String renders a compact single-line summary.
func (t *Trace) String() string {
	s := fmt.Sprintf("query=%daa windows=%d groups=%d skipped=%d anchors=%d merged=%d gapped=%d hits=%d total=%v (fanout=%v knn=%v ungapped=%v aggregate=%v extend=%v visits=%d)",
		t.QueryLen, t.SubQueries, t.GroupRequests, t.GroupsSkipped, t.AnchorsReturned,
		t.AnchorsMerged, t.GappedCandidates, t.Hits, t.Total,
		t.FanOut, t.KNN, t.Ungapped, t.Aggregate, t.Extend, t.TreeVisits)
	if t.Partial {
		s += fmt.Sprintf(" PARTIAL(groups-failed=%d regions-failed=%d)", t.GroupsFailed, t.RegionsFailed)
	}
	if t.TraceID != "" {
		s += " trace=" + t.TraceID
	}
	return s
}

// Search evaluates an alignment query against the indexed database (§V-B).
// The query is decomposed into block-length subqueries stepped by k, each
// subquery is hashed to its group(s) and fanned out, anchors come back
// through the group entry points, and the system entry point (this call)
// merges them, performs banded gapped extension around the surviving
// anchors, and returns hits ranked by expectation value.
func (c *Cluster) Search(ctx context.Context, query []byte, p wire.Params) ([]Hit, error) {
	hits, _, err := c.SearchTrace(ctx, query, p)
	return hits, err
}

// SearchTrace is Search with a per-stage execution trace.
func (c *Cluster) SearchTrace(ctx context.Context, query []byte, p wire.Params) ([]Hit, *Trace, error) {
	hits, trace, err := c.searchTraced(ctx, query, p)
	if err != nil {
		return nil, nil, err
	}
	return hits, trace, nil
}

func (c *Cluster) searchTraced(ctx context.Context, query []byte, p wire.Params) ([]Hit, *Trace, error) {
	startTotal := time.Now()
	// Head-based sampling: with a tracer attached, either mint a fresh
	// trace identity (sampled — every span of this query, on every node,
	// is recorded under it) or propagate the unsampled sentinel so nodes
	// record nothing either. Without a tracer, the context stays bare and
	// nodes keep their pre-tracing local behaviour.
	var root *obs.Span
	var tc obs.TraceContext
	if c.tracer != nil {
		if c.sampler.Sample() {
			tc = obs.NewTraceContext()
			root = c.tracer.StartTrace("search", tc)
		} else {
			tc = obs.UnsampledContext()
		}
		ctx = obs.ContextWithTrace(ctx, tc)
	}
	defer root.End()
	if err := p.Validate(); err != nil {
		c.reg.Counter("search_rejected").Inc()
		return nil, nil, err
	}
	m, ok := matrix.ByName(p.Matrix)
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown scoring matrix %q", p.Matrix)
	}
	q := append([]byte(nil), query...)
	if err := seq.AlphabetFor(c.cfg.Kind).Normalize(q); err != nil {
		return nil, nil, err
	}
	if p.Mask {
		q = seq.MaskLowComplexity(q, c.cfg.Kind, 0, 0)
	}
	if len(q) < c.cfg.BlockLen {
		return nil, nil, fmt.Errorf("core: query of %d residues is shorter than the %d-residue index window", len(q), c.cfg.BlockLen)
	}
	c.mu.RLock()
	tree := c.hashTree
	total := c.totalResidues
	c.mu.RUnlock()
	if tree == nil {
		return nil, nil, ErrNotIndexed
	}
	kp, err := align.ParamsForMatrix(m)
	if err != nil {
		return nil, nil, err
	}

	trace := &Trace{QueryLen: len(q), Strands: 1}
	if root != nil {
		trace.TraceID = root.TraceID()
	}
	hits, err := c.searchStrand(ctx, q, p, m, kp, total, tree, '+', trace, root)
	if err != nil {
		c.reg.Counter("search_errors").Inc()
		return nil, nil, err
	}
	if p.BothStrands && c.cfg.Kind == seq.DNA {
		trace.Strands = 2
		rc := reverseComplement(q)
		minus, err := c.searchStrand(ctx, rc, p, m, kp, total, tree, '-', trace, root)
		if err != nil {
			c.reg.Counter("search_errors").Inc()
			return nil, nil, err
		}
		hits = append(hits, minus...)
	}

	// Stage 5: dedup, filter, rank.
	hits = dedupHits(hits)
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].E != hits[j].E {
			return hits[i].E < hits[j].E
		}
		if hits[i].Alignment.Score != hits[j].Alignment.Score {
			return hits[i].Alignment.Score > hits[j].Alignment.Score
		}
		return hits[i].Seq < hits[j].Seq
	})
	trace.Hits = len(hits)
	trace.Total = time.Since(startTotal)
	root.SetAttr("query_len", int64(trace.QueryLen))
	root.SetAttr("strands", int64(trace.Strands))
	root.SetAttr("hits", int64(trace.Hits))
	if trace.Partial {
		root.SetAttr("partial", 1)
		c.reg.Counter("search_partial").Inc()
	}
	c.reg.Counter("search_total").Inc()
	c.reg.Counter("search_hits").Add(int64(trace.Hits))
	// Sampled queries label the latency observation with their trace ID, so
	// the slowest traced query's exemplar in /metrics links straight to its
	// assembled tree at /debug/trace/{id}.
	c.reg.Histogram("search_ns").ObserveExemplar(trace.Total.Nanoseconds(), trace.TraceID)
	c.reg.Histogram("search_fanout_ns").Observe(trace.FanOut.Nanoseconds())
	c.reg.Histogram("search_gapped_ns").Observe(trace.Extend.Nanoseconds())
	return hits, trace, nil
}

// searchStrand runs stages 1-4 of the pipeline for one query orientation,
// accumulating counters and timings into trace and recording one child span
// per pipeline stage under root. The k-NN and ungapped-extension stages
// execute node-side; their spans are synthesized from the nanosecond
// breakdowns the storage nodes ship back in GroupSearchResult, so the span
// tree still covers all five stages of §V-B from the coordinator alone.
func (c *Cluster) searchStrand(ctx context.Context, q []byte, p wire.Params, m *matrix.Matrix, kp align.KarlinParams, total int, tree *vphash.Tree, strand byte, trace *Trace, root *obs.Span) ([]Hit, error) {
	// Stage 1: subquery decomposition and group routing.
	start := time.Now()
	spDecompose := root.Child("decompose")
	eps := c.queryEps()
	groupOffsets := make(map[int][]int)
	alphabet := seq.AlphabetFor(c.cfg.Kind)
	seq.WindowsCovering(q, c.cfg.BlockLen, p.Step, func(start int, window []byte) {
		// Windows dominated by ambiguity codes (from masking or from the
		// input itself) cannot seed meaningful matches; skip them rather
		// than fanning them out.
		ambiguous := 0
		for _, ch := range window {
			if alphabet.Ambiguous(ch) {
				ambiguous++
			}
		}
		if 2*ambiguous > len(window) {
			return
		}
		trace.SubQueries++
		for _, g := range tree.GroupsFor(window, eps) {
			groupOffsets[g] = append(groupOffsets[g], start)
		}
	})
	trace.Decompose += time.Since(start)
	spDecompose.SetAttr("windows", int64(trace.SubQueries))
	spDecompose.SetAttr("groups", int64(len(groupOffsets)))
	spDecompose.End()

	// Stage 1b: sketch prefilter. Groups whose merged Bloom signature
	// proves they cannot anchor this query leave the fan-out before any RPC
	// is issued; the escape hatch is SetPrefilterMode(PrefilterOff).
	if c.prefilter != PrefilterOff && len(groupOffsets) > 0 {
		start = time.Now()
		spPre := root.Child("prefilter")
		before := len(groupOffsets)
		skipped, guarded := c.prefilterGroups(q, groupOffsets)
		trace.GroupsSkipped += skipped
		trace.PrefilterGuard += guarded
		trace.Prefilter += time.Since(start)
		spPre.SetAttr("mode", int64(c.prefilter))
		spPre.SetAttr("groups_in", int64(before))
		spPre.SetAttr("skipped", int64(skipped))
		spPre.SetAttr("guard", int64(guarded))
		spPre.End()
		c.reg.Counter("prefilter_groups_skipped").Add(int64(skipped))
		c.reg.Counter("prefilter_false_drop_guard").Add(int64(guarded))
	}
	trace.GroupRequests += len(groupOffsets)

	// Stage 2: parallel fan-out to group entry points.
	start = time.Now()
	spFanOut := root.Child("fanout")
	anchors, gt, failedGroups, err := c.fanOut(ctx, q, groupOffsets, p, spFanOut)
	if err != nil {
		spFanOut.End()
		return nil, err
	}
	if len(failedGroups) > 0 {
		trace.GroupsFailed += len(failedGroups)
		trace.Partial = true
		// Read-repair: a partial answer is the system telling us a replica
		// set is degraded — schedule a scoped repair of the failed groups
		// rather than waiting for an operator to notice.
		c.noteFailedGroups(failedGroups)
	}
	trace.FanOut += time.Since(start)
	trace.AnchorsReturned += len(anchors)
	trace.KNN += time.Duration(gt.knnNs)
	trace.Ungapped += time.Duration(gt.extendNs)
	trace.TreeVisits += gt.visits
	spFanOut.SetAttr("groups", int64(len(groupOffsets)))
	spFanOut.SetAttr("groups_failed", int64(len(failedGroups)))
	spFanOut.SetAttr("anchors", int64(len(anchors)))
	// Stages 2a/2b ran inside the fan-out on the storage nodes; attach them
	// as completed children carrying the CPU time summed across all nodes.
	spFanOut.AddTimed("knn", time.Duration(gt.knnNs),
		obs.Attr{Key: "visits", Value: gt.visits})
	spFanOut.AddTimed("ungapped", time.Duration(gt.extendNs))
	spFanOut.End()

	// Stage 3: system entry point aggregation (the group entry points'
	// merge time, shipped back as mergeNs, counts toward this stage too).
	start = time.Now()
	merged := anchorset.Merge(anchors)
	aggregate := time.Since(start) + time.Duration(gt.mergeNs)
	trace.Aggregate += aggregate
	trace.AnchorsMerged += len(merged)
	root.AddTimed("aggregate", aggregate,
		obs.Attr{Key: "in", Value: int64(len(anchors))},
		obs.Attr{Key: "out", Value: int64(len(merged))})

	// Stage 4: gapped extension of anchors above the S threshold.
	start = time.Now()
	spGapped := root.Child("gapped")
	defer spGapped.End()
	var candidates []wire.Anchor
	for _, a := range merged {
		if kp.BitScore(a.Score) >= float64(p.GappedS) {
			candidates = append(candidates, a)
		}
	}
	candidates = anchorset.Best(candidates, c.cfg.MaxGapped)
	trace.GappedCandidates += len(candidates)
	gkp, err := align.GappedParamsForMatrix(m)
	if err != nil {
		return nil, err
	}
	// Region fetches issued below belong under the gapped span: nodes
	// record fetch_region spans with it as their remote parent, recovered
	// at assembly time via wire.TraceFetch.
	gctx := ctx
	if pc := spGapped.Context(); pc.Valid() {
		gctx = obs.ContextWithTrace(ctx, pc)
	}
	hits, regionsFailed, err := c.gappedExtend(gctx, q, candidates, p, m, gkp, total)
	if err != nil {
		return nil, err
	}
	if regionsFailed > 0 {
		trace.RegionsFailed += regionsFailed
		trace.Partial = true
	}
	trace.Extend += time.Since(start)
	spGapped.SetAttr("candidates", int64(len(candidates)))
	spGapped.SetAttr("hits", int64(len(hits)))
	spGapped.SetAttr("regions_failed", int64(regionsFailed))
	for i := range hits {
		hits[i].Strand = strand
	}
	return hits, nil
}

// reverseComplement returns the reverse complement of a normalized DNA
// sequence.
func reverseComplement(q []byte) []byte {
	a := seq.DNAAlphabet
	out := make([]byte, len(q))
	for i, ch := range q {
		out[len(q)-1-i] = a.Complement(ch)
	}
	return out
}

// groupTiming sums the node-side work breakdowns the group entry points
// ship back in GroupSearchResult: nanoseconds of vp-tree k-NN time, of
// filter + ungapped extension time, distance evaluations performed, and the
// group-level merge time. All are CPU-summed across nodes, not wall-clock.
type groupTiming struct {
	knnNs    int64
	extendNs int64
	visits   int64
	mergeNs  int64
}

// fanOut sends each group's subqueries to a group entry point, retrying
// with the next member if the chosen entry point is unreachable (the
// symmetric architecture makes any member a valid coordinator).
//
// When every member of a group is unreachable the behaviour depends on
// Config.AllowPartial: with it set (the default) the dead group is dropped
// and reported through the failed count so the surviving groups still
// answer; without it — or when no group answers at all — the query fails
// with the first error.
func (c *Cluster) fanOut(ctx context.Context, q []byte, groupOffsets map[int][]int, p wire.Params, sp *obs.Span) (anchors []wire.Anchor, gt groupTiming, failedGroups []int, err error) {
	type result struct {
		group   int
		anchors []wire.Anchor
		timing  groupTiming
		err     error
	}
	ch := make(chan result, len(groupOffsets))
	topo := c.topology()
	for g, offsets := range groupOffsets {
		go func(g int, offsets []int) {
			msg := wire.GroupSearch{
				Group:     g,
				Query:     q,
				Offsets:   offsets,
				WindowLen: c.cfg.BlockLen,
				Params:    p,
			}
			// One coordinator-side span per group RPC. For sampled traces
			// the entry point's group_search subtree (shipped back in the
			// reply) grafts under it, and the propagated context carries
			// this span's ID so the subtree links here during assembly.
			spG := sp.Child("group")
			spG.SetAttr("group", int64(g))
			spG.SetAttr("offsets", int64(len(offsets)))
			callCtx := ctx
			sampled := false
			if pc := spG.Context(); pc.Valid() {
				callCtx = obs.ContextWithTrace(ctx, pc)
				sampled = true
				// Bytes on the wire matter for explain; re-encoding the
				// request costs a sampled query one extra pass through the
				// binary codec, using a pooled scratch frame.
				spG.SetAttr("bytes_out", wireSize(msg))
			}
			var gsr wire.GroupSearchResult
			var callErr error
			if b := c.batcher; b != nil {
				gsr, callErr = b.do(callCtx, msg, spG.Context())
			} else {
				gsr, callErr = c.callGroupEntry(callCtx, topo.GroupNodes(g), msg, spG)
			}
			if callErr != nil {
				spG.SetAttr("failed", 1)
				spG.End()
				ch <- result{group: g, err: fmt.Errorf("core: group %d unreachable: %w", g, callErr)}
				return
			}
			spG.SetAttr("anchors", int64(len(gsr.Anchors)))
			for _, s := range gsr.Spans {
				spG.AttachSnapshot(s)
			}
			if sampled {
				spG.SetAttr("bytes_in", wireSize(gsr))
			}
			spG.End()
			ch <- result{group: g, anchors: gsr.Anchors, timing: groupTiming{
				knnNs:    gsr.KNNNs,
				extendNs: gsr.ExtendNs,
				visits:   gsr.Visits,
				mergeNs:  gsr.MergeNs,
			}}
		}(g, offsets)
	}
	var firstErr error
	for range groupOffsets {
		r := <-ch
		if r.err != nil {
			failedGroups = append(failedGroups, r.group)
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		anchors = append(anchors, r.anchors...)
		gt.knnNs += r.timing.knnNs
		gt.extendNs += r.timing.extendNs
		gt.visits += r.timing.visits
		gt.mergeNs += r.timing.mergeNs
	}
	if firstErr != nil {
		if !c.cfg.AllowPartial || len(failedGroups) == len(groupOffsets) {
			return nil, gt, failedGroups, firstErr
		}
	}
	return anchors, gt, failedGroups, nil
}

// callGroupEntry is the direct (uncoalesced) per-group RPC path: pick a
// random entry point — the symmetric architecture makes any member a valid
// coordinator — and retry with the next member while the chosen one is
// unreachable.
func (c *Cluster) callGroupEntry(ctx context.Context, members []string, msg wire.GroupSearch, spG *obs.Span) (wire.GroupSearchResult, error) {
	c.mu.Lock()
	start := c.rng.Intn(len(members))
	c.mu.Unlock()
	var lastErr error
	for i := 0; i < len(members); i++ {
		entry := members[(start+i)%len(members)]
		resp, callErr := c.caller.Call(ctx, entry, msg)
		if callErr == nil {
			gsr, ok := resp.(wire.GroupSearchResult)
			if !ok {
				return wire.GroupSearchResult{}, fmt.Errorf("core: group %d entry %s: malformed reply %T", msg.Group, entry, resp)
			}
			spG.SetAttr("attempts", int64(i+1))
			return gsr, nil
		}
		lastErr = callErr
		if !errors.Is(callErr, transport.ErrUnreachable) {
			break
		}
	}
	return wire.GroupSearchResult{}, lastErr
}

// gappedExtend runs banded gapped extension (within p.Band diagonals of
// each anchor, §V-B / Gapped BLAST) against subject regions fetched from
// the distributed sequence repository. regionsFailed counts anchors dropped
// because no repository shard holding their sequence answered — the
// degraded-mode signal surfaced as Trace.RegionsFailed.
func (c *Cluster) gappedExtend(ctx context.Context, q []byte, anchors []wire.Anchor, p wire.Params, m *matrix.Matrix, kp align.KarlinParams, dbLen int) (hits []Hit, regionsFailed int, err error) {
	workers := 8
	if len(anchors) < workers {
		workers = len(anchors)
	}
	if workers == 0 {
		return nil, 0, nil
	}
	var (
		mu     sync.Mutex
		failed atomic.Int64
		wg     sync.WaitGroup
	)
	work := make(chan wire.Anchor)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for a := range work {
				hit, ok, fetchFailed := c.extendOne(ctx, q, a, p, m, kp, dbLen)
				if fetchFailed {
					failed.Add(1)
				}
				if ok {
					mu.Lock()
					hits = append(hits, hit)
					mu.Unlock()
				}
			}
		}()
	}
	for _, a := range anchors {
		work <- a
	}
	close(work)
	wg.Wait()
	return hits, int(failed.Load()), nil
}

func (c *Cluster) extendOne(ctx context.Context, q []byte, a wire.Anchor, p wire.Params, m *matrix.Matrix, kp align.KarlinParams, dbLen int) (Hit, bool, bool) {
	padLeft := a.QStart + p.Band + 16
	padRight := (len(q) - a.QEnd) + p.Band + 16
	region, regionStart, ok, fetchFailed := c.fetchRegion(ctx, a.Seq, a.SStart-padLeft, a.SEnd+padRight)
	if !ok || len(region) == 0 {
		return Hit{}, false, fetchFailed
	}
	centerDiag := (a.SStart - regionStart) - a.QStart
	al := align.BandedSmithWaterman(q, region, centerDiag-p.Band, centerDiag+p.Band, m)
	if al.Empty() {
		return Hit{}, false, false
	}
	al.SStart += regionStart
	al.SEnd += regionStart
	e := kp.EValue(al.Score, len(q), dbLen)
	if e > p.MaxE {
		return Hit{}, false, false
	}
	return Hit{
		Seq:       a.Seq,
		Name:      c.NameOf(a.Seq),
		Alignment: al,
		Bits:      kp.BitScore(al.Score),
		E:         e,
	}, true, false
}

// fetchRegion reads subject residues from the repository shard owning the
// sequence, falling back to the next ring successors if a shard is
// unreachable or does not hold the sequence (the latter happens transiently
// after a node joins and takes over a ring range without a data migration).
// If every candidate fails the anchor is dropped rather than failing the
// whole query; failed reports whether that drop was caused by node failures
// (as opposed to the sequence genuinely being absent), so the coordinator
// can mark the result set partial. A cancelled context aborts the successor
// probing immediately.
func (c *Cluster) fetchRegion(ctx context.Context, id seq.ID, start, end int) (data []byte, regionStart int, ok, failed bool) {
	c.mu.RLock()
	candidates := c.seqRing.LookupN(seqKey(id), c.cfg.replicas()+2)
	c.mu.RUnlock()
	sawFailure := false
	for _, node := range candidates {
		if ctx.Err() != nil {
			return nil, 0, false, true
		}
		resp, err := c.caller.Call(ctx, node, wire.FetchRegion{Seq: id, Start: start, End: end})
		if err != nil {
			// A RemoteError ("sequence not stored here") is a ring
			// remapping artifact, not an outage; anything else is.
			var re *transport.RemoteError
			if !errors.As(err, &re) {
				sawFailure = true
			}
			continue
		}
		region, isRegion := resp.(wire.Region)
		if !isRegion {
			sawFailure = true
			continue
		}
		return region.Data, region.Start, true, false
	}
	return nil, 0, false, sawFailure
}

// dedupHits removes exact duplicates and hits fully contained in a
// higher-scoring hit on the same sequence.
func dedupHits(hits []Hit) []Hit {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Alignment.Score != hits[j].Alignment.Score {
			return hits[i].Alignment.Score > hits[j].Alignment.Score
		}
		if hits[i].Seq != hits[j].Seq {
			return hits[i].Seq < hits[j].Seq
		}
		return hits[i].Alignment.SStart < hits[j].Alignment.SStart
	})
	var out []Hit
	for _, h := range hits {
		contained := false
		for _, kept := range out {
			if kept.Seq != h.Seq || kept.Strand != h.Strand {
				continue
			}
			if h.Alignment.SStart >= kept.Alignment.SStart && h.Alignment.SEnd <= kept.Alignment.SEnd &&
				h.Alignment.QStart >= kept.Alignment.QStart && h.Alignment.QEnd <= kept.Alignment.QEnd {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, h)
		}
	}
	return out
}

// wireSize measures a message's on-the-wire size for span attributes: the
// binary codec for hot messages (what the TCP transport actually sends),
// gob for anything else. Scratch comes from the codec's frame pool so a
// sampled query does not allocate for the measurement.
func wireSize(msg any) int64 {
	fp := wire.GetFrame()
	defer wire.PutFrame(fp)
	if b, ok := wire.AppendHot(*fp, msg); ok {
		*fp = b
		return int64(len(b))
	}
	if b, err := wire.Marshal(msg); err == nil {
		return int64(len(b))
	}
	return 0
}
