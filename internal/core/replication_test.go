package core

import (
	"context"
	"math/rand"
	"testing"

	"mendel/internal/seq"
)

// newReplicatedCluster builds a cluster with R=2 replication.
func newReplicatedCluster(t *testing.T, numNodes, groups int) *InProcess {
	t.Helper()
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = groups
	cfg.SampleSize = 500
	cfg.Replicas = 2
	ip, err := NewInProcess(cfg, numNodes)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func TestReplicationDoublesStoredBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()
	db := buildTestDB(rng, 10, 250)

	single := newTestCluster(t, 6, 3)
	if err := single.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	replicated := newReplicatedCluster(t, 6, 3)
	if err := replicated.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	count := func(ip *InProcess) int {
		stats, err := ip.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, s := range stats {
			total += s.Blocks
		}
		return total
	}
	s1, s2 := count(single), count(replicated)
	if s2 != 2*s1 {
		t.Fatalf("replicated blocks = %d, want %d", s2, 2*s1)
	}
}

func TestReplicatedSearchSurvivesNodeLossWithoutRecallLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ctx := context.Background()
	ip := newReplicatedCluster(t, 6, 2)
	db := buildTestDB(rng, 20, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	query := db.Seqs[11].Data[50:180]
	baseline, err := ip.Search(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 || baseline[0].Seq != 11 {
		t.Fatalf("baseline hits = %+v", baseline)
	}

	// Kill any single node: with R=2 every block has a surviving copy in
	// the same group, and every repository shard a surviving replica, so
	// the top hit must persist for every choice of failed node.
	for _, victim := range ip.Nodes {
		ip.Net.Fail(victim.Addr())
		hits, err := ip.Search(ctx, query, defaultTestParams())
		if err != nil {
			t.Fatalf("search with %s down: %v", victim.Addr(), err)
		}
		if len(hits) == 0 || hits[0].Seq != 11 {
			t.Fatalf("recall lost with %s down: %+v", victim.Addr(), hits)
		}
		ip.Net.Heal(victim.Addr())
	}
}

func TestUnreplicatedSearchMayLoseDataButNotFail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()
	ip := newTestCluster(t, 6, 2)
	db := buildTestDB(rng, 20, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	query := db.Seqs[4].Data[30:160]
	for _, victim := range ip.Nodes {
		ip.Net.Fail(victim.Addr())
		if _, err := ip.Search(ctx, query, defaultTestParams()); err != nil {
			t.Fatalf("unreplicated search errored (should degrade): %v", err)
		}
		ip.Net.Heal(victim.Addr())
	}
}

func TestReplicasClampedToGroupSize(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 300
	cfg.Replicas = 10 // more than nodes per group: ring clamps
	ip, err := NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	ctx := context.Background()
	db := buildTestDB(rng, 8, 250)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	hits, err := ip.Search(ctx, db.Seqs[2].Data[40:160], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 2 {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestConfigRejectsNegativeReplicas(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Replicas = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative replicas accepted")
	}
	zero := DefaultConfig(seq.Protein)
	zero.Replicas = 0
	if zero.replicas() != 1 {
		t.Fatal("zero replicas should act as one")
	}
}
