package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"mendel/internal/seq"
)

// reverseTranslate produces a DNA sequence whose frame-0 translation is the
// given protein, picking one codon per residue.
func reverseTranslate(t *testing.T, protein []byte) []byte {
	t.Helper()
	codon := map[byte]string{
		'A': "GCT", 'R': "CGT", 'N': "AAT", 'D': "GAT", 'C': "TGT",
		'Q': "CAA", 'E': "GAA", 'G': "GGT", 'H': "CAT", 'I': "ATT",
		'L': "CTT", 'K': "AAA", 'M': "ATG", 'F': "TTT", 'P': "CCT",
		'S': "TCT", 'T': "ACT", 'W': "TGG", 'Y': "TAT", 'V': "GTT",
	}
	var b strings.Builder
	for _, aa := range protein {
		c, ok := codon[aa]
		if !ok {
			t.Fatalf("no codon for %c", aa)
		}
		b.WriteString(c)
	}
	return []byte(b.String())
}

func TestSearchTranslatedFindsProteinHomolog(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(111))
	ctx := context.Background()
	db := buildTestDB(rng, 12, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	// A DNA read encoding residues 50..150 of protein 6, in frame 0.
	dna := reverseTranslate(t, db.Seqs[6].Data[50:150])
	hits, err := ip.SearchTranslated(ctx, dna, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("translated search found nothing")
	}
	top := hits[0]
	if top.Seq != 6 || top.Frame != 0 {
		t.Fatalf("top = seq %d frame %d, want seq 6 frame 0", top.Seq, top.Frame)
	}
}

func TestSearchTranslatedReverseFrame(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(112))
	ctx := context.Background()
	db := buildTestDB(rng, 10, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	dna := reverseTranslate(t, db.Seqs[2].Data[40:140])
	// Reverse-complement the read: the homolog now lives in frames 3-5.
	rc := seq.MustNew(0, "rc", seq.DNA, string(dna)).ReverseComplement()
	hits, err := ip.SearchTranslated(ctx, rc, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("reverse-frame homolog not found")
	}
	if hits[0].Seq != 2 || hits[0].Frame < 3 {
		t.Fatalf("top = seq %d frame %d, want seq 2 frame >= 3", hits[0].Seq, hits[0].Frame)
	}
}

func TestSearchTranslatedValidation(t *testing.T) {
	// DNA cluster: translated search is protein-only.
	ipDNA, _, _ := dnaCluster(t)
	if _, err := ipDNA.SearchTranslated(context.Background(), []byte("ATGGCT"), dnaParams()); err == nil {
		t.Error("translated search on DNA cluster accepted")
	}
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(113))
	if err := ip.Index(context.Background(), buildTestDB(rng, 5, 250)); err != nil {
		t.Fatal(err)
	}
	if _, err := ip.SearchTranslated(context.Background(), []byte("ATG"), defaultTestParams()); err == nil {
		t.Error("too-short query accepted")
	}
	if _, err := ip.SearchTranslated(context.Background(), []byte("AXG!"), defaultTestParams()); err == nil {
		t.Error("invalid nucleotides accepted")
	}
}

func TestMaskedQuerySkipsJunkWindows(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(114))
	ctx := context.Background()
	db := buildTestDB(rng, 10, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	// Query = genuine excerpt + a long proline repeat.
	query := append([]byte(nil), db.Seqs[3].Data[50:150]...)
	query = append(query, []byte(strings.Repeat("P", 80))...)

	p := defaultTestParams()
	_, plain, err := ip.SearchTrace(ctx, query, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Mask = true
	hits, maskedTrace, err := ip.SearchTrace(ctx, query, p)
	if err != nil {
		t.Fatal(err)
	}
	// Masking must drop the repeat windows (the trace window count falls)
	// without losing the true hit.
	if maskedTrace.SubQueries >= plain.SubQueries {
		t.Fatalf("masking did not reduce windows: %d vs %d", maskedTrace.SubQueries, plain.SubQueries)
	}
	if len(hits) == 0 || hits[0].Seq != 3 {
		t.Fatalf("masked search lost the true hit: %+v", hits)
	}
}
