package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mendel/internal/obs"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// Health states of a node, as judged by the coordinator's monitor. A single
// failed probe makes a node suspect (it may merely be slow or the network
// flaky); HealthConfig.DownAfter consecutive failures make it down. Any
// successful probe returns it to up — after the recovery sequence (topology
// re-push or re-bootstrap, hint replay, index build) has completed.
const (
	HealthUp      = "up"
	HealthSuspect = "suspect"
	HealthDown    = "down"
)

// NodeHealth is one node's entry in the cluster health view served at
// /debug/health.
type NodeHealth struct {
	Addr  string `json:"addr"`
	Group int    `json:"group"`
	State string `json:"state"`
	// Booted is the node's own report from its last successful probe: false
	// means the process answers but lost its bootstrapped state (a restart).
	Booted bool `json:"booted"`
	// Fails counts consecutive failed probes (0 when up).
	Fails int `json:"fails,omitempty"`
	// BreakerOpen reports an open or half-open circuit breaker for the
	// address in the attached ResilientCaller, an early suspicion signal
	// between probe sweeps.
	BreakerOpen bool `json:"breaker_open,omitempty"`
	// LastSeen is the time of the last successful probe (zero before one).
	LastSeen time.Time `json:"last_seen,omitempty"`
	// HintsPending counts hinted-handoff items parked for this node.
	HintsPending int `json:"hints_pending,omitempty"`
}

// HealthConfig tunes a HealthMonitor.
type HealthConfig struct {
	// Interval is the base delay between probe sweeps.
	Interval time.Duration
	// Jitter is the uniform extra delay added to each sweep, decorrelating
	// monitors that watch overlapping clusters.
	Jitter time.Duration
	// DownAfter is the number of consecutive failed probes after which a
	// suspect node is declared down. Minimum 1.
	DownAfter int
}

// DefaultHealthConfig returns the defaults the CLIs use: probe every two
// seconds with half a second of jitter, declare down after two misses.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{Interval: 2 * time.Second, Jitter: 500 * time.Millisecond, DownAfter: 2}
}

// BreakerStateSource supplies per-address circuit-breaker states
// ("closed"/"open"/"half-open"); *transport.ResilientCaller implements it.
type BreakerStateSource interface {
	BreakerStates() map[string]string
}

// nodeHealth is the monitor's mutable per-node record.
type nodeHealth struct {
	state    string
	booted   bool
	fails    int
	lastSeen time.Time
}

// HealthMonitor is the coordinator's failure detector and repair driver: it
// probes every node with wire.Ping on a jittered interval, tracks per-node
// up/suspect/down state (folding in circuit-breaker evidence from a
// ResilientCaller when attached), and — on seeing a node return — runs the
// recovery sequence: re-push the current topology (or re-bootstrap a node
// that restarted empty), replay parked hinted-handoff writes, and rebuild
// the node's index. Each sweep also drains the read-repair schedule that
// partial queries feed.
type HealthMonitor struct {
	c        *Cluster
	cfg      HealthConfig
	breakers BreakerStateSource

	// now and rng are injectable for deterministic tests; Run's pacing uses
	// real timers either way (tests drive ProbeOnce directly).
	now func() time.Time
	rng *rand.Rand

	mu    sync.Mutex
	nodes map[string]*nodeHealth
}

// NewHealthMonitor creates a monitor for the cluster. Zero-value config
// fields fall back to DefaultHealthConfig. The monitor starts passive;
// drive it with Run (background loop) or ProbeOnce (one synchronous sweep).
func NewHealthMonitor(c *Cluster, cfg HealthConfig) *HealthMonitor {
	def := DefaultHealthConfig()
	if cfg.Interval <= 0 {
		cfg.Interval = def.Interval
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = def.Jitter
	}
	if cfg.DownAfter < 1 {
		cfg.DownAfter = def.DownAfter
	}
	return &HealthMonitor{
		c:     c,
		cfg:   cfg,
		now:   time.Now,
		rng:   rand.New(rand.NewSource(c.cfg.Seed)),
		nodes: make(map[string]*nodeHealth),
	}
}

// ObserveBreakers folds a resilient caller's per-address circuit-breaker
// states into the health view: an open breaker marks an otherwise-up node
// suspect between probe sweeps.
func (hm *HealthMonitor) ObserveBreakers(b BreakerStateSource) { hm.breakers = b }

// Run probes the cluster until ctx is cancelled, sleeping Interval plus a
// uniform jitter in [0, Jitter) between sweeps.
func (hm *HealthMonitor) Run(ctx context.Context) {
	for {
		hm.ProbeOnce(ctx)
		delay := hm.cfg.Interval
		if hm.cfg.Jitter > 0 {
			hm.mu.Lock()
			delay += time.Duration(hm.rng.Int63n(int64(hm.cfg.Jitter)))
			hm.mu.Unlock()
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return
		}
	}
}

// ProbeOnce runs one synchronous probe sweep: ping every node, update the
// health view, run the recovery sequence for nodes that returned, and drain
// the read-repair schedule for groups that have live members again. Tests
// and `mendel repair` call it directly for deterministic behaviour.
func (hm *HealthMonitor) ProbeOnce(ctx context.Context) {
	nodes := hm.c.topology().AllNodes()
	resps, errs := transport.BroadcastAll(ctx, hm.c.caller, nodes, wire.Ping{})
	for i, addr := range nodes {
		if errs[i] != nil {
			hm.markFailed(addr)
			continue
		}
		pong, _ := resps[i].(wire.Pong)
		hm.markAlive(ctx, addr, pong.Booted)
	}
	hm.drainReadRepairs(ctx)
}

// markFailed records a failed probe, moving the node to suspect and then —
// after DownAfter consecutive misses — to down.
func (hm *HealthMonitor) markFailed(addr string) {
	hm.mu.Lock()
	st := hm.node(addr)
	st.fails++
	next := HealthSuspect
	if st.fails >= hm.cfg.DownAfter {
		next = HealthDown
	}
	changed := st.state != next
	st.state = next
	hm.mu.Unlock()
	if changed {
		hm.c.reg.Gauge("node_up." + addr).Set(0)
		if next == HealthDown {
			hm.c.reg.Counter("node_down_total").Inc()
		}
	}
}

// markAlive records a successful probe. A node coming back from down, one
// that restarted without its bootstrapped state, or one with parked hints
// first goes through the recovery sequence; only a fully recovered node is
// declared up again (a failed recovery leaves it down for the next sweep).
func (hm *HealthMonitor) markAlive(ctx context.Context, addr string, booted bool) {
	hm.mu.Lock()
	st := hm.node(addr)
	wasDown := st.state == HealthDown
	hm.mu.Unlock()

	indexed := hm.c.indexed()
	needsRecovery := wasDown || (indexed && !booted) || hm.c.hints.pendingFor(addr) > 0
	if needsRecovery {
		if err := hm.c.recoverNode(ctx, addr, booted); err != nil {
			// The node answered the ping but recovery did not complete;
			// treat it as a failed probe so the next sweep retries.
			hm.markFailed(addr)
			return
		}
		hm.c.reg.Counter("node_recoveries").Inc()
	}

	hm.mu.Lock()
	st = hm.node(addr)
	changed := st.state != HealthUp
	st.state = HealthUp
	st.fails = 0
	st.booted = true
	st.lastSeen = hm.now()
	hm.mu.Unlock()
	if changed {
		hm.c.reg.Gauge("node_up." + addr).Set(1)
	}
}

// node returns addr's record, creating it as up. Callers hold hm.mu.
func (hm *HealthMonitor) node(addr string) *nodeHealth {
	st := hm.nodes[addr]
	if st == nil {
		st = &nodeHealth{state: HealthUp, booted: true}
		hm.nodes[addr] = st
	}
	return st
}

// drainReadRepairs runs scoped repairs for the groups partial queries
// flagged, skipping (and re-scheduling) groups that still have no live
// member.
func (hm *HealthMonitor) drainReadRepairs(ctx context.Context) {
	groups := hm.c.takePendingRepairGroups()
	if len(groups) == 0 {
		return
	}
	var ready, blocked []int
	for _, g := range groups {
		if hm.groupHasLiveMember(g) {
			ready = append(ready, g)
		} else {
			blocked = append(blocked, g)
		}
	}
	if len(blocked) > 0 {
		hm.c.noteFailedGroups(blocked)
	}
	if len(ready) == 0 {
		return
	}
	if _, err := hm.c.repairGroups(ctx, ready, false); err != nil {
		// Repair could not complete (e.g. manifests unavailable); keep the
		// groups scheduled so a later sweep retries.
		hm.c.noteFailedGroups(ready)
		return
	}
	hm.c.reg.Counter("read_repair_runs").Inc()
}

// groupHasLiveMember reports whether any member of group g is currently
// considered up by the monitor.
func (hm *HealthMonitor) groupHasLiveMember(g int) bool {
	hm.mu.Lock()
	defer hm.mu.Unlock()
	for _, m := range hm.c.topology().GroupNodes(g) {
		st := hm.nodes[m]
		if st == nil || st.state == HealthUp {
			return true
		}
	}
	return false
}

// Snapshot returns the cluster health view, sorted by address. Nodes never
// probed report as up (the optimistic prior every distributed failure
// detector starts from); an open circuit breaker downgrades an up node to
// suspect.
func (hm *HealthMonitor) Snapshot() []NodeHealth {
	var breakers map[string]string
	if hm.breakers != nil {
		breakers = hm.breakers.BreakerStates()
	}
	nodes := hm.c.topology().AllNodes()
	hm.mu.Lock()
	out := make([]NodeHealth, 0, len(nodes))
	for _, addr := range nodes {
		g, _ := hm.c.topology().GroupOf(addr)
		nh := NodeHealth{Addr: addr, Group: g, State: HealthUp, Booted: true}
		if st := hm.nodes[addr]; st != nil {
			nh.State = st.state
			nh.Booted = st.booted
			nh.Fails = st.fails
			nh.LastSeen = st.lastSeen
		}
		if s := breakers[addr]; s == "open" || s == "half-open" {
			nh.BreakerOpen = true
			if nh.State == HealthUp {
				nh.State = HealthSuspect
			}
		}
		nh.HintsPending = hm.c.hints.pendingFor(addr)
		out = append(out, nh)
	}
	hm.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Source adapts the monitor to the obs HTTP surface, so a coordinator
// process can serve /debug/health:
//
//	obs.ServeWithHealth(addr, reg, tracer, src, monitor.Source())
func (hm *HealthMonitor) Source() obs.HealthSource {
	return func() any { return hm.Snapshot() }
}

// indexed reports whether the cluster holds an indexed database yet.
func (c *Cluster) indexed() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hashTree != nil
}

// recoverNode runs the recovery sequence for a node that answered a probe
// after being down, restarting, or accumulating hints:
//
//  1. a node that restarted empty (booted=false) is re-bootstrapped with
//     the current shared state; a booted node is re-pushed the current
//     topology, so membership changes it slept through take effect — the
//     fix for the AddNode/broadcastTopology gap;
//  2. parked hinted-handoff writes are replayed (staged blocks, then
//     sequence shards);
//  3. a BuildIndex folds everything staged — replayed hints and any blocks
//     staged before the crash — into the node's vp-tree.
//
// On error the taken hints are restored and the node stays down; the next
// sweep retries the whole sequence.
func (c *Cluster) recoverNode(ctx context.Context, addr string, booted bool) error {
	indexed := c.indexed()
	if !booted {
		if !indexed {
			return nil // nothing to restore on an unindexed cluster
		}
		boot, err := c.bootstrapMsg()
		if err != nil {
			return err
		}
		if _, err := c.caller.Call(ctx, addr, boot); err != nil {
			return fmt.Errorf("core: re-bootstrapping %s: %w", addr, err)
		}
	} else if _, err := c.caller.Call(ctx, addr, wire.UpdateTopology{Groups: c.groupsSnapshot()}); err != nil {
		// A node that rejects the topology it is named in is misconfigured;
		// an unreachable one simply waits for the next sweep.
		return fmt.Errorf("core: topology re-push to %s: %w", addr, err)
	}

	blocks, seqs := c.hints.take(addr)
	replay := func() error {
		for start := 0; start < len(blocks); start += indexBatchBlocks {
			end := start + indexBatchBlocks
			if end > len(blocks) {
				end = len(blocks)
			}
			if _, err := c.caller.Call(ctx, addr, wire.IndexBlocks{Blocks: blocks[start:end], Stage: true}); err != nil {
				return fmt.Errorf("core: replaying %d hinted blocks to %s: %w", end-start, addr, err)
			}
		}
		if seqs != nil && len(seqs.IDs) > 0 {
			if _, err := c.caller.Call(ctx, addr, *seqs); err != nil {
				return fmt.Errorf("core: replaying %d hinted sequences to %s: %w", len(seqs.IDs), addr, err)
			}
		}
		return nil
	}
	if err := replay(); err != nil {
		c.hints.restore(addr, blocks, seqs)
		return err
	}
	c.reg.Counter("hints_replayed").Add(int64(len(blocks)))
	if seqs != nil {
		c.reg.Counter("hints_replayed").Add(int64(len(seqs.IDs)))
	}

	if indexed {
		// The build must land: without it, blocks staged before the crash or
		// replayed above stay invisible to searches. Failure (even transport
		// failure) fails the recovery so the next sweep retries end to end.
		if _, err := c.caller.Call(ctx, addr, wire.BuildIndex{}); err != nil {
			return fmt.Errorf("core: rebuilding index on %s: %w", addr, err)
		}
	}
	return nil
}
