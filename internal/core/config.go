// Package core is Mendel's primary contribution: the similarity-aware
// distributed storage framework tying the substrates together. It provides
// the ingest pipeline (§V-A: inverted index block creation, vp-prefix tree
// dispersion, local vp-tree indexing) and the query evaluation pipeline
// (§V-B: sliding-window decomposition, group fan-out, two-stage anchor
// aggregation, gapped extension, E-value ranking).
//
// The architecture is symmetric: a Cluster value is a coordinator view that
// can live anywhere — a client, a CLI, or colocated with a storage node —
// and any instance produces identical results.
package core

import (
	"fmt"
	"runtime"

	"mendel/internal/seq"
	"mendel/internal/sketch"
)

// Config fixes the cluster-wide constants shared by every node. They are
// established at bootstrap and immutable thereafter.
type Config struct {
	// Kind selects DNA or Protein mode; it decides the index metric
	// (Hamming vs the BLOSUM62-derived Mendel metric, §III-B).
	Kind seq.Kind
	// BlockLen is the inverted-index window length w (§V-A1).
	BlockLen int
	// Margin is the per-side context captured with each block for local
	// anchor extension.
	Margin int
	// Groups is the number of storage node groups (§IV-C; user-configurable).
	Groups int
	// DepthThreshold is the vp-prefix tree cutoff depth; 0 derives the
	// paper's default of half the tree depth from the sample size (§V-A2).
	DepthThreshold int
	// SampleSize bounds the number of blocks sampled to build the
	// vp-prefix tree.
	SampleSize int
	// BucketCap is the local vp-tree leaf capacity (0 = default).
	BucketCap int
	// QueryEps is the uncertainty radius used when hashing subqueries:
	// traversal branches into both children when the eps-ball straddles a
	// vantage boundary (§V-B). 0 derives a default of 1/8 of the maximum
	// possible window distance.
	QueryEps int
	// MaxGapped caps the number of anchors submitted to gapped extension
	// per query, keeping worst-case latency bounded.
	MaxGapped int
	// Replicas is the number of copies of every block (within its group)
	// and of every sequence-repository shard. 1 disables replication;
	// higher values implement the paper's fault-tolerance extension
	// (§VII-B): queries lose no recall while any replica survives.
	Replicas int
	// AllowPartial lets Search degrade to partial results when entire
	// groups or repository shards are unreachable: instead of failing the
	// query, the surviving groups' hits are returned and the outage is
	// reported in Trace.GroupsFailed / Trace.Partial. DefaultConfig turns
	// it on — a storage cluster built for commodity hardware should
	// degrade, not fail stop. When false, the first unreachable group
	// aborts the query (the pre-fault-tolerance behaviour).
	AllowPartial bool
	// SearchBudget caps the distance evaluations of each local vp-tree
	// lookup, making per-subquery cost independent of how much data a
	// node holds (metric pruning alone cannot guarantee that on
	// high-entropy segments). 0 derives the default; -1 forces exact
	// (unbudgeted) search.
	SearchBudget int
	// IngestWorkers sets the fragmentation/hashing worker count of Index.
	// 0 (the default) uses one worker per core with concurrent per-node
	// batch senders; 1 selects the fully serial pipeline (the baseline the
	// perf harness compares against); higher values pin the pool size.
	// Either way block placement and the resulting per-node vp-trees are
	// identical — the staged BuildIndex protocol makes ingest order
	// irrelevant.
	IngestWorkers int
	// SketchK is the k-mer length of the sketch prefilter tier (§DESIGN 14).
	// 0 derives the per-kind default (5 for protein, 11 for DNA); -1
	// disables sketching cluster-wide — nodes build no signatures and the
	// -prefilter flag becomes inert.
	SketchK int
	// SketchBloomBits sizes each node's Bloom signature in bits (rounded up
	// to a power of two). 0 derives the default (1 MiBit).
	SketchBloomBits int
	// SketchMinHashK is the bottom-k MinHash sketch size used by the
	// alignment-free Similarity mode and the minhash prefilter. 0 derives
	// the default (512).
	SketchMinHashK int
	// TraceSampleRate is the head-based sampling rate for distributed query
	// traces, in (0,1]: 1 traces every query, 0.01 one query in a hundred.
	// The zero value also traces every query — the pre-sampling behaviour,
	// so configs built before tracing keep their span coverage — and a
	// negative rate disables query tracing entirely. The decision is made
	// once at the system entry point and propagated cluster-wide, so either
	// every span of a query is recorded or none is.
	TraceSampleRate float64
	// Seed makes vantage selection and entry-point choice deterministic.
	Seed int64
}

// DefaultConfig returns the configuration used throughout the repository
// for the given molecule kind.
func DefaultConfig(kind seq.Kind) Config {
	return Config{
		Kind:            kind,
		BlockLen:        16,
		Margin:          32,
		Groups:          4,
		SampleSize:      2000,
		MaxGapped:       256,
		Replicas:        1,
		AllowPartial:    true,
		TraceSampleRate: 1,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.BlockLen <= 0:
		return fmt.Errorf("core: BlockLen = %d", c.BlockLen)
	case c.Margin < 0:
		return fmt.Errorf("core: Margin = %d", c.Margin)
	case c.Groups <= 0:
		return fmt.Errorf("core: Groups = %d", c.Groups)
	case c.SampleSize <= 0:
		return fmt.Errorf("core: SampleSize = %d", c.SampleSize)
	case c.DepthThreshold < 0:
		return fmt.Errorf("core: DepthThreshold = %d", c.DepthThreshold)
	case c.QueryEps < 0:
		return fmt.Errorf("core: QueryEps = %d", c.QueryEps)
	case c.MaxGapped < 0:
		return fmt.Errorf("core: MaxGapped = %d", c.MaxGapped)
	case c.Replicas < 0:
		return fmt.Errorf("core: Replicas = %d", c.Replicas)
	case c.IngestWorkers < 0:
		return fmt.Errorf("core: IngestWorkers = %d", c.IngestWorkers)
	case c.SketchK < -1:
		return fmt.Errorf("core: SketchK = %d", c.SketchK)
	case c.SketchBloomBits < 0:
		return fmt.Errorf("core: SketchBloomBits = %d", c.SketchBloomBits)
	case c.SketchMinHashK < 0:
		return fmt.Errorf("core: SketchMinHashK = %d", c.SketchMinHashK)
	case c.TraceSampleRate > 1:
		return fmt.Errorf("core: TraceSampleRate = %g, want <= 1", c.TraceSampleRate)
	}
	return nil
}

// traceSampleRate returns the effective trace sampling rate (the zero value
// means trace-all; negative disables).
func (c Config) traceSampleRate() float64 {
	if c.TraceSampleRate == 0 {
		return 1
	}
	return c.TraceSampleRate
}

// replicas returns the effective replica count (zero means one).
func (c Config) replicas() int {
	if c.Replicas < 1 {
		return 1
	}
	return c.Replicas
}

// ingestWorkers returns the effective fragmentation worker count (zero
// means one per core).
func (c Config) ingestWorkers() int {
	if c.IngestWorkers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.IngestWorkers
}

// sketchParams returns the effective sketch shape: the per-kind defaults
// with any configured overrides applied, or the zero Params (sketching
// disabled) when SketchK is -1.
func (c Config) sketchParams() sketch.Params {
	if c.SketchK < 0 {
		return sketch.Params{}
	}
	p := sketch.DefaultParams(c.Kind)
	if c.SketchK > 0 {
		p.K = c.SketchK
	}
	if c.SketchBloomBits > 0 {
		p.BloomBits = c.SketchBloomBits
	}
	if c.SketchMinHashK > 0 {
		p.MinHashK = c.SketchMinHashK
	}
	return p
}

// DefaultSearchBudget bounds local lookups to a few thousand distance
// evaluations — far past where a genuinely close neighbour is found, yet
// independent of per-node data volume.
const DefaultSearchBudget = 4096

// searchBudget returns the effective per-lookup budget (0 on the wire
// means exact search, so -1 here maps to 0 there).
func (c Config) searchBudget() int {
	switch {
	case c.SearchBudget < 0:
		return 0 // exact
	case c.SearchBudget == 0:
		return DefaultSearchBudget
	default:
		return c.SearchBudget
	}
}
