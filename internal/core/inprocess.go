package core

import (
	"fmt"

	"mendel/internal/dht"
	"mendel/internal/node"
	"mendel/internal/obs"
	"mendel/internal/transport"
)

// InProcess is a complete Mendel cluster running inside one process: one
// storage node per group member wired through an in-memory network. It
// substitutes for the paper's 50-node LAN testbed — all hashing, routing,
// fan-out and aggregation code paths are identical; only the wire is local.
type InProcess struct {
	*Cluster
	Net   *transport.MemNetwork
	Nodes []*node.Node
	// Resilient is the coordinator's resilient caller when the cluster was
	// built with NewInProcessResilient, nil otherwise.
	Resilient *transport.ResilientCaller
}

// NewInProcess assembles numNodes storage nodes split round-robin into
// cfg.Groups groups on a fresh in-memory network.
func NewInProcess(cfg Config, numNodes int, opts ...transport.MemOption) (*InProcess, error) {
	return newInProcess(cfg, numNodes, nil, opts...)
}

// NewInProcessResilient is NewInProcess with every caller — the
// coordinator's and each node's group fan-out caller — wrapped in a
// ResilientCaller, for chaos tests and flaky-network experiments.
func NewInProcessResilient(cfg Config, numNodes int, rc transport.ResilientConfig, opts ...transport.MemOption) (*InProcess, error) {
	return newInProcess(cfg, numNodes, &rc, opts...)
}

func newInProcess(cfg Config, numNodes int, rc *transport.ResilientConfig, opts ...transport.MemOption) (*InProcess, error) {
	if numNodes < cfg.Groups {
		return nil, fmt.Errorf("core: %d nodes cannot fill %d groups", numNodes, cfg.Groups)
	}
	net := transport.NewMemNetwork(opts...)
	addrs := make([]string, numNodes)
	nodes := make([]*node.Node, numNodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%03d", i)
		// Nodes call through a bound view of the network so partition
		// chaos can tell who is calling whom.
		var caller transport.Caller = net.Bind(addrs[i])
		if rc != nil {
			caller = transport.NewResilientCaller(caller, *rc)
		}
		nodes[i] = node.New(addrs[i], caller)
		net.Register(addrs[i], nodes[i])
	}
	groups, err := dht.SplitNodes(addrs, cfg.Groups)
	if err != nil {
		return nil, err
	}
	var coordCaller transport.Caller = net
	var resilient *transport.ResilientCaller
	if rc != nil {
		resilient = transport.NewResilientCaller(net, *rc)
		coordCaller = resilient
	}
	cluster, err := NewCluster(cfg, coordCaller, groups)
	if err != nil {
		return nil, err
	}
	return &InProcess{Cluster: cluster, Net: net, Nodes: nodes, Resilient: resilient}, nil
}

// Observe attaches one registry/tracer pair to the coordinator and to every
// storage node in the cluster. Because everything runs in one process, the
// nodes' vp-tree and extension metrics land in the same registry as the
// coordinator's query histograms, and node-side group_search span trees
// interleave with the coordinator's search spans. Either argument may be
// nil. If the cluster was built resilient, the coordinator's circuit-breaker
// counters are exported too.
func (p *InProcess) Observe(reg *obs.Registry, tracer *obs.Tracer) {
	p.Cluster.SetObservability(reg, tracer)
	for _, n := range p.Nodes {
		n.Observe(reg, tracer)
	}
	if p.Resilient != nil {
		p.Resilient.Register(reg)
	}
}
