package core

import (
	"fmt"

	"mendel/internal/dht"
	"mendel/internal/node"
	"mendel/internal/transport"
)

// InProcess is a complete Mendel cluster running inside one process: one
// storage node per group member wired through an in-memory network. It
// substitutes for the paper's 50-node LAN testbed — all hashing, routing,
// fan-out and aggregation code paths are identical; only the wire is local.
type InProcess struct {
	*Cluster
	Net   *transport.MemNetwork
	Nodes []*node.Node
}

// NewInProcess assembles numNodes storage nodes split round-robin into
// cfg.Groups groups on a fresh in-memory network.
func NewInProcess(cfg Config, numNodes int, opts ...transport.MemOption) (*InProcess, error) {
	if numNodes < cfg.Groups {
		return nil, fmt.Errorf("core: %d nodes cannot fill %d groups", numNodes, cfg.Groups)
	}
	net := transport.NewMemNetwork(opts...)
	addrs := make([]string, numNodes)
	nodes := make([]*node.Node, numNodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%03d", i)
		nodes[i] = node.New(addrs[i], net)
		net.Register(addrs[i], nodes[i])
	}
	groups, err := dht.SplitNodes(addrs, cfg.Groups)
	if err != nil {
		return nil, err
	}
	cluster, err := NewCluster(cfg, net, groups)
	if err != nil {
		return nil, err
	}
	return &InProcess{Cluster: cluster, Net: net, Nodes: nodes}, nil
}
