package core

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"mendel/internal/obs"
	"mendel/internal/seq"
)

// obsCluster builds an in-process cluster with observability attached and
// one indexed test database.
func obsCluster(t *testing.T) (*InProcess, *seq.Set, *obs.Registry, *obs.Tracer) {
	t.Helper()
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 2
	cfg.SampleSize = 500
	ip, err := NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16)
	ip.Observe(reg, tracer)
	rng := rand.New(rand.NewSource(81))
	db := buildTestDB(rng, 12, 300)
	if err := ip.Index(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	return ip, db, reg, tracer
}

// paperStages are the five pipeline stages of §V-B every query's span tree
// must cover: subquery fan-out, k-NN search, ungapped extension, anchor
// aggregation, and gapped extension.
var paperStages = []string{"fanout", "knn", "ungapped", "aggregate", "gapped"}

// TestQuerySpanTreeCoversPaperStages is the tentpole acceptance check: one
// search against a running in-process cluster produces a span tree with all
// five stages, node-side work included via the timing breakdowns shipped
// back in the RPC replies.
func TestQuerySpanTreeCoversPaperStages(t *testing.T) {
	ip, db, _, tracer := obsCluster(t)
	hits, trace, err := ip.SearchTrace(context.Background(), db.Seqs[5].Data[40:200], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 5 {
		t.Fatalf("hits = %+v", hits)
	}

	var root *obs.SpanSnapshot
	for _, s := range tracer.Recent(0) {
		if s.Name == "search" {
			s := s
			root = &s
			break
		}
	}
	if root == nil {
		t.Fatalf("no search span recorded; recent = %+v", tracer.Recent(0))
	}
	for _, stage := range paperStages {
		sp := root.Find(stage)
		if sp == nil {
			t.Errorf("span tree missing stage %q", stage)
			continue
		}
		if sp.NS < 0 {
			t.Errorf("stage %q has negative duration %d", stage, sp.NS)
		}
	}
	if root.Find("decompose") == nil {
		t.Error("span tree missing the decomposition stage")
	}
	if knn := root.Find("knn"); knn != nil {
		found := false
		for _, a := range knn.Attrs {
			if a.Key == "visits" && a.Value > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("knn span lacks a positive visits attribute: %+v", knn.Attrs)
		}
	}

	// The same stage timings must surface on the Trace for CLI consumers.
	if trace.KNN <= 0 || trace.Ungapped <= 0 || trace.Aggregate <= 0 {
		t.Errorf("trace stage durations not populated: knn=%v ungapped=%v aggregate=%v",
			trace.KNN, trace.Ungapped, trace.Aggregate)
	}
	if trace.TreeVisits <= 0 {
		t.Errorf("trace visits = %d, want > 0", trace.TreeVisits)
	}
	if !strings.Contains(trace.String(), "knn=") {
		t.Errorf("trace string lacks stage breakdown: %s", trace)
	}
}

// TestQueryMetricsRecorded verifies the registry accumulates coordinator-
// and node-side metrics for a query, and that MetricsDetailed collects a
// snapshot from every node over the wire.
func TestQueryMetricsRecorded(t *testing.T) {
	ip, db, reg, _ := obsCluster(t)
	ctx := context.Background()
	if _, err := ip.Search(ctx, db.Seqs[3].Data[40:200], defaultTestParams()); err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.Snapshot{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = s
	}
	if byName["search_total"].Value != 1 {
		t.Errorf("search_total = %d, want 1", byName["search_total"].Value)
	}
	if byName["search_ns"].Count != 1 {
		t.Errorf("search_ns count = %d, want 1", byName["search_ns"].Count)
	}
	for _, name := range []string{"node_local_searches", "node_group_searches"} {
		if byName[name].Value <= 0 {
			t.Errorf("%s = %d, want > 0", name, byName[name].Value)
		}
	}
	for _, name := range []string{"node_knn_ns", "node_knn_visits", "node_local_search_ns"} {
		if byName[name].Count <= 0 {
			t.Errorf("%s count = %d, want > 0", name, byName[name].Count)
		}
	}

	// Every node answers wire.Metrics; in-process they share one registry,
	// so each snapshot is non-empty and merging them is well-defined.
	metrics, down, err := ip.MetricsDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != 0 {
		t.Fatalf("down = %v", down)
	}
	if len(metrics) != len(ip.Nodes) {
		t.Fatalf("metrics from %d nodes, want %d", len(metrics), len(ip.Nodes))
	}
	for _, m := range metrics {
		if len(m.Metrics) == 0 {
			t.Errorf("node %s reported no metrics", m.Node)
		}
	}
	merged := obs.MergeSnapshots(metrics[0].Metrics, metrics[1].Metrics)
	if len(merged) == 0 {
		t.Fatal("merge of node snapshots is empty")
	}
}

// TestObservabilityHTTPSurface drives the real handler over the in-process
// cluster's sinks: after a query, /metrics exposes the search histograms and
// /debug/spans serves a JSON span tree containing all five paper stages.
func TestObservabilityHTTPSurface(t *testing.T) {
	ip, db, reg, tracer := obsCluster(t)
	if _, err := ip.Search(context.Background(), db.Seqs[7].Data[40:200], defaultTestParams()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(obs.Handler(reg, tracer))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"search_total 1", "search_ns_count 1", "search_ns_p95 ", "node_local_searches "} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/spans?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var spans []obs.SpanSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatalf("span JSON: %v", err)
	}
	resp.Body.Close()
	var root *obs.SpanSnapshot
	for i := range spans {
		if spans[i].Name == "search" {
			root = &spans[i]
			break
		}
	}
	if root == nil {
		t.Fatalf("no search span served; got %+v", spans)
	}
	for _, stage := range paperStages {
		if root.Find(stage) == nil {
			t.Errorf("/debug/spans tree missing stage %q", stage)
		}
	}
}
