package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"mendel/internal/node"
	"mendel/internal/wire"
)

// snapshotState returns addr's state in a health snapshot.
func snapshotState(t *testing.T, snap []NodeHealth, addr string) NodeHealth {
	t.Helper()
	for _, n := range snap {
		if n.Addr == addr {
			return n
		}
	}
	t.Fatalf("node %s missing from snapshot %+v", addr, snap)
	return NodeHealth{}
}

// nodeStats asks a node directly (bypassing the chaos network) for its
// storage statistics.
func nodeStats(t *testing.T, n *node.Node) wire.StatsResult {
	t.Helper()
	resp, err := n.Handle(context.Background(), wire.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	return resp.(wire.StatsResult)
}

// nodeByAddr finds the in-process node object serving addr.
func nodeByAddr(t *testing.T, ip *InProcess, addr string) *node.Node {
	t.Helper()
	for _, n := range ip.Nodes {
		if n.Addr() == addr {
			return n
		}
	}
	t.Fatalf("no node %s", addr)
	return nil
}

func TestHealthMonitorStateTransitions(t *testing.T) {
	ip, db := chaosCluster(t)
	ctx := context.Background()
	hm := NewHealthMonitor(ip.Cluster, HealthConfig{DownAfter: 2})

	hm.ProbeOnce(ctx)
	for _, n := range hm.Snapshot() {
		if n.State != HealthUp || !n.Booted {
			t.Fatalf("healthy cluster reports %+v", n)
		}
	}

	victim := ip.Nodes[2].Addr()
	ip.Net.Fail(victim)
	hm.ProbeOnce(ctx)
	if st := snapshotState(t, hm.Snapshot(), victim); st.State != HealthSuspect || st.Fails != 1 {
		t.Fatalf("after one miss: %+v", st)
	}
	hm.ProbeOnce(ctx)
	if st := snapshotState(t, hm.Snapshot(), victim); st.State != HealthDown || st.Fails != 2 {
		t.Fatalf("after two misses: %+v", st)
	}

	ip.Net.Heal(victim)
	hm.ProbeOnce(ctx)
	st := snapshotState(t, hm.Snapshot(), victim)
	if st.State != HealthUp || st.Fails != 0 || st.LastSeen.IsZero() {
		t.Fatalf("after heal: %+v", st)
	}

	// The recovered cluster answers with full recall.
	hits, trace, err := ip.SearchTrace(ctx, db.Seqs[11].Data[50:180], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if trace.Partial || len(hits) == 0 || hits[0].Seq != 11 {
		t.Fatalf("post-recovery query degraded: %s %+v", trace, hits)
	}
}

// TestHealthMonitorRepushesTopologyAfterRecovery is the regression test for
// the AddNode/broadcastTopology gap: a node that is down during a membership
// change used to keep its stale topology forever once it returned (it never
// re-bootstraps on its own). The monitor's recovery sequence now re-pushes
// the current topology.
func TestHealthMonitorRepushesTopologyAfterRecovery(t *testing.T) {
	ip, _ := chaosCluster(t)
	ctx := context.Background()
	hm := NewHealthMonitor(ip.Cluster, HealthConfig{DownAfter: 2})

	victim := ip.Topology().GroupNodes(0)[0]
	ip.Net.Fail(victim)
	hm.ProbeOnce(ctx)
	hm.ProbeOnce(ctx) // suspect -> down

	// Membership changes while the victim sleeps: it misses the broadcast.
	joiner := node.New("node-new", ip.Net.Bind("node-new"))
	ip.Net.Register("node-new", joiner)
	if err := ip.AddNode(ctx, 1, "node-new"); err != nil {
		t.Fatal(err)
	}
	if got := nodeStats(t, nodeByAddr(t, ip, victim)).TopoNodes; got != 6 {
		t.Fatalf("victim should still hold the stale 6-node topology, has %d", got)
	}

	ip.Net.Heal(victim)
	hm.ProbeOnce(ctx)
	if st := snapshotState(t, hm.Snapshot(), victim); st.State != HealthUp {
		t.Fatalf("victim not recovered: %+v", st)
	}
	if got := nodeStats(t, nodeByAddr(t, ip, victim)).TopoNodes; got != 7 {
		t.Fatalf("victim topology after recovery = %d nodes, want 7", got)
	}
}

func TestHintedHandoffReplayOnRecovery(t *testing.T) {
	ip, db := chaosCluster(t)
	ctx := context.Background()
	hm := NewHealthMonitor(ip.Cluster, HealthConfig{DownAfter: 2})

	victim := ip.Topology().GroupNodes(0)[1]
	blocksBefore := nodeStats(t, nodeByAddr(t, ip, victim)).Blocks

	// Ingest with a replica down: its share of the writes parks as hints.
	ip.Net.Fail(victim)
	rng := rand.New(rand.NewSource(75))
	db2 := buildTestDB(rng, 10, 300)
	if err := ip.Index(ctx, db2); err != nil {
		t.Fatalf("ingest with a down replica must succeed: %v", err)
	}
	if ip.HintsPending() == 0 {
		t.Fatal("no hints parked for the down replica")
	}
	if st := snapshotState(t, hm.Snapshot(), victim); st.HintsPending == 0 {
		t.Fatalf("snapshot does not surface pending hints: %+v", st)
	}

	// The new data is fully searchable mid-outage (R=2).
	newID := db.Len() + 3
	hits, trace, err := ip.SearchTrace(ctx, db2.Seqs[3].Data[40:170], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if trace.Partial || len(hits) == 0 || int(hits[0].Seq) != newID {
		t.Fatalf("mid-outage query on fresh data degraded: %s %+v", trace, hits)
	}

	ip.Net.Heal(victim)
	hm.ProbeOnce(ctx)
	if pending := ip.HintsPending(); pending != 0 {
		t.Fatalf("hints not drained after recovery: %d pending", pending)
	}
	if got := nodeStats(t, nodeByAddr(t, ip, victim)).Blocks; got <= blocksBefore {
		t.Fatalf("victim blocks %d after replay, want > %d", got, blocksBefore)
	}
	hits, trace, err = ip.SearchTrace(ctx, db2.Seqs[3].Data[40:170], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if trace.Partial || len(hits) == 0 || int(hits[0].Seq) != newID {
		t.Fatalf("post-replay query degraded: %s %+v", trace, hits)
	}
}

func TestReadRepairScheduledOnPartialQuery(t *testing.T) {
	ip, db := chaosCluster(t)
	ctx := context.Background()
	hm := NewHealthMonitor(ip.Cluster, HealthConfig{DownAfter: 2})
	query, _ := findSpanningQuery(t, ip, db)

	for _, addr := range ip.Topology().GroupNodes(1) {
		ip.Net.Fail(addr)
	}
	_, trace, err := ip.SearchTrace(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Partial {
		t.Fatalf("whole-group outage not partial: %s", trace)
	}
	if got := ip.PendingRepairGroups(); got != 1 {
		t.Fatalf("pending repair groups = %d, want 1", got)
	}

	// While the whole group is down the repair stays scheduled.
	hm.ProbeOnce(ctx)
	if got := ip.PendingRepairGroups(); got != 1 {
		t.Fatalf("repair of an all-down group should stay scheduled, pending = %d", got)
	}

	for _, addr := range ip.Topology().GroupNodes(1) {
		ip.Net.Heal(addr)
	}
	hm.ProbeOnce(ctx)
	if got := ip.PendingRepairGroups(); got != 0 {
		t.Fatalf("read repair not drained after heal, pending = %d", got)
	}
	_, trace, err = ip.SearchTrace(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if trace.Partial {
		t.Fatalf("still partial after read repair: %s", trace)
	}
}

func TestRepairRestoresWipedNode(t *testing.T) {
	ip, db := chaosCluster(t)
	ctx := context.Background()
	hm := NewHealthMonitor(ip.Cluster, HealthConfig{DownAfter: 2})

	victim := ip.Nodes[3].Addr()
	before := nodeStats(t, nodeByAddr(t, ip, victim))
	if before.Blocks == 0 {
		t.Fatalf("victim %s holds no blocks; pick another", victim)
	}

	// Crash-restart with empty state: a fresh node object takes over the
	// address, answering pings with Booted=false.
	fresh := node.New(victim, ip.Net.Bind(victim))
	ip.Net.Register(victim, fresh)
	hm.ProbeOnce(ctx) // re-bootstraps the empty node

	rep, err := ip.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksMoved == 0 {
		t.Fatalf("repair moved nothing: %s", rep)
	}
	if rep.Unrepairable != 0 || rep.PushErrors != 0 || len(rep.Unreachable) != 0 {
		t.Fatalf("repair not clean: %s", rep)
	}

	after := nodeStats(t, fresh)
	if after.Blocks != before.Blocks || after.Sequences != before.Sequences {
		t.Fatalf("wiped node restored to blocks=%d seqs=%d, want blocks=%d seqs=%d",
			after.Blocks, after.Sequences, before.Blocks, before.Sequences)
	}

	// Placement is converged: a second pass finds nothing to move.
	rep2, err := ip.Repair(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.BlocksMoved != 0 || rep2.SequencesMoved != 0 {
		t.Fatalf("second repair pass still moved data: %s", rep2)
	}

	hits, trace, err := ip.SearchTrace(ctx, db.Seqs[11].Data[50:180], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if trace.Partial || len(hits) == 0 || hits[0].Seq != 11 {
		t.Fatalf("post-repair query degraded: %s %+v", trace, hits)
	}
}

// TestManifestChurnRoundTrip covers membership churn across a manifest
// save/load cycle: join one node, remove another, persist, restore — the
// restored coordinator must carry the post-churn groups and sequence ring
// and answer queries with full recall.
func TestManifestChurnRoundTrip(t *testing.T) {
	ip, db := chaosCluster(t)
	ctx := context.Background()

	joiner := node.New("node-new", ip.Net.Bind("node-new"))
	ip.Net.Register("node-new", joiner)
	if err := ip.AddNode(ctx, 0, "node-new"); err != nil {
		t.Fatal(err)
	}
	victim := ip.Topology().GroupNodes(1)[0]
	if err := ip.RemoveNode(ctx, victim); err != nil {
		t.Fatal(err)
	}

	// More data lands on the post-churn layout (some of it on the joiner).
	rng := rand.New(rand.NewSource(76))
	db2 := buildTestDB(rng, 10, 300)
	if err := ip.Index(ctx, db2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ip.SaveManifest(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadManifest(&buf, ip.Net)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := restored.Topology().NumNodes(), ip.Topology().NumNodes(); got != want {
		t.Fatalf("restored topology has %d nodes, want %d", got, want)
	}
	if _, ok := restored.Topology().GroupOf("node-new"); !ok {
		t.Fatal("joiner missing from restored topology")
	}
	if _, ok := restored.Topology().GroupOf(victim); ok {
		t.Fatal("removed node still in restored topology")
	}

	for _, tc := range []struct {
		id    int
		query []byte
	}{
		{11, db.Seqs[11].Data[50:180]},
		{db.Len() + 4, db2.Seqs[4].Data[40:170]},
	} {
		hits, trace, err := restored.SearchTrace(ctx, tc.query, defaultTestParams())
		if err != nil {
			t.Fatal(err)
		}
		if trace.Partial || len(hits) == 0 || int(hits[0].Seq) != tc.id {
			t.Fatalf("restored cluster recall lost for seq %d: %s %+v", tc.id, trace, hits)
		}
	}

	// The restored coordinator can run the full self-healing loop too.
	hm := NewHealthMonitor(restored, HealthConfig{DownAfter: 2})
	hm.ProbeOnce(ctx)
	for _, n := range hm.Snapshot() {
		if n.State != HealthUp {
			t.Fatalf("restored cluster health: %+v", n)
		}
	}
	if _, err := restored.Repair(ctx); err != nil {
		t.Fatal(err)
	}
}
