package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

const proteinLetters = "ARNDCQEGHILKMFPSTWYV"

func randProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = proteinLetters[rng.Intn(len(proteinLetters))]
	}
	return out
}

// mutateSubs substitutes roughly rate of the residues.
func mutateSubs(rng *rand.Rand, in []byte, rate float64) []byte {
	out := append([]byte(nil), in...)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = proteinLetters[rng.Intn(len(proteinLetters))]
		}
	}
	return out
}

// buildTestDB creates a protein database of n random sequences of the given
// length, returning the set.
func buildTestDB(rng *rand.Rand, n, length int) *seq.Set {
	set := seq.NewSet(seq.Protein)
	for i := 0; i < n; i++ {
		if _, err := set.Add("ref", randProtein(rng, length)); err != nil {
			panic(err)
		}
	}
	return set
}

func defaultTestParams() wire.Params {
	p := wire.DefaultParams()
	p.Neighbors = 8
	return p
}

func newTestCluster(t *testing.T, numNodes, groups int) *InProcess {
	t.Helper()
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = groups
	cfg.SampleSize = 500
	ip, err := NewInProcess(cfg, numNodes, transport.WithEncodeCheck())
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(seq.Protein).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(seq.Protein)
	bad.BlockLen = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero BlockLen accepted")
	}
	bad = DefaultConfig(seq.Protein)
	bad.Groups = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero groups accepted")
	}
}

func TestNewInProcessValidation(t *testing.T) {
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 5
	if _, err := NewInProcess(cfg, 3); err == nil {
		t.Fatal("fewer nodes than groups accepted")
	}
}

func TestIndexAndSearchExactHomolog(t *testing.T) {
	ip := newTestCluster(t, 8, 4)
	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()

	db := buildTestDB(rng, 30, 300)
	target := db.Seqs[17]
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	if ip.TotalResidues() != 30*300 {
		t.Fatalf("total residues = %d", ip.TotalResidues())
	}

	query := target.Data[50:150] // exact 100-residue excerpt
	hits, err := ip.Search(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("exact excerpt not found")
	}
	top := hits[0]
	if top.Seq != 17 {
		t.Fatalf("top hit seq = %d, want 17", top.Seq)
	}
	if top.Alignment.SStart > 50 || top.Alignment.SEnd < 150 {
		t.Fatalf("top hit span = %+v", top.Alignment.Segment)
	}
	if top.E > 1e-10 {
		t.Fatalf("exact hit E-value = %g", top.E)
	}
}

func TestSearchMutatedHomolog(t *testing.T) {
	ip := newTestCluster(t, 6, 3)
	rng := rand.New(rand.NewSource(2))
	ctx := context.Background()
	db := buildTestDB(rng, 20, 400)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	// 15% substitutions over a 120-residue excerpt of sequence 5.
	query := mutateSubs(rng, db.Seqs[5].Data[100:220], 0.15)
	hits, err := ip.Search(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("mutated homolog not found")
	}
	if hits[0].Seq != 5 {
		t.Fatalf("top hit = seq %d, want 5", hits[0].Seq)
	}
}

func TestSearchNoFalsePositivesOnRandomQuery(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()
	if err := ip.Index(ctx, buildTestDB(rng, 10, 300)); err != nil {
		t.Fatal(err)
	}
	p := defaultTestParams()
	p.MaxE = 1e-6 // strict: random matches must not pass
	hits, err := ip.Search(ctx, randProtein(rng, 100), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("random query produced %d significant hits; best E=%g", len(hits), hits[0].E)
	}
}

func TestSearchValidation(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(4))

	if _, err := ip.Search(ctx, randProtein(rng, 100), defaultTestParams()); err != ErrNotIndexed {
		t.Fatalf("search before index: %v", err)
	}
	if err := ip.Index(ctx, buildTestDB(rng, 5, 200)); err != nil {
		t.Fatal(err)
	}
	bad := defaultTestParams()
	bad.Step = 0
	if _, err := ip.Search(ctx, randProtein(rng, 100), bad); err == nil {
		t.Error("invalid params accepted")
	}
	unk := defaultTestParams()
	unk.Matrix = "NOPE"
	if _, err := ip.Search(ctx, randProtein(rng, 100), unk); err == nil {
		t.Error("unknown matrix accepted")
	}
	if _, err := ip.Search(ctx, []byte("ACD"), defaultTestParams()); err == nil {
		t.Error("query shorter than block accepted")
	}
	if _, err := ip.Search(ctx, []byte("!!!!!!!!!!!!!!!!!!!!"), defaultTestParams()); err == nil {
		t.Error("invalid residues accepted")
	}
}

func TestIndexValidation(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	ctx := context.Background()
	if err := ip.Index(ctx, seq.NewSet(seq.Protein)); err == nil {
		t.Error("empty set accepted")
	}
	if err := ip.Index(ctx, seq.NewSet(seq.DNA)); err == nil {
		t.Error("wrong-kind set accepted")
	}
	short := seq.NewSet(seq.Protein)
	if _, err := short.Add("tiny", []byte("ACD")); err != nil {
		t.Fatal(err)
	}
	if err := ip.Index(ctx, short); err == nil {
		t.Error("set with no indexable sequence accepted")
	}
}

func TestIncrementalIndexGrowsDatabase(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()
	first := buildTestDB(rng, 10, 200)
	if err := ip.Index(ctx, first); err != nil {
		t.Fatal(err)
	}
	second := buildTestDB(rng, 10, 200)
	if err := ip.Index(ctx, second); err != nil {
		t.Fatal(err)
	}
	if ip.NumSequences() != 20 {
		t.Fatalf("sequences = %d", ip.NumSequences())
	}
	if ip.TotalResidues() != 20*200 {
		t.Fatalf("residues = %d", ip.TotalResidues())
	}
	// A sequence from the second batch must be findable under its global ID.
	query := second.Seqs[3].Data[20:120]
	hits, err := ip.Search(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 13 {
		t.Fatalf("incremental hit = %+v", hits)
	}
}

func TestStatsCoverAllNodesAndBlocks(t *testing.T) {
	ip := newTestCluster(t, 6, 3)
	rng := rand.New(rand.NewSource(6))
	ctx := context.Background()
	db := buildTestDB(rng, 12, 250)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	stats, err := ip.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 6 {
		t.Fatalf("stats from %d nodes", len(stats))
	}
	totalBlocks := 0
	for _, s := range stats {
		totalBlocks += s.Blocks
	}
	want := 12 * (250 - ip.Config().BlockLen + 1)
	if totalBlocks != want {
		t.Fatalf("total blocks = %d, want %d", totalBlocks, want)
	}
}

func TestSearchSurvivesNodeFailure(t *testing.T) {
	ip := newTestCluster(t, 8, 2)
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	db := buildTestDB(rng, 20, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	query := db.Seqs[2].Data[10:140]
	// Fail one node; group fan-out must route around it via another entry
	// point and skip its local share.
	ip.Net.Fail("node-003")
	hits, err := ip.Search(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatalf("search with failed node: %v", err)
	}
	// The hit may or may not survive (the failed node held part of the
	// data), but typically enough blocks remain.
	_ = hits
	ip.Net.Heal("node-003")
	hits, err = ip.Search(ctx, query, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 2 {
		t.Fatalf("hit after heal = %+v", hits)
	}
}

func TestSearchEntireGroupDownFails(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(8))
	ctx := context.Background()
	if err := ip.Index(ctx, buildTestDB(rng, 10, 300)); err != nil {
		t.Fatal(err)
	}
	for _, n := range ip.Nodes {
		ip.Net.Fail(n.Addr())
	}
	if _, err := ip.Search(ctx, randProtein(rng, 100), defaultTestParams()); err == nil {
		t.Fatal("search succeeded with whole cluster down")
	}
}

func TestHitFormatting(t *testing.T) {
	ip := newTestCluster(t, 4, 2)
	rng := rand.New(rand.NewSource(9))
	ctx := context.Background()
	db := buildTestDB(rng, 5, 300)
	if err := ip.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	hits, err := ip.Search(ctx, db.Seqs[1].Data[0:100], defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	h := hits[0]
	if h.Name != "ref" {
		t.Fatalf("name = %q", h.Name)
	}
	if h.Bits <= 0 {
		t.Fatalf("bits = %f", h.Bits)
	}
	if !strings.Contains(h.Alignment.CIGAR(), "M") {
		t.Fatalf("CIGAR = %q", h.Alignment.CIGAR())
	}
}

func TestDNAClusterEndToEnd(t *testing.T) {
	cfg := DefaultConfig(seq.DNA)
	cfg.Groups = 2
	cfg.SampleSize = 300
	ip, err := NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	ctx := context.Background()
	set := seq.NewSet(seq.DNA)
	const dnaLetters = "ACGT"
	for i := 0; i < 10; i++ {
		data := make([]byte, 500)
		for j := range data {
			data[j] = dnaLetters[rng.Intn(4)]
		}
		if _, err := set.Add("chr", data); err != nil {
			t.Fatal(err)
		}
	}
	if err := ip.Index(ctx, set); err != nil {
		t.Fatal(err)
	}
	p := wire.DefaultParams()
	p.Matrix = "DNA"
	p.Identity = 0.8
	hits, err := ip.Search(ctx, set.Seqs[4].Data[100:250], p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Seq != 4 {
		t.Fatalf("DNA hits = %+v", hits)
	}
}
