package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"mendel/internal/seq"
	"mendel/internal/transport"
)

// newIngestCluster builds an 8-node/4-group protein cluster with the given
// ingest worker count, over the same deterministic configuration.
func newIngestCluster(t *testing.T, workers int) *InProcess {
	t.Helper()
	cfg := DefaultConfig(seq.Protein)
	cfg.Groups = 4
	cfg.SampleSize = 500
	cfg.IngestWorkers = workers
	ip, err := NewInProcess(cfg, 8, transport.WithEncodeCheck())
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

// TestIngestSerialParallelEquivalence is the contract of the staged ingest
// protocol: the serial (IngestWorkers=1) and parallel pipelines must place
// every block on the same node and build identical local vp-trees, so
// queries answer identically. Placement is content-hashed and trees are
// built from the sorted staged set, so neither may depend on ingest
// concurrency or RPC arrival order. Run under -race this also exercises the
// sender/worker synchronization.
func TestIngestSerialParallelEquivalence(t *testing.T) {
	ctx := context.Background()
	serial := newIngestCluster(t, 1)
	parallel := newIngestCluster(t, 8)

	// Identical databases, from identical seeds.
	dbSerial := buildTestDB(rand.New(rand.NewSource(42)), 40, 400)
	dbParallel := buildTestDB(rand.New(rand.NewSource(42)), 40, 400)

	if err := serial.Index(ctx, dbSerial); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Index(ctx, dbParallel); err != nil {
		t.Fatal(err)
	}

	// Block placement and tree construction must match node for node.
	ss, err := serial.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := parallel.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != len(ps) {
		t.Fatalf("stats length %d vs %d", len(ss), len(ps))
	}
	for i := range ss {
		if ss[i].Node != ps[i].Node ||
			ss[i].Blocks != ps[i].Blocks ||
			ss[i].Residues != ps[i].Residues ||
			ss[i].Sequences != ps[i].Sequences ||
			ss[i].TreeSize != ps[i].TreeSize {
			t.Errorf("node %s diverged: serial {blocks %d residues %d seqs %d tree %d} parallel {blocks %d residues %d seqs %d tree %d}",
				ss[i].Node, ss[i].Blocks, ss[i].Residues, ss[i].Sequences, ss[i].TreeSize,
				ps[i].Blocks, ps[i].Residues, ps[i].Sequences, ps[i].TreeSize)
		}
	}

	// Queries — exact fragments and mutated homologs — must answer
	// identically, hit for hit.
	rng := rand.New(rand.NewSource(99))
	params := defaultTestParams()
	for trial := 0; trial < 6; trial++ {
		src := dbSerial.Seqs[rng.Intn(len(dbSerial.Seqs))]
		start := rng.Intn(src.Len() - 120)
		query := append([]byte(nil), src.Data[start:start+120]...)
		if trial%2 == 1 {
			query = mutateSubs(rng, query, 0.1)
		}
		hs, err := serial.Search(ctx, query, params)
		if err != nil {
			t.Fatal(err)
		}
		hp, err := parallel.Search(ctx, query, params)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(hs, hp) {
			t.Fatalf("trial %d: serial and parallel clusters returned different hits:\n%v\nvs\n%v", trial, hs, hp)
		}
	}
}

// TestIngestParallelGrowsDatabase re-indexes a second set into an existing
// parallel cluster — Index must be repeatable, and hits from both batches
// must be found.
func TestIngestParallelGrowsDatabase(t *testing.T) {
	ctx := context.Background()
	ip := newIngestCluster(t, 4)

	first := buildTestDB(rand.New(rand.NewSource(7)), 20, 300)
	second := buildTestDB(rand.New(rand.NewSource(8)), 20, 300)
	if err := ip.Index(ctx, first); err != nil {
		t.Fatal(err)
	}
	if err := ip.Index(ctx, second); err != nil {
		t.Fatal(err)
	}
	if got, want := ip.TotalResidues(), 40*300; got != want {
		t.Fatalf("total residues = %d, want %d", got, want)
	}

	// Global IDs: the first batch occupies [0,20), the second [20,40).
	params := defaultTestParams()
	cases := []struct {
		src *seq.Sequence
		gid seq.ID
	}{
		{first.Seqs[3], 3},
		{second.Seqs[5], 25},
	}
	for _, tc := range cases {
		query := tc.src.Data[50:170]
		hits, err := ip.Search(ctx, query, params)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, h := range hits {
			if h.Seq == tc.gid {
				found = true
			}
		}
		if !found {
			t.Fatalf("exact fragment of global sequence %d not found after growth (%d hits)", tc.gid, len(hits))
		}
	}
}
