package core

import (
	"context"
	"fmt"

	"mendel/internal/invindex"
	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/vphash"
	"mendel/internal/wire"
)

// indexBatchBlocks is the number of blocks accumulated per node before an
// IndexBlocks message is flushed; batches keep the local vp-trees on the
// fast InsertBatch path (§III-D).
const indexBatchBlocks = 4096

// Index ingests a sequence set into the cluster following §V-A:
//
//  1. on the first call, a sample of inverted index blocks seeds the
//     vp-prefix hash tree, which is then shipped to every node in a
//     Bootstrap message together with the topology;
//  2. full sequences are placed on their repository shards (consulted later
//     for gapped extension);
//  3. every sequence is fragmented into stride-1 blocks, each hashed first
//     to a group (vp-prefix tree) and then to a node within the group
//     (flat SHA-1 ring), and shipped in batches.
//
// Sequence IDs are remapped onto a cluster-global dense ID space so Index
// may be called repeatedly to grow the database.
func (c *Cluster) Index(ctx context.Context, set *seq.Set) error {
	if set.Kind != c.cfg.Kind {
		return fmt.Errorf("core: indexing %v data into a %v cluster", set.Kind, c.cfg.Kind)
	}
	if set.Len() == 0 {
		return fmt.Errorf("core: empty sequence set")
	}
	blockCfg := invindex.Config{BlockLen: c.cfg.BlockLen, Margin: c.cfg.Margin}
	if err := blockCfg.Validate(); err != nil {
		return err
	}

	c.mu.Lock()
	if c.hashTree == nil {
		tree, err := c.buildHashTree(set, blockCfg)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		c.hashTree = tree
		c.mu.Unlock()
		if err := c.bootstrapNodes(ctx); err != nil {
			return err
		}
		c.mu.Lock()
	}
	base := c.nextID
	c.nextID += seq.ID(set.Len())
	for _, s := range set.Seqs {
		gid := base + s.ID
		c.names[gid] = s.Name
		c.lengths[gid] = s.Len()
		c.totalResidues += s.Len()
	}
	tree := c.hashTree
	c.mu.Unlock()

	if err := c.storeSequences(ctx, set, base); err != nil {
		return err
	}
	return c.dispatchBlocks(ctx, set, base, blockCfg, tree)
}

// buildHashTree samples block contents evenly across the set and builds the
// vp-prefix tree (§V-A2). Callers hold c.mu.
func (c *Cluster) buildHashTree(set *seq.Set, blockCfg invindex.Config) (*vphash.Tree, error) {
	total := 0
	for _, s := range set.Seqs {
		total += invindex.BlockCount(s.Len(), blockCfg.BlockLen)
	}
	if total == 0 {
		return nil, fmt.Errorf("core: no sequence long enough for %d-residue blocks", blockCfg.BlockLen)
	}
	stride := total / c.cfg.SampleSize
	if stride < 1 {
		stride = 1
	}
	var sample [][]byte
	count := 0
	for _, s := range set.Seqs {
		for start := 0; start+blockCfg.BlockLen <= s.Len(); start++ {
			if count%stride == 0 {
				sample = append(sample, s.Window(start, blockCfg.BlockLen))
			}
			count++
		}
	}
	depth := c.cfg.DepthThreshold
	if depth == 0 {
		depth = vphash.HalfDepth(len(sample))
	}
	return vphash.Build(c.met, sample, depth, c.cfg.Groups, c.cfg.Seed)
}

// bootstrapNodes ships the shared cluster state to every node.
func (c *Cluster) bootstrapNodes(ctx context.Context) error {
	c.mu.RLock()
	enc, err := c.hashTree.MarshalBinary()
	c.mu.RUnlock()
	if err != nil {
		return err
	}
	boot := wire.Bootstrap{
		HashTree:     enc,
		Metric:       c.met.Name(),
		BlockLen:     c.cfg.BlockLen,
		Margin:       c.cfg.Margin,
		Groups:       c.groups,
		Kind:         c.cfg.Kind,
		SearchBudget: c.cfg.searchBudget(),
	}
	if _, err := transport.Broadcast(ctx, c.caller, c.topo.AllNodes(), boot); err != nil {
		return fmt.Errorf("core: bootstrap: %w", err)
	}
	return nil
}

// storeSequences places each sequence on its repository shard.
func (c *Cluster) storeSequences(ctx context.Context, set *seq.Set, base seq.ID) error {
	byNode := make(map[string]*wire.StoreSequences)
	for _, s := range set.Seqs {
		gid := base + s.ID
		for _, node := range c.seqRing.LookupN(seqKey(gid), c.cfg.replicas()) {
			msg := byNode[node]
			if msg == nil {
				msg = &wire.StoreSequences{}
				byNode[node] = msg
			}
			msg.IDs = append(msg.IDs, gid)
			msg.Names = append(msg.Names, s.Name)
			msg.Data = append(msg.Data, s.Data)
		}
	}
	for node, msg := range byNode {
		if _, err := c.caller.Call(ctx, node, *msg); err != nil {
			return fmt.Errorf("core: storing sequences on %s: %w", node, err)
		}
	}
	return nil
}

// dispatchBlocks fragments, hashes and ships every block.
func (c *Cluster) dispatchBlocks(ctx context.Context, set *seq.Set, base seq.ID, blockCfg invindex.Config, tree *vphash.Tree) error {
	pending := make(map[string][]wire.Block)
	flush := func(node string) error {
		blocks := pending[node]
		if len(blocks) == 0 {
			return nil
		}
		if _, err := c.caller.Call(ctx, node, wire.IndexBlocks{Blocks: blocks}); err != nil {
			return fmt.Errorf("core: indexing blocks on %s: %w", node, err)
		}
		pending[node] = nil
		return nil
	}
	replicas := c.cfg.replicas()
	for _, s := range set.Seqs {
		gid := base + s.ID
		for _, b := range invindex.Blocks(s, blockCfg) {
			group := tree.Group(b.Content) // tier 1: similarity
			// Tier 2: flat SHA-1 ring within the group, with optional
			// replication to the next distinct ring members.
			for _, node := range c.topo.ReplicasFor(group, b.Content, replicas) {
				pending[node] = append(pending[node], wire.Block{
					Seq:     gid,
					Start:   b.Start,
					Content: b.Content,
					Context: b.Context,
					CtxOff:  b.CtxOff,
				})
				if len(pending[node]) >= indexBatchBlocks {
					if err := flush(node); err != nil {
						return err
					}
				}
			}
		}
	}
	for node := range pending {
		if err := flush(node); err != nil {
			return err
		}
	}
	return nil
}
