package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mendel/internal/invindex"
	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/vphash"
	"mendel/internal/wire"
)

// indexBatchBlocks is the number of blocks accumulated per node before an
// IndexBlocks message is flushed; batches keep the local vp-trees on the
// fast InsertBatch path (§III-D).
const indexBatchBlocks = 4096

// Index ingests a sequence set into the cluster following §V-A:
//
//  1. on the first call, a sample of inverted index blocks seeds the
//     vp-prefix hash tree, which is then shipped to every node in a
//     Bootstrap message together with the topology;
//  2. full sequences are placed on their repository shards (consulted later
//     for gapped extension);
//  3. every sequence is fragmented into stride-1 blocks, each hashed first
//     to a group (vp-prefix tree) and then to a node within the group
//     (flat SHA-1 ring), and shipped in batches.
//
// Sequence IDs are remapped onto a cluster-global dense ID space so Index
// may be called repeatedly to grow the database.
func (c *Cluster) Index(ctx context.Context, set *seq.Set) error {
	if set.Kind != c.cfg.Kind {
		return fmt.Errorf("core: indexing %v data into a %v cluster", set.Kind, c.cfg.Kind)
	}
	if set.Len() == 0 {
		return fmt.Errorf("core: empty sequence set")
	}
	blockCfg := invindex.Config{BlockLen: c.cfg.BlockLen, Margin: c.cfg.Margin}
	if err := blockCfg.Validate(); err != nil {
		return err
	}

	c.mu.Lock()
	if c.hashTree == nil {
		tree, err := c.buildHashTree(set, blockCfg)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		c.hashTree = tree
		c.mu.Unlock()
		if err := c.bootstrapNodes(ctx); err != nil {
			return err
		}
		c.mu.Lock()
	}
	base := c.nextID
	c.nextID += seq.ID(set.Len())
	for _, s := range set.Seqs {
		gid := base + s.ID
		c.names[gid] = s.Name
		c.lengths[gid] = s.Len()
		c.totalResidues += s.Len()
	}
	tree := c.hashTree
	c.mu.Unlock()

	if err := c.storeSequences(ctx, set, base); err != nil {
		return err
	}
	if err := c.dispatchBlocks(ctx, set, base, blockCfg, tree); err != nil {
		return err
	}
	// Sketch maintenance: per-sequence MinHash signatures for the
	// alignment-free Similarity mode, then a pull of the nodes' merged
	// group sketches so the prefilter sees the new data. Both are no-ops
	// when sketching is disabled.
	c.updateSeqSketches(set, base)
	c.refreshSketches(ctx)
	return nil
}

// buildHashTree samples block contents evenly across the set and builds the
// vp-prefix tree (§V-A2). Callers hold c.mu.
func (c *Cluster) buildHashTree(set *seq.Set, blockCfg invindex.Config) (*vphash.Tree, error) {
	total := 0
	for _, s := range set.Seqs {
		total += invindex.BlockCount(s.Len(), blockCfg.BlockLen)
	}
	if total == 0 {
		return nil, fmt.Errorf("core: no sequence long enough for %d-residue blocks", blockCfg.BlockLen)
	}
	stride := total / c.cfg.SampleSize
	if stride < 1 {
		stride = 1
	}
	var sample [][]byte
	count := 0
	for _, s := range set.Seqs {
		for start := 0; start+blockCfg.BlockLen <= s.Len(); start++ {
			if count%stride == 0 {
				sample = append(sample, s.Window(start, blockCfg.BlockLen))
			}
			count++
		}
	}
	depth := c.cfg.DepthThreshold
	if depth == 0 {
		depth = vphash.HalfDepth(len(sample))
	}
	return vphash.Build(c.met, sample, depth, c.cfg.Groups, c.cfg.Seed)
}

// bootstrapNodes ships the shared cluster state to every node. Individual
// unreachable nodes do not fail the bootstrap — the health monitor
// re-bootstraps them on recovery (Pong.Booted tells it to) — but a cluster
// where nobody answers, or a live node that rejects the state, does.
func (c *Cluster) bootstrapNodes(ctx context.Context) error {
	boot, err := c.bootstrapMsg()
	if err != nil {
		return err
	}
	nodes := c.topology().AllNodes()
	_, errs := transport.BroadcastAll(ctx, c.caller, nodes, boot)
	reached := 0
	for i, e := range errs {
		switch {
		case e == nil:
			reached++
		case errors.Is(e, transport.ErrUnreachable):
			// Recovered later by the health monitor.
		default:
			return fmt.Errorf("core: bootstrap %s: %w", nodes[i], e)
		}
	}
	if reached == 0 {
		return fmt.Errorf("core: bootstrap: no node reachable")
	}
	return nil
}

// bootstrapMsg assembles the Bootstrap message carrying the current shared
// cluster state, used both at first ingest and when the health monitor
// re-bootstraps a node that restarted empty.
func (c *Cluster) bootstrapMsg() (wire.Bootstrap, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.hashTree == nil {
		return wire.Bootstrap{}, ErrNotIndexed
	}
	enc, err := c.hashTree.MarshalBinary()
	if err != nil {
		return wire.Bootstrap{}, err
	}
	sp := c.cfg.sketchParams()
	return wire.Bootstrap{
		HashTree:        enc,
		Metric:          c.met.Name(),
		BlockLen:        c.cfg.BlockLen,
		Margin:          c.cfg.Margin,
		Groups:          c.groups,
		Kind:            c.cfg.Kind,
		SearchBudget:    c.cfg.searchBudget(),
		SketchK:         sp.K,
		SketchBloomBits: sp.BloomBits,
		SketchMinHashK:  sp.MinHashK,
	}, nil
}

// storeSequences places each sequence on its repository shard. Shards are
// independent, so the per-node StoreSequences calls run concurrently unless
// the serial pipeline (IngestWorkers = 1) was requested. An unreachable
// shard does not fail the ingest: its write set is parked as a hint and
// replayed when the health monitor sees the node return (with Replicas >= 2
// the surviving copies keep queries at full recall meanwhile).
func (c *Cluster) storeSequences(ctx context.Context, set *seq.Set, base seq.ID) error {
	byNode := make(map[string]*wire.StoreSequences)
	for _, s := range set.Seqs {
		gid := base + s.ID
		for _, node := range c.seqRing.LookupN(seqKey(gid), c.cfg.replicas()) {
			msg := byNode[node]
			if msg == nil {
				msg = &wire.StoreSequences{}
				byNode[node] = msg
			}
			msg.IDs = append(msg.IDs, gid)
			msg.Names = append(msg.Names, s.Name)
			msg.Data = append(msg.Data, s.Data)
		}
	}
	store := func(node string, msg *wire.StoreSequences) error {
		if _, err := c.caller.Call(ctx, node, *msg); err != nil {
			if errors.Is(err, transport.ErrUnreachable) {
				c.hintSequences(node, *msg)
				return nil
			}
			return fmt.Errorf("core: storing sequences on %s: %w", node, err)
		}
		return nil
	}
	if c.cfg.ingestWorkers() <= 1 {
		for node, msg := range byNode {
			if err := store(node, msg); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for node, msg := range byNode {
		wg.Add(1)
		go func(node string, msg *wire.StoreSequences) {
			defer wg.Done()
			if err := store(node, msg); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}(node, msg)
	}
	wg.Wait()
	return firstErr
}

// hintSequences parks an undeliverable StoreSequences as a hinted handoff.
func (c *Cluster) hintSequences(node string, msg wire.StoreSequences) {
	c.hints.addSequences(node, msg)
	c.reg.Counter("hints_queued").Add(int64(len(msg.IDs)))
}

// hintBlocks parks undeliverable blocks as a hinted handoff.
func (c *Cluster) hintBlocks(node string, blocks []wire.Block) {
	c.hints.addBlocks(node, blocks)
	c.reg.Counter("hints_queued").Add(int64(len(blocks)))
}

// dispatchBlocks fragments, hashes and ships every block, then broadcasts
// BuildIndex so each node folds its staged blocks into the local vp-tree
// with one bulk median-split build. Both pipelines stage: nodes sort the
// staged set before building, so the serial and parallel paths produce
// byte-identical trees (asserted by TestIngestSerialParallelEquivalence).
func (c *Cluster) dispatchBlocks(ctx context.Context, set *seq.Set, base seq.ID, blockCfg invindex.Config, tree *vphash.Tree) error {
	var err error
	if workers := c.cfg.ingestWorkers(); workers <= 1 {
		err = c.dispatchSerial(ctx, set, base, blockCfg, tree)
	} else {
		err = c.dispatchParallel(ctx, set, base, blockCfg, tree, workers)
	}
	if err != nil {
		return err
	}
	// A node that went down mid-ingest must not fail the build for everyone
	// else: its staged blocks are parked as hints, and the recovery sequence
	// always ends with a BuildIndex, so nothing is lost — only deferred.
	nodes := c.topology().AllNodes()
	_, errs := transport.BroadcastAll(ctx, c.caller, nodes, wire.BuildIndex{})
	for i, e := range errs {
		if e != nil && !errors.Is(e, transport.ErrUnreachable) {
			return fmt.Errorf("core: building local index on %s: %w", nodes[i], e)
		}
	}
	return nil
}

// dispatchSerial is the single-threaded ingest pipeline, kept both as the
// IngestWorkers=1 escape hatch and as the baseline the perf harness and the
// equivalence test compare the parallel pipeline against.
func (c *Cluster) dispatchSerial(ctx context.Context, set *seq.Set, base seq.ID, blockCfg invindex.Config, tree *vphash.Tree) error {
	pending := make(map[string][]wire.Block)
	flush := func(node string) error {
		blocks := pending[node]
		if len(blocks) == 0 {
			return nil
		}
		if _, err := c.caller.Call(ctx, node, wire.IndexBlocks{Blocks: blocks, Stage: true}); err != nil {
			if errors.Is(err, transport.ErrUnreachable) {
				// Hinted handoff: park the batch for replay on recovery
				// instead of failing the ingest (§VII-B fault tolerance).
				c.hintBlocks(node, blocks)
				pending[node] = nil
				return nil
			}
			return fmt.Errorf("core: indexing blocks on %s: %w", node, err)
		}
		pending[node] = nil
		return nil
	}
	replicas := c.cfg.replicas()
	topo := c.topology()
	for _, s := range set.Seqs {
		gid := base + s.ID
		for _, b := range invindex.Blocks(s, blockCfg) {
			group := tree.Group(b.Content) // tier 1: similarity
			// Tier 2: flat SHA-1 ring within the group, with optional
			// replication to the next distinct ring members.
			for _, node := range topo.ReplicasFor(group, b.Content, replicas) {
				pending[node] = append(pending[node], wire.Block{
					Seq:     gid,
					Start:   b.Start,
					Content: b.Content,
					Context: b.Context,
					CtxOff:  b.CtxOff,
				})
				if len(pending[node]) >= indexBatchBlocks {
					if err := flush(node); err != nil {
						return err
					}
				}
			}
		}
	}
	for node := range pending {
		if err := flush(node); err != nil {
			return err
		}
	}
	return nil
}

// dispatchParallel is the concurrent ingest pipeline: a bounded pool of
// fragmentation workers pulls whole sequences from a feed, fragments them
// into blocks and hashes each through both DHT tiers (vp-prefix tree, then
// the group's SHA-1 ring), accumulating worker-local per-node batches; full
// batches are handed to one sender goroutine per node, which serializes that
// node's IndexBlocks RPCs. Fragmenting/hashing (CPU) thus overlaps with RPC
// encode/transfer, and no two goroutines ever write to the same node
// concurrently. The first error cancels the pipeline; block placement is a
// pure function of content, so concurrency never changes where a block
// lands, and staging (see dispatchBlocks) keeps the trees deterministic.
func (c *Cluster) dispatchParallel(ctx context.Context, set *seq.Set, base seq.ID, blockCfg invindex.Config, tree *vphash.Tree, workers int) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	nodes := c.topology().AllNodes()
	sendCh := make(map[string]chan []wire.Block, len(nodes))
	var senders sync.WaitGroup
	for _, node := range nodes {
		ch := make(chan []wire.Block, workers)
		sendCh[node] = ch
		senders.Add(1)
		go func(node string, ch <-chan []wire.Block) {
			defer senders.Done()
			for blocks := range ch {
				if ctx.Err() != nil {
					continue // failed: drain so workers never block
				}
				if _, err := c.caller.Call(ctx, node, wire.IndexBlocks{Blocks: blocks, Stage: true}); err != nil {
					if errors.Is(err, transport.ErrUnreachable) {
						// Hinted handoff, as in the serial pipeline; the
						// sender goroutine owns this node's batches, so
						// hints preserve delivery order per node.
						c.hintBlocks(node, blocks)
						continue
					}
					fail(fmt.Errorf("core: indexing blocks on %s: %w", node, err))
				}
			}
		}(node, ch)
	}

	replicas := c.cfg.replicas()
	topo := c.topology()
	seqCh := make(chan *seq.Sequence)
	var frags sync.WaitGroup
	for w := 0; w < workers; w++ {
		frags.Add(1)
		go func() {
			defer frags.Done()
			pending := make(map[string][]wire.Block)
			emit := func(node string, blocks []wire.Block) {
				select {
				case sendCh[node] <- blocks:
				case <-ctx.Done():
				}
			}
			for s := range seqCh {
				if ctx.Err() != nil {
					continue // drain the feed after a failure
				}
				gid := base + s.ID
				for _, b := range invindex.Blocks(s, blockCfg) {
					group := tree.Group(b.Content)
					for _, node := range topo.ReplicasFor(group, b.Content, replicas) {
						pending[node] = append(pending[node], wire.Block{
							Seq:     gid,
							Start:   b.Start,
							Content: b.Content,
							Context: b.Context,
							CtxOff:  b.CtxOff,
						})
						if len(pending[node]) >= indexBatchBlocks {
							emit(node, pending[node])
							pending[node] = nil
						}
					}
				}
			}
			for node, blocks := range pending {
				if len(blocks) > 0 {
					emit(node, blocks)
				}
			}
		}()
	}

feed:
	for _, s := range set.Seqs {
		select {
		case seqCh <- s:
		case <-ctx.Done():
			break feed
		}
	}
	close(seqCh)
	frags.Wait()
	for _, ch := range sendCh {
		close(ch)
	}
	senders.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
