package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"mendel"
)

// cmdTop is the live cluster dashboard: it polls the windowed telemetry —
// either a serving process's /metrics/history + /debug/slo endpoints
// (-url) or the nodes directly over RPC (-manifest) — and re-renders
// per-node qps, windowed latency quantiles, the shed/deadline/error split,
// repair/hint activity, prefilter skip rate and SLO state in place.
// -once renders a single frame without clearing the screen, for scripts
// and CI artifacts.
func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	url := fs.String("url", "", "base URL of a 'mendel serve' process (e.g. http://127.0.0.1:9090); polls /metrics/history and /debug/slo")
	manifest := fs.String("manifest", "", "manifest file from 'mendel index'; polls node histories over RPC instead of HTTP")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	window := fs.Duration("window", 30*time.Second, "trailing window for rates and quantiles")
	once := fs.Bool("once", false, "render one frame and exit (no screen clearing)")
	resilience := resilienceFlags(fs)
	wire := wireFlags(fs)
	fs.Parse(args)
	if (*url == "") == (*manifest == "") {
		log.Fatal("mendel top: provide exactly one of -url or -manifest")
	}

	var fetch func() (mendel.ClusterMetricsHistory, *mendel.SLOStatus, error)
	if *url != "" {
		base := strings.TrimSuffix(*url, "/")
		fetch = func() (mendel.ClusterMetricsHistory, *mendel.SLOStatus, error) {
			return fetchTopHTTP(base, *window)
		}
	} else {
		cluster, _ := loadManifest(*manifest, resilience(), wire())
		ctx := context.Background()
		fetch = func() (mendel.ClusterMetricsHistory, *mendel.SLOStatus, error) {
			results, down, err := cluster.HistoryDetailed(ctx, *window)
			if err != nil {
				return mendel.ClusterMetricsHistory{}, nil, err
			}
			histories := make([]mendel.MetricsHistory, 0, len(results))
			for _, r := range results {
				h := r.History
				if h.Node == "" {
					h.Node = r.Node
				}
				histories = append(histories, h)
			}
			ch := mendel.ClusterMetricsHistory{
				Merged: mendel.MergeMetricsHistories(histories...),
				Nodes:  histories,
				Down:   down,
			}
			return ch, nil, nil
		}
	}

	render := func() {
		ch, slo, err := fetch()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mendel top: %v\n", err)
			if *once {
				os.Exit(1)
			}
			return
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderTop(os.Stdout, ch, slo, *window)
	}

	render()
	if *once {
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println()
			return
		case <-tick.C:
			render()
		}
	}
}

// fetchTopHTTP pulls one dashboard frame from a serving process.
func fetchTopHTTP(base string, window time.Duration) (mendel.ClusterMetricsHistory, *mendel.SLOStatus, error) {
	var ch mendel.ClusterMetricsHistory
	histURL := fmt.Sprintf("%s/metrics/history?window=%s&nodes=1", base, window)
	if err := getJSON(histURL, &ch); err != nil {
		return ch, nil, err
	}
	// /debug/slo 404s when the server runs without a watchdog; the
	// dashboard simply omits the SLO section then.
	var slo mendel.SLOStatus
	if err := getJSON(base+"/debug/slo", &slo); err == nil {
		return ch, &slo, nil
	}
	return ch, nil, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderTop draws one dashboard frame.
func renderTop(w io.Writer, ch mendel.ClusterMetricsHistory, slo *mendel.SLOStatus, window time.Duration) {
	m := ch.Merged
	now := time.Now().Format("15:04:05")
	if n := len(m.Points); n > 0 {
		now = m.Points[n-1].T.Format("15:04:05")
	}
	fmt.Fprintf(w, "mendel top — %s  window=%v  samples=%d", now, window, len(m.Points))
	if len(ch.Down) > 0 {
		fmt.Fprintf(w, "  DOWN: %s", strings.Join(ch.Down, ","))
	}
	fmt.Fprintln(w)

	// Cluster-wide serving row: the gateway metrics when a serve process is
	// in the mix, otherwise the coordinator search path.
	qpsName, latName := "gw_requests_total", "gw_search_ns"
	if m.CounterSum(qpsName, 0) == 0 && m.CounterSum("search_total", 0) > 0 {
		qpsName, latName = "search_total", "search_ns"
	}
	fmt.Fprintf(w, "\ncluster  qps=%.1f  p50=%v p95=%v p99=%v  shed=%.1f/s deadline=%.1f/s err=%.1f/s\n",
		m.Rate(qpsName, window),
		topDur(m.Quantile(latName, 0.50, window)),
		topDur(m.Quantile(latName, 0.95, window)),
		topDur(m.Quantile(latName, 0.99, window)),
		m.Rate("gw_shed_total", window),
		m.Rate("gw_deadline_total", window),
		m.Rate("gw_errors_total", window))
	skipped := m.CounterSum("prefilter_groups_skipped", window)
	searches := m.CounterSum("search_total", window)
	skipRate := 0.0
	if searches > 0 {
		skipRate = float64(skipped) / float64(searches)
	}
	fmt.Fprintf(w, "         hints_pending=%d  repair_moved=%.1f/s  prefilter_skips=%d (%.2f/query)\n",
		m.GaugeLast("hints_pending"),
		m.Rate("repair_blocks_moved", window),
		skipped, skipRate)

	if len(ch.Nodes) > 0 {
		fmt.Fprintln(w)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "NODE\tQPS\tP50\tP95\tP99\tGOROUTINES\tHEAP\tGC/s")
		nodes := make([]mendel.MetricsHistory, len(ch.Nodes))
		copy(nodes, ch.Nodes)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
		for _, nh := range nodes {
			qps := nh.Rate("server_requests", window)
			lat := "node_local_search_ns"
			if nh.HistCount(lat, window) == 0 && nh.HistCount("gw_search_ns", window) > 0 {
				lat = "gw_search_ns"
			}
			fmt.Fprintf(tw, "%s\t%.1f\t%v\t%v\t%v\t%d\t%s\t%.2f\n",
				nh.Node, qps,
				topDur(nh.Quantile(lat, 0.50, window)),
				topDur(nh.Quantile(lat, 0.95, window)),
				topDur(nh.Quantile(lat, 0.99, window)),
				nh.GaugeLast("runtime_goroutines"),
				topBytes(nh.GaugeLast("runtime_heap_bytes")),
				nh.Rate("runtime_gc_count", window))
		}
		tw.Flush()
	}

	if slo != nil {
		fmt.Fprintf(w, "\nslo: %s  (fast=%v slow=%v, %d transitions)\n",
			strings.ToUpper(slo.Level), slo.Fast, slo.Slow, slo.Transitions)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  OBJECTIVE\tLEVEL\tFAST\tSLOW\tTHRESHOLD")
		for _, o := range slo.Objectives {
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\n",
				o.Name, o.Level,
				topObjVal(string(o.Kind), o.FastValue),
				topObjVal(string(o.Kind), o.SlowValue),
				topObjVal(string(o.Kind), o.Threshold))
		}
		tw.Flush()
	}
}

func topDur(ns int64) time.Duration {
	return time.Duration(ns).Round(10 * time.Microsecond)
}

func topBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func topObjVal(kind string, v float64) string {
	switch kind {
	case "latency":
		return topDur(int64(v)).String()
	case "ratio":
		return fmt.Sprintf("%.2f%%", 100*v)
	default:
		return fmt.Sprintf("%.3g/s", v)
	}
}
