// Command mendel is the client CLI for a TCP Mendel cluster: it indexes
// FASTA data onto running mendel-node processes, saves the coordinator
// manifest, and evaluates alignment queries against a previously indexed
// cluster.
//
// Typical session (nodes started beforehand with cmd/mendel-node):
//
//	mendel index -nodes 127.0.0.1:7946,127.0.0.1:7947 -groups 2 \
//	    -kind protein -fasta nr.fasta -manifest cluster.mendel
//	mendel query -manifest cluster.mendel -fasta queries.fasta
//	mendel stats -manifest cluster.mendel
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"mendel"
	"mendel/internal/seq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "index":
		cmdIndex(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "similarity":
		cmdSimilarity(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "top":
		cmdTop(os.Args[2:])
	case "repair":
		cmdRepair(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mendel <command> [flags]

commands:
  index       fragment and index a FASTA file onto running storage nodes
  query       evaluate alignment queries against an indexed cluster
  similarity  rank indexed sequences by alignment-free MinHash Jaccard similarity
  explain     run one fully-traced query and render its cross-node span tree
  stats       print per-node storage statistics
  top         live cluster dashboard over the windowed telemetry
  repair      probe node health and run an anti-entropy repair pass
  serve       run a long-lived HTTP query gateway over an indexed cluster`)
	os.Exit(2)
}

// resilienceFlags registers the RPC resilience flags shared by every
// subcommand and returns a function assembling the config after parsing.
func resilienceFlags(fs *flag.FlagSet) func() mendel.ResilienceConfig {
	def := mendel.DefaultResilienceConfig()
	timeout := fs.Duration("rpc-timeout", def.CallTimeout, "per-RPC timeout (0 disables)")
	retries := fs.Int("rpc-retries", def.MaxRetries, "retries per RPC on unreachable nodes")
	trip := fs.Int("breaker-trip", def.TripAfter, "consecutive failures that trip a node's circuit breaker (0 disables)")
	cooldown := fs.Duration("breaker-cooldown", def.Cooldown, "circuit breaker cooldown before a half-open probe")
	return func() mendel.ResilienceConfig {
		def.CallTimeout = *timeout
		def.MaxRetries = *retries
		def.TripAfter = *trip
		def.Cooldown = *cooldown
		return def
	}
}

// wireFlags registers the RPC codec flags shared by every subcommand and
// returns a function assembling the wire config after parsing.
func wireFlags(fs *flag.FlagSet) func() mendel.WireConfig {
	codec := fs.String("rpc-codec", mendel.CodecBinary, "RPC wire codec: binary (negotiated, with transparent gob fallback against old nodes) or gob (legacy framing)")
	compress := fs.Bool("rpc-compress", false, "flate-compress block-transfer RPC frames (binary codec only)")
	return func() mendel.WireConfig {
		return mendel.WireConfig{Codec: *codec, Compress: *compress}
	}
}

func cmdIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	nodeList := fs.String("nodes", "", "comma-separated storage node addresses (required)")
	groups := fs.Int("groups", 2, "number of storage groups")
	kindName := fs.String("kind", "protein", "molecule kind: protein or dna")
	fasta := fs.String("fasta", "", "FASTA file with reference sequences (required)")
	manifest := fs.String("manifest", "cluster.mendel", "manifest file to create or extend")
	blockLen := fs.Int("block", 16, "inverted index block length w")
	replicas := fs.Int("replicas", 1, "copies of each block and sequence within its group (>= 2 enables hinted handoff and repair to survive node loss)")
	resilience := resilienceFlags(fs)
	wire := wireFlags(fs)
	fs.Parse(args)
	if *nodeList == "" && !fileExists(*manifest) {
		log.Fatal("mendel index: -nodes is required for a new cluster")
	}
	if *fasta == "" {
		log.Fatal("mendel index: -fasta is required")
	}

	kind := parseKind(*kindName)
	var cluster *mendel.Cluster
	var rpc *mendel.ResilientCaller
	if fileExists(*manifest) {
		cluster, rpc = loadManifest(*manifest, resilience(), wire())
	} else {
		cfg := mendel.DefaultConfig(kind)
		cfg.Groups = *groups
		cfg.BlockLen = *blockLen
		cfg.Replicas = *replicas
		nodes := strings.Split(*nodeList, ",")
		groupLists, err := splitGroups(nodes, *groups)
		if err != nil {
			log.Fatalf("mendel index: %v", err)
		}
		cluster, rpc, err = mendel.NewTCPClusterWire(cfg, groupLists, resilience(), wire())
		if err != nil {
			log.Fatalf("mendel index: %v", err)
		}
	}

	f, err := os.Open(*fasta)
	if err != nil {
		log.Fatalf("mendel index: %v", err)
	}
	set, err := mendel.ReadFASTA(f, cluster.Config().Kind)
	f.Close()
	if err != nil {
		log.Fatalf("mendel index: %v", err)
	}
	start := time.Now()
	if err := cluster.Index(context.Background(), set); err != nil {
		log.Fatalf("mendel index: %v", err)
	}
	fmt.Printf("indexed %d sequences (%d residues) in %v\n",
		set.Len(), set.TotalResidues(), time.Since(start).Round(time.Millisecond))

	out, err := os.Create(*manifest)
	if err != nil {
		log.Fatalf("mendel index: %v", err)
	}
	defer out.Close()
	if err := mendel.SaveManifest(cluster, out); err != nil {
		log.Fatalf("mendel index: %v", err)
	}
	fmt.Printf("manifest written to %s\n", *manifest)
	if st := rpc.Stats(); st.Retries > 0 || st.Trips > 0 {
		fmt.Printf("rpc: %s\n", st)
	}
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	manifest := fs.String("manifest", "cluster.mendel", "manifest file from 'mendel index'")
	fasta := fs.String("fasta", "", "FASTA file with query sequences")
	inline := fs.String("seq", "", "inline query sequence")
	maxHits := fs.Int("max-hits", 10, "hits to print per query")
	maxE := fs.Float64("evalue", 10, "expectation value threshold E")
	step := fs.Int("step", 0, "sliding window step k (0 = block length)")
	neighbors := fs.Int("n", 12, "nearest neighbours per subquery")
	identity := fs.Float64("identity", 0.30, "identity threshold i")
	cscore := fs.Float64("cscore", 0.40, "consecutivity threshold c")
	matrixName := fs.String("matrix", "", "scoring matrix M (default by kind)")
	bothStrands := fs.Bool("strands", false, "also search the reverse complement (DNA clusters)")
	mask := fs.Bool("mask", false, "mask low-complexity query regions before searching")
	translated := fs.Bool("translated", false, "treat queries as DNA and search a protein cluster in all six reading frames (blastx-style)")
	trace := fs.Bool("trace", false, "print a per-stage execution trace for each query")
	prefilter := fs.String("prefilter", "bloom", "sketch group prefilter consulted before fan-out: bloom, minhash, or off (escape hatch)")
	metricsAddr := fs.String("metrics-addr", "", "host:port for the coordinator's HTTP observability endpoint (/metrics, /debug/spans, /debug/trace/{id}, /debug/pprof); empty disables")
	traceSample := fs.Float64("trace-sample", 1, "fraction of queries traced cluster-wide (head-based sampling; 0 disables distributed tracing)")
	logJSON := fs.Bool("log-json", false, "emit per-query structured JSON logs on stderr, stamped with the trace ID")
	resilience := resilienceFlags(fs)
	wire := wireFlags(fs)
	fs.Parse(args)

	cluster, rpc := loadManifest(*manifest, resilience(), wire())
	pm, err := mendel.ParsePrefilterMode(*prefilter)
	if err != nil {
		log.Fatalf("mendel query: %v", err)
	}
	cluster.SetPrefilterMode(pm)
	var logger *slog.Logger
	if *logJSON {
		logger = mendel.NewLogger(os.Stderr, slog.LevelInfo)
	}
	if *metricsAddr != "" || *logJSON {
		reg := mendel.NewMetricsRegistry()
		tracer := mendel.NewQueryTracer(0)
		cluster.SetObservability(reg, tracer)
		rpc.Register(reg)
		if *traceSample <= 0 {
			// The flag's 0 disables tracing; the config zero value means
			// trace-all, so map it to the explicit "off" rate.
			cluster.SetTraceSampleRate(-1)
		} else {
			cluster.SetTraceSampleRate(*traceSample)
		}
		if *metricsAddr != "" {
			// The observability endpoint doubles as the cluster health view:
			// a background monitor probes the nodes, replays hinted handoffs
			// to recovered ones, and backs /debug/health.
			hm := mendel.NewHealthMonitor(cluster, mendel.DefaultHealthConfig())
			hm.ObserveBreakers(rpc)
			go hm.Run(context.Background())
			_, bound, err := mendel.ServeMetricsWithHealth(*metricsAddr, reg, tracer,
				cluster.TraceSource(context.Background()), hm.Source())
			if err != nil {
				log.Fatalf("mendel query: metrics endpoint: %v", err)
			}
			fmt.Printf("metrics on http://%s/metrics, health on http://%s/debug/health\n", bound, bound)
		}
	}
	params := mendel.DefaultParams()
	params.MaxE = *maxE
	params.Neighbors = *neighbors
	params.Identity = *identity
	params.CScore = *cscore
	if *step > 0 {
		params.Step = *step
	} else {
		params.Step = cluster.Config().BlockLen
	}
	if *matrixName != "" {
		params.Matrix = *matrixName
	} else if cluster.Config().Kind == mendel.DNA {
		params.Matrix = "DNA"
	}
	params.BothStrands = *bothStrands
	params.Mask = *mask

	queryKind := cluster.Config().Kind
	if *translated {
		queryKind = mendel.DNA
	}
	queries := mendel.NewSet(queryKind)
	switch {
	case *inline != "":
		if _, err := queries.Add("query", []byte(*inline)); err != nil {
			log.Fatalf("mendel query: %v", err)
		}
	case *fasta != "":
		f, err := os.Open(*fasta)
		if err != nil {
			log.Fatalf("mendel query: %v", err)
		}
		queries, err = mendel.ReadFASTA(f, queryKind)
		f.Close()
		if err != nil {
			log.Fatalf("mendel query: %v", err)
		}
	default:
		log.Fatal("mendel query: provide -seq or -fasta")
	}

	ctx := context.Background()
	for _, q := range queries.Seqs {
		start := time.Now()
		var hits []mendel.Hit
		var frames []int
		if *translated {
			thits, err := cluster.SearchTranslated(ctx, q.Data, params)
			if err != nil {
				log.Fatalf("mendel query: %s: %v", q.Name, err)
			}
			for _, th := range thits {
				hits = append(hits, th.Hit)
				frames = append(frames, th.Frame)
			}
			fmt.Printf("query %s (%d nt, six frames): %d hits in %v\n",
				q.Name, q.Len(), len(hits), time.Since(start).Round(time.Microsecond))
			if logger != nil {
				logger.Info("query",
					slog.String("query", q.Name),
					slog.Bool("translated", true),
					slog.Int("hits", len(hits)),
					slog.Duration("duration", time.Since(start)))
			}
		} else if *trace || *logJSON {
			var tr *mendel.SearchStats
			var err error
			hits, tr, err = cluster.SearchTrace(ctx, q.Data, params)
			if err != nil {
				log.Fatalf("mendel query: %s: %v", q.Name, err)
			}
			if *trace {
				fmt.Printf("query %s: %s\n", q.Name, tr)
			} else {
				fmt.Printf("query %s (%d residues): %d hits in %v\n",
					q.Name, q.Len(), len(hits), time.Since(start).Round(time.Microsecond))
			}
			if logger != nil {
				logger.Info("query",
					slog.String("query", q.Name),
					slog.Int("hits", len(hits)),
					slog.Duration("duration", time.Since(start)),
					slog.String("trace_id", tr.TraceID))
			}
		} else {
			var err error
			hits, err = cluster.Search(ctx, q.Data, params)
			if err != nil {
				log.Fatalf("mendel query: %s: %v", q.Name, err)
			}
			fmt.Printf("query %s (%d residues): %d hits in %v\n",
				q.Name, q.Len(), len(hits), time.Since(start).Round(time.Microsecond))
		}
		for i, h := range hits {
			if i >= *maxHits {
				fmt.Printf("  ... %d more\n", len(hits)-*maxHits)
				break
			}
			extra := ""
			if len(frames) == len(hits) {
				extra = fmt.Sprintf(" frame=%d", frames[i])
			} else if h.Strand == '-' {
				extra = " strand=-"
			}
			fmt.Printf("  %-20s bits=%6.1f E=%8.2g  q[%d:%d] s[%d:%d] %s%s\n",
				h.Name, h.Bits, h.E,
				h.Alignment.QStart, h.Alignment.QEnd,
				h.Alignment.SStart, h.Alignment.SEnd,
				h.Alignment.CIGAR(), extra)
		}
	}
	if *trace {
		fmt.Printf("rpc: %s\n", rpc.Stats())
	}
}

// cmdSimilarity ranks indexed sequences by alignment-free MinHash Jaccard
// similarity to each query — no fan-out, no alignment, just the coordinator's
// per-sequence signatures from the manifest. With -verify it becomes the CI
// recall gate's minhash leg: the stored signatures are checked bit-for-bit
// against ones recomputed from the reference FASTA, and every estimate is
// checked against the exact k-mer Jaccard within -bound.
func cmdSimilarity(args []string) {
	fs := flag.NewFlagSet("similarity", flag.ExitOnError)
	manifest := fs.String("manifest", "cluster.mendel", "manifest file from 'mendel index'")
	fasta := fs.String("fasta", "", "FASTA file with query sequences")
	inline := fs.String("seq", "", "inline query sequence")
	top := fs.Int("top", 10, "ranked sequences to print per query")
	verify := fs.String("verify", "", "reference FASTA the cluster was indexed from; check every MinHash estimate against the exact k-mer Jaccard")
	bound := fs.Float64("bound", 0.05, "max |estimate - exact| tolerated by -verify")
	resilience := resilienceFlags(fs)
	wire := wireFlags(fs)
	fs.Parse(args)

	cluster, _ := loadManifest(*manifest, resilience(), wire())
	kind := cluster.Config().Kind
	queries := mendel.NewSet(kind)
	switch {
	case *inline != "":
		if _, err := queries.Add("query", []byte(*inline)); err != nil {
			log.Fatalf("mendel similarity: %v", err)
		}
	case *fasta != "":
		f, err := os.Open(*fasta)
		if err != nil {
			log.Fatalf("mendel similarity: %v", err)
		}
		queries, err = mendel.ReadFASTA(f, kind)
		f.Close()
		if err != nil {
			log.Fatalf("mendel similarity: %v", err)
		}
	default:
		log.Fatal("mendel similarity: provide -seq or -fasta")
	}

	for _, q := range queries.Seqs {
		start := time.Now()
		hits, err := cluster.Similarity(q.Data, *top)
		if err != nil {
			log.Fatalf("mendel similarity: %s: %v", q.Name, err)
		}
		fmt.Printf("query %s (%d residues): %d candidates in %v\n",
			q.Name, q.Len(), len(hits), time.Since(start).Round(time.Microsecond))
		for _, h := range hits {
			fmt.Printf("  %-20s seq=%-6d jaccard=%.4f\n", h.Name, h.Seq, h.Jaccard)
		}
	}
	if *verify != "" {
		verifySimilarity(cluster, queries, *verify, *bound)
	}
}

// verifySimilarity is the minhash leg of the CI recall gate. It first proves
// the manifest's per-sequence signatures are exactly what the reference FASTA
// produces (so the estimates under test are the ones queries actually see),
// then bounds the estimation error of every query x reference pair against
// the exact k-mer Jaccard computed from the full distinct-hash sets.
func verifySimilarity(cluster *mendel.Cluster, queries *mendel.Set, refPath string, bound float64) {
	cfg := cluster.Config()
	f, err := os.Open(refPath)
	if err != nil {
		log.Fatalf("mendel similarity: %v", err)
	}
	refs, err := mendel.ReadFASTA(f, cfg.Kind)
	f.Close()
	if err != nil {
		log.Fatalf("mendel similarity: %v", err)
	}
	if refs.Len() != cluster.NumSequences() {
		log.Fatalf("mendel similarity: -verify FASTA holds %d sequences, cluster indexed %d",
			refs.Len(), cluster.NumSequences())
	}
	for _, r := range refs.Seqs {
		stored := cluster.SeqSketch(r.ID)
		recomputed := mendel.MinHashesOf(r.Data, cfg)
		if len(stored) != len(recomputed) {
			log.Fatalf("mendel similarity: stored sketch of seq %d (%s) has %d hashes, recomputed %d — is %s the indexed corpus?",
				r.ID, r.Name, len(stored), len(recomputed), refPath)
		}
		for i := range stored {
			if stored[i] != recomputed[i] {
				log.Fatalf("mendel similarity: stored sketch of seq %d (%s) diverges from the reference FASTA at hash %d",
					r.ID, r.Name, i)
			}
		}
	}

	var maxErr float64
	var worstQ, worstR string
	pairs := 0
	for _, q := range queries.Seqs {
		hits, err := cluster.Similarity(q.Data, 0)
		if err != nil {
			log.Fatalf("mendel similarity: %s: %v", q.Name, err)
		}
		est := make(map[mendel.SequenceID]float64, len(hits))
		for _, h := range hits {
			est[h.Seq] = h.Jaccard
		}
		for _, r := range refs.Seqs {
			exact := mendel.ExactJaccard(q.Data, r.Data, cfg)
			diff := est[r.ID] - exact
			if diff < 0 {
				diff = -diff
			}
			pairs++
			if diff > maxErr {
				maxErr, worstQ, worstR = diff, q.Name, r.Name
			}
		}
	}
	fmt.Printf("verify: %d sequence sketches bit-identical to %s; max |estimate-exact| = %.4f over %d pairs",
		refs.Len(), refPath, maxErr, pairs)
	if maxErr > 0 {
		fmt.Printf(" (worst: %s vs %s)", worstQ, worstR)
	}
	fmt.Println()
	if maxErr > bound {
		log.Fatalf("mendel similarity: MinHash estimate error %.4f exceeds bound %.4f", maxErr, bound)
	}
}

// assembled cross-node span tree back from the whole cluster, and renders
// it as a per-stage table: what the coordinator did, which group entry
// points it fanned out to, and what every storage node spent its time on.
func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	manifest := fs.String("manifest", "cluster.mendel", "manifest file from 'mendel index'")
	qFasta := fs.String("q", "", "FASTA file with the query sequence (the first record is explained)")
	inline := fs.String("seq", "", "inline query sequence")
	maxE := fs.Float64("evalue", 10, "expectation value threshold E")
	step := fs.Int("step", 0, "sliding window step k (0 = block length)")
	neighbors := fs.Int("n", 12, "nearest neighbours per subquery")
	identity := fs.Float64("identity", 0.30, "identity threshold i")
	cscore := fs.Float64("cscore", 0.40, "consecutivity threshold c")
	matrixName := fs.String("matrix", "", "scoring matrix M (default by kind)")
	jsonOut := fs.Bool("json", false, "print the assembled span tree as JSON instead of a table")
	resilience := resilienceFlags(fs)
	wire := wireFlags(fs)
	fs.Parse(args)

	cluster, rpc := loadManifest(*manifest, resilience(), wire())
	reg := mendel.NewMetricsRegistry()
	tracer := mendel.NewQueryTracer(0)
	cluster.SetObservability(reg, tracer)
	// Explain exists to show one query end to end; the head sampler must
	// not be allowed to skip it.
	cluster.SetTraceSampleRate(1)
	rpc.Register(reg)

	params := mendel.DefaultParams()
	params.MaxE = *maxE
	params.Neighbors = *neighbors
	params.Identity = *identity
	params.CScore = *cscore
	if *step > 0 {
		params.Step = *step
	} else {
		params.Step = cluster.Config().BlockLen
	}
	if *matrixName != "" {
		params.Matrix = *matrixName
	} else if cluster.Config().Kind == mendel.DNA {
		params.Matrix = "DNA"
	}

	queries := mendel.NewSet(cluster.Config().Kind)
	switch {
	case *inline != "":
		if _, err := queries.Add("query", []byte(*inline)); err != nil {
			log.Fatalf("mendel explain: %v", err)
		}
	case *qFasta != "":
		f, err := os.Open(*qFasta)
		if err != nil {
			log.Fatalf("mendel explain: %v", err)
		}
		queries, err = mendel.ReadFASTA(f, cluster.Config().Kind)
		f.Close()
		if err != nil {
			log.Fatalf("mendel explain: %v", err)
		}
	default:
		log.Fatal("mendel explain: provide -q or -seq")
	}
	if len(queries.Seqs) == 0 {
		log.Fatal("mendel explain: no query sequences")
	}
	q := queries.Seqs[0]
	if len(queries.Seqs) > 1 {
		fmt.Printf("explaining the first of %d queries\n", len(queries.Seqs))
	}

	ctx := context.Background()
	start := time.Now()
	hits, tr, err := cluster.SearchTrace(ctx, q.Data, params)
	if err != nil {
		log.Fatalf("mendel explain: %s: %v", q.Name, err)
	}
	fmt.Printf("query %s (%d residues): %d hits in %v\n",
		q.Name, q.Len(), len(hits), time.Since(start).Round(time.Microsecond))
	fmt.Printf("stages: %s\n", tr)
	if tr.TraceID == "" {
		log.Fatal("mendel explain: search produced no trace ID")
	}
	spans := cluster.FetchTrace(ctx, tr.TraceID)
	if len(spans) == 0 {
		log.Fatalf("mendel explain: no spans retained for trace %s", tr.TraceID)
	}
	fmt.Printf("trace %s (%d root spans)\n\n", tr.TraceID, len(spans))
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spans); err != nil {
			log.Fatalf("mendel explain: %v", err)
		}
	} else {
		renderSpanTable(os.Stdout, spans)
		renderNodeSummary(os.Stdout, spans)
	}
	fmt.Printf("\nrpc: %s\n", rpc.Stats())
}

// renderSpanTable prints the assembled trace as an indented stage tree with
// one row per span: stage name, owning node, wall time, and the span's
// integer attributes (anchors in/out, bytes on the wire, RPC attempts, ...).
func renderSpanTable(w io.Writer, spans []mendel.SpanSnapshot) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STAGE\tNODE\tDURATION\tDETAILS")
	var walk func(s mendel.SpanSnapshot, depth int)
	walk = func(s mendel.SpanSnapshot, depth int) {
		node := s.Node
		if node == "" {
			node = "coordinator"
		}
		fmt.Fprintf(tw, "%s%s\t%s\t%v\t%s\n",
			strings.Repeat("  ", depth), s.Name, node,
			time.Duration(s.NS).Round(time.Microsecond), formatSpanAttrs(s.Attrs))
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, s := range spans {
		walk(s, 0)
	}
	tw.Flush()
}

// renderNodeSummary rolls the tree up per storage node: how long each node
// spent answering this query (local_search + fetch_region spans), how many
// vp-tree nodes it visited, and how many anchors it contributed.
func renderNodeSummary(w io.Writer, spans []mendel.SpanSnapshot) {
	type agg struct {
		spans   int
		busy    time.Duration
		visits  int64
		anchors int64
	}
	byNode := make(map[string]*agg)
	var walk func(s mendel.SpanSnapshot)
	walk = func(s mendel.SpanSnapshot) {
		if s.Node != "" && (s.Name == "local_search" || s.Name == "fetch_region") {
			a := byNode[s.Node]
			if a == nil {
				a = &agg{}
				byNode[s.Node] = a
			}
			a.spans++
			a.busy += time.Duration(s.NS)
			a.anchors += attrValue(s.Attrs, "anchors")
			for _, c := range s.Children {
				if c.Name == "knn" {
					a.visits += attrValue(c.Attrs, "visits")
				}
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, s := range spans {
		walk(s)
	}
	if len(byNode) == 0 {
		return
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	fmt.Fprintln(w, "\nper-node:")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tSPANS\tBUSY\tTREE VISITS\tANCHORS")
	for _, n := range nodes {
		a := byNode[n]
		fmt.Fprintf(tw, "%s\t%d\t%v\t%d\t%d\n",
			n, a.spans, a.busy.Round(time.Microsecond), a.visits, a.anchors)
	}
	tw.Flush()
}

// formatSpanAttrs renders span attributes as key=value pairs, showing
// nanosecond-suffixed attributes as durations.
func formatSpanAttrs(attrs []mendel.SpanAttr) string {
	parts := make([]string, 0, len(attrs))
	for _, a := range attrs {
		if strings.HasSuffix(a.Key, "_ns") {
			parts = append(parts, fmt.Sprintf("%s=%v",
				strings.TrimSuffix(a.Key, "_ns"), time.Duration(a.Value).Round(time.Microsecond)))
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%d", a.Key, a.Value))
	}
	return strings.Join(parts, " ")
}

func attrValue(attrs []mendel.SpanAttr, key string) int64 {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return 0
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	manifest := fs.String("manifest", "cluster.mendel", "manifest file from 'mendel index'")
	showMetrics := fs.Bool("metrics", false, "also aggregate observability metrics cluster-wide")
	watch := fs.Duration("watch", 0, "re-poll and re-render in place every interval (0 prints once); adds windowed qps/latency from the nodes' history rings")
	resilience := resilienceFlags(fs)
	wire := wireFlags(fs)
	fs.Parse(args)
	cluster, _ := loadManifest(*manifest, resilience(), wire())
	printStats(cluster, *showMetrics, *watch > 0)
	if *watch <= 0 {
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*watch)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println()
			return
		case <-tick.C:
			fmt.Print("\x1b[2J\x1b[H")
			printStats(cluster, *showMetrics, true)
		}
	}
}

func printStats(cluster *mendel.Cluster, showMetrics, windowed bool) {
	stats, down, err := cluster.StatsDetailed(context.Background())
	if err != nil {
		log.Fatalf("mendel stats: %v", err)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Node < stats[j].Node })
	total := 0
	for _, s := range stats {
		total += s.Blocks
	}
	fmt.Printf("%d nodes, %d blocks, %d sequences, %d residues indexed\n",
		len(stats), total, cluster.NumSequences(), cluster.TotalResidues())
	for _, s := range stats {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.Blocks) / float64(total)
		}
		fmt.Printf("  %-22s blocks=%-8d (%5.2f%%) repo-seqs=%d\n", s.Node, s.Blocks, pct, s.Sequences)
	}
	sort.Strings(down)
	for _, addr := range down {
		fmt.Printf("  %-22s UNREACHABLE\n", addr)
	}
	if windowed {
		printWindowedStats(cluster)
	}
	if showMetrics {
		printClusterMetrics(cluster)
	}
}

// printWindowedStats renders the nodes' trailing-30s activity from their
// history rings — the watch-mode companion to the cumulative counters.
func printWindowedStats(cluster *mendel.Cluster) {
	const window = 30 * time.Second
	results, _, err := cluster.HistoryDetailed(context.Background(), window)
	if err != nil || len(results) == 0 {
		return
	}
	fmt.Printf("\nlast %v (start nodes with metrics enabled to populate):\n", window)
	sort.Slice(results, func(i, j int) bool { return results[i].Node < results[j].Node })
	var merged []mendel.MetricsHistory
	for _, r := range results {
		h := r.History
		if len(h.Points) == 0 {
			continue
		}
		merged = append(merged, h)
		fmt.Printf("  %-22s rps=%-8.1f search_p95=%-10v goroutines=%d\n",
			r.Node,
			h.Rate("server_requests", window),
			time.Duration(h.Quantile("node_local_search_ns", 0.95, window)).Round(10*time.Microsecond),
			h.GaugeLast("runtime_goroutines"))
	}
	if len(merged) > 1 {
		m := mendel.MergeMetricsHistories(merged...)
		fmt.Printf("  %-22s rps=%-8.1f search_p95=%-10v\n",
			"cluster",
			m.Rate("server_requests", window),
			time.Duration(m.Quantile("node_local_search_ns", 0.95, window)).Round(10*time.Microsecond))
	}
}

// printClusterMetrics collects every node's registry snapshot and prints
// the cluster-wide aggregate: counters summed, histograms merged bucket-wise
// so the quantiles reflect the whole deployment.
func printClusterMetrics(cluster *mendel.Cluster) {
	metrics, down, err := cluster.MetricsDetailed(context.Background())
	if err != nil {
		log.Fatalf("mendel stats: %v", err)
	}
	reporting := 0
	groups := make([][]mendel.MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		if len(m.Metrics) > 0 {
			reporting++
		}
		groups = append(groups, m.Metrics)
	}
	merged := mendel.MergeMetricSnapshots(groups...)
	fmt.Printf("\ncluster metrics (%d/%d nodes reporting; start nodes with -metrics-addr to enable):\n",
		reporting, len(metrics))
	if len(down) > 0 {
		fmt.Printf("  %d nodes unreachable\n", len(down))
	}
	for _, s := range merged {
		if s.Kind == "histogram" {
			if strings.HasSuffix(s.Name, "_ns") {
				// Nanosecond histograms read better as durations.
				fmt.Printf("  %-28s count=%-8d p50=%-10v p95=%-10v p99=%-10v max=%v\n",
					s.Name, s.Count,
					time.Duration(s.Quantile(0.50)),
					time.Duration(s.Quantile(0.95)),
					time.Duration(s.Quantile(0.99)),
					time.Duration(s.Max))
			} else {
				fmt.Printf("  %-28s count=%-8d p50=%-10d p95=%-10d p99=%-10d max=%d\n",
					s.Name, s.Count,
					s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.Max)
			}
			continue
		}
		fmt.Printf("  %-28s %d\n", s.Name, s.Value)
	}
}

// cmdRepair probes every node, reports the health view, and — unless the
// probe is all that was asked for — runs one anti-entropy pass: missing
// block and sequence replicas are re-pushed between nodes until every item
// is back at full replication. The probe itself already performs recovery
// (re-bootstrap, topology re-push, hinted-handoff replay) for nodes that
// just returned.
func cmdRepair(args []string) {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	manifest := fs.String("manifest", "cluster.mendel", "manifest file from 'mendel index'")
	checkOnly := fs.Bool("check", false, "only probe and print node health, skip the repair pass")
	jsonOut := fs.Bool("json", false, "print the health snapshot as JSON")
	resilience := resilienceFlags(fs)
	wire := wireFlags(fs)
	fs.Parse(args)

	cluster, rpc := loadManifest(*manifest, resilience(), wire())
	ctx := context.Background()
	hm := mendel.NewHealthMonitor(cluster, mendel.DefaultHealthConfig())
	hm.ObserveBreakers(rpc)
	hm.ProbeOnce(ctx)

	snap := hm.Snapshot()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			log.Fatalf("mendel repair: %v", err)
		}
	} else {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "NODE\tGROUP\tSTATE\tBOOTED\tHINTS")
		for _, n := range snap {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%v\t%d\n", n.Addr, n.Group, n.State, n.Booted, n.HintsPending)
		}
		tw.Flush()
	}
	if *checkOnly {
		return
	}

	start := time.Now()
	rep, err := cluster.Repair(ctx)
	if err != nil {
		log.Fatalf("mendel repair: %v", err)
	}
	fmt.Printf("repair: %s\n", rep)
	if pending := cluster.HintsPending(); pending > 0 {
		fmt.Printf("warning: %d hinted-handoff items still pending (target nodes down?)\n", pending)
	}
	fmt.Printf("done in %v; rpc: %s\n", time.Since(start).Round(time.Millisecond), rpc.Stats())
}

// cmdServe runs the long-lived query gateway: many concurrent HTTP clients
// against one shared cluster, with admission control and per-tenant quotas.
// The API and the observability surface (/metrics, /debug/...) share the
// one listener.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	manifest := fs.String("manifest", "cluster.mendel", "manifest file from 'mendel index'")
	addr := fs.String("addr", "127.0.0.1:9090", "HTTP listen address (use :0 for a free port)")
	maxInflight := fs.Int("max-inflight", 16, "queries running concurrently")
	maxQueue := fs.Int("max-queue", 64, "admission queue length before shedding with 429")
	deadline := fs.Duration("deadline", 30*time.Second, "per-request deadline (queue wait + query)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant query rate limit, qps (0 disables quotas)")
	tenantBurst := fs.Int("tenant-burst", 8, "per-tenant token bucket capacity")
	maxHits := fs.Int("max-hits", 50, "hits returned per query")
	coalesce := fs.Bool("coalesce", true, "batch concurrent queries' per-group fan-out RPCs")
	coalesceTick := fs.Duration("coalesce-tick", 2*time.Millisecond, "max extra latency a query pays waiting for batch companions")
	sample := fs.Float64("trace-sample", 0.01, "fraction of queries traced end to end")
	prefilter := fs.String("prefilter", "bloom", "sketch group prefilter consulted before fan-out: bloom, minhash, or off (escape hatch)")
	sampleEvery := fs.Duration("sample-interval", time.Second, "windowed telemetry sampling interval")
	historySamples := fs.Int("history-samples", 300, "telemetry ring capacity (samples retained)")
	sloP95 := fs.Duration("slo-p95", 0, "SLO: windowed p95 search latency objective (0 disables)")
	sloErrRate := fs.Float64("slo-error-rate", 0, "SLO: error-rate objective as a fraction of requests (0 disables)")
	sloShedRate := fs.Float64("slo-shed-rate", 0, "SLO: shed-rate objective as a fraction of requests (0 disables)")
	sloHintGrowth := fs.Float64("slo-hint-growth", 0, "SLO: hints_pending growth objective, items/sec (0 disables)")
	sloFast := fs.Duration("slo-fast", 30*time.Second, "SLO fast burn-rate window")
	sloSlow := fs.Duration("slo-slow", 5*time.Minute, "SLO slow burn-rate window")
	profileDir := fs.String("profile-dir", "", "directory for breach-triggered pprof CPU+heap profiles (empty disables capture)")
	resilience := resilienceFlags(fs)
	wire := wireFlags(fs)
	fs.Parse(args)

	cluster, rpc := loadManifest(*manifest, resilience(), wire())
	pm, err := mendel.ParsePrefilterMode(*prefilter)
	if err != nil {
		log.Fatalf("mendel serve: %v", err)
	}
	cluster.SetPrefilterMode(pm)
	reg := mendel.NewMetricsRegistry()
	tracer := mendel.NewQueryTracer(0)
	cluster.SetObservability(reg, tracer)
	cluster.SetTraceSampleRate(*sample)
	rpc.Register(reg)
	if *coalesce {
		cluster.EnableFanOutCoalescing(mendel.CoalesceConfig{Tick: *coalesceTick})
	}

	gw := mendel.NewGateway(cluster, mendel.GatewayConfig{
		MaxInFlight: *maxInflight,
		MaxQueue:    *maxQueue,
		Deadline:    *deadline,
		TenantRate:  *tenantRate,
		TenantBurst: *tenantBurst,
		MaxHits:     *maxHits,
	}, reg)

	ctx := context.Background()

	// Windowed telemetry: sample the registry (plus the runtime collector)
	// on -sample-interval into a -history-samples ring; the SLO watchdog
	// evaluates every sample and /metrics/history merges this local series
	// with the nodes' via the cluster history source.
	series := mendel.NewTimeSeries(reg, mendel.TimeSeriesConfig{
		Interval: *sampleEvery,
		Capacity: *historySamples,
	})
	series.SetNode("coordinator")
	series.AddCollector(mendel.NewRuntimeCollector(reg).Collect)
	objectives := mendel.GatewaySLOObjectives(*sloP95, *sloErrRate, *sloShedRate, *sloHintGrowth)
	watchdog := mendel.NewWatchdog(series, mendel.SLOConfig{
		Fast:       *sloFast,
		Slow:       *sloSlow,
		Objectives: objectives,
		Logger:     mendel.NewLogger(os.Stderr, slog.LevelInfo, slog.String("role", "serve")),
	})
	if *profileDir != "" {
		pc, err := mendel.NewProfileCapturer(mendel.ProfileConfig{Dir: *profileDir, CPUDuration: 2 * time.Second})
		if err != nil {
			log.Fatalf("mendel serve: %v", err)
		}
		watchdog.OnBreach(pc.OnBreach)
	}
	watchdog.Watch()
	seriesCtx, stopSeries := context.WithCancel(ctx)
	defer stopSeries()
	go series.Run(seriesCtx)

	surface := mendel.MetricsSurface{
		Registry: reg,
		Tracer:   tracer,
		Trace:    cluster.TraceSource(ctx),
		History:  series,
		Cluster:  cluster.HistorySource(ctx, series),
		SLO:      watchdog,
		Routes:   gw.Routes(),
	}
	srv, bound, err := surface.Serve(*addr)
	if err != nil {
		log.Fatalf("mendel serve: %v", err)
	}
	// The e2e test and scripts read this line to find the bound port.
	fmt.Printf("mendel serve: listening on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	cluster.DisableFanOutCoalescing()
}

func loadManifest(path string, rc mendel.ResilienceConfig, wc mendel.WireConfig) (*mendel.Cluster, *mendel.ResilientCaller) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("mendel: opening manifest: %v", err)
	}
	defer f.Close()
	cluster, rpc, err := mendel.LoadManifestTCPWire(f, rc, wc)
	if err != nil {
		log.Fatalf("mendel: loading manifest: %v", err)
	}
	return cluster, rpc
}

func parseKind(name string) mendel.Kind {
	switch name {
	case "protein":
		return mendel.Protein
	case "dna":
		return mendel.DNA
	default:
		log.Fatalf("mendel: unknown kind %q", name)
		return seq.Protein
	}
}

func splitGroups(nodes []string, groups int) ([][]string, error) {
	if groups <= 0 || len(nodes) < groups {
		return nil, fmt.Errorf("%d nodes cannot fill %d groups", len(nodes), groups)
	}
	out := make([][]string, groups)
	for i, n := range nodes {
		out[i%groups] = append(out[i%groups], strings.TrimSpace(n))
	}
	return out, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
